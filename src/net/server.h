// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// SketchServer: the framed-TCP front end that turns the in-process
// SketchStore into a network service (docs/NETWORK.md). One server
// wraps one store — plain or OpenDurable — and exposes the full
// serving surface over the src/net/protocol.h RPC catalog: schema and
// dataset management, streamed update frames, one batched Run RPC
// serving all six QueryKinds, async SubmitLoad/CheckJob bulk loads
// (src/net/jobs.h), and Stats. Tenants address disjoint namespaces
// through one port via the tenant key every request carries.
//
// Threading model: one accept-loop thread plus one thread per live
// connection (requests on a connection execute in order; concurrency
// comes from concurrent connections, which is exactly how the store's
// own locking is meant to be driven), plus the JobManager's load
// workers. All request handling funnels into the SAME SketchStore entry
// points in-process callers use, so a networked answer is bit-identical
// to the equivalent direct call — the round-trip equivalence tests
// assert exactly that.
//
// Failure containment: a request whose payload fails to parse is a
// request-level error response and the connection survives; a frame
// whose length bound or CRC fails has poisoned the byte stream, so the
// server sends a best-effort error and closes THAT connection — the
// listener, every other connection, and the store are untouched (the
// wire fuzz tests sweep every truncation and bit flip to prove it).

#ifndef SPATIALSKETCH_NET_SERVER_H_
#define SPATIALSKETCH_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/status.h"
#include "src/net/jobs.h"
#include "src/net/protocol.h"
#include "src/net/wire.h"
#include "src/store/sketch_store.h"

namespace spatialsketch {
namespace net {

/// Listening and resource options of a SketchServer.
struct SketchServerOptions {
  /// Listen address. The serving layer is localhost-first (the
  /// scale-out story ships summaries between co-located processes);
  /// binding a public interface is the deployment's decision.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Per-frame payload bound; larger frames are rejected before any
  /// allocation and the offending connection is closed.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Async-load worker threads (JobManager pool size).
  uint32_t job_workers = 1;
  /// Threads per bulk load handed to ParallelBulkLoad (0 = auto).
  uint32_t load_threads = 0;
};

/// The framed-TCP sketch server (see the file comment). Thread-safe:
/// Start/Stop/port from any thread; request handling is internal.
class SketchServer {
 public:
  /// Bind, listen, and start the accept loop over `store` (not owned;
  /// must outlive the server). Fails with IOError if the address
  /// cannot be bound.
  static Result<std::unique_ptr<SketchServer>> Start(
      SketchStore* store, const SketchServerOptions& opt = {});

  /// Stops and joins everything (see Stop()).
  ~SketchServer();

  /// The bound TCP port (the ephemeral pick when options said 0).
  uint16_t port() const { return port_; }

  /// Shut down: close the listener, close every live connection, join
  /// the accept and connection threads, stop the job workers (a load
  /// already applying completes first). Idempotent.
  void Stop();

 private:
  /// One live connection's thread + socket, tracked for Stop/reap.
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  SketchServer(SketchStore* store, const SketchServerOptions& opt);

  Status Listen();
  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// Join and erase finished connection threads (called from the
  /// accept loop so a long-lived server does not accumulate them).
  void ReapFinished();

  /// Decode one request payload and produce the response payload
  /// (never throws, never kills the connection — framing errors are
  /// handled a level up in ServeConnection).
  std::string HandleRequest(const std::string& payload,
                            std::map<std::string, DatasetHandle>* handles);

  // Per-RPC handlers: parse the body out of `r` (envelope already
  // consumed), execute against the store, append the response body to
  // `body`. tenant is the request's namespace key.
  Status HandleRegisterSchema(WireReader* r, const std::string& tenant);
  Status HandleCreateDataset(WireReader* r, const std::string& tenant);
  Status HandleDropDataset(WireReader* r, const std::string& tenant);
  Status HandleListDatasets(const std::string& tenant, std::string* body);
  Status HandleUpdate(WireReader* r, const std::string& tenant,
                      std::map<std::string, DatasetHandle>* handles,
                      std::string* body);
  Status HandleConfigureShards(WireReader* r, const std::string& tenant);
  Status HandleRun(WireReader* r, const std::string& tenant,
                   std::string* body);
  Status HandleSubmitLoad(WireReader* r, const std::string& tenant,
                          std::string* body);
  Status HandleCheckJob(WireReader* r, std::string* body);
  Status HandleStats(std::string* body);
  Status HandleNumObjects(WireReader* r, const std::string& tenant,
                          std::string* body);
  Status HandleFence(WireReader* r, const std::string& tenant);

  SketchStore* const store_;
  const SketchServerOptions opt_;
  JobManager jobs_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  std::map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 0;

  SKETCH_DISALLOW_COPY_AND_ASSIGN(SketchServer);
};

}  // namespace net
}  // namespace spatialsketch

#endif  // SPATIALSKETCH_NET_SERVER_H_
