// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// SketchServer: the framed-TCP front end that turns the in-process
// SketchStore into a network service (docs/NETWORK.md). One server
// wraps one store — plain or OpenDurable — and exposes the full
// serving surface over the src/net/protocol.h RPC catalog: schema and
// dataset management, streamed update frames, one batched Run RPC
// serving all six QueryKinds, async SubmitLoad/CheckJob bulk loads
// (src/net/jobs.h), and Stats. Tenants address disjoint namespaces
// through one port via the tenant key every request carries.
//
// I/O model (IoMode::kEvented, the default): a fixed pool of I/O
// workers ALL block in the same one-shot readiness poller
// (src/net/poller.h — epoll on Linux, poll elsewhere) over
// nonblocking sockets; a fired connection is delivered to exactly one
// worker (EPOLLONESHOT / the poll backend's mutex-guarded disarm), so
// there is no dispatcher thread and no handoff — the kernel wakes the
// worker that will do the work, which keeps the per-RPC context-switch
// count at the thread-per-connection engine's level while one
// epoll_wait return can carry MANY ready connections. The worker that
// owns a fired connection drains the socket into the connection's read
// buffer (one recv can yield MANY frames — request pipelining),
// executes every complete frame in arrival order against the store,
// builds the responses back-to-back in the connection's write buffer,
// and flushes them with one gathered write (sendmsg — writev with
// MSG_NOSIGNAL). Responses therefore come back in request order and
// bit-identical to the thread-per-connection engine, while the
// syscall count per RPC drops with pipeline depth. The one-shot
// discipline is the mutual exclusion: a connection is re-armed only
// after its worker is done, so no per-connection lock exists. Requests
// on one connection execute in order; concurrency comes from
// concurrent connections, which is exactly how the store's own
// locking is meant to be driven. The listening socket lives in the
// same poller set under the same discipline: whichever worker it
// fires at accepts the whole backlog and re-arms it.
//
// The hot path is allocation-free in steady state: read/write buffers,
// the decode scratch (tenant/body strings, QueryBatch, results), and
// the dataset-handle cache are all per-connection and reused across
// requests; update frames decode directly out of the read buffer
// (zero copy) into the cached DatasetHandle insert path.
//
// Backpressure: a configurable connection cap — an over-cap accept is
// answered with one clean kMsgTypeOverCapacity error frame and closed,
// never left hanging — and a per-connection write high-watermark that
// pauses reading until the peer drains its responses.
//
// IoMode::kThreaded keeps the legacy engine (one blocking thread per
// connection) behind the same options struct for A/B benchmarking and
// as the portability fallback of last resort.
//
// Failure containment (both modes): a request whose payload fails to
// parse is a request-level error response and the connection survives;
// a frame whose length bound or CRC fails has poisoned the byte
// stream, so the server sends a best-effort error and closes THAT
// connection — the listener, every other connection, and the store are
// untouched (the wire fuzz tests sweep every truncation and bit flip
// against both engines to prove it).

#ifndef SPATIALSKETCH_NET_SERVER_H_
#define SPATIALSKETCH_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/api/query.h"
#include "src/common/status.h"
#include "src/net/jobs.h"
#include "src/net/poller.h"
#include "src/net/protocol.h"
#include "src/net/wire.h"
#include "src/store/sketch_store.h"

namespace spatialsketch {
namespace net {

/// Which I/O engine a SketchServer runs (see the file comment).
enum class IoMode : uint8_t {
  kEvented = 0,   ///< nonblocking poller + worker pool (the default)
  kThreaded = 1,  ///< legacy thread-per-connection engine
};

/// Parse "evented"/"threaded" into an IoMode (the --io flag values).
inline bool ParseIoMode(const std::string& s, IoMode* out) {
  if (s == "evented") {
    *out = IoMode::kEvented;
    return true;
  }
  if (s == "threaded") {
    *out = IoMode::kThreaded;
    return true;
  }
  return false;
}

/// Stable flag-value name of an IoMode.
inline const char* IoModeName(IoMode mode) {
  return mode == IoMode::kThreaded ? "threaded" : "evented";
}

/// Listening and resource options of a SketchServer.
struct SketchServerOptions {
  /// Listen address. The serving layer is localhost-first (the
  /// scale-out story ships summaries between co-located processes);
  /// binding a public interface is the deployment's decision.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Per-frame payload bound; larger frames are rejected before any
  /// allocation and the offending connection is closed.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Async-load worker threads (JobManager pool size).
  uint32_t job_workers = 1;
  /// Threads per bulk load handed to ParallelBulkLoad (0 = auto).
  uint32_t load_threads = 0;
  /// Which I/O engine serves connections.
  IoMode io_mode = IoMode::kEvented;
  /// Evented-mode I/O worker threads (0 = auto: between 2 and 8,
  /// following the host's hardware concurrency). Ignored by kThreaded.
  uint32_t io_workers = 0;
  /// Live-connection cap (0 = unlimited). The connection over the cap
  /// receives one kMsgTypeOverCapacity error frame and is closed —
  /// clean backpressure instead of an unbounded thread/fd pile-up.
  uint32_t max_connections = 1024;
  /// Readiness backend of the evented engine (kAuto = epoll on Linux).
  PollerBackend poller = PollerBackend::kAuto;
  /// listen(2) backlog of the accept queue.
  int accept_backlog = 128;
};

/// Snapshot of a server's wire-level I/O counters (IoCounters values at
/// one instant). frames_in / recv_calls is the measured pipelining
/// depth on the read side; frames_out / send_calls the response
/// batching on the write side — the honest syscalls-per-RPC numbers
/// BENCH_net_latency.json reports for the evented/threaded A/B.
struct IoStats {
  uint64_t recv_calls = 0;  ///< recv(2) calls that returned data
  uint64_t recv_bytes = 0;  ///< bytes received
  uint64_t frames_in = 0;   ///< complete request frames parsed
  uint64_t send_calls = 0;  ///< send(2)/sendmsg(2) calls that wrote
  uint64_t send_bytes = 0;  ///< bytes written
  uint64_t frames_out = 0;  ///< complete response frames written
};

/// The framed-TCP sketch server (see the file comment). Thread-safe:
/// Start/Stop/port/io_stats from any thread; request handling is
/// internal.
class SketchServer {
 public:
  /// Bind, listen, and start the configured I/O engine over `store`
  /// (not owned; must outlive the server). Fails with IOError if the
  /// address cannot be bound.
  static Result<std::unique_ptr<SketchServer>> Start(
      SketchStore* store, const SketchServerOptions& opt = {});

  /// Stops and joins everything (see Stop()).
  ~SketchServer();

  /// The bound TCP port (the ephemeral pick when options said 0).
  uint16_t port() const { return port_; }

  /// Snapshot of the wire-level syscall/byte/frame counters.
  IoStats io_stats() const;

  /// Shut down: close the listener, close every live connection, join
  /// the I/O threads, stop the job workers (a load already applying
  /// completes first). Idempotent.
  void Stop();

 private:
  /// Reusable per-connection decode/encode scratch: every request on a
  /// connection parses into and responds out of the same storage, so
  /// the steady-state hot path performs no allocation.
  struct RequestScratch {
    std::string tenant;  ///< request envelope tenant key
    std::string body;    ///< response body under construction
    /// Cached dataset handles this connection streams updates to: the
    /// per-frame hot path skips the registry lookup exactly like an
    /// in-process DatasetHandle user.
    std::map<std::string, DatasetHandle> handles;
    QueryBatch batch;                  ///< decoded kRun batch
    std::vector<QueryResult> results;  ///< kRun results (reused)
  };

  /// One evented connection: nonblocking socket plus the buffers and
  /// scratch its owning worker uses. The one-shot poller guarantees at
  /// most one worker touches a connection at a time; `epoch` makes the
  /// worker-to-worker handoff explicit for the race detector (release
  /// increment before re-arm, acquire load by the next worker the
  /// poller delivers the connection to).
  struct EventedConn {
    uint64_t id = 0;               ///< econns_ key; never reused
    int fd = -1;                   ///< nonblocking socket
    /// Read buffer. Its SIZE is the allocation high-water mark and
    /// never shrinks; `in_len` tracks the valid bytes. (Growing via
    /// resize() per recv would zero-fill the whole chunk each time —
    /// a 64 KiB memset on every RPC — so the hot path never resizes
    /// except to raise the high-water mark.)
    std::string in;
    size_t in_len = 0;             ///< valid bytes in `in`
    size_t in_off = 0;             ///< consumed-prefix offset into `in`
    std::string out;               ///< pending response bytes
    size_t out_off = 0;            ///< flushed-prefix offset into `out`
    std::vector<size_t> out_frames;  ///< frame end offsets in `out`
    size_t out_frame_ix = 0;       ///< first unflushed frame index
    bool closing = false;          ///< poisoned: close once `out` drains
    bool eof = false;              ///< peer finished sending
    std::atomic<uint64_t> epoch{0};  ///< ownership-handoff fence
    RequestScratch scratch;        ///< reusable decode/encode state
  };

  /// One legacy-mode connection's thread + socket, tracked for
  /// Stop/reap.
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  SketchServer(SketchStore* store, const SketchServerOptions& opt);

  Status Listen();

  // --- evented engine ---
  Status StartEvented();
  /// One I/O worker: block in Poller::Wait alongside the rest of the
  /// pool, accept when the listener fires, process fired connections.
  void WorkerLoop();
  /// Run one dispatched connection: flush, read, execute every
  /// complete frame, flush again, then re-arm or close.
  void ProcessConn(EventedConn* conn);
  /// accept(2) until EAGAIN; over-cap connections get the rejection
  /// frame. One-shot on the listener token serializes callers.
  void AcceptReady();
  /// Drain the socket into conn->in (nonblocking, bounded per pass).
  void ReadIntoBuffer(EventedConn* conn, bool* dead);
  /// Execute every complete frame in conn->in, appending response
  /// frames to conn->out (may mark the connection poisoned).
  void DrainFrames(EventedConn* conn);
  /// Gathered flush of conn->out (sendmsg; EINTR/short-write correct).
  /// Sets *would_block when the socket buffer filled first.
  Status FlushOut(EventedConn* conn, bool* would_block);
  /// Append the poisoned-stream error frame and mark the connection
  /// closing (sent before the close, exactly like the legacy engine).
  void PoisonConn(EventedConn* conn, const Status& st);
  /// Deregister, close, and erase one evented connection.
  void CloseConn(EventedConn* conn);
  /// Best-effort kMsgTypeOverCapacity frame + close of an over-cap
  /// accepted socket.
  void RejectOverCapacity(int fd);

  // --- legacy threaded engine ---
  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// Join and erase finished connection threads (called from the
  /// accept loop so a long-lived server does not accumulate them).
  void ReapFinished();

  /// Decode one request payload and append the response ENVELOPE
  /// (version/type/status/message/body) to `out` — the caller frames
  /// it. Never throws, never kills the connection: framing errors are
  /// handled a level up. Shared verbatim by both engines, which is
  /// what keeps their answers bit-identical.
  void HandleRequestInto(const char* payload, size_t n,
                         RequestScratch* scratch, std::string* out);

  // Per-RPC handlers: parse the body out of `r` (envelope already
  // consumed), execute against the store, append the response body to
  // `body`. tenant is the request's namespace key.
  Status HandleRegisterSchema(WireReader* r, const std::string& tenant);
  Status HandleCreateDataset(WireReader* r, const std::string& tenant);
  Status HandleDropDataset(WireReader* r, const std::string& tenant);
  Status HandleListDatasets(const std::string& tenant, std::string* body);
  Status HandleUpdate(WireReader* r, const std::string& tenant,
                      std::map<std::string, DatasetHandle>* handles,
                      std::string* body);
  Status HandleConfigureShards(WireReader* r, const std::string& tenant);
  Status HandleRun(WireReader* r, const std::string& tenant,
                   RequestScratch* scratch, std::string* body);
  Status HandleSubmitLoad(WireReader* r, const std::string& tenant,
                          std::string* body);
  Status HandleCheckJob(WireReader* r, std::string* body);
  Status HandleStats(std::string* body);
  Status HandleNumObjects(WireReader* r, const std::string& tenant,
                          std::string* body);
  Status HandleFence(WireReader* r, const std::string& tenant);

  SketchStore* const store_;
  const SketchServerOptions opt_;
  JobManager jobs_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  IoCounters io_;

  // Evented engine state.
  std::unique_ptr<Poller> poller_;
  std::vector<std::thread> workers_;
  std::map<uint64_t, std::unique_ptr<EventedConn>> econns_;

  // Legacy threaded engine state.
  std::thread accept_thread_;
  std::map<uint64_t, std::unique_ptr<Connection>> conns_;

  std::mutex conns_mu_;  ///< guards econns_ and conns_
  uint64_t next_conn_id_ = 0;

  SKETCH_DISALLOW_COPY_AND_ASSIGN(SketchServer);
};

}  // namespace net
}  // namespace spatialsketch

#endif  // SPATIALSKETCH_NET_SERVER_H_
