#include "src/net/wire.h"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "src/common/crc32c.h"

namespace spatialsketch {
namespace net {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutBox(std::string* out, const Box& b) {
  for (uint32_t d = 0; d < kMaxDims; ++d) PutU64(out, b.lo[d]);
  for (uint32_t d = 0; d < kMaxDims; ++d) PutU64(out, b.hi[d]);
}

Status WireReader::GetU8(uint8_t* v) {
  if (remaining() < 1) return Status::InvalidArgument("wire: short payload");
  *v = data_[pos_++];
  return Status::OK();
}

Status WireReader::GetU32(uint32_t* v) {
  if (remaining() < 4) return Status::InvalidArgument("wire: short payload");
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return Status::OK();
}

Status WireReader::GetU64(uint64_t* v) {
  if (remaining() < 8) return Status::InvalidArgument("wire: short payload");
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return Status::OK();
}

Status WireReader::GetI64(int64_t* v) {
  uint64_t bits;
  SKETCH_RETURN_NOT_OK(GetU64(&bits));
  *v = static_cast<int64_t>(bits);
  return Status::OK();
}

Status WireReader::GetF64(double* v) {
  uint64_t bits;
  SKETCH_RETURN_NOT_OK(GetU64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status WireReader::GetString(std::string* v) {
  uint32_t len;
  SKETCH_RETURN_NOT_OK(GetU32(&len));
  if (remaining() < len) {
    return Status::InvalidArgument("wire: string length exceeds payload");
  }
  v->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return Status::OK();
}

Status WireReader::GetBox(Box* v) {
  for (uint32_t d = 0; d < kMaxDims; ++d) {
    SKETCH_RETURN_NOT_OK(GetU64(&v->lo[d]));
  }
  for (uint32_t d = 0; d < kMaxDims; ++d) {
    SKETCH_RETURN_NOT_OK(GetU64(&v->hi[d]));
  }
  return Status::OK();
}

size_t BeginFrame(std::string* out) {
  const size_t header_off = out->size();
  out->append(kFrameHeaderBytes, '\0');
  return header_off;
}

void EndFrame(std::string* out, size_t header_off) {
  const size_t payload_off = header_off + kFrameHeaderBytes;
  const size_t len = out->size() - payload_off;
  const uint32_t crc = Crc32c(out->data() + payload_off, len);
  // Patch the placeholder header in place (little-endian, same layout
  // EncodeFrame writes).
  char* header = out->data() + header_off;
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<char>((len >> (8 * i)) & 0xff);
    header[4 + i] = static_cast<char>((crc >> (8 * i)) & 0xff);
  }
}

void AppendFrame(std::string* out, const void* payload, size_t n) {
  const size_t header_off = BeginFrame(out);
  out->append(static_cast<const char*>(payload), n);
  EndFrame(out, header_off);
}

std::string EncodeFrame(const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(&out, payload.data(), payload.size());
  return out;
}

namespace {

// Full-buffer send; MSG_NOSIGNAL so a vanished peer surfaces as EPIPE
// instead of killing the process. Loops over short writes and EINTR —
// EVERY byte is out or the Status says why not (the client, the legacy
// threaded server, and the box-file paths all funnel through here; the
// splintered-write regression test in tests/net_evented_test.cc proves
// the receive side reassembles no matter how the sender fragments).
Status SendAll(int fd, const char* data, size_t n, IoCounters* counters) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    if (w == 0) return Status::IOError("send: peer closed");
    if (counters != nullptr) {
      counters->send_calls.fetch_add(1, std::memory_order_relaxed);
      counters->send_bytes.fetch_add(static_cast<uint64_t>(w),
                                     std::memory_order_relaxed);
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

// Full-buffer receive. `*got` reports how many bytes arrived before a
// clean end-of-stream, so the caller can tell "closed between frames"
// from "closed mid-frame". Loops over partial reads and EINTR.
Status RecvAll(int fd, char* data, size_t n, size_t* got,
               IoCounters* counters) {
  *got = 0;
  while (*got < n) {
    const ssize_t r = ::recv(fd, data + *got, n - *got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (r == 0) return Status::OK();  // eof; *got says how far we came
    if (counters != nullptr) {
      counters->recv_calls.fetch_add(1, std::memory_order_relaxed);
      counters->recv_bytes.fetch_add(static_cast<uint64_t>(r),
                                     std::memory_order_relaxed);
    }
    *got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, const std::string& payload, IoCounters* counters) {
  const std::string frame = EncodeFrame(payload);
  const Status st = SendAll(fd, frame.data(), frame.size(), counters);
  if (st.ok() && counters != nullptr) {
    counters->frames_out.fetch_add(1, std::memory_order_relaxed);
  }
  return st;
}

Status ReadFrame(int fd, std::string* payload, uint32_t max_frame_bytes,
                 IoCounters* counters) {
  char header[kFrameHeaderBytes];
  size_t got = 0;
  SKETCH_RETURN_NOT_OK(RecvAll(fd, header, sizeof(header), &got, counters));
  if (got == 0) return Status::IOError("eof");
  if (got < sizeof(header)) {
    return Status::IOError("eof inside frame header");
  }
  WireReader hr(header, sizeof(header));
  uint32_t len = 0;
  uint32_t crc = 0;
  (void)hr.GetU32(&len);
  (void)hr.GetU32(&crc);
  if (len > max_frame_bytes) {
    return Status::InvalidArgument("frame length exceeds the endpoint bound");
  }
  payload->resize(len);
  if (len > 0) {
    SKETCH_RETURN_NOT_OK(RecvAll(fd, payload->data(), len, &got, counters));
    if (got < len) return Status::IOError("eof inside frame payload");
  }
  if (Crc32c(*payload) != crc) {
    return Status::InvalidArgument("frame payload CRC mismatch");
  }
  if (counters != nullptr) {
    counters->frames_in.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status WriteBoxFile(const std::string& path, const std::vector<Box>& boxes,
                    uint32_t dims) {
  if (dims < 1 || dims > kMaxDims) {
    return Status::InvalidArgument("box file dims must be 1..kMaxDims");
  }
  std::string out;
  out.reserve(sizeof(kBoxFileMagic) + 12 + boxes.size() * 2 * 8 * kMaxDims);
  out.append(kBoxFileMagic, sizeof(kBoxFileMagic));
  PutU32(&out, dims);
  PutU64(&out, boxes.size());
  for (const Box& b : boxes) PutBox(&out, b);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::IOError("cannot open box file for write: " + path);
  f.write(out.data(), static_cast<std::streamsize>(out.size()));
  f.close();
  if (!f) return Status::IOError("short write to box file: " + path);
  return Status::OK();
}

Status ReadBoxFile(const std::string& path, std::vector<Box>* boxes,
                   uint32_t* dims) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open box file: " + path);
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() < sizeof(kBoxFileMagic) + 12 ||
      std::memcmp(bytes.data(), kBoxFileMagic, sizeof(kBoxFileMagic)) != 0) {
    return Status::InvalidArgument("not a box file: " + path);
  }
  WireReader r(bytes.data() + sizeof(kBoxFileMagic),
               bytes.size() - sizeof(kBoxFileMagic));
  uint64_t count = 0;
  SKETCH_RETURN_NOT_OK(r.GetU32(dims));
  SKETCH_RETURN_NOT_OK(r.GetU64(&count));
  if (*dims < 1 || *dims > kMaxDims) {
    return Status::InvalidArgument("box file dims out of range");
  }
  if (r.remaining() != count * 2 * 8 * kMaxDims) {
    return Status::InvalidArgument("box file size does not match its count");
  }
  boxes->clear();
  boxes->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Box b;
    SKETCH_RETURN_NOT_OK(r.GetBox(&b));
    boxes->push_back(b);
  }
  return Status::OK();
}

}  // namespace net
}  // namespace spatialsketch
