#include "src/net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <iterator>
#include <utility>
#include <vector>

#include "src/api/query_wire.h"
#include "src/common/crc32c.h"

namespace spatialsketch {
namespace net {

namespace {

/// Poller token of the listening socket (connection ids count up from
/// zero and can never reach it; the pollers' internal wake token is
/// ~uint64_t{0}).
constexpr uint64_t kListenerToken = ~uint64_t{0} - 1;

/// recv(2) chunk the evented read path grows the buffer by.
constexpr size_t kReadChunk = 64 * 1024;

/// Per-dispatch read bound: after this many buffered bytes the worker
/// executes what it has and re-arms, so one fire-hosing connection
/// cannot starve the rest of the pool.
constexpr size_t kMaxReadPerPass = 1024 * 1024;

/// Write high-watermark: a connection with this much unflushed
/// response stops having its requests read until the peer drains
/// (per-connection backpressure instead of unbounded buffering).
constexpr size_t kOutHighWatermark = 4 * 1024 * 1024;

/// Consumed-prefix size past which the read buffer is compacted (below
/// it the memmove would cost more than the slack is worth).
constexpr size_t kCompactThreshold = 64 * 1024;

/// iovec fan-in of one gathered write.
constexpr int kMaxIov = 64;

/// Append the response envelope: version, echoed type, status, then
/// the body only when the status is OK (an error response never
/// carries a body).
void AppendResponse(std::string* out, uint8_t type, const Status& st,
                    const std::string& body) {
  PutU8(out, kProtocolVersion);
  PutU8(out, type);
  PutU8(out, static_cast<uint8_t>(st.code()));
  PutString(out, st.message());
  if (st.ok()) out->append(body);
}

/// The trailing-garbage check every handler ends its body parse with.
Status ExpectDone(const WireReader& r) {
  if (!r.done()) {
    return Status::InvalidArgument("request body has trailing bytes");
  }
  return Status::OK();
}

/// Schema/dataset names must be non-empty and separator-free.
Status CheckName(const std::string& name, const char* what) {
  if (name.empty() || !WireNameOk(name)) {
    return Status::InvalidArgument(std::string("invalid ") + what + " name");
  }
  return Status::OK();
}

/// Little-endian u32 out of a raw byte pointer (frame header fields).
uint32_t LoadLE32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

SketchServer::SketchServer(SketchStore* store, const SketchServerOptions& opt)
    : store_(store),
      opt_(opt),
      jobs_(store, opt.job_workers, opt.load_threads) {}

Result<std::unique_ptr<SketchServer>> SketchServer::Start(
    SketchStore* store, const SketchServerOptions& opt) {
  if (store == nullptr) {
    return Status::InvalidArgument("SketchServer needs a store");
  }
  std::unique_ptr<SketchServer> server(new SketchServer(store, opt));
  SKETCH_RETURN_NOT_OK(server->Listen());
  if (opt.io_mode == IoMode::kEvented) {
    SKETCH_RETURN_NOT_OK(server->StartEvented());
  } else {
    server->accept_thread_ =
        std::thread([s = server.get()] { s->AcceptLoop(); });
  }
  return server;
}

SketchServer::~SketchServer() { Stop(); }

IoStats SketchServer::io_stats() const {
  IoStats s;
  s.recv_calls = io_.recv_calls.load(std::memory_order_relaxed);
  s.recv_bytes = io_.recv_bytes.load(std::memory_order_relaxed);
  s.frames_in = io_.frames_in.load(std::memory_order_relaxed);
  s.send_calls = io_.send_calls.load(std::memory_order_relaxed);
  s.send_bytes = io_.send_bytes.load(std::memory_order_relaxed);
  s.frames_out = io_.frames_out.load(std::memory_order_relaxed);
  return s;
}

Status SketchServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opt_.port);
  if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host: " + opt_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, opt_.accept_backlog) != 0) {
    const Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    const Status st =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

// ---- Evented engine --------------------------------------------------------

Status SketchServer::StartEvented() {
  auto poller = Poller::Create(opt_.poller);
  if (!poller.ok()) return poller.status();
  poller_ = std::move(*poller);
  SetNonBlocking(listen_fd_);
  SKETCH_RETURN_NOT_OK(poller_->Add(listen_fd_, kListenerToken, false));
  uint32_t n = opt_.io_workers;
  if (n == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = std::max(2u, std::min(8u, hw == 0 ? 2u : hw));
  }
  workers_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void SketchServer::WorkerLoop() {
  // Every worker blocks in the same poller; the one-shot discipline
  // delivers each fired descriptor to exactly one of them, so the
  // kernel wakes the thread that will do the work — no dispatcher, no
  // queue, no handoff context switch on the RPC path.
  std::vector<Poller::Event> events;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (!poller_->Wait(&events).ok()) return;
    if (stopping_.load(std::memory_order_acquire)) return;
    for (const Poller::Event& ev : events) {
      if (ev.token == kListenerToken) {
        AcceptReady();
        (void)poller_->Rearm(listen_fd_, kListenerToken, true, false);
        continue;
      }
      // The token IS the connection. This is safe without a lookup or
      // lock because of the one-shot discipline: an armed descriptor
      // fires once and is delivered to exactly one worker, and only the
      // worker holding the delivery may close the connection (Stop()
      // tears down only after the workers are joined). So a delivered
      // token always refers to a live, exclusively owned connection.
      EventedConn* conn = reinterpret_cast<EventedConn*>(
          static_cast<uintptr_t>(ev.token));
      // Pair with the release increment the previous owning worker did
      // before re-arming: everything it wrote to the connection
      // happens-before this worker touches it.
      (void)conn->epoch.load(std::memory_order_acquire);
      ProcessConn(conn);
    }
  }
}

void SketchServer::AcceptReady() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (queue drained) or listener closed
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SetNonBlocking(fd);
    std::unique_lock<std::mutex> lock(conns_mu_);
    if (opt_.max_connections != 0 &&
        econns_.size() >= opt_.max_connections) {
      lock.unlock();
      RejectOverCapacity(fd);
      continue;
    }
    auto conn = std::make_unique<EventedConn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    EventedConn* raw = conn.get();
    econns_.emplace(raw->id, std::move(conn));
    lock.unlock();
    const uint64_t token =
        static_cast<uint64_t>(reinterpret_cast<uintptr_t>(raw));
    if (!poller_->Add(fd, token, false).ok()) {
      std::lock_guard<std::mutex> relock(conns_mu_);
      econns_.erase(raw->id);
      ::close(fd);
    }
  }
}

void SketchServer::RejectOverCapacity(int fd) {
  std::string payload;
  AppendResponse(&payload, kMsgTypeOverCapacity,
                 Status::FailedPrecondition("server at connection capacity"),
                 "");
  // Best effort: the socket is fresh, so one small frame fits its send
  // buffer; if the peer vanished first we just close. Drain whatever
  // request the peer already sent before closing, so the close is a
  // clean FIN and the rejection frame is not torn down by an RST.
  (void)WriteFrame(fd, payload, &io_);
  char discard[4096];
  while (::recv(fd, discard, sizeof(discard), MSG_DONTWAIT) > 0) {
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

void SketchServer::ReadIntoBuffer(EventedConn* conn, bool* dead) {
  size_t total = 0;
  while (total < kMaxReadPerPass) {
    // Only raise the high-water mark; resize() zero-fills what it adds,
    // so resizing per recv would memset a whole chunk on every RPC.
    if (conn->in.size() < conn->in_len + kReadChunk) {
      conn->in.resize(conn->in_len + kReadChunk);
    }
    const ssize_t r =
        ::recv(conn->fd, conn->in.data() + conn->in_len, kReadChunk, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      *dead = true;  // hard socket error (ECONNRESET and friends)
      return;
    }
    if (r == 0) {
      conn->eof = true;  // buffered complete frames still execute
      return;
    }
    conn->in_len += static_cast<size_t>(r);
    io_.recv_calls.fetch_add(1, std::memory_order_relaxed);
    io_.recv_bytes.fetch_add(static_cast<uint64_t>(r),
                             std::memory_order_relaxed);
    total += static_cast<size_t>(r);
    if (static_cast<size_t>(r) < kReadChunk) return;  // socket drained
  }
}

void SketchServer::PoisonConn(EventedConn* conn, const Status& st) {
  const size_t header_off = BeginFrame(&conn->out);
  AppendResponse(&conn->out, kMsgTypeUnparseable, st, "");
  EndFrame(&conn->out, header_off);
  conn->out_frames.push_back(conn->out.size());
  io_.frames_out.fetch_add(1, std::memory_order_relaxed);
  conn->closing = true;
}

void SketchServer::DrainFrames(EventedConn* conn) {
  while (!conn->closing) {
    const size_t avail = conn->in_len - conn->in_off;
    if (avail < kFrameHeaderBytes) break;
    const char* header = conn->in.data() + conn->in_off;
    const uint32_t len = LoadLE32(header);
    const uint32_t crc = LoadLE32(header + 4);
    if (len > opt_.max_frame_bytes) {
      PoisonConn(conn, Status::InvalidArgument(
                           "frame length exceeds the endpoint bound"));
      break;
    }
    if (avail < kFrameHeaderBytes + len) break;  // frame still in flight
    const char* payload = header + kFrameHeaderBytes;
    if (Crc32c(payload, len) != crc) {
      PoisonConn(conn,
                 Status::InvalidArgument("frame payload CRC mismatch"));
      break;
    }
    io_.frames_in.fetch_add(1, std::memory_order_relaxed);
    // Execute in place: the request parses straight out of the read
    // buffer (zero copy) and the response builds straight into the
    // write buffer between BeginFrame/EndFrame.
    const size_t header_off = BeginFrame(&conn->out);
    HandleRequestInto(payload, len, &conn->scratch, &conn->out);
    EndFrame(&conn->out, header_off);
    conn->out_frames.push_back(conn->out.size());
    io_.frames_out.fetch_add(1, std::memory_order_relaxed);
    conn->in_off += kFrameHeaderBytes + len;
    if (conn->out.size() - conn->out_off >= kOutHighWatermark) break;
  }
  if (conn->in_off == conn->in_len) {
    conn->in_len = 0;  // storage stays at its high-water mark
    conn->in_off = 0;
  } else if (conn->in_off >= kCompactThreshold) {
    std::memmove(conn->in.data(), conn->in.data() + conn->in_off,
                 conn->in_len - conn->in_off);
    conn->in_len -= conn->in_off;
    conn->in_off = 0;
  }
}

Status SketchServer::FlushOut(EventedConn* conn, bool* would_block) {
  *would_block = false;
  while (conn->out_off < conn->out.size()) {
    // Gather the pending response frames into one vectored write: the
    // first iovec is the tail of a partially sent frame, the rest are
    // whole frames back to back.
    iovec iov[kMaxIov];
    int niov = 0;
    size_t pos = conn->out_off;
    size_t frame_ix = conn->out_frame_ix;
    while (niov < kMaxIov && pos < conn->out.size()) {
      const size_t end = frame_ix < conn->out_frames.size()
                             ? conn->out_frames[frame_ix]
                             : conn->out.size();
      iov[niov].iov_base = conn->out.data() + pos;
      iov[niov].iov_len = end - pos;
      ++niov;
      pos = end;
      ++frame_ix;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(niov);
    // sendmsg is writev with flags: MSG_NOSIGNAL turns a vanished peer
    // into EPIPE instead of killing the process.
    const ssize_t w = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        *would_block = true;  // re-arm for write readiness
        return Status::OK();
      }
      return Status::IOError(std::string("sendmsg: ") + std::strerror(errno));
    }
    io_.send_calls.fetch_add(1, std::memory_order_relaxed);
    io_.send_bytes.fetch_add(static_cast<uint64_t>(w),
                             std::memory_order_relaxed);
    conn->out_off += static_cast<size_t>(w);
    while (conn->out_frame_ix < conn->out_frames.size() &&
           conn->out_frames[conn->out_frame_ix] <= conn->out_off) {
      ++conn->out_frame_ix;
    }
  }
  conn->out.clear();
  conn->out_off = 0;
  conn->out_frames.clear();
  conn->out_frame_ix = 0;
  return Status::OK();
}

void SketchServer::CloseConn(EventedConn* conn) {
  (void)poller_->Remove(conn->fd);
  ::close(conn->fd);
  std::lock_guard<std::mutex> lock(conns_mu_);
  econns_.erase(conn->id);
}

void SketchServer::ProcessConn(EventedConn* conn) {
  bool dead = false;
  bool would_block = false;
  // Flush first so a backpressured connection frees room before it
  // reads more work.
  if (!FlushOut(conn, &would_block).ok()) dead = true;
  if (!dead && !conn->closing && !conn->eof &&
      conn->out.size() - conn->out_off < kOutHighWatermark) {
    ReadIntoBuffer(conn, &dead);
  }
  if (!dead) {
    DrainFrames(conn);
    if (!FlushOut(conn, &would_block).ok()) dead = true;
  }
  const bool out_pending = conn->out_off < conn->out.size();
  if (dead || ((conn->closing || conn->eof) && !out_pending)) {
    CloseConn(conn);
    return;
  }
  const bool want_write = out_pending;
  const bool want_read =
      !conn->closing && !conn->eof &&
      conn->out.size() - conn->out_off < kOutHighWatermark;
  if (!want_read && !want_write) {
    CloseConn(conn);  // nothing left to wait for
    return;
  }
  // Release everything this worker wrote before the connection can
  // fire again (the event loop's acquire load pairs with this).
  conn->epoch.fetch_add(1, std::memory_order_release);
  const uint64_t token =
      static_cast<uint64_t>(reinterpret_cast<uintptr_t>(conn));
  if (!poller_->Rearm(conn->fd, token, want_read, want_write).ok()) {
    CloseConn(conn);
  }
}

// ---- Legacy threaded engine ------------------------------------------------

void SketchServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load(std::memory_order_acquire)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed under us (Stop) or fatal accept error
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conns_mu_);
    ReapFinished();
    if (opt_.max_connections != 0 &&
        conns_.size() >= opt_.max_connections) {
      RejectOverCapacity(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conns_.emplace(next_conn_id_++, std::move(conn));
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void SketchServer::ReapFinished() {
  // Caller holds conns_mu_.
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection& conn = *it->second;
    if (conn.done.load(std::memory_order_acquire)) {
      conn.thread.join();
      ::close(conn.fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void SketchServer::ServeConnection(Connection* conn) {
  RequestScratch scratch;
  std::string payload;
  std::string response;
  for (;;) {
    const Status st = ReadFrame(conn->fd, &payload, opt_.max_frame_bytes, &io_);
    if (!st.ok()) {
      if (st.code() == StatusCode::kInvalidArgument) {
        // Oversized length or CRC mismatch: the stream is poisoned.
        // Best-effort error reply, then close this connection only.
        response.clear();
        AppendResponse(&response, kMsgTypeUnparseable, st, "");
        (void)WriteFrame(conn->fd, response, &io_);
      }
      break;  // eof, truncation, or poisoned stream
    }
    response.clear();
    HandleRequestInto(payload.data(), payload.size(), &scratch, &response);
    if (!WriteFrame(conn->fd, response, &io_).ok()) break;
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

// ---- Request execution (shared by both engines) ----------------------------

void SketchServer::HandleRequestInto(const char* payload, size_t n,
                                     RequestScratch* scratch,
                                     std::string* out) {
  WireReader r(payload, n);
  uint8_t version = 0;
  uint8_t type = 0;
  std::string& tenant = scratch->tenant;
  tenant.clear();
  if (!r.GetU8(&version).ok() || !r.GetU8(&type).ok() ||
      !r.GetString(&tenant).ok()) {
    AppendResponse(out, kMsgTypeUnparseable,
                   Status::InvalidArgument("unparseable request envelope"),
                   "");
    return;
  }
  if (version != kProtocolVersion) {
    AppendResponse(out, type,
                   Status::InvalidArgument("unsupported protocol version"),
                   "");
    return;
  }
  if (!WireNameOk(tenant)) {
    AppendResponse(out, type, Status::InvalidArgument("invalid tenant key"),
                   "");
    return;
  }

  Status st;
  std::string& body = scratch->body;
  body.clear();
  switch (static_cast<MsgType>(type)) {
    case MsgType::kPing:
      st = ExpectDone(r);
      break;
    case MsgType::kRegisterSchema:
      st = HandleRegisterSchema(&r, tenant);
      break;
    case MsgType::kCreateDataset:
      st = HandleCreateDataset(&r, tenant);
      break;
    case MsgType::kDropDataset:
      st = HandleDropDataset(&r, tenant);
      break;
    case MsgType::kListDatasets:
      st = ExpectDone(r);
      if (st.ok()) st = HandleListDatasets(tenant, &body);
      break;
    case MsgType::kUpdate:
      st = HandleUpdate(&r, tenant, &scratch->handles, &body);
      break;
    case MsgType::kConfigureShards:
      st = HandleConfigureShards(&r, tenant);
      break;
    case MsgType::kRun:
      st = HandleRun(&r, tenant, scratch, &body);
      break;
    case MsgType::kSubmitLoad:
      st = HandleSubmitLoad(&r, tenant, &body);
      break;
    case MsgType::kCheckJob:
      st = HandleCheckJob(&r, &body);
      break;
    case MsgType::kStats:
      st = ExpectDone(r);
      if (st.ok()) st = HandleStats(&body);
      break;
    case MsgType::kNumObjects:
      st = HandleNumObjects(&r, tenant, &body);
      break;
    case MsgType::kFence:
      st = HandleFence(&r, tenant);
      break;
    default:
      st = Status::Unimplemented("unknown message type");
      break;
  }
  AppendResponse(out, type, st, body);
}

Status SketchServer::HandleRegisterSchema(WireReader* r,
                                          const std::string& tenant) {
  std::string name;
  StoreSchemaOptions opt;
  SKETCH_RETURN_NOT_OK(r->GetString(&name));
  SKETCH_RETURN_NOT_OK(r->GetU32(&opt.dims));
  SKETCH_RETURN_NOT_OK(r->GetU32(&opt.log2_domain));
  SKETCH_RETURN_NOT_OK(r->GetU32(&opt.max_level));
  SKETCH_RETURN_NOT_OK(r->GetU32(&opt.k1));
  SKETCH_RETURN_NOT_OK(r->GetU32(&opt.k2));
  SKETCH_RETURN_NOT_OK(r->GetU64(&opt.seed));
  SKETCH_RETURN_NOT_OK(ExpectDone(*r));
  SKETCH_RETURN_NOT_OK(CheckName(name, "schema"));
  return store_->RegisterSchema(TenantScopedName(tenant, name), opt);
}

Status SketchServer::HandleCreateDataset(WireReader* r,
                                         const std::string& tenant) {
  std::string name;
  std::string schema;
  uint8_t kind = 0;
  uint8_t layout = 0;
  uint8_t width = 0;
  uint8_t backing = 0;
  DatasetOptions dopt;
  SKETCH_RETURN_NOT_OK(r->GetString(&name));
  SKETCH_RETURN_NOT_OK(r->GetString(&schema));
  SKETCH_RETURN_NOT_OK(r->GetU8(&kind));
  SKETCH_RETURN_NOT_OK(r->GetU64(&dopt.eps));
  SKETCH_RETURN_NOT_OK(r->GetU8(&layout));
  SKETCH_RETURN_NOT_OK(r->GetU8(&width));
  SKETCH_RETURN_NOT_OK(r->GetU8(&backing));
  SKETCH_RETURN_NOT_OK(r->GetF64(&dopt.target_epsilon));
  SKETCH_RETURN_NOT_OK(r->GetF64(&dopt.target_phi));
  SKETCH_RETURN_NOT_OK(r->GetF64(&dopt.variance_over_q2));
  SKETCH_RETURN_NOT_OK(r->GetU64(&dopt.max_bytes));
  SKETCH_RETURN_NOT_OK(ExpectDone(*r));
  SKETCH_RETURN_NOT_OK(CheckName(name, "dataset"));
  SKETCH_RETURN_NOT_OK(CheckName(schema, "schema"));
  if (kind > static_cast<uint8_t>(DatasetKind::kContainOuter)) {
    return Status::InvalidArgument("unknown dataset kind byte");
  }
  if (layout > static_cast<uint8_t>(CounterLayout::kBlocked) ||
      width > static_cast<uint8_t>(CounterWidth::kI32) ||
      backing > static_cast<uint8_t>(CounterBacking::kHugePage)) {
    return Status::InvalidArgument("bad counter storage tag byte");
  }
  dopt.layout = static_cast<CounterLayout>(layout);
  dopt.counter_width = static_cast<CounterWidth>(width);
  dopt.backing = static_cast<CounterBacking>(backing);
  return store_->CreateDataset(TenantScopedName(tenant, name),
                               TenantScopedName(tenant, schema),
                               static_cast<DatasetKind>(kind), dopt);
}

Status SketchServer::HandleDropDataset(WireReader* r,
                                       const std::string& tenant) {
  std::string name;
  SKETCH_RETURN_NOT_OK(r->GetString(&name));
  SKETCH_RETURN_NOT_OK(ExpectDone(*r));
  SKETCH_RETURN_NOT_OK(CheckName(name, "dataset"));
  return store_->DropDataset(TenantScopedName(tenant, name));
}

Status SketchServer::HandleListDatasets(const std::string& tenant,
                                        std::string* body) {
  const std::vector<std::string> all = store_->ListDatasets();
  std::vector<std::string> mine;
  if (tenant.empty()) {
    // Root namespace: exactly the names with no tenant separator.
    for (const std::string& name : all) {
      if (name.find(kTenantSeparator) == std::string::npos) {
        mine.push_back(name);
      }
    }
  } else {
    const std::string prefix = tenant + kTenantSeparator;
    for (const std::string& name : all) {
      if (name.rfind(prefix, 0) == 0) mine.push_back(name.substr(prefix.size()));
    }
  }
  PutU32(body, static_cast<uint32_t>(mine.size()));
  for (const std::string& name : mine) PutString(body, name);
  return Status::OK();
}

Status SketchServer::HandleUpdate(WireReader* r, const std::string& tenant,
                                  std::map<std::string, DatasetHandle>* handles,
                                  std::string* body) {
  std::string name;
  uint32_t count = 0;
  SKETCH_RETURN_NOT_OK(r->GetString(&name));
  SKETCH_RETURN_NOT_OK(r->GetU32(&count));
  SKETCH_RETURN_NOT_OK(CheckName(name, "dataset"));
  const std::string scoped = TenantScopedName(tenant, name);

  // Resolve through the connection's handle cache; a dropped/re-created
  // dataset surfaces as FailedPrecondition, upon which the stale cache
  // entry is refreshed once before the update is declared failed.
  auto it = handles->find(scoped);
  if (it == handles->end()) {
    auto opened = store_->OpenDataset(scoped);
    if (!opened.ok()) return opened.status();
    it = handles->emplace(scoped, *opened).first;
  }

  uint64_t applied = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t op = 0;
    Box box;
    SKETCH_RETURN_NOT_OK(r->GetU8(&op));
    SKETCH_RETURN_NOT_OK(r->GetBox(&box));
    if (op > 1) return Status::InvalidArgument("update op byte must be 0 or 1");
    Status st = op == 0 ? it->second.Insert(box) : it->second.Delete(box);
    if (st.code() == StatusCode::kFailedPrecondition) {
      auto reopened = store_->OpenDataset(scoped);
      if (reopened.ok()) {
        it->second = *reopened;
        st = op == 0 ? it->second.Insert(box) : it->second.Delete(box);
      }
    }
    if (!st.ok()) {
      // Streamed semantics: earlier updates in the frame remain applied
      // (they already streamed through the writer path), exactly as if
      // they had been separate frames; the error names the failing row.
      return StatusFromWire(static_cast<uint8_t>(st.code()),
                            "update " + std::to_string(i) + ": " +
                                st.message());
    }
    ++applied;
  }
  SKETCH_RETURN_NOT_OK(ExpectDone(*r));
  PutU64(body, applied);
  return Status::OK();
}

Status SketchServer::HandleConfigureShards(WireReader* r,
                                           const std::string& tenant) {
  std::string name;
  ShardedWriterOptions opt;
  uint32_t writers = 0;
  uint64_t epoch = 0;
  SKETCH_RETURN_NOT_OK(r->GetString(&name));
  SKETCH_RETURN_NOT_OK(r->GetU32(&writers));
  SKETCH_RETURN_NOT_OK(r->GetU64(&epoch));
  SKETCH_RETURN_NOT_OK(ExpectDone(*r));
  SKETCH_RETURN_NOT_OK(CheckName(name, "dataset"));
  opt.writers = writers;
  opt.epoch_updates = epoch;
  return store_->ConfigureShardedWriters(TenantScopedName(tenant, name), opt);
}

Status SketchServer::HandleRun(WireReader* r, const std::string& tenant,
                               RequestScratch* scratch, std::string* body) {
  QueryBatch& batch = scratch->batch;
  SKETCH_RETURN_NOT_OK(DecodeQueryBatch(r, &batch));
  SKETCH_RETURN_NOT_OK(ExpectDone(*r));
  // Scope every spec into the tenant's namespace. Wire specs are
  // name-addressed by construction (handles never cross the wire). The
  // root tenant skips the rewrite — its names map through unchanged.
  for (QuerySpec& spec : batch.specs) {
    if (!WireNameOk(spec.dataset) || !WireNameOk(spec.dataset2)) {
      return Status::InvalidArgument("invalid dataset name in query spec");
    }
    if (tenant.empty()) continue;
    spec.dataset = TenantScopedName(tenant, spec.dataset);
    if (!spec.dataset2.empty()) {
      spec.dataset2 = TenantScopedName(tenant, spec.dataset2);
    }
  }
  SKETCH_RETURN_NOT_OK(store_->Run(batch, &scratch->results));
  AppendQueryResults(body, scratch->results);
  return Status::OK();
}

Status SketchServer::HandleSubmitLoad(WireReader* r, const std::string& tenant,
                                      std::string* body) {
  LoadRequest req;
  std::string name;
  uint8_t sign_code = 0;
  uint8_t source = 0;
  SKETCH_RETURN_NOT_OK(r->GetString(&name));
  SKETCH_RETURN_NOT_OK(r->GetU8(&sign_code));
  SKETCH_RETURN_NOT_OK(r->GetU8(&source));
  SKETCH_RETURN_NOT_OK(CheckName(name, "dataset"));
  if (sign_code > 1) {
    return Status::InvalidArgument("load sign byte must be 0 (+1) or 1 (-1)");
  }
  req.sign = sign_code == 0 ? +1 : -1;
  switch (static_cast<LoadSource>(source)) {
    case LoadSource::kInline: {
      uint32_t count = 0;
      SKETCH_RETURN_NOT_OK(r->GetU32(&count));
      // Cap the reserve at what the payload could hold — a hostile
      // count must not translate into a giant allocation.
      req.inline_boxes.reserve(
          std::min<size_t>(count, r->remaining() / (2 * 8) + 1));
      for (uint32_t i = 0; i < count; ++i) {
        Box box;
        SKETCH_RETURN_NOT_OK(r->GetBox(&box));
        req.inline_boxes.push_back(box);
      }
      req.source = LoadSource::kInline;
      break;
    }
    case LoadSource::kFile:
      SKETCH_RETURN_NOT_OK(r->GetString(&req.file_path));
      req.source = LoadSource::kFile;
      break;
    case LoadSource::kSynthetic: {
      SKETCH_RETURN_NOT_OK(r->GetU32(&req.synthetic.dims));
      SKETCH_RETURN_NOT_OK(r->GetU32(&req.synthetic.log2_domain));
      SKETCH_RETURN_NOT_OK(r->GetF64(&req.synthetic.zipf_z));
      SKETCH_RETURN_NOT_OK(r->GetF64(&req.synthetic.mean_side_factor));
      SKETCH_RETURN_NOT_OK(r->GetU64(&req.synthetic.count));
      SKETCH_RETURN_NOT_OK(r->GetU64(&req.synthetic.seed));
      req.source = LoadSource::kSynthetic;
      break;
    }
    default:
      return Status::InvalidArgument("unknown load source byte");
  }
  SKETCH_RETURN_NOT_OK(ExpectDone(*r));
  req.dataset = TenantScopedName(tenant, name);
  // Fail unknown datasets at submit time (cheap registry probe) so the
  // client learns immediately; the job itself re-fails if the dataset
  // is dropped between submit and execution.
  auto probe = store_->OpenDataset(req.dataset);
  if (!probe.ok()) return probe.status();
  PutU64(body, jobs_.Submit(std::move(req)));
  return Status::OK();
}

Status SketchServer::HandleCheckJob(WireReader* r, std::string* body) {
  uint64_t id = 0;
  SKETCH_RETURN_NOT_OK(r->GetU64(&id));
  SKETCH_RETURN_NOT_OK(ExpectDone(*r));
  auto check = jobs_.Check(id);
  if (!check.ok()) return check.status();
  PutU8(body, static_cast<uint8_t>(check->state));
  PutU64(body, check->rows_applied);
  PutU64(body, check->rows_total);
  PutF64(body, check->fraction());
  PutString(body, check->error);
  return Status::OK();
}

Status SketchServer::HandleStats(std::string* body) {
  const StoreStats s = store_->stats();
  const std::pair<const char*, uint64_t> kv[] = {
      {"inserts", s.inserts},
      {"deletes", s.deletes},
      {"dropped", s.dropped},
      {"bulk_boxes", s.bulk_boxes},
      {"bulk_rows_applied", s.bulk_rows_applied},
      {"range_estimates", s.range_estimates},
      {"join_estimates", s.join_estimates},
      {"self_join_estimates", s.self_join_estimates},
      {"eps_join_estimates", s.eps_join_estimates},
      {"containment_estimates", s.containment_estimates},
      {"query_batches", s.query_batches},
      {"handles_opened", s.handles_opened},
      {"snapshots", s.snapshots},
      {"restores", s.restores},
      {"epoch_folds", s.epoch_folds},
      {"fences", s.fences},
      {"wal_records", s.wal_records},
      {"wal_bytes", s.wal_bytes},
      {"checkpoints", s.checkpoints},
      {"wal_replayed", s.wal_replayed},
      {"sign_cache_hits", s.sign_cache_hits},
      {"sign_cache_misses", s.sign_cache_misses},
      {"sign_cache_evicted", s.sign_cache_evicted},
      {"sign_cache_bytes", s.sign_cache_bytes},
      {"point_sum_hits", s.point_sum_hits},
      {"point_sum_misses", s.point_sum_misses},
      {"point_sum_evicted", s.point_sum_evicted},
      {"point_sum_bytes", s.point_sum_bytes},
  };
  PutU32(body, static_cast<uint32_t>(std::size(kv)));
  for (const auto& [key, value] : kv) {
    PutString(body, key);
    PutU64(body, value);
  }
  return Status::OK();
}

Status SketchServer::HandleNumObjects(WireReader* r, const std::string& tenant,
                                      std::string* body) {
  std::string name;
  SKETCH_RETURN_NOT_OK(r->GetString(&name));
  SKETCH_RETURN_NOT_OK(ExpectDone(*r));
  SKETCH_RETURN_NOT_OK(CheckName(name, "dataset"));
  auto count = store_->NumObjects(TenantScopedName(tenant, name));
  if (!count.ok()) return count.status();
  PutI64(body, *count);
  return Status::OK();
}

Status SketchServer::HandleFence(WireReader* r, const std::string& tenant) {
  std::string name;
  SKETCH_RETURN_NOT_OK(r->GetString(&name));
  SKETCH_RETURN_NOT_OK(ExpectDone(*r));
  SKETCH_RETURN_NOT_OK(CheckName(name, "dataset"));
  return store_->Fence(TenantScopedName(tenant, name));
}

// ---- Shutdown --------------------------------------------------------------

void SketchServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    return;  // idempotent; first caller does the teardown
  }
  if (opt_.io_mode == IoMode::kEvented) {
    // Workers first (Wake is sticky — every Wait returns immediately
    // from here on, and each worker exits on the stopping_ flag),
    // sockets last — so no fd closes under a thread still using it.
    if (poller_) poller_->Wake();
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto& [id, conn] : econns_) {
        (void)poller_->Remove(conn->fd);
        ::close(conn->fd);
      }
      econns_.clear();
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  } else {
    // Unblock accept() and refuse new connections.
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    // Unblock every connection's blocking recv, then join.
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto& [id, conn] : conns_) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
      for (auto& [id, conn] : conns_) {
        conn->thread.join();
        ::close(conn->fd);
      }
      conns_.clear();
    }
  }
  jobs_.Stop();
}

}  // namespace net
}  // namespace spatialsketch
