#include "src/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <iterator>
#include <utility>
#include <vector>

#include "src/api/query_wire.h"

namespace spatialsketch {
namespace net {

namespace {

/// Response envelope: version, echoed type, status, then the body only
/// when the status is OK (an error response never carries a body).
std::string MakeResponse(uint8_t type, const Status& st,
                         const std::string& body) {
  std::string out;
  PutU8(&out, kProtocolVersion);
  PutU8(&out, type);
  PutU8(&out, static_cast<uint8_t>(st.code()));
  PutString(&out, st.message());
  if (st.ok()) out.append(body);
  return out;
}

/// The trailing-garbage check every handler ends its body parse with.
Status ExpectDone(const WireReader& r) {
  if (!r.done()) {
    return Status::InvalidArgument("request body has trailing bytes");
  }
  return Status::OK();
}

/// Schema/dataset names must be non-empty and separator-free.
Status CheckName(const std::string& name, const char* what) {
  if (name.empty() || !WireNameOk(name)) {
    return Status::InvalidArgument(std::string("invalid ") + what + " name");
  }
  return Status::OK();
}

}  // namespace

SketchServer::SketchServer(SketchStore* store, const SketchServerOptions& opt)
    : store_(store),
      opt_(opt),
      jobs_(store, opt.job_workers, opt.load_threads) {}

Result<std::unique_ptr<SketchServer>> SketchServer::Start(
    SketchStore* store, const SketchServerOptions& opt) {
  if (store == nullptr) {
    return Status::InvalidArgument("SketchServer needs a store");
  }
  std::unique_ptr<SketchServer> server(new SketchServer(store, opt));
  SKETCH_RETURN_NOT_OK(server->Listen());
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

SketchServer::~SketchServer() { Stop(); }

Status SketchServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opt_.port);
  if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host: " + opt_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) != 0) {
    const Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    const Status st =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

void SketchServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load(std::memory_order_acquire)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed under us (Stop) or fatal accept error
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conns_mu_);
    ReapFinished();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conns_.emplace(next_conn_id_++, std::move(conn));
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void SketchServer::ReapFinished() {
  // Caller holds conns_mu_.
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection& conn = *it->second;
    if (conn.done.load(std::memory_order_acquire)) {
      conn.thread.join();
      ::close(conn.fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void SketchServer::ServeConnection(Connection* conn) {
  // One cached handle per dataset this connection streams updates to:
  // the per-frame hot path skips the registry lookup exactly like an
  // in-process DatasetHandle user.
  std::map<std::string, DatasetHandle> handles;
  for (;;) {
    std::string payload;
    const Status st = ReadFrame(conn->fd, &payload, opt_.max_frame_bytes);
    if (!st.ok()) {
      if (st.code() == StatusCode::kInvalidArgument) {
        // Oversized length or CRC mismatch: the stream is poisoned.
        // Best-effort error reply, then close this connection only.
        (void)WriteFrame(conn->fd,
                         MakeResponse(kMsgTypeUnparseable, st, ""));
      }
      break;  // eof, truncation, or poisoned stream
    }
    const std::string response = HandleRequest(payload, &handles);
    if (!WriteFrame(conn->fd, response).ok()) break;
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

std::string SketchServer::HandleRequest(
    const std::string& payload,
    std::map<std::string, DatasetHandle>* handles) {
  WireReader r(payload);
  uint8_t version = 0;
  uint8_t type = 0;
  std::string tenant;
  if (!r.GetU8(&version).ok() || !r.GetU8(&type).ok() ||
      !r.GetString(&tenant).ok()) {
    return MakeResponse(kMsgTypeUnparseable,
                        Status::InvalidArgument("unparseable request envelope"),
                        "");
  }
  if (version != kProtocolVersion) {
    return MakeResponse(type,
                        Status::InvalidArgument("unsupported protocol version"),
                        "");
  }
  if (!WireNameOk(tenant)) {
    return MakeResponse(type, Status::InvalidArgument("invalid tenant key"),
                        "");
  }

  Status st;
  std::string body;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kPing:
      st = ExpectDone(r);
      break;
    case MsgType::kRegisterSchema:
      st = HandleRegisterSchema(&r, tenant);
      break;
    case MsgType::kCreateDataset:
      st = HandleCreateDataset(&r, tenant);
      break;
    case MsgType::kDropDataset:
      st = HandleDropDataset(&r, tenant);
      break;
    case MsgType::kListDatasets:
      st = ExpectDone(r);
      if (st.ok()) st = HandleListDatasets(tenant, &body);
      break;
    case MsgType::kUpdate:
      st = HandleUpdate(&r, tenant, handles, &body);
      break;
    case MsgType::kConfigureShards:
      st = HandleConfigureShards(&r, tenant);
      break;
    case MsgType::kRun:
      st = HandleRun(&r, tenant, &body);
      break;
    case MsgType::kSubmitLoad:
      st = HandleSubmitLoad(&r, tenant, &body);
      break;
    case MsgType::kCheckJob:
      st = HandleCheckJob(&r, &body);
      break;
    case MsgType::kStats:
      st = ExpectDone(r);
      if (st.ok()) st = HandleStats(&body);
      break;
    case MsgType::kNumObjects:
      st = HandleNumObjects(&r, tenant, &body);
      break;
    case MsgType::kFence:
      st = HandleFence(&r, tenant);
      break;
    default:
      st = Status::Unimplemented("unknown message type");
      break;
  }
  return MakeResponse(type, st, body);
}

Status SketchServer::HandleRegisterSchema(WireReader* r,
                                          const std::string& tenant) {
  std::string name;
  StoreSchemaOptions opt;
  SKETCH_RETURN_NOT_OK(r->GetString(&name));
  SKETCH_RETURN_NOT_OK(r->GetU32(&opt.dims));
  SKETCH_RETURN_NOT_OK(r->GetU32(&opt.log2_domain));
  SKETCH_RETURN_NOT_OK(r->GetU32(&opt.max_level));
  SKETCH_RETURN_NOT_OK(r->GetU32(&opt.k1));
  SKETCH_RETURN_NOT_OK(r->GetU32(&opt.k2));
  SKETCH_RETURN_NOT_OK(r->GetU64(&opt.seed));
  SKETCH_RETURN_NOT_OK(ExpectDone(*r));
  SKETCH_RETURN_NOT_OK(CheckName(name, "schema"));
  return store_->RegisterSchema(TenantScopedName(tenant, name), opt);
}

Status SketchServer::HandleCreateDataset(WireReader* r,
                                         const std::string& tenant) {
  std::string name;
  std::string schema;
  uint8_t kind = 0;
  uint8_t layout = 0;
  uint8_t width = 0;
  uint8_t backing = 0;
  DatasetOptions dopt;
  SKETCH_RETURN_NOT_OK(r->GetString(&name));
  SKETCH_RETURN_NOT_OK(r->GetString(&schema));
  SKETCH_RETURN_NOT_OK(r->GetU8(&kind));
  SKETCH_RETURN_NOT_OK(r->GetU64(&dopt.eps));
  SKETCH_RETURN_NOT_OK(r->GetU8(&layout));
  SKETCH_RETURN_NOT_OK(r->GetU8(&width));
  SKETCH_RETURN_NOT_OK(r->GetU8(&backing));
  SKETCH_RETURN_NOT_OK(r->GetF64(&dopt.target_epsilon));
  SKETCH_RETURN_NOT_OK(r->GetF64(&dopt.target_phi));
  SKETCH_RETURN_NOT_OK(r->GetF64(&dopt.variance_over_q2));
  SKETCH_RETURN_NOT_OK(r->GetU64(&dopt.max_bytes));
  SKETCH_RETURN_NOT_OK(ExpectDone(*r));
  SKETCH_RETURN_NOT_OK(CheckName(name, "dataset"));
  SKETCH_RETURN_NOT_OK(CheckName(schema, "schema"));
  if (kind > static_cast<uint8_t>(DatasetKind::kContainOuter)) {
    return Status::InvalidArgument("unknown dataset kind byte");
  }
  if (layout > static_cast<uint8_t>(CounterLayout::kBlocked) ||
      width > static_cast<uint8_t>(CounterWidth::kI32) ||
      backing > static_cast<uint8_t>(CounterBacking::kHugePage)) {
    return Status::InvalidArgument("bad counter storage tag byte");
  }
  dopt.layout = static_cast<CounterLayout>(layout);
  dopt.counter_width = static_cast<CounterWidth>(width);
  dopt.backing = static_cast<CounterBacking>(backing);
  return store_->CreateDataset(TenantScopedName(tenant, name),
                               TenantScopedName(tenant, schema),
                               static_cast<DatasetKind>(kind), dopt);
}

Status SketchServer::HandleDropDataset(WireReader* r,
                                       const std::string& tenant) {
  std::string name;
  SKETCH_RETURN_NOT_OK(r->GetString(&name));
  SKETCH_RETURN_NOT_OK(ExpectDone(*r));
  SKETCH_RETURN_NOT_OK(CheckName(name, "dataset"));
  return store_->DropDataset(TenantScopedName(tenant, name));
}

Status SketchServer::HandleListDatasets(const std::string& tenant,
                                        std::string* body) {
  const std::vector<std::string> all = store_->ListDatasets();
  std::vector<std::string> mine;
  if (tenant.empty()) {
    // Root namespace: exactly the names with no tenant separator.
    for (const std::string& name : all) {
      if (name.find(kTenantSeparator) == std::string::npos) {
        mine.push_back(name);
      }
    }
  } else {
    const std::string prefix = tenant + kTenantSeparator;
    for (const std::string& name : all) {
      if (name.rfind(prefix, 0) == 0) mine.push_back(name.substr(prefix.size()));
    }
  }
  PutU32(body, static_cast<uint32_t>(mine.size()));
  for (const std::string& name : mine) PutString(body, name);
  return Status::OK();
}

Status SketchServer::HandleUpdate(WireReader* r, const std::string& tenant,
                                  std::map<std::string, DatasetHandle>* handles,
                                  std::string* body) {
  std::string name;
  uint32_t count = 0;
  SKETCH_RETURN_NOT_OK(r->GetString(&name));
  SKETCH_RETURN_NOT_OK(r->GetU32(&count));
  SKETCH_RETURN_NOT_OK(CheckName(name, "dataset"));
  const std::string scoped = TenantScopedName(tenant, name);

  // Resolve through the connection's handle cache; a dropped/re-created
  // dataset surfaces as FailedPrecondition, upon which the stale cache
  // entry is refreshed once before the update is declared failed.
  auto it = handles->find(scoped);
  if (it == handles->end()) {
    auto opened = store_->OpenDataset(scoped);
    if (!opened.ok()) return opened.status();
    it = handles->emplace(scoped, *opened).first;
  }

  uint64_t applied = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t op = 0;
    Box box;
    SKETCH_RETURN_NOT_OK(r->GetU8(&op));
    SKETCH_RETURN_NOT_OK(r->GetBox(&box));
    if (op > 1) return Status::InvalidArgument("update op byte must be 0 or 1");
    Status st = op == 0 ? it->second.Insert(box) : it->second.Delete(box);
    if (st.code() == StatusCode::kFailedPrecondition) {
      auto reopened = store_->OpenDataset(scoped);
      if (reopened.ok()) {
        it->second = *reopened;
        st = op == 0 ? it->second.Insert(box) : it->second.Delete(box);
      }
    }
    if (!st.ok()) {
      // Streamed semantics: earlier updates in the frame remain applied
      // (they already streamed through the writer path), exactly as if
      // they had been separate frames; the error names the failing row.
      return StatusFromWire(static_cast<uint8_t>(st.code()),
                            "update " + std::to_string(i) + ": " +
                                st.message());
    }
    ++applied;
  }
  SKETCH_RETURN_NOT_OK(ExpectDone(*r));
  PutU64(body, applied);
  return Status::OK();
}

Status SketchServer::HandleConfigureShards(WireReader* r,
                                           const std::string& tenant) {
  std::string name;
  ShardedWriterOptions opt;
  uint32_t writers = 0;
  uint64_t epoch = 0;
  SKETCH_RETURN_NOT_OK(r->GetString(&name));
  SKETCH_RETURN_NOT_OK(r->GetU32(&writers));
  SKETCH_RETURN_NOT_OK(r->GetU64(&epoch));
  SKETCH_RETURN_NOT_OK(ExpectDone(*r));
  SKETCH_RETURN_NOT_OK(CheckName(name, "dataset"));
  opt.writers = writers;
  opt.epoch_updates = epoch;
  return store_->ConfigureShardedWriters(TenantScopedName(tenant, name), opt);
}

Status SketchServer::HandleRun(WireReader* r, const std::string& tenant,
                               std::string* body) {
  QueryBatch batch;
  SKETCH_RETURN_NOT_OK(DecodeQueryBatch(r, &batch));
  SKETCH_RETURN_NOT_OK(ExpectDone(*r));
  // Scope every spec into the tenant's namespace. Wire specs are
  // name-addressed by construction (handles never cross the wire).
  for (QuerySpec& spec : batch.specs) {
    if (!WireNameOk(spec.dataset) || !WireNameOk(spec.dataset2)) {
      return Status::InvalidArgument("invalid dataset name in query spec");
    }
    spec.dataset = TenantScopedName(tenant, spec.dataset);
    if (!spec.dataset2.empty()) {
      spec.dataset2 = TenantScopedName(tenant, spec.dataset2);
    }
  }
  auto run = store_->Run(batch);
  if (!run.ok()) return run.status();
  AppendQueryResults(body, *run);
  return Status::OK();
}

Status SketchServer::HandleSubmitLoad(WireReader* r, const std::string& tenant,
                                      std::string* body) {
  LoadRequest req;
  std::string name;
  uint8_t sign_code = 0;
  uint8_t source = 0;
  SKETCH_RETURN_NOT_OK(r->GetString(&name));
  SKETCH_RETURN_NOT_OK(r->GetU8(&sign_code));
  SKETCH_RETURN_NOT_OK(r->GetU8(&source));
  SKETCH_RETURN_NOT_OK(CheckName(name, "dataset"));
  if (sign_code > 1) {
    return Status::InvalidArgument("load sign byte must be 0 (+1) or 1 (-1)");
  }
  req.sign = sign_code == 0 ? +1 : -1;
  switch (static_cast<LoadSource>(source)) {
    case LoadSource::kInline: {
      uint32_t count = 0;
      SKETCH_RETURN_NOT_OK(r->GetU32(&count));
      // Cap the reserve at what the payload could hold — a hostile
      // count must not translate into a giant allocation.
      req.inline_boxes.reserve(
          std::min<size_t>(count, r->remaining() / (2 * 8) + 1));
      for (uint32_t i = 0; i < count; ++i) {
        Box box;
        SKETCH_RETURN_NOT_OK(r->GetBox(&box));
        req.inline_boxes.push_back(box);
      }
      req.source = LoadSource::kInline;
      break;
    }
    case LoadSource::kFile:
      SKETCH_RETURN_NOT_OK(r->GetString(&req.file_path));
      req.source = LoadSource::kFile;
      break;
    case LoadSource::kSynthetic: {
      SKETCH_RETURN_NOT_OK(r->GetU32(&req.synthetic.dims));
      SKETCH_RETURN_NOT_OK(r->GetU32(&req.synthetic.log2_domain));
      SKETCH_RETURN_NOT_OK(r->GetF64(&req.synthetic.zipf_z));
      SKETCH_RETURN_NOT_OK(r->GetF64(&req.synthetic.mean_side_factor));
      SKETCH_RETURN_NOT_OK(r->GetU64(&req.synthetic.count));
      SKETCH_RETURN_NOT_OK(r->GetU64(&req.synthetic.seed));
      req.source = LoadSource::kSynthetic;
      break;
    }
    default:
      return Status::InvalidArgument("unknown load source byte");
  }
  SKETCH_RETURN_NOT_OK(ExpectDone(*r));
  req.dataset = TenantScopedName(tenant, name);
  // Fail unknown datasets at submit time (cheap registry probe) so the
  // client learns immediately; the job itself re-fails if the dataset
  // is dropped between submit and execution.
  auto probe = store_->OpenDataset(req.dataset);
  if (!probe.ok()) return probe.status();
  PutU64(body, jobs_.Submit(std::move(req)));
  return Status::OK();
}

Status SketchServer::HandleCheckJob(WireReader* r, std::string* body) {
  uint64_t id = 0;
  SKETCH_RETURN_NOT_OK(r->GetU64(&id));
  SKETCH_RETURN_NOT_OK(ExpectDone(*r));
  auto check = jobs_.Check(id);
  if (!check.ok()) return check.status();
  PutU8(body, static_cast<uint8_t>(check->state));
  PutU64(body, check->rows_applied);
  PutU64(body, check->rows_total);
  PutF64(body, check->fraction());
  PutString(body, check->error);
  return Status::OK();
}

Status SketchServer::HandleStats(std::string* body) {
  const StoreStats s = store_->stats();
  const std::pair<const char*, uint64_t> kv[] = {
      {"inserts", s.inserts},
      {"deletes", s.deletes},
      {"dropped", s.dropped},
      {"bulk_boxes", s.bulk_boxes},
      {"bulk_rows_applied", s.bulk_rows_applied},
      {"range_estimates", s.range_estimates},
      {"join_estimates", s.join_estimates},
      {"self_join_estimates", s.self_join_estimates},
      {"eps_join_estimates", s.eps_join_estimates},
      {"containment_estimates", s.containment_estimates},
      {"query_batches", s.query_batches},
      {"handles_opened", s.handles_opened},
      {"snapshots", s.snapshots},
      {"restores", s.restores},
      {"epoch_folds", s.epoch_folds},
      {"fences", s.fences},
      {"wal_records", s.wal_records},
      {"wal_bytes", s.wal_bytes},
      {"checkpoints", s.checkpoints},
      {"wal_replayed", s.wal_replayed},
      {"sign_cache_hits", s.sign_cache_hits},
      {"sign_cache_misses", s.sign_cache_misses},
      {"sign_cache_evicted", s.sign_cache_evicted},
      {"sign_cache_bytes", s.sign_cache_bytes},
      {"point_sum_hits", s.point_sum_hits},
      {"point_sum_misses", s.point_sum_misses},
      {"point_sum_evicted", s.point_sum_evicted},
      {"point_sum_bytes", s.point_sum_bytes},
  };
  PutU32(body, static_cast<uint32_t>(std::size(kv)));
  for (const auto& [key, value] : kv) {
    PutString(body, key);
    PutU64(body, value);
  }
  return Status::OK();
}

Status SketchServer::HandleNumObjects(WireReader* r, const std::string& tenant,
                                      std::string* body) {
  std::string name;
  SKETCH_RETURN_NOT_OK(r->GetString(&name));
  SKETCH_RETURN_NOT_OK(ExpectDone(*r));
  SKETCH_RETURN_NOT_OK(CheckName(name, "dataset"));
  auto count = store_->NumObjects(TenantScopedName(tenant, name));
  if (!count.ok()) return count.status();
  PutI64(body, *count);
  return Status::OK();
}

Status SketchServer::HandleFence(WireReader* r, const std::string& tenant) {
  std::string name;
  SKETCH_RETURN_NOT_OK(r->GetString(&name));
  SKETCH_RETURN_NOT_OK(ExpectDone(*r));
  SKETCH_RETURN_NOT_OK(CheckName(name, "dataset"));
  return store_->Fence(TenantScopedName(tenant, name));
}

void SketchServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    return;  // idempotent; first caller does the teardown
  }
  // Unblock accept() and refuse new connections.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Unblock every connection's blocking recv, then join.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, conn] : conns_) {
      ::shutdown(conn->fd, SHUT_RDWR);
    }
    for (auto& [id, conn] : conns_) {
      conn->thread.join();
      ::close(conn->fd);
    }
    conns_.clear();
  }
  jobs_.Stop();
}

}  // namespace net
}  // namespace spatialsketch
