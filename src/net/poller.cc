#include "src/net/poller.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <map>
#include <mutex>
#include <utility>

#if defined(__linux__)
#define SPATIALSKETCH_HAVE_EPOLL 1
#include <sys/epoll.h>
#endif

namespace spatialsketch {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

// Self-pipe both backends use to interrupt a blocked wait. Nonblocking
// on both ends so a flood of Wake() calls can never block the waker and
// the drain can never block the loop.
Status MakeWakePipe(int fds[2]) {
  if (::pipe(fds) != 0) return Errno("pipe");
  for (int i = 0; i < 2; ++i) {
    const int flags = ::fcntl(fds[i], F_GETFL, 0);
    ::fcntl(fds[i], F_SETFL, flags | O_NONBLOCK);
  }
  return Status::OK();
}

void DrainPipe(int fd) {
  char buf[256];
  while (::read(fd, buf, sizeof(buf)) > 0) {
  }
}

void NudgePipe(int fd) {
  const char byte = 1;
  // EAGAIN means a nudge is already pending — exactly as good.
  (void)!::write(fd, &byte, 1);
}

#if SPATIALSKETCH_HAVE_EPOLL

// epoll backend: EPOLLONESHOT gives the one-shot discipline natively
// (a fired fd is delivered to exactly one of the concurrent epoll_wait
// callers), and epoll_ctl from worker threads takes effect inside a
// concurrent epoll_wait without any wakeup dance.
class EpollPoller final : public Poller {
 public:
  static Result<std::unique_ptr<Poller>> Make() {
    auto p = std::unique_ptr<EpollPoller>(new EpollPoller());
    p->epfd_ = ::epoll_create1(0);
    if (p->epfd_ < 0) return Errno("epoll_create1");
    SKETCH_RETURN_NOT_OK(MakeWakePipe(p->wake_));
    epoll_event ev{};
    ev.events = EPOLLIN;  // level-triggered, NOT one-shot: always armed
    ev.data.u64 = kWakeToken;
    if (::epoll_ctl(p->epfd_, EPOLL_CTL_ADD, p->wake_[0], &ev) != 0) {
      return Errno("epoll_ctl(wake)");
    }
    return std::unique_ptr<Poller>(std::move(p));
  }

  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
    for (int fd : wake_) {
      if (fd >= 0) ::close(fd);
    }
  }

  Status Add(int fd, uint64_t token, bool want_write) override {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLONESHOT | (want_write ? EPOLLOUT : 0u);
    ev.data.u64 = token;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      return Errno("epoll_ctl(add)");
    }
    return Status::OK();
  }

  Status Rearm(int fd, uint64_t token, bool want_read,
               bool want_write) override {
    epoll_event ev{};
    ev.events = EPOLLONESHOT | (want_read ? EPOLLIN : 0u) |
                (want_write ? EPOLLOUT : 0u);
    ev.data.u64 = token;
    if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
      return Errno("epoll_ctl(mod)");
    }
    return Status::OK();
  }

  Status Remove(int fd) override {
    if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
      return Errno("epoll_ctl(del)");
    }
    return Status::OK();
  }

  void Wake() override {
    // Sticky: the readable nudge byte is never drained once woken_ is
    // set, so the level-triggered wake entry keeps firing and EVERY
    // current and future Wait returns immediately (the whole worker
    // pool sees one shutdown signal).
    woken_.store(true, std::memory_order_release);
    NudgePipe(wake_[1]);
  }

  Status Wait(std::vector<Event>* out) override {
    out->clear();
    if (woken_.load(std::memory_order_acquire)) return Status::OK();
    epoll_event fired[64];
    int n;
    do {
      n = ::epoll_wait(epfd_, fired, 64, -1);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return Errno("epoll_wait");
    for (int i = 0; i < n; ++i) {
      if (fired[i].data.u64 == kWakeToken) {
        if (!woken_.load(std::memory_order_acquire)) DrainPipe(wake_[0]);
        continue;
      }
      Event ev;
      ev.token = fired[i].data.u64;
      ev.readable = (fired[i].events & EPOLLIN) != 0;
      ev.writable = (fired[i].events & EPOLLOUT) != 0;
      ev.error = (fired[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out->push_back(ev);
    }
    return Status::OK();
  }

 private:
  static constexpr uint64_t kWakeToken = ~uint64_t{0};

  EpollPoller() = default;

  int epfd_ = -1;
  int wake_[2] = {-1, -1};
  std::atomic<bool> woken_{false};
};

#endif  // SPATIALSKETCH_HAVE_EPOLL

// poll(2) backend: an interest map guarded by a mutex, rebuilt into a
// pollfd array per wait. One-shot is emulated by zeroing the entry's
// interest mask before reporting — under the mutex, so when several
// workers poll the same descriptors concurrently, exactly one claims a
// firing and the rest skip it. Rearm/Add/Remove nudge the self-pipe so
// a blocked poll picks the change up.
class PollPoller final : public Poller {
 public:
  static Result<std::unique_ptr<Poller>> Make() {
    auto p = std::unique_ptr<PollPoller>(new PollPoller());
    SKETCH_RETURN_NOT_OK(MakeWakePipe(p->wake_));
    return std::unique_ptr<Poller>(std::move(p));
  }

  ~PollPoller() override {
    for (int fd : wake_) {
      if (fd >= 0) ::close(fd);
    }
  }

  Status Add(int fd, uint64_t token, bool want_write) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      Entry& e = entries_[fd];
      e.token = token;
      e.events = POLLIN | (want_write ? POLLOUT : 0);
    }
    NudgePipe(wake_[1]);
    return Status::OK();
  }

  Status Rearm(int fd, uint64_t token, bool want_read,
               bool want_write) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(fd);
      if (it == entries_.end()) {
        return Status::InvalidArgument("poll rearm of unregistered fd");
      }
      it->second.token = token;
      it->second.events =
          (want_read ? POLLIN : 0) | (want_write ? POLLOUT : 0);
    }
    NudgePipe(wake_[1]);
    return Status::OK();
  }

  Status Remove(int fd) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      entries_.erase(fd);
    }
    NudgePipe(wake_[1]);
    return Status::OK();
  }

  void Wake() override {
    // Sticky shutdown signal, same contract as the epoll backend: the
    // nudge byte stays in the pipe, so every waiter unblocks.
    woken_.store(true, std::memory_order_release);
    NudgePipe(wake_[1]);
  }

  Status Wait(std::vector<Event>* out) override {
    out->clear();
    if (woken_.load(std::memory_order_acquire)) return Status::OK();
    std::vector<pollfd> fds;
    std::vector<uint64_t> tokens;
    {
      std::lock_guard<std::mutex> lock(mu_);
      fds.reserve(entries_.size() + 1);
      tokens.reserve(entries_.size() + 1);
      fds.push_back(pollfd{wake_[0], POLLIN, 0});
      tokens.push_back(0);
      for (const auto& [fd, entry] : entries_) {
        if (entry.events == 0) continue;  // fired, not yet re-armed
        fds.push_back(pollfd{fd, entry.events, 0});
        tokens.push_back(entry.token);
      }
    }
    int n;
    do {
      n = ::poll(fds.data(), fds.size(), -1);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return Errno("poll");
    if (fds[0].revents != 0 && !woken_.load(std::memory_order_acquire)) {
      DrainPipe(wake_[0]);
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 1; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      auto it = entries_.find(fds[i].fd);
      // Skip entries Removed or re-registered while poll slept.
      if (it == entries_.end() || it->second.token != tokens[i] ||
          it->second.events == 0) {
        continue;
      }
      it->second.events = 0;  // one-shot: disarm before reporting
      Event ev;
      ev.token = tokens[i];
      ev.readable = (fds[i].revents & POLLIN) != 0;
      ev.writable = (fds[i].revents & POLLOUT) != 0;
      ev.error = (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out->push_back(ev);
    }
    return Status::OK();
  }

 private:
  struct Entry {
    uint64_t token = 0;
    short events = 0;  ///< current interest mask; 0 = disarmed
  };

  PollPoller() = default;

  std::mutex mu_;
  std::map<int, Entry> entries_;
  int wake_[2] = {-1, -1};
  std::atomic<bool> woken_{false};
};

}  // namespace

Result<std::unique_ptr<Poller>> Poller::Create(PollerBackend backend) {
  switch (backend) {
    case PollerBackend::kAuto:
#if SPATIALSKETCH_HAVE_EPOLL
      return EpollPoller::Make();
#else
      return PollPoller::Make();
#endif
    case PollerBackend::kEpoll:
#if SPATIALSKETCH_HAVE_EPOLL
      return EpollPoller::Make();
#else
      return Status::Unimplemented("epoll is not available on this platform");
#endif
    case PollerBackend::kPoll:
      return PollPoller::Make();
  }
  return Status::InvalidArgument("unknown poller backend");
}

}  // namespace net
}  // namespace spatialsketch
