// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// The RPC catalog of the network serving layer: message types, the
// request/response envelope, and the shared tenant-keying rule. Both
// SketchServer and SketchClient encode against this header only — the
// byte layouts themselves are the src/net/wire.h codec, and the full
// catalog with per-RPC body layouts is documented in docs/NETWORK.md.
//
// Envelope (inside every CRC32C-checked frame):
//   request  = [u8 protocol version][u8 MsgType][string tenant][body]
//   response = [u8 protocol version][u8 MsgType echo][u8 status code]
//              [string status message][body iff status == OK]
//
// Tenant keying: a non-empty tenant key prefixes every schema and
// dataset name as "<tenant>\x1f<name>" inside the shared SketchStore,
// so tenants address disjoint namespaces through one store and one
// port (the DAS --das-key idiom). The empty tenant is the root
// namespace — names map through unchanged, which is what lets a test
// compare networked answers bit-identically against direct calls on
// the same store. Names and tenant keys must not contain the '\x1f'
// separator; the server validates both.

#ifndef SPATIALSKETCH_NET_PROTOCOL_H_
#define SPATIALSKETCH_NET_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace spatialsketch {
namespace net {

/// Envelope version byte; a mismatch is a clean request-level error.
inline constexpr uint8_t kProtocolVersion = 1;

/// The namespace separator tenant keys are joined with ('\x1f', the
/// ASCII unit separator — rejected inside names and tenant keys).
inline constexpr char kTenantSeparator = '\x1f';

/// Request message types. Stable wire values: append new RPCs at the
/// end, never renumber.
enum class MsgType : uint8_t {
  kPing = 0,             ///< liveness probe; empty body both ways
  kRegisterSchema = 1,   ///< SketchStore::RegisterSchema
  kCreateDataset = 2,    ///< SketchStore::CreateDataset (full options)
  kDropDataset = 3,      ///< SketchStore::DropDataset
  kListDatasets = 4,     ///< the tenant's dataset names (un-prefixed)
  kUpdate = 5,           ///< streamed update frame: batched signed boxes
  kConfigureShards = 6,  ///< SketchStore::ConfigureShardedWriters
  kRun = 7,              ///< one batched Run(QueryBatch) round trip
  kSubmitLoad = 8,       ///< async bulk load; returns a job id
  kCheckJob = 9,         ///< job state/progress (the DAS check idiom)
  kStats = 10,           ///< store-wide StoreStats as key/value pairs
  kNumObjects = 11,      ///< net object count of one dataset
  kFence = 12,           ///< epoch fence of one dataset
};

/// The MsgType a response echoes when the request envelope itself could
/// not be parsed (no type to echo).
inline constexpr uint8_t kMsgTypeUnparseable = 0xff;

/// The MsgType of the one unsolicited frame the server ever sends: the
/// clean rejection a connection over the server's connection cap
/// receives before its socket closes (backpressure, never a hang). The
/// frame is a normal response envelope — version, this type, a non-OK
/// status — so an unmodified SketchClient surfaces the rejection as the
/// Status of its Connect-time Ping.
inline constexpr uint8_t kMsgTypeOverCapacity = 0xfe;

/// Bulk-load source kinds of a kSubmitLoad body (docs/NETWORK.md). The
/// file and synthetic sources keep the raw rows server-side — only the
/// recipe travels, per the federated "summaries travel, data stays put"
/// pattern.
enum class LoadSource : uint8_t {
  kInline = 0,     ///< boxes in the request body (small batches)
  kFile = 1,       ///< a server-local box file (wire.h WriteBoxFile)
  kSynthetic = 2,  ///< SyntheticBoxOptions generated server-side
};

/// Async job states reported by kCheckJob.
enum class JobState : uint8_t {
  kPending = 0,  ///< queued; no worker picked it up yet
  kRunning = 1,  ///< load in progress; progress fields advance
  kDone = 2,     ///< completed; rows_applied == rows_total
  kFailed = 3,   ///< terminated with the reported error
};

/// Stable lowercase job-state names ("pending", "running", ...).
inline const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kPending:
      return "pending";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
  }
  return "unknown";
}

/// One job's observable status — the kCheckJob response body. Progress
/// is rows applied out of rows total; `fraction()` is the real number
/// the DAS idiom's bare state enum lacked.
struct JobStatusReport {
  JobState state = JobState::kPending;  ///< lifecycle state
  uint64_t rows_applied = 0;            ///< boxes absorbed so far
  uint64_t rows_total = 0;   ///< boxes the job will apply (0 until known)
  std::string error;         ///< failure reason iff state == kFailed

  /// Completed fraction in [0, 1]; 0 while the total is still unknown,
  /// exactly 1 when done.
  double fraction() const {
    if (state == JobState::kDone) return 1.0;
    if (rows_total == 0) return 0.0;
    const double f =
        static_cast<double>(rows_applied) / static_cast<double>(rows_total);
    return f > 1.0 ? 1.0 : f;
  }
};

/// True iff `name` is usable as a tenant key or a schema/dataset name:
/// no separator byte, no newline, length under 256 (tenant keys may be
/// empty; the server enforces non-emptiness for names separately).
inline bool WireNameOk(const std::string& name) {
  if (name.size() >= 256) return false;
  for (char c : name) {
    if (c == kTenantSeparator || c == '\n' || c == '\0') return false;
  }
  return true;
}

/// The internal (store-registry) name of `name` inside `tenant`'s
/// namespace: the name itself for the root tenant, otherwise
/// "<tenant>\x1f<name>".
inline std::string TenantScopedName(const std::string& tenant,
                                    const std::string& name) {
  if (tenant.empty()) return name;
  std::string out;
  out.reserve(tenant.size() + 1 + name.size());
  out.append(tenant);
  out.push_back(kTenantSeparator);
  out.append(name);
  return out;
}

}  // namespace net
}  // namespace spatialsketch

#endif  // SPATIALSKETCH_NET_PROTOCOL_H_
