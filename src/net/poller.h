// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Readiness polling for the event-driven serving core (src/net/server.h
// "evented" I/O mode): a one-shot readiness multiplexer with an epoll
// backend on Linux and a portable poll(2) fallback, behind one tiny
// interface.
//
// One-shot discipline: once Wait() reports a descriptor, that
// descriptor is DISARMED — it produces no further events until Rearm().
// This is the mutual-exclusion mechanism of the serving core: a fired
// connection is delivered to exactly one worker, the worker owns the
// connection (buffers, scratch, socket) without any per-connection
// lock, and re-arms when it is done. Epoll gets this from EPOLLONESHOT;
// the poll backend emulates it by dropping the entry's interest mask
// before reporting (under its mutex, so the claim is exactly-once even
// with concurrent waiters).
//
// Thread contract: EVERY method, including Wait(), is safe from any
// thread — the serving core's I/O workers all block in Wait() on the
// same poller and the one-shot discipline shards fired descriptors
// across them (this is what deletes the dispatcher-thread handoff, and
// with it two context switches, from the RPC hot path). Add, Rearm,
// and Remove take effect inside a concurrent Wait (the poll backend
// rebuilds its pollfd set after a self-pipe nudge; epoll_ctl takes
// effect inside epoll_wait natively).

#ifndef SPATIALSKETCH_NET_POLLER_H_
#define SPATIALSKETCH_NET_POLLER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"

namespace spatialsketch {
namespace net {

/// Which readiness backend a Poller uses.
enum class PollerBackend : uint8_t {
  kAuto = 0,   ///< epoll where available (Linux), else poll
  kEpoll = 1,  ///< epoll(7); Create fails where unsupported
  kPoll = 2,   ///< portable poll(2) loop (also the fallback under test)
};

/// One-shot readiness multiplexer (see the file comment).
class Poller {
 public:
  /// One fired descriptor: the caller's token plus what fired. After
  /// delivery the descriptor is disarmed until Rearm().
  struct Event {
    uint64_t token = 0;    ///< the token registered with Add/Rearm
    bool readable = false; ///< POLLIN-class readiness
    bool writable = false; ///< POLLOUT-class readiness
    bool error = false;    ///< POLLERR/POLLHUP-class condition
  };

  /// Build a poller for `backend` (kAuto picks epoll on Linux).
  static Result<std::unique_ptr<Poller>> Create(PollerBackend backend);

  virtual ~Poller() = default;

  /// Register `fd`, armed one-shot for read (and write if `want_write`).
  /// `token` is returned verbatim in the Event. Thread-safe.
  virtual Status Add(int fd, uint64_t token, bool want_write) = 0;

  /// Re-arm a previously fired descriptor for read and/or write. At
  /// least one of the two must be requested. Thread-safe.
  virtual Status Rearm(int fd, uint64_t token, bool want_read,
                       bool want_write) = 0;

  /// Deregister `fd` entirely (before closing it). Thread-safe.
  virtual Status Remove(int fd) = 0;

  /// Unblock EVERY Wait() — current and future: Wake is sticky, the
  /// shutdown signal of the worker pool. After Wake every Wait returns
  /// immediately (OK, zero events) forever; callers are expected to
  /// observe their own stop flag and exit. Thread-safe.
  virtual void Wake() = 0;

  /// Block until at least one armed descriptor fires or Wake() is
  /// called; fired descriptors are disarmed and appended to `out`
  /// (cleared first). May return OK with zero events (a Wake, or a
  /// concurrent waiter claimed the firing first). Safe to call from
  /// many threads at once.
  virtual Status Wait(std::vector<Event>* out) = 0;

 protected:
  Poller() = default;
};

}  // namespace net
}  // namespace spatialsketch

#endif  // SPATIALSKETCH_NET_POLLER_H_
