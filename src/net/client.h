// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// SketchClient: the typed client for the framed-TCP serving layer
// (src/net/server.h, docs/NETWORK.md). One client owns one connection
// and speaks the protocol.h RPC catalog; every method is a synchronous
// request/response round trip that surfaces the server's Status
// verbatim (same code, same message) — so remote error handling reads
// exactly like in-process error handling.
//
// Tenancy: the tenant key is fixed at Connect and stamped on every
// request. An empty tenant addresses the root namespace, whose names
// are exactly the store's own names.
//
// Thread safety: NONE — a client is one ordered byte stream, so use one
// client per thread (the latency bench and the equivalence tests do
// exactly that; connections are cheap).

#ifndef SPATIALSKETCH_NET_CLIENT_H_
#define SPATIALSKETCH_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/api/query.h"
#include "src/common/status.h"
#include "src/net/protocol.h"
#include "src/net/wire.h"
#include "src/store/sketch_store.h"
#include "src/workload/zipf_boxes.h"

namespace spatialsketch {
namespace net {

/// Where and as whom a SketchClient connects.
struct SketchClientOptions {
  std::string host = "127.0.0.1";  ///< server address
  uint16_t port = 0;        ///< required (no default serving port)
  std::string tenant;       ///< namespace key; empty = root namespace
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;  ///< response bound
};

/// One streamed update: insert (sign +1) or delete (sign -1) of a box.
struct UpdateOp {
  bool is_delete = false;  ///< false = insert, true = delete
  Box box;                 ///< the object
};

/// Typed synchronous client over one framed-TCP connection.
class SketchClient {
 public:
  /// Connect and verify liveness with a Ping round trip.
  static Result<std::unique_ptr<SketchClient>> Connect(
      const SketchClientOptions& opt);

  /// Closes the connection (no server-side teardown needed).
  ~SketchClient();

  /// No-op round trip; proves the connection and protocol version.
  Status Ping();

  // -- Schema / dataset management (mirrors SketchStore) -----------------
  /// SketchStore::RegisterSchema inside this client's namespace.
  Status RegisterSchema(const std::string& name,
                        const StoreSchemaOptions& opt);
  /// SketchStore::CreateDataset; `schema` names a registered schema.
  Status CreateDataset(const std::string& name, const std::string& schema,
                       DatasetKind kind, const DatasetOptions& opt = {});
  /// SketchStore::DropDataset; in-flight handles invalidate server-side.
  Status DropDataset(const std::string& name);
  /// The namespace's dataset names (un-prefixed), sorted.
  Result<std::vector<std::string>> ListDatasets();

  // -- Streaming updates -------------------------------------------------
  /// Apply a batch of inserts/deletes in frame order; returns the number
  /// applied. On error, ops before the failing one remain applied (same
  /// semantics as issuing them as separate frames).
  Result<uint64_t> Update(const std::string& dataset,
                          const std::vector<UpdateOp>& ops);
  /// One-op Update convenience: insert `box`.
  Status Insert(const std::string& dataset, const Box& box);
  /// One-op Update convenience: delete `box`.
  Status Delete(const std::string& dataset, const Box& box);
  /// SketchStore::ConfigureShardedWriters on the dataset.
  Status ConfigureShards(const std::string& dataset, uint32_t writers,
                         uint64_t epoch_updates);

  // -- Queries -----------------------------------------------------------
  /// Run a batch of query specs; the returned vector is positionally
  /// aligned with the batch and every double is bit-identical to the
  /// server's in-process answer.
  Result<std::vector<QueryResult>> Run(const QueryBatch& batch);

  // -- Async bulk loads (SubmitLoad / CheckJob) --------------------------
  /// Submit the boxes themselves in the request; returns the job id.
  Result<uint64_t> SubmitLoadInline(const std::string& dataset,
                                    const std::vector<Box>& boxes,
                                    int sign = +1);
  /// The file path is SERVER-local (the "raw data stays put" idiom: the
  /// recipe travels, the rows do not).
  Result<uint64_t> SubmitLoadFile(const std::string& dataset,
                                  const std::string& server_path,
                                  int sign = +1);
  /// Submit a synthetic-workload recipe; rows generate server-side.
  Result<uint64_t> SubmitLoadSynthetic(const std::string& dataset,
                                       const SyntheticBoxOptions& opt,
                                       int sign = +1);
  /// The job's state/progress snapshot (protocol.h JobStatusReport).
  Result<JobStatusReport> CheckJob(uint64_t id);
  /// Poll CheckJob until the job is terminal (convenience used by
  /// sketchctl and the tests); `poll_millis` between probes.
  Result<JobStatusReport> WaitJob(uint64_t id, uint32_t poll_millis = 20);

  // -- Introspection -----------------------------------------------------
  /// Store-wide StoreStats as key/value pairs (store-wide: counts cover
  /// every tenant, not just this client's namespace).
  Result<std::map<std::string, uint64_t>> Stats();
  /// Net object count (inserts minus deletes) of the dataset.
  Result<int64_t> NumObjects(const std::string& dataset);
  /// SketchStore::Fence: fold pending writer-shard deltas now.
  Status Fence(const std::string& dataset);

 private:
  explicit SketchClient(const SketchClientOptions& opt) : opt_(opt) {}

  Status Dial();
  /// One round trip: frame [ver][type][tenant][body], read the reply,
  /// verify the envelope echo, surface the server Status; on OK the
  /// response body is left in `*reply`.
  Status Call(MsgType type, const std::string& body, std::string* reply);
  Result<uint64_t> SubmitLoadFrame(const std::string& body);

  const SketchClientOptions opt_;
  int fd_ = -1;

  SKETCH_DISALLOW_COPY_AND_ASSIGN(SketchClient);
};

}  // namespace net
}  // namespace spatialsketch

#endif  // SPATIALSKETCH_NET_CLIENT_H_
