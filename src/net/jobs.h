// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// The async bulk-load job layer behind SubmitLoad/CheckJob (the DAS
// load/check idiom): SubmitLoad returns a job id immediately, a
// background worker materializes the rows (inline batch, server-local
// box file, or a synthetic recipe) and runs SketchStore::
// ParallelBulkLoad with a per-job rows-applied sink, and CheckJob
// reports pending/running/done/failed plus a real progress fraction —
// so a multi-GB ingest never blocks the serving threads, and a client
// watching the job sees monotone progress instead of a spinner.
//
// Concurrency: Submit enqueues under the manager's mutex and returns;
// a small fixed worker pool pops jobs FIFO. Job state and progress are
// atomics, so CheckJob never contends with a running load (it takes
// the mutex only to look the id up and to copy a failed job's error
// string). Stop() drains nothing: it marks the queue closed, wakes the
// workers, and joins them — queued-but-unstarted jobs finish as
// kFailed("server shutting down") so a late CheckJob gets an answer.

#ifndef SPATIALSKETCH_NET_JOBS_H_
#define SPATIALSKETCH_NET_JOBS_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/geom/box.h"
#include "src/net/protocol.h"
#include "src/store/sketch_store.h"
#include "src/workload/zipf_boxes.h"

namespace spatialsketch {
namespace net {

/// What one submitted load will ingest: exactly one of the three source
/// kinds (see LoadSource), plus the target dataset (already
/// tenant-scoped) and the ingest sign.
struct LoadRequest {
  std::string dataset;  ///< internal (tenant-scoped) dataset name
  int sign = +1;        ///< +1 adds, -1 removes (linear synopsis)
  LoadSource source = LoadSource::kInline;  ///< which payload field applies
  std::vector<Box> inline_boxes;   ///< kInline: the rows themselves
  std::string file_path;           ///< kFile: server-local box file
  SyntheticBoxOptions synthetic;   ///< kSynthetic: generator recipe
};

/// FIFO worker pool executing async bulk loads against one SketchStore.
/// Thread-safe; one instance per SketchServer.
class JobManager {
 public:
  /// Worker pool of `workers` threads (min 1) loading into `store`
  /// (not owned; must outlive the manager). `load_threads` is handed to
  /// ParallelBulkLoad per job (0 = auto).
  JobManager(SketchStore* store, uint32_t workers, uint32_t load_threads);

  /// Stops and joins the workers (see the file comment).
  ~JobManager();

  /// Enqueue a load and return its job id (ids start at 1 and increase;
  /// 0 is never issued). The request's dataset must already be resolved
  /// against the store by the caller — Submit itself never blocks on
  /// store locks.
  uint64_t Submit(LoadRequest request);

  /// The job's current state/progress snapshot; InvalidArgument for an
  /// unknown id. A kDone report always shows rows_applied == rows_total
  /// and fraction() == 1.
  Result<JobStatusReport> Check(uint64_t id) const;

  /// Block until the job leaves the pending/running states (the ctl
  /// convenience used by tests and `sketchctl wait`); InvalidArgument
  /// for an unknown id.
  Result<JobStatusReport> Wait(uint64_t id) const;

  /// Mark the queue closed and join the workers. Idempotent. Queued
  /// jobs that never started report kFailed; the running job (if any)
  /// completes first — a load already applying is not torn mid-shard.
  void Stop();

 private:
  struct Job {
    uint64_t id = 0;
    LoadRequest request;
    std::atomic<JobState> state{JobState::kPending};
    std::atomic<uint64_t> rows_applied{0};
    std::atomic<uint64_t> rows_total{0};
    std::string error;  ///< guarded by the manager mutex
  };

  void WorkerLoop();
  void RunJob(Job* job);

  SketchStore* const store_;
  const uint32_t load_threads_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::deque<Job*> queue_;
  std::map<uint64_t, std::unique_ptr<Job>> jobs_;
  uint64_t next_id_ = 1;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace net
}  // namespace spatialsketch

#endif  // SPATIALSKETCH_NET_JOBS_H_
