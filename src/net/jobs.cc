#include "src/net/jobs.h"

#include <utility>

#include "src/net/wire.h"

namespace spatialsketch {
namespace net {

JobManager::JobManager(SketchStore* store, uint32_t workers,
                       uint32_t load_threads)
    : store_(store), load_threads_(load_threads) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

JobManager::~JobManager() { Stop(); }

uint64_t JobManager::Submit(LoadRequest request) {
  auto job = std::make_unique<Job>();
  job->request = std::move(request);
  // Inline sources know their total up front; file/synthetic totals are
  // published by the worker once the rows are materialized.
  if (job->request.source == LoadSource::kInline) {
    job->rows_total.store(job->request.inline_boxes.size(),
                          std::memory_order_relaxed);
  } else if (job->request.source == LoadSource::kSynthetic) {
    job->rows_total.store(job->request.synthetic.count,
                          std::memory_order_relaxed);
  }
  Job* raw = job.get();
  std::lock_guard<std::mutex> lock(mu_);
  raw->id = next_id_++;
  jobs_.emplace(raw->id, std::move(job));
  if (stopping_) {
    raw->state.store(JobState::kFailed, std::memory_order_release);
    raw->error = "server shutting down";
  } else {
    queue_.push_back(raw);
    cv_.notify_one();
  }
  return raw->id;
}

Result<JobStatusReport> JobManager::Check(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::InvalidArgument("unknown job id " + std::to_string(id));
  }
  const Job& job = *it->second;
  JobStatusReport report;
  // Acquire on the state pairs with the worker's release after its last
  // progress store, so a kDone observer reads the final counts.
  report.state = job.state.load(std::memory_order_acquire);
  report.rows_applied = job.rows_applied.load(std::memory_order_relaxed);
  report.rows_total = job.rows_total.load(std::memory_order_relaxed);
  if (report.state == JobState::kFailed) report.error = job.error;
  return report;
}

Result<JobStatusReport> JobManager::Wait(uint64_t id) const {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::InvalidArgument("unknown job id " + std::to_string(id));
  }
  const Job* job = it->second.get();
  cv_.wait(lock, [job] {
    const JobState s = job->state.load(std::memory_order_acquire);
    return s == JobState::kDone || s == JobState::kFailed;
  });
  lock.unlock();
  return Check(id);
}

void JobManager::Stop() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
    // Never-started jobs resolve now so a late CheckJob sees a terminal
    // state instead of an eternal "pending".
    for (Job* job : queue_) {
      job->state.store(JobState::kFailed, std::memory_order_release);
      job->error = "server shutting down";
    }
    queue_.clear();
    workers.swap(workers_);
    cv_.notify_all();
  }
  for (std::thread& t : workers) t.join();
}

void JobManager::WorkerLoop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_, nothing left to run
      job = queue_.front();
      queue_.pop_front();
      job->state.store(JobState::kRunning, std::memory_order_release);
    }
    RunJob(job);
    cv_.notify_all();  // wake Wait()ers
  }
}

void JobManager::RunJob(Job* job) {
  LoadRequest& req = job->request;

  // Materialize the rows. File and synthetic sources produce them here,
  // on the worker — the submit RPC stayed O(1) regardless of load size.
  std::vector<Box> boxes;
  Status st;
  switch (req.source) {
    case LoadSource::kInline:
      boxes = std::move(req.inline_boxes);
      break;
    case LoadSource::kFile: {
      uint32_t dims = 0;
      st = ReadBoxFile(req.file_path, &boxes, &dims);
      break;
    }
    case LoadSource::kSynthetic:
      boxes = GenerateSyntheticBoxes(req.synthetic);
      break;
  }
  if (st.ok()) {
    job->rows_total.store(boxes.size(), std::memory_order_relaxed);
    st = store_->ParallelBulkLoad(req.dataset, boxes, load_threads_,
                                  req.sign, &job->rows_applied);
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (st.ok()) {
    // Degenerate rows are dropped by ingest (counted in store stats),
    // so the applied count can come up short of the materialized total;
    // a finished job still reports a complete bar.
    job->rows_applied.store(job->rows_total.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    job->state.store(JobState::kDone, std::memory_order_release);
  } else {
    job->error = st.ToString();
    job->state.store(JobState::kFailed, std::memory_order_release);
  }
}

}  // namespace net
}  // namespace spatialsketch
