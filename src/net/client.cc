#include "src/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/api/query_wire.h"

namespace spatialsketch {
namespace net {

Result<std::unique_ptr<SketchClient>> SketchClient::Connect(
    const SketchClientOptions& opt) {
  if (opt.port == 0) {
    return Status::InvalidArgument("SketchClient needs a port");
  }
  if (!WireNameOk(opt.tenant)) {
    return Status::InvalidArgument("invalid tenant key");
  }
  std::unique_ptr<SketchClient> client(new SketchClient(opt));
  SKETCH_RETURN_NOT_OK(client->Dial());
  SKETCH_RETURN_NOT_OK(client->Ping());
  return client;
}

SketchClient::~SketchClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status SketchClient::Dial() {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opt_.port);
  if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad server host: " + opt_.host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::IOError("connect " + opt_.host + ":" +
                           std::to_string(opt_.port) + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status SketchClient::Call(MsgType type, const std::string& body,
                          std::string* reply) {
  std::string request;
  PutU8(&request, kProtocolVersion);
  PutU8(&request, static_cast<uint8_t>(type));
  PutString(&request, opt_.tenant);
  request.append(body);
  SKETCH_RETURN_NOT_OK(WriteFrame(fd_, request));

  std::string payload;
  SKETCH_RETURN_NOT_OK(ReadFrame(fd_, &payload, opt_.max_frame_bytes));
  WireReader r(payload);
  uint8_t version = 0;
  uint8_t echoed = 0;
  uint8_t code = 0;
  std::string message;
  SKETCH_RETURN_NOT_OK(r.GetU8(&version));
  SKETCH_RETURN_NOT_OK(r.GetU8(&echoed));
  SKETCH_RETURN_NOT_OK(r.GetU8(&code));
  SKETCH_RETURN_NOT_OK(r.GetString(&message));
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("server speaks protocol version " +
                                   std::to_string(version));
  }
  const Status st = StatusFromWire(code, std::move(message));
  SKETCH_RETURN_NOT_OK(st);
  // Only a successful response carries a body — and must echo our type.
  if (echoed != static_cast<uint8_t>(type)) {
    return Status::Internal("response type mismatch: sent " +
                            std::to_string(static_cast<int>(type)) +
                            ", got " + std::to_string(echoed));
  }
  if (reply != nullptr) {
    reply->assign(payload, payload.size() - r.remaining(), r.remaining());
  }
  return Status::OK();
}

Status SketchClient::Ping() { return Call(MsgType::kPing, "", nullptr); }

Status SketchClient::RegisterSchema(const std::string& name,
                                    const StoreSchemaOptions& opt) {
  std::string body;
  PutString(&body, name);
  PutU32(&body, opt.dims);
  PutU32(&body, opt.log2_domain);
  PutU32(&body, opt.max_level);
  PutU32(&body, opt.k1);
  PutU32(&body, opt.k2);
  PutU64(&body, opt.seed);
  return Call(MsgType::kRegisterSchema, body, nullptr);
}

Status SketchClient::CreateDataset(const std::string& name,
                                   const std::string& schema,
                                   DatasetKind kind,
                                   const DatasetOptions& opt) {
  std::string body;
  PutString(&body, name);
  PutString(&body, schema);
  PutU8(&body, static_cast<uint8_t>(kind));
  PutU64(&body, opt.eps);
  PutU8(&body, static_cast<uint8_t>(opt.layout));
  PutU8(&body, static_cast<uint8_t>(opt.counter_width));
  PutU8(&body, static_cast<uint8_t>(opt.backing));
  PutF64(&body, opt.target_epsilon);
  PutF64(&body, opt.target_phi);
  PutF64(&body, opt.variance_over_q2);
  PutU64(&body, opt.max_bytes);
  return Call(MsgType::kCreateDataset, body, nullptr);
}

Status SketchClient::DropDataset(const std::string& name) {
  std::string body;
  PutString(&body, name);
  return Call(MsgType::kDropDataset, body, nullptr);
}

Result<std::vector<std::string>> SketchClient::ListDatasets() {
  std::string reply;
  SKETCH_RETURN_NOT_OK(Call(MsgType::kListDatasets, "", &reply));
  WireReader r(reply);
  uint32_t count = 0;
  SKETCH_RETURN_NOT_OK(r.GetU32(&count));
  std::vector<std::string> names;
  names.reserve(std::min<size_t>(count, r.remaining()));
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    SKETCH_RETURN_NOT_OK(r.GetString(&name));
    names.push_back(std::move(name));
  }
  return names;
}

Result<uint64_t> SketchClient::Update(const std::string& dataset,
                                      const std::vector<UpdateOp>& ops) {
  std::string body;
  PutString(&body, dataset);
  PutU32(&body, static_cast<uint32_t>(ops.size()));
  for (const UpdateOp& op : ops) {
    PutU8(&body, op.is_delete ? 1 : 0);
    PutBox(&body, op.box);
  }
  std::string reply;
  SKETCH_RETURN_NOT_OK(Call(MsgType::kUpdate, body, &reply));
  WireReader r(reply);
  uint64_t applied = 0;
  SKETCH_RETURN_NOT_OK(r.GetU64(&applied));
  return applied;
}

Status SketchClient::Insert(const std::string& dataset, const Box& box) {
  return Update(dataset, {{false, box}}).status();
}

Status SketchClient::Delete(const std::string& dataset, const Box& box) {
  return Update(dataset, {{true, box}}).status();
}

Status SketchClient::ConfigureShards(const std::string& dataset,
                                     uint32_t writers,
                                     uint64_t epoch_updates) {
  std::string body;
  PutString(&body, dataset);
  PutU32(&body, writers);
  PutU64(&body, epoch_updates);
  return Call(MsgType::kConfigureShards, body, nullptr);
}

Result<std::vector<QueryResult>> SketchClient::Run(const QueryBatch& batch) {
  std::string body;
  AppendQueryBatch(&body, batch);
  std::string reply;
  SKETCH_RETURN_NOT_OK(Call(MsgType::kRun, body, &reply));
  WireReader r(reply);
  std::vector<QueryResult> results;
  SKETCH_RETURN_NOT_OK(DecodeQueryResults(&r, &results));
  return results;
}

Result<uint64_t> SketchClient::SubmitLoadFrame(const std::string& body) {
  std::string reply;
  SKETCH_RETURN_NOT_OK(Call(MsgType::kSubmitLoad, body, &reply));
  WireReader r(reply);
  uint64_t id = 0;
  SKETCH_RETURN_NOT_OK(r.GetU64(&id));
  return id;
}

Result<uint64_t> SketchClient::SubmitLoadInline(const std::string& dataset,
                                                const std::vector<Box>& boxes,
                                                int sign) {
  std::string body;
  PutString(&body, dataset);
  PutU8(&body, sign >= 0 ? 0 : 1);
  PutU8(&body, static_cast<uint8_t>(LoadSource::kInline));
  PutU32(&body, static_cast<uint32_t>(boxes.size()));
  for (const Box& box : boxes) PutBox(&body, box);
  return SubmitLoadFrame(body);
}

Result<uint64_t> SketchClient::SubmitLoadFile(const std::string& dataset,
                                              const std::string& server_path,
                                              int sign) {
  std::string body;
  PutString(&body, dataset);
  PutU8(&body, sign >= 0 ? 0 : 1);
  PutU8(&body, static_cast<uint8_t>(LoadSource::kFile));
  PutString(&body, server_path);
  return SubmitLoadFrame(body);
}

Result<uint64_t> SketchClient::SubmitLoadSynthetic(
    const std::string& dataset, const SyntheticBoxOptions& opt, int sign) {
  std::string body;
  PutString(&body, dataset);
  PutU8(&body, sign >= 0 ? 0 : 1);
  PutU8(&body, static_cast<uint8_t>(LoadSource::kSynthetic));
  PutU32(&body, opt.dims);
  PutU32(&body, opt.log2_domain);
  PutF64(&body, opt.zipf_z);
  PutF64(&body, opt.mean_side_factor);
  PutU64(&body, opt.count);
  PutU64(&body, opt.seed);
  return SubmitLoadFrame(body);
}

Result<JobStatusReport> SketchClient::CheckJob(uint64_t id) {
  std::string body;
  PutU64(&body, id);
  std::string reply;
  SKETCH_RETURN_NOT_OK(Call(MsgType::kCheckJob, body, &reply));
  WireReader r(reply);
  uint8_t state = 0;
  JobStatusReport report;
  SKETCH_RETURN_NOT_OK(r.GetU8(&state));
  SKETCH_RETURN_NOT_OK(r.GetU64(&report.rows_applied));
  SKETCH_RETURN_NOT_OK(r.GetU64(&report.rows_total));
  double fraction = 0;  // server-computed; recomputed locally by callers
  SKETCH_RETURN_NOT_OK(r.GetF64(&fraction));
  SKETCH_RETURN_NOT_OK(r.GetString(&report.error));
  if (state > static_cast<uint8_t>(JobState::kFailed)) {
    return Status::InvalidArgument("bad job state byte");
  }
  report.state = static_cast<JobState>(state);
  return report;
}

Result<JobStatusReport> SketchClient::WaitJob(uint64_t id,
                                              uint32_t poll_millis) {
  for (;;) {
    auto report = CheckJob(id);
    if (!report.ok()) return report.status();
    if (report->state == JobState::kDone ||
        report->state == JobState::kFailed) {
      return report;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_millis));
  }
}

Result<std::map<std::string, uint64_t>> SketchClient::Stats() {
  std::string reply;
  SKETCH_RETURN_NOT_OK(Call(MsgType::kStats, "", &reply));
  WireReader r(reply);
  uint32_t count = 0;
  SKETCH_RETURN_NOT_OK(r.GetU32(&count));
  std::map<std::string, uint64_t> stats;
  for (uint32_t i = 0; i < count; ++i) {
    std::string key;
    uint64_t value = 0;
    SKETCH_RETURN_NOT_OK(r.GetString(&key));
    SKETCH_RETURN_NOT_OK(r.GetU64(&value));
    stats.emplace(std::move(key), value);
  }
  return stats;
}

Result<int64_t> SketchClient::NumObjects(const std::string& dataset) {
  std::string body;
  PutString(&body, dataset);
  std::string reply;
  SKETCH_RETURN_NOT_OK(Call(MsgType::kNumObjects, body, &reply));
  WireReader r(reply);
  int64_t count = 0;
  SKETCH_RETURN_NOT_OK(r.GetI64(&count));
  return count;
}

Status SketchClient::Fence(const std::string& dataset) {
  std::string body;
  PutString(&body, dataset);
  return Call(MsgType::kFence, body, nullptr);
}

}  // namespace net
}  // namespace spatialsketch
