// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Wire primitives of the network serving layer (src/net/): a bounds-
// checked little-endian byte codec and the CRC32C-framed length-prefixed
// frame format every SketchServer/SketchClient message travels in.
//
// Frame format (docs/NETWORK.md):
//
//   [u32 payload_len][u32 crc32c(payload)][payload bytes]
//
// Both header fields are little-endian. The CRC (src/common/crc32c.h —
// the same polynomial the WAL and SST4 snapshots use) covers exactly the
// payload bytes, so any bit flip in transit is detected before one
// payload byte is parsed; payload_len is bounded by a per-endpoint
// maximum so a corrupted length cannot drive an unbounded allocation.
// A frame that fails the length bound or the CRC poisons the byte stream
// (framing is lost), so the connection is closed after a best-effort
// error reply; a frame that passes but whose payload fails to PARSE is a
// clean request-level error and the connection survives.
//
// The codec functions are the shared vocabulary of every layer above:
// src/api/query_wire.h (QuerySpec/QueryResult), src/net/protocol.h (the
// RPC catalog), and the box-file format bulk loads read server-side.

#ifndef SPATIALSKETCH_NET_WIRE_H_
#define SPATIALSKETCH_NET_WIRE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/geom/box.h"

namespace spatialsketch {
/// The network serving layer: framed-TCP server, client, async load
/// jobs (see docs/NETWORK.md).
namespace net {

/// Frame header bytes: u32 payload length + u32 payload CRC32C.
inline constexpr size_t kFrameHeaderBytes = 8;

/// Default per-endpoint payload-size bound (64 MiB). A header whose
/// length field exceeds the bound is rejected before any allocation.
inline constexpr uint32_t kDefaultMaxFrameBytes = 64u << 20;

// ---- Little-endian append codec -------------------------------------------

/// Append one byte.
void PutU8(std::string* out, uint8_t v);
/// Append a little-endian u32.
void PutU32(std::string* out, uint32_t v);
/// Append a little-endian u64.
void PutU64(std::string* out, uint64_t v);
/// Append an i64 (two's-complement bit pattern of a u64).
void PutI64(std::string* out, int64_t v);
/// Append a double's IEEE-754 bit pattern as a u64 (exact round trip —
/// the equivalence tests compare estimates bit-identically).
void PutF64(std::string* out, double v);
/// Append a u32 length prefix followed by the string's bytes.
void PutString(std::string* out, const std::string& s);
/// Append a box: kMaxDims lo coordinates then kMaxDims hi coordinates.
void PutBox(std::string* out, const Box& b);

/// Bounds-checked reader over an encoded payload. Every getter fails
/// with InvalidArgument instead of reading past the end, so a truncated
/// or garbage payload can never crash the decoder; `done()` is the
/// trailing-garbage check message decoders end with.
class WireReader {
 public:
  /// Read over `n` bytes at `data` (not owned; must outlive the reader).
  WireReader(const void* data, size_t n)
      : data_(static_cast<const uint8_t*>(data)), size_(n) {}
  /// Read over a string's bytes (not owned).
  explicit WireReader(const std::string& s) : WireReader(s.data(), s.size()) {}

  /// Read one byte.
  Status GetU8(uint8_t* v);
  /// Read a little-endian u32.
  Status GetU32(uint32_t* v);
  /// Read a little-endian u64.
  Status GetU64(uint64_t* v);
  /// Read an i64.
  Status GetI64(int64_t* v);
  /// Read a double from its u64 bit pattern.
  Status GetF64(double* v);
  /// Read a length-prefixed string; rejects lengths beyond the
  /// remaining payload (so a corrupt length cannot over-allocate).
  Status GetString(std::string* v);
  /// Read a box (kMaxDims lo + kMaxDims hi coordinates).
  Status GetBox(Box* v);

  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - pos_; }
  /// True iff the payload was consumed exactly.
  bool done() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// ---- In-place frame building ----------------------------------------------
//
// The zero-alloc serving path builds frames directly inside a reusable
// per-connection output buffer instead of materializing the payload as
// its own string first: BeginFrame appends a placeholder header and
// returns its offset, the caller appends the payload bytes with the Put*
// codec, and EndFrame patches the real length and CRC over exactly the
// bytes appended since. Frames may be nested back to back in one buffer
// (response batching) — only the innermost open frame may be ended.

/// Append an 8-byte placeholder frame header to `out` and return its
/// offset (pass it to EndFrame).
size_t BeginFrame(std::string* out);

/// Patch the header at `header_off` with the length and CRC32C of the
/// payload bytes appended after BeginFrame.
void EndFrame(std::string* out, size_t header_off);

/// Append one complete frame (header + payload bytes) to `out`.
void AppendFrame(std::string* out, const void* payload, size_t n);

// ---- Framing over file descriptors ----------------------------------------

/// Syscall/byte/frame counters a framed endpoint can thread through its
/// send/receive paths (all relaxed atomics — the bench reads a snapshot
/// after the clients drain). frames per recv/writev call is the honest
/// "how pipelined was the wire really" number BENCH_net_latency.json
/// reports for the A/B between the evented and threaded engines.
struct IoCounters {
  std::atomic<uint64_t> recv_calls{0};    ///< recv(2) calls that returned >0
  std::atomic<uint64_t> recv_bytes{0};    ///< payload bytes received
  std::atomic<uint64_t> frames_in{0};     ///< complete frames parsed
  std::atomic<uint64_t> send_calls{0};    ///< send(2)/writev(2) calls > 0
  std::atomic<uint64_t> send_bytes{0};    ///< bytes written
  std::atomic<uint64_t> frames_out{0};    ///< complete frames written
};

/// Encode `payload` into a complete frame (header + payload).
std::string EncodeFrame(const std::string& payload);

/// Write a whole frame to `fd` (retrying short writes; EINTR-safe, no
/// SIGPIPE). IOError on a closed or failing peer. `counters` (optional)
/// accumulates syscall/byte/frame counts.
Status WriteFrame(int fd, const std::string& payload,
                  IoCounters* counters = nullptr);

/// Read one whole frame from `fd` into `payload`. Distinguishes the
/// three failure classes callers must treat differently:
///  - clean end-of-stream BEFORE any header byte: IOError with message
///    exactly "eof" (the peer hung up between frames — not an error for
///    a server connection loop);
///  - truncation mid-frame (eof inside header or payload): IOError;
///  - length bound exceeded or CRC mismatch: InvalidArgument (the stream
///    is poisoned; close the connection).
/// `counters` (optional) accumulates syscall/byte/frame counts.
Status ReadFrame(int fd, std::string* payload, uint32_t max_frame_bytes,
                 IoCounters* counters = nullptr);

// ---- Box files (bulk-load source; "raw data stays put") -------------------

/// Magic prefix of a box file: "SBX1".
inline constexpr char kBoxFileMagic[4] = {'S', 'B', 'X', '1'};

/// Write `boxes` to `path` in the box-file format ([magic "SBX1"]
/// [u32 dims][u64 count][count * box]); overwrites. The format is what
/// SketchClient::SubmitLoadFile names server-side, so a multi-GB load
/// travels as one small RPC while the rows stay on the server's disk.
Status WriteBoxFile(const std::string& path, const std::vector<Box>& boxes,
                    uint32_t dims);

/// Read a box file back; validates magic, dims (1..kMaxDims), and that
/// the byte count matches the declared box count exactly.
Status ReadBoxFile(const std::string& path, std::vector<Box>* boxes,
                   uint32_t* dims);

}  // namespace net
}  // namespace spatialsketch

#endif  // SPATIALSKETCH_NET_WIRE_H_
