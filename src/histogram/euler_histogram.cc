#include "src/histogram/euler_histogram.h"

#include <algorithm>

namespace spatialsketch {

EulerHistogram::EulerHistogram(double extent, uint32_t g)
    : grid_(extent, extent, g, g) {
  const uint64_t cells = grid_.num_cells();
  cell_n_.assign(cells, 0.0);
  cell_w_.assign(cells, 0.0);
  cell_h_.assign(cells, 0.0);
  cell_a_.assign(cells, 0.0);
  const uint64_t vedges = static_cast<uint64_t>(g - 1) * g;
  vedge_n_.assign(vedges, 0.0);
  vedge_h_.assign(vedges, 0.0);
  hedge_n_.assign(vedges, 0.0);
  hedge_w_.assign(vedges, 0.0);
  vertex_n_.assign(static_cast<uint64_t>(g - 1) * (g - 1), 0.0);
}

void EulerHistogram::Add(const Box& b, double weight) {
  const double lx = static_cast<double>(b.lo[0]);
  const double ux = static_cast<double>(b.hi[0]);
  const double ly = static_cast<double>(b.lo[1]);
  const double uy = static_cast<double>(b.hi[1]);

  const uint32_t cx0 = grid_.CellX(lx);
  const uint32_t cx1 = std::max(cx0, grid_.CellXEnd(ux));
  const uint32_t cy0 = grid_.CellY(ly);
  const uint32_t cy1 = std::max(cy0, grid_.CellYEnd(uy));

  // Cells of the footprint with clipped extents.
  for (uint32_t cx = cx0; cx <= cx1; ++cx) {
    const double cell_lo_x = grid_.CellLoX(cx);
    const double clip_w = std::max(
        0.0, std::min(ux, cell_lo_x + grid_.cell_width()) -
                 std::max(lx, cell_lo_x));
    for (uint32_t cy = cy0; cy <= cy1; ++cy) {
      const double cell_lo_y = grid_.CellLoY(cy);
      const double clip_h = std::max(
          0.0, std::min(uy, cell_lo_y + grid_.cell_height()) -
                   std::max(ly, cell_lo_y));
      const uint64_t idx = grid_.CellIndex(cx, cy);
      cell_n_[idx] += weight;
      cell_w_[idx] += weight * clip_w;
      cell_h_[idx] += weight * clip_h;
      cell_a_[idx] += weight * clip_w * clip_h;
    }
  }

  // Interior vertical edges crossed: lines k = cx0+1 .. cx1, every
  // footprint row. Stored extent: the object's clipped height in the row.
  for (uint32_t k = cx0 + 1; k <= cx1; ++k) {
    for (uint32_t cy = cy0; cy <= cy1; ++cy) {
      const double cell_lo_y = grid_.CellLoY(cy);
      const double clip_h = std::max(
          0.0, std::min(uy, cell_lo_y + grid_.cell_height()) -
                   std::max(ly, cell_lo_y));
      const uint64_t idx = VEdgeIndex(k, cy);
      vedge_n_[idx] += weight;
      vedge_h_[idx] += weight * clip_h;
    }
  }

  // Interior horizontal edges crossed.
  for (uint32_t l = cy0 + 1; l <= cy1; ++l) {
    for (uint32_t cx = cx0; cx <= cx1; ++cx) {
      const double cell_lo_x = grid_.CellLoX(cx);
      const double clip_w = std::max(
          0.0, std::min(ux, cell_lo_x + grid_.cell_width()) -
                   std::max(lx, cell_lo_x));
      const uint64_t idx = HEdgeIndex(cx, l);
      hedge_n_[idx] += weight;
      hedge_w_[idx] += weight * clip_w;
    }
  }

  // Interior vertices contained in the object's interior footprint.
  for (uint32_t k = cx0 + 1; k <= cx1; ++k) {
    for (uint32_t l = cy0 + 1; l <= cy1; ++l) {
      vertex_n_[VertexIndex(k, l)] += weight;
    }
  }
}

double EulerHistogram::EstimateJoin(const EulerHistogram& r,
                                    const EulerHistogram& s) {
  SKETCH_CHECK(r.grid_.gx() == s.grid_.gx());
  const double W = r.grid_.cell_width();
  const double H = r.grid_.cell_height();
  const uint32_t g = r.grid_.gx();

  double est = 0.0;

  // Cells (+): pairs co-occupying the cell overlap with probability
  // min(1, (wR+wS)/W) * min(1, (hR+hS)/H) under within-cell uniformity,
  // using per-cell average clipped extents.
  for (uint64_t c = 0; c < r.grid_.num_cells(); ++c) {
    const double nr = r.cell_n_[c];
    const double ns = s.cell_n_[c];
    if (nr <= 0.0 || ns <= 0.0) continue;
    const double wr = r.cell_w_[c] / nr;
    const double ws = s.cell_w_[c] / ns;
    const double hr = r.cell_h_[c] / nr;
    const double hs = s.cell_h_[c] / ns;
    const double px = std::min(1.0, (wr + ws) / W);
    const double py = std::min(1.0, (hr + hs) / H);
    est += nr * ns * px * py;
  }

  // Vertical interior edges (-): both objects cross the same vertical
  // line in the same row, so they overlap in x for sure; the y-overlap
  // probability uses the stored average crossing heights.
  for (uint32_t k = 1; k < g; ++k) {
    for (uint32_t row = 0; row < g; ++row) {
      const uint64_t idx = r.VEdgeIndex(k, row);
      const double nr = r.vedge_n_[idx];
      const double ns = s.vedge_n_[idx];
      if (nr <= 0.0 || ns <= 0.0) continue;
      const double hr = r.vedge_h_[idx] / nr;
      const double hs = s.vedge_h_[idx] / ns;
      est -= nr * ns * std::min(1.0, (hr + hs) / H);
    }
  }

  // Horizontal interior edges (-).
  for (uint32_t l = 1; l < g; ++l) {
    for (uint32_t col = 0; col < g; ++col) {
      const uint64_t idx = r.HEdgeIndex(col, l);
      const double nr = r.hedge_n_[idx];
      const double ns = s.hedge_n_[idx];
      if (nr <= 0.0 || ns <= 0.0) continue;
      const double wr = r.hedge_w_[idx] / nr;
      const double ws = s.hedge_w_[idx] / ns;
      est -= nr * ns * std::min(1.0, (wr + ws) / W);
    }
  }

  // Vertices (+): both objects strictly contain the grid point, hence
  // they certainly overlap.
  for (uint64_t v = 0; v < r.vertex_n_.size(); ++v) {
    est += r.vertex_n_[v] * s.vertex_n_[v];
  }

  return std::max(0.0, est);
}

}  // namespace spatialsketch
