#include "src/histogram/geometric_histogram.h"

#include <algorithm>

namespace spatialsketch {

GeometricHistogram::GeometricHistogram(double extent, uint32_t g)
    : grid_(extent, extent, g, g),
      corners_(grid_.num_cells(), 0.0),
      area_(grid_.num_cells(), 0.0),
      hlen_(grid_.num_cells(), 0.0),
      vlen_(grid_.num_cells(), 0.0) {}

void GeometricHistogram::Add(const Box& b, double weight) {
  const double lx = static_cast<double>(b.lo[0]);
  const double ux = static_cast<double>(b.hi[0]);
  const double ly = static_cast<double>(b.lo[1]);
  const double uy = static_cast<double>(b.hi[1]);

  // Corners (clamped into the grid).
  for (const double cx : {lx, ux}) {
    for (const double cy : {ly, uy}) {
      corners_[grid_.CellIndex(grid_.CellX(cx), grid_.CellY(cy))] += weight;
    }
  }

  const uint32_t cx0 = grid_.CellX(lx);
  const uint32_t cx1 = std::max(cx0, grid_.CellXEnd(ux));
  const uint32_t cy0 = grid_.CellY(ly);
  const uint32_t cy1 = std::max(cy0, grid_.CellYEnd(uy));

  for (uint32_t cx = cx0; cx <= cx1; ++cx) {
    const double cell_lo_x = grid_.CellLoX(cx);
    const double cell_hi_x = cell_lo_x + grid_.cell_width();
    const double clip_w =
        std::max(0.0, std::min(ux, cell_hi_x) - std::max(lx, cell_lo_x));
    for (uint32_t cy = cy0; cy <= cy1; ++cy) {
      const double cell_lo_y = grid_.CellLoY(cy);
      const double cell_hi_y = cell_lo_y + grid_.cell_height();
      const double clip_h =
          std::max(0.0, std::min(uy, cell_hi_y) - std::max(ly, cell_lo_y));
      const uint64_t idx = grid_.CellIndex(cx, cy);
      area_[idx] += weight * clip_w * clip_h;
      // The two horizontal edges contribute their clipped width to the
      // cells containing their y coordinate; ditto vertical edges.
      if (grid_.CellY(ly) == cy) hlen_[idx] += weight * clip_w;
      if (grid_.CellY(uy) == cy) hlen_[idx] += weight * clip_w;
      if (grid_.CellX(lx) == cx) vlen_[idx] += weight * clip_h;
      if (grid_.CellX(ux) == cx) vlen_[idx] += weight * clip_h;
    }
  }
}

double GeometricHistogram::EstimateJoin(const GeometricHistogram& r,
                                        const GeometricHistogram& s) {
  SKETCH_CHECK(r.grid_.gx() == s.grid_.gx() &&
               r.grid_.gy() == s.grid_.gy());
  const double cell_area = r.grid_.cell_area();
  double events = 0.0;
  for (uint64_t c = 0; c < r.grid_.num_cells(); ++c) {
    events += r.corners_[c] * s.area_[c] + s.corners_[c] * r.area_[c] +
              r.hlen_[c] * s.vlen_[c] + r.vlen_[c] * s.hlen_[c];
  }
  return 0.25 * events / cell_area;
}

}  // namespace spatialsketch
