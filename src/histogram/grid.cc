#include "src/histogram/grid.h"

#include <cmath>

namespace spatialsketch {

Grid2D::Grid2D(double extent_x, double extent_y, uint32_t gx, uint32_t gy)
    : gx_(gx), gy_(gy), wx_(extent_x / gx), wy_(extent_y / gy) {
  SKETCH_CHECK(extent_x > 0 && extent_y > 0);
  SKETCH_CHECK(gx >= 1 && gy >= 1);
}

uint32_t Grid2D::Clamp(double cell, uint32_t g) {
  if (cell <= 0.0) return 0;
  const uint32_t c = static_cast<uint32_t>(cell);
  return c >= g ? g - 1 : c;
}

uint32_t Grid2D::ClampEnd(double cell, uint32_t g) {
  // A hi coordinate exactly on boundary k belongs to cell k-1.
  double f = std::floor(cell);
  uint32_t c;
  if (cell == f && f > 0.0) {
    c = static_cast<uint32_t>(f) - 1;
  } else {
    c = static_cast<uint32_t>(f);
  }
  return c >= g ? g - 1 : c;
}

}  // namespace spatialsketch
