// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Geometric Histogram baseline (An, Yang, Sivasubramaniam, ICDE'01; the
// paper's "GH" comparator, Section 7). Per grid cell and dataset it
// stores four statistics of the objects intersecting the cell:
//   * number of corner points falling in the cell,
//   * sum of clipped areas,
//   * sum of clipped horizontal edge lengths,
//   * sum of clipped vertical edge lengths.
// Join estimation uses the same 4-event identity the sketches use
// (Section 4.2.1): each intersecting pair produces exactly 4 events
// (corners of r in s, corners of s in r, horizontal-r x vertical-s edge
// crossings, vertical-r x horizontal-s crossings). Under per-cell
// uniformity the expected event counts are products of the stored sums
// divided by the cell area, so
//   |R join S| ~= 1/4 sum_cells (cR*aS + cS*aR + hR*vS + vR*hS) / A_cell.

#ifndef SPATIALSKETCH_HISTOGRAM_GEOMETRIC_HISTOGRAM_H_
#define SPATIALSKETCH_HISTOGRAM_GEOMETRIC_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "src/geom/box.h"
#include "src/histogram/grid.h"

namespace spatialsketch {

/// Geometric histogram of one 2-d dataset.
class GeometricHistogram {
 public:
  /// Grid of g x g cells over [0, extent)^2.
  GeometricHistogram(double extent, uint32_t g);

  /// Add (or with weight=-1 remove) one rectangle.
  void Add(const Box& b, double weight = 1.0);

  /// Storage in words: 4 values per cell.
  uint64_t MemoryWords() const { return 4 * grid_.num_cells(); }

  /// Join-size estimate of two histograms over identical grids.
  static double EstimateJoin(const GeometricHistogram& r,
                             const GeometricHistogram& s);

  const Grid2D& grid() const { return grid_; }

 private:
  Grid2D grid_;
  std::vector<double> corners_;
  std::vector<double> area_;
  std::vector<double> hlen_;
  std::vector<double> vlen_;
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_HISTOGRAM_GEOMETRIC_HISTOGRAM_H_
