// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Regular-grid partitioning shared by the Geometric and Euler histogram
// baselines (Section 7): the data space [0, extent_x) x [0, extent_y) is
// cut into gx x gy equal cells. Geometry is handled in continuous
// coordinates (a discrete box [lo, hi] occupies the continuous rectangle
// [lo, hi]).

#ifndef SPATIALSKETCH_HISTOGRAM_GRID_H_
#define SPATIALSKETCH_HISTOGRAM_GRID_H_

#include <cstdint>

#include "src/common/macros.h"
#include "src/geom/box.h"

namespace spatialsketch {

/// 2-d regular grid geometry helper.
class Grid2D {
 public:
  Grid2D(double extent_x, double extent_y, uint32_t gx, uint32_t gy);

  uint32_t gx() const { return gx_; }
  uint32_t gy() const { return gy_; }
  double cell_width() const { return wx_; }
  double cell_height() const { return wy_; }
  double cell_area() const { return wx_ * wy_; }
  uint64_t num_cells() const { return static_cast<uint64_t>(gx_) * gy_; }

  /// Cell column of an x coordinate (clamped into the grid).
  uint32_t CellX(double x) const { return Clamp(x / wx_, gx_); }
  uint32_t CellY(double y) const { return Clamp(y / wy_, gy_); }

  /// Last cell column positively intersected by [lo, hi]: a coordinate
  /// exactly on a cell boundary belongs to the lower cell so zero-width
  /// slivers are not produced.
  uint32_t CellXEnd(double hi) const { return ClampEnd(hi / wx_, gx_); }
  uint32_t CellYEnd(double hi) const { return ClampEnd(hi / wy_, gy_); }

  uint64_t CellIndex(uint32_t cx, uint32_t cy) const {
    SKETCH_DCHECK(cx < gx_ && cy < gy_);
    return static_cast<uint64_t>(cy) * gx_ + cx;
  }

  double CellLoX(uint32_t cx) const { return cx * wx_; }
  double CellLoY(uint32_t cy) const { return cy * wy_; }

 private:
  static uint32_t Clamp(double cell, uint32_t g);
  static uint32_t ClampEnd(double cell, uint32_t g);

  uint32_t gx_;
  uint32_t gy_;
  double wx_;
  double wy_;
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_HISTOGRAM_GRID_H_
