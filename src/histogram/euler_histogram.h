// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Generalized Euler Histogram baseline (Sun, Agrawal, El Abbadi, EDBT'02;
// the paper's "EH" comparator, Section 7).
//
// A level-L Euler histogram allocates buckets for every face of the
// 2^L x 2^L grid: cells (2-d faces), interior edges (1-d) and interior
// vertices (0-d). An object increments every face its cell footprint
// spans: all footprint cells, the edges between horizontally/vertically
// adjacent footprint cells, and the vertices where four footprint cells
// meet. Per face the generalized histogram stores the object count plus
// average clipped extents (cells: count, sum-width, sum-height, sum-area;
// edges: count, sum of extent along the edge; vertices: count), which is
// exactly the paper's space formula 9*2^{2L} - 6*2^L + 1 words.
//
// Join estimation combines faces with Euler signs (+ cells, - edges,
// + vertices). For an overlapping pair whose intersection spans an a x b
// block of cells the deterministic identity ab - (a-1)b - a(b-1) +
// (a-1)(b-1) = 1 counts the pair exactly once; per-face the unknown
// pairwise terms are modeled probabilistically from the stored averages
// (within-bucket uniformity), which is why EH degrades when the grid gets
// finer and per-bucket model errors accumulate — the behaviour Figure 9-11
// of the paper highlights.

#ifndef SPATIALSKETCH_HISTOGRAM_EULER_HISTOGRAM_H_
#define SPATIALSKETCH_HISTOGRAM_EULER_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "src/geom/box.h"
#include "src/histogram/grid.h"

namespace spatialsketch {

/// Generalized Euler histogram of one 2-d dataset.
class EulerHistogram {
 public:
  /// Grid of g x g cells over [0, extent)^2 (the paper uses g = 2^L).
  EulerHistogram(double extent, uint32_t g);

  /// Add (or with weight=-1 remove) one rectangle.
  void Add(const Box& b, double weight = 1.0);

  /// Paper-accounted storage: (3g - 1)^2 = 9 g^2 - 6 g + 1 words.
  uint64_t MemoryWords() const {
    const uint64_t g = grid_.gx();
    return (3 * g - 1) * (3 * g - 1);
  }

  /// Join-size estimate of two histograms over identical grids.
  static double EstimateJoin(const EulerHistogram& r,
                             const EulerHistogram& s);

  const Grid2D& grid() const { return grid_; }

 private:
  uint64_t VEdgeIndex(uint32_t k, uint32_t row) const {
    // Interior vertical line k in [1, g), row in [0, g).
    return static_cast<uint64_t>(k - 1) * grid_.gy() + row;
  }
  uint64_t HEdgeIndex(uint32_t col, uint32_t l) const {
    return static_cast<uint64_t>(l - 1) * grid_.gx() + col;
  }
  uint64_t VertexIndex(uint32_t k, uint32_t l) const {
    return static_cast<uint64_t>(l - 1) * (grid_.gx() - 1) + (k - 1);
  }

  Grid2D grid_;
  // Cells: count, sum of clipped widths/heights/areas.
  std::vector<double> cell_n_, cell_w_, cell_h_, cell_a_;
  // Interior vertical edges (g-1 lines x g rows): count, sum of clipped
  // heights at the crossing.
  std::vector<double> vedge_n_, vedge_h_;
  // Interior horizontal edges (g cols x g-1 lines): count, clipped widths.
  std::vector<double> hedge_n_, hedge_w_;
  // Interior vertices ((g-1)^2): count.
  std::vector<double> vertex_n_;
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_HISTOGRAM_EULER_HISTOGRAM_H_
