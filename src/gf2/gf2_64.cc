#include "src/gf2/gf2_64.h"

namespace spatialsketch {
namespace gf2 {

namespace {
// Low coefficients of the reduction polynomial: x^4 + x^3 + x + 1.
constexpr uint64_t kPolyLow = 0x1Bu;
}  // namespace

Clmul128 Clmul64(uint64_t a, uint64_t b) {
  // 4-bit windowed carry-less multiplication: precompute a * v for every
  // 4-bit v, then combine 16 windows of b. ~16 iterations instead of 64.
  uint64_t tab_lo[16];
  uint64_t tab_hi[16];
  tab_lo[0] = 0;
  tab_hi[0] = 0;
  tab_lo[1] = a;
  tab_hi[1] = 0;
  for (int v = 2; v < 16; v += 2) {
    // tab[v] = tab[v/2] << 1; tab[v+1] = tab[v] ^ tab[1].
    tab_lo[v] = tab_lo[v / 2] << 1;
    tab_hi[v] = (tab_hi[v / 2] << 1) | (tab_lo[v / 2] >> 63);
    tab_lo[v + 1] = tab_lo[v] ^ a;
    tab_hi[v + 1] = tab_hi[v];
  }
  uint64_t lo = 0;
  uint64_t hi = 0;
  for (int w = 15; w >= 0; --w) {
    // Shift accumulator left by 4 and fold in the next window.
    hi = (hi << 4) | (lo >> 60);
    lo <<= 4;
    const uint32_t nib = static_cast<uint32_t>((b >> (4 * w)) & 0xF);
    lo ^= tab_lo[nib];
    hi ^= tab_hi[nib];
  }
  return {lo, hi};
}

uint64_t Reduce128(Clmul128 v) {
  // hi * x^64 == hi * (x^4 + x^3 + x + 1) (mod p). The folded product has
  // at most 4 bits above position 63, so a second tiny fold finishes.
  Clmul128 fold = Clmul64(v.hi, kPolyLow);
  uint64_t r = v.lo ^ fold.lo;
  // fold.hi < 16; its reduction cannot overflow 64 bits.
  r ^= Clmul64(fold.hi, kPolyLow).lo;
  return r;
}

uint64_t Mul(uint64_t a, uint64_t b) { return Reduce128(Clmul64(a, b)); }

uint64_t Square(uint64_t a) { return Reduce128(Clmul64(a, a)); }

uint64_t Cube(uint64_t a) { return Mul(Square(a), a); }

uint64_t FrobeniusPower(uint64_t a, uint32_t k) {
  uint64_t r = a;
  for (uint32_t i = 0; i < k; ++i) r = Square(r);
  return r;
}

}  // namespace gf2
}  // namespace spatialsketch
