// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Tiny binary fields GF(2^k), k <= 16, used by the test suite to verify
// the four-wise independence of the BCH xi-construction *exhaustively*
// (enumerating the entire seed space, which is infeasible for GF(2^64)).

#ifndef SPATIALSKETCH_GF2_GF2_SMALL_H_
#define SPATIALSKETCH_GF2_GF2_SMALL_H_

#include <cstdint>

namespace spatialsketch {
namespace gf2 {

/// GF(2^Bits) with reduction polynomial x^Bits + PolyLow.
/// PolyLow must make the full polynomial irreducible; e.g.
/// SmallField<8, 0x1B> is the AES field x^8 + x^4 + x^3 + x + 1.
template <int Bits, uint64_t PolyLow>
struct SmallField {
  static_assert(Bits >= 2 && Bits <= 16, "SmallField supports 2..16 bits");

  static constexpr uint64_t kMask = (uint64_t{1} << Bits) - 1;

  static uint64_t Mul(uint64_t a, uint64_t b) {
    uint64_t acc = 0;
    // Schoolbook carry-less multiply; operands fit in 16 bits.
    for (int i = 0; i < Bits; ++i) {
      if ((b >> i) & 1) acc ^= a << i;
    }
    // Reduce from the top down.
    for (int i = 2 * Bits - 2; i >= Bits; --i) {
      if ((acc >> i) & 1) {
        acc ^= (uint64_t{1} << i);
        acc ^= PolyLow << (i - Bits);
      }
    }
    return acc & kMask;
  }

  static uint64_t Cube(uint64_t a) { return Mul(Mul(a, a), a); }
};

/// AES field, handy default for exhaustive tests over 8-bit index domains.
using Gf256 = SmallField<8, 0x1B>;

}  // namespace gf2
}  // namespace spatialsketch

#endif  // SPATIALSKETCH_GF2_GF2_SMALL_H_
