// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Arithmetic in GF(2^64) represented as polynomials over GF(2) modulo the
// irreducible pentanomial p(x) = x^64 + x^4 + x^3 + x + 1.
//
// The BCH-style four-wise independent xi-families (Section 2.2 of the
// paper) need the cube i^3 of an index i computed in a binary field that
// contains all indices; GF(2^64) covers every domain the library supports.
// Multiplication is portable carry-less multiplication (no PCLMUL
// dependency); this code runs on table-build and per-query paths, not the
// per-update hot loop, so portability beats peak speed.

#ifndef SPATIALSKETCH_GF2_GF2_64_H_
#define SPATIALSKETCH_GF2_GF2_64_H_

#include <cstdint>

namespace spatialsketch {
namespace gf2 {

/// 128-bit carry-less product of two 64-bit polynomials.
struct Clmul128 {
  uint64_t lo;
  uint64_t hi;
};

/// Carry-less (XOR) multiplication of 64-bit polynomials a and b.
Clmul128 Clmul64(uint64_t a, uint64_t b);

/// Reduce a 128-bit polynomial modulo p(x) = x^64 + x^4 + x^3 + x + 1.
uint64_t Reduce128(Clmul128 v);

/// Product a*b in GF(2^64).
uint64_t Mul(uint64_t a, uint64_t b);

/// Square a^2 in GF(2^64) (linear over GF(2); cheaper than Mul).
uint64_t Square(uint64_t a);

/// Cube a^3 in GF(2^64). This is the map used by the BCH xi-family.
uint64_t Cube(uint64_t a);

/// a^(2^k) by repeated squaring; exposed for the Frobenius-based
/// irreducibility self-test.
uint64_t FrobeniusPower(uint64_t a, uint32_t k);

}  // namespace gf2
}  // namespace spatialsketch

#endif  // SPATIALSKETCH_GF2_GF2_64_H_
