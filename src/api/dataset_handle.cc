#include "src/api/dataset_handle.h"

#include "src/store/dataset_state.h"
#include "src/store/sketch_store.h"

namespace spatialsketch {

namespace {

Status InvalidHandle() {
  return Status::FailedPrecondition(
      "operation on a default-constructed (unbound) DatasetHandle");
}

}  // namespace

bool DatasetHandle::live() const {
  return valid() && !state_->dropped.load(std::memory_order_acquire);
}

const std::string& DatasetHandle::name() const {
  SKETCH_CHECK(valid());
  return state_->name;
}

DatasetKind DatasetHandle::kind() const {
  SKETCH_CHECK(valid());
  return state_->kind;
}

uint64_t DatasetHandle::generation() const {
  SKETCH_CHECK(valid());
  return state_->generation;
}

Status DatasetHandle::Insert(const Box& box) const {
  if (!valid()) return InvalidHandle();
  SKETCH_RETURN_NOT_OK(SketchStore::CheckLive(*state_));
  return store_->ApplyStreamingTo(*state_, box, +1);
}

Status DatasetHandle::Delete(const Box& box) const {
  if (!valid()) return InvalidHandle();
  SKETCH_RETURN_NOT_OK(SketchStore::CheckLive(*state_));
  return store_->ApplyStreamingTo(*state_, box, -1);
}

Result<double> DatasetHandle::EstimateRangeCount(const Box& query) const {
  if (!valid()) return InvalidHandle();
  Status live = SketchStore::CheckLive(*state_);
  if (!live.ok()) return live;
  return store_->RangeCountOn(*state_, query, /*selectivity=*/false);
}

Result<double> DatasetHandle::EstimateRangeSelectivity(
    const Box& query) const {
  if (!valid()) return InvalidHandle();
  Status live = SketchStore::CheckLive(*state_);
  if (!live.ok()) return live;
  return store_->RangeCountOn(*state_, query, /*selectivity=*/true);
}

Result<int64_t> DatasetHandle::NumObjects() const {
  if (!valid()) return InvalidHandle();
  Status live = SketchStore::CheckLive(*state_);
  if (!live.ok()) return live;
  return store_->NumObjectsOn(*state_);
}

Status DatasetHandle::Fence() const {
  if (!valid()) return InvalidHandle();
  SKETCH_RETURN_NOT_OK(SketchStore::CheckLive(*state_));
  return store_->FenceDataset(*state_);
}

}  // namespace spatialsketch
