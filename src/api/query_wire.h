// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Versioned wire serialization of the typed query surface (src/api/
// query.h) — the encoding a QueryBatch travels in over the network
// serving layer (src/net/). The structs were designed to be
// serializable: every field is a scalar, a box, or a name string.
//
// Encoding rules (version 1, docs/NETWORK.md):
//  - A batch is [u8 version][u32 count][count * spec]; results are
//    [u8 version][u32 count][count * result]. The version byte is
//    checked on decode, so a future layout change bumps the constant
//    and old peers fail with a clean error instead of misparsing.
//  - Specs travel NAME-addressed: DatasetHandle is a process-local
//    pointer and never crosses the wire (the server resolves names in
//    its own registry, inside the tenant's namespace).
//  - Doubles travel as IEEE-754 bit patterns, so a decoded estimate is
//    BIT-IDENTICAL to the served one — the round-trip equivalence tests
//    compare with operator== and must not lose a ulp.

#ifndef SPATIALSKETCH_API_QUERY_WIRE_H_
#define SPATIALSKETCH_API_QUERY_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/api/query.h"
#include "src/common/status.h"
#include "src/net/wire.h"

namespace spatialsketch {

/// Version byte every encoded QueryBatch / result vector leads with.
inline constexpr uint8_t kQueryWireVersion = 1;

/// Append one QuerySpec (kind, dataset names, query box, eps). The
/// spec's handles, if any, are reduced to their dataset NAMES — the wire
/// form is always name-addressed.
void AppendQuerySpec(std::string* out, const QuerySpec& spec);

/// Decode one QuerySpec. Fails with InvalidArgument on a truncated
/// payload or an out-of-range kind byte.
Status DecodeQuerySpec(net::WireReader* r, QuerySpec* out);

/// Append a whole batch: [u8 version][u32 count][specs].
void AppendQueryBatch(std::string* out, const QueryBatch& batch);

/// Decode a whole batch; checks the version byte first.
Status DecodeQueryBatch(net::WireReader* r, QueryBatch* out);

/// Append one QueryResult (status code + message, value bits, estimator
/// metadata).
void AppendQueryResult(std::string* out, const QueryResult& result);

/// Decode one QueryResult; validates the status code, layout, and width
/// bytes.
Status DecodeQueryResult(net::WireReader* r, QueryResult* out);

/// Append a result vector: [u8 version][u32 count][results].
void AppendQueryResults(std::string* out,
                        const std::vector<QueryResult>& results);

/// Decode a result vector; checks the version byte first.
Status DecodeQueryResults(net::WireReader* r,
                          std::vector<QueryResult>* out);

/// Rebuild a Status from its wire code byte and message; an unknown
/// code byte yields InvalidArgument (never a fabricated OK).
Status StatusFromWire(uint8_t code, std::string message);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_API_QUERY_WIRE_H_
