// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// The typed polymorphic query surface of the serving layer (src/api/).
//
// One QuerySpec describes one estimate of any supported family — range
// count/selectivity, self-join size, spatial join, eps-distance join,
// containment join — against datasets named by string or by resolved
// DatasetHandle. A QueryBatch of heterogeneous specs executes through
// SketchStore::Run, which resolves every name once, takes each involved
// dataset's FairSharedMutex exactly once (in address order) so all
// answers come from one consistent counter state, fans the work across
// the store's query pool, and isolates failures PER QUERY: a bad spec
// yields an error QueryResult in its slot while every other spec is
// served normally.
//
// The legacy string-keyed estimate entry points on SketchStore are thin
// shims over this surface and return bit-identical values.

#ifndef SPATIALSKETCH_API_QUERY_H_
#define SPATIALSKETCH_API_QUERY_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "src/api/dataset_handle.h"
#include "src/common/status.h"
#include "src/geom/box.h"
#include "src/sketch/counter_store.h"

namespace spatialsketch {

/// The estimator family a QuerySpec invokes. Each kind names which
/// DatasetKind(s) it is served from; mismatches fail that query alone.
enum class QueryKind : uint8_t {
  /// Estimated |{r in R : r strictly overlaps query}| on a kRange
  /// dataset (Section 6.4 / Lemma 9). Uses QuerySpec::query.
  kRangeCount = 0,
  /// kRangeCount divided by the dataset's net object count (0 for an
  /// empty dataset); count and total are read under the same lock
  /// acquisition, so the ratio is a consistent cut.
  kRangeSelectivity = 1,
  /// Estimated self-join size SJ(R) of the dataset's own synopsis
  /// (Section 3 / Section 4.1.4), from the sketch's counters alone.
  /// Served from ANY dataset kind.
  kSelfJoinSize = 2,
  /// Estimated |R join S| of a kJoinR dataset against a kJoinS dataset
  /// created under the same schema name (Section 4 / Theorems 1-3).
  kJoinCardinality = 3,
  /// Estimated eps-distance join |{(a, b) : dist_inf(a, b) <= eps}| of a
  /// kEpsPoints dataset against a kEpsBoxes dataset (Section 6.3).
  /// QuerySpec::eps must equal the kEpsBoxes dataset's ingest-time eps
  /// (the radius is baked into its counters).
  kEpsJoin = 4,
  /// Estimated containment join |{(r, s) : r contained in s}| of a
  /// kContainInner dataset against a kContainOuter dataset
  /// (Appendix B.2).
  kContainmentJoin = 5,
};

/// Human-readable kind name, e.g. "RangeCount".
const char* QueryKindName(QueryKind kind);

/// One typed query against the store. Build specs with the static
/// factories below (they fill exactly the fields the kind reads); the
/// raw fields stay public so callers can template over kinds.
///
/// Datasets are addressed by `dataset`/`dataset2` name, or — skipping
/// Run's per-name registry resolution — by `handle`/`handle2` from
/// SketchStore::OpenDataset. A valid handle takes precedence over the
/// name field beside it.
struct QuerySpec {
  /// The estimator family to invoke.
  QueryKind kind = QueryKind::kRangeCount;
  /// Primary dataset name (the only dataset for the single-dataset
  /// kinds; the R / points / inner side for the join kinds). Ignored
  /// when `handle` is valid.
  std::string dataset;
  /// Partner dataset name for the join kinds (S / eps-boxes / outer
  /// side). Ignored when `handle2` is valid.
  std::string dataset2;
  /// Optional pre-resolved primary dataset (takes precedence over
  /// `dataset`).
  DatasetHandle handle;
  /// Optional pre-resolved partner dataset (takes precedence over
  /// `dataset2`).
  DatasetHandle handle2;
  /// Query box in ORIGINAL coordinates (kRangeCount/kRangeSelectivity).
  Box query;
  /// kEpsJoin: the L-infinity radius; must equal the kEpsBoxes
  /// dataset's ingest-time eps.
  Coord eps = 0;

  /// Range-count spec over a named kRange dataset.
  static QuerySpec RangeCount(std::string dataset, const Box& query);
  /// Range-count spec over a resolved handle.
  static QuerySpec RangeCount(DatasetHandle handle, const Box& query);
  /// Range-selectivity spec over a named kRange dataset.
  static QuerySpec RangeSelectivity(std::string dataset, const Box& query);
  /// Range-selectivity spec over a resolved handle.
  static QuerySpec RangeSelectivity(DatasetHandle handle, const Box& query);
  /// Self-join-size spec over a named dataset of any kind.
  static QuerySpec SelfJoinSize(std::string dataset);
  /// Self-join-size spec over a resolved handle.
  static QuerySpec SelfJoinSize(DatasetHandle handle);
  /// Spatial-join spec: named kJoinR dataset against named kJoinS
  /// dataset.
  static QuerySpec JoinCardinality(std::string r_dataset,
                                   std::string s_dataset);
  /// Spatial-join spec over resolved handles.
  static QuerySpec JoinCardinality(DatasetHandle r_handle,
                                   DatasetHandle s_handle);
  /// Eps-join spec: named kEpsPoints dataset against named kEpsBoxes
  /// dataset, with the query radius (must match the dataset's eps).
  static QuerySpec EpsJoin(std::string points_dataset,
                           std::string boxes_dataset, Coord eps);
  /// Eps-join spec over resolved handles.
  static QuerySpec EpsJoin(DatasetHandle points_handle,
                           DatasetHandle boxes_handle, Coord eps);
  /// Containment-join spec: named kContainInner dataset against named
  /// kContainOuter dataset.
  static QuerySpec ContainmentJoin(std::string inner_dataset,
                                   std::string outer_dataset);
  /// Containment-join spec over resolved handles.
  static QuerySpec ContainmentJoin(DatasetHandle inner_handle,
                                   DatasetHandle outer_handle);
};

/// An ordered batch of heterogeneous QuerySpecs for SketchStore::Run.
/// Results come back in spec order, one QueryResult per spec.
struct QueryBatch {
  /// The specs, in answer order.
  std::vector<QuerySpec> specs;

  /// An empty batch (rejected by Run; add specs first).
  QueryBatch() = default;
  /// Batch from a braced list of specs.
  QueryBatch(std::initializer_list<QuerySpec> list) : specs(list) {}

  /// Append one spec (chainable via repeated calls).
  void Add(QuerySpec spec) { specs.push_back(std::move(spec)); }
  /// Number of specs in the batch.
  size_t size() const { return specs.size(); }
  /// True iff no specs have been added.
  bool empty() const { return specs.empty(); }
};

/// Estimator configuration metadata echoed with every successful result:
/// which boosting grid produced the value (Section 2.3) and how the
/// primary dataset's counters are physically stored (counter_store.h —
/// layout/width never change the value, only the footprint).
struct EstimatorInfo {
  uint32_t k1 = 0;         ///< estimators averaged per group
  uint32_t k2 = 0;         ///< groups medianed
  uint32_t instances = 0;  ///< k1 * k2 boosting instances
  CounterLayout layout = CounterLayout::kFlat;       ///< counter order
  CounterWidth counter_width = CounterWidth::kI64;   ///< counter width
};

/// The per-query outcome of a Run batch: a Status (per-query failure
/// isolation — one bad spec never rejects its batch-mates), the estimate
/// when ok, and the estimator metadata it was produced under.
struct QueryResult {
  Status status;            ///< OK, or why THIS query was not served
  double value = 0.0;       ///< the estimate (meaningful iff status ok)
  EstimatorInfo estimator;  ///< boosting grid behind the value

  /// True iff this query was served.
  bool ok() const { return status.ok(); }
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_API_QUERY_H_
