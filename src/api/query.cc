#include "src/api/query.h"

namespace spatialsketch {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kRangeCount:
      return "RangeCount";
    case QueryKind::kRangeSelectivity:
      return "RangeSelectivity";
    case QueryKind::kSelfJoinSize:
      return "SelfJoinSize";
    case QueryKind::kJoinCardinality:
      return "JoinCardinality";
    case QueryKind::kEpsJoin:
      return "EpsJoin";
    case QueryKind::kContainmentJoin:
      return "ContainmentJoin";
  }
  return "Unknown";
}

namespace {

QuerySpec OneDataset(QueryKind kind, std::string dataset) {
  QuerySpec spec;
  spec.kind = kind;
  spec.dataset = std::move(dataset);
  return spec;
}

QuerySpec OneDataset(QueryKind kind, DatasetHandle handle) {
  QuerySpec spec;
  spec.kind = kind;
  spec.handle = std::move(handle);
  return spec;
}

QuerySpec TwoDatasets(QueryKind kind, std::string a, std::string b) {
  QuerySpec spec;
  spec.kind = kind;
  spec.dataset = std::move(a);
  spec.dataset2 = std::move(b);
  return spec;
}

QuerySpec TwoDatasets(QueryKind kind, DatasetHandle a, DatasetHandle b) {
  QuerySpec spec;
  spec.kind = kind;
  spec.handle = std::move(a);
  spec.handle2 = std::move(b);
  return spec;
}

}  // namespace

QuerySpec QuerySpec::RangeCount(std::string dataset, const Box& query) {
  QuerySpec spec = OneDataset(QueryKind::kRangeCount, std::move(dataset));
  spec.query = query;
  return spec;
}

QuerySpec QuerySpec::RangeCount(DatasetHandle handle, const Box& query) {
  QuerySpec spec = OneDataset(QueryKind::kRangeCount, std::move(handle));
  spec.query = query;
  return spec;
}

QuerySpec QuerySpec::RangeSelectivity(std::string dataset, const Box& query) {
  QuerySpec spec = OneDataset(QueryKind::kRangeSelectivity, std::move(dataset));
  spec.query = query;
  return spec;
}

QuerySpec QuerySpec::RangeSelectivity(DatasetHandle handle, const Box& query) {
  QuerySpec spec = OneDataset(QueryKind::kRangeSelectivity, std::move(handle));
  spec.query = query;
  return spec;
}

QuerySpec QuerySpec::SelfJoinSize(std::string dataset) {
  return OneDataset(QueryKind::kSelfJoinSize, std::move(dataset));
}

QuerySpec QuerySpec::SelfJoinSize(DatasetHandle handle) {
  return OneDataset(QueryKind::kSelfJoinSize, std::move(handle));
}

QuerySpec QuerySpec::JoinCardinality(std::string r_dataset,
                                     std::string s_dataset) {
  return TwoDatasets(QueryKind::kJoinCardinality, std::move(r_dataset),
                     std::move(s_dataset));
}

QuerySpec QuerySpec::JoinCardinality(DatasetHandle r_handle,
                                     DatasetHandle s_handle) {
  return TwoDatasets(QueryKind::kJoinCardinality, std::move(r_handle),
                     std::move(s_handle));
}

QuerySpec QuerySpec::EpsJoin(std::string points_dataset,
                             std::string boxes_dataset, Coord eps) {
  QuerySpec spec = TwoDatasets(QueryKind::kEpsJoin, std::move(points_dataset),
                               std::move(boxes_dataset));
  spec.eps = eps;
  return spec;
}

QuerySpec QuerySpec::EpsJoin(DatasetHandle points_handle,
                             DatasetHandle boxes_handle, Coord eps) {
  QuerySpec spec = TwoDatasets(QueryKind::kEpsJoin, std::move(points_handle),
                               std::move(boxes_handle));
  spec.eps = eps;
  return spec;
}

QuerySpec QuerySpec::ContainmentJoin(std::string inner_dataset,
                                     std::string outer_dataset) {
  return TwoDatasets(QueryKind::kContainmentJoin, std::move(inner_dataset),
                     std::move(outer_dataset));
}

QuerySpec QuerySpec::ContainmentJoin(DatasetHandle inner_handle,
                                     DatasetHandle outer_handle) {
  return TwoDatasets(QueryKind::kContainmentJoin, std::move(inner_handle),
                     std::move(outer_handle));
}

}  // namespace spatialsketch
