#include "src/api/query_wire.h"

#include <algorithm>

namespace spatialsketch {

namespace {

// The spec's primary/partner dataset as a wire name: a valid handle wins
// over the name field beside it, exactly as Run() resolves.
const std::string& SpecName(const DatasetHandle& handle,
                            const std::string& name) {
  return handle.valid() ? handle.name() : name;
}

}  // namespace

Status StatusFromWire(uint8_t code, std::string message) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(std::move(message));
    case StatusCode::kInternal:
      return Status::Internal(std::move(message));
    case StatusCode::kIOError:
      return Status::IOError(std::move(message));
  }
  return Status::InvalidArgument("unknown wire status code");
}

void AppendQuerySpec(std::string* out, const QuerySpec& spec) {
  net::PutU8(out, static_cast<uint8_t>(spec.kind));
  net::PutString(out, SpecName(spec.handle, spec.dataset));
  net::PutString(out, SpecName(spec.handle2, spec.dataset2));
  net::PutBox(out, spec.query);
  net::PutU64(out, spec.eps);
}

Status DecodeQuerySpec(net::WireReader* r, QuerySpec* out) {
  uint8_t kind = 0;
  SKETCH_RETURN_NOT_OK(r->GetU8(&kind));
  if (kind > static_cast<uint8_t>(QueryKind::kContainmentJoin)) {
    return Status::InvalidArgument("query spec: unknown kind byte");
  }
  out->kind = static_cast<QueryKind>(kind);
  out->handle = DatasetHandle();
  out->handle2 = DatasetHandle();
  SKETCH_RETURN_NOT_OK(r->GetString(&out->dataset));
  SKETCH_RETURN_NOT_OK(r->GetString(&out->dataset2));
  SKETCH_RETURN_NOT_OK(r->GetBox(&out->query));
  SKETCH_RETURN_NOT_OK(r->GetU64(&out->eps));
  return Status::OK();
}

void AppendQueryBatch(std::string* out, const QueryBatch& batch) {
  net::PutU8(out, kQueryWireVersion);
  net::PutU32(out, static_cast<uint32_t>(batch.specs.size()));
  for (const QuerySpec& spec : batch.specs) AppendQuerySpec(out, spec);
}

Status DecodeQueryBatch(net::WireReader* r, QueryBatch* out) {
  uint8_t version = 0;
  SKETCH_RETURN_NOT_OK(r->GetU8(&version));
  if (version != kQueryWireVersion) {
    return Status::InvalidArgument("query batch: unsupported wire version");
  }
  uint32_t count = 0;
  SKETCH_RETURN_NOT_OK(r->GetU32(&count));
  out->specs.clear();
  // A spec encodes to well over one byte, so a count beyond the bytes
  // actually present is hostile — cap the reserve at what could fit
  // (the parse below still rejects the short payload).
  out->specs.reserve(std::min<size_t>(count, r->remaining()));
  for (uint32_t i = 0; i < count; ++i) {
    QuerySpec spec;
    SKETCH_RETURN_NOT_OK(DecodeQuerySpec(r, &spec));
    out->specs.push_back(std::move(spec));
  }
  return Status::OK();
}

void AppendQueryResult(std::string* out, const QueryResult& result) {
  net::PutU8(out, static_cast<uint8_t>(result.status.code()));
  net::PutString(out, result.status.message());
  net::PutF64(out, result.value);
  net::PutU32(out, result.estimator.k1);
  net::PutU32(out, result.estimator.k2);
  net::PutU32(out, result.estimator.instances);
  net::PutU8(out, static_cast<uint8_t>(result.estimator.layout));
  net::PutU8(out, static_cast<uint8_t>(result.estimator.counter_width));
}

Status DecodeQueryResult(net::WireReader* r, QueryResult* out) {
  uint8_t code = 0;
  std::string message;
  SKETCH_RETURN_NOT_OK(r->GetU8(&code));
  SKETCH_RETURN_NOT_OK(r->GetString(&message));
  if (code > static_cast<uint8_t>(StatusCode::kIOError)) {
    return Status::InvalidArgument("query result: unknown status code");
  }
  out->status = StatusFromWire(code, std::move(message));
  SKETCH_RETURN_NOT_OK(r->GetF64(&out->value));
  SKETCH_RETURN_NOT_OK(r->GetU32(&out->estimator.k1));
  SKETCH_RETURN_NOT_OK(r->GetU32(&out->estimator.k2));
  SKETCH_RETURN_NOT_OK(r->GetU32(&out->estimator.instances));
  uint8_t layout = 0;
  uint8_t width = 0;
  SKETCH_RETURN_NOT_OK(r->GetU8(&layout));
  SKETCH_RETURN_NOT_OK(r->GetU8(&width));
  if (layout > static_cast<uint8_t>(CounterLayout::kBlocked) ||
      width > static_cast<uint8_t>(CounterWidth::kI32)) {
    return Status::InvalidArgument("query result: bad estimator tag byte");
  }
  out->estimator.layout = static_cast<CounterLayout>(layout);
  out->estimator.counter_width = static_cast<CounterWidth>(width);
  return Status::OK();
}

void AppendQueryResults(std::string* out,
                        const std::vector<QueryResult>& results) {
  net::PutU8(out, kQueryWireVersion);
  net::PutU32(out, static_cast<uint32_t>(results.size()));
  for (const QueryResult& result : results) AppendQueryResult(out, result);
}

Status DecodeQueryResults(net::WireReader* r,
                          std::vector<QueryResult>* out) {
  uint8_t version = 0;
  SKETCH_RETURN_NOT_OK(r->GetU8(&version));
  if (version != kQueryWireVersion) {
    return Status::InvalidArgument("query results: unsupported wire version");
  }
  uint32_t count = 0;
  SKETCH_RETURN_NOT_OK(r->GetU32(&count));
  out->clear();
  out->reserve(std::min<size_t>(count, r->remaining()));
  for (uint32_t i = 0; i < count; ++i) {
    QueryResult result;
    SKETCH_RETURN_NOT_OK(DecodeQueryResult(r, &result));
    out->push_back(std::move(result));
  }
  return Status::OK();
}

}  // namespace spatialsketch
