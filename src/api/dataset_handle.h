// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// DatasetHandle: a resolved, drop-invalidated, generation-tagged
// reference to one store dataset — the hot-path half of the typed
// serving API (src/api/).
//
// SketchStore::OpenDataset(name) pays the registry map lookup + registry
// lock ONCE and returns a handle that pins the dataset's state directly;
// every subsequent Insert/Delete/estimate through the handle goes
// straight to the dataset's own FairSharedMutex with no registry
// involvement. Handles are cheap to copy (two pointers) and safe to use
// from any number of threads concurrently — each operation carries its
// own locking, exactly like the string-keyed store entry points.
//
// Invalidation: DropDataset (and the store's destructor) marks the
// underlying state dropped, and every handle operation checks that flag
// first — so stale handles fail fast with FailedPrecondition instead of
// touching freed state (the handle's shared_ptr keeps the memory alive).
// Re-creating a dataset under the same name yields a NEW state with a
// new generation number — stale handles keep failing, and generation()
// is the tag that tells the re-creation apart from the dataset the
// handle was opened against. Open a fresh handle to serve the re-created
// dataset.

#ifndef SPATIALSKETCH_API_DATASET_HANDLE_H_
#define SPATIALSKETCH_API_DATASET_HANDLE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/geom/box.h"
#include "src/store/store_types.h"

namespace spatialsketch {

class SketchStore;
/// Serving-layer internals (src/store/dataset_state.h); never user-facing.
namespace internal {
/// The resolved per-dataset state a handle pins (defined in
/// src/store/dataset_state.h).
struct DatasetState;
}  // namespace internal

/// A resolved reference to one store dataset (see the file comment for
/// the lookup-skipping and invalidation semantics). All operations are
/// thread-safe with the same locking discipline as the equivalent
/// string-keyed SketchStore entry point; a default-constructed handle
/// fails every operation with FailedPrecondition.
class DatasetHandle {
 public:
  /// An empty handle bound to nothing; every operation fails until the
  /// handle is assigned from SketchStore::OpenDataset.
  DatasetHandle() = default;

  /// True iff the handle was obtained from OpenDataset (it references a
  /// dataset state, though that dataset may since have been dropped).
  bool valid() const { return state_ != nullptr; }

  /// True iff the handle is valid AND its dataset has not been dropped.
  /// One relaxed-cost atomic load; a true result can race a concurrent
  /// DropDataset, so operations re-check internally. Thread-safe.
  bool live() const;

  /// The dataset's registry name at creation time. Requires valid().
  const std::string& name() const;

  /// The dataset's kind (shape + ingest mapping). Requires valid().
  DatasetKind kind() const;

  /// The store-wide creation sequence number of the referenced dataset;
  /// distinguishes a re-created same-name dataset from the one this
  /// handle was opened against. Requires valid().
  uint64_t generation() const;

  /// Streaming single-object insert in ORIGINAL coordinates — the handle
  /// twin of SketchStore::Insert (same validation, kind-specific ingest
  /// mapping, sharded-writer routing, and stats accounting), minus the
  /// registry lookup. Locking: the dataset's exclusive lock, or only the
  /// calling thread's shard mutex when sharded writers are configured.
  /// Thread-safe.
  Status Insert(const Box& box) const;
  /// Streaming removal; the linear-synopsis mirror of Insert (same
  /// contract). Thread-safe.
  Status Delete(const Box& box) const;

  /// Range-count estimate on a kRange dataset (query in ORIGINAL
  /// coordinates, non-degenerate per dimension) — the handle twin of
  /// SketchStore::EstimateRangeCount, bit-identical values. Takes the
  /// dataset's shared lock; thread-safe.
  Result<double> EstimateRangeCount(const Box& query) const;
  /// Selectivity (count / object total) under ONE shared-lock
  /// acquisition, so the ratio is a consistent cut even while writers
  /// stream — the handle twin of SketchStore::EstimateRangeSelectivity.
  /// Thread-safe.
  Result<double> EstimateRangeSelectivity(const Box& query) const;

  /// Net object count (inserts minus deletes). Fences pending
  /// writer-shard deltas first, then reads under the dataset's shared
  /// lock. Thread-safe.
  Result<int64_t> NumObjects() const;

  /// Epoch fence: fold every pending writer-shard delta so subsequent
  /// estimates reflect every update that returned before this call (one
  /// relaxed atomic load when nothing is pending). Thread-safe.
  Status Fence() const;

 private:
  /// Only the store mints handles (OpenDataset) and reads their state
  /// (Run's spec resolution).
  friend class SketchStore;
  DatasetHandle(SketchStore* store,
                std::shared_ptr<internal::DatasetState> state)
      : store_(store), state_(std::move(state)) {}

  SketchStore* store_ = nullptr;
  std::shared_ptr<internal::DatasetState> state_;
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_API_DATASET_HANDLE_H_
