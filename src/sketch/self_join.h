// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Self-join sizes of atomic sketches (Section 3): SJ(X_w) = E[X_w^2] =
// sum over dyadic-id tuples of f_w(tuple)^2, where f_w counts the objects
// whose covers contain the tuple. These drive both the variance bounds
// and the Lemma-1 space sizing.
//
// Three evaluation routes:
//  * exact 1-d via frequency arrays over the (small) id universe;
//  * exact d-dim via a hash map over packed id tuples (test-scale data);
//  * sketched: E[X_w^2] = SJ(X_w), so a pilot sketch estimates its own
//    self-join size with median-of-means over squared counters — this is
//    how the sizing experiments obtain SJ without a second data pass.

#ifndef SPATIALSKETCH_SKETCH_SELF_JOIN_H_
#define SPATIALSKETCH_SKETCH_SELF_JOIN_H_

#include <cstdint>
#include <vector>

#include "src/dyadic/dyadic_domain.h"
#include "src/geom/box.h"
#include "src/sketch/dataset_sketch.h"
#include "src/sketch/shape.h"

namespace spatialsketch {

/// Exact SJ(X_w) for every word of `shape` over a 1-dimensional dataset.
/// Boxes must fit the domain. O(|boxes| log n + n) time, O(n) memory.
std::vector<double> ExactSelfJoinSizes1D(const std::vector<Box>& boxes,
                                         const DyadicDomain& domain,
                                         const Shape& shape);

/// Exact SJ(R) = SJ(X_I) + SJ(X_E) for a 1-d dataset (Section 4.1.4).
double ExactTotalSelfJoin1D(const std::vector<Box>& boxes,
                            const DyadicDomain& domain);

/// Exact SJ(X_w) for one word over a d-dimensional dataset via hashed id
/// tuples. Id bit-widths across dimensions must pack into 64 bits; meant
/// for tests and small data (cost is the product of per-dim cover sizes
/// per object).
double ExactSelfJoinSizeND(const std::vector<Box>& boxes,
                           const std::vector<DyadicDomain>& domains,
                           const Word& word, uint32_t dims);

/// Sketched estimate of SJ(X_w) from the sketch's own counters.
double EstimateSelfJoinSize(const DatasetSketch& sketch, uint32_t word_index);

/// Sketched estimate of SJ(R) = sum over the sketch's words of SJ(X_w)
/// (for the JoinShape this is the paper's SJ(R)).
double EstimateTotalSelfJoin(const DatasetSketch& sketch);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_SKETCH_SELF_JOIN_H_
