#include "src/sketch/shape.h"

namespace spatialsketch {

Letter ComplementLetter(Letter l) {
  switch (l) {
    case Letter::kI:
      return Letter::kE;
    case Letter::kE:
      return Letter::kI;
    case Letter::kL:
      return Letter::kU;
    case Letter::kU:
      return Letter::kL;
    case Letter::kLeafL:
      return Letter::kLeafU;
    case Letter::kLeafU:
      return Letter::kLeafL;
  }
  SKETCH_CHECK(false);
  return Letter::kI;
}

char LetterChar(Letter l) {
  switch (l) {
    case Letter::kI:
      return 'I';
    case Letter::kE:
      return 'E';
    case Letter::kL:
      return 'L';
    case Letter::kU:
      return 'U';
    case Letter::kLeafL:
      return 'l';
    case Letter::kLeafU:
      return 'u';
  }
  return '?';
}

Word ComplementWord(const Word& w, uint32_t dims) {
  Word out;
  for (uint32_t i = 0; i < dims; ++i) {
    out.letters[i] = ComplementLetter(w.letters[i]);
  }
  return out;
}

uint32_t CountIntervalEndpointLetters(const Word& w, uint32_t dims) {
  uint32_t c = 0;
  for (uint32_t i = 0; i < dims; ++i) {
    if (w.letters[i] == Letter::kI || w.letters[i] == Letter::kE) ++c;
  }
  return c;
}

std::string WordToString(const Word& w, uint32_t dims) {
  std::string s;
  for (uint32_t i = 0; i < dims; ++i) s += LetterChar(w.letters[i]);
  return s;
}

Result<Word> WordFromString(const std::string& s) {
  if (s.empty() || s.size() > kMaxDims) {
    return Status::InvalidArgument("word length must be in [1, kMaxDims]");
  }
  Word w;
  for (size_t i = 0; i < s.size(); ++i) {
    switch (s[i]) {
      case 'I':
        w.letters[i] = Letter::kI;
        break;
      case 'E':
        w.letters[i] = Letter::kE;
        break;
      case 'L':
        w.letters[i] = Letter::kL;
        break;
      case 'U':
        w.letters[i] = Letter::kU;
        break;
      case 'l':
        w.letters[i] = Letter::kLeafL;
        break;
      case 'u':
        w.letters[i] = Letter::kLeafU;
        break;
      default:
        return Status::InvalidArgument("unknown letter in sketch word");
    }
  }
  return w;
}

Shape Shape::JoinShape(uint32_t dims) {
  SKETCH_CHECK(dims >= 1 && dims <= kMaxDims);
  std::vector<Word> words;
  words.reserve(uint32_t{1} << dims);
  for (uint32_t mask = 0; mask < (uint32_t{1} << dims); ++mask) {
    Word w;
    for (uint32_t i = 0; i < dims; ++i) {
      w.letters[i] = (mask >> i) & 1 ? Letter::kE : Letter::kI;
    }
    words.push_back(w);
  }
  return Shape(std::move(words));
}

Shape Shape::RangeShape(uint32_t dims) {
  SKETCH_CHECK(dims >= 1 && dims <= kMaxDims);
  std::vector<Word> words;
  words.reserve(uint32_t{1} << dims);
  for (uint32_t mask = 0; mask < (uint32_t{1} << dims); ++mask) {
    Word w;
    for (uint32_t i = 0; i < dims; ++i) {
      w.letters[i] = (mask >> i) & 1 ? Letter::kU : Letter::kI;
    }
    words.push_back(w);
  }
  return Shape(std::move(words));
}

Shape Shape::PointShape(uint32_t dims) {
  SKETCH_CHECK(dims >= 1 && dims <= kMaxDims);
  Word w;
  for (uint32_t i = 0; i < dims; ++i) w.letters[i] = Letter::kL;
  return Shape({w});
}

Shape Shape::BoxCoverShape(uint32_t dims) {
  SKETCH_CHECK(dims >= 1 && dims <= kMaxDims);
  Word w;
  for (uint32_t i = 0; i < dims; ++i) w.letters[i] = Letter::kI;
  return Shape({w});
}

Shape Shape::ExtendedJoinShape(uint32_t dims) {
  SKETCH_CHECK(dims >= 1 && dims <= kMaxDims);
  static constexpr Letter kDigits[4] = {Letter::kI, Letter::kE,
                                        Letter::kLeafL, Letter::kLeafU};
  std::vector<Word> words;
  uint32_t total = 1;
  for (uint32_t i = 0; i < dims; ++i) total *= 4;
  words.reserve(total);
  for (uint32_t code = 0; code < total; ++code) {
    Word w;
    uint32_t c = code;
    for (uint32_t i = 0; i < dims; ++i) {
      w.letters[i] = kDigits[c % 4];
      c /= 4;
    }
    words.push_back(w);
  }
  return Shape(std::move(words));
}

int Shape::IndexOf(const Word& w) const {
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] == w) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace spatialsketch
