// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// SketchSchema: everything two sketches must SHARE to be comparable.
//
// The join estimators multiply counters of an R-sketch and an S-sketch
// built over the same xi-families (Section 4.1.3: "we construct atomic
// sketches XI and XE for R, and the corresponding sketches YI and YE for
// S" — same xi's). A schema owns the per-dimension dyadic domains and the
// k1 x k2 boosting grid of independently seeded xi-families (Section 2.3);
// every dataset sketched under the same schema can be joined.

#ifndef SPATIALSKETCH_SKETCH_SCHEMA_H_
#define SPATIALSKETCH_SKETCH_SCHEMA_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/dyadic/dyadic_domain.h"
#include "src/geom/box.h"
#include "src/sketch/shape.h"
#include "src/xi/point_sum_cache.h"
#include "src/xi/seed.h"
#include "src/xi/sign_cache.h"

namespace spatialsketch {

/// Per-dimension domain configuration.
struct DomainSpec {
  uint32_t log2_size = 16;  ///< domain [0, 2^log2_size)
  uint32_t max_level = DyadicDomain::kNoCap;  ///< Section 6.5 level cap

  friend bool operator==(const DomainSpec&, const DomainSpec&) = default;
};

/// Schema configuration.
struct SchemaOptions {
  uint32_t dims = 1;
  std::array<DomainSpec, kMaxDims> domains{};
  uint32_t k1 = 64;   ///< estimators averaged per group (accuracy)
  uint32_t k2 = 9;    ///< groups medianed (confidence); odd recommended
  uint64_t seed = 1;  ///< master seed; schemas with equal options are
                      ///< bit-identical (reproducible experiments)

  /// Equal options imply bit-identical schemas (all seeds are derived), so
  /// this is the portable "same schema" test across schema instances that
  /// do not share a pointer (e.g. a deserialized snapshot). Only the
  /// domains[0..dims) actually in use are compared: entries beyond `dims`
  /// are inert, and serialization does not round-trip them.
  friend bool operator==(const SchemaOptions& a, const SchemaOptions& b) {
    if (a.dims != b.dims || a.k1 != b.k1 || a.k2 != b.k2 ||
        a.seed != b.seed) {
      return false;
    }
    for (uint32_t i = 0; i < a.dims && i < kMaxDims; ++i) {
      if (!(a.domains[i] == b.domains[i])) return false;
    }
    return true;
  }
};

/// Immutable, shared via shared_ptr<const SketchSchema>.
class SketchSchema {
 public:
  /// Validates options and derives all instance seeds.
  static Result<std::shared_ptr<const SketchSchema>> Create(
      const SchemaOptions& options);

  uint32_t dims() const { return options_.dims; }
  uint32_t k1() const { return options_.k1; }
  uint32_t k2() const { return options_.k2; }
  uint32_t instances() const { return options_.k1 * options_.k2; }
  const SchemaOptions& options() const { return options_; }

  const DyadicDomain& domain(uint32_t dim) const {
    SKETCH_DCHECK(dim < dims());
    return domains_[dim];
  }

  /// Seed of the xi-family of (instance, dim).
  const XiSeed& seed(uint32_t instance, uint32_t dim) const {
    SKETCH_DCHECK(instance < instances() && dim < dims());
    return seeds_[instance * dims() + dim];
  }

  /// All instance seeds of one dimension, instance-ordered (for packed
  /// sign-table construction over instance sub-ranges).
  std::vector<XiSeed> SeedsForDim(uint32_t dim, uint32_t first_instance,
                                  uint32_t count) const;

  /// Schema-wide cache of packed sign columns over the dyadic-id universe
  /// (one column = all instances' signs of one id, 64 per word). The
  /// streaming update fast path and the batched estimators share it; the
  /// columns are built lazily, once per id, across every dataset and
  /// query under this schema. Thread-safe.
  const PackedSignCache& sign_cache() const { return *sign_cache_; }

  /// Schema-wide cache of byte-packed point-cover minus counts, one entry
  /// per (dimension, coordinate), derived from sign_cache() columns. The
  /// streaming update path reads endpoint sums from here instead of
  /// re-reducing h + 1 columns per update; entries are built lazily, once
  /// per touched coordinate, and shared across every dataset under this
  /// schema. Thread-safe (lock-free on the hit path).
  const PointSumCache& point_sum_cache() const { return *point_sum_cache_; }

  /// Paper-conformant storage accounting: per instance a dataset stores
  /// one counter word per shape word plus one (amortized) seed word; the
  /// 1-d join instance of Section 4.1.5 ("a seed ... and four counters")
  /// then costs 5 words across both datasets.
  uint64_t WordsPerDataset(const Shape& shape) const {
    return static_cast<uint64_t>(instances()) * (shape.size() + 1);
  }

 private:
  SketchSchema(const SchemaOptions& options, std::vector<DyadicDomain> domains,
               std::vector<XiSeed> seeds);

  SchemaOptions options_;
  std::vector<DyadicDomain> domains_;
  std::vector<XiSeed> seeds_;  // [instance * dims + dim]
  std::unique_ptr<PackedSignCache> sign_cache_;
  std::unique_ptr<PointSumCache> point_sum_cache_;
};

using SchemaPtr = std::shared_ptr<const SketchSchema>;

/// Schema over the ENDPOINT-TRANSFORMED domain implied by an ORIGINAL
/// h-bit domain (Section 5.2 embeds it into h+2 bits per dimension). This
/// is THE mapping from user-facing options to the schema both sides of an
/// estimate must share; the range pipeline, the join pipeline, and the
/// store all build their schemas through it so their configurations can
/// never diverge. `per_dim_caps` (length dims) overrides the uniform
/// `max_level` when non-null; both cap the TRANSFORMED domain's dyadic
/// levels.
Result<SchemaPtr> MakeTransformedSchema(uint32_t dims, uint32_t log2_domain,
                                        uint32_t max_level,
                                        const uint32_t* per_dim_caps,
                                        uint32_t k1, uint32_t k2,
                                        uint64_t seed);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_SKETCH_SCHEMA_H_
