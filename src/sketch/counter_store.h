// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// CounterStore: the layout-owning counter-block module of a synopsis.
//
// A DatasetSketch is a linear counter array — one int64 X_w per (boosting
// instance, shape word) — but HOW those counters are laid out in memory,
// how wide they are stored, and what backing pages hold them used to be
// an implementation accident of std::vector<int64_t> that every layer
// above (kernels, estimators, writer shards, serialize) hard-coded. This
// module makes the layout a first-class, per-dataset choice:
//
//  * Layouts: kFlat is the classic instance-major order (instance i's
//    num_words counters are contiguous — the order the SIMD z-walk
//    kernels stream). kBlocked groups 64 instances per block and stores
//    each word's 64 lanes contiguously (word-major within the block),
//    matching the 64-lane granularity of the bit-sliced streaming apply.
//  * Widths: kI64 stores raw int64 counters; kI32 stores them narrow
//    (half the bytes — the cold-tenant density mode) with
//    saturation-CHECKED widening: any update that would leave the int32
//    range widens the whole store to int64 in place first, so no value is
//    ever clipped. Width is switchable in place at any quiescent point.
//  * Backing: kHugePage requests an aligned allocation advised onto
//    transparent huge pages (Linux; elsewhere it degrades to an aligned
//    allocation) for hot tenants whose counter blocks should not thrash
//    the TLB.
//
// The linearity invariant is layout-independent: counters are exact
// integers and integer addition is freely reassociable, so every
// (layout x width) combination holds bit-identical VALUES to the flat
// int64 reference after any update interleaving. The estimator z-walks
// (RangeZ/JoinZ/SelfJoinZ) are floating point; this module therefore
// performs them either through the kernel dispatch table (flat + int64,
// the fast path) or through generic walks that replicate the scalar
// kernel's per-instance, word-ascending FP order exactly — so estimates,
// too, are bit-identical across layouts, widths, and kernel variants
// (tests/counter_store_test.cc pins every combination differentially).
//
// Thread-safety: none (mirrors DatasetSketch — one writer at a time, and
// width widening reallocates, so even reads must not race a write).
// Serving layers provide the locks.

#ifndef SPATIALSKETCH_SKETCH_COUNTER_STORE_H_
#define SPATIALSKETCH_SKETCH_COUNTER_STORE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/macros.h"
#include "src/common/status.h"

namespace spatialsketch {

namespace kernels {
struct KernelOps;
}  // namespace kernels

/// Physical order of the counter words (see the file comment).
enum class CounterLayout : uint8_t {
  kFlat = 0,     ///< instance-major: [instance * num_words + word]
  kBlocked = 1,  ///< 64-instance blocks, word-major inside each block
};

/// Storage width of one counter (values are int64 either way; kI32 widens
/// in place before any value would leave the int32 range).
enum class CounterWidth : uint8_t {
  kI64 = 0,  ///< 8 bytes per counter (the reference width)
  kI32 = 1,  ///< 4 bytes per counter (compact cold-tenant mode)
};

/// Allocation backing of the counter block.
enum class CounterBacking : uint8_t {
  kDefault = 0,   ///< plain heap allocation
  kHugePage = 1,  ///< aligned + THP-advised (Linux; aligned elsewhere)
};

/// Stable names for bench params / logs ("flat", "i32", "hugepage", ...).
const char* CounterLayoutName(CounterLayout layout);
const char* CounterWidthName(CounterWidth width);
const char* CounterBackingName(CounterBacking backing);

/// Parse the names above (case-sensitive). Unknown names fail with
/// InvalidArgument — the bench flag and DatasetOptions plumbing share
/// these.
Result<CounterLayout> ParseCounterLayout(const std::string& name);
Result<CounterWidth> ParseCounterWidth(const std::string& name);

/// Per-dataset counter storage configuration.
struct CounterStoreOptions {
  CounterLayout layout = CounterLayout::kFlat;
  CounterWidth width = CounterWidth::kI64;
  CounterBacking backing = CounterBacking::kDefault;

  friend bool operator==(const CounterStoreOptions&,
                         const CounterStoreOptions&) = default;
};

/// The counter block of one synopsis: instances() x num_words() int64
/// values behind a pluggable (layout, width, backing) — the ONLY module
/// that indexes raw counter memory (see the file comment).
class CounterStore {
 public:
  /// An empty store (0 x 0); assign a real one before use.
  CounterStore() = default;

  /// A zeroed instances x num_words store under `opt`.
  CounterStore(uint32_t instances, uint32_t num_words,
               CounterStoreOptions opt = {});

  ~CounterStore();
  CounterStore(const CounterStore& other);
  CounterStore& operator=(const CounterStore& other);
  CounterStore(CounterStore&& other) noexcept;
  CounterStore& operator=(CounterStore&& other) noexcept;

  uint32_t instances() const { return instances_; }
  uint32_t num_words() const { return num_words_; }
  CounterLayout layout() const { return opt_.layout; }
  /// Current width — may be wider than requested at construction if a
  /// value forced a saturation-checked widening.
  CounterWidth width() const { return opt_.width; }
  CounterBacking backing() const { return opt_.backing; }
  const CounterStoreOptions& options() const { return opt_; }

  /// Counter X_w of (instance, word), whatever the layout/width.
  int64_t Get(uint32_t instance, uint32_t word) const {
    const size_t idx = Index(instance, word);
    return opt_.width == CounterWidth::kI64
               ? data64_[idx]
               : static_cast<int64_t>(data32_[idx]);
  }

  /// counters[instance][word] += delta, widening in place first if the
  /// result would leave the current narrow width's range.
  void Add(uint32_t instance, uint32_t word, int64_t delta) {
    if (opt_.width == CounterWidth::kI64) {
      data64_[Index(instance, word)] += delta;
      return;
    }
    AddNarrow(instance, word, delta);
  }

  /// Streaming counter apply of one 64-instance block of a bitmask-tensor
  /// shape (the kernels.h tensor_apply contract): lanes of block `block`
  /// receive the iterated-partial-product deltas. Flat int64 stores hand
  /// the kernel their rows directly; every other configuration stages the
  /// deltas through a zeroed scratch block and scatter-adds them — exact
  /// integer math either way, so counters stay bit-identical.
  void TensorApply(const kernels::KernelOps& kops, uint32_t block,
                   uint32_t lanes, const int32_t* const (*lv)[2],
                   uint32_t dims, int64_t sign);

  /// Element-wise add of another store of the SAME logical dimensions
  /// (layout/width may differ — writer-shard deltas stay flat int64 while
  /// the master may be blocked or narrow). Widens in place if needed.
  void MergeFrom(const CounterStore& other);

  /// Zero every counter, keeping layout, width, and allocation.
  void Reset();

  /// Overwrite this store's VALUES with `other`'s (same logical
  /// dimensions required), keeping THIS store's layout and backing.
  /// Widens in place when `other` holds values outside int32 range and
  /// this store is narrow.
  void CopyValuesFrom(const CounterStore& other);

  /// Switch the storage width in place. Widening always succeeds;
  /// narrowing fails with FailedPrecondition when any current value does
  /// not fit int32 (and leaves the store unchanged).
  Status SetWidth(CounterWidth width);

  /// Widen to int64 in place (no-op when already wide). Parallel writers
  /// over disjoint instances call this ONCE up front so no concurrent
  /// saturation-widening can race (BulkLoader does).
  void EnsureWide() {
    if (opt_.width != CounterWidth::kI64) SKETCH_CHECK(SetWidth(CounterWidth::kI64).ok());
  }

  /// True iff every value fits int32 (i.e. SetWidth(kI32) would succeed).
  bool FitsNarrow() const;

  /// The values in flat instance-major int64 order — the reference
  /// representation every layout/width is bit-compared against, and the
  /// serialization order.
  std::vector<int64_t> ToFlat() const;

  /// Overwrite from flat instance-major values (size must be
  /// instances * num_words). Widens in place when needed.
  void FromFlat(const std::vector<int64_t>& flat);

  /// Actual allocated counter bytes (layout padding and width included) —
  /// the honest-accounting complement of the paper-accounted
  /// MemoryWords().
  uint64_t MemoryBytes() const {
    return static_cast<uint64_t>(elems_) *
           (opt_.width == CounterWidth::kI64 ? 8 : 4);
  }

  // ---- Estimator z-walks (the layout descriptor the estimators use) ----
  // Flat int64 stores run through the kernel dispatch table; all other
  // configurations run generic walks replicating the scalar kernel's
  // per-instance FP order, so results are bit-identical either way.

  /// Range-estimator per-instance sums (kernels.h range_z contract;
  /// num_words() must be 2^dims).
  void RangeZ(uint32_t dims, const int32_t* factors, double* z) const;

  /// Join-estimator per-instance dot products over complementary words
  /// (kernels.h join_z contract; both stores must share dimensions).
  static void JoinZ(const CounterStore& r, const CounterStore& s,
                    uint32_t dims, double* z);

  /// Self-join per-instance squares of one word column (kernels.h
  /// self_join_z contract).
  void SelfJoinZ(uint32_t word, double* z) const;

 private:
  /// Physical element index of (instance, word) under the layout.
  size_t Index(uint32_t instance, uint32_t word) const {
    SKETCH_DCHECK(instance < instances_ && word < num_words_);
    if (opt_.layout == CounterLayout::kFlat) {
      return static_cast<size_t>(instance) * num_words_ + word;
    }
    // Blocked: 64-lane blocks, word-major within the block.
    return (static_cast<size_t>(instance / 64) * num_words_ + word) * 64 +
           instance % 64;
  }

  void AddNarrow(uint32_t instance, uint32_t word, int64_t delta);
  void SetUnchecked(uint32_t instance, uint32_t word, int64_t value);
  void Allocate();
  void Free();

  uint32_t instances_ = 0;
  uint32_t num_words_ = 0;
  CounterStoreOptions opt_;
  size_t elems_ = 0;        ///< allocated elements (>= instances*num_words)
  int64_t* data64_ = nullptr;  ///< non-null iff width == kI64 and elems_ > 0
  int32_t* data32_ = nullptr;  ///< non-null iff width == kI32 and elems_ > 0
  /// Staging block for TensorApply on non-fast-path configurations.
  std::vector<int64_t> apply_scratch_;
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_SKETCH_COUNTER_STORE_H_
