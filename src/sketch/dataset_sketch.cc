#include "src/sketch/dataset_sketch.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "src/gf2/gf2_64.h"
#include "src/xi/bch_family.h"
#include "src/xi/sign_table.h"

namespace spatialsketch {

namespace {

// Instances per bulk-load batch: bounds sign-table memory to
// kBlocksPerBatch * num_ids * 8 bytes per dimension (per worker thread).
constexpr uint32_t kBlocksPerBatch = 8;
constexpr uint32_t kInstancesPerBatch = BulkLoader::kInstancesPerBatch;
static_assert(kInstancesPerBatch == kBlocksPerBatch * 64,
              "batch width drives both the sign-table blocking and the "
              "public parallelism threshold");

// Spread the 8 bits of a byte into the 8 byte lanes of a word: bit b of
// `bits` becomes 0x01 in byte b. (Table-driven: the multiply-shift idioms
// either reverse the bit order or need per-byte normalization; lane order
// must be preserved exactly, since instance lanes pair sketch counters
// with per-instance seeds elsewhere.)
struct SpreadTable {
  uint64_t v[256];
  constexpr SpreadTable() : v() {
    for (int b = 0; b < 256; ++b) {
      uint64_t out = 0;
      for (int m = 0; m < 8; ++m) {
        if ((b >> m) & 1) out |= uint64_t{1} << (8 * m);
      }
      v[b] = out;
    }
  }
};
constexpr SpreadTable kSpreadTable;

inline uint64_t SpreadBitsToBytes(uint64_t bits) {
  return kSpreadTable.v[bits & 0xFF];
}

// Per-lane minus-counts of m <= 255 signs, bit-sliced then packed into 64
// byte lanes: byte j of out8[j/8] counts the ids whose xi is -1 for lane
// j. Bit `lane` of row[id] set means xi = -1.
void CountMinusPacked(const uint64_t* row, const uint64_t* ids, size_t m,
                      uint64_t out8[8]) {
  for (int g = 0; g < 8; ++g) out8[g] = 0;
  size_t done = 0;
  while (done < m) {
    const size_t chunk = std::min<size_t>(63, m - done);
    uint64_t planes[6] = {0, 0, 0, 0, 0, 0};
    for (size_t i = 0; i < chunk; ++i) {
      uint64_t carry = row[ids[done + i]];
      for (uint32_t k = 0; carry != 0 && k < 6; ++k) {
        const uint64_t t = planes[k] & carry;
        planes[k] ^= carry;
        carry = t;
      }
    }
    for (uint32_t k = 0; k < 6; ++k) {
      if (planes[k] == 0) continue;
      const uint64_t plane = planes[k];
      for (int g = 0; g < 8; ++g) {
        out8[g] += SpreadBitsToBytes((plane >> (8 * g)) & 0xFF) << k;
      }
    }
    done += chunk;
  }
}

// Per-lane minus-counts for arbitrary m into 32-bit counters.
void CountMinusWide(const uint64_t* row, const uint64_t* ids, size_t m,
                    int32_t out[64]) {
  std::fill(out, out + 64, 0);
  uint64_t packed[8];
  size_t done = 0;
  while (done < m) {
    const size_t part = std::min<size_t>(252, m - done);
    CountMinusPacked(row, ids + done, part, packed);
    for (uint32_t j = 0; j < 64; ++j) {
      out[j] += static_cast<int32_t>((packed[j >> 3] >> ((j & 7) * 8)) &
                                     0xFF);
    }
    done += part;
  }
}

}  // namespace

DatasetSketch::DatasetSketch(SchemaPtr schema, Shape shape)
    : schema_(std::move(schema)), shape_(std::move(shape)) {
  SKETCH_CHECK(schema_ != nullptr);
  SKETCH_CHECK(shape_.size() >= 1);
  counters_.assign(
      static_cast<size_t>(schema_->instances()) * shape_.size(), 0);
  ComputeNeeds();
}

void DatasetSketch::ComputeNeeds() {
  needs_.assign(schema_->dims(), DimNeeds{});
  for (const Word& w : shape_.words()) {
    for (uint32_t d = 0; d < schema_->dims(); ++d) {
      switch (w.letters[d]) {
        case Letter::kI:
          needs_[d].group[kGroupI] = true;
          break;
        case Letter::kE:
          needs_[d].group[kGroupL] = true;
          needs_[d].group[kGroupU] = true;
          break;
        case Letter::kL:
          needs_[d].group[kGroupL] = true;
          break;
        case Letter::kU:
          needs_[d].group[kGroupU] = true;
          break;
        case Letter::kLeafL:
          needs_[d].leaf_lower = true;
          break;
        case Letter::kLeafU:
          needs_[d].leaf_upper = true;
          break;
      }
    }
  }
}

void DatasetSketch::GatherIds(const Box& box, uint32_t dim) {
  const DyadicDomain& dom = schema_->domain(dim);
  SKETCH_DCHECK(box.lo[dim] <= box.hi[dim]);
  SKETCH_DCHECK(box.hi[dim] < dom.size());
  for (auto& v : scratch_ids_) v.clear();
  if (needs_[dim].group[kGroupI]) {
    dom.ForEachCoverId(box.lo[dim], box.hi[dim], [&](uint64_t id) {
      scratch_ids_[kGroupI].push_back(id);
    });
  }
  if (needs_[dim].group[kGroupL]) {
    dom.ForEachPointCoverId(box.lo[dim], [&](uint64_t id) {
      scratch_ids_[kGroupL].push_back(id);
    });
  }
  if (needs_[dim].group[kGroupU]) {
    dom.ForEachPointCoverId(box.hi[dim], [&](uint64_t id) {
      scratch_ids_[kGroupU].push_back(id);
    });
  }
}

int64_t DatasetSketch::LetterValue(Letter l, const int32_t* sums,
                                   int32_t leaf_l, int32_t leaf_u) {
  switch (l) {
    case Letter::kI:
      return sums[kGroupI];
    case Letter::kE:
      return sums[kGroupL] + sums[kGroupU];
    case Letter::kL:
      return sums[kGroupL];
    case Letter::kU:
      return sums[kGroupU];
    case Letter::kLeafL:
      return leaf_l;
    case Letter::kLeafU:
      return leaf_u;
  }
  SKETCH_CHECK(false);
  return 0;
}

void DatasetSketch::Update(const Box& box, const Box& leaf_box, int sign) {
  const uint32_t dims = schema_->dims();
  const uint32_t instances = schema_->instances();
  const uint32_t num_words = shape_.size();

  // Per-dimension gathered ids with precomputed GF(2^64) cubes (the cube
  // depends only on the id, so it is shared across all instances).
  struct DimData {
    std::vector<uint64_t> ids[kNumGroups];
    std::vector<uint64_t> cubes[kNumGroups];
    uint64_t leaf_l_id = 0, leaf_l_cube = 0;
    uint64_t leaf_u_id = 0, leaf_u_cube = 0;
  };
  std::vector<DimData> dim_data(dims);
  for (uint32_t d = 0; d < dims; ++d) {
    GatherIds(box, d);
    for (uint32_t g = 0; g < kNumGroups; ++g) {
      dim_data[d].ids[g] = scratch_ids_[g];
      dim_data[d].cubes[g].reserve(scratch_ids_[g].size());
      for (uint64_t id : scratch_ids_[g]) {
        dim_data[d].cubes[g].push_back(gf2::Cube(id));
      }
    }
    const DyadicDomain& dom = schema_->domain(d);
    if (needs_[d].leaf_lower) {
      dim_data[d].leaf_l_id = dom.LeafId(leaf_box.lo[d]);
      dim_data[d].leaf_l_cube = gf2::Cube(dim_data[d].leaf_l_id);
    }
    if (needs_[d].leaf_upper) {
      dim_data[d].leaf_u_id = dom.LeafId(leaf_box.hi[d]);
      dim_data[d].leaf_u_cube = gf2::Cube(dim_data[d].leaf_u_id);
    }
  }

  int64_t letter_vals[kMaxDims][6];
  for (uint32_t inst = 0; inst < instances; ++inst) {
    for (uint32_t d = 0; d < dims; ++d) {
      const BchXiFamily fam(schema_->seed(inst, d));
      int32_t sums[kNumGroups] = {0, 0, 0};
      for (uint32_t g = 0; g < kNumGroups; ++g) {
        const auto& ids = dim_data[d].ids[g];
        const auto& cubes = dim_data[d].cubes[g];
        int32_t s = 0;
        for (size_t i = 0; i < ids.size(); ++i) {
          s += fam.SignWithCube(ids[i], cubes[i]);
        }
        sums[g] = s;
      }
      int32_t leaf_l = 0, leaf_u = 0;
      if (needs_[d].leaf_lower) {
        leaf_l = fam.SignWithCube(dim_data[d].leaf_l_id,
                                  dim_data[d].leaf_l_cube);
      }
      if (needs_[d].leaf_upper) {
        leaf_u = fam.SignWithCube(dim_data[d].leaf_u_id,
                                  dim_data[d].leaf_u_cube);
      }
      for (uint32_t li = 0; li < 6; ++li) {
        letter_vals[d][li] =
            LetterValue(static_cast<Letter>(li), sums, leaf_l, leaf_u);
      }
    }
    int64_t* row = counters_.data() + static_cast<size_t>(inst) * num_words;
    for (uint32_t w = 0; w < num_words; ++w) {
      const Word& word = shape_.word(w);
      int64_t prod = sign;
      for (uint32_t d = 0; d < dims; ++d) {
        prod *= letter_vals[d][static_cast<uint32_t>(word.letters[d])];
      }
      row[w] += prod;
    }
  }
  num_objects_ += sign;
}

void DatasetSketch::BulkLoad(const Box* boxes, size_t count, int sign) {
  BulkLoader loader(schema_);
  loader.Add(this, boxes, count, nullptr, sign);
  loader.Run();
}

void DatasetSketch::BulkLoadWithLeafBoxes(const std::vector<Box>& boxes,
                                          const std::vector<Box>& leaf_boxes,
                                          int sign) {
  BulkLoader loader(schema_);
  loader.Add(this, &boxes, &leaf_boxes, sign);
  loader.Run();
}

void BulkLoader::Add(DatasetSketch* sketch, const std::vector<Box>* boxes,
                     const std::vector<Box>* leaf_boxes, int sign) {
  SKETCH_CHECK(boxes != nullptr);
  SKETCH_CHECK(leaf_boxes == nullptr || leaf_boxes->size() == boxes->size());
  Add(sketch, boxes->data(), boxes->size(),
      leaf_boxes != nullptr ? leaf_boxes->data() : nullptr, sign);
}

void BulkLoader::Add(DatasetSketch* sketch, const Box* boxes, size_t count,
                     const Box* leaf_boxes, int sign) {
  SKETCH_CHECK(sketch != nullptr && (boxes != nullptr || count == 0));
  SKETCH_CHECK(sketch->schema() == schema_);
  SKETCH_CHECK(sign == 1 || sign == -1);
  jobs_.push_back({sketch, boxes, count, leaf_boxes, sign});
}

void BulkLoader::Run(uint32_t max_threads) {
  if (jobs_.empty()) return;
  const uint32_t dims = schema_->dims();
  const uint32_t instances = schema_->instances();
  const uint32_t num_batches =
      (instances + kInstancesPerBatch - 1) / kInstancesPerBatch;

  // Per-job update plan: which letters each dimension needs and the flat
  // letter codes of every word (shared, read-only).
  struct Plan {
    bool letter_used[kMaxDims][6] = {};
    std::vector<uint8_t> word_letters;  // [word * dims + d]
  };
  std::vector<Plan> plans(jobs_.size());
  for (size_t ji = 0; ji < jobs_.size(); ++ji) {
    const Shape& shape = jobs_[ji].sketch->shape_;
    Plan& plan = plans[ji];
    plan.word_letters.resize(static_cast<size_t>(shape.size()) * dims);
    for (uint32_t w = 0; w < shape.size(); ++w) {
      for (uint32_t d = 0; d < dims; ++d) {
        const uint8_t code =
            static_cast<uint8_t>(shape.word(w).letters[d]);
        plan.word_letters[static_cast<size_t>(w) * dims + d] = code;
        plan.letter_used[d][code] = true;
      }
    }
  }

  // Batches write disjoint counter ranges, so they parallelize cleanly.
  std::atomic<uint32_t> next_batch{0};
  auto worker = [&]() {
    // Thread-local scratch: gathered cover ids per (dim, group), packed
    // minus-counts per (dim, group) for one block, and wide fallbacks for
    // covers longer than 255 ids.
    std::vector<uint64_t> all_ids[kMaxDims][DatasetSketch::kNumGroups];
    uint64_t packed[kMaxDims][DatasetSketch::kNumGroups][8];
    int32_t wide[kMaxDims][DatasetSketch::kNumGroups][64];
    bool use_wide[kMaxDims][DatasetSketch::kNumGroups];

    uint32_t batch_idx;
    while ((batch_idx = next_batch.fetch_add(1)) < num_batches) {
      const uint32_t first = batch_idx * kInstancesPerBatch;
      const uint32_t batch = std::min(kInstancesPerBatch, instances - first);
      const uint32_t blocks = (batch + 63) / 64;

      // Packed sign tables for this batch, shared by every job.
      std::vector<SignTable> tables;
      tables.reserve(dims);
      for (uint32_t d = 0; d < dims; ++d) {
        tables.emplace_back(schema_->SeedsForDim(d, first, batch),
                            schema_->domain(d).num_ids());
      }

      for (size_t ji = 0; ji < jobs_.size(); ++ji) {
        const Job& job = jobs_[ji];
        const Plan& plan = plans[ji];
        DatasetSketch& sk = *job.sketch;
        const uint32_t num_words = sk.shape_.size();
        for (size_t bi = 0; bi < job.count; ++bi) {
          const Box& box = job.boxes[bi];
          const Box& leaf_box =
              job.leaf_boxes != nullptr ? job.leaf_boxes[bi] : box;

          // Gather cover ids once per (object, dim); shared by blocks.
          size_t group_size[kMaxDims][DatasetSketch::kNumGroups] = {};
          uint64_t leaf_l_id[kMaxDims] = {};
          uint64_t leaf_u_id[kMaxDims] = {};
          for (uint32_t d = 0; d < dims; ++d) {
            const DyadicDomain& dom = schema_->domain(d);
            const auto& needs = sk.needs_[d];
            for (auto& v : all_ids[d]) v.clear();
            if (needs.group[DatasetSketch::kGroupI]) {
              dom.ForEachCoverId(box.lo[d], box.hi[d], [&](uint64_t id) {
                all_ids[d][DatasetSketch::kGroupI].push_back(id);
              });
            }
            if (needs.group[DatasetSketch::kGroupL]) {
              dom.ForEachPointCoverId(box.lo[d], [&](uint64_t id) {
                all_ids[d][DatasetSketch::kGroupL].push_back(id);
              });
            }
            if (needs.group[DatasetSketch::kGroupU]) {
              dom.ForEachPointCoverId(box.hi[d], [&](uint64_t id) {
                all_ids[d][DatasetSketch::kGroupU].push_back(id);
              });
            }
            for (uint32_t g = 0; g < DatasetSketch::kNumGroups; ++g) {
              group_size[d][g] = all_ids[d][g].size();
            }
            if (needs.leaf_lower) leaf_l_id[d] = dom.LeafId(leaf_box.lo[d]);
            if (needs.leaf_upper) leaf_u_id[d] = dom.LeafId(leaf_box.hi[d]);
          }

          for (uint32_t blk = 0; blk < blocks; ++blk) {
            const uint32_t lanes = std::min(64u, batch - blk * 64);
            uint64_t leaf_l_mask[kMaxDims] = {};
            uint64_t leaf_u_mask[kMaxDims] = {};
            for (uint32_t d = 0; d < dims; ++d) {
              const uint64_t* row = tables[d].Row(blk);
              const auto& needs = sk.needs_[d];
              for (uint32_t g = 0; g < DatasetSketch::kNumGroups; ++g) {
                const auto& gi = all_ids[d][g];
                use_wide[d][g] = gi.size() > 255;
                if (gi.empty()) {
                  for (int q = 0; q < 8; ++q) packed[d][g][q] = 0;
                } else if (use_wide[d][g]) {
                  CountMinusWide(row, gi.data(), gi.size(), wide[d][g]);
                } else {
                  CountMinusPacked(row, gi.data(), gi.size(),
                                   packed[d][g]);
                }
              }
              if (needs.leaf_lower) leaf_l_mask[d] = row[leaf_l_id[d]];
              if (needs.leaf_upper) leaf_u_mask[d] = row[leaf_u_id[d]];
            }

            int64_t letter_vals[kMaxDims][6];
            for (uint32_t j = 0; j < lanes; ++j) {
              const uint32_t inst = first + blk * 64 + j;
              for (uint32_t d = 0; d < dims; ++d) {
                int32_t gs[DatasetSketch::kNumGroups];
                for (uint32_t g = 0; g < DatasetSketch::kNumGroups; ++g) {
                  const int32_t v =
                      use_wide[d][g]
                          ? wide[d][g][j]
                          : static_cast<int32_t>(
                                (packed[d][g][j >> 3] >> ((j & 7) * 8)) &
                                0xFF);
                  gs[g] = static_cast<int32_t>(group_size[d][g]) - 2 * v;
                }
                const auto& used = plan.letter_used[d];
                if (used[0]) letter_vals[d][0] = gs[DatasetSketch::kGroupI];
                if (used[1]) {
                  letter_vals[d][1] = gs[DatasetSketch::kGroupL] +
                                      gs[DatasetSketch::kGroupU];
                }
                if (used[2]) letter_vals[d][2] = gs[DatasetSketch::kGroupL];
                if (used[3]) letter_vals[d][3] = gs[DatasetSketch::kGroupU];
                if (used[4]) {
                  letter_vals[d][4] =
                      1 - 2 * static_cast<int64_t>((leaf_l_mask[d] >> j) &
                                                   1);
                }
                if (used[5]) {
                  letter_vals[d][5] =
                      1 - 2 * static_cast<int64_t>((leaf_u_mask[d] >> j) &
                                                   1);
                }
              }
              int64_t* row_out = sk.counters_.data() +
                                 static_cast<size_t>(inst) * num_words;
              const uint8_t* wl = plan.word_letters.data();
              for (uint32_t w = 0; w < num_words; ++w) {
                int64_t prod = job.sign;
                for (uint32_t d = 0; d < dims; ++d) {
                  prod *= letter_vals[d][wl[w * dims + d]];
                }
                row_out[w] += prod;
              }
            }
          }
        }
      }
    }
  };

  uint32_t num_threads = std::thread::hardware_concurrency();
  if (num_threads == 0) num_threads = 1;
  if (max_threads != 0) num_threads = std::min(num_threads, max_threads);
  num_threads = std::min(num_threads, num_batches);
  if (num_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }

  for (const Job& job : jobs_) {
    job.sketch->num_objects_ +=
        job.sign * static_cast<int64_t>(job.count);
  }
  jobs_.clear();
}

void DatasetSketch::Merge(const DatasetSketch& other) {
  SKETCH_CHECK(schema_ == other.schema_);
  SKETCH_CHECK(shape_ == other.shape_);
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  num_objects_ += other.num_objects_;
}

Status DatasetSketch::AdoptCountersFrom(const DatasetSketch& other) {
  if (!(shape_ == other.shape_)) {
    return Status::FailedPrecondition(
        "AdoptCountersFrom requires equal shapes");
  }
  if (schema_ != other.schema_ &&
      !(schema_->options() == other.schema_->options())) {
    return Status::FailedPrecondition(
        "AdoptCountersFrom requires equal schema configurations");
  }
  counters_ = other.counters_;
  num_objects_ = other.num_objects_;
  return Status::OK();
}

}  // namespace spatialsketch
