#include "src/sketch/dataset_sketch.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>

#include "src/gf2/gf2_64.h"
#include "src/xi/bch_family.h"
#include "src/xi/bitslice.h"
#include "src/xi/kernels.h"
#include "src/xi/point_sum_cache.h"
#include "src/xi/sign_cache.h"
#include "src/xi/sign_table.h"

namespace spatialsketch {

namespace {

// Instances per bulk-load batch: bounds sign-table memory to
// kBlocksPerBatch * num_ids * 8 bytes per dimension (per worker thread).
constexpr uint32_t kBlocksPerBatch = 8;
constexpr uint32_t kInstancesPerBatch = BulkLoader::kInstancesPerBatch;
static_assert(kInstancesPerBatch == kBlocksPerBatch * 64,
              "batch width drives both the sign-table blocking and the "
              "public parallelism threshold");

using bitslice::PackedLane;

// Default budget for serving endpoint sums from the PointSumCache.
// Measured (micro_update_throughput --point_sum_budget A/B, Release, see
// docs/BENCH.md), cached sums win at every domain size tried — +15-19%
// updates/s from 2^10 through 2^18 coordinates — because entries replace
// both the column reads and the CSA reduction and only TOUCHED
// coordinates ever allocate. The budget caps the WORST-CASE pool
// (every coordinate touched) so an adversarial huge-domain stream cannot
// grow memory without bound: dimensions past the cap fall back to the
// on-the-fly reduction, which keeps the pre-cache throughput.
std::atomic<uint64_t> g_point_sum_budget_bytes{uint64_t{512} << 20};

}  // namespace

void DatasetSketch::SetPointSumBudgetBytes(uint64_t bytes) {
  g_point_sum_budget_bytes.store(bytes, std::memory_order_relaxed);
}

uint64_t DatasetSketch::PointSumBudgetBytes() {
  return g_point_sum_budget_bytes.load(std::memory_order_relaxed);
}

DatasetSketch::DatasetSketch(SchemaPtr schema, Shape shape,
                             CounterStoreOptions counter_opt)
    : schema_(std::move(schema)), shape_(std::move(shape)) {
  SKETCH_CHECK(schema_ != nullptr);
  SKETCH_CHECK(shape_.size() >= 1);
  counters_ = CounterStore(schema_->instances(), shape_.size(), counter_opt);
  ComputeNeeds();
}

uint64_t DatasetSketch::MemoryBytes() const {
  uint64_t bytes = counters_.MemoryBytes();
  bytes += needs_.capacity() * sizeof(DimNeeds);
  bytes += word_letters_.capacity();
  for (const auto& v : scratch_ids_) bytes += v.capacity() * sizeof(uint64_t);
  for (const auto& v : scratch_cubes_) {
    bytes += v.capacity() * sizeof(uint64_t);
  }
  for (uint32_t d = 0; d < kMaxDims; ++d) {
    for (uint32_t g = 0; g < kNumGroups; ++g) {
      bytes += scratch_cols_[d][g].capacity() * sizeof(const uint64_t*);
    }
  }
  bytes += scratch_packed_.capacity() * sizeof(uint64_t);
  bytes += scratch_planes_.capacity() * sizeof(uint64_t);
  bytes += scratch_wide_.capacity() * sizeof(int32_t);
  return bytes;
}

void DatasetSketch::ComputeNeeds() {
  needs_.assign(schema_->dims(), DimNeeds{});
  const uint32_t dims = schema_->dims();
  word_letters_.assign(static_cast<size_t>(shape_.size()) * dims, 0);
  for (uint32_t w = 0; w < shape_.size(); ++w) {
    for (uint32_t d = 0; d < dims; ++d) {
      const Letter l = shape_.word(w).letters[d];
      word_letters_[static_cast<size_t>(w) * dims + d] =
          static_cast<uint8_t>(l);
      letter_used_[d][static_cast<uint32_t>(l)] = true;
      switch (l) {
        case Letter::kI:
          needs_[d].group[kGroupI] = true;
          break;
        case Letter::kE:
          needs_[d].group[kGroupL] = true;
          needs_[d].group[kGroupU] = true;
          break;
        case Letter::kL:
          needs_[d].group[kGroupL] = true;
          break;
        case Letter::kU:
          needs_[d].group[kGroupU] = true;
          break;
        case Letter::kLeafL:
          needs_[d].leaf_lower = true;
          break;
        case Letter::kLeafU:
          needs_[d].leaf_upper = true;
          break;
      }
    }
  }
  // Tensor detection: RangeShape/JoinShape list the 2^dims words in
  // bitmask order with the letter of dimension d depending only on bit d.
  tensor_bitmask_ = false;
  if (shape_.size() == (1u << dims)) {
    for (uint32_t d = 0; d < dims; ++d) {
      tensor_letters_[d][0] = word_letters_[d];
      tensor_letters_[d][1] =
          word_letters_[(static_cast<size_t>(1) << d) * dims + d];
    }
    bool ok = true;
    for (uint32_t w = 0; w < shape_.size() && ok; ++w) {
      for (uint32_t d = 0; d < dims; ++d) {
        if (word_letters_[static_cast<size_t>(w) * dims + d] !=
            tensor_letters_[d][(w >> d) & 1]) {
          ok = false;
          break;
        }
      }
    }
    tensor_bitmask_ = ok;
  }
  // Freeze the endpoint-sum pick per dimension: cached sums when the
  // worst-case pool (every coordinate touched) fits the budget, on-the-
  // fly CSA otherwise. One entry costs num_blocks() * 64 bytes.
  const uint64_t budget = PointSumBudgetBytes();
  const uint64_t entry_bytes =
      static_cast<uint64_t>(schema_->sign_cache().num_blocks()) * 64;
  for (uint32_t d = 0; d < dims; ++d) {
    const uint64_t coords = uint64_t{1} << schema_->domain(d).log2_size();
    point_sums_cached_[d] = coords * entry_bytes <= budget;
  }
}

void DatasetSketch::GatherIds(const Box& box, uint32_t dim) {
  const DyadicDomain& dom = schema_->domain(dim);
  SKETCH_DCHECK(box.lo[dim] <= box.hi[dim]);
  SKETCH_DCHECK(box.hi[dim] < dom.size());
  for (auto& v : scratch_ids_) v.clear();
  if (needs_[dim].group[kGroupI]) {
    dom.ForEachCoverId(box.lo[dim], box.hi[dim], [&](uint64_t id) {
      scratch_ids_[kGroupI].push_back(id);
    });
  }
  if (needs_[dim].group[kGroupL]) {
    dom.ForEachPointCoverId(box.lo[dim], [&](uint64_t id) {
      scratch_ids_[kGroupL].push_back(id);
    });
  }
  if (needs_[dim].group[kGroupU]) {
    dom.ForEachPointCoverId(box.hi[dim], [&](uint64_t id) {
      scratch_ids_[kGroupU].push_back(id);
    });
  }
}

int64_t DatasetSketch::LetterValue(Letter l, const int32_t* sums,
                                   int32_t leaf_l, int32_t leaf_u) {
  switch (l) {
    case Letter::kI:
      return sums[kGroupI];
    case Letter::kE:
      return sums[kGroupL] + sums[kGroupU];
    case Letter::kL:
      return sums[kGroupL];
    case Letter::kU:
      return sums[kGroupU];
    case Letter::kLeafL:
      return leaf_l;
    case Letter::kLeafU:
      return leaf_u;
  }
  SKETCH_CHECK(false);
  return 0;
}


// Bit-sliced streaming update. Per (dim, group) the gathered cover ids
// resolve to cached packed sign columns (schema-shared; built on first
// touch), and the per-instance xi-sums fall out of a carry-save per-lane
// count: sum = m - 2 * minus_count. Endpoint point covers skip the
// reduction entirely when the dimension's PointSumCache pool fits the
// budget (point_sums_cached_): their finished byte-packed counts are
// copied from the schema cache into the same scratch slot the reduction
// would have filled, so everything downstream is untouched. The 64
// instance lanes of each column word are then expanded into counter
// deltas exactly like the bulk loader's inner loop, so the result is
// bit-identical to UpdateReference. Templated on the dimensionality so
// the per-lane letter and product loops fully unroll. All counting and
// apply loops run through the kernels:: dispatch table (scalar / AVX2 /
// AVX-512, selected once at startup) — every variant is gated
// bit-identical to scalar, so the choice never changes counters.
template <uint32_t kDims>
void DatasetSketch::UpdateBitSliced(const Box& box, const Box& leaf_box,
                                    int sign) {
  const kernels::KernelOps& kops = kernels::Ops();
  const uint32_t instances = schema_->instances();
  const uint32_t num_words = shape_.size();
  const PackedSignCache& cache = schema_->sign_cache();
  const PointSumCache& sums = schema_->point_sum_cache();
  // Column/Counts pointers gathered below are dereferenced until the end
  // of this update; the pins keep them valid under budget eviction.
  const PackedSignCache::Pin sign_pin(&cache);
  const PointSumCache::Pin sum_pin(&sums);
  const uint32_t blocks = cache.num_blocks();
  scratch_packed_.resize(static_cast<size_t>(kDims) * kNumGroups * blocks *
                         8);
  scratch_planes_.resize(static_cast<size_t>(blocks) * 6);
  auto packed_of = [&](uint32_t d, uint32_t g) {
    return scratch_packed_.data() +
           (static_cast<size_t>(d) * kNumGroups + g) * blocks * 8;
  };

  // Gather cover ids and resolve their packed columns once per (dim,
  // group), then count every block's lanes in one id-ordered pass.
  int32_t group_size[kDims][kNumGroups] = {};
  bool group_used[kDims][kNumGroups] = {};
  bool any_wide = false;
  bool use_wide[kDims][kNumGroups] = {};
  const uint64_t* leaf_l_col[kDims] = {};
  const uint64_t* leaf_u_col[kDims] = {};
  for (uint32_t d = 0; d < kDims; ++d) {
    GatherIds(box, d);
    for (uint32_t g = 0; g < kNumGroups; ++g) {
      const size_t m = scratch_ids_[g].size();
      group_size[d][g] = static_cast<int32_t>(m);
      group_used[d][g] = m > 0;
      if (m == 0) continue;
      if (g != kGroupI && point_sums_cached_[d]) {
        // Endpoint sums from the schema's per-coordinate cache: the CSA
        // reduction over these h + 1 columns already ran, once, the first
        // time ANY update under this schema touched the coordinate.
        const Coord coord = g == kGroupL ? box.lo[d] : box.hi[d];
        std::memcpy(packed_of(d, g), sums.Counts(d, coord),
                    static_cast<size_t>(blocks) * 8 * sizeof(uint64_t));
        continue;
      }
      auto& cols = scratch_cols_[d][g];
      cols.clear();
      cols.reserve(m);
      for (uint64_t id : scratch_ids_[g]) {
        cols.push_back(cache.Column(d, id));
      }
      if (m > 255) {
        use_wide[d][g] = true;
        any_wide = true;
        scratch_wide_.resize(static_cast<size_t>(kDims) * kNumGroups *
                             blocks * 64);
      } else {
        kops.count_columns_packed(cols.data(), m, blocks, packed_of(d, g),
                                  scratch_planes_.data());
      }
    }
    const DyadicDomain& dom = schema_->domain(d);
    if (needs_[d].leaf_lower) {
      leaf_l_col[d] = cache.Column(d, dom.LeafId(leaf_box.lo[d]));
    }
    if (needs_[d].leaf_upper) {
      leaf_u_col[d] = cache.Column(d, dom.LeafId(leaf_box.hi[d]));
    }
  }
  auto wide_of = [&](uint32_t d, uint32_t g) {
    return scratch_wide_.data() +
           (static_cast<size_t>(d) * kNumGroups + g) * blocks * 64;
  };
  if (any_wide) {
    for (uint32_t d = 0; d < kDims; ++d) {
      for (uint32_t g = 0; g < kNumGroups; ++g) {
        if (!use_wide[d][g]) continue;
        const auto& cols = scratch_cols_[d][g];
        kops.count_columns_wide(cols.data(), cols.size(), blocks,
                                wide_of(d, g), packed_of(d, g),
                                scratch_planes_.data());
      }
    }
  }

  const uint8_t* wl = word_letters_.data();
  const int64_t sign64 = sign;
  for (uint32_t blk = 0; blk < blocks; ++blk) {
    const uint32_t lanes = std::min(64u, instances - blk * 64);
    // Per-(dim, group) byte counts and leaf masks of THIS block, hoisted
    // out of the lane loop.
    const uint64_t* pk[kDims][kNumGroups];
    const int32_t* wd[kDims][kNumGroups];
    uint64_t leaf_l_mask[kDims] = {};
    uint64_t leaf_u_mask[kDims] = {};
    for (uint32_t d = 0; d < kDims; ++d) {
      for (uint32_t g = 0; g < kNumGroups; ++g) {
        pk[d][g] = packed_of(d, g) + static_cast<size_t>(blk) * 8;
        wd[d][g] = any_wide && use_wide[d][g]
                       ? wide_of(d, g) + static_cast<size_t>(blk) * 64
                       : nullptr;
      }
      if (leaf_l_col[d] != nullptr) leaf_l_mask[d] = leaf_l_col[d][blk];
      if (leaf_u_col[d] != nullptr) leaf_u_mask[d] = leaf_u_col[d][blk];
    }

    if (tensor_bitmask_) {
      // Stage A — materialize the per-dimension letter-value lane arrays
      // once per block: every branch (group used? wide? which letter?)
      // resolves here, leaving stage B branch-free.
      int32_t gs_arr[kDims][kNumGroups][64];
      for (uint32_t d = 0; d < kDims; ++d) {
        for (uint32_t g = 0; g < kNumGroups; ++g) {
          if (!group_used[d][g]) {
            // A group the shape references can still gather zero ids
            // (degenerate input reaching a release build); the reference
            // path computes an empty sum = 0 there, so match it rather
            // than multiply uninitialized stack values into counters.
            if (needs_[d].group[g]) {
              std::fill(gs_arr[d][g], gs_arr[d][g] + 64, 0);
            }
            continue;
          }
          int32_t* out = gs_arr[d][g];
          const int32_t m = group_size[d][g];
          if (wd[d][g] != nullptr) {
            kops.lanes_from_wide(wd[d][g], m, out);
          } else {
            kops.lanes_from_packed(pk[d][g], m, out);
          }
        }
      }
      int32_t extra[kDims][2][64];
      const int32_t* lv[kDims][2];
      for (uint32_t d = 0; d < kDims; ++d) {
        for (uint32_t side = 0; side < 2; ++side) {
          switch (static_cast<Letter>(tensor_letters_[d][side])) {
            case Letter::kI:
              lv[d][side] = gs_arr[d][kGroupI];
              break;
            case Letter::kE: {
              int32_t* out = extra[d][side];
              kops.add_lanes(gs_arr[d][kGroupL], gs_arr[d][kGroupU], out);
              lv[d][side] = out;
              break;
            }
            case Letter::kL:
              lv[d][side] = gs_arr[d][kGroupL];
              break;
            case Letter::kU:
              lv[d][side] = gs_arr[d][kGroupU];
              break;
            case Letter::kLeafL:
            case Letter::kLeafU: {
              int32_t* out = extra[d][side];
              const uint64_t mask =
                  tensor_letters_[d][side] ==
                          static_cast<uint8_t>(Letter::kLeafL)
                      ? leaf_l_mask[d]
                      : leaf_u_mask[d];
              kops.signs_from_mask(mask, out);
              lv[d][side] = out;
              break;
            }
          }
        }
      }

      // Stage B — the kernel's iterated partial products: part[w]
      // multiplies the same letter values as the reference path, and the
      // int64 arithmetic is exact, so every kernel variant lands
      // bit-identical counters. The counter store hands flat int64 rows
      // to the kernel directly and stages every other layout/width
      // through exact scatter-adds.
      counters_.TensorApply(kops, blk, lanes, lv, kDims, sign64);
      continue;
    }

    // Generic shapes (extended join, point, box-cover, custom): per-lane
    // letter table plus per-word letter indirection.
    int64_t letter_vals[kDims][6];
    for (uint32_t j = 0; j < lanes; ++j) {
      for (uint32_t d = 0; d < kDims; ++d) {
        int32_t gs[kNumGroups];
        for (uint32_t g = 0; g < kNumGroups; ++g) {
          if (!group_used[d][g]) {
            gs[g] = 0;
            continue;
          }
          const int32_t minus =
              wd[d][g] != nullptr ? wd[d][g][j] : PackedLane(pk[d][g], j);
          gs[g] = group_size[d][g] - 2 * minus;
        }
        const auto& used = letter_used_[d];
        if (used[0]) letter_vals[d][0] = gs[kGroupI];
        if (used[1]) letter_vals[d][1] = gs[kGroupL] + gs[kGroupU];
        if (used[2]) letter_vals[d][2] = gs[kGroupL];
        if (used[3]) letter_vals[d][3] = gs[kGroupU];
        if (used[4]) {
          letter_vals[d][4] =
              1 - 2 * static_cast<int64_t>((leaf_l_mask[d] >> j) & 1);
        }
        if (used[5]) {
          letter_vals[d][5] =
              1 - 2 * static_cast<int64_t>((leaf_u_mask[d] >> j) & 1);
        }
      }
      const uint32_t inst = blk * 64 + j;
      for (uint32_t w = 0; w < num_words; ++w) {
        int64_t prod = sign64;
        for (uint32_t d = 0; d < kDims; ++d) {
          prod *= letter_vals[d][wl[w * kDims + d]];
        }
        counters_.Add(inst, w, prod);
      }
    }
  }
  num_objects_ += sign;
}

void DatasetSketch::Update(const Box& box, const Box& leaf_box, int sign) {
  switch (schema_->dims()) {
    case 1:
      UpdateBitSliced<1>(box, leaf_box, sign);
      break;
    case 2:
      UpdateBitSliced<2>(box, leaf_box, sign);
      break;
    case 3:
      UpdateBitSliced<3>(box, leaf_box, sign);
      break;
    case 4:
      UpdateBitSliced<4>(box, leaf_box, sign);
      break;
    default:
      SKETCH_CHECK(false);
  }
}

void DatasetSketch::UpdateReference(const Box& box, const Box& leaf_box,
                                    int sign) {
  const uint32_t dims = schema_->dims();
  const uint32_t instances = schema_->instances();
  const uint32_t num_words = shape_.size();

  // Per-dimension gathered ids with precomputed GF(2^64) cubes (the cube
  // depends only on the id, so it is shared across all instances).
  struct DimData {
    std::vector<uint64_t> ids[kNumGroups];
    std::vector<uint64_t> cubes[kNumGroups];
    uint64_t leaf_l_id = 0, leaf_l_cube = 0;
    uint64_t leaf_u_id = 0, leaf_u_cube = 0;
  };
  std::vector<DimData> dim_data(dims);
  for (uint32_t d = 0; d < dims; ++d) {
    GatherIds(box, d);
    for (uint32_t g = 0; g < kNumGroups; ++g) {
      dim_data[d].ids[g] = scratch_ids_[g];
      dim_data[d].cubes[g].reserve(scratch_ids_[g].size());
      for (uint64_t id : scratch_ids_[g]) {
        dim_data[d].cubes[g].push_back(gf2::Cube(id));
      }
    }
    const DyadicDomain& dom = schema_->domain(d);
    if (needs_[d].leaf_lower) {
      dim_data[d].leaf_l_id = dom.LeafId(leaf_box.lo[d]);
      dim_data[d].leaf_l_cube = gf2::Cube(dim_data[d].leaf_l_id);
    }
    if (needs_[d].leaf_upper) {
      dim_data[d].leaf_u_id = dom.LeafId(leaf_box.hi[d]);
      dim_data[d].leaf_u_cube = gf2::Cube(dim_data[d].leaf_u_id);
    }
  }

  int64_t letter_vals[kMaxDims][6];
  for (uint32_t inst = 0; inst < instances; ++inst) {
    for (uint32_t d = 0; d < dims; ++d) {
      const BchXiFamily fam(schema_->seed(inst, d));
      int32_t sums[kNumGroups] = {0, 0, 0};
      for (uint32_t g = 0; g < kNumGroups; ++g) {
        const auto& ids = dim_data[d].ids[g];
        const auto& cubes = dim_data[d].cubes[g];
        int32_t s = 0;
        for (size_t i = 0; i < ids.size(); ++i) {
          s += fam.SignWithCube(ids[i], cubes[i]);
        }
        sums[g] = s;
      }
      int32_t leaf_l = 0, leaf_u = 0;
      if (needs_[d].leaf_lower) {
        leaf_l = fam.SignWithCube(dim_data[d].leaf_l_id,
                                  dim_data[d].leaf_l_cube);
      }
      if (needs_[d].leaf_upper) {
        leaf_u = fam.SignWithCube(dim_data[d].leaf_u_id,
                                  dim_data[d].leaf_u_cube);
      }
      for (uint32_t li = 0; li < 6; ++li) {
        letter_vals[d][li] =
            LetterValue(static_cast<Letter>(li), sums, leaf_l, leaf_u);
      }
    }
    for (uint32_t w = 0; w < num_words; ++w) {
      const Word& word = shape_.word(w);
      int64_t prod = sign;
      for (uint32_t d = 0; d < dims; ++d) {
        prod *= letter_vals[d][static_cast<uint32_t>(word.letters[d])];
      }
      counters_.Add(inst, w, prod);
    }
  }
  num_objects_ += sign;
}

uint64_t DatasetSketch::SmallBulkCrossover() const {
  // Cost model, in packed words touched. The table path builds one
  // row-major SignTable per (dimension, instance batch) before any box is
  // processed: ~ sum_d num_ids words of construction independent of the
  // batch size. The streaming path instead resolves ~2h cached interval
  // columns per (box, dimension) — endpoint sums are one cache hit each —
  // at kStreamCostFactor word-ops apiece (column walk + CSA + the less
  // sequential access pattern; measured on the build host via
  // micro_update_throughput --crossover_scan, see docs/BENCH.md). Below
  // the ratio the table build dominates and streaming wins.
  constexpr uint64_t kStreamCostFactor = 4;
  uint64_t table_words = 0;
  uint64_t per_box_ids = 0;
  for (uint32_t d = 0; d < schema_->dims(); ++d) {
    const DyadicDomain& dom = schema_->domain(d);
    table_words += dom.num_ids();
    // Lemma 2: interval covers have at most 2h usable ids (2 per level).
    per_box_ids += 2 * (dom.EffectiveMaxLevel() + 1);
  }
  return table_words / std::max<uint64_t>(1, per_box_ids * kStreamCostFactor);
}

Status DatasetSketch::BulkLoad(const Box* boxes, size_t count, int sign) {
  if (sign != 1 && sign != -1) {
    return Status::InvalidArgument("BulkLoad sign must be +1 or -1");
  }
  if (count <= SmallBulkCrossover()) {
    // Small batch: the table build would dominate, so stream the boxes
    // through the bit-sliced update path (schema-shared sign cache).
    // Bit-identical to the table path — only the cost differs.
    for (size_t i = 0; i < count; ++i) Update(boxes[i], boxes[i], sign);
    return Status::OK();
  }
  BulkLoader loader(schema_);
  loader.Add(this, boxes, count, nullptr, sign);
  loader.Run();
  return Status::OK();
}

Status DatasetSketch::BulkLoadWithLeafBoxes(const std::vector<Box>& boxes,
                                            const std::vector<Box>& leaf_boxes,
                                            int sign) {
  if (sign != 1 && sign != -1) {
    return Status::InvalidArgument("BulkLoad sign must be +1 or -1");
  }
  if (leaf_boxes.size() != boxes.size()) {
    return Status::InvalidArgument(
        "leaf_boxes must parallel boxes (same length)");
  }
  if (boxes.size() <= SmallBulkCrossover()) {
    for (size_t i = 0; i < boxes.size(); ++i) {
      Update(boxes[i], leaf_boxes[i], sign);
    }
    return Status::OK();
  }
  BulkLoader loader(schema_);
  loader.Add(this, &boxes, &leaf_boxes, sign);
  loader.Run();
  return Status::OK();
}

void BulkLoader::Add(DatasetSketch* sketch, const std::vector<Box>* boxes,
                     const std::vector<Box>* leaf_boxes, int sign) {
  SKETCH_CHECK(boxes != nullptr);
  SKETCH_CHECK(leaf_boxes == nullptr || leaf_boxes->size() == boxes->size());
  Add(sketch, boxes->data(), boxes->size(),
      leaf_boxes != nullptr ? leaf_boxes->data() : nullptr, sign);
}

void BulkLoader::Add(DatasetSketch* sketch, const Box* boxes, size_t count,
                     const Box* leaf_boxes, int sign) {
  SKETCH_CHECK(sketch != nullptr && (boxes != nullptr || count == 0));
  SKETCH_CHECK(sketch->schema() == schema_);
  SKETCH_CHECK(sign == 1 || sign == -1);
  jobs_.push_back({sketch, boxes, count, leaf_boxes, sign});
}

void BulkLoader::Run(uint32_t max_threads) {
  if (jobs_.empty()) return;
  const uint32_t dims = schema_->dims();
  const uint32_t instances = schema_->instances();
  const uint32_t num_batches =
      (instances + kInstancesPerBatch - 1) / kInstancesPerBatch;

  // Batches write disjoint counter ranges, so they parallelize cleanly —
  // but a narrow store's saturation-widening reallocates the whole block,
  // which WOULD race. Widen narrow sketches up front (and narrow back,
  // best effort, after the threads join).
  std::vector<DatasetSketch*> narrowed;
  for (const Job& job : jobs_) {
    if (job.sketch->counters_.width() == CounterWidth::kI32) {
      job.sketch->counters_.EnsureWide();
      narrowed.push_back(job.sketch);
    }
  }
  std::atomic<uint32_t> next_batch{0};
  const kernels::KernelOps& kops = kernels::Ops();
  auto worker = [&]() {
    // Thread-local scratch: gathered cover ids per (dim, group), packed
    // minus-counts per (dim, group) for one block, and wide fallbacks for
    // covers longer than 255 ids.
    std::vector<uint64_t> all_ids[kMaxDims][DatasetSketch::kNumGroups];
    uint64_t packed[kMaxDims][DatasetSketch::kNumGroups][8];
    int32_t wide[kMaxDims][DatasetSketch::kNumGroups][64];
    bool use_wide[kMaxDims][DatasetSketch::kNumGroups];

    uint32_t batch_idx;
    while ((batch_idx = next_batch.fetch_add(1)) < num_batches) {
      const uint32_t first = batch_idx * kInstancesPerBatch;
      const uint32_t batch = std::min(kInstancesPerBatch, instances - first);
      const uint32_t blocks = (batch + 63) / 64;

      // Packed sign tables for this batch, shared by every job.
      std::vector<SignTable> tables;
      tables.reserve(dims);
      for (uint32_t d = 0; d < dims; ++d) {
        tables.emplace_back(schema_->SeedsForDim(d, first, batch),
                            schema_->domain(d).num_ids());
      }

      for (size_t ji = 0; ji < jobs_.size(); ++ji) {
        const Job& job = jobs_[ji];
        DatasetSketch& sk = *job.sketch;
        const uint32_t num_words = sk.shape_.size();
        for (size_t bi = 0; bi < job.count; ++bi) {
          const Box& box = job.boxes[bi];
          const Box& leaf_box =
              job.leaf_boxes != nullptr ? job.leaf_boxes[bi] : box;

          // Gather cover ids once per (object, dim); shared by blocks.
          size_t group_size[kMaxDims][DatasetSketch::kNumGroups] = {};
          uint64_t leaf_l_id[kMaxDims] = {};
          uint64_t leaf_u_id[kMaxDims] = {};
          for (uint32_t d = 0; d < dims; ++d) {
            const DyadicDomain& dom = schema_->domain(d);
            const auto& needs = sk.needs_[d];
            for (auto& v : all_ids[d]) v.clear();
            if (needs.group[DatasetSketch::kGroupI]) {
              dom.ForEachCoverId(box.lo[d], box.hi[d], [&](uint64_t id) {
                all_ids[d][DatasetSketch::kGroupI].push_back(id);
              });
            }
            if (needs.group[DatasetSketch::kGroupL]) {
              dom.ForEachPointCoverId(box.lo[d], [&](uint64_t id) {
                all_ids[d][DatasetSketch::kGroupL].push_back(id);
              });
            }
            if (needs.group[DatasetSketch::kGroupU]) {
              dom.ForEachPointCoverId(box.hi[d], [&](uint64_t id) {
                all_ids[d][DatasetSketch::kGroupU].push_back(id);
              });
            }
            for (uint32_t g = 0; g < DatasetSketch::kNumGroups; ++g) {
              group_size[d][g] = all_ids[d][g].size();
            }
            if (needs.leaf_lower) leaf_l_id[d] = dom.LeafId(leaf_box.lo[d]);
            if (needs.leaf_upper) leaf_u_id[d] = dom.LeafId(leaf_box.hi[d]);
          }

          for (uint32_t blk = 0; blk < blocks; ++blk) {
            const uint32_t lanes = std::min(64u, batch - blk * 64);
            uint64_t leaf_l_mask[kMaxDims] = {};
            uint64_t leaf_u_mask[kMaxDims] = {};
            for (uint32_t d = 0; d < dims; ++d) {
              const uint64_t* row = tables[d].Row(blk);
              const auto& needs = sk.needs_[d];
              for (uint32_t g = 0; g < DatasetSketch::kNumGroups; ++g) {
                const auto& gi = all_ids[d][g];
                use_wide[d][g] = gi.size() > 255;
                if (gi.empty()) {
                  for (int q = 0; q < 8; ++q) packed[d][g][q] = 0;
                } else if (use_wide[d][g]) {
                  kops.count_gather_wide(row, gi.data(), gi.size(),
                                         wide[d][g]);
                } else {
                  kops.count_gather_packed(row, gi.data(), gi.size(),
                                           packed[d][g]);
                }
              }
              if (needs.leaf_lower) leaf_l_mask[d] = row[leaf_l_id[d]];
              if (needs.leaf_upper) leaf_u_mask[d] = row[leaf_u_id[d]];
            }

            int64_t letter_vals[kMaxDims][6];
            for (uint32_t j = 0; j < lanes; ++j) {
              const uint32_t inst = first + blk * 64 + j;
              for (uint32_t d = 0; d < dims; ++d) {
                int32_t gs[DatasetSketch::kNumGroups];
                for (uint32_t g = 0; g < DatasetSketch::kNumGroups; ++g) {
                  const int32_t v = use_wide[d][g]
                                        ? wide[d][g][j]
                                        : PackedLane(packed[d][g], j);
                  gs[g] = static_cast<int32_t>(group_size[d][g]) - 2 * v;
                }
                const auto& used = sk.letter_used_[d];
                if (used[0]) letter_vals[d][0] = gs[DatasetSketch::kGroupI];
                if (used[1]) {
                  letter_vals[d][1] = gs[DatasetSketch::kGroupL] +
                                      gs[DatasetSketch::kGroupU];
                }
                if (used[2]) letter_vals[d][2] = gs[DatasetSketch::kGroupL];
                if (used[3]) letter_vals[d][3] = gs[DatasetSketch::kGroupU];
                if (used[4]) {
                  letter_vals[d][4] =
                      1 - 2 * static_cast<int64_t>((leaf_l_mask[d] >> j) &
                                                   1);
                }
                if (used[5]) {
                  letter_vals[d][5] =
                      1 - 2 * static_cast<int64_t>((leaf_u_mask[d] >> j) &
                                                   1);
                }
              }
              const uint8_t* wl = sk.word_letters_.data();
              for (uint32_t w = 0; w < num_words; ++w) {
                int64_t prod = job.sign;
                for (uint32_t d = 0; d < dims; ++d) {
                  prod *= letter_vals[d][wl[w * dims + d]];
                }
                sk.counters_.Add(inst, w, prod);
              }
            }
          }
        }
      }
    }
  };

  uint32_t num_threads = std::thread::hardware_concurrency();
  if (num_threads == 0) num_threads = 1;
  if (max_threads != 0) num_threads = std::min(num_threads, max_threads);
  num_threads = std::min(num_threads, num_batches);
  if (num_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }

  for (const Job& job : jobs_) {
    job.sketch->num_objects_ +=
        job.sign * static_cast<int64_t>(job.count);
  }
  jobs_.clear();

  // Restore the compact width where the values still permit it; a sketch
  // whose counters outgrew int32 stays wide (saturation semantics).
  for (DatasetSketch* sk : narrowed) {
    if (sk->counters_.FitsNarrow()) {
      SKETCH_CHECK(sk->counters_.SetWidth(CounterWidth::kI32).ok());
    }
  }
}

void DatasetSketch::Reset() {
  counters_.Reset();
  num_objects_ = 0;
}

void DatasetSketch::Merge(const DatasetSketch& other) {
  SKETCH_CHECK(schema_ == other.schema_);
  SKETCH_CHECK(shape_ == other.shape_);
  counters_.MergeFrom(other.counters_);
  num_objects_ += other.num_objects_;
}

Status DatasetSketch::MergeFrom(const DatasetSketch& other) {
  if (!(shape_ == other.shape_)) {
    return Status::FailedPrecondition("MergeFrom requires equal shapes");
  }
  if (schema_ != other.schema_ &&
      !(schema_->options() == other.schema_->options())) {
    return Status::FailedPrecondition(
        "MergeFrom requires equal schema configurations");
  }
  counters_.MergeFrom(other.counters_);
  num_objects_ += other.num_objects_;
  return Status::OK();
}

Status DatasetSketch::AdoptCountersFrom(const DatasetSketch& other) {
  if (!(shape_ == other.shape_)) {
    return Status::FailedPrecondition(
        "AdoptCountersFrom requires equal shapes");
  }
  if (schema_ != other.schema_ &&
      !(schema_->options() == other.schema_->options())) {
    return Status::FailedPrecondition(
        "AdoptCountersFrom requires equal schema configurations");
  }
  // Copy VALUES only: this sketch keeps its configured layout/width (the
  // store widens in place if the incoming values demand it).
  counters_.CopyValuesFrom(other.counters_);
  num_objects_ = other.num_objects_;
  return Status::OK();
}

}  // namespace spatialsketch
