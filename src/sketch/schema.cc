#include "src/sketch/schema.h"

#include "src/common/rng.h"
#include "src/dyadic/endpoint_transform.h"

namespace spatialsketch {

SketchSchema::SketchSchema(const SchemaOptions& options,
                           std::vector<DyadicDomain> domains,
                           std::vector<XiSeed> seeds)
    : options_(options),
      domains_(std::move(domains)),
      seeds_(std::move(seeds)) {
  // The cache's per-dim seed copies cost instances * dims * 24 bytes —
  // trivial next to one dataset's counters; the per-id slot arrays are
  // allocated lazily inside the cache on first streaming/query use.
  std::vector<std::vector<XiSeed>> per_dim;
  std::vector<uint64_t> num_ids;
  per_dim.reserve(dims());
  num_ids.reserve(dims());
  for (uint32_t d = 0; d < dims(); ++d) {
    per_dim.push_back(SeedsForDim(d, 0, instances()));
    num_ids.push_back(domains_[d].num_ids());
  }
  sign_cache_ = std::make_unique<PackedSignCache>(std::move(per_dim),
                                                  std::move(num_ids));
  // The point-cover sum cache reduces those columns per coordinate; its
  // slot arrays are likewise lazy, so schemas that never stream pay
  // nothing beyond this per-dim spec vector.
  std::vector<PointSumCache::DimSpec> specs;
  specs.reserve(dims());
  for (uint32_t d = 0; d < dims(); ++d) {
    specs.push_back({domains_[d].log2_size(),
                     domains_[d].EffectiveMaxLevel() + 1});
  }
  point_sum_cache_ =
      std::make_unique<PointSumCache>(sign_cache_.get(), std::move(specs));
}

Result<SchemaPtr> SketchSchema::Create(const SchemaOptions& options) {
  if (options.dims < 1 || options.dims > kMaxDims) {
    return Status::InvalidArgument("dims must be in [1, kMaxDims]");
  }
  if (options.k1 < 1 || options.k2 < 1) {
    return Status::InvalidArgument("k1 and k2 must be positive");
  }
  for (uint32_t i = 0; i < options.dims; ++i) {
    const auto& d = options.domains[i];
    if (d.log2_size < 1 || d.log2_size > 40) {
      return Status::InvalidArgument("log2_size must be in [1, 40]");
    }
  }
  std::vector<DyadicDomain> domains;
  domains.reserve(options.dims);
  for (uint32_t i = 0; i < options.dims; ++i) {
    domains.emplace_back(options.domains[i].log2_size,
                         options.domains[i].max_level);
  }
  // One independently drawn seed per (instance, dimension): instances are
  // i.i.d. (Section 2.3), and per instance the per-dimension families are
  // mutually independent (Section 3.2).
  Rng rng(options.seed);
  const uint64_t total =
      static_cast<uint64_t>(options.k1) * options.k2 * options.dims;
  std::vector<XiSeed> seeds;
  seeds.reserve(total);
  for (uint64_t i = 0; i < total; ++i) seeds.push_back(XiSeed::Random(&rng));

  return SchemaPtr(
      new SketchSchema(options, std::move(domains), std::move(seeds)));
}

std::vector<XiSeed> SketchSchema::SeedsForDim(uint32_t dim,
                                              uint32_t first_instance,
                                              uint32_t count) const {
  SKETCH_DCHECK(dim < dims());
  SKETCH_DCHECK(first_instance + count <= instances());
  std::vector<XiSeed> out;
  out.reserve(count);
  for (uint32_t j = 0; j < count; ++j) {
    out.push_back(seed(first_instance + j, dim));
  }
  return out;
}


Result<SchemaPtr> MakeTransformedSchema(uint32_t dims, uint32_t log2_domain,
                                        uint32_t max_level,
                                        const uint32_t* per_dim_caps,
                                        uint32_t k1, uint32_t k2,
                                        uint64_t seed) {
  // Create() bounds the TRANSFORMED log2_size to [1, 40]; reject the
  // original here BEFORE the +2 so a huge value cannot wrap uint32_t,
  // sneak through that check, and later feed undefined shifts in callers
  // that compute 1 << log2_domain over the original domain.
  if (log2_domain > 38) {
    return Status::InvalidArgument(
        "log2_domain too large: the endpoint-transformed domain would "
        "exceed 40 bits");
  }
  SchemaOptions so;
  so.dims = dims;
  for (uint32_t i = 0; i < dims && i < kMaxDims; ++i) {
    so.domains[i].log2_size = EndpointTransform::TransformedLog2(log2_domain);
    so.domains[i].max_level =
        per_dim_caps != nullptr ? per_dim_caps[i] : max_level;
  }
  so.k1 = k1;
  so.k2 = k2;
  so.seed = seed;
  return SketchSchema::Create(so);
}

}  // namespace spatialsketch
