#include "src/sketch/serialize.h"

#include <cstring>

namespace spatialsketch {

namespace {

constexpr uint32_t kMagic = 0x4B535053;  // "SPSK"
// Version 1: int64 counters (the historical format — still emitted for
// every default-width sketch, so v1 blobs stay byte-identical).
// Version 2: int32 counters (emitted only when the source store is in
// the compact narrow width; values are guaranteed to fit by construction).
constexpr uint8_t kVersion = 1;
constexpr uint8_t kVersionNarrow = 2;
constexpr uint8_t kKindSchema = 1;
constexpr uint8_t kKindSketch = 2;

// Little-endian append/read helpers. The format is explicitly LE so blobs
// are portable across hosts.
void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}
void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}
void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

/// Bounds-checked little-endian reader over a blob.
class Reader {
 public:
  explicit Reader(const std::string& blob) : blob_(blob) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > blob_.size()) return false;
    *v = static_cast<uint8_t>(blob_[pos_++]);
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > blob_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(blob_[pos_++]))
            << (8 * i);
    }
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > blob_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(blob_[pos_++]))
            << (8 * i);
    }
    return true;
  }
  bool ReadI64(int64_t* v) {
    uint64_t u;
    if (!ReadU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
  bool ReadI32(int32_t* v) {
    uint32_t u;
    if (!ReadU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }

  bool AtEnd() const { return pos_ == blob_.size(); }
  size_t pos() const { return pos_; }

 private:
  const std::string& blob_;
  size_t pos_ = 0;
};

void AppendHeader(std::string* out, uint8_t version, uint8_t kind) {
  PutU32(out, kMagic);
  PutU8(out, version);
  PutU8(out, kind);
}

/// Validates magic/kind and returns the version byte; callers decide
/// which versions they accept (schemas are v1-only; sketches take v1/v2).
Status ReadHeader(Reader* r, uint8_t expected_kind, uint8_t* version) {
  uint32_t magic;
  uint8_t kind;
  if (!r->ReadU32(&magic) || !r->ReadU8(version) || !r->ReadU8(&kind)) {
    return Status::InvalidArgument("blob truncated in header");
  }
  if (magic != kMagic) return Status::InvalidArgument("bad magic");
  if (*version != kVersion && *version != kVersionNarrow) {
    return Status::InvalidArgument("unsupported blob version");
  }
  if (kind != expected_kind) {
    return Status::InvalidArgument("blob kind mismatch");
  }
  return Status::OK();
}

void AppendSchemaPayload(std::string* out, const SketchSchema& schema) {
  const SchemaOptions& opt = schema.options();
  PutU32(out, opt.dims);
  PutU32(out, opt.k1);
  PutU32(out, opt.k2);
  PutU64(out, opt.seed);
  for (uint32_t d = 0; d < opt.dims; ++d) {
    PutU32(out, opt.domains[d].log2_size);
    PutU32(out, opt.domains[d].max_level);
  }
}

Result<SchemaPtr> ReadSchemaPayload(Reader* r) {
  SchemaOptions opt;
  if (!r->ReadU32(&opt.dims) || !r->ReadU32(&opt.k1) ||
      !r->ReadU32(&opt.k2) || !r->ReadU64(&opt.seed)) {
    return Status::InvalidArgument("blob truncated in schema options");
  }
  if (opt.dims < 1 || opt.dims > kMaxDims) {
    return Status::InvalidArgument("blob has invalid dims");
  }
  for (uint32_t d = 0; d < opt.dims; ++d) {
    if (!r->ReadU32(&opt.domains[d].log2_size) ||
        !r->ReadU32(&opt.domains[d].max_level)) {
      return Status::InvalidArgument("blob truncated in domain specs");
    }
  }
  return SketchSchema::Create(opt);
}

}  // namespace

std::string SerializeSchema(const SketchSchema& schema) {
  std::string out;
  AppendHeader(&out, kVersion, kKindSchema);
  AppendSchemaPayload(&out, schema);
  return out;
}

Result<SchemaPtr> DeserializeSchema(const std::string& blob) {
  Reader r(blob);
  uint8_t version;
  SKETCH_RETURN_NOT_OK(ReadHeader(&r, kKindSchema, &version));
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported schema blob version");
  }
  auto schema = ReadSchemaPayload(&r);
  if (!schema.ok()) return schema.status();
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after schema blob");
  }
  return schema;
}

std::string SerializeSketch(const DatasetSketch& sketch) {
  // Narrow stores serialize a v2 blob with 4-byte counters (every value
  // fits int32 by the saturation-widening invariant); default-width
  // sketches keep emitting the byte-identical historical v1 format.
  const bool narrow =
      sketch.counter_store().width() == CounterWidth::kI32;
  std::string out;
  AppendHeader(&out, narrow ? kVersionNarrow : kVersion, kKindSketch);
  AppendSchemaPayload(&out, *sketch.schema());

  const Shape& shape = sketch.shape();
  const uint32_t dims = sketch.schema()->dims();
  PutU32(&out, shape.size());
  for (uint32_t w = 0; w < shape.size(); ++w) {
    for (uint32_t d = 0; d < dims; ++d) {
      PutU8(&out, static_cast<uint8_t>(shape.word(w).letters[d]));
    }
  }
  PutI64(&out, sketch.num_objects());
  // Counters travel in flat instance-major order regardless of the
  // source layout — the wire format is layout-free; layout is a restore
  // target property (SST3 carries it in the store header).
  const uint32_t instances = sketch.schema()->instances();
  for (uint32_t inst = 0; inst < instances; ++inst) {
    for (uint32_t w = 0; w < shape.size(); ++w) {
      const int64_t v = sketch.Counter(inst, w);
      if (narrow) {
        PutI32(&out, static_cast<int32_t>(v));
      } else {
        PutI64(&out, v);
      }
    }
  }
  return out;
}

Result<DatasetSketch> DeserializeSketch(const std::string& blob) {
  Reader r(blob);
  uint8_t version;
  SKETCH_RETURN_NOT_OK(ReadHeader(&r, kKindSketch, &version));
  auto schema = ReadSchemaPayload(&r);
  if (!schema.ok()) return schema.status();
  const uint32_t dims = (*schema)->dims();

  uint32_t num_words;
  if (!r.ReadU32(&num_words)) {
    return Status::InvalidArgument("blob truncated before shape");
  }
  if (num_words == 0 || num_words > 4096) {
    return Status::InvalidArgument("blob has implausible shape size");
  }
  std::vector<Word> words(num_words);
  for (uint32_t w = 0; w < num_words; ++w) {
    for (uint32_t d = 0; d < dims; ++d) {
      uint8_t code;
      if (!r.ReadU8(&code)) {
        return Status::InvalidArgument("blob truncated in shape letters");
      }
      if (code > static_cast<uint8_t>(Letter::kLeafU)) {
        return Status::InvalidArgument("blob has invalid letter code");
      }
      words[w].letters[d] = static_cast<Letter>(code);
    }
  }

  // A v2 blob restores into a narrow store (the width the source had);
  // v1 restores wide. Layout is always flat here — the serving layer
  // re-homes the values into the dataset's configured layout via
  // AdoptCountersFrom.
  CounterStoreOptions store_opt;
  if (version == kVersionNarrow) store_opt.width = CounterWidth::kI32;
  DatasetSketch sketch(*schema, Shape(std::move(words)), store_opt);
  if (!r.ReadI64(&sketch.num_objects_)) {
    return Status::InvalidArgument("blob truncated before counters");
  }
  const size_t total = static_cast<size_t>((*schema)->instances()) *
                       sketch.shape().size();
  std::vector<int64_t> flat(total);
  for (size_t i = 0; i < total; ++i) {
    if (version == kVersionNarrow) {
      int32_t v;
      if (!r.ReadI32(&v)) {
        return Status::InvalidArgument("blob truncated in counters");
      }
      flat[i] = v;
    } else if (!r.ReadI64(&flat[i])) {
      return Status::InvalidArgument("blob truncated in counters");
    }
  }
  sketch.counters_.FromFlat(flat);
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after sketch blob");
  }
  return sketch;
}

}  // namespace spatialsketch
