// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Binary serialization of schemas and sketches. A synopsis is only useful
// to a DBMS if it can live in the catalog: schemas serialize their
// configuration and every derived xi-seed is regenerated from the master
// seed on load (bit-identical by construction), while sketches serialize
// their counters. The wire format is a little-endian tagged blob with a
// version byte; readers validate sizes and magics and fail with Status
// rather than crashing on corrupt input.

#ifndef SPATIALSKETCH_SKETCH_SERIALIZE_H_
#define SPATIALSKETCH_SKETCH_SERIALIZE_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/sketch/dataset_sketch.h"
#include "src/sketch/schema.h"

namespace spatialsketch {

/// Serialize the schema configuration (options only; seeds are derived).
std::string SerializeSchema(const SketchSchema& schema);

/// Reconstruct a schema; the result is bit-identical to the original
/// (same options => same seeds).
Result<SchemaPtr> DeserializeSchema(const std::string& blob);

/// Serialize a sketch: shape, object count and counters in flat
/// instance-major order (the wire format is layout-free). Default-width
/// sketches emit the historical v1 blob byte-for-byte; narrow (int32)
/// stores emit a v2 blob with 4-byte counters — half the wire size.
std::string SerializeSketch(const DatasetSketch& sketch);

/// Reconstruct a sketch (schema included; v1 and v2 blobs accepted —
/// v2 restores into a narrow counter store). Validates counter sizes.
Result<DatasetSketch> DeserializeSketch(const std::string& blob);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_SKETCH_SERIALIZE_H_
