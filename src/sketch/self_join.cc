#include "src/sketch/self_join.h"

#include <unordered_map>

#include "src/estimators/combine.h"
#include "src/xi/kernels.h"

namespace spatialsketch {

namespace {

// Append the dyadic ids a letter contributes for one box dimension
// (with multiplicity: letter E appends both endpoint covers, and an id on
// both covers legitimately counts twice — f_E counts endpoint incidences).
void LetterIds(const DyadicDomain& dom, Letter letter, Coord lo, Coord hi,
               std::vector<uint64_t>* out) {
  out->clear();
  switch (letter) {
    case Letter::kI:
      dom.ForEachCoverId(lo, hi, [&](uint64_t id) { out->push_back(id); });
      break;
    case Letter::kE:
      dom.ForEachPointCoverId(lo, [&](uint64_t id) { out->push_back(id); });
      dom.ForEachPointCoverId(hi, [&](uint64_t id) { out->push_back(id); });
      break;
    case Letter::kL:
      dom.ForEachPointCoverId(lo, [&](uint64_t id) { out->push_back(id); });
      break;
    case Letter::kU:
      dom.ForEachPointCoverId(hi, [&](uint64_t id) { out->push_back(id); });
      break;
    case Letter::kLeafL:
      out->push_back(dom.LeafId(lo));
      break;
    case Letter::kLeafU:
      out->push_back(dom.LeafId(hi));
      break;
  }
}

}  // namespace

std::vector<double> ExactSelfJoinSizes1D(const std::vector<Box>& boxes,
                                         const DyadicDomain& domain,
                                         const Shape& shape) {
  std::vector<double> out;
  out.reserve(shape.size());
  std::vector<int64_t> freq(domain.num_ids());
  std::vector<uint64_t> ids;
  for (uint32_t w = 0; w < shape.size(); ++w) {
    std::fill(freq.begin(), freq.end(), 0);
    const Letter letter = shape.word(w).letters[0];
    for (const Box& b : boxes) {
      LetterIds(domain, letter, b.lo[0], b.hi[0], &ids);
      for (uint64_t id : ids) ++freq[id];
    }
    double sj = 0.0;
    for (int64_t f : freq) sj += static_cast<double>(f) * f;
    out.push_back(sj);
  }
  return out;
}

double ExactTotalSelfJoin1D(const std::vector<Box>& boxes,
                            const DyadicDomain& domain) {
  const Shape shape = Shape::JoinShape(1);  // words I, E
  const auto sizes = ExactSelfJoinSizes1D(boxes, domain, shape);
  double total = 0.0;
  for (double s : sizes) total += s;
  return total;
}

double ExactSelfJoinSizeND(const std::vector<Box>& boxes,
                           const std::vector<DyadicDomain>& domains,
                           const Word& word, uint32_t dims) {
  SKETCH_CHECK(dims >= 1 && dims <= kMaxDims);
  SKETCH_CHECK(domains.size() >= dims);
  uint32_t total_bits = 0;
  for (uint32_t d = 0; d < dims; ++d) {
    total_bits += domains[d].log2_size() + 1;
  }
  SKETCH_CHECK(total_bits <= 64);

  std::unordered_map<uint64_t, int64_t> freq;
  std::vector<uint64_t> lists[kMaxDims];
  for (const Box& b : boxes) {
    for (uint32_t d = 0; d < dims; ++d) {
      LetterIds(domains[d], word.letters[d], b.lo[d], b.hi[d], &lists[d]);
    }
    // Cross product over dimensions.
    std::array<size_t, kMaxDims> idx{};
    while (true) {
      uint64_t key = 0;
      for (uint32_t d = 0; d < dims; ++d) {
        key = (key << (domains[d].log2_size() + 1)) | lists[d][idx[d]];
      }
      ++freq[key];
      uint32_t d = 0;
      for (; d < dims; ++d) {
        if (++idx[d] < lists[d].size()) break;
        idx[d] = 0;
      }
      if (d == dims) break;
    }
  }
  double sj = 0.0;
  for (const auto& [key, f] : freq) {
    (void)key;
    sj += static_cast<double>(f) * f;
  }
  return sj;
}

double EstimateSelfJoinSize(const DatasetSketch& sketch,
                            uint32_t word_index) {
  const auto& schema = *sketch.schema();
  std::vector<double> z(schema.instances());
  // Squares are computed per instance in scalar order by every kernel
  // variant (and by the counter store's generic walk for non-flat
  // layouts), so estimates are bit-identical across the dispatch.
  sketch.counter_store().SelfJoinZ(word_index, z.data());
  return MedianOfMeans(z, schema.k1(), schema.k2());
}

double EstimateTotalSelfJoin(const DatasetSketch& sketch) {
  double total = 0.0;
  for (uint32_t w = 0; w < sketch.shape().size(); ++w) {
    total += EstimateSelfJoinSize(sketch, w);
  }
  return total;
}

}  // namespace spatialsketch
