#include "src/sketch/counter_store.h"

#include <cstdlib>
#include <cstring>
#include <limits>

#ifdef __linux__
#include <sys/mman.h>
#endif

#include "src/xi/kernels.h"

namespace spatialsketch {

namespace {

// Threshold past which the huge-page backing aligns to a 2 MiB boundary
// (smaller blocks align to a cache line — a 2 MiB alignment would waste
// more than it maps).
constexpr size_t kHugePageBytes = size_t{2} << 20;

size_t WidthBytes(CounterWidth width) {
  return width == CounterWidth::kI64 ? 8 : 4;
}

void* AllocCounters(size_t bytes, CounterBacking backing) {
  if (bytes == 0) return nullptr;
  if (backing == CounterBacking::kHugePage) {
    const size_t alignment = bytes >= kHugePageBytes ? kHugePageBytes : 64;
    const size_t rounded = (bytes + alignment - 1) / alignment * alignment;
    void* p = nullptr;
    if (posix_memalign(&p, alignment, rounded) == 0) {
      std::memset(p, 0, rounded);
#ifdef __linux__
      if (rounded >= kHugePageBytes) {
        madvise(p, rounded, MADV_HUGEPAGE);  // advisory; failure is fine
      }
#endif
      return p;
    }
    // Fall through to the plain allocation on an alignment failure.
  }
  void* p = std::calloc(bytes, 1);
  SKETCH_CHECK(p != nullptr);
  return p;
}

}  // namespace

const char* CounterLayoutName(CounterLayout layout) {
  return layout == CounterLayout::kFlat ? "flat" : "blocked";
}

const char* CounterWidthName(CounterWidth width) {
  return width == CounterWidth::kI64 ? "i64" : "i32";
}

const char* CounterBackingName(CounterBacking backing) {
  return backing == CounterBacking::kDefault ? "default" : "hugepage";
}

Result<CounterLayout> ParseCounterLayout(const std::string& name) {
  if (name == "flat") return CounterLayout::kFlat;
  if (name == "blocked") return CounterLayout::kBlocked;
  return Status::InvalidArgument("unknown counter layout '" + name +
                                 "' (expected flat|blocked)");
}

Result<CounterWidth> ParseCounterWidth(const std::string& name) {
  if (name == "i64") return CounterWidth::kI64;
  if (name == "i32") return CounterWidth::kI32;
  return Status::InvalidArgument("unknown counter width '" + name +
                                 "' (expected i64|i32)");
}

CounterStore::CounterStore(uint32_t instances, uint32_t num_words,
                           CounterStoreOptions opt)
    : instances_(instances), num_words_(num_words), opt_(opt) {
  SKETCH_CHECK(instances_ > 0 && num_words_ > 0);
  Allocate();
}

CounterStore::~CounterStore() { Free(); }

CounterStore::CounterStore(const CounterStore& other)
    : instances_(other.instances_),
      num_words_(other.num_words_),
      opt_(other.opt_) {
  Allocate();
  if (elems_ > 0) {
    std::memcpy(opt_.width == CounterWidth::kI64
                    ? static_cast<void*>(data64_)
                    : static_cast<void*>(data32_),
                opt_.width == CounterWidth::kI64
                    ? static_cast<const void*>(other.data64_)
                    : static_cast<const void*>(other.data32_),
                elems_ * WidthBytes(opt_.width));
  }
}

CounterStore& CounterStore::operator=(const CounterStore& other) {
  if (this == &other) return *this;
  Free();
  instances_ = other.instances_;
  num_words_ = other.num_words_;
  opt_ = other.opt_;
  Allocate();
  if (elems_ > 0) {
    std::memcpy(opt_.width == CounterWidth::kI64
                    ? static_cast<void*>(data64_)
                    : static_cast<void*>(data32_),
                opt_.width == CounterWidth::kI64
                    ? static_cast<const void*>(other.data64_)
                    : static_cast<const void*>(other.data32_),
                elems_ * WidthBytes(opt_.width));
  }
  return *this;
}

CounterStore::CounterStore(CounterStore&& other) noexcept
    : instances_(other.instances_),
      num_words_(other.num_words_),
      opt_(other.opt_),
      elems_(other.elems_),
      data64_(other.data64_),
      data32_(other.data32_),
      apply_scratch_(std::move(other.apply_scratch_)) {
  other.instances_ = 0;
  other.num_words_ = 0;
  other.elems_ = 0;
  other.data64_ = nullptr;
  other.data32_ = nullptr;
}

CounterStore& CounterStore::operator=(CounterStore&& other) noexcept {
  if (this == &other) return *this;
  Free();
  instances_ = other.instances_;
  num_words_ = other.num_words_;
  opt_ = other.opt_;
  elems_ = other.elems_;
  data64_ = other.data64_;
  data32_ = other.data32_;
  apply_scratch_ = std::move(other.apply_scratch_);
  other.instances_ = 0;
  other.num_words_ = 0;
  other.elems_ = 0;
  other.data64_ = nullptr;
  other.data32_ = nullptr;
  return *this;
}

void CounterStore::Allocate() {
  if (instances_ == 0 || num_words_ == 0) {
    elems_ = 0;
    data64_ = nullptr;
    data32_ = nullptr;
    return;
  }
  // Blocked stores pad the last block to 64 lanes so every word's lane
  // run is full-width; the padding lanes stay zero forever.
  elems_ = opt_.layout == CounterLayout::kFlat
               ? static_cast<size_t>(instances_) * num_words_
               : static_cast<size_t>((instances_ + 63) / 64) * 64 * num_words_;
  void* p = AllocCounters(elems_ * WidthBytes(opt_.width), opt_.backing);
  data64_ = opt_.width == CounterWidth::kI64 ? static_cast<int64_t*>(p)
                                             : nullptr;
  data32_ = opt_.width == CounterWidth::kI32 ? static_cast<int32_t*>(p)
                                             : nullptr;
}

void CounterStore::Free() {
  std::free(data64_ != nullptr ? static_cast<void*>(data64_)
                               : static_cast<void*>(data32_));
  data64_ = nullptr;
  data32_ = nullptr;
  elems_ = 0;
}

void CounterStore::SetUnchecked(uint32_t instance, uint32_t word,
                                int64_t value) {
  const size_t idx = Index(instance, word);
  if (opt_.width == CounterWidth::kI64) {
    data64_[idx] = value;
  } else {
    SKETCH_DCHECK(value >= std::numeric_limits<int32_t>::min() &&
                  value <= std::numeric_limits<int32_t>::max());
    data32_[idx] = static_cast<int32_t>(value);
  }
}

void CounterStore::AddNarrow(uint32_t instance, uint32_t word,
                             int64_t delta) {
  const size_t idx = Index(instance, word);
  const int64_t v = static_cast<int64_t>(data32_[idx]) + delta;
  if (v < std::numeric_limits<int32_t>::min() ||
      v > std::numeric_limits<int32_t>::max()) {
    // Saturation-checked widening: the value leaves int32, so the whole
    // store widens in place (values preserved exactly) and the add lands
    // wide. No counter is ever clipped.
    EnsureWide();
    data64_[idx] = v;
    return;
  }
  data32_[idx] = static_cast<int32_t>(v);
}

void CounterStore::TensorApply(const kernels::KernelOps& kops, uint32_t block,
                               uint32_t lanes, const int32_t* const (*lv)[2],
                               uint32_t dims, int64_t sign) {
  SKETCH_DCHECK(num_words_ == (uint32_t{1} << dims));
  if (opt_.layout == CounterLayout::kFlat &&
      opt_.width == CounterWidth::kI64) {
    kops.tensor_apply(lv, dims, lanes, sign,
                      data64_ + static_cast<size_t>(block) * 64 * num_words_);
    return;
  }
  // Stage the block's deltas through zeroed flat scratch rows, then
  // scatter-add into the real layout/width. Integer adds are exact and
  // order-free, so the detour never changes the resulting counters.
  apply_scratch_.assign(static_cast<size_t>(64) * num_words_, 0);
  kops.tensor_apply(lv, dims, lanes, sign, apply_scratch_.data());
  if (opt_.layout == CounterLayout::kBlocked &&
      opt_.width == CounterWidth::kI64) {
    // Wide blocked: transpose-add without per-element range checks.
    int64_t* base = data64_ + static_cast<size_t>(block) * 64 * num_words_;
    for (uint32_t j = 0; j < lanes; ++j) {
      const int64_t* src = apply_scratch_.data() + static_cast<size_t>(j) *
                                                       num_words_;
      for (uint32_t w = 0; w < num_words_; ++w) {
        base[static_cast<size_t>(w) * 64 + j] += src[w];
      }
    }
    return;
  }
  for (uint32_t j = 0; j < lanes; ++j) {
    const uint32_t inst = block * 64 + j;
    const int64_t* src =
        apply_scratch_.data() + static_cast<size_t>(j) * num_words_;
    for (uint32_t w = 0; w < num_words_; ++w) Add(inst, w, src[w]);
  }
}

void CounterStore::MergeFrom(const CounterStore& other) {
  SKETCH_CHECK(instances_ == other.instances_ &&
               num_words_ == other.num_words_);
  if (opt_.layout == other.opt_.layout &&
      opt_.width == CounterWidth::kI64 &&
      other.opt_.width == CounterWidth::kI64) {
    for (size_t i = 0; i < elems_; ++i) data64_[i] += other.data64_[i];
    return;
  }
  for (uint32_t inst = 0; inst < instances_; ++inst) {
    for (uint32_t w = 0; w < num_words_; ++w) {
      Add(inst, w, other.Get(inst, w));
    }
  }
}

void CounterStore::Reset() {
  if (elems_ == 0) return;
  std::memset(opt_.width == CounterWidth::kI64
                  ? static_cast<void*>(data64_)
                  : static_cast<void*>(data32_),
              0, elems_ * WidthBytes(opt_.width));
}

void CounterStore::CopyValuesFrom(const CounterStore& other) {
  SKETCH_CHECK(instances_ == other.instances_ &&
               num_words_ == other.num_words_);
  if (opt_.width == CounterWidth::kI32 && !other.FitsNarrow()) EnsureWide();
  if (opt_.layout == other.opt_.layout && opt_.width == other.opt_.width &&
      elems_ == other.elems_) {
    std::memcpy(opt_.width == CounterWidth::kI64
                    ? static_cast<void*>(data64_)
                    : static_cast<void*>(data32_),
                other.opt_.width == CounterWidth::kI64
                    ? static_cast<const void*>(other.data64_)
                    : static_cast<const void*>(other.data32_),
                elems_ * WidthBytes(opt_.width));
    return;
  }
  Reset();
  for (uint32_t inst = 0; inst < instances_; ++inst) {
    for (uint32_t w = 0; w < num_words_; ++w) {
      SetUnchecked(inst, w, other.Get(inst, w));
    }
  }
}

bool CounterStore::FitsNarrow() const {
  if (opt_.width == CounterWidth::kI32) return true;
  for (size_t i = 0; i < elems_; ++i) {
    if (data64_[i] < std::numeric_limits<int32_t>::min() ||
        data64_[i] > std::numeric_limits<int32_t>::max()) {
      return false;
    }
  }
  return true;
}

Status CounterStore::SetWidth(CounterWidth width) {
  if (width == opt_.width) return Status::OK();
  if (width == CounterWidth::kI32 && !FitsNarrow()) {
    return Status::FailedPrecondition(
        "cannot narrow counters to int32: a value is out of range");
  }
  CounterStoreOptions new_opt = opt_;
  new_opt.width = width;
  void* p = AllocCounters(elems_ * WidthBytes(width), opt_.backing);
  if (width == CounterWidth::kI64) {
    int64_t* dst = static_cast<int64_t*>(p);
    for (size_t i = 0; i < elems_; ++i) {
      dst[i] = static_cast<int64_t>(data32_[i]);
    }
  } else {
    int32_t* dst = static_cast<int32_t*>(p);
    for (size_t i = 0; i < elems_; ++i) {
      dst[i] = static_cast<int32_t>(data64_[i]);
    }
  }
  const size_t elems = elems_;
  Free();
  opt_ = new_opt;
  elems_ = elems;  // element count depends on the layout, not the width
  data64_ =
      width == CounterWidth::kI64 ? static_cast<int64_t*>(p) : nullptr;
  data32_ =
      width == CounterWidth::kI32 ? static_cast<int32_t*>(p) : nullptr;
  return Status::OK();
}

std::vector<int64_t> CounterStore::ToFlat() const {
  std::vector<int64_t> out(static_cast<size_t>(instances_) * num_words_);
  if (opt_.layout == CounterLayout::kFlat &&
      opt_.width == CounterWidth::kI64) {
    std::memcpy(out.data(), data64_, out.size() * sizeof(int64_t));
    return out;
  }
  for (uint32_t inst = 0; inst < instances_; ++inst) {
    for (uint32_t w = 0; w < num_words_; ++w) {
      out[static_cast<size_t>(inst) * num_words_ + w] = Get(inst, w);
    }
  }
  return out;
}

void CounterStore::FromFlat(const std::vector<int64_t>& flat) {
  SKETCH_CHECK(flat.size() == static_cast<size_t>(instances_) * num_words_);
  if (opt_.width == CounterWidth::kI32) {
    for (int64_t v : flat) {
      if (v < std::numeric_limits<int32_t>::min() ||
          v > std::numeric_limits<int32_t>::max()) {
        EnsureWide();
        break;
      }
    }
  }
  Reset();
  for (uint32_t inst = 0; inst < instances_; ++inst) {
    for (uint32_t w = 0; w < num_words_; ++w) {
      SetUnchecked(inst, w,
                   flat[static_cast<size_t>(inst) * num_words_ + w]);
    }
  }
}

// ---- Estimator z-walks ------------------------------------------------
// The generic walks below replicate the scalar kernels' per-instance FP
// order EXACTLY (kernels.cc RangeZScalar / JoinZScalar / SelfJoinZScalar):
// products and the w-ascending accumulation in double, per instance. The
// kernel dispatch's own bit-identity invariant (every variant matches
// scalar) then closes the loop: estimates are bit-identical across
// (layout x width x kernel variant).

void CounterStore::RangeZ(uint32_t dims, const int32_t* factors,
                          double* z) const {
  SKETCH_DCHECK(num_words_ == (uint32_t{1} << dims));
  if (opt_.layout == CounterLayout::kFlat &&
      opt_.width == CounterWidth::kI64) {
    kernels::Ops().range_z(data64_, instances_, dims, factors, z);
    return;
  }
  const uint32_t num_words = num_words_;
  for (uint32_t inst = 0; inst < instances_; ++inst) {
    double q_factor[8][2];
    for (uint32_t d = 0; d < dims; ++d) {
      q_factor[d][0] =
          factors[(static_cast<size_t>(d) * 2 + 0) * instances_ + inst];
      q_factor[d][1] =
          factors[(static_cast<size_t>(d) * 2 + 1) * instances_ + inst];
    }
    double acc = 0.0;
    for (uint32_t w = 0; w < num_words; ++w) {
      double prod = static_cast<double>(Get(inst, w));
      for (uint32_t d = 0; d < dims; ++d) {
        prod *= q_factor[d][((w >> d) & 1) ? 0 : 1];
      }
      acc += prod;
    }
    z[inst] = acc;
  }
}

void CounterStore::JoinZ(const CounterStore& r, const CounterStore& s,
                         uint32_t dims, double* z) {
  SKETCH_CHECK(r.instances_ == s.instances_ &&
               r.num_words_ == s.num_words_);
  SKETCH_DCHECK(r.num_words_ == (uint32_t{1} << dims));
  if (r.opt_.layout == CounterLayout::kFlat &&
      r.opt_.width == CounterWidth::kI64 &&
      s.opt_.layout == CounterLayout::kFlat &&
      s.opt_.width == CounterWidth::kI64) {
    kernels::Ops().join_z(r.data64_, s.data64_, r.instances_, dims, z);
    return;
  }
  const uint32_t num_words = r.num_words_;
  const uint32_t cmask = num_words - 1;
  const double scale = 1.0 / static_cast<double>(uint64_t{1} << dims);
  for (uint32_t inst = 0; inst < r.instances_; ++inst) {
    double acc = 0.0;
    for (uint32_t w = 0; w < num_words; ++w) {
      acc += static_cast<double>(r.Get(inst, w)) *
             static_cast<double>(s.Get(inst, w ^ cmask));
    }
    z[inst] = acc * scale;
  }
}

void CounterStore::SelfJoinZ(uint32_t word, double* z) const {
  if (opt_.layout == CounterLayout::kFlat &&
      opt_.width == CounterWidth::kI64) {
    kernels::Ops().self_join_z(data64_, instances_, num_words_, word, z);
    return;
  }
  for (uint32_t inst = 0; inst < instances_; ++inst) {
    const double x = static_cast<double>(Get(inst, word));
    z[inst] = x * x;
  }
}

}  // namespace spatialsketch
