// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// DatasetSketch: the synopsis of one spatial dataset (Sections 3 and 4).
//
// For every boosting instance (Section 2.3) and every word of its Shape,
// the sketch keeps one integer counter X_w = sum over objects of the
// product, across dimensions, of the letter's xi-sum (interval cover,
// endpoint cover(s), or leaf xi). Inserts add the contribution, deletes
// subtract it — the synopsis is a linear projection of the data, which is
// what makes it maintainable under arbitrary insert/delete streams and
// mergeable across partitions.
//
// Three update paths produce bit-identical counters:
//  * Insert/Delete: per-object streaming updates. Bit-sliced: the covers'
//    packed sign columns come from the schema's PackedSignCache (built
//    lazily, once per dyadic id, shared across all instances AND all
//    datasets under the schema), so 64 instances are expanded per word
//    into +-1 counter deltas with branch-free sign expansion.
//  * BulkLoad: batches instances, precomputes packed sign tables over the
//    (small) dyadic-id universe, and uses bit-sliced counting so the cost
//    per (object, instance) drops to a handful of word operations.
//  * UpdateReference: the retained one-GF(2^64)-evaluation-per-(instance,
//    id) scalar path; test-only ground truth for the two above.
//
// Thread-safety: a DatasetSketch is NOT internally synchronized — one
// writer at a time, and reads must not race a write (updates reuse
// per-sketch scratch buffers, so even `const` concurrent use during a
// write is a race). The schema and its caches ARE thread-safe and
// shared: many sketches on many threads may ingest under one schema
// concurrently. Concurrent serving layers wrap sketches in locks
// (SketchStore: per-dataset FairSharedMutex) or give each thread a
// private delta sketch and Merge (parallel_ingest.h, writer_shards.h) —
// exact, because the synopsis is linear.

#ifndef SPATIALSKETCH_SKETCH_DATASET_SKETCH_H_
#define SPATIALSKETCH_SKETCH_DATASET_SKETCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/geom/box.h"
#include "src/sketch/counter_store.h"
#include "src/sketch/schema.h"
#include "src/sketch/shape.h"

namespace spatialsketch {

class DatasetSketch;
/// Defined in serialize.h; declared here for the friend grant.
Result<DatasetSketch> DeserializeSketch(const std::string& blob);

/// The synopsis of one spatial dataset: the linear counter array of a
/// Shape under a SketchSchema, maintainable under arbitrary insert/
/// delete streams and exactly mergeable (see the file comment for the
/// ingest paths and the thread-safety contract).
class DatasetSketch {
 public:
  /// Sketch under `schema` maintaining the counters of `shape`. The
  /// counter block's physical configuration (layout, width, backing) is a
  /// per-sketch choice; every configuration holds bit-identical VALUES
  /// (see counter_store.h), so it never affects estimates.
  DatasetSketch(SchemaPtr schema, Shape shape,
                CounterStoreOptions counter_opt = {});

  /// Streaming updates. The box must be valid within the schema domains;
  /// leaf letters (if any in the shape) use the box's own endpoints.
  /// Mutates counters and scratch — requires exclusive access to THIS
  /// sketch (schema caches are shared and lock-free underneath).
  void Insert(const Box& box) { Update(box, box, +1); }
  /// Streaming removal: subtracts the box's contribution (same contract
  /// as Insert; the synopsis is linear).
  void Delete(const Box& box) { Update(box, box, -1); }

  /// Variant for the Appendix-B.1 extended join: interval/endpoint letters
  /// read `box` (the shrunk-transformed geometry) while leaf letters read
  /// `leaf_box` (the unshrunk endpoints used for equality tracking).
  void InsertWithLeafBox(const Box& box, const Box& leaf_box) {
    Update(box, leaf_box, +1);
  }
  /// Removal counterpart of InsertWithLeafBox.
  void DeleteWithLeafBox(const Box& box, const Box& leaf_box) {
    Update(box, leaf_box, -1);
  }

  /// Test-only reference for the bit-sliced streaming path: the original
  /// per-instance scalar update (one GF(2^64) xi evaluation per boosting
  /// instance per dyadic id). Produces counters bit-identical to
  /// Insert/Delete; kept so the differential tests and the update
  /// micro-benchmark can pin the fast path against it.
  void UpdateReference(const Box& box, int sign) {
    UpdateReference(box, box, sign);
  }
  /// Leaf-box variant of the scalar reference path (extended join).
  void UpdateReference(const Box& box, const Box& leaf_box, int sign);

  /// Bulk-load `boxes` (sign +1) or bulk-remove (sign -1). Equivalent to
  /// calling Insert per box but typically orders of magnitude faster.
  /// Rejects signs outside {+1, -1} with InvalidArgument (the sketch is a
  /// linear projection; any other weight silently corrupts the synopsis).
  Status BulkLoad(const std::vector<Box>& boxes, int sign = +1) {
    return BulkLoad(boxes.data(), boxes.size(), sign);
  }

  /// Span variant: load `count` boxes starting at `boxes` without
  /// requiring them to live in their own vector (sharded loaders pass
  /// slices of one batch this way instead of copying them out).
  Status BulkLoad(const Box* boxes, size_t count, int sign = +1);

  /// Bulk variant with separate leaf boxes (parallel array; must have the
  /// same length as boxes).
  Status BulkLoadWithLeafBoxes(const std::vector<Box>& boxes,
                               const std::vector<Box>& leaf_boxes,
                               int sign = +1);

  /// Counter X_w of one boosting instance (layout/width-independent).
  int64_t Counter(uint32_t instance, uint32_t word_index) const {
    SKETCH_DCHECK(instance < schema_->instances());
    SKETCH_DCHECK(word_index < shape_.size());
    return counters_.Get(instance, word_index);
  }

  /// Counter values in flat [instance * shape.size() + word] order — the
  /// layout-independent reference representation. The synopsis is linear,
  /// so two sketches of the same data under the same schema are
  /// bit-identical here regardless of ingest path, update interleaving,
  /// OR counter layout/width — the store's correctness tests compare
  /// these directly. Returned by value (the physical layout may differ).
  std::vector<int64_t> counters() const { return counters_.ToFlat(); }

  /// The counter block itself — the layout descriptor estimators address
  /// counters through instead of raw memory (see counter_store.h).
  const CounterStore& counter_store() const { return counters_; }

  /// Net number of objects currently summarized (inserts minus deletes).
  int64_t num_objects() const { return num_objects_; }

  /// The shape whose counters this sketch maintains.
  const Shape& shape() const { return shape_; }
  /// The shared schema (xi configuration + caches) this sketch is under.
  const SchemaPtr& schema() const { return schema_; }

  /// Merge another sketch built under the SAME schema and shape (the
  /// synopsis is linear): counters add, object counts add. Requires
  /// exclusive access to this sketch and stable counters on `other`.
  void Merge(const DatasetSketch& other);

  /// Merge accepting a configuration-EQUAL (not necessarily pointer-
  /// equal) schema, with the same validation AdoptCountersFrom applies —
  /// the durability layer's WAL replay deserializes delta sketches into
  /// fresh schema instances and folds them in through this. Counter
  /// values add regardless of the two sketches' layout/width.
  Status MergeFrom(const DatasetSketch& other);

  /// Reset to the empty sketch (all counters zero, zero objects), keeping
  /// the schema, shape, and warm scratch. O(counters). The store's writer
  /// shards recycle their epoch delta sketches through this instead of
  /// reallocating one per fold.
  void Reset();

  /// Batch size below which BulkLoad streams the boxes through the
  /// bit-sliced update path (schema sign cache, no SignTable build)
  /// instead of the table-based BulkLoader. Derived from the schema: the
  /// table path pays O(sum_d num_ids) construction per load regardless of
  /// batch size, the streaming path pays O(cover columns) per box, so the
  /// crossover is their ratio (measured constant; see docs/BENCH.md and
  /// the micro_update_throughput --crossover_scan mode). Both paths
  /// produce bit-identical counters, so the pick is purely a cost choice.
  uint64_t SmallBulkCrossover() const;

  /// Per-dimension byte budget for serving endpoint sums from the
  /// schema's PointSumCache. A dimension whose WORST-CASE entry pool
  /// (2^log2_size coordinates x one packed count block set each) exceeds
  /// the budget computes its endpoint sums on the fly instead — a memory
  /// bound, not a speed pick: cached sums measure faster at every domain
  /// size tried and entries only allocate for touched coordinates, but
  /// past the cap an adversarial stream could grow the pool without
  /// limit (see docs/BENCH.md). Both paths are bit-identical. The budget
  /// is read at sketch construction; set it before creating sketches
  /// (0 disables the cache — also the A/B knob the update benchmark
  /// exposes as --point_sum_budget).
  static void SetPointSumBudgetBytes(uint64_t bytes);
  static uint64_t PointSumBudgetBytes();

  /// Overwrite this sketch's state (counters, object count) with `other`'s,
  /// keeping this sketch's schema POINTER. Requires equal shapes and equal
  /// schema configurations (equal options imply bit-identical seeds), but
  /// not pointer-equal schemas. This is how a snapshot restore adopts a
  /// deserialized sketch without breaking pointer-based joinability with
  /// other sketches under the original schema instance.
  Status AdoptCountersFrom(const DatasetSketch& other);

  /// Paper-accounted size in words (counters + amortized seed).
  uint64_t MemoryWords() const { return schema_->WordsPerDataset(shape_); }

  /// Honest accounting: ACTUAL bytes this sketch holds — the allocated
  /// counter block (layout padding and width included) plus every scratch
  /// buffer the update paths have grown. Joins MemoryWords() (the
  /// paper-accounted figure) so density numbers can cite real memory.
  uint64_t MemoryBytes() const;

 private:
  friend class BulkLoader;
  friend Result<DatasetSketch> DeserializeSketch(const std::string& blob);
  // Per-dimension xi-sum groups a shape can require.
  enum Group : uint32_t { kGroupI = 0, kGroupL = 1, kGroupU = 2 };
  static constexpr uint32_t kNumGroups = 3;

  struct DimNeeds {
    bool group[kNumGroups] = {false, false, false};
    bool leaf_lower = false;
    bool leaf_upper = false;
  };

  void Update(const Box& box, const Box& leaf_box, int sign);
  template <uint32_t kDims>
  void UpdateBitSliced(const Box& box, const Box& leaf_box, int sign);
  void ComputeNeeds();
  void GatherIds(const Box& box, uint32_t dim);

  // Letter value from per-dim group sums and leaf signs.
  static int64_t LetterValue(Letter l, const int32_t* sums, int32_t leaf_l,
                             int32_t leaf_u);

  SchemaPtr schema_;
  Shape shape_;
  CounterStore counters_;  ///< the layout-owning counter block
  int64_t num_objects_ = 0;
  std::vector<DimNeeds> needs_;  // per dim

  // Precomputed update plan (fixed per shape): flat letter codes of every
  // word and which letters each dimension actually uses.
  std::vector<uint8_t> word_letters_;  // [word * dims + d]
  bool letter_used_[kMaxDims][6] = {};
  // Set when the shape is a bitmask-ordered 2-letter tensor product (bit
  // d of the word index selects tensor_letters_[d][1] in dimension d) —
  // true for RangeShape and JoinShape. The streaming fast path then
  // expands counter deltas via iterated partial products instead of the
  // generic per-word letter indirection.
  bool tensor_bitmask_ = false;
  uint8_t tensor_letters_[kMaxDims][2] = {};
  // Per-dimension pick, frozen at construction: serve endpoint sums from
  // the schema's PointSumCache (pool fits PointSumBudgetBytes) or reduce
  // them on the fly from sign columns.
  bool point_sums_cached_[kMaxDims] = {};

  // Scratch: gathered dyadic ids per group for the current object/dim.
  std::vector<uint64_t> scratch_ids_[kNumGroups];
  // Scratch for the slow path: GF(2^64) cubes parallel to scratch_ids_.
  std::vector<uint64_t> scratch_cubes_[kNumGroups];
  // Scratch for the bit-sliced streaming path: cached packed sign columns
  // per (dim, group) parallel to the gathered ids, byte-packed per-lane
  // minus counts for every block ([slot * blocks * 8]; endpoint groups
  // may be memcpy'd from the schema's PointSumCache instead of reduced),
  // carry-save planes ([blocks * 6]), and the 32-bit fallback for covers
  // > 255 ids.
  std::vector<const uint64_t*> scratch_cols_[kMaxDims][kNumGroups];
  std::vector<uint64_t> scratch_packed_;
  std::vector<uint64_t> scratch_planes_;
  std::vector<int32_t> scratch_wide_;
};

/// Loads several sketches that share one schema in a single pass, so the
/// packed sign tables (the dominant bulk-load cost) are built once per
/// instance batch instead of once per sketch. The join pipelines use this
/// to sketch both sides of a join together.
class BulkLoader {
 public:
  /// Instances per internal work batch: Run() parallelizes across these
  /// batches, one thread per batch (capped at the hardware), so a single
  /// load already runs on ceil(instances / kInstancesPerBatch) threads.
  /// Callers adding their own threading on top must budget against that
  /// (see store/parallel_ingest.h, which divides its thread budget by the
  /// batch count) or they oversubscribe the CPU.
  static constexpr uint32_t kInstancesPerBatch = 512;

  /// A loader for sketches under `schema`; Add() jobs, then Run() once.
  explicit BulkLoader(SchemaPtr schema) : schema_(std::move(schema)) {}

  /// Register a load job. `boxes` (and `leaf_boxes` if non-null, parallel
  /// to boxes) must outlive Run(). The sketch must use this loader's
  /// schema.
  void Add(DatasetSketch* sketch, const std::vector<Box>* boxes,
           const std::vector<Box>* leaf_boxes = nullptr, int sign = +1);

  /// Span variant of Add; `boxes` (and `leaf_boxes`, parallel when
  /// non-null) point at `count` boxes that must outlive Run().
  void Add(DatasetSketch* sketch, const Box* boxes, size_t count,
           const Box* leaf_boxes = nullptr, int sign = +1);

  /// Execute all registered jobs; equivalent to per-sketch BulkLoad.
  /// Parallelizes across instance batches on up to min(max_threads,
  /// hardware) worker threads; max_threads == 0 means the hardware
  /// concurrency, 1 runs fully on the calling thread.
  void Run(uint32_t max_threads = 0);

 private:
  struct Job {
    DatasetSketch* sketch;
    const Box* boxes;
    size_t count;
    const Box* leaf_boxes;  // nullptr => boxes
    int sign;
  };
  SchemaPtr schema_;
  std::vector<Job> jobs_;
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_SKETCH_DATASET_SKETCH_H_
