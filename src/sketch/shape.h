// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Sketch "shapes": which atomic sketches a dataset maintains.
//
// Section 3.2 indexes the atomic sketches of a d-dimensional dataset by
// words w over the alphabet {I, E}: letter I tracks a dimension's interval
// via its dyadic cover, letter E tracks both endpoints via their dyadic
// point covers. The appendices extend the alphabet:
//   L / U       dyadic point cover of only the lower / upper endpoint
//               (range queries, Lemma 9; point sketches, Section 6.3);
//   l / u       the *standard* xi variable at the lower / upper endpoint
//               coordinate, i.e. only the leaf dyadic interval
//               (common-endpoint tracking, Appendices B.1 and C).
//
// A Word assigns one letter per dimension; a Shape is the ordered list of
// words whose counters a DatasetSketch maintains.

#ifndef SPATIALSKETCH_SKETCH_SHAPE_H_
#define SPATIALSKETCH_SKETCH_SHAPE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/geom/box.h"

namespace spatialsketch {

/// Per-dimension tracking mode of an atomic sketch.
enum class Letter : uint8_t {
  kI = 0,      ///< dyadic interval cover of [lo, hi]
  kE = 1,      ///< dyadic point covers of both endpoints
  kL = 2,      ///< dyadic point cover of the lower endpoint
  kU = 3,      ///< dyadic point cover of the upper endpoint
  kLeafL = 4,  ///< standard xi at the lower endpoint (leaf only)
  kLeafU = 5,  ///< standard xi at the upper endpoint (leaf only)
};

/// Complement used when pairing X_w with Y_wbar in the join estimators:
/// I <-> E, L <-> U, leaf-l <-> leaf-u.
Letter ComplementLetter(Letter l);

/// Character rendering: I E L U l u.
char LetterChar(Letter l);

/// One atomic-sketch word; dims letters are significant.
struct Word {
  std::array<Letter, kMaxDims> letters{};

  friend bool operator==(const Word& a, const Word& b) {
    return a.letters == b.letters;
  }
};

/// Complement every letter of a word (the paper's "wbar").
Word ComplementWord(const Word& w, uint32_t dims);

/// Number of I/E letters in the word (the paper's c(w) in Appendix B.1).
uint32_t CountIntervalEndpointLetters(const Word& w, uint32_t dims);

/// Render e.g. "IE" or "Iu".
std::string WordToString(const Word& w, uint32_t dims);

/// Parse from the characters accepted by LetterChar.
Result<Word> WordFromString(const std::string& s);

/// Ordered list of words maintained by a sketch.
class Shape {
 public:
  Shape() = default;
  explicit Shape(std::vector<Word> words) : words_(std::move(words)) {}

  /// {I,E}^d in bitmask order (bit i set => E in dimension i); word 0 is
  /// the all-I word. This is the spatial-join shape of Theorems 1-3.
  static Shape JoinShape(uint32_t dims);

  /// {I,U}^d in bitmask order (bit i set => U); the range-query shape of
  /// Lemma 9 and its d-dimensional generalization.
  static Shape RangeShape(uint32_t dims);

  /// The single word L^d: point datasets (Section 6.3 / B.2); for a point
  /// the lower cover equals the upper cover.
  static Shape PointShape(uint32_t dims);

  /// The single word I^d: hyper-rectangle interval covers only (the
  /// Y_II... sketch of the eps-join / containment estimators).
  static Shape BoxCoverShape(uint32_t dims);

  /// {I,E,l,u}^d in base-4 digit order (digit i: 0=I,1=E,2=l,3=u); the
  /// extended-overlap join shape of Appendix B.1 and the common-endpoint
  /// shape of Appendix C.
  static Shape ExtendedJoinShape(uint32_t dims);

  uint32_t size() const { return static_cast<uint32_t>(words_.size()); }
  const Word& word(uint32_t i) const { return words_[i]; }
  const std::vector<Word>& words() const { return words_; }

  /// Index of a word, or -1 if absent.
  int IndexOf(const Word& w) const;

  friend bool operator==(const Shape& a, const Shape& b) {
    return a.words_ == b.words_;
  }

 private:
  std::vector<Word> words_;
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_SKETCH_SHAPE_H_
