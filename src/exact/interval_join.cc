#include "src/exact/interval_join.h"

#include <algorithm>

#include "src/common/macros.h"

namespace spatialsketch {

namespace {

// Shared skeleton: overlap(r, s) fails iff u_r <= l_s + slack or
// u_s <= l_r + slack in the "strict" sense. With slack semantics:
//   strict overlap   fails iff u_r <= l_s  or  u_s <= l_r
//   extended overlap fails iff u_r <  l_s  or  u_s <  l_r
// The two events are disjoint (strict case needs non-degenerate
// intervals; extended case is disjoint unconditionally), so
//   |join| = |R||S| - sum_s #{r : r ends before s} - sum_s #{r : r starts
//   after s}.
uint64_t JoinCountImpl(const std::vector<Box>& r, const std::vector<Box>& s,
                       bool extended) {
  if (r.empty() || s.empty()) return 0;
  std::vector<Coord> r_upper;
  std::vector<Coord> r_lower;
  r_upper.reserve(r.size());
  r_lower.reserve(r.size());
  for (const Box& b : r) {
    SKETCH_DCHECK(extended || b.lo[0] < b.hi[0]);
    r_upper.push_back(b.hi[0]);
    r_lower.push_back(b.lo[0]);
  }
  std::sort(r_upper.begin(), r_upper.end());
  std::sort(r_lower.begin(), r_lower.end());

  uint64_t disjoint = 0;
  for (const Box& b : s) {
    SKETCH_DCHECK(extended || b.lo[0] < b.hi[0]);
    if (extended) {
      // #r with u_r < l_s
      disjoint += std::lower_bound(r_upper.begin(), r_upper.end(), b.lo[0]) -
                  r_upper.begin();
      // #r with l_r > u_s
      disjoint += r_lower.end() -
                  std::upper_bound(r_lower.begin(), r_lower.end(), b.hi[0]);
    } else {
      // #r with u_r <= l_s
      disjoint += std::upper_bound(r_upper.begin(), r_upper.end(), b.lo[0]) -
                  r_upper.begin();
      // #r with l_r >= u_s
      disjoint += r_lower.end() -
                  std::lower_bound(r_lower.begin(), r_lower.end(), b.hi[0]);
    }
  }
  const uint64_t all = static_cast<uint64_t>(r.size()) * s.size();
  SKETCH_DCHECK(disjoint <= all);
  return all - disjoint;
}

}  // namespace

uint64_t ExactIntervalJoinCount(const std::vector<Box>& r,
                                const std::vector<Box>& s) {
  return JoinCountImpl(r, s, /*extended=*/false);
}

uint64_t ExactExtendedIntervalJoinCount(const std::vector<Box>& r,
                                        const std::vector<Box>& s) {
  return JoinCountImpl(r, s, /*extended=*/true);
}

}  // namespace spatialsketch
