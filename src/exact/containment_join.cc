#include "src/exact/containment_join.h"

#include <algorithm>

#include "src/exact/fenwick.h"

namespace spatialsketch {

uint64_t ExactContainmentCount1D(const std::vector<Box>& r,
                                 const std::vector<Box>& s) {
  if (r.empty() || s.empty()) return 0;
  // Sweep r by lower endpoint ascending; maintain the outer candidates s
  // with l_s <= l_r in a Fenwick keyed by u_s, and count u_s >= u_r.
  std::vector<std::pair<Coord, Coord>> rs;  // (l_r, u_r)
  std::vector<std::pair<Coord, Coord>> ss;  // (l_s, u_s)
  Coord max_u = 0;
  for (const Box& b : r) {
    rs.emplace_back(b.lo[0], b.hi[0]);
    max_u = std::max(max_u, b.hi[0]);
  }
  for (const Box& b : s) {
    ss.emplace_back(b.lo[0], b.hi[0]);
    max_u = std::max(max_u, b.hi[0]);
  }
  std::sort(rs.begin(), rs.end());
  std::sort(ss.begin(), ss.end());

  Fenwick uppers(max_u + 1);
  uint64_t count = 0;
  size_t j = 0;
  for (const auto& [lr, ur] : rs) {
    while (j < ss.size() && ss[j].first <= lr) {
      uppers.Add(ss[j].second, +1);
      ++j;
    }
    count += static_cast<uint64_t>(uppers.RangeCount(ur, max_u));
  }
  return count;
}

}  // namespace spatialsketch
