// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Exact 1-d interval-join cardinality in O((|R|+|S|) log |R|) by counting
// the complement: two intervals fail strict Definition-1 overlap iff one
// ends at or before the other starts; the two failure events are disjoint
// for non-degenerate intervals. Used as ground truth at benchmark scale.

#ifndef SPATIALSKETCH_EXACT_INTERVAL_JOIN_H_
#define SPATIALSKETCH_EXACT_INTERVAL_JOIN_H_

#include <cstdint>
#include <vector>

#include "src/geom/box.h"

namespace spatialsketch {

/// |R join_o S| for 1-d interval sets (boxes interpreted in dimension 0).
/// Intervals must be non-degenerate (lo < hi); degenerate inputs cannot
/// contribute to a strict join and are rejected by a debug check.
uint64_t ExactIntervalJoinCount(const std::vector<Box>& r,
                                const std::vector<Box>& s);

/// Extended (Definition 4) 1-d join count: boundary meetings also join.
uint64_t ExactExtendedIntervalJoinCount(const std::vector<Box>& r,
                                        const std::vector<Box>& s);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_EXACT_INTERVAL_JOIN_H_
