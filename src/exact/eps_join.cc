#include "src/exact/eps_join.h"

#include <algorithm>

#include "src/common/macros.h"
#include "src/exact/fenwick.h"

namespace spatialsketch {

std::vector<Box> ExpandEpsSquares(const std::vector<Box>& b, uint32_t dims,
                                  Coord eps, uint32_t log2_size) {
  const Coord max_coord = (Coord{1} << log2_size) - 1;
  std::vector<Box> out;
  out.reserve(b.size());
  for (const Box& p : b) {
    Box sq;
    for (uint32_t i = 0; i < dims; ++i) {
      SKETCH_DCHECK(p.lo[i] == p.hi[i]);
      sq.lo[i] = p.lo[i] >= eps ? p.lo[i] - eps : 0;
      sq.hi[i] = p.lo[i] + eps <= max_coord ? p.lo[i] + eps : max_coord;
    }
    out.push_back(sq);
  }
  return out;
}

uint64_t ExactEpsJoinCount2D(const std::vector<Box>& a,
                             const std::vector<Box>& b, Coord eps) {
  if (a.empty() || b.empty()) return 0;

  // Sweep events over x: square activations, point queries, square
  // deactivations. Closed predicates demand start <= query <= end order at
  // equal coordinates.
  enum EventKind { kStart = 0, kPoint = 1, kEnd = 2 };
  struct Event {
    Coord x;
    EventKind kind;
    Coord y_lo;
    Coord y_hi;  // for kPoint, y_lo == y_hi == point y
  };

  std::vector<Event> events;
  events.reserve(a.size() + 2 * b.size());
  Coord max_y = 0;
  for (const Box& p : a) {
    SKETCH_DCHECK(p.lo[0] == p.hi[0] && p.lo[1] == p.hi[1]);
    events.push_back({p.lo[0], kPoint, p.lo[1], p.lo[1]});
    max_y = std::max(max_y, p.lo[1]);
  }
  for (const Box& p : b) {
    SKETCH_DCHECK(p.lo[0] == p.hi[0] && p.lo[1] == p.hi[1]);
    const Coord x_lo = p.lo[0] >= eps ? p.lo[0] - eps : 0;
    const Coord x_hi = p.lo[0] + eps;  // clamping unnecessary: A-points are
                                       // in-domain so larger x never matches
    const Coord y_lo = p.lo[1] >= eps ? p.lo[1] - eps : 0;
    const Coord y_hi = p.lo[1] + eps;
    events.push_back({x_lo, kStart, y_lo, y_hi});
    events.push_back({x_hi, kEnd, y_lo, y_hi});
    max_y = std::max(max_y, y_hi);
  }
  std::sort(events.begin(), events.end(), [](const Event& a2, const Event& b2) {
    if (a2.x != b2.x) return a2.x < b2.x;
    return a2.kind < b2.kind;
  });

  Fenwick lower(max_y + 1);
  Fenwick upper(max_y + 1);
  uint64_t count = 0;
  for (const Event& e : events) {
    switch (e.kind) {
      case kStart:
        lower.Add(e.y_lo, +1);
        upper.Add(e.y_hi, +1);
        break;
      case kEnd:
        lower.Add(e.y_lo, -1);
        upper.Add(e.y_hi, -1);
        break;
      case kPoint: {
        const Coord y = e.y_lo;
        const int64_t active = lower.total();
        // Active squares failing the closed y-test: end below y or start
        // above y (disjoint events).
        const int64_t ends_below = y == 0 ? 0 : upper.PrefixCount(y - 1);
        const int64_t starts_above = active - lower.PrefixCount(y);
        count += static_cast<uint64_t>(active - ends_below - starts_above);
        break;
      }
    }
  }
  return count;
}

}  // namespace spatialsketch
