// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Fenwick (binary indexed) tree over integer coordinates; supports point
// add and prefix-count queries. Used by the exact plane-sweep joins.

#ifndef SPATIALSKETCH_EXACT_FENWICK_H_
#define SPATIALSKETCH_EXACT_FENWICK_H_

#include <cstdint>
#include <vector>

#include "src/common/macros.h"

namespace spatialsketch {

/// Counting Fenwick tree over positions [0, size).
class Fenwick {
 public:
  explicit Fenwick(uint64_t size) : tree_(size + 1, 0), total_(0) {}

  /// Add delta at position pos.
  void Add(uint64_t pos, int64_t delta) {
    SKETCH_DCHECK(pos + 1 < tree_.size() + 1);
    total_ += delta;
    for (uint64_t i = pos + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  /// Count of items at positions <= pos.
  int64_t PrefixCount(uint64_t pos) const {
    if (pos + 1 >= tree_.size()) return total_;
    int64_t sum = 0;
    for (uint64_t i = pos + 1; i > 0; i -= i & (~i + 1)) sum += tree_[i];
    return sum;
  }

  /// Count of items at positions in [lo, hi] (inclusive); 0 if lo > hi.
  int64_t RangeCount(uint64_t lo, uint64_t hi) const {
    if (lo > hi) return 0;
    const int64_t below = lo == 0 ? 0 : PrefixCount(lo - 1);
    return PrefixCount(hi) - below;
  }

  int64_t total() const { return total_; }

 private:
  std::vector<int64_t> tree_;
  int64_t total_;
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_EXACT_FENWICK_H_
