#include "src/exact/range_query.h"

namespace spatialsketch {

uint64_t ExactRangeCount(const std::vector<Box>& r, const Box& q,
                         uint32_t dims) {
  uint64_t count = 0;
  for (const Box& b : r) {
    if (Overlaps(b, q, dims)) ++count;
  }
  return count;
}

uint64_t ExactRangeCountClosed(const std::vector<Box>& r, const Box& q,
                               uint32_t dims) {
  uint64_t count = 0;
  for (const Box& b : r) {
    if (OverlapsExtended(b, q, dims)) ++count;
  }
  return count;
}

}  // namespace spatialsketch
