#include "src/exact/brute.h"

namespace spatialsketch {

uint64_t BruteJoinCount(const std::vector<Box>& r, const std::vector<Box>& s,
                        uint32_t dims) {
  uint64_t count = 0;
  for (const Box& rb : r) {
    for (const Box& sb : s) {
      if (Overlaps(rb, sb, dims)) ++count;
    }
  }
  return count;
}

uint64_t BruteExtendedJoinCount(const std::vector<Box>& r,
                                const std::vector<Box>& s, uint32_t dims) {
  uint64_t count = 0;
  for (const Box& rb : r) {
    for (const Box& sb : s) {
      if (OverlapsExtended(rb, sb, dims)) ++count;
    }
  }
  return count;
}

uint64_t BruteContainmentCount(const std::vector<Box>& r,
                               const std::vector<Box>& s, uint32_t dims) {
  uint64_t count = 0;
  for (const Box& rb : r) {
    for (const Box& sb : s) {
      if (Contains(sb, rb, dims)) ++count;
    }
  }
  return count;
}

uint64_t BruteEpsJoinCount(const std::vector<Box>& a,
                           const std::vector<Box>& b, uint32_t dims,
                           Coord eps) {
  uint64_t count = 0;
  for (const Box& pa : a) {
    for (const Box& pb : b) {
      if (LInfDistance(pa, pb, dims) <= eps) ++count;
    }
  }
  return count;
}

uint64_t BruteRangeCount(const std::vector<Box>& r, const Box& q,
                         uint32_t dims) {
  uint64_t count = 0;
  for (const Box& rb : r) {
    if (Overlaps(rb, q, dims)) ++count;
  }
  return count;
}

}  // namespace spatialsketch
