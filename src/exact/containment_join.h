// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Exact containment-join cardinality (Appendix B.2): pairs (r, s) with r
// contained in s. The 1-d case is dominance counting over (lower, upper)
// endpoint pairs, solved with a Fenwick tree in O(N log N).

#ifndef SPATIALSKETCH_EXACT_CONTAINMENT_JOIN_H_
#define SPATIALSKETCH_EXACT_CONTAINMENT_JOIN_H_

#include <cstdint>
#include <vector>

#include "src/geom/box.h"

namespace spatialsketch {

/// |{(r, s) in R x S : l_s <= l_r and u_r <= u_s}| for 1-d intervals.
uint64_t ExactContainmentCount1D(const std::vector<Box>& r,
                                 const std::vector<Box>& s);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_EXACT_CONTAINMENT_JOIN_H_
