// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Exact eps-join cardinality for 2-d point sets under L-infinity distance
// (Definition 2): |{(a, b) : dist_inf(a, b) <= eps}|. Equivalent to
// counting containments of A-points in the side-2eps squares centered at
// B-points (Section 6.3), which a plane sweep counts in O(N log N).

#ifndef SPATIALSKETCH_EXACT_EPS_JOIN_H_
#define SPATIALSKETCH_EXACT_EPS_JOIN_H_

#include <cstdint>
#include <vector>

#include "src/geom/box.h"

namespace spatialsketch {

/// Exact 2-d eps-join count. Inputs are degenerate boxes (points).
uint64_t ExactEpsJoinCount2D(const std::vector<Box>& a,
                             const std::vector<Box>& b, Coord eps);

/// Expand point set B into the closed L-infinity eps-squares B' of
/// Section 6.3, clamped to the domain [0, 2^log2_size). Containment of an
/// in-domain point in the clamped square is equivalent to the distance
/// predicate.
std::vector<Box> ExpandEpsSquares(const std::vector<Box>& b, uint32_t dims,
                                  Coord eps, uint32_t log2_size);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_EXACT_EPS_JOIN_H_
