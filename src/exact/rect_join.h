// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Exact 2-d rectangle-join cardinality via plane sweep: rectangles are
// activated in order of their lower x; when an object of one set is
// activated, the active objects of the other set whose y-ranges strictly
// overlap it are counted with two Fenwick trees (total minus the two
// disjoint y-failure events). O((|R|+|S|) log(|R|+|S|) + N log n_y).
// Used as ground truth for the Figure 5/6/9/10/11 benchmarks.

#ifndef SPATIALSKETCH_EXACT_RECT_JOIN_H_
#define SPATIALSKETCH_EXACT_RECT_JOIN_H_

#include <cstdint>
#include <vector>

#include "src/geom/box.h"

namespace spatialsketch {

/// |R join_o S| for 2-d rectangle sets under strict Definition-1 overlap.
/// Rectangles must be non-degenerate in both dimensions.
uint64_t ExactRectJoinCount(const std::vector<Box>& r,
                            const std::vector<Box>& s);

/// Grid-partitioned counting join: an independently-implemented exact
/// algorithm (each overlapping pair is attributed to the unique grid cell
/// containing the lower corner of its intersection). Cross-checks the
/// sweep in the test suite; also handles d in {1, 2, 3, 4}.
uint64_t GridJoinCount(const std::vector<Box>& r, const std::vector<Box>& s,
                       uint32_t dims, uint32_t cells_per_dim);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_EXACT_RECT_JOIN_H_
