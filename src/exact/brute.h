// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// O(|R|*|S|) reference implementations of every query the library
// estimates. These define ground truth in the test suite and back the
// faster algorithms' property tests; they are also usable directly for
// small datasets.

#ifndef SPATIALSKETCH_EXACT_BRUTE_H_
#define SPATIALSKETCH_EXACT_BRUTE_H_

#include <cstdint>
#include <vector>

#include "src/geom/box.h"

namespace spatialsketch {

/// |R join_o S| under strict Definition-1 overlap.
uint64_t BruteJoinCount(const std::vector<Box>& r, const std::vector<Box>& s,
                        uint32_t dims);

/// |R join+_o S| under extended Definition-4 overlap (boundaries count).
uint64_t BruteExtendedJoinCount(const std::vector<Box>& r,
                                const std::vector<Box>& s, uint32_t dims);

/// Containment join |{(r, s) : r contained in s}| (Appendix B.2).
uint64_t BruteContainmentCount(const std::vector<Box>& r,
                               const std::vector<Box>& s, uint32_t dims);

/// eps-join of point sets under L-infinity distance (Definition 2).
uint64_t BruteEpsJoinCount(const std::vector<Box>& a,
                           const std::vector<Box>& b, uint32_t dims,
                           Coord eps);

/// Range query |Q(q, R)| (Definition 3, strict overlap semantics).
uint64_t BruteRangeCount(const std::vector<Box>& r, const Box& q,
                         uint32_t dims);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_EXACT_BRUTE_H_
