#include "src/exact/rect_join.h"

#include <algorithm>
#include <queue>

#include "src/common/macros.h"
#include "src/exact/fenwick.h"

namespace spatialsketch {

namespace {

struct Entry {
  Coord x_lo;
  Coord x_hi;
  Coord y_lo;
  Coord y_hi;
  uint32_t set;  // 0 = R, 1 = S
};

struct ExpiryOrder {
  bool operator()(const Entry* a, const Entry* b) const {
    return a->x_hi > b->x_hi;  // min-heap on upper x
  }
};

}  // namespace

uint64_t ExactRectJoinCount(const std::vector<Box>& r,
                            const std::vector<Box>& s) {
  if (r.empty() || s.empty()) return 0;

  std::vector<Entry> entries;
  entries.reserve(r.size() + s.size());
  Coord max_y = 0;
  auto add = [&](const std::vector<Box>& v, uint32_t set) {
    for (const Box& b : v) {
      SKETCH_DCHECK(b.lo[0] < b.hi[0] && b.lo[1] < b.hi[1]);
      entries.push_back({b.lo[0], b.hi[0], b.lo[1], b.hi[1], set});
      max_y = std::max(max_y, b.hi[1]);
    }
  };
  add(r, 0);
  add(s, 1);

  // Activation order: increasing lower x. Ties are harmless — when the
  // second of an equal-lower pair activates, the first is still active
  // (its upper x exceeds the shared lower x since it is non-degenerate),
  // so every cross pair is examined exactly once.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.x_lo < b.x_lo; });

  // Per set: active-count Fenwicks over lower/upper y.
  Fenwick lower[2] = {Fenwick(max_y + 1), Fenwick(max_y + 1)};
  Fenwick upper[2] = {Fenwick(max_y + 1), Fenwick(max_y + 1)};

  std::priority_queue<const Entry*, std::vector<const Entry*>, ExpiryOrder>
      expiry;

  uint64_t count = 0;
  for (const Entry& e : entries) {
    // Deactivate everything that ends at or before this activation: the
    // strict x-overlap condition needs x_hi > e.x_lo.
    while (!expiry.empty() && expiry.top()->x_hi <= e.x_lo) {
      const Entry* dead = expiry.top();
      expiry.pop();
      lower[dead->set].Add(dead->y_lo, -1);
      upper[dead->set].Add(dead->y_hi, -1);
    }
    const uint32_t other = 1 - e.set;
    const int64_t active = lower[other].total();
    // y-overlap fails iff the active object ends at/below our lower y or
    // starts at/above our upper y; the two events are disjoint for
    // non-degenerate rectangles.
    const int64_t ends_below = upper[other].PrefixCount(e.y_lo);
    const int64_t starts_above =
        active - (e.y_hi == 0 ? 0 : lower[other].PrefixCount(e.y_hi - 1));
    count += static_cast<uint64_t>(active - ends_below - starts_above);

    lower[e.set].Add(e.y_lo, +1);
    upper[e.set].Add(e.y_hi, +1);
    expiry.push(&e);
  }
  return count;
}

uint64_t GridJoinCount(const std::vector<Box>& r, const std::vector<Box>& s,
                       uint32_t dims, uint32_t cells_per_dim) {
  SKETCH_CHECK(dims >= 1 && dims <= kMaxDims);
  SKETCH_CHECK(cells_per_dim >= 1);
  if (r.empty() || s.empty()) return 0;

  Coord max_c = 0;
  for (const auto* v : {&r, &s}) {
    for (const Box& b : *v) {
      for (uint32_t i = 0; i < dims; ++i) max_c = std::max(max_c, b.hi[i]);
    }
  }
  const Coord width = max_c / cells_per_dim + 1;

  auto cell_of = [&](Coord x) { return x / width; };
  auto flat = [&](const std::array<Coord, kMaxDims>& cell) {
    uint64_t f = 0;
    for (uint32_t i = 0; i < dims; ++i) f = f * cells_per_dim + cell[i];
    return f;
  };

  uint64_t total_cells = 1;
  for (uint32_t i = 0; i < dims; ++i) total_cells *= cells_per_dim;

  // Per-cell object lists, built by rasterizing each box over the cells it
  // touches.
  std::vector<std::vector<uint32_t>> cells_r(total_cells);
  std::vector<std::vector<uint32_t>> cells_s(total_cells);
  auto rasterize = [&](const std::vector<Box>& v,
                       std::vector<std::vector<uint32_t>>* cells) {
    for (uint32_t idx = 0; idx < v.size(); ++idx) {
      const Box& b = v[idx];
      std::array<Coord, kMaxDims> lo_cell{};
      std::array<Coord, kMaxDims> hi_cell{};
      for (uint32_t i = 0; i < dims; ++i) {
        lo_cell[i] = cell_of(b.lo[i]);
        hi_cell[i] = cell_of(b.hi[i]);
      }
      std::array<Coord, kMaxDims> cur = lo_cell;
      while (true) {
        (*cells)[flat(cur)].push_back(idx);
        uint32_t i = 0;
        for (; i < dims; ++i) {
          if (cur[i] < hi_cell[i]) {
            ++cur[i];
            for (uint32_t j = 0; j < i; ++j) cur[j] = lo_cell[j];
            break;
          }
        }
        if (i == dims) break;
      }
    }
  };
  rasterize(r, &cells_r);
  rasterize(s, &cells_s);

  // Each overlapping pair is counted in the unique cell that owns the
  // lower corner of the pair's intersection.
  uint64_t count = 0;
  for (uint64_t c = 0; c < total_cells; ++c) {
    if (cells_r[c].empty() || cells_s[c].empty()) continue;
    for (uint32_t ir : cells_r[c]) {
      for (uint32_t is : cells_s[c]) {
        const Box& rb = r[ir];
        const Box& sb = s[is];
        if (!Overlaps(rb, sb, dims)) continue;
        uint64_t owner = 0;
        for (uint32_t i = 0; i < dims; ++i) {
          const Coord corner = std::max(rb.lo[i], sb.lo[i]);
          owner = owner * cells_per_dim + cell_of(corner);
        }
        if (owner == c) ++count;
      }
    }
  }
  return count;
}

}  // namespace spatialsketch
