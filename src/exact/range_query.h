// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Exact range-query cardinalities (Definition 3) plus the alternative
// counting identity behind the Lemma 9 estimator: a 1-d interval [a, b]
// overlaps query [u, v] iff its upper endpoint lies in [u, v] or v lies in
// [a, b] — two mutually exclusive, exhaustive events (under Assumption 1).

#ifndef SPATIALSKETCH_EXACT_RANGE_QUERY_H_
#define SPATIALSKETCH_EXACT_RANGE_QUERY_H_

#include <cstdint>
#include <vector>

#include "src/geom/box.h"

namespace spatialsketch {

/// |Q(q, R)| by linear scan (strict Definition-1 overlap semantics).
uint64_t ExactRangeCount(const std::vector<Box>& r, const Box& q,
                         uint32_t dims);

/// Closed-overlap variant: counts r whose CLOSED box intersects the closed
/// query box (what the Lemma-9 dyadic counting actually measures). Used to
/// validate the estimator's counting identity.
uint64_t ExactRangeCountClosed(const std::vector<Box>& r, const Box& q,
                               uint32_t dims);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_EXACT_RANGE_QUERY_H_
