#include "src/workload/zipf_boxes.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"
#include "src/common/rng.h"
#include "src/common/zipf.h"

namespace spatialsketch {

std::vector<Box> GenerateSyntheticBoxes(const SyntheticBoxOptions& opt) {
  SKETCH_CHECK(opt.dims >= 1 && opt.dims <= kMaxDims);
  SKETCH_CHECK(opt.log2_domain >= 2 && opt.log2_domain <= 30);
  const Coord n = Coord{1} << opt.log2_domain;
  const double mean_side =
      opt.mean_side_factor * std::sqrt(static_cast<double>(n));

  Rng rng(opt.seed);
  ZipfSampler zipf(n, opt.zipf_z);

  std::vector<Box> out;
  out.reserve(opt.count);
  for (uint64_t i = 0; i < opt.count; ++i) {
    Box b;
    for (uint32_t d = 0; d < opt.dims; ++d) {
      const Coord lo = zipf.Sample(&rng);
      // Geometric side length with the requested mean, at least 1 so the
      // box is non-degenerate.
      const double u = std::max(rng.NextDouble(), 1e-12);
      Coord len = static_cast<Coord>(-mean_side * std::log(u));
      if (len < 1) len = 1;
      Coord hi = lo + len;
      if (hi > n - 1) hi = n - 1;
      b.lo[d] = hi > lo ? lo : (lo > 0 ? lo - 1 : 0);
      b.hi[d] = hi > lo ? hi : lo + (lo > 0 ? 0 : 1);
      SKETCH_DCHECK(b.lo[d] < b.hi[d]);
    }
    out.push_back(b);
  }
  return out;
}

}  // namespace spatialsketch
