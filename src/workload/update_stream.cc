#include "src/workload/update_stream.h"

#include <algorithm>
#include <cstddef>

#include "src/common/rng.h"

namespace spatialsketch {

std::vector<Update> MakeUpdateStream(const std::vector<Box>& final_boxes,
                                     const std::vector<Box>& transient_boxes,
                                     const UpdateStreamOptions& opt) {
  Rng rng(opt.seed);
  std::vector<Update> stream;
  stream.reserve(final_boxes.size() + 2 * transient_boxes.size());
  for (const Box& b : final_boxes) {
    stream.push_back({Update::Op::kInsert, b});
  }
  for (const Box& b : transient_boxes) {
    stream.push_back({Update::Op::kInsert, b});
  }
  // Shuffle all inserts, then weave each transient delete in at a random
  // position AFTER its insert.
  for (size_t i = stream.size(); i > 1; --i) {
    std::swap(stream[i - 1], stream[rng.Uniform(i)]);
  }
  for (const Box& b : transient_boxes) {
    // Find the insert position of b lazily: appending the delete at a
    // random position after the matching insert keeps the stream valid.
    size_t pos = 0;
    for (size_t i = 0; i < stream.size(); ++i) {
      if (stream[i].op == Update::Op::kInsert && stream[i].box == b) {
        pos = i;
        break;
      }
    }
    const size_t at = pos + 1 + rng.Uniform(stream.size() - pos);
    stream.insert(stream.begin() + static_cast<ptrdiff_t>(at),
                  {Update::Op::kDelete, b});
  }
  return stream;
}

}  // namespace spatialsketch
