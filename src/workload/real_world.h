// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Stand-ins for the paper's real-life datasets (Section 7.3): LANDO (land
// ownership), LANDC (land cover) and SOIL (soils) of Wyoming at 1:10^6
// scale, with the paper's cardinalities (33860, 14731, 29662). The actual
// shapefiles are not redistributable; these generators synthesize
// GIS-layer-like MBR sets over one shared "state" terrain (see DESIGN.md,
// Substitutions): ownership parcels are many and small, land-cover
// polygons mid-sized, soil polygons fewer and larger. All three layers
// share cluster geography so their pairwise joins are selective but
// non-trivial, the regime where bucket-model baselines mis-estimate.

#ifndef SPATIALSKETCH_WORKLOAD_REAL_WORLD_H_
#define SPATIALSKETCH_WORKLOAD_REAL_WORLD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/geom/box.h"

namespace spatialsketch {

enum class RealWorldLayer {
  kLando,  ///< land ownership, 33860 objects
  kLandc,  ///< land cover, 14731 objects
  kSoil,   ///< soils, 29662 objects
};

/// Domain bits shared by all real-world-like layers.
inline constexpr uint32_t kRealWorldLog2Domain = 14;

/// Paper cardinality of a layer.
uint64_t RealWorldLayerCount(RealWorldLayer layer);

/// Layer name ("LANDO" etc.) for reporting.
std::string RealWorldLayerName(RealWorldLayer layer);

/// Deterministically generate a layer.
std::vector<Box> GenerateRealWorldLayer(RealWorldLayer layer);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_WORKLOAD_REAL_WORLD_H_
