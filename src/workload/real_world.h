// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Stand-ins for the paper's real-life datasets (Section 7.3): LANDO (land
// ownership), LANDC (land cover) and SOIL (soils) of Wyoming at 1:10^6
// scale, with the paper's cardinalities (33860, 14731, 29662). The actual
// shapefiles are not redistributable; these generators synthesize
// GIS-layer-like MBR sets over one shared "state" terrain (see DESIGN.md,
// Substitutions): ownership parcels are many and small, land-cover
// polygons mid-sized, soil polygons fewer and larger. All three layers
// share cluster geography so their pairwise joins are selective but
// non-trivial, the regime where bucket-model baselines mis-estimate.

#ifndef SPATIALSKETCH_WORKLOAD_REAL_WORLD_H_
#define SPATIALSKETCH_WORKLOAD_REAL_WORLD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/geom/box.h"

namespace spatialsketch {

/// The three GIS-like layers of the shared synthetic "state" terrain.
/// Per-layer shape parameters (cluster count, size distribution,
/// background fraction) are fixed in real_world.cc; they are part of the
/// workload's identity, not knobs.
enum class RealWorldLayer {
  kLando,  ///< land ownership: 33860 small, tightly clustered parcels
  kLandc,  ///< land cover: 14731 mid-sized, moderately clustered polygons
  kSoil,   ///< soils: 29662 larger polygons in fewer clusters
};

/// Domain bits shared by all real-world-like layers: every layer lives in
/// the 2-d domain [0, 2^14)^2.
inline constexpr uint32_t kRealWorldLog2Domain = 14;

/// Reproducibility/scale knobs of a layer generation. The default-value
/// options reproduce the CANONICAL layers — the exact streams the
/// committed accuracy baselines and the paper-cardinality tests pin.
struct RealWorldOptions {
  /// Additive offset applied to the layer's fixed internal seed
  /// (terrain AND per-layer randomness move together, so differently
  /// seeded layer sets are independent "states" that still share their
  /// cluster geography within one set). 0 = the canonical layers.
  uint64_t seed = 0;
  /// Multiplies the paper cardinality of the layer (result floored at
  /// 16 objects); 1.0 = the paper's object counts. The shrunk accuracy
  /// test tier uses < 1 for fast exact-join references.
  double scale = 1.0;
};

/// Paper cardinality of a layer (the scale = 1 object count).
uint64_t RealWorldLayerCount(RealWorldLayer layer);

/// Layer name ("LANDO" / "LANDC" / "SOIL") for reporting.
std::string RealWorldLayerName(RealWorldLayer layer);

/// Deterministically generate a layer under explicit options.
std::vector<Box> GenerateRealWorldLayer(RealWorldLayer layer,
                                        const RealWorldOptions& opt);

/// Canonical layer generation: GenerateRealWorldLayer(layer, {}).
std::vector<Box> GenerateRealWorldLayer(RealWorldLayer layer);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_WORKLOAD_REAL_WORLD_H_
