// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Clustered rectangle generator: a Gaussian-mixture "terrain" of cluster
// centers with log-normal object sizes plus a uniform background. Used to
// synthesize GIS-layer-like datasets (many small adjacent parcels, a few
// large regions, strong spatial skew). Layers generated with the same
// terrain_seed share cluster geography, so cross-layer joins behave like
// joins of thematic layers of one map.

#ifndef SPATIALSKETCH_WORKLOAD_CLUSTERED_BOXES_H_
#define SPATIALSKETCH_WORKLOAD_CLUSTERED_BOXES_H_

#include <cstdint>
#include <vector>

#include "src/geom/box.h"

namespace spatialsketch {

/// Distribution parameters of one clustered 2-d layer. The terrain
/// (num_clusters Gaussian cluster centers with per-cluster weights and
/// spread cluster_sigma_frac * domain) is drawn from terrain_seed ALONE;
/// objects then mix cluster draws with a background_fraction of
/// uniformly-placed boxes, with log-normal side lengths
/// (exp(N(ln(median_side), side_log_sigma^2)), clamped to the domain).
/// Two layers with equal terrain_seed but different layer_seed are
/// independent samples over the SAME geography — the cross-layer join
/// regime the real-world figures need. Identical options reproduce the
/// identical stream.
struct ClusteredBoxOptions {
  uint32_t log2_domain = 14;  ///< 2-d domain [0, 2^log2_domain)^2
  uint64_t count = 30000;     ///< rectangles generated
  uint32_t num_clusters = 64;  ///< Gaussian mixture components
  double cluster_sigma_frac = 0.02;  ///< cluster spread / domain size
  double median_side = 48.0;         ///< log-normal size median
  double side_log_sigma = 0.9;       ///< log-normal sigma (in ln units)
  double background_fraction = 0.1;  ///< uniform background objects
  uint64_t terrain_seed = 7;  ///< shared across layers of one "map"
  uint64_t layer_seed = 1;    ///< per-layer randomness
};

/// Generate `count` non-degenerate rectangles. Deterministic.
std::vector<Box> GenerateClusteredBoxes(const ClusteredBoxOptions& opt);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_WORKLOAD_CLUSTERED_BOXES_H_
