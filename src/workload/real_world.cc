#include "src/workload/real_world.h"

#include <algorithm>

#include "src/common/macros.h"
#include "src/workload/clustered_boxes.h"

namespace spatialsketch {

namespace {
// One shared terrain: all layers describe the same "state".
constexpr uint64_t kTerrainSeed = 90210;
}  // namespace

uint64_t RealWorldLayerCount(RealWorldLayer layer) {
  switch (layer) {
    case RealWorldLayer::kLando:
      return 33860;
    case RealWorldLayer::kLandc:
      return 14731;
    case RealWorldLayer::kSoil:
      return 29662;
  }
  SKETCH_CHECK(false);
  return 0;
}

std::string RealWorldLayerName(RealWorldLayer layer) {
  switch (layer) {
    case RealWorldLayer::kLando:
      return "LANDO";
    case RealWorldLayer::kLandc:
      return "LANDC";
    case RealWorldLayer::kSoil:
      return "SOIL";
  }
  return "?";
}

std::vector<Box> GenerateRealWorldLayer(RealWorldLayer layer,
                                        const RealWorldOptions& rw) {
  ClusteredBoxOptions opt;
  opt.log2_domain = kRealWorldLog2Domain;
  opt.terrain_seed = kTerrainSeed + rw.seed;
  opt.count = std::max<uint64_t>(
      16, static_cast<uint64_t>(
              static_cast<double>(RealWorldLayerCount(layer)) * rw.scale));
  switch (layer) {
    case RealWorldLayer::kLando:
      // Ownership parcels: many, small-to-mid, tightly clustered.
      opt.num_clusters = 96;
      opt.median_side = 70.0;
      opt.side_log_sigma = 0.8;
      opt.cluster_sigma_frac = 0.035;
      opt.background_fraction = 0.15;
      opt.layer_seed = 1001;
      break;
    case RealWorldLayer::kLandc:
      // Land-cover polygons: mid-sized, moderately clustered.
      opt.num_clusters = 48;
      opt.median_side = 170.0;
      opt.side_log_sigma = 1.0;
      opt.cluster_sigma_frac = 0.06;
      opt.background_fraction = 0.25;
      opt.layer_seed = 2002;
      break;
    case RealWorldLayer::kSoil:
      // Soil polygons: fewer clusters, larger regions.
      opt.num_clusters = 40;
      opt.median_side = 210.0;
      opt.side_log_sigma = 1.1;
      opt.cluster_sigma_frac = 0.08;
      opt.background_fraction = 0.20;
      opt.layer_seed = 3003;
      break;
  }
  opt.layer_seed += rw.seed;
  return GenerateClusteredBoxes(opt);
}

std::vector<Box> GenerateRealWorldLayer(RealWorldLayer layer) {
  return GenerateRealWorldLayer(layer, RealWorldOptions{});
}

}  // namespace spatialsketch
