// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Synthetic workloads of Section 7.1: d-dimensional boxes whose
// per-dimension projections are generated independently, lower endpoints
// Zipf-distributed with parameter z (z=0 is uniform), side lengths with
// mean O(sqrt(domain)).

#ifndef SPATIALSKETCH_WORKLOAD_ZIPF_BOXES_H_
#define SPATIALSKETCH_WORKLOAD_ZIPF_BOXES_H_

#include <cstdint>
#include <vector>

#include "src/geom/box.h"

namespace spatialsketch {

/// Distribution parameters of a Section-7.1 synthetic box set. Every
/// dimension is generated independently: the lower endpoint of each
/// projection is drawn Zipf(zipf_z) over the domain (z = 0 degenerates to
/// uniform; larger z piles lower endpoints onto low coordinates — the
/// "skewed" workloads of Figures 6-8), and the side length is drawn
/// geometrically with mean mean_side_factor * sqrt(2^log2_domain), then
/// clamped so the box stays inside the domain and non-degenerate.
/// Identical options (seed included) reproduce the identical stream.
struct SyntheticBoxOptions {
  uint32_t dims = 2;           ///< box dimensionality (1..kMaxDims)
  uint32_t log2_domain = 14;   ///< domain [0, 2^log2_domain) per dimension
  double zipf_z = 0.0;         ///< lower-endpoint skew; 0 = uniform
  double mean_side_factor = 1.0;  ///< mean side = factor * sqrt(domain)
  uint64_t count = 10000;      ///< boxes generated
  uint64_t seed = 1;           ///< PRNG seed; pins the whole stream
};

/// Generate `count` non-degenerate boxes. Deterministic in the options.
std::vector<Box> GenerateSyntheticBoxes(const SyntheticBoxOptions& opt);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_WORKLOAD_ZIPF_BOXES_H_
