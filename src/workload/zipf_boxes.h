// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Synthetic workloads of Section 7.1: d-dimensional boxes whose
// per-dimension projections are generated independently, lower endpoints
// Zipf-distributed with parameter z (z=0 is uniform), side lengths with
// mean O(sqrt(domain)).

#ifndef SPATIALSKETCH_WORKLOAD_ZIPF_BOXES_H_
#define SPATIALSKETCH_WORKLOAD_ZIPF_BOXES_H_

#include <cstdint>
#include <vector>

#include "src/geom/box.h"

namespace spatialsketch {

struct SyntheticBoxOptions {
  uint32_t dims = 2;
  uint32_t log2_domain = 14;   ///< domain [0, 2^log2_domain) per dimension
  double zipf_z = 0.0;         ///< lower-endpoint skew; 0 = uniform
  double mean_side_factor = 1.0;  ///< mean side = factor * sqrt(domain)
  uint64_t count = 10000;
  uint64_t seed = 1;
};

/// Generate `count` non-degenerate boxes. Deterministic in the options.
std::vector<Box> GenerateSyntheticBoxes(const SyntheticBoxOptions& opt);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_WORKLOAD_ZIPF_BOXES_H_
