// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Insert/delete update streams: the sketches are linear projections, so
// they track arbitrary mixed workloads (the paper's "incremental
// construction under insertion and deletion"). This generator interleaves
// the inserts of a final dataset with transient objects that are inserted
// and later deleted; after replay the sketch state must equal a fresh
// build of the final dataset (tested bit-exactly).

#ifndef SPATIALSKETCH_WORKLOAD_UPDATE_STREAM_H_
#define SPATIALSKETCH_WORKLOAD_UPDATE_STREAM_H_

#include <cstdint>
#include <vector>

#include "src/geom/box.h"

namespace spatialsketch {

/// One stream event: insert or delete one box.
struct Update {
  /// The two stream operations.
  enum class Op {
    kInsert,  ///< add the box to the dataset
    kDelete   ///< remove a previously inserted box
  };
  Op op;    ///< the operation applied to `box`
  Box box;  ///< the object inserted or deleted
};

/// Shuffle/churn parameters of MakeUpdateStream. Identical options over
/// identical inputs reproduce the identical stream.
struct UpdateStreamOptions {
  /// Fraction of the supplied transient pool actually woven into the
  /// stream as insert-then-delete pairs, relative to the final dataset
  /// size (each transient object contributes 2 events).
  double churn_factor = 0.5;
  uint64_t seed = 1;  ///< PRNG seed for interleaving order
};

/// Build a randomized update stream whose net effect is exactly
/// `final_boxes` (every transient insert has a matching later delete).
std::vector<Update> MakeUpdateStream(const std::vector<Box>& final_boxes,
                                     const std::vector<Box>& transient_boxes,
                                     const UpdateStreamOptions& opt);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_WORKLOAD_UPDATE_STREAM_H_
