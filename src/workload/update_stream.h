// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Insert/delete update streams: the sketches are linear projections, so
// they track arbitrary mixed workloads (the paper's "incremental
// construction under insertion and deletion"). This generator interleaves
// the inserts of a final dataset with transient objects that are inserted
// and later deleted; after replay the sketch state must equal a fresh
// build of the final dataset (tested bit-exactly).

#ifndef SPATIALSKETCH_WORKLOAD_UPDATE_STREAM_H_
#define SPATIALSKETCH_WORKLOAD_UPDATE_STREAM_H_

#include <cstdint>
#include <vector>

#include "src/geom/box.h"

namespace spatialsketch {

struct Update {
  enum class Op { kInsert, kDelete } op;
  Box box;
};

struct UpdateStreamOptions {
  double churn_factor = 0.5;  ///< transient objects / final objects
  uint64_t seed = 1;
};

/// Build a randomized update stream whose net effect is exactly
/// `final_boxes` (every transient insert has a matching later delete).
std::vector<Update> MakeUpdateStream(const std::vector<Box>& final_boxes,
                                     const std::vector<Box>& transient_boxes,
                                     const UpdateStreamOptions& opt);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_WORKLOAD_UPDATE_STREAM_H_
