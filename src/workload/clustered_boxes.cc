#include "src/workload/clustered_boxes.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"
#include "src/common/rng.h"

namespace spatialsketch {

std::vector<Box> GenerateClusteredBoxes(const ClusteredBoxOptions& opt) {
  SKETCH_CHECK(opt.log2_domain >= 6 && opt.log2_domain <= 30);
  SKETCH_CHECK(opt.num_clusters >= 1);
  const double n = std::ldexp(1.0, static_cast<int>(opt.log2_domain));
  const Coord max_coord = (Coord{1} << opt.log2_domain) - 1;

  // Terrain: cluster centers and relative weights shared by every layer
  // generated with the same terrain seed.
  Rng terrain(opt.terrain_seed);
  struct Cluster {
    double cx, cy, weight;
  };
  std::vector<Cluster> clusters(opt.num_clusters);
  double weight_sum = 0.0;
  for (auto& c : clusters) {
    c.cx = terrain.NextDouble() * n;
    c.cy = terrain.NextDouble() * n;
    // Heavy-tailed cluster popularity.
    c.weight = std::pow(terrain.NextDouble(), 2.0) + 0.05;
    weight_sum += c.weight;
  }

  Rng rng(opt.layer_seed);
  const double sigma = opt.cluster_sigma_frac * n;

  std::vector<Box> out;
  out.reserve(opt.count);
  while (out.size() < opt.count) {
    double cx, cy;
    if (rng.NextDouble() < opt.background_fraction) {
      cx = rng.NextDouble() * n;
      cy = rng.NextDouble() * n;
    } else {
      // Weighted cluster choice.
      double pick = rng.NextDouble() * weight_sum;
      size_t ci = 0;
      while (ci + 1 < clusters.size() && pick > clusters[ci].weight) {
        pick -= clusters[ci].weight;
        ++ci;
      }
      cx = clusters[ci].cx + rng.NextGaussian() * sigma;
      cy = clusters[ci].cy + rng.NextGaussian() * sigma;
    }
    const double w =
        opt.median_side * std::exp(rng.NextGaussian() * opt.side_log_sigma);
    const double h =
        opt.median_side * std::exp(rng.NextGaussian() * opt.side_log_sigma);

    auto clamp = [&](double v) {
      if (v < 0.0) return Coord{0};
      if (v > static_cast<double>(max_coord)) return max_coord;
      return static_cast<Coord>(v);
    };
    Box b;
    b.lo[0] = clamp(cx - w / 2);
    b.hi[0] = clamp(cx + w / 2);
    b.lo[1] = clamp(cy - h / 2);
    b.hi[1] = clamp(cy + h / 2);
    // Enforce non-degeneracy (objects fully clamped to an edge collapse).
    if (b.lo[0] >= b.hi[0]) {
      if (b.hi[0] == max_coord) {
        b.lo[0] = max_coord - 1;
      } else {
        b.hi[0] = b.lo[0] + 1;
      }
    }
    if (b.lo[1] >= b.hi[1]) {
      if (b.hi[1] == max_coord) {
        b.lo[1] = max_coord - 1;
      } else {
        b.hi[1] = b.lo[1] + 1;
      }
    }
    out.push_back(b);
  }
  return out;
}

}  // namespace spatialsketch
