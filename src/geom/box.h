// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// d-dimensional axis-aligned boxes over the discrete coordinate space
// (Section 2.1). A Box stores per-dimension closed ranges [lo, hi]; the
// number of active dimensions is carried by the dataset / query context
// rather than by every box (they are bulk data).

#ifndef SPATIALSKETCH_GEOM_BOX_H_
#define SPATIALSKETCH_GEOM_BOX_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/common/macros.h"

namespace spatialsketch {

using Coord = uint64_t;

/// Maximum dimensionality supported by the library. The paper's analysis
/// covers any d; 4 dimensions cover the evaluated workloads (1-3) plus the
/// 2d-dimensional lift used by containment joins of intervals.
inline constexpr uint32_t kMaxDims = 4;

/// Axis-aligned hyper-rectangle with closed per-dimension ranges.
struct Box {
  std::array<Coord, kMaxDims> lo{};
  std::array<Coord, kMaxDims> hi{};

  friend bool operator==(const Box& a, const Box& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// 1-d interval [l, u].
inline Box MakeInterval(Coord l, Coord u) {
  Box b;
  b.lo[0] = l;
  b.hi[0] = u;
  return b;
}

/// 2-d rectangle [lx, ux] x [ly, uy].
inline Box MakeRect(Coord lx, Coord ux, Coord ly, Coord uy) {
  Box b;
  b.lo[0] = lx;
  b.hi[0] = ux;
  b.lo[1] = ly;
  b.hi[1] = uy;
  return b;
}

/// d-dimensional point.
inline Box MakePoint(std::array<Coord, kMaxDims> coords) {
  Box b;
  b.lo = coords;
  b.hi = coords;
  return b;
}

/// True iff the box is a valid (lo <= hi per dimension) region.
bool IsValid(const Box& b, uint32_t dims);

/// True iff the box is degenerate (zero extent) in some dimension.
/// Degenerate objects cannot contribute to a strict spatial join
/// (Definition 1) and are dropped by the join pipelines.
bool IsDegenerate(const Box& b, uint32_t dims);

/// Strict overlap of Definition 1: interiors intersect; boxes that only
/// touch at a boundary do NOT overlap. Equivalent per dimension to
/// max(lo) < min(hi).
inline bool Overlaps(const Box& a, const Box& b, uint32_t dims) {
  for (uint32_t i = 0; i < dims; ++i) {
    const Coord lo = a.lo[i] > b.lo[i] ? a.lo[i] : b.lo[i];
    const Coord hi = a.hi[i] < b.hi[i] ? a.hi[i] : b.hi[i];
    if (!(lo < hi)) return false;
  }
  return true;
}

/// Extended overlap of Definition 4 (Appendix B.1): non-empty closed
/// intersection; boundary-touching counts. Per dimension max(lo) <= min(hi).
inline bool OverlapsExtended(const Box& a, const Box& b, uint32_t dims) {
  for (uint32_t i = 0; i < dims; ++i) {
    const Coord lo = a.lo[i] > b.lo[i] ? a.lo[i] : b.lo[i];
    const Coord hi = a.hi[i] < b.hi[i] ? a.hi[i] : b.hi[i];
    if (!(lo <= hi)) return false;
  }
  return true;
}

/// Containment (Appendix B.2): inner lies inside outer (closed, per
/// dimension outer.lo <= inner.lo and inner.hi <= outer.hi).
inline bool Contains(const Box& outer, const Box& inner, uint32_t dims) {
  for (uint32_t i = 0; i < dims; ++i) {
    if (!(outer.lo[i] <= inner.lo[i] && inner.hi[i] <= outer.hi[i])) {
      return false;
    }
  }
  return true;
}

/// L-infinity distance between two points (boxes must be degenerate).
Coord LInfDistance(const Box& a, const Box& b, uint32_t dims);

/// Debug rendering, e.g. "[3,7]x[0,2]".
std::string ToString(const Box& b, uint32_t dims);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_GEOM_BOX_H_
