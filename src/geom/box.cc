#include "src/geom/box.h"

#include <cstdio>

namespace spatialsketch {

bool IsValid(const Box& b, uint32_t dims) {
  SKETCH_DCHECK(dims >= 1 && dims <= kMaxDims);
  for (uint32_t i = 0; i < dims; ++i) {
    if (b.lo[i] > b.hi[i]) return false;
  }
  return true;
}

bool IsDegenerate(const Box& b, uint32_t dims) {
  for (uint32_t i = 0; i < dims; ++i) {
    if (b.lo[i] == b.hi[i]) return true;
  }
  return false;
}

Coord LInfDistance(const Box& a, const Box& b, uint32_t dims) {
  Coord d = 0;
  for (uint32_t i = 0; i < dims; ++i) {
    const Coord lo = a.lo[i] < b.lo[i] ? a.lo[i] : b.lo[i];
    const Coord hi = a.lo[i] < b.lo[i] ? b.lo[i] : a.lo[i];
    const Coord diff = hi - lo;
    if (diff > d) d = diff;
  }
  return d;
}

std::string ToString(const Box& b, uint32_t dims) {
  std::string out;
  char buf[64];
  for (uint32_t i = 0; i < dims; ++i) {
    std::snprintf(buf, sizeof(buf), "%s[%llu,%llu]", i ? "x" : "",
                  static_cast<unsigned long long>(b.lo[i]),
                  static_cast<unsigned long long>(b.hi[i]));
    out += buf;
  }
  return out;
}

}  // namespace spatialsketch
