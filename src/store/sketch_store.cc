#include "src/store/sketch_store.h"

#include <algorithm>
#include <functional>
#include <mutex>
#include <utility>

#include "src/common/crc32c.h"
#include "src/dyadic/endpoint_transform.h"
#include "src/estimators/containment_estimator.h"
#include "src/estimators/eps_join_estimator.h"
#include "src/estimators/join_estimator.h"
#include "src/estimators/range_query_estimator.h"
#include "src/estimators/sizing.h"
#include "src/sketch/self_join.h"
#include "src/sketch/serialize.h"
#include "src/store/durability/recovery.h"
#include "src/store/parallel_ingest.h"

namespace spatialsketch {

namespace {

/// Validate an ORIGINAL-coordinate box against the dataset's original
/// domain and map it into sketch coordinates per the dataset's kind
/// (endpoint transform, eps-square expansion, or containment lift —
/// mirroring the estimator pipelines box for box). Returns OK with
/// *dropped=true (and no *out) for degenerate boxes on the range/join
/// kinds; the point kinds instead REQUIRE degenerate (lo == hi) boxes.
Status MapForIngest(const internal::DatasetState& ds, const Box& box,
                    Box* out, bool* dropped) {
  *dropped = false;
  const StoreSchemaOptions& opt = ds.opt;
  if (!IsValid(box, opt.dims)) {
    return Status::InvalidArgument("box has lo > hi in some dimension");
  }
  const Coord bound = Coord{1} << opt.log2_domain;
  for (uint32_t d = 0; d < opt.dims; ++d) {
    if (box.hi[d] >= bound) {
      return Status::OutOfRange("box exceeds the schema's original domain");
    }
  }
  switch (ds.kind) {
    case DatasetKind::kRange:
    case DatasetKind::kJoinR:
    case DatasetKind::kJoinS:
      if (IsDegenerate(box, opt.dims)) {
        *dropped = true;
        return Status::OK();
      }
      *out = ds.kind == DatasetKind::kJoinS
                 ? EndpointTransform::ShrinkS(box, opt.dims)
                 : EndpointTransform::MapR(box, opt.dims);
      return Status::OK();
    case DatasetKind::kEpsPoints:
    case DatasetKind::kEpsBoxes: {
      for (uint32_t d = 0; d < opt.dims; ++d) {
        if (box.lo[d] != box.hi[d]) {
          return Status::InvalidArgument(
              "point datasets ingest points (lo == hi in every dimension)");
        }
      }
      if (ds.kind == DatasetKind::kEpsPoints) {
        *out = box;
        return Status::OK();
      }
      // The closed L-infinity eps-square around the point, clamped to the
      // domain — the same expansion (and clamp arithmetic) as the eps-join
      // pipeline's ExpandEpsSquares, so counters match it bit for bit.
      const Coord max_coord = bound - 1;
      Box square;
      for (uint32_t d = 0; d < opt.dims; ++d) {
        const Coord p = box.lo[d];
        square.lo[d] = p >= ds.eps ? p - ds.eps : 0;
        square.hi[d] = ds.eps > max_coord - p ? max_coord : p + ds.eps;
      }
      *out = square;
      return Status::OK();
    }
    case DatasetKind::kContainInner:
      *out = LiftInnerToPoint(box, opt.dims);
      return Status::OK();
    case DatasetKind::kContainOuter:
      *out = LiftOuterToBox(box, opt.dims);
      return Status::OK();
  }
  SKETCH_CHECK(false);
  return Status::Internal("unreachable");
}

// Store snapshots wrap the serialize.h sketch blob with a tagged header:
// kJoinR and kJoinS datasets share shape AND schema configuration but
// ingest through different coordinate mappings, so without the kind tag a
// kJoinS snapshot would restore into a kJoinR dataset (and vice versa)
// and silently serve wrong joins. The same goes for the ingest eps of
// kEpsBoxes datasets (the radius is baked into the counters), hence the
// eps field — its addition bumped the version byte from SST1 to SST2.
// SST1 blobs (pre-eps kinds only, so implicitly eps == 0) still restore.
constexpr char kSnapshotMagic[4] = {'S', 'S', 'T', '2'};
constexpr char kSnapshotMagicV1[4] = {'S', 'S', 'T', '1'};
constexpr size_t kSnapshotHeader =
    sizeof(kSnapshotMagic) + 1 + sizeof(uint64_t);
constexpr size_t kSnapshotHeaderV1 = sizeof(kSnapshotMagicV1) + 1;
// SST3 extends the SST2 header with the source counter layout and width
// (counter_store.h) so a snapshot is a self-describing wire artifact:
// kind + eps + layout byte + width byte over the serialize.h blob. The
// tags are provenance — restore re-homes the values into the TARGET
// dataset's configured layout/width — but they make blobs auditable and
// reserve the bytes for a remote reader that wants to mmap the source
// representation. SST2/SST1 blobs still restore.
constexpr char kSnapshotMagicV3[4] = {'S', 'S', 'T', '3'};
constexpr size_t kSnapshotHeaderV3 = kSnapshotHeader + 2;
// SST4 appends a CRC32C of the sketch payload to the SST3 header: kind +
// eps + layout + width + payload CRC over the serialize.h blob. Restore
// verifies it BEFORE deserializing, so a bit-flipped or truncated blob
// (storage rot, a torn copy) fails fast with InvalidArgument instead of
// being decoded — the restore fuzz tests drive exactly this. SST3 and
// older blobs still restore (no CRC to check).
constexpr char kSnapshotMagicV4[4] = {'S', 'S', 'T', '4'};
constexpr size_t kSnapshotHeaderV4 = kSnapshotHeaderV3 + sizeof(uint32_t);

/// Conservative default variance ratio V/Q^2 for the Lemma-1 SLO sizing
/// (DatasetOptions::target_epsilon), per dataset kind: the sizing.h bound
/// with the self-join factors normalized to Q^2 (SJ(R) SJ(S) <= Q^2 holds
/// at the paper's operating points; tenants with pilot estimates pass
/// DatasetOptions::variance_over_q2 instead).
double DefaultVarianceRatio(DatasetKind kind, const StoreSchemaOptions& opt) {
  switch (kind) {
    case DatasetKind::kRange:
      // Range datasets sketch the endpoint-TRANSFORMED domain:
      // log2_domain + 2 bits per dimension (Section 5.2).
      return RangeQueryVarianceBound(1.0, opt.log2_domain + 2);
    case DatasetKind::kJoinR:
    case DatasetKind::kJoinS:
      return JoinVarianceBound(1.0, 1.0, opt.dims);
    case DatasetKind::kEpsPoints:
    case DatasetKind::kEpsBoxes:
      return EpsJoinVarianceBound(1.0, 1.0, opt.dims);
    case DatasetKind::kContainInner:
    case DatasetKind::kContainOuter:
      // Containment joins run over the lifted 2*dims domain.
      return JoinVarianceBound(1.0, 1.0, 2 * opt.dims);
  }
  SKETCH_CHECK(false);
  return 1.0;
}

/// Actual counter bytes of k1*k2 instances under the dataset's layout and
/// width (blocked layouts pad the last block to 64 lanes) — the same
/// accounting CounterStore::MemoryBytes reports after creation.
uint64_t CounterBytesFor(uint64_t instances, uint32_t shape_words,
                         const DatasetOptions& dopt) {
  const uint64_t width = dopt.counter_width == CounterWidth::kI32 ? 4 : 8;
  const uint64_t lanes = dopt.layout == CounterLayout::kBlocked
                             ? (instances + 63) / 64 * 64
                             : instances;
  return lanes * shape_words * width;
}

}  // namespace

SketchStore::SketchStore() = default;

SketchStore::~SketchStore() {
  // Open handles keep DatasetStates alive past this destructor but reach
  // the store only AFTER their liveness check; marking every state
  // dropped here turns any later handle operation into a clean
  // FailedPrecondition instead of a use-after-free of the store.
  std::unique_lock<FairSharedMutex> lock(registry_mu_);
  for (auto& [name, dataset] : datasets_) {
    dataset->dropped.store(true, std::memory_order_release);
  }
}

Status SketchStore::RegisterSchema(const std::string& name,
                                   const StoreSchemaOptions& opt) {
  auto transformed =
      MakeTransformedSchema(opt.dims, opt.log2_domain, opt.max_level,
                            /*per_dim_caps=*/nullptr, opt.k1, opt.k2, opt.seed);
  if (!transformed.ok()) return transformed.status();

  auto commit = CommitShared();
  std::unique_lock<FairSharedMutex> lock(registry_mu_);
  if (schemas_.find(name) != schemas_.end()) {
    return Status::InvalidArgument("schema '" + name + "' already exists");
  }
  // Log AFTER the duplicate check (a rejected registration must not reach
  // the WAL) and BEFORE the map insert (log-before-apply). No-op while
  // replaying.
  if (durability_ != nullptr) {
    SKETCH_RETURN_NOT_OK(durability_->LogRegisterSchema(name, opt));
  }
  schemas_.emplace(name, SchemaEntry{opt, *transformed, /*plain=*/nullptr,
                                     /*lifted=*/nullptr});
  return Status::OK();
}

Result<SchemaPtr> SketchStore::EnsureSchemaVariant(
    const std::string& schema_name, bool lifted) {
  StoreSchemaOptions opt;
  {
    std::shared_lock<FairSharedMutex> lock(registry_mu_);
    auto it = schemas_.find(schema_name);
    if (it == schemas_.end()) {
      return Status::InvalidArgument("unknown schema '" + schema_name + "'");
    }
    const SchemaPtr& existing = lifted ? it->second.lifted : it->second.plain;
    if (existing != nullptr) return existing;
    opt = it->second.opt;
  }

  // Build the variant OFF the registry lock — exactly as the eps-join /
  // containment pipelines build their schemas (same per-dimension
  // options, k1/k2, and seed), so store-served estimates are
  // bit-identical to the pipelines' under equal configuration. The
  // containment kinds lift to 2*dims sketch dimensions.
  SchemaOptions so;
  so.dims = lifted ? 2 * opt.dims : opt.dims;
  for (uint32_t d = 0; d < so.dims; ++d) {
    so.domains[d].log2_size = opt.log2_domain;
    so.domains[d].max_level = opt.max_level;
  }
  so.k1 = opt.k1;
  so.k2 = opt.k2;
  so.seed = opt.seed;
  auto created = SketchSchema::Create(so);
  if (!created.ok()) return created.status();

  // Publish under the exclusive lock; if another thread won the race the
  // map's instance wins (datasets under one schema name must SHARE the
  // variant instance to stay joinable — pointer equality is the
  // estimators' compatibility test).
  std::unique_lock<FairSharedMutex> lock(registry_mu_);
  auto it = schemas_.find(schema_name);
  if (it == schemas_.end()) {
    return Status::InvalidArgument("unknown schema '" + schema_name + "'");
  }
  SchemaPtr& slot = lifted ? it->second.lifted : it->second.plain;
  if (slot == nullptr) slot = std::move(*created);
  return slot;
}

Result<SchemaPtr> SketchStore::EnsureSizedVariant(
    const std::string& schema_name, int variant_class, uint32_t k1,
    uint32_t k2) {
  const auto key = std::make_tuple(variant_class, k1, k2);
  StoreSchemaOptions opt;
  {
    std::shared_lock<FairSharedMutex> lock(registry_mu_);
    auto it = schemas_.find(schema_name);
    if (it == schemas_.end()) {
      return Status::InvalidArgument("unknown schema '" + schema_name + "'");
    }
    auto sit = it->second.sized.find(key);
    if (sit != it->second.sized.end()) return sit->second;
    opt = it->second.opt;
  }

  // Build OFF the registry lock, exactly like EnsureSchemaVariant — same
  // domains and master seed as the registered schema, only (k1, k2)
  // differ, so an SLO-sized dataset is the registered configuration with
  // a different boosting grid.
  auto build = [&]() -> Result<SchemaPtr> {
    if (variant_class == 0) {
      return MakeTransformedSchema(opt.dims, opt.log2_domain, opt.max_level,
                                   /*per_dim_caps=*/nullptr, k1, k2,
                                   opt.seed);
    }
    SchemaOptions so;
    so.dims = variant_class == 2 ? 2 * opt.dims : opt.dims;
    for (uint32_t d = 0; d < so.dims; ++d) {
      so.domains[d].log2_size = opt.log2_domain;
      so.domains[d].max_level = opt.max_level;
    }
    so.k1 = k1;
    so.k2 = k2;
    so.seed = opt.seed;
    return SketchSchema::Create(so);
  };
  auto created = build();
  if (!created.ok()) return created.status();

  // Publish under the exclusive lock, keeping a racing winner: equal-SLO
  // datasets must SHARE the instance to stay joinable.
  std::unique_lock<FairSharedMutex> lock(registry_mu_);
  auto it = schemas_.find(schema_name);
  if (it == schemas_.end()) {
    return Status::InvalidArgument("unknown schema '" + schema_name + "'");
  }
  SchemaPtr& slot = it->second.sized[key];
  if (slot == nullptr) slot = std::move(*created);
  return slot;
}

Status SketchStore::CreateDataset(const std::string& name,
                                  const std::string& schema_name,
                                  DatasetKind kind) {
  return CreateDataset(name, schema_name, kind, DatasetOptions{});
}

Status SketchStore::CreateDataset(const std::string& name,
                                  const std::string& schema_name,
                                  DatasetKind kind,
                                  const DatasetOptions& dopt) {
  if (dopt.eps != 0 && kind != DatasetKind::kEpsBoxes) {
    return Status::InvalidArgument(
        "DatasetOptions::eps is only read by kEpsBoxes datasets");
  }
  if (dopt.target_epsilon < 0 || dopt.target_epsilon >= 1) {
    return Status::InvalidArgument(
        "DatasetOptions::target_epsilon must be in [0, 1) (0 = unset)");
  }
  if (dopt.target_epsilon > 0 &&
      (dopt.target_phi <= 0 || dopt.target_phi >= 1)) {
    return Status::InvalidArgument(
        "DatasetOptions::target_phi must be in (0, 1)");
  }
  if (dopt.variance_over_q2 < 0) {
    return Status::InvalidArgument(
        "DatasetOptions::variance_over_q2 must be >= 0 (0 = kind default)");
  }
  SchemaEntry entry;
  {
    std::shared_lock<FairSharedMutex> lock(registry_mu_);
    auto it = schemas_.find(schema_name);
    if (it == schemas_.end()) {
      return Status::InvalidArgument("unknown schema '" + schema_name + "'");
    }
    entry = it->second;
  }

  // The shape (and therefore the per-instance counter word count the
  // memory SLO needs) follows from the kind alone; which schema VARIANT
  // serves the kind decides the sizing key below. 0 = transformed,
  // 1 = plain, 2 = lifted (SchemaEntry::sized).
  int variant_class;
  Shape shape;
  switch (kind) {
    case DatasetKind::kRange:
      variant_class = 0;
      shape = Shape::RangeShape(entry.opt.dims);
      break;
    case DatasetKind::kJoinR:
    case DatasetKind::kJoinS:
      variant_class = 0;
      shape = Shape::JoinShape(entry.opt.dims);
      break;
    case DatasetKind::kEpsPoints:
    case DatasetKind::kEpsBoxes:
      variant_class = 1;
      shape = kind == DatasetKind::kEpsPoints
                  ? Shape::PointShape(entry.opt.dims)
                  : Shape::BoxCoverShape(entry.opt.dims);
      break;
    case DatasetKind::kContainInner:
    case DatasetKind::kContainOuter:
      if (2 * entry.opt.dims > kMaxDims) {
        return Status::InvalidArgument(
            "containment kinds lift to 2 * dims sketch dimensions and need "
            "2 * dims <= kMaxDims (1 or 2 original dimensions)");
      }
      variant_class = 2;
      shape = kind == DatasetKind::kContainInner
                  ? Shape::PointShape(2 * entry.opt.dims)
                  : Shape::BoxCoverShape(2 * entry.opt.dims);
      break;
    default:
      return Status::InvalidArgument("unknown dataset kind");
  }

  // Memory/accuracy SLO (DatasetOptions): derive (k1, k2) from the
  // error-vs-space model instead of the registered schema's hand-picked
  // values. Accuracy first — Lemma 1 with the kind's variance model —
  // then the byte budget caps k1 (k2 carries the confidence and stays).
  uint32_t k1 = entry.opt.k1;
  uint32_t k2 = entry.opt.k2;
  if (dopt.target_epsilon > 0) {
    const double ratio = dopt.variance_over_q2 > 0
                             ? dopt.variance_over_q2
                             : DefaultVarianceRatio(kind, entry.opt);
    auto sizing = SizeForGuarantee(dopt.target_epsilon, dopt.target_phi,
                                   ratio, /*expected_value=*/1.0);
    if (!sizing.ok()) return sizing.status();
    k1 = sizing->k1;
    k2 = sizing->k2;
  }
  if (dopt.max_bytes > 0) {
    const uint64_t width =
        dopt.counter_width == CounterWidth::kI32 ? 4 : 8;
    const uint64_t per_instance = static_cast<uint64_t>(shape.size()) * width;
    uint64_t cap = dopt.max_bytes / (per_instance * k2);
    if (cap > k1) cap = k1;
    // Blocked layouts pad the last block; walk the cap down the few
    // lanes the padding costs (at most 63 iterations).
    while (cap > 0 && CounterBytesFor(static_cast<uint64_t>(cap) * k2,
                                      shape.size(), dopt) > dopt.max_bytes) {
      --cap;
    }
    if (cap == 0) {
      return Status::InvalidArgument(
          "DatasetOptions::max_bytes cannot fit even one instance per "
          "group under this shape/width/layout");
    }
    k1 = static_cast<uint32_t>(cap);
  }

  SchemaPtr schema;
  if (k1 != entry.opt.k1 || k2 != entry.opt.k2) {
    auto sized = EnsureSizedVariant(schema_name, variant_class, k1, k2);
    if (!sized.ok()) return sized.status();
    schema = std::move(*sized);
  } else if (variant_class == 0) {
    schema = entry.transformed;
  } else {
    auto variant =
        EnsureSchemaVariant(schema_name, /*lifted=*/variant_class == 2);
    if (!variant.ok()) return variant.status();
    schema = std::move(*variant);
  }
  SKETCH_CHECK(schema != nullptr);

  // Allocate and zero the counter array OFF the registry lock — for wide
  // schemas it is the expensive part, and every store operation's name
  // lookup would stall behind it. (Schemas are never removed, so the
  // copied entry cannot go stale.)
  const CounterStoreOptions counter_opt{dopt.layout, dopt.counter_width,
                                        dopt.backing};
  DatasetSketch sketch(schema, std::move(shape), counter_opt);
  auto dataset = std::make_shared<internal::DatasetState>(
      name, schema_name, kind, entry.opt, dopt,
      next_generation_.fetch_add(1, std::memory_order_relaxed) + 1,
      std::move(sketch));

  auto commit = CommitShared();
  std::unique_lock<FairSharedMutex> lock(registry_mu_);
  if (datasets_.find(name) != datasets_.end()) {
    return Status::InvalidArgument("dataset '" + name + "' already exists");
  }
  // The logged record is the creation RECIPE (schema name, kind, full
  // options): replay re-derives the identical SLO sizing and schema
  // instances, so the re-created dataset is configured bit-identically.
  // Logged after the duplicate check, before the insert; no-op while
  // replaying.
  if (durability_ != nullptr) {
    SKETCH_RETURN_NOT_OK(
        durability_->LogCreateDataset(name, schema_name, kind, dopt));
  }
  datasets_.emplace(name, std::move(dataset));
  return Status::OK();
}

Result<DatasetHandle> SketchStore::OpenDataset(const std::string& name) {
  auto found = Find(name);
  if (!found.ok()) return found.status();
  handles_opened_.fetch_add(1, std::memory_order_relaxed);
  return DatasetHandle(this, *found);
}

Status SketchStore::DropDataset(const std::string& name) {
  DatasetPtr victim;
  {
    auto commit = CommitShared();
    std::unique_lock<FairSharedMutex> lock(registry_mu_);
    auto it = datasets_.find(name);
    if (it == datasets_.end()) {
      return Status::InvalidArgument("unknown dataset '" + name + "'");
    }
    if (durability_ != nullptr) {
      SKETCH_RETURN_NOT_OK(durability_->LogDropDataset(name));
    }
    victim = std::move(it->second);
    datasets_.erase(it);
  }
  // Invalidate open handles AFTER the registry erase: a handle that
  // passes its liveness check concurrently with the drop behaves like an
  // operation sequenced just before it, on state the shared_ptr keeps
  // alive.
  victim->dropped.store(true, std::memory_order_release);
  return Status::OK();
}

std::vector<std::string> SketchStore::ListDatasets() const {
  std::shared_lock<FairSharedMutex> lock(registry_mu_);
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, unused] : datasets_) names.push_back(name);
  return names;
}

Result<SchemaPtr> SketchStore::GetSchema(const std::string& name) const {
  std::shared_lock<FairSharedMutex> lock(registry_mu_);
  auto it = schemas_.find(name);
  if (it == schemas_.end()) {
    return Status::InvalidArgument("unknown schema '" + name + "'");
  }
  return it->second.transformed;
}

Result<SketchStore::DatasetPtr> SketchStore::Find(
    const std::string& name) const {
  std::shared_lock<FairSharedMutex> lock(registry_mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::InvalidArgument("unknown dataset '" + name + "'");
  }
  return it->second;
}

Status SketchStore::CheckLive(const internal::DatasetState& ds) {
  if (ds.dropped.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("dataset '" + ds.name +
                                      "' has been dropped");
  }
  return Status::OK();
}

Status SketchStore::ApplyStreaming(const std::string& dataset, const Box& box,
                                   int sign) {
  auto found = Find(dataset);
  if (!found.ok()) return found.status();
  return ApplyStreamingTo(**found, box, sign);
}

Status SketchStore::ApplyStreamingTo(internal::DatasetState& ds,
                                     const Box& box, int sign) {
  Box mapped;
  bool dropped = false;
  SKETCH_RETURN_NOT_OK(MapForIngest(ds, box, &mapped, &dropped));
  if (dropped) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  {
    auto commit = CommitShared();
    // Sharded fast path: one acquire load; the pointer is published once
    // and never cleared, so a non-null read is safe without the dataset
    // lock. The update lands in the calling thread's shard delta and
    // folds into the master only at epoch boundaries — on a durable
    // store the FOLD is the logged (and thus durable) unit, not the
    // individual update (see WalSyncPolicy::kEpoch).
    if (WriterShardSet* ws =
            ds.shards_live.load(std::memory_order_acquire)) {
      uint32_t folds = 0;
      const Status st = ws->Apply(mapped, sign, &ds.sketch, &ds.mu, &folds);
      if (folds > 0) {
        epoch_folds_.fetch_add(folds, std::memory_order_relaxed);
      }
      SKETCH_RETURN_NOT_OK(st);
    } else {
      std::unique_lock<FairSharedMutex> lock(ds.mu);
      // Log-before-apply under the SAME exclusive lock as the mutation,
      // so the per-dataset WAL order equals the apply order. The logged
      // box is the MAPPED one: replay applies it directly, bypassing
      // validation and ingest mapping.
      if (durability_ != nullptr) {
        SKETCH_RETURN_NOT_OK(durability_->LogUpdate(ds.name, mapped, sign));
      }
      if (sign > 0) {
        ds.sketch.Insert(mapped);
      } else {
        ds.sketch.Delete(mapped);
      }
    }
  }
  (sign > 0 ? inserts_ : deletes_).fetch_add(1, std::memory_order_relaxed);
  MaybeAutoCheckpoint();
  return Status::OK();
}

Status SketchStore::ConfigureShardedWriters(const std::string& dataset,
                                            const ShardedWriterOptions& opt) {
  if (opt.writers < 1) {
    return Status::InvalidArgument("sharded writers require writers >= 1");
  }
  if (opt.epoch_updates < 1) {
    return Status::InvalidArgument("epoch_updates must be >= 1");
  }
  auto found = Find(dataset);
  if (!found.ok()) return found.status();
  internal::DatasetState& ds = **found;
  std::unique_lock<FairSharedMutex> lock(ds.mu);
  if (ds.shards != nullptr) {
    return Status::FailedPrecondition(
        "dataset '" + dataset + "' already has sharded writers configured");
  }
  ds.shards = std::make_unique<WriterShardSet>(ds.sketch.schema(),
                                               ds.sketch.shape(), opt);
  // Durable stores log each epoch fold as ONE compact delta record (the
  // serialized shard delta) before it merges — the hook runs under the
  // master's exclusive lock, so per-dataset log order equals apply order
  // exactly as on the unsharded path. Installed BEFORE the shard set is
  // published, so no fold can slip through unlogged.
  if (durability_ != nullptr) {
    internal::DurabilityManager* mgr = durability_.get();
    const std::string name = ds.name;
    ds.shards->SetFoldHook([mgr, name](const DatasetSketch& delta) {
      return mgr->LogDelta(name, SerializeSketch(delta));
    });
  }
  ds.shards_live.store(ds.shards.get(), std::memory_order_release);
  return Status::OK();
}

Status SketchStore::FenceDatasetNoCommit(internal::DatasetState& ds) const {
  WriterShardSet* ws = ds.shards_live.load(std::memory_order_acquire);
  if (ws == nullptr) return Status::OK();
  uint32_t folded = 0;
  const Status st = ws->Fence(&ds.sketch, &ds.mu, &folded);
  if (folded > 0) {
    epoch_folds_.fetch_add(folded, std::memory_order_relaxed);
  }
  fences_.fetch_add(1, std::memory_order_relaxed);
  return st;
}

Status SketchStore::FenceDataset(internal::DatasetState& ds) const {
  auto commit = CommitShared();
  return FenceDatasetNoCommit(ds);
}

Status SketchStore::Fence(const std::string& dataset) {
  auto found = Find(dataset);
  if (!found.ok()) return found.status();
  return FenceDataset(**found);
}

Status SketchStore::Insert(const std::string& dataset, const Box& box) {
  return ApplyStreaming(dataset, box, +1);
}

Status SketchStore::Delete(const std::string& dataset, const Box& box) {
  return ApplyStreaming(dataset, box, -1);
}

Status SketchStore::MergeDelta(const std::string& name,
                               const std::vector<Box>& boxes,
                               uint32_t num_threads, int sign,
                               std::atomic<uint64_t>* progress) {
  if (sign != 1 && sign != -1) {
    return Status::InvalidArgument("bulk-load sign must be +1 or -1");
  }
  auto found = Find(name);
  if (!found.ok()) return found.status();
  internal::DatasetState& ds = **found;

  // Validate and map the whole batch up front so a bad box rejects the
  // batch without partially applying it.
  std::vector<Box> mapped;
  mapped.reserve(boxes.size());
  uint64_t dropped_count = 0;
  for (const Box& box : boxes) {
    Box out;
    bool dropped = false;
    SKETCH_RETURN_NOT_OK(MapForIngest(ds, box, &out, &dropped));
    if (dropped) {
      ++dropped_count;
    } else {
      mapped.push_back(out);
    }
  }

  // Build the delta OFF the dataset lock; readers keep being served from
  // the live sketch until the (cheap, counter-addition) Merge below. A
  // failed shard leaves the target untouched (ShardedBulkLoad merges
  // nothing on failure), so the batch rejects atomically.
  DatasetSketch delta(ds.sketch.schema(), ds.sketch.shape());
  ShardedLoadOptions opt;
  opt.num_threads = num_threads;  // 0 keeps the auto-detect documented there
  // Live rows-applied gauge: the caller's sink when one was supplied
  // (async-load jobs polling their own fraction), else the store-wide
  // stat directly; either way StoreStats::bulk_rows_applied ends up
  // advanced by exactly the mapped row count.
  opt.progress = progress != nullptr ? progress : &bulk_rows_applied_;
  SKETCH_RETURN_NOT_OK(ShardedBulkLoad(&delta, mapped, sign, opt));
  if (progress != nullptr) {
    bulk_rows_applied_.fetch_add(mapped.size(), std::memory_order_relaxed);
  }

  // Serialize the delta record off-lock too — only the append + Merge
  // run under the locks.
  std::string delta_blob;
  if (durability_ != nullptr && !mapped.empty()) {
    delta_blob = SerializeSketch(delta);
  }
  {
    auto commit = CommitShared();
    std::unique_lock<FairSharedMutex> lock(ds.mu);
    if (durability_ != nullptr && !mapped.empty()) {
      SKETCH_RETURN_NOT_OK(durability_->LogDelta(ds.name, delta_blob));
    }
    ds.sketch.Merge(delta);
  }
  dropped_.fetch_add(dropped_count, std::memory_order_relaxed);
  bulk_boxes_.fetch_add(mapped.size(), std::memory_order_relaxed);
  MaybeAutoCheckpoint();
  return Status::OK();
}

Status SketchStore::BulkLoad(const std::string& dataset,
                             const std::vector<Box>& boxes, int sign) {
  return MergeDelta(dataset, boxes, /*num_threads=*/1, sign);
}

QueryPool& SketchStore::Pool() const {
  std::call_once(pool_once_, [this] { pool_ = std::make_unique<QueryPool>(); });
  return *pool_;
}

Status SketchStore::ParallelBulkLoad(const std::string& dataset,
                                     const std::vector<Box>& boxes,
                                     uint32_t num_threads, int sign) {
  return MergeDelta(dataset, boxes, num_threads, sign);
}

Status SketchStore::ParallelBulkLoad(const std::string& dataset,
                                     const std::vector<Box>& boxes,
                                     uint32_t num_threads, int sign,
                                     std::atomic<uint64_t>* progress) {
  return MergeDelta(dataset, boxes, num_threads, sign, progress);
}

namespace {

/// Shared precondition check of every range-estimate entry point: the
/// dataset must be kRange and the query valid, non-degenerate, and within
/// the schema's original domain.
Status ValidateRangeQuery(DatasetKind kind, const StoreSchemaOptions& opt,
                          const Box& query) {
  if (kind != DatasetKind::kRange) {
    return Status::FailedPrecondition(
        "range estimates require a kRange dataset");
  }
  if (!IsValid(query, opt.dims) || IsDegenerate(query, opt.dims)) {
    return Status::InvalidArgument(
        "query box must be valid and non-degenerate in every dimension");
  }
  const Coord bound = Coord{1} << opt.log2_domain;
  for (uint32_t d = 0; d < opt.dims; ++d) {
    if (query.hi[d] >= bound) {
      return Status::OutOfRange("query exceeds the schema's original domain");
    }
  }
  return Status::OK();
}

/// THE serving-layer selectivity convention, shared by every surface
/// (Run's fast path, the grouped range jobs, the handle twins): an empty
/// or net-negative dataset has selectivity 0. Count and total must have
/// been read under one lock acquisition by the caller.
double SelectivityRatio(double count, int64_t total) {
  return total <= 0 ? 0.0 : count / static_cast<double>(total);
}

/// Kind-compatibility and argument validation of one QuerySpec against
/// its resolved datasets (b is null for the single-dataset kinds). Every
/// failure here is a PER-QUERY failure — it never rejects batch-mates.
Status ValidateSpec(const QuerySpec& spec, const internal::DatasetState& a,
                    const internal::DatasetState* b) {
  switch (spec.kind) {
    case QueryKind::kRangeCount:
    case QueryKind::kRangeSelectivity:
      return ValidateRangeQuery(a.kind, a.opt, spec.query);
    case QueryKind::kSelfJoinSize:
      // SJ(X) is defined for every shape the store builds (Section 3);
      // any dataset kind answers it from its own counters.
      return Status::OK();
    case QueryKind::kJoinCardinality:
      if (a.kind != DatasetKind::kJoinR || b->kind != DatasetKind::kJoinS) {
        return Status::FailedPrecondition(
            "join requires a kJoinR dataset joined against a kJoinS dataset");
      }
      if (a.sketch.schema() != b->sketch.schema()) {
        return Status::FailedPrecondition(
            "join requires both datasets to share one schema");
      }
      return Status::OK();
    case QueryKind::kEpsJoin:
      if (a.kind != DatasetKind::kEpsPoints ||
          b->kind != DatasetKind::kEpsBoxes) {
        return Status::FailedPrecondition(
            "eps-join requires a kEpsPoints dataset joined against a "
            "kEpsBoxes dataset");
      }
      if (spec.eps != b->eps) {
        return Status::InvalidArgument(
            "query eps " + std::to_string(spec.eps) +
            " does not match the dataset's ingest-time eps " +
            std::to_string(b->eps));
      }
      if (a.sketch.schema() != b->sketch.schema()) {
        return Status::FailedPrecondition(
            "eps-join requires both datasets to share one schema");
      }
      return Status::OK();
    case QueryKind::kContainmentJoin:
      if (a.kind != DatasetKind::kContainInner ||
          b->kind != DatasetKind::kContainOuter) {
        return Status::FailedPrecondition(
            "containment join requires a kContainInner dataset joined "
            "against a kContainOuter dataset");
      }
      if (a.sketch.schema() != b->sketch.schema()) {
        return Status::FailedPrecondition(
            "containment join requires both datasets to share one schema");
      }
      return Status::OK();
  }
  return Status::Internal("unknown QueryKind");
}

}  // namespace

Result<std::vector<QueryResult>> SketchStore::Run(
    const QueryBatch& batch) const {
  std::vector<QueryResult> results;
  SKETCH_RETURN_NOT_OK(Run(batch, &results));
  return results;
}

Status SketchStore::Run(const QueryBatch& batch,
                        std::vector<QueryResult>* out) const {
  const std::vector<QuerySpec>& specs = batch.specs;
  if (specs.empty()) {
    return Status::InvalidArgument("query batch must be non-empty");
  }
  const size_t n = specs.size();
  // Reuse the caller's capacity; clear-then-resize leaves n freshly
  // default-constructed results behind the existing allocation.
  out->clear();
  out->resize(n);
  std::vector<QueryResult>& results = *out;

  // ---- Resolution: one registry acquisition per distinct NAME (the memo
  // also pins every resolved state for the whole call); handle-bearing
  // specs skip the registry entirely, paying one liveness load instead.
  std::vector<std::pair<const std::string*, Result<DatasetPtr>>> memo;
  auto resolve = [&](const std::string& name) -> const Result<DatasetPtr>& {
    for (const auto& entry : memo) {
      if (*entry.first == name) return entry.second;
    }
    memo.emplace_back(&name, Find(name));
    return memo.back().second;
  };
  auto resolve_side = [&](const DatasetHandle& handle, const std::string& name,
                          internal::DatasetState** out) -> Status {
    if (handle.valid()) {
      if (handle.store_ != this) {
        return Status::InvalidArgument(
            "spec carries a handle opened on a different SketchStore");
      }
      SKETCH_RETURN_NOT_OK(CheckLive(*handle.state_));
      *out = handle.state_.get();
      return Status::OK();
    }
    const Result<DatasetPtr>& found = resolve(name);
    if (!found.ok()) return found.status();
    *out = found->get();
    return Status::OK();
  };
  const auto two_sided = [](QueryKind kind) {
    return kind == QueryKind::kJoinCardinality ||
           kind == QueryKind::kEpsJoin ||
           kind == QueryKind::kContainmentJoin;
  };

  struct Plan {
    internal::DatasetState* a = nullptr;
    internal::DatasetState* b = nullptr;
    bool runnable = false;
  };
  std::vector<Plan> plans(n);
  for (size_t i = 0; i < n; ++i) {
    const QuerySpec& spec = specs[i];
    Plan& plan = plans[i];
    Status st = resolve_side(spec.handle, spec.dataset, &plan.a);
    if (st.ok() && two_sided(spec.kind)) {
      st = resolve_side(spec.handle2, spec.dataset2, &plan.b);
    }
    if (st.ok()) st = ValidateSpec(spec, *plan.a, plan.b);
    if (!st.ok()) {
      results[i].status = std::move(st);
      continue;
    }
    const SchemaPtr& schema = plan.a->sketch.schema();
    const CounterStore& counters = plan.a->sketch.counter_store();
    results[i].estimator =
        EstimatorInfo{schema->k1(), schema->k2(), schema->instances(),
                      counters.layout(), counters.width()};
    plan.runnable = true;
  }

  // ---- Single-spec fast path: the legacy single-query shims funnel
  // here, so a lone spec skips the grouping/job machinery and runs its
  // estimate directly under the dataset lock(s) — the single-query and
  // grouped paths are exactly equal by the batch-estimator contracts
  // (RangeQueryBatch::EstimateOne == EstimateRangeCount;
  // EstimateJoinCardinalityBatch == per-pair EstimateJoinCardinality).
  if (n == 1 && plans[0].runnable) {
    const QuerySpec& spec = specs[0];
    const Plan& plan = plans[0];
    QueryResult& res = results[0];
    switch (spec.kind) {
      case QueryKind::kRangeCount:
      case QueryKind::kRangeSelectivity: {
        std::shared_lock<FairSharedMutex> lock(plan.a->mu);
        const double count =
            spatialsketch::EstimateRangeCount(plan.a->sketch, spec.query);
        res.value = spec.kind == QueryKind::kRangeSelectivity
                        ? SelectivityRatio(count,
                                           plan.a->sketch.num_objects())
                        : count;
        lock.unlock();
        range_estimates_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case QueryKind::kSelfJoinSize: {
        std::shared_lock<FairSharedMutex> lock(plan.a->mu);
        res.value = EstimateTotalSelfJoin(plan.a->sketch);
        lock.unlock();
        self_join_estimates_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case QueryKind::kJoinCardinality:
      case QueryKind::kEpsJoin:
      case QueryKind::kContainmentJoin: {
        const internal::DatasetState* first = plan.a;
        const internal::DatasetState* second = plan.b;
        if (std::less<const internal::DatasetState*>()(second, first)) {
          std::swap(first, second);
        }
        std::shared_lock<FairSharedMutex> lock_first(first->mu);
        std::shared_lock<FairSharedMutex> lock_second(second->mu);
        auto est = spec.kind == QueryKind::kJoinCardinality
                       ? EstimateJoinCardinality(plan.a->sketch,
                                                 plan.b->sketch)
                       : EstimateContainmentCardinality(plan.a->sketch,
                                                        plan.b->sketch);
        lock_second.unlock();
        lock_first.unlock();
        if (est.ok()) {
          res.value = *est;
          auto& counter = spec.kind == QueryKind::kJoinCardinality
                              ? join_estimates_
                              : spec.kind == QueryKind::kEpsJoin
                                    ? eps_join_estimates_
                                    : containment_estimates_;
          counter.fetch_add(1, std::memory_order_relaxed);
        } else {
          res.status = est.status();
        }
        break;
      }
    }
    query_batches_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  // ---- Grouping (per dataset / dataset pair, the lock-once unit). Range
  // specs share one RangeQueryBatch per dataset so the plan (endpoint
  // transforms, decompositions, sign columns) builds once, OFF the locks;
  // join specs share one amortized R-row walk per R dataset. Both
  // groupings return exactly the single-query values.
  struct RangeGroup {
    const internal::DatasetState* ds = nullptr;
    std::vector<Box> queries;
    std::vector<size_t> spec_index;
    std::unique_ptr<RangeQueryBatch> plan;
  };
  std::vector<RangeGroup> range_groups;
  struct JoinGroup {
    const internal::DatasetState* r = nullptr;
    std::vector<const DatasetSketch*> s_sketches;
    std::vector<size_t> spec_index;
  };
  std::vector<JoinGroup> join_groups;
  std::vector<size_t> singles;  // specs executed one per job

  for (size_t i = 0; i < n; ++i) {
    if (!plans[i].runnable) continue;
    const QuerySpec& spec = specs[i];
    if (spec.kind == QueryKind::kRangeCount ||
        spec.kind == QueryKind::kRangeSelectivity) {
      RangeGroup* group = nullptr;
      for (RangeGroup& g : range_groups) {
        if (g.ds == plans[i].a) {
          group = &g;
          break;
        }
      }
      if (group == nullptr) {
        range_groups.emplace_back();
        range_groups.back().ds = plans[i].a;
        group = &range_groups.back();
      }
      group->queries.push_back(spec.query);
      group->spec_index.push_back(i);
    } else if (spec.kind == QueryKind::kJoinCardinality) {
      JoinGroup* group = nullptr;
      for (JoinGroup& g : join_groups) {
        if (g.r == plans[i].a) {
          group = &g;
          break;
        }
      }
      if (group == nullptr) {
        join_groups.emplace_back();
        join_groups.back().r = plans[i].a;
        group = &join_groups.back();
      }
      group->s_sketches.push_back(&plans[i].b->sketch);
      group->spec_index.push_back(i);
    } else {
      singles.push_back(i);
    }
  }
  for (RangeGroup& group : range_groups) {
    group.plan = std::make_unique<RangeQueryBatch>(
        &group.ds->sketch, group.queries.data(), group.queries.size());
  }

  // ---- Job list. Every job writes only its own spec slots, so the fan-
  // out needs no further synchronization beyond the pool's completion.
  std::vector<std::function<void()>> jobs;
  jobs.reserve(n);
  for (RangeGroup& group : range_groups) {
    for (size_t j = 0; j < group.queries.size(); ++j) {
      jobs.push_back([&specs, &results, &group, j] {
        const size_t idx = group.spec_index[j];
        const double count = group.plan->EstimateOne(j);
        results[idx].value =
            specs[idx].kind == QueryKind::kRangeSelectivity
                ? SelectivityRatio(count, group.ds->sketch.num_objects())
                : count;
      });
    }
  }
  for (JoinGroup& group : join_groups) {
    // Chunk to the pool's effective parallelism (workers + submitter):
    // more chunks would re-pay the amortized R-row walk with nothing to
    // run them on (a 1-core host gets ONE chunk), fewer would idle
    // workers. Per-pair values are chunking-independent either way.
    const size_t count = group.s_sketches.size();
    const size_t parts =
        count == 1
            ? 1
            : std::min(count, static_cast<size_t>(Pool().num_threads()) + 1);
    const size_t per_part = (count + parts - 1) / parts;
    for (size_t p = 0; p < parts; ++p) {
      jobs.push_back([&results, &group, p, per_part, count] {
        const size_t begin = p * per_part;
        const size_t end = std::min(begin + per_part, count);
        if (begin >= end) return;
        const std::vector<const DatasetSketch*> sub(
            group.s_sketches.begin() + begin, group.s_sketches.begin() + end);
        auto est = EstimateJoinCardinalityBatch(group.r->sketch, sub);
        for (size_t k = begin; k < end; ++k) {
          QueryResult& res = results[group.spec_index[k]];
          if (est.ok()) {
            res.value = (*est)[k - begin];
          } else {
            res.status = est.status();
          }
        }
      });
    }
  }
  for (const size_t idx : singles) {
    jobs.push_back([&specs, &results, &plans, idx] {
      const Plan& plan = plans[idx];
      QueryResult& res = results[idx];
      switch (specs[idx].kind) {
        case QueryKind::kSelfJoinSize:
          res.value = EstimateTotalSelfJoin(plan.a->sketch);
          break;
        case QueryKind::kEpsJoin:
        case QueryKind::kContainmentJoin: {
          auto est =
              EstimateContainmentCardinality(plan.a->sketch, plan.b->sketch);
          if (est.ok()) {
            res.value = *est;
          } else {
            res.status = est.status();
          }
          break;
        }
        default:
          res.status = Status::Internal("unexpected QueryKind in job list");
          break;
      }
    });
  }

  // ---- Execute: every distinct involved dataset's shared lock taken
  // exactly once, in address order (the same total order as every other
  // multi-dataset path, so batches cannot cycle with single queries
  // through a queued writer), then the jobs fan across the pool. A
  // single-job batch runs inline — single-query serving (including the
  // legacy shims) never pays the pool's thread spawn.
  if (!jobs.empty()) {
    std::vector<const internal::DatasetState*> distinct;
    distinct.reserve(2 * n);
    for (const Plan& plan : plans) {
      if (!plan.runnable) continue;
      distinct.push_back(plan.a);
      if (plan.b != nullptr) distinct.push_back(plan.b);
    }
    std::sort(distinct.begin(), distinct.end(),
              std::less<const internal::DatasetState*>());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    std::vector<std::shared_lock<FairSharedMutex>> locks;
    locks.reserve(distinct.size());
    for (const internal::DatasetState* ds : distinct) {
      locks.emplace_back(ds->mu);
    }
    if (jobs.size() == 1) {
      jobs[0]();
    } else {
      Pool().ParallelFor(jobs.size(), [&jobs](size_t i) { jobs[i](); });
    }
  }

  // ---- Stats: count every query actually served, by family.
  uint64_t range = 0, join = 0, self = 0, eps = 0, contain = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!plans[i].runnable || !results[i].status.ok()) continue;
    switch (specs[i].kind) {
      case QueryKind::kRangeCount:
      case QueryKind::kRangeSelectivity:
        ++range;
        break;
      case QueryKind::kSelfJoinSize:
        ++self;
        break;
      case QueryKind::kJoinCardinality:
        ++join;
        break;
      case QueryKind::kEpsJoin:
        ++eps;
        break;
      case QueryKind::kContainmentJoin:
        ++contain;
        break;
    }
  }
  if (range > 0) range_estimates_.fetch_add(range, std::memory_order_relaxed);
  if (join > 0) join_estimates_.fetch_add(join, std::memory_order_relaxed);
  if (self > 0) {
    self_join_estimates_.fetch_add(self, std::memory_order_relaxed);
  }
  if (eps > 0) {
    eps_join_estimates_.fetch_add(eps, std::memory_order_relaxed);
  }
  if (contain > 0) {
    containment_estimates_.fetch_add(contain, std::memory_order_relaxed);
  }
  query_batches_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

// ---- Legacy string-keyed entry points: thin shims over Run. Run's
// execution paths are the exact batch machinery these entry points used
// before the redesign (RangeQueryBatch::EstimateOne, per-pair values of
// EstimateJoinCardinalityBatch), so the values are bit-identical.

Result<double> SketchStore::EstimateRangeCount(const std::string& dataset,
                                               const Box& query) const {
  QueryBatch batch;
  batch.Add(QuerySpec::RangeCount(dataset, query));
  auto run = Run(batch);
  if (!run.ok()) return run.status();
  QueryResult& res = (*run)[0];
  if (!res.status.ok()) return res.status;
  return res.value;
}

Result<double> SketchStore::EstimateRangeSelectivity(
    const std::string& dataset, const Box& query) const {
  QueryBatch batch;
  batch.Add(QuerySpec::RangeSelectivity(dataset, query));
  auto run = Run(batch);
  if (!run.ok()) return run.status();
  QueryResult& res = (*run)[0];
  if (!res.status.ok()) return res.status;
  return res.value;
}

Result<double> SketchStore::EstimateJoin(const std::string& r_dataset,
                                         const std::string& s_dataset) const {
  QueryBatch batch;
  batch.Add(QuerySpec::JoinCardinality(r_dataset, s_dataset));
  auto run = Run(batch);
  if (!run.ok()) return run.status();
  QueryResult& res = (*run)[0];
  if (!res.status.ok()) return res.status;
  return res.value;
}

Result<std::vector<double>> SketchStore::EstimateRangeBatch(
    const std::string& dataset, const std::vector<Box>& queries) const {
  if (queries.empty()) {
    return Status::InvalidArgument("range batch must be non-empty");
  }
  // Pre-Run contract preserved: any bad query rejects the whole batch
  // BEFORE any estimation work (and before any stats are counted), so
  // the error path never holds the dataset lock or computes estimates
  // the caller will not receive.
  auto found = Find(dataset);
  if (!found.ok()) return found.status();
  for (const Box& query : queries) {
    SKETCH_RETURN_NOT_OK(
        ValidateRangeQuery((*found)->kind, (*found)->opt, query));
  }
  // Specs carry the already-resolved handle, so Run never re-resolves
  // the name (nor copies it once per query).
  const DatasetHandle handle(const_cast<SketchStore*>(this), *found);
  QueryBatch batch;
  batch.specs.reserve(queries.size());
  for (const Box& query : queries) {
    batch.Add(QuerySpec::RangeCount(handle, query));
  }
  auto run = Run(batch);
  if (!run.ok()) return run.status();
  std::vector<double> out;
  out.reserve(queries.size());
  for (QueryResult& res : *run) {
    if (!res.status.ok()) return res.status;
    out.push_back(res.value);
  }
  return out;
}

Result<std::vector<double>> SketchStore::EstimateJoinBatch(
    const std::string& r_dataset,
    const std::vector<std::string>& s_datasets) const {
  if (s_datasets.empty()) {
    return Status::InvalidArgument("join batch must be non-empty");
  }
  // Same whole-batch pre-validation as EstimateRangeBatch: reject before
  // any estimation work or stats accounting.
  auto r_found = Find(r_dataset);
  if (!r_found.ok()) return r_found.status();
  if ((*r_found)->kind != DatasetKind::kJoinR) {
    return Status::FailedPrecondition(
        "join requires a kJoinR dataset joined against a kJoinS dataset");
  }
  SketchStore* self = const_cast<SketchStore*>(this);
  const DatasetHandle r_handle(self, *r_found);
  std::vector<DatasetHandle> s_handles;
  s_handles.reserve(s_datasets.size());
  for (const std::string& s : s_datasets) {
    auto s_found = Find(s);
    if (!s_found.ok()) return s_found.status();
    if ((*s_found)->kind != DatasetKind::kJoinS) {
      return Status::FailedPrecondition(
          "join requires a kJoinR dataset joined against a kJoinS dataset");
    }
    if ((*s_found)->sketch.schema() != (*r_found)->sketch.schema()) {
      return Status::FailedPrecondition(
          "join requires both datasets to share one schema");
    }
    s_handles.emplace_back(DatasetHandle(self, std::move(*s_found)));
  }
  QueryBatch batch;
  batch.specs.reserve(s_datasets.size());
  for (DatasetHandle& s : s_handles) {
    batch.Add(QuerySpec::JoinCardinality(r_handle, std::move(s)));
  }
  auto run = Run(batch);
  if (!run.ok()) return run.status();
  std::vector<double> out;
  out.reserve(s_datasets.size());
  for (QueryResult& res : *run) {
    if (!res.status.ok()) return res.status;
    out.push_back(res.value);
  }
  return out;
}

Result<double> SketchStore::RangeCountOn(const internal::DatasetState& ds,
                                         const Box& query,
                                         bool selectivity) const {
  SKETCH_RETURN_NOT_OK(ValidateRangeQuery(ds.kind, ds.opt, query));
  // Count and object total under ONE shared lock so the selectivity
  // ratio is a consistent cut even while writers stream in.
  std::shared_lock<FairSharedMutex> lock(ds.mu);
  const double count = spatialsketch::EstimateRangeCount(ds.sketch, query);
  const double est =
      selectivity ? SelectivityRatio(count, ds.sketch.num_objects()) : count;
  lock.unlock();
  range_estimates_.fetch_add(1, std::memory_order_relaxed);
  return est;
}

Result<int64_t> SketchStore::NumObjectsOn(internal::DatasetState& ds) const {
  SKETCH_RETURN_NOT_OK(FenceDataset(ds));
  std::shared_lock<FairSharedMutex> lock(ds.mu);
  return ds.sketch.num_objects();
}

Result<int64_t> SketchStore::NumObjects(const std::string& dataset) const {
  auto found = Find(dataset);
  if (!found.ok()) return found.status();
  return NumObjectsOn(**found);
}

Result<std::vector<int64_t>> SketchStore::CounterSnapshot(
    const std::string& dataset) const {
  auto found = Find(dataset);
  if (!found.ok()) return found.status();
  internal::DatasetState& ds = **found;
  SKETCH_RETURN_NOT_OK(FenceDataset(ds));
  std::shared_lock<FairSharedMutex> lock(ds.mu);
  return ds.sketch.counters();
}

std::string SketchStore::BuildSnapshotBlob(
    const internal::DatasetState& ds) const {
  std::string blob(kSnapshotMagicV4, sizeof(kSnapshotMagicV4));
  blob.push_back(static_cast<char>(ds.kind));
  const uint64_t eps = ds.eps;
  for (int b = 0; b < 8; ++b) {
    blob.push_back(static_cast<char>((eps >> (8 * b)) & 0xff));
  }
  std::shared_lock<FairSharedMutex> lock(ds.mu);
  // Layout + width tags (the SST3 extension) — written under the lock so
  // they describe the exact store the counters are read from.
  blob.push_back(static_cast<char>(ds.sketch.counter_store().layout()));
  blob.push_back(static_cast<char>(ds.sketch.counter_store().width()));
  const std::string payload = SerializeSketch(ds.sketch);
  lock.unlock();
  const uint32_t crc = Crc32c(payload);
  for (int b = 0; b < 4; ++b) {
    blob.push_back(static_cast<char>((crc >> (8 * b)) & 0xff));
  }
  blob += payload;
  return blob;
}

Result<std::string> SketchStore::Snapshot(const std::string& dataset) const {
  auto found = Find(dataset);
  if (!found.ok()) return found.status();
  internal::DatasetState& ds = **found;
  SKETCH_RETURN_NOT_OK(FenceDataset(ds));
  std::string blob = BuildSnapshotBlob(ds);
  snapshots_.fetch_add(1, std::memory_order_relaxed);
  return blob;
}

Status SketchStore::RestoreOn(internal::DatasetState& ds,
                              const std::string& blob, bool log) {
  // Current (SST4, payload-CRC'd) header, the CRC-less SST3 header, the
  // layout-less SST2 header, or the pre-eps SST1 header — SST1 predates
  // the eps kinds, so those blobs carry an implicit eps of 0; SST2/SST1
  // predate the counter store, so their implicit source representation
  // is flat int64.
  const bool v4 = blob.size() >= kSnapshotHeaderV4 &&
                  blob.compare(0, sizeof(kSnapshotMagicV4), kSnapshotMagicV4,
                               sizeof(kSnapshotMagicV4)) == 0;
  const bool v3 = !v4 && blob.size() >= kSnapshotHeaderV3 &&
                  blob.compare(0, sizeof(kSnapshotMagicV3), kSnapshotMagicV3,
                               sizeof(kSnapshotMagicV3)) == 0;
  const bool v2 = !v4 && !v3 && blob.size() >= kSnapshotHeader &&
                  blob.compare(0, sizeof(kSnapshotMagic), kSnapshotMagic,
                               sizeof(kSnapshotMagic)) == 0;
  const bool v1 = !v4 && !v3 && !v2 && blob.size() >= kSnapshotHeaderV1 &&
                  blob.compare(0, sizeof(kSnapshotMagicV1), kSnapshotMagicV1,
                               sizeof(kSnapshotMagicV1)) == 0;
  if (!v4 && !v3 && !v2 && !v1) {
    return Status::InvalidArgument("not a SketchStore snapshot blob");
  }
  if (static_cast<DatasetKind>(blob[sizeof(kSnapshotMagic)]) != ds.kind) {
    return Status::FailedPrecondition(
        "snapshot was taken from a dataset of a different kind");
  }
  uint64_t blob_eps = 0;
  if (v4 || v3 || v2) {
    for (int b = 0; b < 8; ++b) {
      blob_eps |= static_cast<uint64_t>(static_cast<uint8_t>(
                      blob[sizeof(kSnapshotMagic) + 1 + b]))
                  << (8 * b);
    }
  }
  if (blob_eps != ds.eps) {
    return Status::FailedPrecondition(
        "snapshot was taken from a dataset with a different ingest eps");
  }
  if (v4 || v3) {
    // Provenance tags: the source's counter layout/width. Restore always
    // re-homes the values into THIS dataset's configured representation
    // (AdoptCountersFrom copies values, not layout), so the tags only
    // need to parse.
    const uint8_t layout_tag =
        static_cast<uint8_t>(blob[kSnapshotHeader]);
    const uint8_t width_tag =
        static_cast<uint8_t>(blob[kSnapshotHeader + 1]);
    if (layout_tag > static_cast<uint8_t>(CounterLayout::kBlocked) ||
        width_tag > static_cast<uint8_t>(CounterWidth::kI32)) {
      return Status::InvalidArgument(
          "snapshot carries an unknown counter layout/width tag");
    }
  }
  const size_t header = v4 ? kSnapshotHeaderV4
                           : (v3 ? kSnapshotHeaderV3
                                 : (v2 ? kSnapshotHeader : kSnapshotHeaderV1));
  const std::string payload = blob.substr(header);
  if (v4) {
    // Payload CRC BEFORE deserializing: a bit-flipped or truncated blob
    // fails fast here instead of being decoded.
    uint32_t stored_crc = 0;
    for (int b = 0; b < 4; ++b) {
      stored_crc |= static_cast<uint32_t>(static_cast<uint8_t>(
                        blob[kSnapshotHeaderV3 + b]))
                    << (8 * b);
    }
    if (Crc32c(payload) != stored_crc) {
      return Status::InvalidArgument(
          "snapshot payload fails its CRC (corrupt or truncated blob)");
    }
  }

  // Pre-restore shard deltas must fold BEFORE the counters are replaced:
  // folded later they would silently add pre-restore updates to the
  // restored state. Updates racing past this fence land after the
  // restore, as some sequential order must place them.
  SKETCH_RETURN_NOT_OK(FenceDataset(ds));

  // Deserialize off-lock (the expensive part), adopt under the writer
  // lock. AdoptCountersFrom validates shape and schema-configuration
  // equality and keeps the dataset's shared schema instance, so restored
  // datasets remain joinable with their schema-mates.
  auto restored = DeserializeSketch(payload);
  if (!restored.ok()) return restored.status();

  {
    auto commit = CommitShared();
    std::unique_lock<FairSharedMutex> lock(ds.mu);
    // Log-before-apply under the dataset's exclusive lock, exactly like
    // streaming updates, so replay re-applies the restore at the same
    // per-dataset position. Replay itself calls with log=false.
    if (log && durability_ != nullptr) {
      SKETCH_RETURN_NOT_OK(durability_->LogRestore(ds.name, blob));
    }
    SKETCH_RETURN_NOT_OK(ds.sketch.AdoptCountersFrom(*restored));
  }
  if (log) {
    restores_.fetch_add(1, std::memory_order_relaxed);
    MaybeAutoCheckpoint();
  }
  return Status::OK();
}

Status SketchStore::Restore(const std::string& dataset,
                            const std::string& blob) {
  auto found = Find(dataset);
  if (!found.ok()) return found.status();
  return RestoreOn(**found, blob, /*log=*/true);
}

std::shared_lock<FairSharedMutex> SketchStore::CommitShared() const {
  if (durability_ == nullptr) return std::shared_lock<FairSharedMutex>();
  return std::shared_lock<FairSharedMutex>(durability_->commit_mu);
}

Status SketchStore::SyncWal() {
  if (durability_ == nullptr) return Status::OK();
  return durability_->Sync();
}

void SketchStore::MaybeAutoCheckpoint() {
  if (durability_ == nullptr) return;
  const uint64_t every = durability_->options().checkpoint_every_bytes;
  if (every == 0 || durability_->replaying()) return;
  if (durability_->bytes_since_checkpoint() < every) return;
  // One checkpointer at a time; everyone else returns to their caller —
  // the trigger re-fires on a later mutation if bytes are still over.
  if (!durability_->TryBeginAutoCheckpoint()) return;
  // Best-effort: the triggering mutation is already durable in the WAL,
  // so a failed auto-checkpoint must not fail it; the failure will
  // resurface on the next explicit Checkpoint()/auto attempt.
  (void)Checkpoint();
  durability_->EndAutoCheckpoint();
}

StoreStats SketchStore::stats() const {
  StoreStats s;
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.deletes = deletes_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.bulk_boxes = bulk_boxes_.load(std::memory_order_relaxed);
  s.bulk_rows_applied = bulk_rows_applied_.load(std::memory_order_relaxed);
  s.range_estimates = range_estimates_.load(std::memory_order_relaxed);
  s.join_estimates = join_estimates_.load(std::memory_order_relaxed);
  s.self_join_estimates =
      self_join_estimates_.load(std::memory_order_relaxed);
  s.eps_join_estimates = eps_join_estimates_.load(std::memory_order_relaxed);
  s.containment_estimates =
      containment_estimates_.load(std::memory_order_relaxed);
  s.query_batches = query_batches_.load(std::memory_order_relaxed);
  s.handles_opened = handles_opened_.load(std::memory_order_relaxed);
  s.snapshots = snapshots_.load(std::memory_order_relaxed);
  s.restores = restores_.load(std::memory_order_relaxed);
  s.epoch_folds = epoch_folds_.load(std::memory_order_relaxed);
  s.fences = fences_.load(std::memory_order_relaxed);
  if (durability_ != nullptr) {
    s.wal_records = durability_->wal_records();
    s.wal_bytes = durability_->wal_bytes();
    s.checkpoints = durability_->checkpoints();
    s.wal_replayed = durability_->replayed_records();
  }
  // Cache health, summed over every registered schema variant (each owns
  // one sign cache and one point-sum cache).
  {
    std::shared_lock<FairSharedMutex> lock(registry_mu_);
    auto add = [&s](const SchemaPtr& schema) {
      if (schema == nullptr) return;
      const XiCacheStats sign = schema->sign_cache().stats();
      s.sign_cache_hits += sign.hits;
      s.sign_cache_misses += sign.misses;
      s.sign_cache_evicted += sign.evicted;
      s.sign_cache_bytes += sign.bytes;
      const XiCacheStats sums = schema->point_sum_cache().stats();
      s.point_sum_hits += sums.hits;
      s.point_sum_misses += sums.misses;
      s.point_sum_evicted += sums.evicted;
      s.point_sum_bytes += sums.bytes;
    };
    for (const auto& [name, entry] : schemas_) {
      add(entry.transformed);
      add(entry.plain);
      add(entry.lifted);
      for (const auto& [key, schema] : entry.sized) add(schema);
    }
  }
  return s;
}

}  // namespace spatialsketch
