#include "src/store/sketch_store.h"

#include <algorithm>
#include <functional>
#include <mutex>
#include <utility>

#include "src/dyadic/endpoint_transform.h"
#include "src/estimators/join_estimator.h"
#include "src/estimators/range_query_estimator.h"
#include "src/sketch/serialize.h"
#include "src/store/parallel_ingest.h"

namespace spatialsketch {

namespace {

Shape ShapeForKind(DatasetKind kind, uint32_t dims) {
  switch (kind) {
    case DatasetKind::kRange:
      return Shape::RangeShape(dims);
    case DatasetKind::kJoinR:
    case DatasetKind::kJoinS:
      return Shape::JoinShape(dims);
  }
  SKETCH_CHECK(false);
  return Shape();
}

/// Validate an ORIGINAL-coordinate box against the dataset's original
/// domain and map it into the transformed domain per the dataset's kind.
/// Returns OK with *dropped=true (and no *out) for degenerate boxes.
Status MapForIngest(DatasetKind kind, const StoreSchemaOptions& opt,
                    const Box& box, Box* out, bool* dropped) {
  *dropped = false;
  if (!IsValid(box, opt.dims)) {
    return Status::InvalidArgument("box has lo > hi in some dimension");
  }
  const Coord bound = Coord{1} << opt.log2_domain;
  for (uint32_t d = 0; d < opt.dims; ++d) {
    if (box.hi[d] >= bound) {
      return Status::OutOfRange("box exceeds the schema's original domain");
    }
  }
  if (IsDegenerate(box, opt.dims)) {
    *dropped = true;
    return Status::OK();
  }
  *out = kind == DatasetKind::kJoinS
             ? EndpointTransform::ShrinkS(box, opt.dims)
             : EndpointTransform::MapR(box, opt.dims);
  return Status::OK();
}

// Store snapshots wrap the serialize.h sketch blob with a tagged header:
// kJoinR and kJoinS datasets share shape AND schema configuration but
// ingest through different coordinate mappings, so without the kind tag a
// kJoinS snapshot would restore into a kJoinR dataset (and vice versa)
// and silently serve wrong joins.
constexpr char kSnapshotMagic[4] = {'S', 'S', 'T', '1'};
constexpr size_t kSnapshotHeader = sizeof(kSnapshotMagic) + 1;

}  // namespace

Status SketchStore::RegisterSchema(const std::string& name,
                                   const StoreSchemaOptions& opt) {
  auto schema =
      MakeTransformedSchema(opt.dims, opt.log2_domain, opt.max_level,
                            /*per_dim_caps=*/nullptr, opt.k1, opt.k2, opt.seed);
  if (!schema.ok()) return schema.status();

  std::unique_lock<FairSharedMutex> lock(registry_mu_);
  if (!schemas_.emplace(name, SchemaEntry{opt, *schema}).second) {
    return Status::InvalidArgument("schema '" + name + "' already exists");
  }
  return Status::OK();
}

Status SketchStore::CreateDataset(const std::string& name,
                                  const std::string& schema_name,
                                  DatasetKind kind) {
  SchemaEntry entry;
  {
    std::shared_lock<FairSharedMutex> lock(registry_mu_);
    auto it = schemas_.find(schema_name);
    if (it == schemas_.end()) {
      return Status::InvalidArgument("unknown schema '" + schema_name + "'");
    }
    entry = it->second;
  }

  // Allocate and zero the counter array OFF the registry lock — for wide
  // schemas it is the expensive part, and every store operation's name
  // lookup would stall behind it. (Schemas are never removed, so the
  // copied entry cannot go stale.)
  DatasetSketch sketch(entry.schema, ShapeForKind(kind, entry.opt.dims));
  auto dataset =
      std::make_shared<Dataset>(kind, entry.opt, std::move(sketch));

  std::unique_lock<FairSharedMutex> lock(registry_mu_);
  if (!datasets_.emplace(name, std::move(dataset)).second) {
    return Status::InvalidArgument("dataset '" + name + "' already exists");
  }
  return Status::OK();
}

Status SketchStore::DropDataset(const std::string& name) {
  std::unique_lock<FairSharedMutex> lock(registry_mu_);
  if (datasets_.erase(name) == 0) {
    return Status::InvalidArgument("unknown dataset '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> SketchStore::ListDatasets() const {
  std::shared_lock<FairSharedMutex> lock(registry_mu_);
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, unused] : datasets_) names.push_back(name);
  return names;
}

Result<SchemaPtr> SketchStore::GetSchema(const std::string& name) const {
  std::shared_lock<FairSharedMutex> lock(registry_mu_);
  auto it = schemas_.find(name);
  if (it == schemas_.end()) {
    return Status::InvalidArgument("unknown schema '" + name + "'");
  }
  return it->second.schema;
}

Result<SketchStore::DatasetPtr> SketchStore::Find(
    const std::string& name) const {
  std::shared_lock<FairSharedMutex> lock(registry_mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::InvalidArgument("unknown dataset '" + name + "'");
  }
  return it->second;
}

Status SketchStore::ApplyStreaming(const std::string& dataset, const Box& box,
                                   int sign) {
  auto found = Find(dataset);
  if (!found.ok()) return found.status();
  Dataset& ds = **found;

  Box mapped;
  bool dropped = false;
  SKETCH_RETURN_NOT_OK(MapForIngest(ds.kind, ds.opt, box, &mapped, &dropped));
  if (dropped) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  // Sharded fast path: one acquire load; the pointer is published once
  // and never cleared, so a non-null read is safe without the dataset
  // lock. The update lands in the calling thread's shard delta and folds
  // into the master only at epoch boundaries.
  if (WriterShardSet* ws = ds.shards_live.load(std::memory_order_acquire)) {
    const uint32_t folds = ws->Apply(mapped, sign, &ds.sketch, &ds.mu);
    if (folds > 0) {
      epoch_folds_.fetch_add(folds, std::memory_order_relaxed);
    }
  } else {
    std::unique_lock<FairSharedMutex> lock(ds.mu);
    if (sign > 0) {
      ds.sketch.Insert(mapped);
    } else {
      ds.sketch.Delete(mapped);
    }
  }
  (sign > 0 ? inserts_ : deletes_).fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status SketchStore::ConfigureShardedWriters(const std::string& dataset,
                                            const ShardedWriterOptions& opt) {
  if (opt.writers < 1) {
    return Status::InvalidArgument("sharded writers require writers >= 1");
  }
  if (opt.epoch_updates < 1) {
    return Status::InvalidArgument("epoch_updates must be >= 1");
  }
  auto found = Find(dataset);
  if (!found.ok()) return found.status();
  Dataset& ds = **found;
  std::unique_lock<FairSharedMutex> lock(ds.mu);
  if (ds.shards != nullptr) {
    return Status::FailedPrecondition(
        "dataset '" + dataset + "' already has sharded writers configured");
  }
  ds.shards = std::make_unique<WriterShardSet>(ds.sketch.schema(),
                                               ds.sketch.shape(), opt);
  ds.shards_live.store(ds.shards.get(), std::memory_order_release);
  return Status::OK();
}

void SketchStore::FenceDataset(Dataset& ds) const {
  WriterShardSet* ws = ds.shards_live.load(std::memory_order_acquire);
  if (ws == nullptr) return;
  const uint32_t folded = ws->Fence(&ds.sketch, &ds.mu);
  if (folded > 0) {
    epoch_folds_.fetch_add(folded, std::memory_order_relaxed);
  }
  fences_.fetch_add(1, std::memory_order_relaxed);
}

Status SketchStore::Fence(const std::string& dataset) {
  auto found = Find(dataset);
  if (!found.ok()) return found.status();
  FenceDataset(**found);
  return Status::OK();
}

Status SketchStore::Insert(const std::string& dataset, const Box& box) {
  return ApplyStreaming(dataset, box, +1);
}

Status SketchStore::Delete(const std::string& dataset, const Box& box) {
  return ApplyStreaming(dataset, box, -1);
}

Status SketchStore::MergeDelta(const std::string& name,
                               const std::vector<Box>& boxes,
                               uint32_t num_threads, int sign) {
  if (sign != 1 && sign != -1) {
    return Status::InvalidArgument("bulk-load sign must be +1 or -1");
  }
  auto found = Find(name);
  if (!found.ok()) return found.status();
  Dataset& ds = **found;

  // Validate and map the whole batch up front so a bad box rejects the
  // batch without partially applying it.
  std::vector<Box> mapped;
  mapped.reserve(boxes.size());
  uint64_t dropped_count = 0;
  for (const Box& box : boxes) {
    Box out;
    bool dropped = false;
    SKETCH_RETURN_NOT_OK(MapForIngest(ds.kind, ds.opt, box, &out, &dropped));
    if (dropped) {
      ++dropped_count;
    } else {
      mapped.push_back(out);
    }
  }

  // Build the delta OFF the dataset lock; readers keep being served from
  // the live sketch until the (cheap, counter-addition) Merge below.
  DatasetSketch delta(ds.sketch.schema(), ds.sketch.shape());
  ShardedLoadOptions opt;
  opt.num_threads = num_threads;  // 0 keeps the auto-detect documented there
  ShardedBulkLoad(&delta, mapped, sign, opt);

  {
    std::unique_lock<FairSharedMutex> lock(ds.mu);
    ds.sketch.Merge(delta);
  }
  dropped_.fetch_add(dropped_count, std::memory_order_relaxed);
  bulk_boxes_.fetch_add(mapped.size(), std::memory_order_relaxed);
  return Status::OK();
}

Status SketchStore::BulkLoad(const std::string& dataset,
                             const std::vector<Box>& boxes, int sign) {
  return MergeDelta(dataset, boxes, /*num_threads=*/1, sign);
}

QueryPool& SketchStore::Pool() const {
  std::call_once(pool_once_, [this] { pool_ = std::make_unique<QueryPool>(); });
  return *pool_;
}

Status SketchStore::ParallelBulkLoad(const std::string& dataset,
                                     const std::vector<Box>& boxes,
                                     uint32_t num_threads, int sign) {
  return MergeDelta(dataset, boxes, num_threads, sign);
}

namespace {

/// Shared precondition check of both range-estimate entry points: the
/// dataset must be kRange and the query valid, non-degenerate, and within
/// the schema's original domain.
Status ValidateRangeQuery(DatasetKind kind, const StoreSchemaOptions& opt,
                          const Box& query) {
  if (kind != DatasetKind::kRange) {
    return Status::FailedPrecondition(
        "range estimates require a kRange dataset");
  }
  if (!IsValid(query, opt.dims) || IsDegenerate(query, opt.dims)) {
    return Status::InvalidArgument(
        "query box must be valid and non-degenerate in every dimension");
  }
  const Coord bound = Coord{1} << opt.log2_domain;
  for (uint32_t d = 0; d < opt.dims; ++d) {
    if (query.hi[d] >= bound) {
      return Status::OutOfRange("query exceeds the schema's original domain");
    }
  }
  return Status::OK();
}

}  // namespace

Result<double> SketchStore::EstimateRangeCount(const std::string& dataset,
                                               const Box& query) const {
  auto found = Find(dataset);
  if (!found.ok()) return found.status();
  const Dataset& ds = **found;
  SKETCH_RETURN_NOT_OK(ValidateRangeQuery(ds.kind, ds.opt, query));
  std::shared_lock<FairSharedMutex> lock(ds.mu);
  const double est = spatialsketch::EstimateRangeCount(ds.sketch, query);
  lock.unlock();
  range_estimates_.fetch_add(1, std::memory_order_relaxed);
  return est;
}

Result<double> SketchStore::EstimateRangeSelectivity(
    const std::string& dataset, const Box& query) const {
  auto found = Find(dataset);
  if (!found.ok()) return found.status();
  const Dataset& ds = **found;
  SKETCH_RETURN_NOT_OK(ValidateRangeQuery(ds.kind, ds.opt, query));
  // Count and object total under ONE shared lock so the ratio is a
  // consistent cut even while writers stream in.
  std::shared_lock<FairSharedMutex> lock(ds.mu);
  const int64_t n = ds.sketch.num_objects();
  const double est =
      n <= 0 ? 0.0 : spatialsketch::EstimateRangeCount(ds.sketch, query) /
                         static_cast<double>(n);
  lock.unlock();
  range_estimates_.fetch_add(1, std::memory_order_relaxed);
  return est;
}

Result<std::vector<double>> SketchStore::EstimateRangeBatch(
    const std::string& dataset, const std::vector<Box>& queries) const {
  if (queries.empty()) {
    return Status::InvalidArgument("range batch must be non-empty");
  }
  auto found = Find(dataset);
  if (!found.ok()) return found.status();
  const Dataset& ds = **found;
  // Validate the whole batch before any work so a bad query rejects the
  // batch without partially serving it.
  for (const Box& query : queries) {
    SKETCH_RETURN_NOT_OK(ValidateRangeQuery(ds.kind, ds.opt, query));
  }
  QueryPool& pool = Pool();

  // Decompositions and sign columns depend only on the schema, so the
  // plan builds OFF the dataset lock; only the counter walk below needs
  // the counters pinned. One shared acquisition covers the whole batch —
  // the pool workers read the counters under the submitter's lock.
  RangeQueryBatch batch(&ds.sketch, queries.data(), queries.size());
  std::vector<double> out(queries.size());
  std::shared_lock<FairSharedMutex> lock(ds.mu);
  pool.ParallelFor(queries.size(),
                   [&](size_t i) { out[i] = batch.EstimateOne(i); });
  lock.unlock();
  range_estimates_.fetch_add(queries.size(), std::memory_order_relaxed);
  return out;
}

Result<std::vector<double>> SketchStore::EstimateJoinBatch(
    const std::string& r_dataset,
    const std::vector<std::string>& s_datasets) const {
  if (s_datasets.empty()) {
    return Status::InvalidArgument("join batch must be non-empty");
  }
  auto r_found = Find(r_dataset);
  if (!r_found.ok()) return r_found.status();
  const Dataset& r = **r_found;
  if (r.kind != DatasetKind::kJoinR) {
    return Status::FailedPrecondition(
        "join requires a kJoinR dataset joined against kJoinS datasets");
  }
  std::vector<DatasetPtr> s_list;
  s_list.reserve(s_datasets.size());
  for (const std::string& name : s_datasets) {
    auto s_found = Find(name);
    if (!s_found.ok()) return s_found.status();
    if ((*s_found)->kind != DatasetKind::kJoinS) {
      return Status::FailedPrecondition(
          "join requires a kJoinR dataset joined against kJoinS datasets");
    }
    s_list.push_back(*s_found);
  }
  QueryPool& pool = Pool();

  // Each distinct dataset's shared lock is taken exactly once, in address
  // order (same total order as EstimateJoin, so batches cannot cycle with
  // single joins through a queued writer).
  std::vector<const Dataset*> distinct;
  distinct.reserve(s_list.size() + 1);
  distinct.push_back(&r);
  for (const DatasetPtr& s : s_list) distinct.push_back(s.get());
  std::sort(distinct.begin(), distinct.end(), std::less<const Dataset*>());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  std::vector<std::shared_lock<FairSharedMutex>> locks;
  locks.reserve(distinct.size());
  for (const Dataset* ds : distinct) locks.emplace_back(ds->mu);

  // One amortized R-row walk per chunk (EstimateJoinCardinalityBatch),
  // chunks fanned across the pool; per-pair values are bit-identical to
  // single EstimateJoin calls either way.
  std::vector<const DatasetSketch*> s_sketches;
  s_sketches.reserve(s_list.size());
  for (const DatasetPtr& s : s_list) s_sketches.push_back(&s->sketch);
  const size_t parts =
      std::min(s_list.size(), static_cast<size_t>(pool.num_threads()) + 1);
  const size_t per_part = (s_list.size() + parts - 1) / parts;
  std::vector<double> out(s_list.size());
  Status first_error;
  std::mutex error_mu;
  pool.ParallelFor(parts, [&](size_t p) {
    const size_t begin = p * per_part;
    const size_t end = std::min(begin + per_part, s_list.size());
    if (begin >= end) return;
    const std::vector<const DatasetSketch*> sub(
        s_sketches.begin() + begin, s_sketches.begin() + end);
    auto est = EstimateJoinCardinalityBatch(r.sketch, sub);
    if (est.ok()) {
      std::copy(est->begin(), est->end(), out.begin() + begin);
    } else {
      std::lock_guard<std::mutex> g(error_mu);
      if (first_error.ok()) first_error = est.status();
    }
  });
  locks.clear();
  if (!first_error.ok()) return first_error;
  join_estimates_.fetch_add(s_list.size(), std::memory_order_relaxed);
  return out;
}

Result<double> SketchStore::EstimateJoin(const std::string& r_dataset,
                                         const std::string& s_dataset) const {
  auto r_found = Find(r_dataset);
  if (!r_found.ok()) return r_found.status();
  auto s_found = Find(s_dataset);
  if (!s_found.ok()) return s_found.status();
  const Dataset& r = **r_found;
  const Dataset& s = **s_found;
  if (r.kind != DatasetKind::kJoinR || s.kind != DatasetKind::kJoinS) {
    return Status::FailedPrecondition(
        "join requires a kJoinR dataset joined against a kJoinS dataset");
  }

  // Address-ordered acquisition: two concurrent joins over the same pair
  // in opposite roles cannot cycle through a queued writer. std::less is
  // the guaranteed total order over unrelated objects' pointers; raw '<'
  // is unspecified there.
  const Dataset* first = &r;
  const Dataset* second = &s;
  if (std::less<const Dataset*>()(second, first)) std::swap(first, second);
  std::shared_lock<FairSharedMutex> lock_first(first->mu);
  std::shared_lock<FairSharedMutex> lock_second(second->mu);
  auto est = EstimateJoinCardinality(r.sketch, s.sketch);
  lock_second.unlock();
  lock_first.unlock();
  if (est.ok()) join_estimates_.fetch_add(1, std::memory_order_relaxed);
  return est;
}

Result<int64_t> SketchStore::NumObjects(const std::string& dataset) const {
  auto found = Find(dataset);
  if (!found.ok()) return found.status();
  Dataset& ds = **found;
  FenceDataset(ds);
  std::shared_lock<FairSharedMutex> lock(ds.mu);
  return ds.sketch.num_objects();
}

Result<std::vector<int64_t>> SketchStore::CounterSnapshot(
    const std::string& dataset) const {
  auto found = Find(dataset);
  if (!found.ok()) return found.status();
  Dataset& ds = **found;
  FenceDataset(ds);
  std::shared_lock<FairSharedMutex> lock(ds.mu);
  return ds.sketch.counters();
}

Result<std::string> SketchStore::Snapshot(const std::string& dataset) const {
  auto found = Find(dataset);
  if (!found.ok()) return found.status();
  Dataset& ds = **found;
  FenceDataset(ds);
  std::string blob(kSnapshotMagic, sizeof(kSnapshotMagic));
  blob.push_back(static_cast<char>(ds.kind));
  std::shared_lock<FairSharedMutex> lock(ds.mu);
  blob += SerializeSketch(ds.sketch);
  lock.unlock();
  snapshots_.fetch_add(1, std::memory_order_relaxed);
  return blob;
}

Status SketchStore::Restore(const std::string& dataset,
                            const std::string& blob) {
  auto found = Find(dataset);
  if (!found.ok()) return found.status();
  Dataset& ds = **found;

  if (blob.size() < kSnapshotHeader ||
      blob.compare(0, sizeof(kSnapshotMagic), kSnapshotMagic,
                   sizeof(kSnapshotMagic)) != 0) {
    return Status::InvalidArgument("not a SketchStore snapshot blob");
  }
  if (static_cast<DatasetKind>(blob[sizeof(kSnapshotMagic)]) != ds.kind) {
    return Status::FailedPrecondition(
        "snapshot was taken from a dataset of a different kind");
  }

  // Pre-restore shard deltas must fold BEFORE the counters are replaced:
  // folded later they would silently add pre-restore updates to the
  // restored state. Updates racing past this fence land after the
  // restore, as some sequential order must place them.
  FenceDataset(ds);

  // Deserialize off-lock (the expensive part), adopt under the writer
  // lock. AdoptCountersFrom validates shape and schema-configuration
  // equality and keeps the dataset's shared schema instance, so restored
  // datasets remain joinable with their schema-mates.
  auto restored = DeserializeSketch(blob.substr(kSnapshotHeader));
  if (!restored.ok()) return restored.status();

  std::unique_lock<FairSharedMutex> lock(ds.mu);
  SKETCH_RETURN_NOT_OK(ds.sketch.AdoptCountersFrom(*restored));
  lock.unlock();
  restores_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

StoreStats SketchStore::stats() const {
  StoreStats s;
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.deletes = deletes_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.bulk_boxes = bulk_boxes_.load(std::memory_order_relaxed);
  s.range_estimates = range_estimates_.load(std::memory_order_relaxed);
  s.join_estimates = join_estimates_.load(std::memory_order_relaxed);
  s.snapshots = snapshots_.load(std::memory_order_relaxed);
  s.restores = restores_.load(std::memory_order_relaxed);
  s.epoch_folds = epoch_folds_.load(std::memory_order_relaxed);
  s.fences = fences_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace spatialsketch
