#include "src/store/durability/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/common/failpoints.h"

namespace spatialsketch {
namespace durability {

namespace {

std::string ErrnoMessage(const std::string& op, const std::string& path) {
  return op + " '" + path + "': " + std::strerror(errno);
}

Status WriteFully(int fd, const char* data, size_t n,
                  const std::string& path) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("write", path));
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0) return Status::OK();
  if (errno == EEXIST) {
    struct stat st;
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      return Status::OK();
    }
    return Status::IOError("'" + path + "' exists and is not a directory");
  }
  return Status::IOError(ErrnoMessage("mkdir", path));
}

Status FsyncFd(int fd, const std::string& what) {
  if (SKETCH_FAILPOINT("fsync")) {
    return Status::IOError("injected fsync failure on " + what);
  }
  if (::fsync(fd) != 0) {
    return Status::IOError(ErrnoMessage("fsync", what));
  }
  return Status::OK();
}

Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IOError(ErrnoMessage("open dir", dir));
  Status st = FsyncFd(fd, dir);
  ::close(fd);
  return st;
}

Result<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError(ErrnoMessage("open", path));
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      const Status st = Status::IOError(ErrnoMessage("read", path));
      ::close(fd);
      return st;
    }
    if (r == 0) break;
    out.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return out;
}

Status WriteFileAtomic(const std::string& path, const std::string& data,
                       const char* fp_tmp, const char* fp_rename) {
  const std::string tmp = path + ".tmp";
  if (fp_tmp != nullptr && SKETCH_FAILPOINT(fp_tmp)) {
    return Status::IOError(std::string("injected failure at failpoint '") +
                           fp_tmp + "'");
  }
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("open", tmp));
  Status st = WriteFully(fd, data.data(), data.size(), tmp);
  if (st.ok()) st = FsyncFd(fd, tmp);
  ::close(fd);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (fp_rename != nullptr && SKETCH_FAILPOINT(fp_rename)) {
    // Simulated crash between the tmp publish and the rename: the tmp
    // file is left behind exactly as a real crash would leave it.
    return Status::IOError(std::string("injected failure at failpoint '") +
                           fp_rename + "'");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status rn = Status::IOError(ErrnoMessage("rename", tmp));
    ::unlink(tmp.c_str());
    return rn;
  }
  // Make the rename itself durable.
  const size_t slash = path.find_last_of('/');
  return FsyncDir(slash == std::string::npos ? "." : path.substr(0, slash));
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Status::IOError(ErrnoMessage("opendir", dir));
  std::vector<std::string> names;
  while (struct dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(ErrnoMessage("unlink", path));
  }
  return Status::OK();
}

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace durability
}  // namespace spatialsketch
