#include "src/store/durability/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "src/common/crc32c.h"
#include "src/store/durability/fs.h"
#include "src/store/durability/wal.h"

namespace spatialsketch {
namespace durability {

namespace {

constexpr char kMagic[4] = {'S', 'P', 'C', 'K'};
constexpr uint32_t kVersion = 1;

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

void PutSchemaOptions(std::string* out, const StoreSchemaOptions& opt) {
  PutU32(out, opt.dims);
  PutU32(out, opt.log2_domain);
  PutU32(out, opt.max_level);
  PutU32(out, opt.k1);
  PutU32(out, opt.k2);
  PutU64(out, opt.seed);
}

bool GetSchemaOptions(BodyReader* r, StoreSchemaOptions* opt) {
  return r->GetU32(&opt->dims) && r->GetU32(&opt->log2_domain) &&
         r->GetU32(&opt->max_level) && r->GetU32(&opt->k1) &&
         r->GetU32(&opt->k2) && r->GetU64(&opt->seed);
}

void PutDatasetOptions(std::string* out, const DatasetOptions& dopt) {
  PutU64(out, dopt.eps);
  PutU8(out, static_cast<uint8_t>(dopt.layout));
  PutU8(out, static_cast<uint8_t>(dopt.counter_width));
  PutU8(out, static_cast<uint8_t>(dopt.backing));
  PutU64(out, DoubleBits(dopt.target_epsilon));
  PutU64(out, DoubleBits(dopt.target_phi));
  PutU64(out, DoubleBits(dopt.variance_over_q2));
  PutU64(out, dopt.max_bytes);
}

bool GetDatasetOptions(BodyReader* r, DatasetOptions* dopt) {
  uint8_t layout, width, backing;
  uint64_t eps_bits, phi_bits, var_bits;
  if (!r->GetU64(&dopt->eps) || !r->GetU8(&layout) || !r->GetU8(&width) ||
      !r->GetU8(&backing) || !r->GetU64(&eps_bits) || !r->GetU64(&phi_bits) ||
      !r->GetU64(&var_bits) || !r->GetU64(&dopt->max_bytes)) {
    return false;
  }
  if (layout > static_cast<uint8_t>(CounterLayout::kBlocked) ||
      width > static_cast<uint8_t>(CounterWidth::kI32) ||
      backing > static_cast<uint8_t>(CounterBacking::kHugePage)) {
    return false;
  }
  dopt->layout = static_cast<CounterLayout>(layout);
  dopt->counter_width = static_cast<CounterWidth>(width);
  dopt->backing = static_cast<CounterBacking>(backing);
  dopt->target_epsilon = BitsToDouble(eps_bits);
  dopt->target_phi = BitsToDouble(phi_bits);
  dopt->variance_over_q2 = BitsToDouble(var_bits);
  return true;
}

std::string EncodeCheckpoint(const CheckpointImage& image) {
  std::string out(kMagic, sizeof(kMagic));
  PutU32(&out, kVersion);
  PutU64(&out, image.lsn);
  PutU32(&out, static_cast<uint32_t>(image.schemas.size()));
  for (const CheckpointSchema& schema : image.schemas) {
    PutBytes(&out, schema.name);
    PutSchemaOptions(&out, schema.opt);
  }
  PutU32(&out, static_cast<uint32_t>(image.datasets.size()));
  for (const CheckpointDataset& ds : image.datasets) {
    PutBytes(&out, ds.name);
    PutBytes(&out, ds.schema_name);
    PutU8(&out, static_cast<uint8_t>(ds.kind));
    PutDatasetOptions(&out, ds.dopt);
    PutBytes(&out, ds.blob);
  }
  PutU32(&out, Crc32c(out));
  return out;
}

Result<CheckpointImage> DecodeCheckpoint(const std::string& data) {
  const Status corrupt =
      Status::InvalidArgument("corrupt or truncated checkpoint file");
  if (data.size() < sizeof(kMagic) + 4 + 8 + 4 + 4 + 4 ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return corrupt;
  }
  // Trailer CRC over everything before it.
  const size_t body_size = data.size() - 4;
  BodyReader trailer(data.data() + body_size, 4);
  uint32_t stored_crc = 0;
  trailer.GetU32(&stored_crc);
  if (Crc32c(data.data(), body_size) != stored_crc) return corrupt;

  BodyReader r(data.data() + sizeof(kMagic), body_size - sizeof(kMagic));
  uint32_t version = 0;
  CheckpointImage image;
  uint32_t num_schemas = 0;
  if (!r.GetU32(&version) || version != kVersion || !r.GetU64(&image.lsn) ||
      !r.GetU32(&num_schemas)) {
    return corrupt;
  }
  image.schemas.reserve(num_schemas);
  for (uint32_t i = 0; i < num_schemas; ++i) {
    CheckpointSchema schema;
    if (!r.GetBytes(&schema.name) || !GetSchemaOptions(&r, &schema.opt)) {
      return corrupt;
    }
    image.schemas.push_back(std::move(schema));
  }
  uint32_t num_datasets = 0;
  if (!r.GetU32(&num_datasets)) return corrupt;
  image.datasets.reserve(num_datasets);
  for (uint32_t i = 0; i < num_datasets; ++i) {
    CheckpointDataset ds;
    uint8_t kind = 0;
    if (!r.GetBytes(&ds.name) || !r.GetBytes(&ds.schema_name) ||
        !r.GetU8(&kind) ||
        kind > static_cast<uint8_t>(DatasetKind::kContainOuter) ||
        !GetDatasetOptions(&r, &ds.dopt) || !r.GetBytes(&ds.blob)) {
      return corrupt;
    }
    ds.kind = static_cast<DatasetKind>(kind);
    image.datasets.push_back(std::move(ds));
  }
  if (!r.AtEnd()) return corrupt;
  return image;
}

std::string CheckpointFileName(uint64_t lsn) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "checkpoint-%020" PRIu64 ".ckpt", lsn);
  return buf;
}

std::string WalFileName(uint64_t first_lsn) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "wal-%020" PRIu64 ".log", first_lsn);
  return buf;
}

namespace {

bool ParseNumberedName(const std::string& name, const char* prefix,
                       const char* suffix, uint64_t* value) {
  const size_t prefix_len = std::strlen(prefix);
  const size_t suffix_len = std::strlen(suffix);
  if (name.size() <= prefix_len + suffix_len ||
      name.compare(0, prefix_len, prefix) != 0 ||
      name.compare(name.size() - suffix_len, suffix_len, suffix) != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *value = v;
  return true;
}

}  // namespace

bool ParseCheckpointFileName(const std::string& name, uint64_t* lsn) {
  return ParseNumberedName(name, "checkpoint-", ".ckpt", lsn);
}

bool ParseWalFileName(const std::string& name, uint64_t* first_lsn) {
  return ParseNumberedName(name, "wal-", ".log", first_lsn);
}

Status WriteCheckpoint(const std::string& dir, const CheckpointImage& image) {
  const std::string path = dir + "/" + CheckpointFileName(image.lsn);
  SKETCH_RETURN_NOT_OK(WriteFileAtomic(path, EncodeCheckpoint(image),
                                       "checkpoint-tmp", "checkpoint-rename"));
  // Publish as current. A crash before this rewrite leaves the previous
  // checkpoint current with its WAL tail intact — LoadCurrentCheckpoint
  // also falls back to the highest-LSN decodable file.
  return WriteFileAtomic(dir + "/CURRENT", CheckpointFileName(image.lsn),
                         nullptr, "checkpoint-current");
}

Result<CheckpointImage> LoadCurrentCheckpoint(const std::string& dir,
                                              bool* found) {
  *found = false;

  // First choice: the file CURRENT names.
  if (PathExists(dir + "/CURRENT")) {
    auto current = ReadFileToString(dir + "/CURRENT");
    if (current.ok()) {
      // Tolerate a trailing newline from manual inspection/edits.
      std::string name = *current;
      while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) {
        name.pop_back();
      }
      uint64_t lsn = 0;
      if (ParseCheckpointFileName(name, &lsn) &&
          PathExists(dir + "/" + name)) {
        auto data = ReadFileToString(dir + "/" + name);
        if (data.ok()) {
          auto image = DecodeCheckpoint(*data);
          if (image.ok()) {
            *found = true;
            return image;
          }
        }
      }
    }
  }

  // Fallback: the highest-LSN checkpoint file that decodes cleanly.
  auto names = ListDir(dir);
  if (!names.ok()) return names.status();
  CheckpointImage best;
  bool have_best = false;
  for (const std::string& name : *names) {
    uint64_t lsn = 0;
    if (!ParseCheckpointFileName(name, &lsn)) continue;
    if (have_best && lsn <= best.lsn) continue;
    auto data = ReadFileToString(dir + "/" + name);
    if (!data.ok()) continue;
    auto image = DecodeCheckpoint(*data);
    if (!image.ok()) continue;
    best = std::move(*image);
    have_best = true;
  }
  if (have_best) {
    *found = true;
    return best;
  }
  return CheckpointImage{};
}

}  // namespace durability
}  // namespace spatialsketch
