// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// DurabilityManager method bodies plus the SketchStore durability entry
// points that need the full durability machinery (OpenDurable,
// Checkpoint, replay) — kept here so sketch_store.cc stays focused on
// serving and only calls through the thin Log*/CommitShared seams.

#include "src/store/durability/recovery.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/failpoints.h"
#include "src/sketch/serialize.h"
#include "src/store/dataset_state.h"
#include "src/store/durability/fs.h"
#include "src/store/sketch_store.h"

namespace spatialsketch {
namespace internal {

namespace {

// One framed record costs the 8-byte frame header plus the 13-byte
// payload prefix (type + lsn + name length) over the name and body — the
// WAL's wire format (wal.h). Computed here (not read back from the
// writer) so the byte accounting is race-free under concurrent appends.
uint64_t FrameBytes(const std::string& name, const std::string& body) {
  return 8 + 13 + name.size() + body.size();
}

}  // namespace

Status DurabilityManager::Append(durability::WalRecordType type,
                                 const std::string& name,
                                 const std::string& body,
                                 bool epoch_granular) {
  // Recovery drives the normal store entry points; it must not re-log
  // what it replays.
  if (replaying()) return Status::OK();
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "durable store has no open WAL segment");
  }
  const bool sync = opt_.sync == WalSyncPolicy::kAlways ||
                    (opt_.sync == WalSyncPolicy::kEpoch && epoch_granular);
  SKETCH_RETURN_NOT_OK(wal_->Append(type, name, body, sync,
                                    /*lsn_out=*/nullptr));
  wal_records_.fetch_add(1, std::memory_order_relaxed);
  wal_bytes_.fetch_add(FrameBytes(name, body), std::memory_order_relaxed);
  return Status::OK();
}

Status DurabilityManager::LogRegisterSchema(const std::string& name,
                                            const StoreSchemaOptions& opt) {
  std::string body;
  durability::PutSchemaOptions(&body, opt);
  return Append(durability::WalRecordType::kRegisterSchema, name, body,
                /*epoch_granular=*/true);
}

Status DurabilityManager::LogCreateDataset(const std::string& name,
                                           const std::string& schema_name,
                                           DatasetKind kind,
                                           const DatasetOptions& dopt) {
  std::string body;
  durability::PutBytes(&body, schema_name);
  durability::PutU8(&body, static_cast<uint8_t>(kind));
  durability::PutDatasetOptions(&body, dopt);
  return Append(durability::WalRecordType::kCreateDataset, name, body,
                /*epoch_granular=*/true);
}

Status DurabilityManager::LogDropDataset(const std::string& name) {
  return Append(durability::WalRecordType::kDropDataset, name, std::string(),
                /*epoch_granular=*/true);
}

Status DurabilityManager::LogUpdate(const std::string& dataset,
                                    const Box& mapped, int sign) {
  std::string body;
  durability::PutU8(&body, sign > 0 ? 1 : 0);
  for (uint32_t d = 0; d < kMaxDims; ++d) {
    durability::PutU64(&body, mapped.lo[d]);
  }
  for (uint32_t d = 0; d < kMaxDims; ++d) {
    durability::PutU64(&body, mapped.hi[d]);
  }
  return Append(durability::WalRecordType::kUpdate, dataset, body,
                /*epoch_granular=*/false);
}

Status DurabilityManager::LogDelta(const std::string& dataset,
                                   const std::string& delta_blob) {
  if (SKETCH_FAILPOINT("wal-fold")) {
    return Status::IOError("injected failure: wal-fold");
  }
  return Append(durability::WalRecordType::kDelta, dataset, delta_blob,
                /*epoch_granular=*/true);
}

Status DurabilityManager::LogRestore(const std::string& dataset,
                                     const std::string& blob) {
  return Append(durability::WalRecordType::kRestore, dataset, blob,
                /*epoch_granular=*/true);
}

Status DurabilityManager::Sync() {
  if (wal_ == nullptr) return Status::OK();
  return wal_->Sync();
}

Status DurabilityManager::OpenWalSegment(uint64_t first_lsn) {
  const std::string path = dir_ + "/" + durability::WalFileName(first_lsn);
  // A same-named file can linger from a previous incarnation (a crash
  // between a checkpoint's CURRENT rewrite and its segment GC, with the
  // segment holding only a torn frame). Its clean records are covered by
  // the checkpoint that names this first_lsn; appending AFTER torn bytes
  // would make the new records unreachable — start the segment fresh.
  SKETCH_RETURN_NOT_OK(durability::RemoveFile(path));
  auto writer = durability::WalWriter::Open(path, first_lsn);
  if (!writer.ok()) return writer.status();
  wal_ = std::move(*writer);
  // Make the segment's directory entry durable so recovery can find it.
  return durability::FsyncDir(dir_);
}

uint64_t DurabilityManager::last_lsn() const {
  return wal_ != nullptr ? wal_->last_lsn() : base_lsn_;
}

uint64_t DurabilityManager::bytes_since_checkpoint() const {
  return wal_bytes_.load(std::memory_order_relaxed) -
         checkpoint_wal_bytes_.load(std::memory_order_relaxed);
}

Status DurabilityManager::InstallCheckpoint(
    const durability::CheckpointImage& image) {
  SKETCH_RETURN_NOT_OK(durability::WriteCheckpoint(dir_, image));
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  checkpoint_wal_bytes_.store(wal_bytes_.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
  // Rotate to a fresh segment. The checkpoint was a stop-the-world cut
  // (caller holds commit_mu exclusively), so every record in every
  // existing segment has lsn <= image.lsn — the old segments are fully
  // superseded the moment the rotation succeeds.
  if (SKETCH_FAILPOINT("checkpoint-rotate")) {
    return Status::IOError("injected failure: checkpoint-rotate");
  }
  SKETCH_RETURN_NOT_OK(OpenWalSegment(image.lsn + 1));
  // Garbage-collect superseded segments and older checkpoints. Best
  // effort: a leftover file is re-collected by the next checkpoint, and
  // recovery tolerates it (replay skips covered LSNs; checkpoint loading
  // prefers CURRENT).
  auto names = durability::ListDir(dir_);
  if (!names.ok()) return names.status();
  for (const std::string& name : *names) {
    uint64_t value = 0;
    if (durability::ParseWalFileName(name, &value)) {
      if (value <= image.lsn) {
        (void)durability::RemoveFile(dir_ + "/" + name);
      }
    } else if (durability::ParseCheckpointFileName(name, &value)) {
      if (value < image.lsn) {
        (void)durability::RemoveFile(dir_ + "/" + name);
      }
    }
  }
  return Status::OK();
}

}  // namespace internal

// ---- SketchStore durability entry points --------------------------------

Result<std::unique_ptr<SketchStore>> SketchStore::OpenDurable(
    const std::string& dir, const DurabilityOptions& opt) {
  SKETCH_RETURN_NOT_OK(durability::EnsureDir(dir));
  bool found = false;
  auto image = durability::LoadCurrentCheckpoint(dir, &found);
  if (!image.ok()) return image.status();

  auto store = std::make_unique<SketchStore>();
  store->durability_ =
      std::make_unique<internal::DurabilityManager>(dir, opt);
  internal::DurabilityManager* mgr = store->durability_.get();
  mgr->set_replaying(true);

  // Rebuild the checkpoint state through the NORMAL entry points:
  // re-creation is deterministic (equal options derive equal schema
  // instances and SLO sizing), then the counters adopt the snapshot
  // blobs. Log* calls no-op while replaying.
  for (const durability::CheckpointSchema& schema : image->schemas) {
    SKETCH_RETURN_NOT_OK(store->RegisterSchema(schema.name, schema.opt));
  }
  for (const durability::CheckpointDataset& ds : image->datasets) {
    SKETCH_RETURN_NOT_OK(
        store->CreateDataset(ds.name, ds.schema_name, ds.kind, ds.dopt));
    auto state = store->Find(ds.name);
    if (!state.ok()) return state.status();
    SKETCH_RETURN_NOT_OK(store->RestoreOn(**state, ds.blob, /*log=*/false));
  }

  // Replay the WAL tail in segment order, skipping records the
  // checkpoint covers. A torn or corrupt trailing frame is a CLEAN stop:
  // everything before it is applied, nothing after it is read — and the
  // torn record's operation was never applied pre-crash either
  // (log-before-apply), so the recovered state equals the accepted one.
  uint64_t base = image->lsn;
  uint64_t replayed = 0;
  auto names = durability::ListDir(dir);
  if (!names.ok()) return names.status();
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : *names) {
    uint64_t first = 0;
    if (durability::ParseWalFileName(name, &first)) {
      segments.emplace_back(first, name);
    }
  }
  std::sort(segments.begin(), segments.end());
  for (const auto& [first, name] : segments) {
    auto read = durability::ReadWalSegment(dir + "/" + name);
    if (!read.ok()) return read.status();
    for (const durability::WalRecord& rec : read->records) {
      if (rec.lsn <= image->lsn) continue;
      SKETCH_RETURN_NOT_OK(store->ReplayWalRecord(rec));
      if (rec.lsn > base) base = rec.lsn;
      ++replayed;
    }
    if (read->torn_tail) break;
  }
  mgr->set_base_lsn(base);
  mgr->set_replayed_records(replayed);
  mgr->set_replaying(false);

  // Recovery IS a checkpoint: persist the recovered state, rotate to a
  // fresh segment, and GC — so a torn tail is retired for good (a second
  // crash cannot trip over it) and reopen cost stays one log epoch.
  {
    std::unique_lock<FairSharedMutex> commit(mgr->commit_mu);
    SKETCH_RETURN_NOT_OK(store->CheckpointLocked());
  }
  return store;
}

Status SketchStore::Checkpoint() {
  if (durability_ == nullptr) {
    return Status::FailedPrecondition(
        "Checkpoint() requires a store opened via OpenDurable");
  }
  // Exclusive commit lock: a true stop-the-world cut — every logged
  // mutation is fully applied or not yet logged. Readers keep being
  // served (they never take the commit lock).
  std::unique_lock<FairSharedMutex> commit(durability_->commit_mu);
  return CheckpointLocked();
}

Status SketchStore::CheckpointLocked() {
  durability::CheckpointImage image;
  SKETCH_RETURN_NOT_OK(BuildCheckpointImage(&image));
  // The cut LSN is read AFTER the image's fences: a fence can fold shard
  // deltas, appending kDelta records the image already reflects.
  image.lsn = durability_->last_lsn();
  return durability_->InstallCheckpoint(image);
}

Status SketchStore::BuildCheckpointImage(durability::CheckpointImage* out) {
  if (SKETCH_FAILPOINT("snapshot-alloc")) {
    return Status::IOError("injected failure: snapshot-alloc");
  }
  std::shared_lock<FairSharedMutex> lock(registry_mu_);
  out->schemas.reserve(schemas_.size());
  for (const auto& [name, entry] : schemas_) {
    out->schemas.push_back(durability::CheckpointSchema{name, entry.opt});
  }
  out->datasets.reserve(datasets_.size());
  for (const auto& [name, state] : datasets_) {
    // No-commit fence: the caller already holds commit_mu exclusively,
    // and the fold hook's WAL appends are what the image.lsn cut (taken
    // after this) accounts for.
    SKETCH_RETURN_NOT_OK(FenceDatasetNoCommit(*state));
    durability::CheckpointDataset ds;
    ds.name = name;
    ds.schema_name = state->schema_name;
    ds.kind = state->kind;
    ds.dopt = state->dopt;
    ds.blob = BuildSnapshotBlob(*state);
    out->datasets.push_back(std::move(ds));
  }
  return Status::OK();
}

Status SketchStore::ReplayWalRecord(const durability::WalRecord& rec) {
  using durability::WalRecordType;
  const Status corrupt =
      Status::InvalidArgument("corrupt WAL record body");
  durability::BodyReader r(rec.body);
  switch (static_cast<WalRecordType>(rec.type)) {
    case WalRecordType::kRegisterSchema: {
      StoreSchemaOptions opt;
      if (!durability::GetSchemaOptions(&r, &opt) || !r.AtEnd()) {
        return corrupt;
      }
      return RegisterSchema(rec.name, opt);
    }
    case WalRecordType::kCreateDataset: {
      std::string schema_name;
      uint8_t kind = 0;
      DatasetOptions dopt;
      if (!r.GetBytes(&schema_name) || !r.GetU8(&kind) ||
          kind > static_cast<uint8_t>(DatasetKind::kContainOuter) ||
          !durability::GetDatasetOptions(&r, &dopt) || !r.AtEnd()) {
        return corrupt;
      }
      return CreateDataset(rec.name, schema_name,
                           static_cast<DatasetKind>(kind), dopt);
    }
    case WalRecordType::kDropDataset:
      return DropDataset(rec.name);
    case WalRecordType::kUpdate: {
      // The logged box is already MAPPED (post-MapForIngest); apply it
      // directly — re-validating or re-mapping would double-transform.
      uint8_t sign = 0;
      Box mapped;
      bool ok = r.GetU8(&sign);
      for (uint32_t d = 0; ok && d < kMaxDims; ++d) {
        ok = r.GetU64(&mapped.lo[d]);
      }
      for (uint32_t d = 0; ok && d < kMaxDims; ++d) {
        ok = r.GetU64(&mapped.hi[d]);
      }
      if (!ok || !r.AtEnd()) return corrupt;
      auto found = Find(rec.name);
      // Unknown target: the dataset was dropped later in the log (drop
      // records replay through DropDataset above) — skip, don't fail.
      if (!found.ok()) return Status::OK();
      internal::DatasetState& ds = **found;
      std::unique_lock<FairSharedMutex> lock(ds.mu);
      if (sign != 0) {
        ds.sketch.Insert(mapped);
      } else {
        ds.sketch.Delete(mapped);
      }
      return Status::OK();
    }
    case WalRecordType::kDelta: {
      auto found = Find(rec.name);
      if (!found.ok()) return Status::OK();
      auto delta = DeserializeSketch(rec.body);
      if (!delta.ok()) return delta.status();
      internal::DatasetState& ds = **found;
      std::unique_lock<FairSharedMutex> lock(ds.mu);
      // MergeFrom (not Merge): the replayed delta deserialized a FRESH
      // schema instance — configuration equality is the right test here.
      return ds.sketch.MergeFrom(*delta);
    }
    case WalRecordType::kRestore: {
      auto found = Find(rec.name);
      if (!found.ok()) return Status::OK();
      return RestoreOn(**found, rec.body, /*log=*/false);
    }
  }
  return Status::InvalidArgument("unknown WAL record type");
}

}  // namespace spatialsketch
