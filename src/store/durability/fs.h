// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Thin POSIX file-system primitives for the durability layer (WAL +
// checkpoint files). Every fallible call returns Status::IOError with
// errno context instead of crashing, and the fsync primitive carries the
// "fsync" failpoint so tests can fail the Nth sync anywhere in the stack.

#ifndef SPATIALSKETCH_STORE_DURABILITY_FS_H_
#define SPATIALSKETCH_STORE_DURABILITY_FS_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace spatialsketch {
namespace durability {

/// Create `path` as a directory if it does not exist (one level; parents
/// must exist). OK if it already is a directory.
Status EnsureDir(const std::string& path);

/// fsync an open descriptor. Failpoint site: "fsync" (arm with skip=N to
/// fail the N+1th sync in the process).
Status FsyncFd(int fd, const std::string& what);

/// fsync a directory by path — the rename-durability step of every
/// atomic file publish.
Status FsyncDir(const std::string& dir);

/// Whole-file read.
Result<std::string> ReadFileToString(const std::string& path);

/// Write `data` to `path + ".tmp"`, fsync it, rename over `path`, and
/// fsync the parent directory — the standard atomic-publish sequence: a
/// crash anywhere leaves either the old file or the new one, never a
/// partial write. `fp_tmp` / `fp_rename` (nullable) name failpoints fired
/// before the tmp write and before the rename, for crash-protocol tests.
Status WriteFileAtomic(const std::string& path, const std::string& data,
                       const char* fp_tmp, const char* fp_rename);

/// Names (not paths) of regular files in `dir`, sorted.
Result<std::vector<std::string>> ListDir(const std::string& dir);

/// Delete one file (OK if already gone).
Status RemoveFile(const std::string& path);

/// True if `path` exists (any file type).
bool PathExists(const std::string& path);

}  // namespace durability
}  // namespace spatialsketch

#endif  // SPATIALSKETCH_STORE_DURABILITY_FS_H_
