// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// DurabilityManager: the per-store object tying the WAL (wal.h) and
// checkpoints (checkpoint.h) to the serving layer. SketchStore owns one
// when opened via OpenDurable; a default-constructed store has none and
// pays nothing.
//
// Concurrency — the commit lock: every logged mutation path takes
// `commit_mu` SHARED around {WAL append + counter mutation}; a
// checkpoint takes it EXCLUSIVE, so the image it writes is a true
// stop-the-world cut: every record at or below the checkpoint LSN is
// fully applied, none above it is. Lock order is commit_mu → registry /
// shard / dataset locks → the WAL's internal append mutex; nothing is
// acquired while holding the append mutex, so the order is acyclic.
// Per-dataset WAL order equals apply order because both happen under the
// dataset's exclusive lock.
//
// Broken state: a failed append (including an injected torn write)
// poisons the WAL — further durable mutations fail with
// FailedPrecondition until the directory is reopened. The torn record's
// operation was never applied (log-before-apply), so the on-disk clean
// prefix still equals the accepted in-memory state; reopening recovers
// exactly that.
//
// Recovery (SketchStore::OpenDurable) is itself a checkpoint: load the
// current image, re-create schemas/datasets, restore blobs, replay the
// WAL tail in order (clean stop at the first torn frame), then
// immediately write a FRESH checkpoint and start a new segment. The torn
// tail is thereby retired — a second crash cannot trip over it — and
// recovery time stays bounded by one epoch of log, not the store's
// lifetime.

#ifndef SPATIALSKETCH_STORE_DURABILITY_RECOVERY_H_
#define SPATIALSKETCH_STORE_DURABILITY_RECOVERY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/common/macros.h"
#include "src/common/status.h"
#include "src/geom/box.h"
#include "src/store/durability/checkpoint.h"
#include "src/store/durability/wal.h"
#include "src/store/fair_shared_mutex.h"
#include "src/store/store_types.h"

namespace spatialsketch {
namespace internal {

/// Durability state of one SketchStore (see the file comment). All Log*
/// methods are no-ops while `replaying()` (recovery drives the normal
/// store entry points and must not re-log what it replays) and once the
/// WAL is broken they fail with FailedPrecondition.
class DurabilityManager {
 public:
  DurabilityManager(std::string dir, DurabilityOptions opt)
      : dir_(std::move(dir)), opt_(opt) {}

  /// Shared by logged mutations, exclusive by checkpoints (file comment).
  FairSharedMutex commit_mu;

  const std::string& dir() const { return dir_; }
  const DurabilityOptions& options() const { return opt_; }

  bool replaying() const {
    return replaying_.load(std::memory_order_relaxed);
  }
  void set_replaying(bool v) {
    replaying_.store(v, std::memory_order_relaxed);
  }

  // ---- Logging (called under commit shared + the relevant inner lock) ----

  Status LogRegisterSchema(const std::string& name,
                           const StoreSchemaOptions& opt);
  Status LogCreateDataset(const std::string& name,
                          const std::string& schema_name, DatasetKind kind,
                          const DatasetOptions& dopt);
  Status LogDropDataset(const std::string& name);
  /// `mapped` is the post-MapForIngest sketch-domain box: replay applies
  /// it directly, bypassing validation and mapping.
  Status LogUpdate(const std::string& dataset, const Box& mapped, int sign);
  /// `delta_blob` is SerializeSketch() of a delta sketch (an epoch fold
  /// or a bulk load's private delta). Failpoint site: "wal-fold".
  Status LogDelta(const std::string& dataset, const std::string& delta_blob);
  Status LogRestore(const std::string& dataset, const std::string& blob);

  /// Force every appended record to stable storage.
  Status Sync();

  // ---- Checkpoint / recovery plumbing (driven by SketchStore) ----------

  /// Install `image` (checkpoint files + CURRENT), then rotate to a new
  /// WAL segment and garbage-collect segments and checkpoints the image
  /// supersedes. Caller holds commit_mu EXCLUSIVE with the image built
  /// from the current state. A failure before the image file's rename is
  /// a clean abort (the store keeps serving and logging); a failure
  /// after it may leave the WAL un-rotated, which is safe (replay skips
  /// LSNs the checkpoint covers) but reported.
  /// Failpoint site: "checkpoint-rotate" (fail creating the new segment).
  Status InstallCheckpoint(const durability::CheckpointImage& image);

  /// Open the WAL writer on `segment_first_lsn`'s segment file (used by
  /// recovery after replay; InstallCheckpoint rotates thereafter).
  Status OpenWalSegment(uint64_t first_lsn);

  /// Last LSN assigned by the WAL (or the base LSN recovery seeded).
  uint64_t last_lsn() const;
  /// Seed the LSN floor from recovery (checkpoint LSN / last replayed).
  void set_base_lsn(uint64_t lsn) { base_lsn_ = lsn; }

  // ---- Introspection ----------------------------------------------------

  bool broken() const { return wal_ != nullptr && wal_->broken(); }
  uint64_t wal_records() const {
    return wal_records_.load(std::memory_order_relaxed);
  }
  uint64_t wal_bytes() const {
    return wal_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t checkpoints() const {
    return checkpoints_.load(std::memory_order_relaxed);
  }
  uint64_t replayed_records() const { return replayed_records_; }
  void set_replayed_records(uint64_t n) { replayed_records_ = n; }

  /// WAL bytes accumulated since the last checkpoint — the auto-
  /// checkpoint trigger reads this off-lock.
  uint64_t bytes_since_checkpoint() const;

  /// True while another thread runs the auto-checkpoint (test-and-set).
  bool TryBeginAutoCheckpoint() {
    return !auto_checkpoint_running_.test_and_set(std::memory_order_acquire);
  }
  void EndAutoCheckpoint() {
    auto_checkpoint_running_.clear(std::memory_order_release);
  }

 private:
  Status Append(durability::WalRecordType type, const std::string& name,
                const std::string& body, bool epoch_granular);

  const std::string dir_;
  const DurabilityOptions opt_;
  std::unique_ptr<durability::WalWriter> wal_;
  uint64_t base_lsn_ = 0;  ///< LSN floor when the WAL is empty
  std::atomic<uint64_t> wal_records_{0};
  std::atomic<uint64_t> wal_bytes_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> checkpoint_wal_bytes_{0};  ///< wal_bytes_ at last ckpt
  uint64_t replayed_records_ = 0;
  std::atomic<bool> replaying_{false};
  std::atomic_flag auto_checkpoint_running_ = ATOMIC_FLAG_INIT;

  SKETCH_DISALLOW_COPY_AND_ASSIGN(DurabilityManager);
};

}  // namespace internal
}  // namespace spatialsketch

#endif  // SPATIALSKETCH_STORE_DURABILITY_RECOVERY_H_
