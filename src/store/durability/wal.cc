#include "src/store/durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/crc32c.h"
#include "src/common/failpoints.h"
#include "src/store/durability/fs.h"

namespace spatialsketch {
namespace durability {

namespace {

// Frames larger than this are treated as corruption by the reader: no
// legitimate record (the largest is a checkpoint-scale snapshot blob)
// approaches it, and it stops a flipped length prefix from driving a
// multi-gigabyte allocation.
constexpr uint32_t kMaxPayloadBytes = 1u << 30;

constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc
// Payload prefix ahead of the body: type + lsn + name length.
constexpr size_t kPayloadPrefixBytes = 1 + 8 + 4;

uint32_t ReadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int b = 0; b < 4; ++b) {
    out->push_back(static_cast<char>((v >> (8 * b)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    out->push_back(static_cast<char>((v >> (8 * b)) & 0xff));
  }
}

void PutBytes(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool BodyReader::GetU8(uint8_t* v) {
  if (size_ - pos_ < 1) return false;
  *v = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool BodyReader::GetU32(uint32_t* v) {
  if (size_ - pos_ < 4) return false;
  uint32_t out = 0;
  for (int b = 0; b < 4; ++b) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + b]))
           << (8 * b);
  }
  pos_ += 4;
  *v = out;
  return true;
}

bool BodyReader::GetU64(uint64_t* v) {
  if (size_ - pos_ < 8) return false;
  uint64_t out = 0;
  for (int b = 0; b < 8; ++b) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + b]))
           << (8 * b);
  }
  pos_ += 8;
  *v = out;
  return true;
}

bool BodyReader::GetBytes(std::string* s) {
  uint32_t len = 0;
  if (!GetU32(&len)) return false;
  if (size_ - pos_ < len) return false;
  s->assign(data_ + pos_, len);
  pos_ += len;
  return true;
}

WalWriter::WalWriter(std::string path, int fd, uint64_t first_lsn)
    : path_(std::move(path)), fd_(fd), next_lsn_(first_lsn) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   uint64_t first_lsn) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError("open wal '" + path + "': " + std::strerror(errno));
  }
  return std::unique_ptr<WalWriter>(new WalWriter(path, fd, first_lsn));
}

Status WalWriter::Append(WalRecordType type, const std::string& name,
                         const std::string& body, bool sync,
                         uint64_t* lsn_out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_) {
    return Status::FailedPrecondition(
        "wal '" + path_ + "' is broken after a failed append; reopen the "
        "store to recover the accepted prefix");
  }
  if (SKETCH_FAILPOINT("wal-append")) {
    // Fail BEFORE any byte lands: the record was never durable and its
    // operation must not apply, so the writer poisons itself.
    broken_ = true;
    return Status::IOError("injected wal append failure");
  }

  std::string payload;
  payload.reserve(kPayloadPrefixBytes + name.size() + body.size());
  PutU8(&payload, static_cast<uint8_t>(type));
  const uint64_t lsn = next_lsn_;
  PutU64(&payload, lsn);
  PutBytes(&payload, name);
  payload.append(body);

  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32c(payload));
  frame.append(payload);

  size_t to_write = frame.size();
  if (SKETCH_FAILPOINT("wal-append-torn")) {
    // The injected torn write: half the frame reaches the file, then the
    // "crash". The reader's CRC/length check stops cleanly before it.
    to_write = frame.size() / 2;
  }
  size_t off = 0;
  while (off < to_write) {
    const ssize_t w = ::write(fd_, frame.data() + off, to_write - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      broken_ = true;
      return Status::IOError("write wal '" + path_ +
                             "': " + std::strerror(errno));
    }
    off += static_cast<size_t>(w);
  }
  if (to_write != frame.size()) {
    broken_ = true;
    return Status::IOError("injected torn wal write");
  }

  next_lsn_ = lsn + 1;
  bytes_appended_ += frame.size();
  ++records_appended_;
  if (lsn_out != nullptr) *lsn_out = lsn;
  if (sync) {
    Status st = FsyncFd(fd_, path_);
    if (!st.ok()) {
      // After a failed fsync the kernel may have dropped dirty pages; the
      // only safe claim is "reopen and trust the on-disk prefix".
      broken_ = true;
      return st;
    }
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_) {
    return Status::FailedPrecondition("wal '" + path_ + "' is broken");
  }
  Status st = FsyncFd(fd_, path_);
  if (!st.ok()) broken_ = true;
  return st;
}

Result<WalReadResult> ReadWalSegment(const std::string& path) {
  auto data = ReadFileToString(path);
  if (!data.ok()) return data.status();
  const std::string& buf = *data;

  WalReadResult out;
  size_t pos = 0;
  while (pos < buf.size()) {
    if (buf.size() - pos < kFrameHeaderBytes) {
      out.torn_tail = true;
      break;
    }
    const uint32_t len = ReadU32(buf.data() + pos);
    const uint32_t crc = ReadU32(buf.data() + pos + 4);
    if (len < kPayloadPrefixBytes || len > kMaxPayloadBytes ||
        buf.size() - pos - kFrameHeaderBytes < len) {
      out.torn_tail = true;
      break;
    }
    const char* payload = buf.data() + pos + kFrameHeaderBytes;
    if (Crc32c(payload, len) != crc) {
      out.torn_tail = true;
      break;
    }
    BodyReader reader(payload, len);
    WalRecord rec;
    std::string name;
    if (!reader.GetU8(&rec.type) || !reader.GetU64(&rec.lsn) ||
        !reader.GetBytes(&rec.name)) {
      // CRC-valid but structurally short — treat as the end of the clean
      // prefix rather than guessing.
      out.torn_tail = true;
      break;
    }
    rec.body = reader.Rest();
    out.records.push_back(std::move(rec));
    pos += kFrameHeaderBytes + len;
    out.valid_bytes = pos;
  }
  return out;
}

}  // namespace durability
}  // namespace spatialsketch
