// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Write-ahead delta log of one durable SketchStore.
//
// Frame format (little-endian):
//   [u32 payload_len][u32 crc32c(payload)][payload]
// Payload:
//   [u8 type][u64 lsn][u32 name_len][name bytes][body bytes]
//
// Records are appended BEFORE the counters mutate (log-before-apply,
// taken under the same per-dataset lock as the mutation, so the log order
// of one dataset's records equals its apply order), and the synopsis is
// LINEAR — counters add exactly — so replaying a log prefix reproduces
// the pre-crash store bit for bit. Sharded ingest logs one compact
// kDelta record per epoch fold (the WriterShardSet fold hook), not one
// record per update: the stream is group-durable at fold/fence
// granularity, and un-folded shard deltas at a crash are lost BY DESIGN
// (they were never merged into the served master either).
//
// A torn or bit-flipped trailing frame (short read or CRC mismatch) is a
// CLEAN end of log: the reader stops before it and reports torn_tail,
// never undefined behavior — and because the torn record's operation was
// never applied under log-before-apply, the replayed prefix is exactly
// the accepted pre-crash state.

#ifndef SPATIALSKETCH_STORE_DURABILITY_WAL_H_
#define SPATIALSKETCH_STORE_DURABILITY_WAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/macros.h"
#include "src/common/status.h"

namespace spatialsketch {
namespace durability {

/// WAL record types. Values are the on-disk type byte — append-only.
enum class WalRecordType : uint8_t {
  kRegisterSchema = 1,  ///< body: StoreSchemaOptions fields
  kCreateDataset = 2,   ///< body: schema name, kind, full DatasetOptions
  kDropDataset = 3,     ///< body: empty
  kUpdate = 4,          ///< body: sign + the MAPPED sketch-domain box
  kDelta = 5,           ///< body: a serialized delta sketch (fold / bulk)
  kRestore = 6,         ///< body: a store snapshot blob
};

/// One decoded WAL record.
struct WalRecord {
  uint8_t type = 0;
  uint64_t lsn = 0;
  std::string name;  ///< dataset or schema name the record targets
  std::string body;  ///< type-specific payload (see WalRecordType)
};

// ---- Little-endian body encoding helpers (shared with checkpoint.cc) ----

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
/// u32 length prefix + bytes.
void PutBytes(std::string* out, const std::string& s);

/// Bounds-checked sequential reader over an encoded body; every getter
/// returns false (instead of reading out of bounds) once the input is
/// exhausted or a length prefix overruns it.
class BodyReader {
 public:
  BodyReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit BodyReader(const std::string& s) : BodyReader(s.data(), s.size()) {}

  bool GetU8(uint8_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetBytes(std::string* s);
  bool AtEnd() const { return pos_ == size_; }
  /// The un-consumed remainder as a string (for records whose body tail
  /// is an opaque blob).
  std::string Rest() const { return std::string(data_ + pos_, size_ - pos_); }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Append-only writer over one log segment file. Appends are serialized
/// by an internal mutex (callers already order same-dataset records via
/// the dataset lock; the mutex makes cross-dataset frames byte-atomic)
/// and each record is assigned the next LSN under that mutex, so file
/// order equals LSN order. Any write or sync error — including an
/// injected torn write — permanently BREAKS the writer: further appends
/// fail with FailedPrecondition, because bytes after a torn frame would
/// be unreachable to the reader anyway (it stops at the tear).
///
/// Failpoint sites: "wal-append" (fail before writing), "wal-append-torn"
/// (write only a prefix of the frame, then fail — the injected torn
/// write), "fsync" (inside the sync).
class WalWriter {
 public:
  /// Open (create or append to) `path`, assigning LSNs from `first_lsn`.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 uint64_t first_lsn);
  ~WalWriter();

  /// Frame and append one record; `sync` additionally fsyncs the segment.
  /// Sets *lsn_out (if non-null) to the record's assigned LSN.
  Status Append(WalRecordType type, const std::string& name,
                const std::string& body, bool sync, uint64_t* lsn_out);

  /// fsync the segment (durability point for every prior append).
  Status Sync();

  const std::string& path() const { return path_; }
  /// Last assigned LSN (first_lsn - 1 when nothing was appended).
  uint64_t last_lsn() const { return next_lsn_ - 1; }
  /// Bytes appended through this writer (not the file size on open).
  uint64_t bytes_appended() const { return bytes_appended_; }
  /// Records appended through this writer.
  uint64_t records_appended() const { return records_appended_; }
  bool broken() const { return broken_; }

 private:
  WalWriter(std::string path, int fd, uint64_t first_lsn);

  std::string path_;
  int fd_;
  std::mutex mu_;
  uint64_t next_lsn_;
  uint64_t bytes_appended_ = 0;
  uint64_t records_appended_ = 0;
  bool broken_ = false;

  SKETCH_DISALLOW_COPY_AND_ASSIGN(WalWriter);
};

/// Result of reading one segment: the records that decoded cleanly, in
/// file order, and whether the segment ended in a torn/corrupt frame.
struct WalReadResult {
  std::vector<WalRecord> records;
  bool torn_tail = false;     ///< stopped early at a bad frame
  uint64_t valid_bytes = 0;   ///< file offset of the clean prefix end
};

/// Decode a whole segment file. Only I/O errors (missing file, read
/// failure) are Status errors; corruption is reported via torn_tail with
/// every record before the tear returned — the clean-stop contract.
Result<WalReadResult> ReadWalSegment(const std::string& path);

}  // namespace durability
}  // namespace spatialsketch

#endif  // SPATIALSKETCH_STORE_DURABILITY_WAL_H_
