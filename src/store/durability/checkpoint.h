// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Crash-consistent checkpoints of a durable SketchStore.
//
// A checkpoint file is a self-contained image of the whole store at one
// LSN: every registered schema's options, every dataset's identity
// (name, schema name, kind, full DatasetOptions — enough to re-create it
// deterministically, including the SLO-derived k1/k2) and its snapshot
// blob, all under a trailing CRC32C. Files are published atomically
// (tmp + fsync + rename + dir fsync) and made current by atomically
// rewriting the CURRENT manifest, after which the WAL truncates to the
// checkpoint LSN (old segments and checkpoints are garbage-collected).
// A crash at ANY step leaves either the previous checkpoint current or
// the new one — never a half state:
//   - before the rename: the tmp file is garbage; CURRENT still names
//     the old checkpoint, and recovery ignores tmp files.
//   - between the rename and the CURRENT rewrite: both checkpoints
//     exist; CURRENT still names the old one, whose WAL tail is intact.
//   - after CURRENT, before GC: recovery uses the new checkpoint and
//     skips replayed-LSN records in the not-yet-deleted old segments.
//
// File layout inside the store directory:
//   CURRENT                   — names the current checkpoint file
//   checkpoint-<lsn>.ckpt     — checkpoint images
//   wal-<first_lsn>.log       — log segments, replayed in LSN order

#ifndef SPATIALSKETCH_STORE_DURABILITY_CHECKPOINT_H_
#define SPATIALSKETCH_STORE_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/store/store_types.h"

namespace spatialsketch {
namespace durability {

/// One registered schema in a checkpoint image.
struct CheckpointSchema {
  std::string name;
  StoreSchemaOptions opt;
};

/// One dataset in a checkpoint image: its full creation identity plus a
/// store snapshot blob of its counters.
struct CheckpointDataset {
  std::string name;
  std::string schema_name;
  DatasetKind kind = DatasetKind::kRange;
  DatasetOptions dopt;
  std::string blob;  ///< SketchStore snapshot (SST4) of the counters
};

/// A whole-store image at `lsn`: recovery re-registers the schemas,
/// re-creates the datasets (deterministic — equal options derive equal
/// schema instances and SLO sizes), restores the blobs, then replays WAL
/// records with LSN > lsn.
struct CheckpointImage {
  uint64_t lsn = 0;
  std::vector<CheckpointSchema> schemas;
  std::vector<CheckpointDataset> datasets;
};

class BodyReader;

/// Wire encoding of the option structs, shared by checkpoint images and
/// the WAL's kRegisterSchema/kCreateDataset record bodies (recovery.cc) —
/// one encoding, one decoder, both validated the same way. The Get*
/// variants return false on truncation or an out-of-range enum value.
void PutSchemaOptions(std::string* out, const StoreSchemaOptions& opt);
bool GetSchemaOptions(BodyReader* r, StoreSchemaOptions* opt);
void PutDatasetOptions(std::string* out, const DatasetOptions& dopt);
bool GetDatasetOptions(BodyReader* r, DatasetOptions* dopt);

/// Serialize an image ("SPCK" magic, versioned, CRC32C trailer).
std::string EncodeCheckpoint(const CheckpointImage& image);

/// Decode and fully validate a checkpoint file's bytes (magic, version,
/// structure, trailer CRC). InvalidArgument on any corruption.
Result<CheckpointImage> DecodeCheckpoint(const std::string& data);

/// File name of the checkpoint at `lsn` (zero-padded so lexical order is
/// LSN order).
std::string CheckpointFileName(uint64_t lsn);

/// File name of the WAL segment whose first record is `first_lsn`.
std::string WalFileName(uint64_t first_lsn);

/// Parse a "checkpoint-<lsn>.ckpt" / "wal-<lsn>.log" name; false if the
/// name is not of that form.
bool ParseCheckpointFileName(const std::string& name, uint64_t* lsn);
bool ParseWalFileName(const std::string& name, uint64_t* first_lsn);

/// Write `image` into `dir` following the atomic protocol above and make
/// it current. Failpoint sites: "checkpoint-tmp" (fail before the tmp
/// write — clean abort, old checkpoint stays current), "checkpoint-
/// rename" (fail between tmp and rename), "checkpoint-current" (fail
/// before the CURRENT rewrite, leaving the new file published but not
/// current).
Status WriteCheckpoint(const std::string& dir, const CheckpointImage& image);

/// Load the current checkpoint of `dir`. Resolution order: the file
/// CURRENT names if it decodes cleanly, else the highest-LSN checkpoint
/// file that does (a crash between rename and CURRENT leaves such a
/// file; a flipped bit in one file must not lose the store). *found is
/// false — with an empty image returned — when the directory holds no
/// checkpoint at all (a fresh store).
Result<CheckpointImage> LoadCurrentCheckpoint(const std::string& dir,
                                              bool* found);

}  // namespace durability
}  // namespace spatialsketch

#endif  // SPATIALSKETCH_STORE_DURABILITY_CHECKPOINT_H_
