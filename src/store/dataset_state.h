// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// internal::DatasetState: the resolved, registry-independent state of one
// store dataset. SketchStore's registry maps names to shared_ptrs of
// these; DatasetHandle (src/api/dataset_handle.h) holds the same
// shared_ptr directly, which is exactly how a handle skips the per-call
// registry map lookup + lock on the hot paths. Everything here is an
// implementation detail of the serving layer — user code never touches a
// DatasetState, only the store and handles do.
//
// Lifetime and invalidation: the registry's shared_ptr plus any open
// handles keep the state alive; DropDataset erases the registry entry and
// sets `dropped` (release order), after which every handle operation and
// every Run() spec resolving through a stale handle fails fast with
// FailedPrecondition. In-flight operations that passed the check finish
// safely on the still-alive state, as some sequential order must place
// them before the drop. `generation` is the store-wide creation counter
// value, so a handle can tell a re-created same-name dataset (a NEW
// state, different generation) from the one it was opened against.

#ifndef SPATIALSKETCH_STORE_DATASET_STATE_H_
#define SPATIALSKETCH_STORE_DATASET_STATE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "src/geom/box.h"
#include "src/sketch/dataset_sketch.h"
#include "src/store/fair_shared_mutex.h"
#include "src/store/store_types.h"
#include "src/store/writer_shards.h"

namespace spatialsketch {
namespace internal {

/// One dataset's resolved serving state (see the file comment). The
/// immutable identity fields are const; `sketch` is guarded by `mu`
/// exactly as in the store's concurrency model (shared for estimates,
/// exclusive for updates and merges).
struct DatasetState {
  /// Assembles the immutable identity and takes ownership of the (empty)
  /// master sketch.
  DatasetState(std::string name_in, std::string schema_name_in,
               DatasetKind kind_in, StoreSchemaOptions opt_in,
               DatasetOptions dopt_in, uint64_t generation_in,
               DatasetSketch sketch_in)
      : name(std::move(name_in)),
        schema_name(std::move(schema_name_in)),
        kind(kind_in),
        opt(opt_in),
        dopt(dopt_in),
        eps(dopt_in.eps),
        generation(generation_in),
        sketch(std::move(sketch_in)) {}

  const std::string name;         ///< registry name at creation time
  const std::string schema_name;  ///< registered schema the dataset is under
  const DatasetKind kind;        ///< shape + ingest mapping + schema variant
  const StoreSchemaOptions opt;  ///< original-domain configuration
  /// Full creation options — with schema_name and kind, the complete
  /// deterministic recipe a durable checkpoint needs to re-create this
  /// dataset (including its SLO-derived schema sizing).
  const DatasetOptions dopt;
  const Coord eps;               ///< kEpsBoxes ingest radius (else 0)
  const uint64_t generation;     ///< store-wide creation sequence number
  DatasetSketch sketch;          ///< the master counters; guarded by mu
  mutable FairSharedMutex mu;    ///< shared = estimate, exclusive = mutate
  /// Sharded-writer state. `shards` owns the set; `shards_live` is the
  /// lock-free view the streaming hot path reads (published once, under
  /// the exclusive lock, never cleared — which is why configuration is
  /// one-shot and no teardown race exists).
  std::unique_ptr<WriterShardSet> shards;
  /// Lock-free published pointer to `shards` (null until configured).
  std::atomic<WriterShardSet*> shards_live{nullptr};
  /// Set (release) by DropDataset after the registry erase; checked
  /// (acquire) by every handle operation and Run() resolution.
  std::atomic<bool> dropped{false};
};

}  // namespace internal
}  // namespace spatialsketch

#endif  // SPATIALSKETCH_STORE_DATASET_STATE_H_
