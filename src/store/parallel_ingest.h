// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Shard-and-merge parallel ingestion. The synopsis is a linear projection
// of the data (dataset_sketch.h), so a bulk load can be split into
// contiguous shards, each bulk-loaded into a private sketch on its own
// thread, and the shard sketches Merge()d afterwards: integer counter
// addition is exact and commutative, so the result is bit-identical to a
// single sequential BulkLoad regardless of shard count or scheduling.
// SketchStore uses this to absorb large batches without holding a
// dataset's writer lock for the duration of the load.

#ifndef SPATIALSKETCH_STORE_PARALLEL_INGEST_H_
#define SPATIALSKETCH_STORE_PARALLEL_INGEST_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/geom/box.h"
#include "src/sketch/dataset_sketch.h"

namespace spatialsketch {

struct ShardedLoadOptions {
  /// Worker threads to use; 0 means std::thread::hardware_concurrency().
  uint32_t num_threads = 0;
  /// Batches smaller than this per shard are not worth a thread: the
  /// shard count is reduced until every shard has at least this many
  /// boxes (a single shard degenerates to a plain BulkLoad on the calling
  /// thread, with no thread spawned).
  uint64_t min_boxes_per_shard = 1024;
  /// Optional rows-applied sink (not owned; must outlive the call).
  /// Incremented with relaxed adds by each shard's box count as that
  /// shard's private load completes, so a concurrent observer — the
  /// async-job CheckJob protocol, SketchStore::Stats — sees a monotone
  /// fraction of a large load instead of a bare running/done bit. The
  /// granularity is one increment per shard (per the whole batch when
  /// the load degenerates to a single shard); the sum over a successful
  /// call is exactly the batch size.
  std::atomic<uint64_t>* progress = nullptr;
};

/// Bulk-load `boxes` (already in the target's coordinate space) into
/// `target` with sign +1/-1, in parallel, bit-identical to
/// `target->BulkLoad(boxes, sign)`. BulkLoader::Run itself parallelizes
/// across instance batches (one thread per kInstancesPerBatch instances),
/// so box shards are added only up to num_threads / num_batches — shard
/// threads times per-shard loader threads stays within the requested
/// budget rather than multiplying against it. Wide schemas whose batch
/// count alone meets the budget degenerate to a single plain BulkLoad
/// with no shard sketches at all.
///
/// Errors: a failing per-shard BulkLoad (e.g. an invalid sign) is
/// collected from its worker and the FIRST shard's failure is returned
/// after all workers join — never a process abort. On any failure no
/// shard is merged, so `target` is unchanged.
Status ShardedBulkLoad(DatasetSketch* target, const std::vector<Box>& boxes,
                       int sign, const ShardedLoadOptions& opt = {});

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_STORE_PARALLEL_INGEST_H_
