#include "src/store/parallel_ingest.h"

#include <algorithm>
#include <limits>
#include <thread>

namespace spatialsketch {

Status ShardedBulkLoad(DatasetSketch* target, const std::vector<Box>& boxes,
                       int sign, const ShardedLoadOptions& opt) {
  if (boxes.empty()) return Status::OK();

  const uint64_t threads = opt.num_threads != 0
                         ? opt.num_threads
                         : std::max(1u, std::thread::hardware_concurrency());

  // BulkLoader::Run already parallelizes across instance batches — one
  // thread per kInstancesPerBatch instances — so each shard's internal
  // load runs on ~num_batches threads. Box-shard only for the parallelism
  // the internal batching cannot provide (shards * num_batches ~= the
  // requested thread budget), instead of stacking a full shard fan-out on
  // top of it and oversubscribing the CPU; when the schema is wide enough
  // that batches alone satisfy the budget, a single plain BulkLoad wins
  // (and skips the per-shard sketch memory entirely).
  const uint64_t instances = target->schema()->instances();
  const uint64_t num_batches =
      (instances + BulkLoader::kInstancesPerBatch - 1) /
      BulkLoader::kInstancesPerBatch;
  const uint64_t min_per_shard = std::max<uint64_t>(1, opt.min_boxes_per_shard);
  const uint64_t max_useful = (boxes.size() + min_per_shard - 1) / min_per_shard;
  const uint64_t shards = std::max<uint64_t>(
      1, std::min(threads / num_batches, max_useful));

  const auto advance = [&opt](uint64_t rows) {
    if (opt.progress != nullptr) {
      opt.progress->fetch_add(rows, std::memory_order_relaxed);
    }
  };

  if (shards == 1) {
    if (boxes.size() <= target->SmallBulkCrossover()) {
      // Below the table-build crossover BulkLoad streams the boxes
      // through the sign cache on the calling thread; delegate so the
      // small-batch pick applies to store loads too.
      const Status st = target->BulkLoad(boxes.data(), boxes.size(), sign);
      if (st.ok()) advance(boxes.size());
      return st;
    }
    if (sign != 1 && sign != -1) {
      return Status::InvalidArgument("bulk-load sign must be +1 or -1");
    }
    // Pure delegation — but still honor the caller's thread budget: the
    // loader's internal batch fan-out is capped at `threads`.
    BulkLoader loader(target->schema());
    loader.Add(target, boxes.data(), boxes.size(), nullptr, sign);
    loader.Run(static_cast<uint32_t>(
        std::min<uint64_t>(threads, std::numeric_limits<uint32_t>::max())));
    advance(boxes.size());
    return Status::OK();
  }

  // Contiguous slices; the last shard absorbs the remainder.
  const uint64_t per_shard = boxes.size() / shards;
  std::vector<DatasetSketch> parts;
  parts.reserve(shards);
  for (uint64_t i = 0; i < shards; ++i) {
    parts.emplace_back(target->schema(), target->shape());
  }

  // Each worker records its own slot; the first non-OK status (by shard
  // index, a deterministic pick) is propagated after the join instead of
  // aborting the process from a worker thread.
  std::vector<Status> results(shards);
  std::vector<std::thread> workers;
  workers.reserve(shards);
  for (uint64_t i = 0; i < shards; ++i) {
    const uint64_t begin = i * per_shard;
    const uint64_t end = (i + 1 == shards) ? boxes.size() : begin + per_shard;
    workers.emplace_back([&, i, begin, end] {
      results[i] = parts[i].BulkLoad(boxes.data() + begin, end - begin, sign);
      // Progress advances as shards complete even if a sibling later
      // fails; observers treat it as "rows absorbed into shard deltas",
      // and the job layer reconciles it against the final Status.
      if (results[i].ok()) advance(end - begin);
    });
  }
  for (std::thread& t : workers) t.join();
  for (const Status& st : results) {
    // No shard merges on failure, so the target is untouched.
    if (!st.ok()) return st;
  }

  for (const DatasetSketch& part : parts) target->Merge(part);
  return Status::OK();
}

}  // namespace spatialsketch
