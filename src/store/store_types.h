// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Store-facing configuration types shared by the serving layer
// (src/store/sketch_store.h) and the typed query surface (src/api/).
// They live below both so a handle or a QuerySpec can name a dataset's
// kind without pulling in the whole store.

#ifndef SPATIALSKETCH_STORE_STORE_TYPES_H_
#define SPATIALSKETCH_STORE_STORE_TYPES_H_

#include <cstdint>

#include "src/dyadic/dyadic_domain.h"
#include "src/geom/box.h"
#include "src/sketch/counter_store.h"

namespace spatialsketch {

/// What a dataset serves; fixes its Shape, the schema variant it is
/// sketched under, and its ingest-time mapping into sketch coordinates
/// (mirroring the estimator pipelines — a store-served estimate is
/// bit-identical to the equivalent single-threaded pipeline result).
///
/// The first three kinds live over the ENDPOINT-TRANSFORMED domain
/// (Section 5.2); the eps/containment kinds count CLOSED predicates,
/// which are exact under coordinate collisions, so they live over the
/// original (eps) or lifted (containment) domain with no transformation.
enum class DatasetKind : uint8_t {
  kRange = 0,  ///< RangeShape, MapR ingest; serves range-count estimates
  kJoinR = 1,  ///< JoinShape, MapR ingest; the R side of spatial joins
  kJoinS = 2,  ///< JoinShape, ShrinkS ingest; the S side of spatial joins
  /// PointShape over the original domain; ingests POINTS (boxes with
  /// lo == hi per dimension). The A side of eps-distance joins
  /// (Section 6.3): QueryKind::kEpsJoin pairs it with a kEpsBoxes set.
  kEpsPoints = 3,
  /// BoxCoverShape over the original domain; ingests POINTS and expands
  /// each into the closed L-infinity square of radius `DatasetOptions::
  /// eps` (clamped to the domain) at ingest, exactly as the eps-join
  /// pipeline's ExpandEpsSquares does. The B side of eps-distance joins;
  /// the radius is baked into the counters, so a kEpsJoin query must
  /// carry the same eps.
  kEpsBoxes = 4,
  /// PointShape over the 2*dims-dimensional lifted domain (Appendix B.2);
  /// ingests boxes and lifts each to the point (lo_1, hi_1, ...). The
  /// "inner" (contained) side of containment joins. Requires
  /// 2 * dims <= kMaxDims, i.e. 1 or 2 original dimensions.
  kContainInner = 5,
  /// BoxCoverShape over the lifted domain; ingests boxes and lifts each
  /// to the 2*dims-dimensional box ([lo_i, hi_i] twice per dimension).
  /// The "outer" (containing) side of containment joins.
  kContainOuter = 6,
};

/// Schema registration over an ORIGINAL h-bit domain. The store derives
/// the schema variants internally: the endpoint-transformed schema
/// (h+2 bits per dimension) serving the range/join kinds, the plain
/// original-domain schema serving the eps kinds, and — when
/// 2 * dims <= kMaxDims — the lifted 2*dims schema serving the
/// containment kinds (the latter two created lazily on first use).
/// Datasets created under the same schema NAME and the same variant
/// share one schema instance and are joinable.
struct StoreSchemaOptions {
  uint32_t dims = 1;          ///< dimensionality (1..kMaxDims)
  uint32_t log2_domain = 16;  ///< original domain bits per dimension
  uint32_t max_level = DyadicDomain::kNoCap;  ///< Section 6.5 level cap
  uint32_t k1 = 64;   ///< estimators averaged per group (accuracy)
  uint32_t k2 = 9;    ///< groups medianed (confidence)
  uint64_t seed = 1;  ///< master seed (equal options => identical schema)
};

/// Per-dataset creation options (CreateDataset's 4-argument overload).
struct DatasetOptions {
  /// kEpsBoxes only: the L-infinity radius baked into ingest-time square
  /// expansion. Any other kind rejects a non-zero eps. eps = 0 is legal
  /// (squares degenerate to the points themselves: an exact-coincidence
  /// join).
  Coord eps = 0;

  // ---- Counter storage (tenant placement; see counter_store.h) ----------

  /// Physical counter order: kFlat (instance-major, the default) or
  /// kBlocked (64-instance blocks matching the bit-sliced apply).
  /// Bit-identical estimates either way.
  CounterLayout layout = CounterLayout::kFlat;
  /// Counter width: kI64 (default) or kI32 — the compact cold-tenant
  /// mode, half the counter bytes, widened in place automatically before
  /// any value would leave the int32 range.
  CounterWidth counter_width = CounterWidth::kI64;
  /// Allocation backing: kHugePage requests THP-advised aligned pages for
  /// hot tenants (degrades to an aligned allocation off Linux).
  CounterBacking backing = CounterBacking::kDefault;

  // ---- Memory/accuracy SLO (Lemma-1 sizing at CreateDataset) ------------
  //
  // Instead of hand-picking k1/k2 in the schema, a tenant states a goal
  // and the store derives the instance count from the error-vs-space
  // model (src/estimators/sizing.h): relative error <= target_epsilon
  // with probability >= 1 - target_phi, and/or counter memory
  // <= max_bytes. Datasets with EQUAL derived (k1, k2) under one schema
  // name share a schema instance and stay joinable. Both knobs unset
  // (the default) means the schema's registered k1/k2 — no change.

  /// Accuracy SLO: "ε ≤ x". 0 = unset. Requires (0, 1) otherwise;
  /// derives k1 = ceil(8 V / (ε² Q²)) with the kind's variance model.
  double target_epsilon = 0;
  /// Failure probability φ for target_epsilon (k2 = smallest odd
  /// ≥ 2·lg(1/φ)). Read only when target_epsilon is set.
  double target_phi = 0.05;
  /// Optional variance-ratio override V/Q² for the ε sizing. 0 = use the
  /// kind's conservative default (see CreateDataset); supply a pilot- or
  /// history-derived ratio for tighter sizing.
  double variance_over_q2 = 0;
  /// Memory SLO: "≤ N bytes" of counter storage (layout padding and
  /// width included). 0 = unset. Caps k1 after the ε sizing; fails
  /// CreateDataset if even k1 = 1 does not fit.
  uint64_t max_bytes = 0;
};

/// When the write-ahead log fsyncs (SketchStore::OpenDurable). Appends
/// always reach the OS immediately; the policy decides when they are
/// forced to stable storage. Checkpoints fsync regardless.
enum class WalSyncPolicy : uint8_t {
  /// Never sync on append — only at checkpoints and explicit SyncWal().
  /// Fastest; a POWER loss can lose everything since the last sync (a
  /// process crash alone loses nothing: the OS holds the pages).
  kNone = 0,
  /// Sync on epoch-granular records — delta folds, bulk loads, restores,
  /// and every metadata record — but not on per-update records. The
  /// default: matches the store's group-durability story (sharded ingest
  /// is durable at fold/fence granularity anyway).
  kEpoch = 1,
  /// Sync on every record, per-update included. Strongest, slowest.
  kAlways = 2,
};

/// Options of a durable store (SketchStore::OpenDurable).
struct DurabilityOptions {
  /// WAL fsync policy (see WalSyncPolicy).
  WalSyncPolicy sync = WalSyncPolicy::kEpoch;
  /// Auto-checkpoint once this many WAL bytes accumulate since the last
  /// checkpoint (checked after a logged mutation completes, off the
  /// commit lock). 0 = manual checkpoints only (SketchStore::Checkpoint).
  uint64_t checkpoint_every_bytes = 0;
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_STORE_STORE_TYPES_H_
