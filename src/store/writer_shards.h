// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// WriterShardSet: the sharded streaming-write path of one dataset.
//
// The synopsis is linear (dataset_sketch.h), so per-object streaming
// updates applied to INDEPENDENT delta sketches and folded together by
// counter addition are exact — the same invariant ShardedBulkLoad exploits
// for batches, applied here to the streaming Insert/Delete path that PR 2
// left serialized behind the dataset's exclusive FairSharedMutex. Each of
// W shards owns a private delta sketch behind a plain mutex; writer
// threads hash to a shard (thread-affine token, so a steady writer keeps
// hitting the same uncontended mutex) and apply the bit-sliced update to
// the shard's delta. The master counters — what readers estimate against —
// are only touched at EPOCH boundaries: when a shard has absorbed
// epoch_updates updates it folds (Merge + Reset, O(counters)) into the
// master under the master's exclusive lock. The master writer lock is thus
// taken once per epoch instead of once per update, and W writers stream
// concurrently through the schema's lock-free sign/point-sum caches.
//
// Freshness: estimates served from the master may lag the stream by at
// most W * epoch_updates updates. Fence() is the epoch fence readers use
// to demand the up-to-date view: it folds every shard with pending
// updates, and costs one relaxed atomic load — no locks — when nothing is
// pending. After any quiescent Fence() the master counters are
// bit-identical to a sequential application of the same update stream,
// which is what the differential tests assert.
//
// Lock order: shard mutex, THEN master FairSharedMutex (exclusive). Both
// Apply's epoch fold and Fence follow it; nothing in the store acquires a
// shard mutex while holding a dataset lock, so the order is acyclic.

#ifndef SPATIALSKETCH_STORE_WRITER_SHARDS_H_
#define SPATIALSKETCH_STORE_WRITER_SHARDS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/common/macros.h"
#include "src/common/status.h"
#include "src/geom/box.h"
#include "src/sketch/dataset_sketch.h"
#include "src/store/fair_shared_mutex.h"

namespace spatialsketch {

/// Per-dataset sharded-writer configuration (SketchStore::
/// ConfigureShardedWriters).
struct ShardedWriterOptions {
  /// Writer shards. Must be >= 1; 1 still exercises the full epoch
  /// machinery (useful for tests), it just cannot overlap writers.
  uint32_t writers = 2;
  /// Updates a shard absorbs before folding into the master counters.
  /// Bounds staleness (a reader that does not fence can miss at most
  /// writers * epoch_updates updates) and amortizes the master lock.
  uint64_t epoch_updates = 256;
};

class WriterShardSet {
 public:
  /// Shards hold delta sketches of `shape` under `schema` (the dataset's
  /// own schema instance, so folds are pointer-compatible Merges).
  WriterShardSet(SchemaPtr schema, const Shape& shape,
                 const ShardedWriterOptions& opt);

  uint32_t writers() const { return static_cast<uint32_t>(shards_.size()); }
  uint64_t epoch_updates() const { return epoch_updates_; }

  /// Pre-fold hook: called with a shard's delta sketch right before it
  /// merges into the master, under the master's EXCLUSIVE lock (and the
  /// shard's mutex). The durability layer installs this to append one
  /// compact WAL record per epoch fold — sharded ingest is group-durable
  /// at fold granularity. A non-OK return ABORTS the fold: the delta
  /// stays pending in the shard (nothing merged, nothing reset) and the
  /// error propagates out of Apply/Fence, so the master never holds
  /// updates the log missed. Install before publishing the shard set to
  /// writers (SketchStore does so under the dataset's exclusive lock);
  /// the hook itself must not acquire the master lock or shard mutexes.
  using FoldHook = std::function<Status(const DatasetSketch& delta)>;
  void SetFoldHook(FoldHook hook) { fold_hook_ = std::move(hook); }

  /// Approximate count of updates applied to shards but not yet folded
  /// into the master (relaxed read; exact once writers are quiescent).
  uint64_t pending() const {
    return total_pending_.load(std::memory_order_relaxed);
  }

  /// Apply one streaming update (`box` already mapped into the schema
  /// domain) to the calling thread's shard. Takes that shard's mutex —
  /// NOT the master lock — unless this update fills the shard's epoch, in
  /// which case the shard folds into `master` under `master_mu` held
  /// exclusively. `*folds` receives the number of epoch folds performed
  /// (0 or 1), for stats. Fails only when a fold's hook fails (the
  /// update itself is absorbed and stays pending for the next fold
  /// attempt). Thread-safe.
  Status Apply(const Box& box, int sign, DatasetSketch* master,
               FairSharedMutex* master_mu, uint32_t* folds);

  /// Epoch fence: fold every shard with pending updates into `master`, so
  /// the master counters reflect every Apply() that returned before this
  /// call. Costs one atomic load (no locks) when nothing is pending.
  /// `*folds` receives the number of shards folded; on a hook failure the
  /// first error is returned with the failing shard (and any later ones)
  /// left pending. Thread-safe; may run concurrently with Apply (updates
  /// racing past the fence simply land in the next epoch).
  Status Fence(DatasetSketch* master, FairSharedMutex* master_mu,
               uint32_t* folds);

 private:
  struct Shard {
    explicit Shard(SchemaPtr schema, const Shape& shape)
        : delta(std::move(schema), shape) {}
    std::mutex mu;
    DatasetSketch delta;   ///< guarded by mu
    uint64_t pending = 0;  ///< guarded by mu
  };

  // Folds `shard` (whose mutex the caller holds) into the master under
  // the master's exclusive lock; *folded reports whether anything was
  // pending. A failing fold hook aborts before the merge (delta intact).
  Status FoldLocked(Shard* shard, DatasetSketch* master,
                    FairSharedMutex* master_mu, bool* folded);

  const uint64_t epoch_updates_;
  std::atomic<uint64_t> total_pending_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  FoldHook fold_hook_;

  SKETCH_DISALLOW_COPY_AND_ASSIGN(WriterShardSet);
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_STORE_WRITER_SHARDS_H_
