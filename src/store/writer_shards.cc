#include "src/store/writer_shards.h"

namespace spatialsketch {

namespace {

// Thread-affine shard tokens: each writer thread draws one token for its
// lifetime, so it keeps returning to the same (likely uncontended) shard
// mutex and its delta's warm scratch. Tokens are global across shard sets
// — only the modulus is per-set — which keeps distinct datasets' shard
// choices decorrelated without per-set thread registries.
uint32_t ThreadToken() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t token = next.fetch_add(1);
  return token;
}

}  // namespace

WriterShardSet::WriterShardSet(SchemaPtr schema, const Shape& shape,
                               const ShardedWriterOptions& opt)
    : epoch_updates_(opt.epoch_updates > 0 ? opt.epoch_updates : 1) {
  SKETCH_CHECK(opt.writers >= 1);
  shards_.reserve(opt.writers);
  for (uint32_t i = 0; i < opt.writers; ++i) {
    shards_.push_back(std::make_unique<Shard>(schema, shape));
  }
}

Status WriterShardSet::FoldLocked(Shard* shard, DatasetSketch* master,
                                  FairSharedMutex* master_mu, bool* folded) {
  *folded = false;
  if (shard->pending == 0) return Status::OK();
  {
    std::unique_lock<FairSharedMutex> lock(*master_mu);
    // Log-before-merge: if the hook (the WAL append) fails, the delta
    // stays pending and the master is untouched, so recovery's replay of
    // the log prefix still equals the master exactly.
    if (fold_hook_) {
      SKETCH_RETURN_NOT_OK(fold_hook_(shard->delta));
    }
    master->Merge(shard->delta);
  }
  shard->delta.Reset();
  total_pending_.fetch_sub(shard->pending, std::memory_order_relaxed);
  shard->pending = 0;
  *folded = true;
  return Status::OK();
}

Status WriterShardSet::Apply(const Box& box, int sign, DatasetSketch* master,
                             FairSharedMutex* master_mu, uint32_t* folds) {
  *folds = 0;
  Shard& shard = *shards_[ThreadToken() % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (sign > 0) {
    shard.delta.Insert(box);
  } else {
    shard.delta.Delete(box);
  }
  ++shard.pending;
  total_pending_.fetch_add(1, std::memory_order_relaxed);
  if (shard.pending < epoch_updates_) return Status::OK();
  bool folded = false;
  Status st = FoldLocked(&shard, master, master_mu, &folded);
  if (folded) *folds = 1;
  return st;
}

Status WriterShardSet::Fence(DatasetSketch* master, FairSharedMutex* master_mu,
                             uint32_t* folds) {
  *folds = 0;
  // Fast path: nothing pending anywhere — the common steady state between
  // epochs, and the reason per-read fencing is affordable.
  if (total_pending_.load(std::memory_order_relaxed) == 0) return Status::OK();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    bool folded = false;
    SKETCH_RETURN_NOT_OK(FoldLocked(shard.get(), master, master_mu, &folded));
    if (folded) ++(*folds);
  }
  return Status::OK();
}

}  // namespace spatialsketch
