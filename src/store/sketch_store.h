// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// SketchStore: a concurrent serving layer over DatasetSketch synopses.
//
// The store is a named registry at two levels: schemas (the shared
// xi-family configuration two datasets must have in common to be joined,
// schema.h) and datasets (one DatasetSketch each, created under a
// registered schema with a DatasetKind that fixes its shape and ingest
// mapping). Callers speak ORIGINAL coordinates throughout; the store
// applies the Section-5.2 endpoint transformation internally, exactly as
// the estimator pipelines do, so a store-served estimate is bit-identical
// to the equivalent single-threaded pipeline result.
//
// Concurrency model: the registry and every dataset carry their own
// FairSharedMutex (fair_shared_mutex.h — std::shared_mutex makes no
// fairness guarantee and its common reader-preferring implementation lets
// an estimate stream starve writers). Estimates and snapshots take a
// dataset's shared lock
// and can run from any number of threads; Insert/Delete/Restore and the
// final Merge of a bulk load take the exclusive lock. Bulk loads build a
// private delta sketch OFF-lock (sharded across threads, parallel_ingest.h)
// and only hold the writer lock for the Merge, so heavy ingest does not
// starve readers. Because the synopsis is linear, any interleaving of
// these critical sections yields counters identical to some sequential
// execution of the same operations — concurrency changes timing, never
// values. Joins take the two datasets' shared locks in address order so a
// pending writer between the two acquisitions cannot induce a cycle.
//
// Sharded streaming writes: ConfigureShardedWriters(dataset, {W, epoch})
// re-routes that dataset's Insert/Delete through W writer shards
// (writer_shards.h), each a private delta sketch behind its own mutex fed
// by the lock-free sign/point-sum caches; the dataset's exclusive lock is
// then taken only when a shard's epoch fills and it folds (Merge + Reset)
// into the master counters. W writer threads stream concurrently instead
// of serializing behind one exclusive lock; linearity makes the fold
// exact. Estimates keep reading the master (staleness bounded by
// W * epoch_updates un-folded updates); Fence(dataset) is the epoch fence
// that folds everything pending — one atomic load when nothing is — and
// NumObjects/CounterSnapshot/Snapshot/Restore fence internally, so
// persistence and verification surfaces always see the full stream.
// See docs/ARCHITECTURE.md for the full concurrency model.

#ifndef SPATIALSKETCH_STORE_SKETCH_STORE_H_
#define SPATIALSKETCH_STORE_SKETCH_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/common/macros.h"
#include "src/common/status.h"
#include "src/dyadic/dyadic_domain.h"
#include "src/geom/box.h"
#include "src/sketch/dataset_sketch.h"
#include "src/sketch/schema.h"
#include "src/store/fair_shared_mutex.h"
#include "src/store/query_pool.h"
#include "src/store/writer_shards.h"

/// Core namespace of the spatialsketch library.
namespace spatialsketch {

/// What a dataset serves; fixes its Shape and its ingest-time mapping into
/// the transformed domain (mirroring the estimator pipelines).
enum class DatasetKind : uint8_t {
  kRange = 0,  ///< RangeShape, MapR ingest; serves range-count estimates
  kJoinR = 1,  ///< JoinShape, MapR ingest; the R side of spatial joins
  kJoinS = 2,  ///< JoinShape, ShrinkS ingest; the S side of spatial joins
};

/// Schema registration over an ORIGINAL h-bit domain; the store derives
/// the transformed schema (h+2 bits per dimension) internally.
struct StoreSchemaOptions {
  uint32_t dims = 1;          ///< dimensionality (1..kMaxDims)
  uint32_t log2_domain = 16;  ///< original domain bits per dimension
  uint32_t max_level = DyadicDomain::kNoCap;  ///< Section 6.5 level cap
  uint32_t k1 = 64;   ///< estimators averaged per group (accuracy)
  uint32_t k2 = 9;    ///< groups medianed (confidence)
  uint64_t seed = 1;  ///< master seed (equal options => identical schema)
};

/// Monotonic operation counters (relaxed atomics; approximate under
/// concurrency, exact once the store is quiescent).
struct StoreStats {
  uint64_t inserts = 0;  ///< streaming Insert calls applied
  uint64_t deletes = 0;  ///< streaming Delete calls applied
  uint64_t dropped = 0;  ///< degenerate boxes ignored by ingest
  uint64_t bulk_boxes = 0;       ///< boxes absorbed through bulk loads
  uint64_t range_estimates = 0;  ///< range estimates served (incl. batch)
  uint64_t join_estimates = 0;   ///< join estimates served (incl. batch)
  uint64_t snapshots = 0;        ///< Snapshot blobs produced
  uint64_t restores = 0;         ///< successful Restore calls
  uint64_t epoch_folds = 0;  ///< shard deltas folded into master counters
  uint64_t fences = 0;       ///< explicit + internal epoch fences taken
};

/// A concurrent, named registry of dataset sketches served under shared
/// schemas — the serving layer (see the file comment for the concurrency
/// model and docs/ARCHITECTURE.md for the system picture).

class SketchStore {
 public:
  /// An empty store: no schemas, no datasets, lazy query pool.
  SketchStore() = default;

  // ---- Registry -----------------------------------------------------------

  /// Register a named schema. Fails on duplicate names or invalid options.
  Status RegisterSchema(const std::string& name,
                        const StoreSchemaOptions& opt);

  /// Create an empty dataset under a registered schema. Datasets created
  /// under the same schema NAME share the same schema instance and are
  /// therefore joinable / mergeable.
  Status CreateDataset(const std::string& name,
                       const std::string& schema_name, DatasetKind kind);

  /// Remove a dataset from the registry. In-flight operations holding
  /// the dataset's shared_ptr finish safely; new lookups fail.
  Status DropDataset(const std::string& name);

  /// Sorted dataset names. A consistent snapshot: the list is copied out
  /// under the registry's shared lock, so it reflects exactly the set of
  /// datasets registered at some single instant — concurrent creates and
  /// drops land entirely before or entirely after it, never partially.
  /// Thread-safe.
  std::vector<std::string> ListDatasets() const;

  /// The shared (transformed-domain) schema instance behind a registered
  /// schema name.
  Result<SchemaPtr> GetSchema(const std::string& name) const;

  // ---- Streaming and batched ingest (ORIGINAL coordinates) ----------------

  /// Streaming single-object updates. Degenerate boxes are ignored (they
  /// cannot contribute to a strict overlap; the pipelines drop them too)
  /// and counted in stats().dropped. Thread-safe. Locking: the dataset's
  /// exclusive lock for the update — unless the dataset has sharded
  /// writers configured, in which case only the calling thread's shard
  /// mutex is taken and the exclusive lock is deferred to epoch folds.
  Status Insert(const std::string& dataset, const Box& box);
  /// Streaming removal; the linear-synopsis mirror of Insert (same
  /// validation, locking, and sharded-writer routing).
  Status Delete(const std::string& dataset, const Box& box);

  /// Re-route `dataset`'s Insert/Delete through `opt.writers` writer
  /// shards with epoch folding (see the file comment and writer_shards.h).
  /// One-shot per dataset: the shard set is created once and lives for the
  /// dataset's lifetime (a second call fails with FailedPrecondition),
  /// which is what keeps the un-locked fast-path read of the shard pointer
  /// safe. Call it before directing writer traffic at the dataset; calling
  /// it while writers stream through the un-sharded path is safe but those
  /// in-flight updates simply stay on the old path. Takes the dataset's
  /// exclusive lock.
  Status ConfigureShardedWriters(const std::string& dataset,
                                 const ShardedWriterOptions& opt);

  /// Epoch fence: fold every pending writer-shard delta of `dataset` into
  /// its master counters, so subsequent estimates reflect every Insert/
  /// Delete that returned before this call. One relaxed atomic load (no
  /// locks) when nothing is pending or the dataset is not sharded; under
  /// pending deltas it takes each shard mutex and the dataset's exclusive
  /// lock per fold. Thread-safe.
  Status Fence(const std::string& dataset);

  /// Batched ingest (sign +1 adds, -1 removes). Builds a delta sketch
  /// off-lock — sequentially here, sharded across `num_threads` workers in
  /// ParallelBulkLoad — then merges it under the writer lock. Both paths
  /// produce counters bit-identical to streaming the boxes one by one.
  Status BulkLoad(const std::string& dataset, const std::vector<Box>& boxes,
                  int sign = +1);
  Status ParallelBulkLoad(const std::string& dataset,
                          const std::vector<Box>& boxes,
                          uint32_t num_threads, int sign = +1);

  // ---- Serving (safe to call concurrently with all ingest paths) ----------

  /// Range-count estimate on a kRange dataset; the query is in ORIGINAL
  /// coordinates and must be non-degenerate per dimension. Takes the
  /// dataset's shared lock; thread-safe.
  Result<double> EstimateRangeCount(const std::string& dataset,
                                    const Box& query) const;
  /// Selectivity (count / object total) variant; count and total are
  /// read under ONE shared-lock acquisition, so the ratio is a
  /// consistent cut even while writers stream. Thread-safe.
  Result<double> EstimateRangeSelectivity(const std::string& dataset,
                                          const Box& query) const;

  /// Spatial-join cardinality estimate between a kJoinR and a kJoinS
  /// dataset created under the same schema name. Takes both datasets'
  /// shared locks in address order; thread-safe.
  Result<double> EstimateJoin(const std::string& r_dataset,
                              const std::string& s_dataset) const;

  // ---- Batched serving ----------------------------------------------------
  //
  // A batch acquires each involved dataset's FairSharedMutex exactly ONCE
  // (vs once per query) and fans the per-query work across a small
  // internal thread pool, so all answers of one batch are computed against
  // a single consistent counter state. Values are exactly what the
  // equivalent sequence of single-query calls against that state returns.

  /// Batched range-count estimates on a kRange dataset. Rejects empty
  /// batches and invalid queries (whole batch, before any work).
  Result<std::vector<double>> EstimateRangeBatch(
      const std::string& dataset, const std::vector<Box>& queries) const;

  /// Batched join estimates of one kJoinR dataset against many kJoinS
  /// datasets (same schema name); locks every distinct dataset once, in
  /// address order. Rejects empty batches.
  Result<std::vector<double>> EstimateJoinBatch(
      const std::string& r_dataset,
      const std::vector<std::string>& s_datasets) const;

  /// Net object count (inserts minus deletes). Fences pending writer-shard
  /// deltas first, then reads under the dataset's shared lock, so the
  /// count reflects every update that returned before the call.
  /// Thread-safe.
  Result<int64_t> NumObjects(const std::string& dataset) const;

  /// Consistent copy of the dataset's raw counters (for verification: the
  /// synopsis is linear, so these are bit-comparable across ingest paths).
  /// Fences pending writer-shard deltas, then copies under the dataset's
  /// shared lock. Thread-safe.
  Result<std::vector<int64_t>> CounterSnapshot(const std::string& dataset) const;

  // ---- Persistence --------------------------------------------------------

  /// Serialized self-contained snapshot — a small kind-tagged header over
  /// the serialize.h sketch wire format — taken under the dataset's
  /// shared lock: a consistent cut of the counters. Fences pending
  /// writer-shard deltas first, so the blob contains every update that
  /// returned before the call. Thread-safe.
  Result<std::string> Snapshot(const std::string& dataset) const;

  /// Replace the dataset's counters with a snapshot blob. The blob's
  /// DatasetKind, schema configuration, and shape must all match the
  /// dataset's (kJoinR/kJoinS share shape and schema but ingest through
  /// different coordinate mappings, so the kind tag is load-bearing); the
  /// dataset keeps its shared schema instance, so restored datasets stay
  /// joinable with their schema-mates. Fences pending writer-shard deltas
  /// BEFORE adopting (pre-restore updates must not fold into post-restore
  /// counters later), deserializes off-lock, and adopts under the
  /// dataset's exclusive lock; updates racing the restore land after it,
  /// as some sequential order must place them. Thread-safe.
  Status Restore(const std::string& dataset, const std::string& blob);

  /// Monotonic operation counters (relaxed reads; see StoreStats).
  StoreStats stats() const;

 private:
  struct Dataset {
    Dataset(DatasetKind k, StoreSchemaOptions o, DatasetSketch s)
        : kind(k), opt(o), sketch(std::move(s)) {}
    const DatasetKind kind;
    const StoreSchemaOptions opt;  ///< original-domain configuration
    DatasetSketch sketch;          ///< the master counters; guarded by mu
    mutable FairSharedMutex mu;
    // Sharded-writer state. `shards` owns the set; `shards_live` is the
    // lock-free view the streaming hot path reads (published once, under
    // the exclusive lock, never cleared — which is why configuration is
    // one-shot and no teardown race exists).
    std::unique_ptr<WriterShardSet> shards;
    std::atomic<WriterShardSet*> shards_live{nullptr};
  };
  using DatasetPtr = std::shared_ptr<Dataset>;

  struct SchemaEntry {
    StoreSchemaOptions opt;
    SchemaPtr schema;
  };

  Result<DatasetPtr> Find(const std::string& name) const;
  Status ApplyStreaming(const std::string& dataset, const Box& box, int sign);
  /// Folds any pending writer-shard deltas of `ds` (no-op when unsharded
  /// or idle) and accounts the folds; shared by Fence and every surface
  /// that must observe the full stream.
  void FenceDataset(Dataset& ds) const;
  Status MergeDelta(const std::string& name, const std::vector<Box>& boxes,
                    uint32_t num_threads, int sign);
  /// The lazily created batch-serving pool (first batch call pays the
  /// thread spawn; single-query serving never does).
  QueryPool& Pool() const;

  mutable FairSharedMutex registry_mu_;
  mutable std::once_flag pool_once_;
  mutable std::unique_ptr<QueryPool> pool_;
  std::map<std::string, SchemaEntry> schemas_;
  std::map<std::string, DatasetPtr> datasets_;

  mutable std::atomic<uint64_t> inserts_{0};
  mutable std::atomic<uint64_t> deletes_{0};
  mutable std::atomic<uint64_t> dropped_{0};
  mutable std::atomic<uint64_t> bulk_boxes_{0};
  mutable std::atomic<uint64_t> range_estimates_{0};
  mutable std::atomic<uint64_t> join_estimates_{0};
  mutable std::atomic<uint64_t> snapshots_{0};
  mutable std::atomic<uint64_t> restores_{0};
  mutable std::atomic<uint64_t> epoch_folds_{0};
  mutable std::atomic<uint64_t> fences_{0};

  SKETCH_DISALLOW_COPY_AND_ASSIGN(SketchStore);
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_STORE_SKETCH_STORE_H_
