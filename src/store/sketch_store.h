// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// SketchStore: a concurrent serving layer over DatasetSketch synopses.
//
// The store is a named registry at two levels: schemas (the shared
// xi-family configuration two datasets must have in common to be joined,
// schema.h) and datasets (one DatasetSketch each, created under a
// registered schema with a DatasetKind that fixes its shape and ingest
// mapping). Callers speak ORIGINAL coordinates throughout; the store
// applies each kind's ingest mapping internally (Section-5.2 endpoint
// transformation for range/join, eps-square expansion for kEpsBoxes, the
// Appendix-B.2 lift for the containment kinds), exactly as the estimator
// pipelines do, so a store-served estimate is bit-identical to the
// equivalent single-threaded pipeline result.
//
// Serving surface: the typed query API in src/api/ is the primary one —
// OpenDataset returns a DatasetHandle that skips the registry lookup on
// every hot-path operation, and Run executes a heterogeneous QueryBatch
// (all six QueryKinds) with per-query failure isolation. The string-keyed
// single/batch estimate entry points below are retained as thin shims
// over Run and return bit-identical values.
//
// Concurrency model: the registry and every dataset carry their own
// FairSharedMutex (fair_shared_mutex.h — std::shared_mutex makes no
// fairness guarantee and its common reader-preferring implementation lets
// an estimate stream starve writers). Estimates and snapshots take a
// dataset's shared lock
// and can run from any number of threads; Insert/Delete/Restore and the
// final Merge of a bulk load take the exclusive lock. Bulk loads build a
// private delta sketch OFF-lock (sharded across threads, parallel_ingest.h)
// and only hold the writer lock for the Merge, so heavy ingest does not
// starve readers. Because the synopsis is linear, any interleaving of
// these critical sections yields counters identical to some sequential
// execution of the same operations — concurrency changes timing, never
// values. Multi-dataset queries take the involved datasets' shared locks
// in address order so a pending writer between the acquisitions cannot
// induce a cycle.
//
// Sharded streaming writes: ConfigureShardedWriters(dataset, {W, epoch})
// re-routes that dataset's Insert/Delete through W writer shards
// (writer_shards.h), each a private delta sketch behind its own mutex fed
// by the lock-free sign/point-sum caches; the dataset's exclusive lock is
// then taken only when a shard's epoch fills and it folds (Merge + Reset)
// into the master counters. W writer threads stream concurrently instead
// of serializing behind one exclusive lock; linearity makes the fold
// exact. Estimates keep reading the master (staleness bounded by
// W * epoch_updates un-folded updates); Fence(dataset) is the epoch fence
// that folds everything pending — one atomic load when nothing is — and
// NumObjects/CounterSnapshot/Snapshot/Restore fence internally, so
// persistence and verification surfaces always see the full stream.
// See docs/ARCHITECTURE.md for the full concurrency model and
// docs/API.md for a cookbook of the typed query surface.

#ifndef SPATIALSKETCH_STORE_SKETCH_STORE_H_
#define SPATIALSKETCH_STORE_SKETCH_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <tuple>
#include <vector>

#include "src/api/dataset_handle.h"
#include "src/api/query.h"
#include "src/common/macros.h"
#include "src/common/status.h"
#include "src/dyadic/dyadic_domain.h"
#include "src/geom/box.h"
#include "src/sketch/dataset_sketch.h"
#include "src/sketch/schema.h"
#include "src/store/dataset_state.h"
#include "src/store/fair_shared_mutex.h"
#include "src/store/query_pool.h"
#include "src/store/store_types.h"
#include "src/store/writer_shards.h"

/// Core namespace of the spatialsketch library.
namespace spatialsketch {

/// Durability primitives (WAL, checkpoints) behind SketchStore::
/// OpenDurable; see src/store/durability/ and docs/DURABILITY.md.
namespace durability {
struct CheckpointImage;
struct WalRecord;
}  // namespace durability

namespace internal {
class DurabilityManager;
}  // namespace internal

/// Monotonic operation counters (relaxed atomics; approximate under
/// concurrency, exact once the store is quiescent).
struct StoreStats {
  uint64_t inserts = 0;  ///< streaming Insert calls applied
  uint64_t deletes = 0;  ///< streaming Delete calls applied
  uint64_t dropped = 0;  ///< degenerate boxes ignored by ingest
  uint64_t bulk_boxes = 0;       ///< boxes absorbed through bulk loads
  /// Rows applied by bulk-load delta builds, advancing LIVE at shard
  /// granularity while a load is still running (bulk_boxes moves only
  /// when a load completes) — the store-wide progress gauge behind the
  /// network layer's CheckJob fractions. Loads that supply their own
  /// progress sink (the ParallelBulkLoad overload) fold their row count
  /// in here on completion instead, so the stat stays a monotone total
  /// of rows applied either way.
  uint64_t bulk_rows_applied = 0;
  uint64_t range_estimates = 0;  ///< range count/selectivity estimates served
  uint64_t join_estimates = 0;   ///< spatial-join estimates served
  uint64_t self_join_estimates = 0;    ///< self-join-size estimates served
  uint64_t eps_join_estimates = 0;     ///< eps-join estimates served
  uint64_t containment_estimates = 0;  ///< containment-join estimates served
  uint64_t query_batches = 0;   ///< Run() batches executed (incl. via shims)
  uint64_t handles_opened = 0;  ///< DatasetHandles handed out by OpenDataset
  uint64_t snapshots = 0;       ///< Snapshot blobs produced
  uint64_t restores = 0;        ///< successful Restore calls
  uint64_t epoch_folds = 0;  ///< shard deltas folded into master counters
  uint64_t fences = 0;       ///< explicit + internal epoch fences taken

  // Durability (all 0 on a non-durable store; see docs/DURABILITY.md).
  uint64_t wal_records = 0;   ///< WAL records appended this session
  uint64_t wal_bytes = 0;     ///< WAL bytes appended this session
  uint64_t checkpoints = 0;   ///< checkpoints installed this session
  uint64_t wal_replayed = 0;  ///< WAL records replayed by OpenDurable

  // Schema-owned cache health, aggregated over every schema variant's
  // PackedSignCache / PointSumCache (see src/xi/*cache*.h): lookups that
  // found a built entry, lookups that built one, entries evicted by the
  // clock sweep under a memory budget, and resident bytes right now.
  uint64_t sign_cache_hits = 0;      ///< sign-column lookups served cached
  uint64_t sign_cache_misses = 0;    ///< sign-column lookups that built
  uint64_t sign_cache_evicted = 0;   ///< sign columns evicted under budget
  uint64_t sign_cache_bytes = 0;     ///< resident sign-cache bytes
  uint64_t point_sum_hits = 0;       ///< point-sum lookups served cached
  uint64_t point_sum_misses = 0;     ///< point-sum lookups that built
  uint64_t point_sum_evicted = 0;    ///< point-sum entries evicted
  uint64_t point_sum_bytes = 0;      ///< resident point-sum-cache bytes
};

/// A concurrent, named registry of dataset sketches served under shared
/// schemas — the serving layer (see the file comment for the concurrency
/// model and docs/ARCHITECTURE.md for the system picture).

class SketchStore {
 public:
  /// An empty store: no schemas, no datasets, lazy query pool. Defined
  /// out of line (with the destructor) so this header only needs the
  /// DurabilityManager forward declaration.
  SketchStore();

  /// Open (or create) a DURABLE store rooted at directory `dir`: loads
  /// the latest valid checkpoint, replays the write-ahead-log tail in
  /// order — stopping cleanly at the first torn or corrupt trailing
  /// record — and immediately writes a fresh checkpoint, so the
  /// recovered counters are bit-identical to the accepted pre-crash
  /// state (the linearity of the synopsis makes this exact, and the
  /// kill-point tests assert it). Every subsequent mutation is logged
  /// before it applies; sharded ingest logs one compact delta record per
  /// epoch fold, so its durability is group-granular at folds/fences
  /// (un-folded shard deltas at a crash are lost by design — they were
  /// never served from the master either). See docs/DURABILITY.md.
  static Result<std::unique_ptr<SketchStore>> OpenDurable(
      const std::string& dir, const DurabilityOptions& opt = {});

  /// Write a checkpoint of the whole store now (atomic publish: temp +
  /// fsync + rename), then truncate the WAL to it. Stop-the-world with
  /// respect to mutations (they block for the duration); readers keep
  /// being served. Fails with FailedPrecondition on a non-durable store.
  Status Checkpoint();

  /// Force every appended WAL record to stable storage (the explicit
  /// durability point under WalSyncPolicy::kNone/kEpoch). No-op OK on a
  /// non-durable store.
  Status SyncWal();

  /// True when the store was opened via OpenDurable.
  bool durable() const { return durability_ != nullptr; }

  /// Marks every dataset dropped, so a DatasetHandle that outlives the
  /// store fails fast (FailedPrecondition) instead of dereferencing the
  /// destroyed store — handles share ownership of the dataset STATES,
  /// not of the store. Destroying the store while an operation is still
  /// in flight remains a race, as for any C++ object.
  ~SketchStore();

  // ---- Registry -----------------------------------------------------------

  /// Register a named schema. Fails on duplicate names or invalid
  /// options. Builds the endpoint-transformed variant (the range/join
  /// kinds) up front; the plain original-domain variant (eps kinds) and
  /// the lifted 2*dims variant (containment kinds, requiring
  /// 2 * dims <= kMaxDims) are derived lazily on the first CreateDataset
  /// that needs them — see StoreSchemaOptions.
  Status RegisterSchema(const std::string& name,
                        const StoreSchemaOptions& opt);

  /// Create an empty dataset under a registered schema. Datasets created
  /// under the same schema NAME and the same schema variant (see
  /// DatasetKind) share the same schema instance and are therefore
  /// joinable / mergeable.
  Status CreateDataset(const std::string& name,
                       const std::string& schema_name, DatasetKind kind);

  /// CreateDataset with per-dataset options (currently the kEpsBoxes
  /// ingest radius; see DatasetOptions). Fails if an option is set that
  /// the kind does not read.
  Status CreateDataset(const std::string& name,
                       const std::string& schema_name, DatasetKind kind,
                       const DatasetOptions& dopt);

  /// Resolve a dataset name ONCE and return a handle whose Insert/
  /// Delete/estimate operations skip the registry map lookup + registry
  /// lock entirely (src/api/dataset_handle.h). The handle pins the
  /// dataset's state; after DropDataset every operation through it
  /// fails with FailedPrecondition, and a re-created same-name dataset
  /// is distinguishable by its new generation() tag. Takes the
  /// registry's shared lock once; thread-safe.
  Result<DatasetHandle> OpenDataset(const std::string& name);

  /// Remove a dataset from the registry and invalidate every open
  /// DatasetHandle to it (their next operation fails fast). In-flight
  /// operations holding the dataset's state finish safely; new lookups
  /// fail. Takes the registry's exclusive lock.
  Status DropDataset(const std::string& name);

  /// Sorted dataset names. A consistent snapshot: the list is copied out
  /// under the registry's shared lock, so it reflects exactly the set of
  /// datasets registered at some single instant — concurrent creates and
  /// drops land entirely before or entirely after it, never partially.
  /// Thread-safe.
  std::vector<std::string> ListDatasets() const;

  /// The shared endpoint-transformed schema instance behind a registered
  /// schema name (the variant serving the range/join kinds).
  Result<SchemaPtr> GetSchema(const std::string& name) const;

  // ---- Streaming and batched ingest (ORIGINAL coordinates) ----------------

  /// Streaming single-object updates. For the range/join kinds,
  /// degenerate boxes are ignored (they cannot contribute to a strict
  /// overlap; the pipelines drop them too) and counted in
  /// stats().dropped; the point kinds (kEpsPoints/kEpsBoxes) require
  /// lo == hi per dimension instead, and the containment kinds accept
  /// any valid box. Thread-safe. Locking: the dataset's exclusive lock
  /// for the update — unless the dataset has sharded writers configured,
  /// in which case only the calling thread's shard mutex is taken and
  /// the exclusive lock is deferred to epoch folds.
  Status Insert(const std::string& dataset, const Box& box);
  /// Streaming removal; the linear-synopsis mirror of Insert (same
  /// validation, locking, and sharded-writer routing).
  Status Delete(const std::string& dataset, const Box& box);

  /// Re-route `dataset`'s Insert/Delete through `opt.writers` writer
  /// shards with epoch folding (see the file comment and writer_shards.h).
  /// One-shot per dataset: the shard set is created once and lives for the
  /// dataset's lifetime (a second call fails with FailedPrecondition),
  /// which is what keeps the un-locked fast-path read of the shard pointer
  /// safe. Call it before directing writer traffic at the dataset; calling
  /// it while writers stream through the un-sharded path is safe but those
  /// in-flight updates simply stay on the old path. Takes the dataset's
  /// exclusive lock.
  Status ConfigureShardedWriters(const std::string& dataset,
                                 const ShardedWriterOptions& opt);

  /// Epoch fence: fold every pending writer-shard delta of `dataset` into
  /// its master counters, so subsequent estimates reflect every Insert/
  /// Delete that returned before this call. One relaxed atomic load (no
  /// locks) when nothing is pending or the dataset is not sharded; under
  /// pending deltas it takes each shard mutex and the dataset's exclusive
  /// lock per fold. Thread-safe.
  Status Fence(const std::string& dataset);

  /// Batched ingest (sign +1 adds, -1 removes). Builds a delta sketch
  /// off-lock — sequentially here, sharded across `num_threads` workers in
  /// ParallelBulkLoad — then merges it under the writer lock. Both paths
  /// produce counters bit-identical to streaming the boxes one by one.
  Status BulkLoad(const std::string& dataset, const std::vector<Box>& boxes,
                  int sign = +1);
  Status ParallelBulkLoad(const std::string& dataset,
                          const std::vector<Box>& boxes,
                          uint32_t num_threads, int sign = +1);

  /// ParallelBulkLoad with a caller-owned rows-applied sink: `progress`
  /// (which must outlive the call) is advanced with relaxed adds as
  /// load shards complete, summing to the batch's non-degenerate row
  /// count on success — what the network layer's async-load jobs poll
  /// to report a real CheckJob fraction while a multi-GB ingest runs.
  /// Identical counters and locking to the overload above.
  Status ParallelBulkLoad(const std::string& dataset,
                          const std::vector<Box>& boxes,
                          uint32_t num_threads, int sign,
                          std::atomic<uint64_t>* progress);

  // ---- Typed serving (safe to call concurrently with all ingest paths) ----

  /// Execute a heterogeneous QueryBatch (src/api/query.h): every
  /// QueryKind — range count/selectivity, self-join size, spatial join,
  /// eps join, containment join — in one call. Resolution pays the
  /// registry lock once per distinct NAME in the batch (handle-bearing
  /// specs skip it entirely); each involved dataset's FairSharedMutex is
  /// then taken exactly ONCE, in address order, so all answers of the
  /// batch are computed against a single consistent counter state; the
  /// per-query work fans out across the internal query pool (range specs
  /// grouped per dataset through RangeQueryBatch, join specs grouped per
  /// R dataset through EstimateJoinCardinalityBatch — values are exactly
  /// what the equivalent single-query calls against that state return).
  ///
  /// Failure isolation is PER QUERY: an unknown dataset, a dropped
  /// handle, a kind mismatch, an invalid box, or an eps mismatch fails
  /// only that spec's QueryResult; every other spec is served. The call
  /// itself errors only on an empty batch. Thread-safe.
  Result<std::vector<QueryResult>> Run(const QueryBatch& batch) const;

  /// Run() into a caller-owned result vector (cleared, then resized to
  /// the batch size). Identical semantics and bit-identical values; the
  /// out-parameter form exists so a serving loop can reuse one results
  /// buffer across requests instead of allocating a vector per batch —
  /// the network layer's zero-alloc RPC hot path (src/net/server.cc)
  /// calls this overload with per-connection scratch. Thread-safe.
  Status Run(const QueryBatch& batch, std::vector<QueryResult>* results) const;

  /// Range-count estimate on a kRange dataset; the query is in ORIGINAL
  /// coordinates and must be non-degenerate per dimension. Takes the
  /// dataset's shared lock; thread-safe.
  /// \deprecated Thin shim over Run() (bit-identical values); prefer
  /// Run(QueryBatch) or DatasetHandle::EstimateRangeCount, which also
  /// skip the per-call registry lookup.
  Result<double> EstimateRangeCount(const std::string& dataset,
                                    const Box& query) const;
  /// Selectivity (count / object total) variant; count and total are
  /// read under ONE shared-lock acquisition, so the ratio is a
  /// consistent cut even while writers stream. Thread-safe.
  /// \deprecated Thin shim over Run() (bit-identical values); prefer
  /// Run(QueryBatch) or DatasetHandle::EstimateRangeSelectivity.
  Result<double> EstimateRangeSelectivity(const std::string& dataset,
                                          const Box& query) const;

  /// Spatial-join cardinality estimate between a kJoinR and a kJoinS
  /// dataset created under the same schema name. Takes both datasets'
  /// shared locks in address order; thread-safe.
  /// \deprecated Thin shim over Run() (bit-identical values); prefer
  /// Run(QueryBatch) with QuerySpec::JoinCardinality.
  Result<double> EstimateJoin(const std::string& r_dataset,
                              const std::string& s_dataset) const;

  // ---- Batched serving (legacy shims over Run) ----------------------------

  /// Batched range-count estimates on a kRange dataset. Rejects empty
  /// batches and invalid queries (whole batch, preserving the pre-Run
  /// contract — use Run() directly for per-query failure isolation).
  /// \deprecated Thin shim over Run() (bit-identical values).
  Result<std::vector<double>> EstimateRangeBatch(
      const std::string& dataset, const std::vector<Box>& queries) const;

  /// Batched join estimates of one kJoinR dataset against many kJoinS
  /// datasets (same schema name); locks every distinct dataset once, in
  /// address order. Rejects empty batches and any bad pair (whole batch,
  /// preserving the pre-Run contract — use Run() directly for per-query
  /// failure isolation).
  /// \deprecated Thin shim over Run() (bit-identical values).
  Result<std::vector<double>> EstimateJoinBatch(
      const std::string& r_dataset,
      const std::vector<std::string>& s_datasets) const;

  /// Net object count (inserts minus deletes). Fences pending writer-shard
  /// deltas first, then reads under the dataset's shared lock, so the
  /// count reflects every update that returned before the call.
  /// Thread-safe.
  Result<int64_t> NumObjects(const std::string& dataset) const;

  /// Consistent copy of the dataset's raw counters (for verification: the
  /// synopsis is linear, so these are bit-comparable across ingest paths).
  /// Fences pending writer-shard deltas, then copies under the dataset's
  /// shared lock. Thread-safe.
  Result<std::vector<int64_t>> CounterSnapshot(const std::string& dataset) const;

  // ---- Persistence --------------------------------------------------------

  /// Serialized self-contained snapshot — a small kind-and-eps-tagged
  /// header over the serialize.h sketch wire format — taken under the
  /// dataset's shared lock: a consistent cut of the counters. Fences
  /// pending writer-shard deltas first, so the blob contains every
  /// update that returned before the call. Thread-safe.
  Result<std::string> Snapshot(const std::string& dataset) const;

  /// Replace the dataset's counters with a snapshot blob. The blob's
  /// DatasetKind, ingest eps, schema configuration, and shape must all
  /// match the dataset's (kJoinR/kJoinS share shape and schema but
  /// ingest through different coordinate mappings, and two kEpsBoxes
  /// datasets differing only in eps hold incomparable counters, so the
  /// kind and eps tags are load-bearing); the dataset keeps its shared
  /// schema instance, so restored datasets stay joinable with their
  /// schema-mates. Fences pending writer-shard deltas BEFORE adopting
  /// (pre-restore updates must not fold into post-restore counters
  /// later), deserializes off-lock, and adopts under the dataset's
  /// exclusive lock; updates racing the restore land after it, as some
  /// sequential order must place them. Thread-safe.
  Status Restore(const std::string& dataset, const std::string& blob);

  /// Monotonic operation counters (relaxed reads; see StoreStats).
  StoreStats stats() const;

 private:
  /// Handle operations forward to the private `*To`/`*On` helpers after
  /// their liveness check, sharing one implementation with the
  /// string-keyed paths.
  friend class DatasetHandle;

  using DatasetPtr = std::shared_ptr<internal::DatasetState>;

  /// The schema variants behind one registered name (see
  /// StoreSchemaOptions): `transformed` (built at RegisterSchema) serves
  /// kRange/kJoinR/kJoinS; `plain` and `lifted` serve the eps and
  /// containment kinds and are created lazily by EnsureSchemaVariant on
  /// the first CreateDataset that needs them, so range/join-only users
  /// never pay for them.
  struct SchemaEntry {
    StoreSchemaOptions opt;
    SchemaPtr transformed;
    SchemaPtr plain;
    SchemaPtr lifted;
    /// SLO-sized variants: datasets whose DatasetOptions SLO derived a
    /// (k1, k2) different from the registered one get a schema instance
    /// from here, keyed by (variant class, k1, k2) so equal-SLO datasets
    /// SHARE an instance and stay joinable (pointer equality is the
    /// estimators' compatibility test). 0 = transformed, 1 = plain,
    /// 2 = lifted.
    std::map<std::tuple<int, uint32_t, uint32_t>, SchemaPtr> sized;
  };

  Result<DatasetPtr> Find(const std::string& name) const;
  /// The lazily created `plain` (lifted=false) or `lifted` (lifted=true)
  /// schema variant of `schema_name`, building and publishing it under
  /// the registry's exclusive lock on first use. Concurrent callers
  /// always receive the SAME instance (pointer equality is the
  /// estimators' schema-compatibility test).
  Result<SchemaPtr> EnsureSchemaVariant(const std::string& schema_name,
                                        bool lifted);
  /// The shared SLO-sized schema instance for (variant_class, k1, k2)
  /// under `schema_name` (see SchemaEntry::sized), building and
  /// publishing it under the registry's exclusive lock on first use.
  Result<SchemaPtr> EnsureSizedVariant(const std::string& schema_name,
                                       int variant_class, uint32_t k1,
                                       uint32_t k2);
  /// FailedPrecondition once DropDataset has invalidated `ds`.
  static Status CheckLive(const internal::DatasetState& ds);
  Status ApplyStreaming(const std::string& dataset, const Box& box, int sign);
  /// The post-resolution body of Insert/Delete, shared with the handle
  /// fast path: kind-specific ingest mapping, sharded-writer routing,
  /// stats.
  Status ApplyStreamingTo(internal::DatasetState& ds, const Box& box,
                          int sign);
  /// Handle twins of the string-keyed serving entry points (DatasetHandle
  /// forwards here after its liveness check).
  Result<double> RangeCountOn(const internal::DatasetState& ds,
                              const Box& query, bool selectivity) const;
  Result<int64_t> NumObjectsOn(internal::DatasetState& ds) const;
  /// Folds any pending writer-shard deltas of `ds` (no-op when unsharded
  /// or idle) and accounts the folds; shared by Fence and every surface
  /// that must observe the full stream. Takes the commit lock shared on
  /// a durable store (folds append WAL records); fails only when the
  /// fold's WAL append fails.
  Status FenceDataset(internal::DatasetState& ds) const;
  /// FenceDataset body without the commit acquisition — for callers
  /// already holding the commit lock (checkpoints hold it exclusively).
  Status FenceDatasetNoCommit(internal::DatasetState& ds) const;
  Status MergeDelta(const std::string& name, const std::vector<Box>& boxes,
                    uint32_t num_threads, int sign,
                    std::atomic<uint64_t>* progress = nullptr);
  /// Commit-lock shared guard; an empty (no-op) lock when not durable.
  std::shared_lock<FairSharedMutex> CommitShared() const;
  /// Shared body of Restore and WAL replay: parse + validate a snapshot
  /// blob and adopt it into `ds`, logging a kRestore record first when
  /// `log` (fences pending shard deltas before adopting either way).
  Status RestoreOn(internal::DatasetState& ds, const std::string& blob,
                   bool log);
  /// The snapshot wire blob of `ds` under its shared lock — no fence, no
  /// commit lock (callers handle both).
  std::string BuildSnapshotBlob(const internal::DatasetState& ds) const;
  /// Checkpoint body; caller holds the commit lock exclusively.
  /// Defined in src/store/durability/recovery.cc.
  Status CheckpointLocked();
  /// Assemble the whole-store checkpoint image (schemas, dataset
  /// identities, snapshot blobs); caller holds the commit lock
  /// exclusively. Defined in src/store/durability/recovery.cc.
  Status BuildCheckpointImage(durability::CheckpointImage* out);
  /// Apply one replayed WAL record through the normal mutation paths
  /// (updates/deltas bypass validation and ingest mapping — they carry
  /// already-mapped data). Defined in src/store/durability/recovery.cc.
  Status ReplayWalRecord(const durability::WalRecord& rec);
  /// Fire-and-forget auto-checkpoint trigger (DurabilityOptions::
  /// checkpoint_every_bytes); called AFTER the commit lock is released.
  void MaybeAutoCheckpoint();
  /// The lazily created batch-serving pool (first batch call pays the
  /// thread spawn; single-query serving never does).
  QueryPool& Pool() const;

  mutable FairSharedMutex registry_mu_;
  mutable std::once_flag pool_once_;
  mutable std::unique_ptr<QueryPool> pool_;
  std::map<std::string, SchemaEntry> schemas_;
  std::map<std::string, DatasetPtr> datasets_;
  std::atomic<uint64_t> next_generation_{0};

  mutable std::atomic<uint64_t> inserts_{0};
  mutable std::atomic<uint64_t> deletes_{0};
  mutable std::atomic<uint64_t> dropped_{0};
  mutable std::atomic<uint64_t> bulk_boxes_{0};
  mutable std::atomic<uint64_t> bulk_rows_applied_{0};
  mutable std::atomic<uint64_t> range_estimates_{0};
  mutable std::atomic<uint64_t> join_estimates_{0};
  mutable std::atomic<uint64_t> self_join_estimates_{0};
  mutable std::atomic<uint64_t> eps_join_estimates_{0};
  mutable std::atomic<uint64_t> containment_estimates_{0};
  mutable std::atomic<uint64_t> query_batches_{0};
  mutable std::atomic<uint64_t> handles_opened_{0};
  mutable std::atomic<uint64_t> snapshots_{0};
  mutable std::atomic<uint64_t> restores_{0};
  mutable std::atomic<uint64_t> epoch_folds_{0};
  mutable std::atomic<uint64_t> fences_{0};

  /// Null on a default-constructed store; set once by OpenDurable before
  /// the store is published, so every reader sees one stable value.
  std::unique_ptr<internal::DurabilityManager> durability_;

  SKETCH_DISALLOW_COPY_AND_ASSIGN(SketchStore);
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_STORE_SKETCH_STORE_H_
