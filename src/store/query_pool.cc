#include "src/store/query_pool.h"

#include <algorithm>

namespace spatialsketch {

QueryPool::QueryPool(uint32_t num_threads) {
  if (num_threads == 0) {
    const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
    num_threads = std::min(3u, hw - 1);
  }
  workers_.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryPool::~QueryPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool QueryPool::RunOne(Job& job) {
  const size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
  if (i >= job.n) return false;
  (*job.fn)(i);
  if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.n) {
    // Acquire the waiter's mutex before notifying so the completion
    // cannot slip between the waiter's predicate check and its wait.
    std::lock_guard<std::mutex> lock(job.done_mu);
    job.done_cv.notify_all();
  }
  return true;
}

void QueryPool::WorkerLoop() {
  for (;;) {
    JobPtr job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop_ set and nothing left to help with
      job = jobs_.front();
    }
    while (RunOne(*job)) {
    }
    // Fully claimed: retire it from the queue if it is still there.
    std::lock_guard<std::mutex> lock(mu_);
    if (!jobs_.empty() && jobs_.front() == job) jobs_.pop_front();
  }
}

void QueryPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(job);
  }
  work_cv_.notify_all();

  // The submitter works its own job too, so progress never depends on the
  // workers being free (or existing at all).
  while (RunOne(*job)) {
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (*it == job) {
        jobs_.erase(it);
        break;
      }
    }
  }
  std::unique_lock<std::mutex> lock(job->done_mu);
  job->done_cv.wait(lock, [&] {
    return job->done.load(std::memory_order_acquire) == job->n;
  });
}

}  // namespace spatialsketch
