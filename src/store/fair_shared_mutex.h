// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// A starvation-free reader/writer mutex for the serving layer.
//
// std::shared_mutex makes no fairness guarantee, and the common
// pthread_rwlock implementation under it is reader-preferring: a steady
// stream of estimate threads holding overlapping shared locks can starve
// a streaming writer INDEFINITELY (observed in practice on this store's
// own tests). The store's whole claim is "serve estimates while absorbing
// updates", so its per-dataset lock must guarantee progress for both
// classes:
//
//  * a waiting writer blocks NEW readers (so the reader stream drains and
//    the writer gets in: no writer starvation);
//  * a releasing writer first admits the batch of readers that queued
//    while it held the lock, before the next writer may enter (so a
//    steady writer stream cannot starve readers either).
//
// This alternation (writer -> queued reader batch -> writer -> ...) is a
// simplified phase-fair lock. All waiting is condition-variable based;
// the critical sections the store puts under this lock (counter reads and
// counter additions) are orders of magnitude longer than the lock's own
// bookkeeping.
//
// Meets the Cpp17SharedMutex requirements needed by std::shared_lock /
// std::unique_lock.

#ifndef SPATIALSKETCH_STORE_FAIR_SHARED_MUTEX_H_
#define SPATIALSKETCH_STORE_FAIR_SHARED_MUTEX_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "src/common/macros.h"

namespace spatialsketch {

class FairSharedMutex {
 public:
  FairSharedMutex() = default;

  // ---- Exclusive (writer) -------------------------------------------------

  void lock() {
    std::unique_lock<std::mutex> l(mu_);
    ++writers_waiting_;
    writer_cv_.wait(l, [&] { return CanWrite(); });
    --writers_waiting_;
    writer_active_ = true;
  }

  bool try_lock() {
    std::lock_guard<std::mutex> l(mu_);
    if (!CanWrite()) return false;
    writer_active_ = true;
    return true;
  }

  void unlock() {
    std::lock_guard<std::mutex> l(mu_);
    SKETCH_DCHECK(writer_active_);
    writer_active_ = false;
    // Admit every reader that queued while we held the lock before the
    // next writer may enter; with no queued readers, hand straight off.
    // Admission is by phase, not by count: each queued reader recorded
    // the phase it arrived in, so a newcomer that arrives after this
    // release (and therefore carries the NEW phase) cannot consume an
    // admitted reader's slot — the batch members themselves are the only
    // threads whose recorded phase is now stale, which is what makes the
    // no-starvation guarantee hold per reader, not just per batch.
    ++phase_;
    reader_debt_ = readers_waiting_;
    if (reader_debt_ > 0) {
      reader_cv_.notify_all();
    } else {
      writer_cv_.notify_one();
    }
  }

  // ---- Shared (reader) ----------------------------------------------------

  void lock_shared() {
    std::unique_lock<std::mutex> l(mu_);
    if (!CanRead()) {
      const uint64_t my_phase = phase_;
      ++readers_waiting_;
      reader_cv_.wait(l, [&] {
        return !writer_active_ && (writers_waiting_ == 0 || phase_ != my_phase);
      });
      --readers_waiting_;
      // Drain-in accounting for the admitting writer's batch; newcomers
      // admitted on the writers_waiting_ == 0 clause carry the current
      // phase and leave the debt alone.
      if (phase_ != my_phase && reader_debt_ > 0) --reader_debt_;
    }
    ++readers_active_;
  }

  bool try_lock_shared() {
    std::lock_guard<std::mutex> l(mu_);
    if (!CanRead()) return false;
    ++readers_active_;
    return true;
  }

  void unlock_shared() {
    std::lock_guard<std::mutex> l(mu_);
    SKETCH_DCHECK(readers_active_ > 0);
    if (--readers_active_ == 0 && reader_debt_ == 0) {
      writer_cv_.notify_one();
    }
  }

 private:
  // A writer may enter when nobody holds the lock and the reader batch
  // admitted by the previous writer has fully drained in.
  bool CanWrite() const {
    return !writer_active_ && readers_active_ == 0 && reader_debt_ == 0;
  }
  // A reader may enter immediately only when no writer holds or awaits
  // the lock; otherwise it queues and is admitted as part of a batch.
  bool CanRead() const { return !writer_active_ && writers_waiting_ == 0; }

  std::mutex mu_;
  std::condition_variable reader_cv_;
  std::condition_variable writer_cv_;
  uint64_t readers_active_ = 0;
  uint64_t readers_waiting_ = 0;
  uint64_t writers_waiting_ = 0;
  uint64_t reader_debt_ = 0;  ///< queued readers owed entry before next writer
  uint64_t phase_ = 0;        ///< bumped per writer release (batch identity)
  bool writer_active_ = false;

  SKETCH_DISALLOW_COPY_AND_ASSIGN(FairSharedMutex);
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_STORE_FAIR_SHARED_MUTEX_H_
