// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// QueryPool: a small shared worker pool for fanning batched estimates.
//
// The store's batch entry points hold a dataset's shared lock for the
// whole batch (one acquisition instead of N) and spread the per-query
// work across these workers; the workers read the locked counters without
// taking the lock themselves, which is safe because the submitting thread
// keeps its shared lock until ParallelFor returns. The pool is deliberately
// small (serving threads are the primary concurrency axis; the pool only
// shortens individual batch latency) and is shared by all concurrent
// batch calls: jobs queue FIFO and every participant — pool workers and
// each submitting thread — claims indices one at a time, so a large batch
// cannot wedge a later small one behind it.

#ifndef SPATIALSKETCH_STORE_QUERY_POOL_H_
#define SPATIALSKETCH_STORE_QUERY_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/macros.h"

namespace spatialsketch {

class QueryPool {
 public:
  /// num_threads == 0 sizes the pool to min(3, hardware - 1) workers: the
  /// submitting thread always participates, so effective batch
  /// parallelism is workers + 1, and a single-core host gets a zero-worker
  /// pool whose ParallelFor degenerates to a plain inline loop (no queue,
  /// no atomics). The pool always makes progress even with zero workers:
  /// submitters work their own jobs.
  explicit QueryPool(uint32_t num_threads = 0);
  ~QueryPool();

  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Runs fn(i) for every i in [0, n), distributed over the pool plus the
  /// calling thread; returns once all n calls completed. Safe to call
  /// from any number of threads concurrently. fn must not call back into
  /// ParallelFor on the same pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
  };
  using JobPtr = std::shared_ptr<Job>;

  void WorkerLoop();
  // Runs one claimed index of `job`; false if the job is fully claimed.
  static bool RunOne(Job& job);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<JobPtr> jobs_;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  SKETCH_DISALLOW_COPY_AND_ASSIGN(QueryPool);
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_STORE_QUERY_POOL_H_
