#include "src/xi/sign_table.h"

#include "src/common/macros.h"
#include "src/gf2/gf2_64.h"

namespace spatialsketch {

SignTable::SignTable(const std::vector<XiSeed>& seeds, uint64_t num_ids)
    : num_ids_(num_ids),
      num_instances_(static_cast<uint32_t>(seeds.size())),
      num_blocks_((num_instances_ + 63) / 64) {
  SKETCH_CHECK(num_ids > 0);
  SKETCH_CHECK(!seeds.empty());
  bits_.assign(static_cast<size_t>(num_blocks_) * num_ids_, 0);
  for (uint64_t id = 0; id < num_ids_; ++id) {
    const uint64_t cube = gf2::Cube(id);
    for (uint32_t j = 0; j < num_instances_; ++j) {
      const BchXiFamily fam(seeds[j]);
      const uint64_t bit = fam.BitWithCube(id, cube);
      bits_[static_cast<size_t>(j / 64) * num_ids_ + id] |= bit << (j % 64);
    }
  }
}

}  // namespace spatialsketch
