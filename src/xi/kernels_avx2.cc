// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// AVX2 kernel variants: 256-bit integer ops process 4 instance blocks per
// carry-save step, vpshufb-based in-register byte spreads replace the
// scalar spread-table expansion, and the estimator z-loops vectorize 4
// instances wide (per-instance FP op order preserved — see kernels.h for
// the bit-identity contract). This TU is compiled with -mavx2 and
// -ffp-contract=off via set_source_files_properties; nothing outside it
// may assume AVX2 codegen.

#include "src/xi/kernels.h"

#if defined(SPATIALSKETCH_COMPILE_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

// NOTE: no shared project headers beyond kernels.h here — see the
// comdat rule at the set_source_files_properties block in CMakeLists.txt.

namespace spatialsketch {
namespace kernels {
namespace {

// Bytes 0..31 of the result are 0xFF where the corresponding bit of
// `bits` is set: broadcast the 32-bit word, vpshufb each byte into its
// 8-lane group, isolate the lane's bit, compare-equal back to the mask.
inline __m256i SpreadMask32(uint32_t bits) {
  const __m256i v = _mm256_set1_epi32(static_cast<int>(bits));
  const __m256i group = _mm256_setr_epi8(0, 0, 0, 0, 0, 0, 0, 0,  //
                                         1, 1, 1, 1, 1, 1, 1, 1,  //
                                         2, 2, 2, 2, 2, 2, 2, 2,  //
                                         3, 3, 3, 3, 3, 3, 3, 3);
  const __m256i bitsel =
      _mm256_set1_epi64x(static_cast<int64_t>(0x8040201008040201ULL));
  const __m256i spread = _mm256_shuffle_epi8(v, group);
  return _mm256_cmpeq_epi8(_mm256_and_si256(spread, bitsel), bitsel);
}

// out8 (64 byte lanes as 2 x 256) += plane bits << k.
inline void AccumulatePlane(uint64_t plane, uint32_t k, __m256i* lo,
                            __m256i* hi) {
  const __m256i inc = _mm256_set1_epi8(static_cast<char>(1u << k));
  *lo = _mm256_add_epi8(
      *lo, _mm256_and_si256(SpreadMask32(static_cast<uint32_t>(plane)), inc));
  *hi = _mm256_add_epi8(
      *hi,
      _mm256_and_si256(SpreadMask32(static_cast<uint32_t>(plane >> 32)), inc));
}

// Expand 6 CSA planes of one block into its byte-packed counts.
inline void ExpandPlanesInto(const uint64_t plane[6], uint64_t* out8) {
  __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out8));
  __m256i hi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out8 + 4));
  for (uint32_t k = 0; k < 6; ++k) {
    if (plane[k] == 0) continue;
    AccumulatePlane(plane[k], k, &lo, &hi);
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out8), lo);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out8 + 4), hi);
}

void CountColumnsPackedAvx2(const uint64_t* const* cols, size_t m,
                            uint32_t blocks, uint64_t* packed,
                            uint64_t* planes) {
  (void)planes;  // vector CSA state lives in registers
  std::fill(packed, packed + static_cast<size_t>(blocks) * 8, 0);
  const uint32_t blk4 = blocks & ~3u;
  size_t done = 0;
  while (done < m) {
    const size_t chunk = std::min<size_t>(63, m - done);
    for (uint32_t g = 0; g < blk4; g += 4) {
      __m256i p0 = _mm256_setzero_si256(), p1 = p0, p2 = p0, p3 = p0,
              p4 = p0, p5 = p0;
      for (size_t i = 0; i < chunk; ++i) {
        __m256i carry = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(cols[done + i] + g));
        __m256i t;
        t = _mm256_and_si256(p0, carry);
        p0 = _mm256_xor_si256(p0, carry);
        carry = t;
        t = _mm256_and_si256(p1, carry);
        p1 = _mm256_xor_si256(p1, carry);
        carry = t;
        t = _mm256_and_si256(p2, carry);
        p2 = _mm256_xor_si256(p2, carry);
        carry = t;
        t = _mm256_and_si256(p3, carry);
        p3 = _mm256_xor_si256(p3, carry);
        carry = t;
        t = _mm256_and_si256(p4, carry);
        p4 = _mm256_xor_si256(p4, carry);
        carry = t;
        p5 = _mm256_xor_si256(p5, carry);
      }
      alignas(32) uint64_t pl[6][4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(pl[0]), p0);
      _mm256_store_si256(reinterpret_cast<__m256i*>(pl[1]), p1);
      _mm256_store_si256(reinterpret_cast<__m256i*>(pl[2]), p2);
      _mm256_store_si256(reinterpret_cast<__m256i*>(pl[3]), p3);
      _mm256_store_si256(reinterpret_cast<__m256i*>(pl[4]), p4);
      _mm256_store_si256(reinterpret_cast<__m256i*>(pl[5]), p5);
      for (uint32_t b = 0; b < 4; ++b) {
        const uint64_t plane[6] = {pl[0][b], pl[1][b], pl[2][b],
                                   pl[3][b], pl[4][b], pl[5][b]};
        ExpandPlanesInto(plane, packed + static_cast<size_t>(g + b) * 8);
      }
    }
    // Tail blocks: scalar CSA per block, vector expansion.
    for (uint32_t b = blk4; b < blocks; ++b) {
      uint64_t plane[6] = {0, 0, 0, 0, 0, 0};
      for (size_t i = 0; i < chunk; ++i) {
        uint64_t carry = cols[done + i][b];
        for (uint32_t k = 0; carry != 0 && k < 6; ++k) {
          const uint64_t t = plane[k] & carry;
          plane[k] ^= carry;
          carry = t;
        }
      }
      ExpandPlanesInto(plane, packed + static_cast<size_t>(b) * 8);
    }
    done += chunk;
  }
}

// wide[j] += byte j of the packed counts, one block (64 lanes).
inline void WidenAddBytes(const uint64_t* out8, int32_t* wide) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(out8);
  for (uint32_t g = 0; g < 8; ++g) {
    const __m256i b = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(bytes + 8 * g)));
    __m256i acc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wide + 8 * g));
    acc = _mm256_add_epi32(acc, b);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(wide + 8 * g), acc);
  }
}

void CountColumnsWideAvx2(const uint64_t* const* cols, size_t m,
                          uint32_t blocks, int32_t* wide, uint64_t* packed,
                          uint64_t* planes) {
  std::fill(wide, wide + static_cast<size_t>(blocks) * 64, 0);
  size_t done = 0;
  while (done < m) {
    const size_t part = std::min<size_t>(252, m - done);
    CountColumnsPackedAvx2(cols + done, part, blocks, packed, planes);
    for (uint32_t blk = 0; blk < blocks; ++blk) {
      WidenAddBytes(packed + static_cast<size_t>(blk) * 8,
                    wide + static_cast<size_t>(blk) * 64);
    }
    done += part;
  }
}

// Row-major gather counting: 4 interleaved CSA streams (vector lanes),
// exact counts merge in the byte expansion. A trailing group of < 4 words
// folds in through a scalar CSA into the same byte accumulators.
void CountGatherPackedAvx2(const uint64_t* row, const uint64_t* ids, size_t m,
                           uint64_t out8[8]) {
  __m256i lo = _mm256_setzero_si256();
  __m256i hi = _mm256_setzero_si256();
  size_t done = 0;
  while (done < m) {
    // 4 lanes x <= 63 rounds per pass keeps every lane's planes < 64.
    const size_t left = m - done;
    const size_t rounds = std::min<size_t>(63, left / 4);
    if (rounds == 0) break;
    __m256i p0 = _mm256_setzero_si256(), p1 = p0, p2 = p0, p3 = p0, p4 = p0,
            p5 = p0;
    for (size_t i = 0; i < rounds; ++i) {
      const size_t base = done + i * 4;
      __m256i carry =
          _mm256_setr_epi64x(static_cast<int64_t>(row[ids[base]]),
                             static_cast<int64_t>(row[ids[base + 1]]),
                             static_cast<int64_t>(row[ids[base + 2]]),
                             static_cast<int64_t>(row[ids[base + 3]]));
      __m256i t;
      t = _mm256_and_si256(p0, carry);
      p0 = _mm256_xor_si256(p0, carry);
      carry = t;
      t = _mm256_and_si256(p1, carry);
      p1 = _mm256_xor_si256(p1, carry);
      carry = t;
      t = _mm256_and_si256(p2, carry);
      p2 = _mm256_xor_si256(p2, carry);
      carry = t;
      t = _mm256_and_si256(p3, carry);
      p3 = _mm256_xor_si256(p3, carry);
      carry = t;
      t = _mm256_and_si256(p4, carry);
      p4 = _mm256_xor_si256(p4, carry);
      carry = t;
      p5 = _mm256_xor_si256(p5, carry);
    }
    alignas(32) uint64_t pl[6][4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(pl[0]), p0);
    _mm256_store_si256(reinterpret_cast<__m256i*>(pl[1]), p1);
    _mm256_store_si256(reinterpret_cast<__m256i*>(pl[2]), p2);
    _mm256_store_si256(reinterpret_cast<__m256i*>(pl[3]), p3);
    _mm256_store_si256(reinterpret_cast<__m256i*>(pl[4]), p4);
    _mm256_store_si256(reinterpret_cast<__m256i*>(pl[5]), p5);
    for (uint32_t lane = 0; lane < 4; ++lane) {
      for (uint32_t k = 0; k < 6; ++k) {
        if (pl[k][lane] == 0) continue;
        AccumulatePlane(pl[k][lane], k, &lo, &hi);
      }
    }
    done += rounds * 4;
  }
  // Remainder (< 4 words, or the sub-63-round leftovers).
  while (done < m) {
    const size_t chunk = std::min<size_t>(63, m - done);
    uint64_t plane[6] = {0, 0, 0, 0, 0, 0};
    for (size_t i = 0; i < chunk; ++i) {
      uint64_t carry = row[ids[done + i]];
      for (uint32_t k = 0; carry != 0 && k < 6; ++k) {
        const uint64_t t = plane[k] & carry;
        plane[k] ^= carry;
        carry = t;
      }
    }
    for (uint32_t k = 0; k < 6; ++k) {
      if (plane[k] == 0) continue;
      AccumulatePlane(plane[k], k, &lo, &hi);
    }
    done += chunk;
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out8), lo);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out8 + 4), hi);
}

void CountGatherWideAvx2(const uint64_t* row, const uint64_t* ids, size_t m,
                         int32_t out[64]) {
  std::memset(out, 0, 64 * sizeof(int32_t));
  uint64_t packed[8];
  size_t done = 0;
  while (done < m) {
    const size_t part = std::min<size_t>(252, m - done);
    CountGatherPackedAvx2(row, ids + done, part, packed);
    WidenAddBytes(packed, out);
    done += part;
  }
}

void LanesFromPackedAvx2(const uint64_t packed8[8], int32_t m,
                         int32_t out[64]) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(packed8);
  const __m256i vm = _mm256_set1_epi32(m);
  for (uint32_t g = 0; g < 8; ++g) {
    __m256i x = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(bytes + 8 * g)));
    x = _mm256_sub_epi32(vm, _mm256_add_epi32(x, x));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8 * g), x);
  }
}

void LanesFromWideAvx2(const int32_t wide[64], int32_t m, int32_t out[64]) {
  const __m256i vm = _mm256_set1_epi32(m);
  for (uint32_t g = 0; g < 8; ++g) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wide + 8 * g));
    x = _mm256_sub_epi32(vm, _mm256_add_epi32(x, x));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8 * g), x);
  }
}

void AddLanesAvx2(const int32_t a[64], const int32_t b[64], int32_t out[64]) {
  for (uint32_t g = 0; g < 8; ++g) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 8 * g));
    const __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 8 * g));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8 * g),
                        _mm256_add_epi32(x, y));
  }
}

void SignsFromMaskAvx2(uint64_t mask, int32_t out[64]) {
  // out[j] = 1 - 2 * bit_j, in-register: isolate each lane's bit with a
  // per-lane selector, compare-equal to -1 where set, then 1 + 2 * hit.
  const __m256i ones = _mm256_set1_epi32(1);
  const __m256i bitsel = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  for (uint32_t g = 0; g < 8; ++g) {
    const __m256i v =
        _mm256_set1_epi32(static_cast<int>((mask >> (8 * g)) & 0xFF));
    const __m256i hit =
        _mm256_cmpeq_epi32(_mm256_and_si256(v, bitsel), bitsel);
    const __m256i x = _mm256_add_epi32(ones, _mm256_slli_epi32(hit, 1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8 * g), x);
  }
}

// ---------------------------------------------------------------------------
// Streaming counter apply (tensor shapes). Letter values are int32; the
// 2^dims per-lane partial products are exact int64, so evaluation order
// is free and vpmuldq (32x32 -> 64 signed) covers the 2-d product.
// ---------------------------------------------------------------------------

void TensorApply1Avx2(const int32_t* const (*lv)[2], uint32_t lanes,
                      int64_t sign, int64_t* rows) {
  const int32_t* a0 = lv[0][0];
  const int32_t* a1 = lv[0][1];
  const bool neg = sign < 0;
  uint32_t j = 0;
  for (; j + 4 <= lanes; j += 4) {
    const __m128i v0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a0 + j));
    const __m128i v1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a1 + j));
    // Interleave into word order: [a0[j], a1[j], a0[j+1], a1[j+1], ...].
    const __m256i p0 = _mm256_cvtepi32_epi64(_mm_unpacklo_epi32(v0, v1));
    const __m256i p1 = _mm256_cvtepi32_epi64(_mm_unpackhi_epi32(v0, v1));
    int64_t* r = rows + static_cast<size_t>(j) * 2;
    __m256i r0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r));
    __m256i r1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r + 4));
    r0 = neg ? _mm256_sub_epi64(r0, p0) : _mm256_add_epi64(r0, p0);
    r1 = neg ? _mm256_sub_epi64(r1, p1) : _mm256_add_epi64(r1, p1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(r), r0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(r + 4), r1);
  }
  for (; j < lanes; ++j) {
    int64_t* r = rows + static_cast<size_t>(j) * 2;
    r[0] += sign * a0[j];
    r[1] += sign * a1[j];
  }
}

void TensorApply2Avx2(const int32_t* const (*lv)[2], uint32_t lanes,
                      int64_t sign, int64_t* rows) {
  const int32_t* a0 = lv[0][0];
  const int32_t* a1 = lv[0][1];
  const int32_t* b0 = lv[1][0];
  const int32_t* b1 = lv[1][1];
  const bool neg = sign < 0;
  // Word w of lane j multiplies lv[0][w & 1] by lv[1][(w >> 1) & 1].
  // vpmuldq only reads the LOW dword of each i64 slot, so a vpermd per
  // operand positions the letter values (high dwords are don't-care);
  // sources hold 4 lanes of each side: za = [a0[j..j+3] | a1[j..j+3]].
  __m256i x_idx[4], y_idx[4];
  for (int t = 0; t < 4; ++t) {
    x_idx[t] = _mm256_setr_epi32(t, t, 4 + t, 4 + t, t, t, 4 + t, 4 + t);
    y_idx[t] = _mm256_setr_epi32(t, t, t, t, 4 + t, 4 + t, 4 + t, 4 + t);
  }
  uint32_t j = 0;
  for (; j + 4 <= lanes; j += 4) {
    const __m256i za = _mm256_setr_m128i(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a0 + j)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a1 + j)));
    const __m256i zb = _mm256_setr_m128i(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b0 + j)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b1 + j)));
    for (uint32_t t = 0; t < 4; ++t) {
      const __m256i x = _mm256_permutevar8x32_epi32(za, x_idx[t]);
      const __m256i y = _mm256_permutevar8x32_epi32(zb, y_idx[t]);
      const __m256i p = _mm256_mul_epi32(x, y);
      int64_t* r = rows + (static_cast<size_t>(j) + t) * 4;
      __m256i acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r));
      acc = neg ? _mm256_sub_epi64(acc, p) : _mm256_add_epi64(acc, p);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(r), acc);
    }
  }
  for (; j < lanes; ++j) {
    const int64_t a[2] = {a0[j], a1[j]};
    const int64_t b[2] = {b0[j], b1[j]};
    int64_t* r = rows + static_cast<size_t>(j) * 4;
    for (uint32_t w = 0; w < 4; ++w) {
      r[w] += sign * a[w & 1] * b[(w >> 1) & 1];
    }
  }
}

void TensorApplyAvx2(const int32_t* const (*lv)[2], uint32_t dims,
                     uint32_t lanes, int64_t sign, int64_t* rows) {
  switch (dims) {
    case 1:
      TensorApply1Avx2(lv, lanes, sign, rows);
      return;
    case 2:
      TensorApply2Avx2(lv, lanes, sign, rows);
      return;
    default:
      // 3-d/4-d tensor shapes are rare in serving: delegate to the ONE
      // portable ladder in kernels.cc (baseline codegen, bit-identical
      // by construction — no duplicated bit-identity-critical code).
      TensorApplyPortable(lv, dims, lanes, sign, rows);
      return;
  }
}

// ---------------------------------------------------------------------------
// Estimator z-loops: 4 instances per vector, w-loop kept serial so each
// instance's FP accumulation order matches scalar exactly.
// ---------------------------------------------------------------------------

void RangeZAvx2(const int64_t* counters, uint32_t instances, uint32_t dims,
                const int32_t* factors, double* z) {
  const uint32_t num_words = uint32_t{1} << dims;
  uint32_t inst = 0;
  for (; inst + 4 <= instances; inst += 4) {
    __m256d q[4][2];
    for (uint32_t d = 0; d < dims; ++d) {
      for (uint32_t which = 0; which < 2; ++which) {
        q[d][which] = _mm256_cvtepi32_pd(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(
                factors + (static_cast<size_t>(d) * 2 + which) * instances +
                inst)));
      }
    }
    const int64_t* base = counters + static_cast<size_t>(inst) * num_words;
    __m256d acc = _mm256_setzero_pd();
    for (uint32_t w = 0; w < num_words; ++w) {
      __m256d prod = _mm256_setr_pd(
          static_cast<double>(base[w]),
          static_cast<double>(base[w + num_words]),
          static_cast<double>(base[w + 2 * static_cast<size_t>(num_words)]),
          static_cast<double>(base[w + 3 * static_cast<size_t>(num_words)]));
      for (uint32_t d = 0; d < dims; ++d) {
        prod = _mm256_mul_pd(prod, q[d][((w >> d) & 1) ? 0 : 1]);
      }
      acc = _mm256_add_pd(acc, prod);
    }
    _mm256_storeu_pd(z + inst, acc);
  }
  for (; inst < instances; ++inst) {
    double q_factor[4][2];
    for (uint32_t d = 0; d < dims; ++d) {
      q_factor[d][0] =
          factors[(static_cast<size_t>(d) * 2 + 0) * instances + inst];
      q_factor[d][1] =
          factors[(static_cast<size_t>(d) * 2 + 1) * instances + inst];
    }
    const int64_t* row = counters + static_cast<size_t>(inst) * num_words;
    double acc = 0.0;
    for (uint32_t w = 0; w < num_words; ++w) {
      double prod = static_cast<double>(row[w]);
      for (uint32_t d = 0; d < dims; ++d) {
        prod *= q_factor[d][((w >> d) & 1) ? 0 : 1];
      }
      acc += prod;
    }
    z[inst] = acc;
  }
}

void JoinZAvx2(const int64_t* r, const int64_t* s, uint32_t instances,
               uint32_t dims, double* z) {
  const uint32_t num_words = uint32_t{1} << dims;
  const uint32_t cmask = num_words - 1;
  const double scale = 1.0 / static_cast<double>(uint64_t{1} << dims);
  const __m256d vscale = _mm256_set1_pd(scale);
  uint32_t inst = 0;
  for (; inst + 4 <= instances; inst += 4) {
    const int64_t* rb = r + static_cast<size_t>(inst) * num_words;
    const int64_t* sb = s + static_cast<size_t>(inst) * num_words;
    __m256d acc = _mm256_setzero_pd();
    for (uint32_t w = 0; w < num_words; ++w) {
      const uint32_t wc = w ^ cmask;
      const __m256d rv = _mm256_setr_pd(
          static_cast<double>(rb[w]), static_cast<double>(rb[w + num_words]),
          static_cast<double>(rb[w + 2 * static_cast<size_t>(num_words)]),
          static_cast<double>(rb[w + 3 * static_cast<size_t>(num_words)]));
      const __m256d sv = _mm256_setr_pd(
          static_cast<double>(sb[wc]),
          static_cast<double>(sb[wc + num_words]),
          static_cast<double>(sb[wc + 2 * static_cast<size_t>(num_words)]),
          static_cast<double>(sb[wc + 3 * static_cast<size_t>(num_words)]));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(rv, sv));
    }
    _mm256_storeu_pd(z + inst, _mm256_mul_pd(acc, vscale));
  }
  for (; inst < instances; ++inst) {
    const int64_t* rr = r + static_cast<size_t>(inst) * num_words;
    const int64_t* sr = s + static_cast<size_t>(inst) * num_words;
    double acc = 0.0;
    for (uint32_t w = 0; w < num_words; ++w) {
      acc += static_cast<double>(rr[w]) * static_cast<double>(sr[w ^ cmask]);
    }
    z[inst] = acc * scale;
  }
}

void SelfJoinZAvx2(const int64_t* counters, uint32_t instances,
                   uint32_t num_words, uint32_t word, double* z) {
  uint32_t inst = 0;
  for (; inst + 4 <= instances; inst += 4) {
    const int64_t* base =
        counters + static_cast<size_t>(inst) * num_words + word;
    const __m256d x = _mm256_setr_pd(
        static_cast<double>(base[0]), static_cast<double>(base[num_words]),
        static_cast<double>(base[2 * static_cast<size_t>(num_words)]),
        static_cast<double>(base[3 * static_cast<size_t>(num_words)]));
    _mm256_storeu_pd(z + inst, _mm256_mul_pd(x, x));
  }
  for (; inst < instances; ++inst) {
    const double x = static_cast<double>(
        counters[static_cast<size_t>(inst) * num_words + word]);
    z[inst] = x * x;
  }
}

constexpr KernelOps kAvx2Ops = {
    "avx2",
    &CountColumnsPackedAvx2,
    &CountColumnsWideAvx2,
    &CountGatherPackedAvx2,
    &CountGatherWideAvx2,
    &LanesFromPackedAvx2,
    &LanesFromWideAvx2,
    &AddLanesAvx2,
    &SignsFromMaskAvx2,
    &TensorApplyAvx2,
    &RangeZAvx2,
    &JoinZAvx2,
    &SelfJoinZAvx2,
};

}  // namespace

const KernelOps* GetAvx2KernelOps() { return &kAvx2Ops; }

}  // namespace kernels
}  // namespace spatialsketch

#else  // !SPATIALSKETCH_COMPILE_AVX2

namespace spatialsketch {
namespace kernels {

const KernelOps* GetAvx2KernelOps() { return nullptr; }

}  // namespace kernels
}  // namespace spatialsketch

#endif  // SPATIALSKETCH_COMPILE_AVX2
