// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Four-wise independent {-1,+1} families via the BCH construction
// (Alon-Babai-Itai; used by Alon-Matias-Szegedy sketches, Section 2.2 of
// the paper): xi_i = (-1)^{b XOR <s0, i> XOR <s1, i^3>}, with i^3 in
// GF(2^64). For any four distinct indices the vectors (1, i, i^3) are
// linearly independent over GF(2), which yields exact four-wise
// independence; the test suite verifies this exhaustively on a small field.

#ifndef SPATIALSKETCH_XI_BCH_FAMILY_H_
#define SPATIALSKETCH_XI_BCH_FAMILY_H_

#include <cstdint>

#include "src/common/bits.h"
#include "src/gf2/gf2_64.h"
#include "src/xi/seed.h"

namespace spatialsketch {

/// One xi-family; cheap value type (three words of state).
class BchXiFamily {
 public:
  explicit BchXiFamily(XiSeed seed) : seed_(seed) {}

  /// xi_index in {-1, +1}. Computes index^3 on the fly.
  int Sign(uint64_t index) const {
    return SignWithCube(index, gf2::Cube(index));
  }

  /// xi_index when the caller has precomputed cube = index^3 in GF(2^64).
  /// This is the form used by bulk loading: the cube depends only on the
  /// index, so it is shared across every instance/seed.
  int SignWithCube(uint64_t index, uint64_t cube) const {
    const uint32_t bit =
        Parity64((seed_.s0 & index) ^ (seed_.s1 & cube)) ^ seed_.b;
    return 1 - 2 * static_cast<int>(bit);
  }

  /// The raw GF(2) bit (0 => +1, 1 => -1); used by the packed sign tables.
  uint32_t BitWithCube(uint64_t index, uint64_t cube) const {
    return Parity64((seed_.s0 & index) ^ (seed_.s1 & cube)) ^ seed_.b;
  }

  const XiSeed& seed() const { return seed_; }

 private:
  XiSeed seed_;
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_XI_BCH_FAMILY_H_
