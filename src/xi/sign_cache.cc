#include "src/xi/sign_cache.h"

#include "src/common/macros.h"
#include "src/gf2/gf2_64.h"
#include "src/xi/bch_family.h"

namespace spatialsketch {

PackedSignCache::PackedSignCache(
    std::vector<std::vector<XiSeed>> seeds_per_dim,
    std::vector<uint64_t> num_ids_per_dim) {
  SKETCH_CHECK(!seeds_per_dim.empty());
  SKETCH_CHECK(seeds_per_dim.size() == num_ids_per_dim.size());
  num_instances_ = static_cast<uint32_t>(seeds_per_dim[0].size());
  SKETCH_CHECK(num_instances_ > 0);
  num_blocks_ = (num_instances_ + 63) / 64;
  dims_.reserve(seeds_per_dim.size());
  for (size_t d = 0; d < seeds_per_dim.size(); ++d) {
    SKETCH_CHECK(seeds_per_dim[d].size() == num_instances_);
    SKETCH_CHECK(num_ids_per_dim[d] > 0);
    auto dc = std::make_unique<DimCache>();
    dc->seeds = std::move(seeds_per_dim[d]);
    dc->num_ids = num_ids_per_dim[d];
    dims_.push_back(std::move(dc));
  }
}

PackedSignCache::~PackedSignCache() {
  for (auto& dc : dims_) {
    std::atomic<uint64_t*>* slots = dc->slots.load(std::memory_order_acquire);
    if (slots != nullptr) {
      for (uint64_t id = 0; id < dc->num_ids; ++id) {
        delete[] slots[id].load(std::memory_order_relaxed);
      }
      delete[] slots;
    }
    for (uint32_t s = 0; s < kMapShards; ++s) {
      for (auto& [id, col] : dc->shard_map[s]) delete[] col;
    }
  }
}

std::atomic<uint64_t*>* PackedSignCache::Slots(DimCache& dc) const {
  std::atomic<uint64_t*>* slots = dc.slots.load(std::memory_order_acquire);
  if (slots != nullptr) return slots;
  std::lock_guard<std::mutex> lock(dc.init_mu);
  slots = dc.slots.load(std::memory_order_relaxed);
  if (slots == nullptr) {
    // Value-initialized: every slot starts null.
    slots = new std::atomic<uint64_t*>[dc.num_ids]();
    dc.slots.store(slots, std::memory_order_release);
  }
  return slots;
}

uint64_t* PackedSignCache::BuildColumn(const DimCache& dc,
                                       uint64_t id) const {
  uint64_t* col = new uint64_t[num_blocks_]();
  const uint64_t cube = gf2::Cube(id);
  for (uint32_t j = 0; j < num_instances_; ++j) {
    const BchXiFamily fam(dc.seeds[j]);
    col[j / 64] |= static_cast<uint64_t>(fam.BitWithCube(id, cube))
                   << (j % 64);
  }
  return col;
}

const uint64_t* PackedSignCache::ColumnSparse(DimCache& dc, uint32_t,
                                              uint64_t id) const {
  // Low bits shard well: the point covers of nearby coordinates differ in
  // their low id bits at every level.
  const uint32_t shard = static_cast<uint32_t>(id) & (kMapShards - 1);
  {
    std::lock_guard<std::mutex> lock(dc.shard_mu[shard]);
    auto it = dc.shard_map[shard].find(id);
    if (it != dc.shard_map[shard].end()) return it->second;
  }
  uint64_t* col = BuildColumn(dc, id);  // off-lock; racers may duplicate
  std::lock_guard<std::mutex> lock(dc.shard_mu[shard]);
  auto [it, inserted] = dc.shard_map[shard].emplace(id, col);
  if (!inserted) delete[] col;  // another thread published first
  return it->second;
}

const uint64_t* PackedSignCache::Column(uint32_t dim, uint64_t id) const {
  SKETCH_DCHECK(dim < dims_.size());
  DimCache& dc = *dims_[dim];
  SKETCH_DCHECK(id < dc.num_ids);
  if (dc.num_ids > kDenseSlotLimit) return ColumnSparse(dc, dim, id);
  std::atomic<uint64_t*>* slots = Slots(dc);
  std::atomic<uint64_t*>& slot = slots[id];
  uint64_t* col = slot.load(std::memory_order_acquire);
  if (col != nullptr) return col;
  col = BuildColumn(dc, id);
  uint64_t* expected = nullptr;
  if (!slot.compare_exchange_strong(expected, col, std::memory_order_release,
                                    std::memory_order_acquire)) {
    delete[] col;  // another thread published first; adopt its column
    return expected;
  }
  return col;
}

}  // namespace spatialsketch
