#include "src/xi/sign_cache.h"

#include "src/common/macros.h"
#include "src/gf2/gf2_64.h"
#include "src/xi/bch_family.h"

namespace spatialsketch {

namespace {
// Process-wide budget state (see SetGlobalBudget): live-read atomics so
// tests and operators can arm eviction without rebuilding schemas.
std::atomic<uint64_t> g_sign_budget{0};
std::atomic<uint64_t> g_sign_bytes{0};
}  // namespace

void PackedSignCache::SetGlobalBudget(uint64_t bytes) {
  g_sign_budget.store(bytes, std::memory_order_relaxed);
}
uint64_t PackedSignCache::GlobalBudget() {
  return g_sign_budget.load(std::memory_order_relaxed);
}
uint64_t PackedSignCache::GlobalBytes() {
  return g_sign_bytes.load(std::memory_order_relaxed);
}

PackedSignCache::PackedSignCache(
    std::vector<std::vector<XiSeed>> seeds_per_dim,
    std::vector<uint64_t> num_ids_per_dim) {
  SKETCH_CHECK(!seeds_per_dim.empty());
  SKETCH_CHECK(seeds_per_dim.size() == num_ids_per_dim.size());
  num_instances_ = static_cast<uint32_t>(seeds_per_dim[0].size());
  SKETCH_CHECK(num_instances_ > 0);
  num_blocks_ = (num_instances_ + 63) / 64;
  dims_.reserve(seeds_per_dim.size());
  for (size_t d = 0; d < seeds_per_dim.size(); ++d) {
    SKETCH_CHECK(seeds_per_dim[d].size() == num_instances_);
    SKETCH_CHECK(num_ids_per_dim[d] > 0);
    auto dc = std::make_unique<DimCache>();
    dc->seeds = std::move(seeds_per_dim[d]);
    dc->num_ids = num_ids_per_dim[d];
    dims_.push_back(std::move(dc));
  }
}

PackedSignCache::~PackedSignCache() {
  uint64_t freed = 0;
  for (auto& dc : dims_) {
    std::atomic<uint64_t*>* slots = dc->slots.load(std::memory_order_acquire);
    if (slots != nullptr) {
      for (uint64_t id = 0; id < dc->num_ids; ++id) {
        uint64_t* col = slots[id].load(std::memory_order_relaxed);
        if (col != nullptr) ++freed;
        delete[] col;
      }
      delete[] slots;
    }
    delete[] dc->refs.load(std::memory_order_relaxed);
    for (uint32_t s = 0; s < kMapShards; ++s) {
      freed += dc->shard_map[s].size();
      for (auto& [id, col] : dc->shard_map[s]) delete[] col;
    }
  }
  for (uint64_t* col : retired_) delete[] col;
  // Retired columns were already debited at retirement.
  g_sign_bytes.fetch_sub(freed * ColumnBytes(), std::memory_order_relaxed);
}

XiCacheStats PackedSignCache::stats() const {
  XiCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evicted = evicted_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  return s;
}

std::atomic<uint64_t*>* PackedSignCache::Slots(DimCache& dc) const {
  std::atomic<uint64_t*>* slots = dc.slots.load(std::memory_order_acquire);
  if (slots != nullptr) return slots;
  std::lock_guard<std::mutex> lock(dc.init_mu);
  slots = dc.slots.load(std::memory_order_relaxed);
  if (slots == nullptr) {
    // Value-initialized: every slot starts null.
    slots = new std::atomic<uint64_t*>[dc.num_ids]();
    dc.slots.store(slots, std::memory_order_release);
  }
  return slots;
}

uint64_t* PackedSignCache::BuildColumn(const DimCache& dc,
                                       uint64_t id) const {
  uint64_t* col = new uint64_t[num_blocks_]();
  const uint64_t cube = gf2::Cube(id);
  for (uint32_t j = 0; j < num_instances_; ++j) {
    const BchXiFamily fam(dc.seeds[j]);
    col[j / 64] |= static_cast<uint64_t>(fam.BitWithCube(id, cube))
                   << (j % 64);
  }
  return col;
}

void PackedSignCache::AccountPublish(DimCache& dc) const {
  bytes_.fetch_add(ColumnBytes(), std::memory_order_relaxed);
  const uint64_t budget = g_sign_budget.load(std::memory_order_relaxed);
  if (budget == 0) {
    g_sign_bytes.fetch_add(ColumnBytes(), std::memory_order_relaxed);
    return;
  }
  if (g_sign_bytes.fetch_add(ColumnBytes(), std::memory_order_relaxed) +
          ColumnBytes() <=
      budget) {
    return;
  }

  // Over budget: clock-sweep the dimension that just grew. Serialized by
  // retire_mu_ so concurrent misses don't double-sweep.
  std::lock_guard<std::mutex> lock(retire_mu_);
  uint64_t over = 0;
  {
    const uint64_t now = g_sign_bytes.load(std::memory_order_relaxed);
    if (now <= budget) return;
    over = now - budget;
  }
  uint64_t reclaimed = 0;

  if (dc.num_ids <= kDenseSlotLimit) {
    std::atomic<uint64_t*>* slots = dc.slots.load(std::memory_order_acquire);
    if (slots == nullptr) return;
    std::atomic<uint8_t>* refs = dc.refs.load(std::memory_order_acquire);
    if (refs == nullptr) {
      // First sweep of this dimension: arm the second-chance bytes.
      refs = new std::atomic<uint8_t>[dc.num_ids]();
      dc.refs.store(refs, std::memory_order_release);
    }
    // At most two laps: lap one clears ref bytes, lap two evicts.
    for (uint64_t scanned = 0;
         reclaimed < over && scanned < 2 * dc.num_ids; ++scanned) {
      const uint64_t id = dc.clock_hand;
      dc.clock_hand = (dc.clock_hand + 1) % dc.num_ids;
      uint64_t* col = slots[id].load(std::memory_order_relaxed);
      if (col == nullptr) continue;
      if (refs[id].exchange(0, std::memory_order_relaxed) != 0) {
        continue;  // second chance: recently hit
      }
      if (!slots[id].compare_exchange_strong(col, nullptr)) continue;
      retired_.push_back(col);
      reclaimed += ColumnBytes();
    }
  } else {
    // Sparse dimension: drop whole shards round-robin until under budget
    // (coarse, but a shard is 1/16 of the touched universe — the cheap
    // variant of the same clock idea).
    for (uint32_t dropped = 0; reclaimed < over && dropped < kMapShards;
         ++dropped) {
      const uint32_t s = dc.next_shard;
      dc.next_shard = (dc.next_shard + 1) % kMapShards;
      std::lock_guard<std::mutex> shard_lock(dc.shard_mu[s]);
      for (auto& [id, col] : dc.shard_map[s]) {
        retired_.push_back(col);
        reclaimed += ColumnBytes();
      }
      dc.shard_map[s].clear();
    }
  }

  if (reclaimed > 0) {
    evicted_.fetch_add(reclaimed / ColumnBytes(),
                       std::memory_order_relaxed);
    bytes_.fetch_sub(reclaimed, std::memory_order_relaxed);
    g_sign_bytes.fetch_sub(reclaimed, std::memory_order_relaxed);
    // Free now if no reader is pinned; otherwise the last unpin drains.
    if (pins_.load(std::memory_order_acquire) == 0) {
      for (uint64_t* col : retired_) delete[] col;
      retired_.clear();
    }
  }
}

void PackedSignCache::TryDrainRetired() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  if (pins_.load(std::memory_order_acquire) != 0) return;
  for (uint64_t* col : retired_) delete[] col;
  retired_.clear();
}

const uint64_t* PackedSignCache::ColumnSparse(DimCache& dc, uint32_t,
                                              uint64_t id) const {
  // Low bits shard well: the point covers of nearby coordinates differ in
  // their low id bits at every level.
  const uint32_t shard = static_cast<uint32_t>(id) & (kMapShards - 1);
  {
    std::lock_guard<std::mutex> lock(dc.shard_mu[shard]);
    auto it = dc.shard_map[shard].find(id);
    if (it != dc.shard_map[shard].end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  uint64_t* col = BuildColumn(dc, id);  // off-lock; racers may duplicate
  {
    std::lock_guard<std::mutex> lock(dc.shard_mu[shard]);
    auto [it, inserted] = dc.shard_map[shard].emplace(id, col);
    if (!inserted) {
      delete[] col;  // another thread published first
      return it->second;
    }
    col = it->second;
  }
  AccountPublish(dc);
  return col;
}

const uint64_t* PackedSignCache::Column(uint32_t dim, uint64_t id) const {
  SKETCH_DCHECK(dim < dims_.size());
  DimCache& dc = *dims_[dim];
  SKETCH_DCHECK(id < dc.num_ids);
  if (dc.num_ids > kDenseSlotLimit) return ColumnSparse(dc, dim, id);
  std::atomic<uint64_t*>* slots = Slots(dc);
  std::atomic<uint64_t*>& slot = slots[id];
  uint64_t* col = slot.load(std::memory_order_acquire);
  if (col != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    std::atomic<uint8_t>* refs = dc.refs.load(std::memory_order_acquire);
    if (refs != nullptr) refs[id].store(1, std::memory_order_relaxed);
    return col;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  col = BuildColumn(dc, id);
  uint64_t* expected = nullptr;
  if (!slot.compare_exchange_strong(expected, col, std::memory_order_release,
                                    std::memory_order_acquire)) {
    delete[] col;  // another thread published first; adopt its column
    return expected;
  }
  AccountPublish(dc);
  return col;
}

}  // namespace spatialsketch
