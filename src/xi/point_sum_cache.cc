#include "src/xi/point_sum_cache.h"

#include "src/common/macros.h"
#include "src/xi/kernels.h"

namespace spatialsketch {

namespace {
std::atomic<uint64_t> g_sum_budget{0};
std::atomic<uint64_t> g_sum_bytes{0};
}  // namespace

void PointSumCache::SetGlobalBudget(uint64_t bytes) {
  g_sum_budget.store(bytes, std::memory_order_relaxed);
}
uint64_t PointSumCache::GlobalBudget() {
  return g_sum_budget.load(std::memory_order_relaxed);
}
uint64_t PointSumCache::GlobalBytes() {
  return g_sum_bytes.load(std::memory_order_relaxed);
}

size_t PointSumCache::EntryBytes() const {
  return size_t{8} * signs_->num_blocks() * 8;
}

PointSumCache::PointSumCache(const PackedSignCache* signs,
                             std::vector<DimSpec> dims)
    : signs_(signs) {
  SKETCH_CHECK(signs_ != nullptr);
  SKETCH_CHECK(!dims.empty());
  dims_.reserve(dims.size());
  for (const DimSpec& spec : dims) {
    SKETCH_CHECK(spec.cover_levels >= 1);
    // h + 1 members at most; the byte-packed counts must never wrap.
    SKETCH_CHECK(spec.cover_levels <= 255);
    auto dc = std::make_unique<DimCache>();
    dc->spec = spec;
    dims_.push_back(std::move(dc));
  }
}

PointSumCache::~PointSumCache() {
  uint64_t freed = 0;
  for (auto& dc : dims_) {
    std::atomic<uint64_t*>* slots = dc->slots.load(std::memory_order_acquire);
    if (slots != nullptr) {
      const uint64_t coords = uint64_t{1} << dc->spec.log2_size;
      for (uint64_t c = 0; c < coords; ++c) {
        uint64_t* entry = slots[c].load(std::memory_order_relaxed);
        if (entry != nullptr) ++freed;
        delete[] entry;
      }
      delete[] slots;
    }
    delete[] dc->refs.load(std::memory_order_relaxed);
    for (uint32_t s = 0; s < kMapShards; ++s) {
      freed += dc->shard_map[s].size();
      for (auto& [coord, entry] : dc->shard_map[s]) delete[] entry;
    }
  }
  for (uint64_t* entry : retired_) delete[] entry;
  g_sum_bytes.fetch_sub(freed * EntryBytes(), std::memory_order_relaxed);
}

XiCacheStats PointSumCache::stats() const {
  XiCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evicted = evicted_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  return s;
}

std::atomic<uint64_t*>* PointSumCache::Slots(DimCache& dc) const {
  std::atomic<uint64_t*>* slots = dc.slots.load(std::memory_order_acquire);
  if (slots != nullptr) return slots;
  std::lock_guard<std::mutex> lock(dc.init_mu);
  slots = dc.slots.load(std::memory_order_relaxed);
  if (slots == nullptr) {
    // Value-initialized: every slot starts null.
    slots = new std::atomic<uint64_t*>[uint64_t{1} << dc.spec.log2_size]();
    dc.slots.store(slots, std::memory_order_release);
  }
  return slots;
}

uint64_t* PointSumCache::BuildEntry(const DimCache& dc, uint32_t dim,
                                    uint64_t coord) const {
  // The point cover of `coord`: the leaf id and its cover_levels - 1
  // ancestors (heap ids halve per level). Resolving the columns here warms
  // the sign cache too, so queries over the same coordinates stay hot.
  // The pin keeps those columns alive across the reduction if the sign
  // cache is evicting under a budget.
  PackedSignCache::Pin sign_pin(signs_);
  const uint32_t m = dc.spec.cover_levels;
  const uint64_t* cols[256];
  uint64_t id = (uint64_t{1} << dc.spec.log2_size) + coord;
  for (uint32_t level = 0; level < m; ++level) {
    cols[level] = signs_->Column(dim, id);
    id >>= 1;
  }
  const uint32_t blocks = signs_->num_blocks();
  uint64_t* packed = new uint64_t[static_cast<size_t>(blocks) * 8];
  std::vector<uint64_t> planes(static_cast<size_t>(blocks) * 6);
  // Counts are exact popcounts, so any kernel variant builds the same
  // entry the streaming path would have reduced on the fly.
  kernels::Ops().count_columns_packed(cols, m, blocks, packed,
                                      planes.data());
  return packed;
}

void PointSumCache::AccountPublish(DimCache& dc) const {
  bytes_.fetch_add(EntryBytes(), std::memory_order_relaxed);
  const uint64_t budget = g_sum_budget.load(std::memory_order_relaxed);
  if (budget == 0) {
    g_sum_bytes.fetch_add(EntryBytes(), std::memory_order_relaxed);
    return;
  }
  if (g_sum_bytes.fetch_add(EntryBytes(), std::memory_order_relaxed) +
          EntryBytes() <=
      budget) {
    return;
  }

  std::lock_guard<std::mutex> lock(retire_mu_);
  uint64_t over = 0;
  {
    const uint64_t now = g_sum_bytes.load(std::memory_order_relaxed);
    if (now <= budget) return;
    over = now - budget;
  }
  uint64_t reclaimed = 0;
  const uint64_t coords = uint64_t{1} << dc.spec.log2_size;

  if (coords <= kDenseSlotLimit) {
    std::atomic<uint64_t*>* slots = dc.slots.load(std::memory_order_acquire);
    if (slots == nullptr) return;
    std::atomic<uint8_t>* refs = dc.refs.load(std::memory_order_acquire);
    if (refs == nullptr) {
      refs = new std::atomic<uint8_t>[coords]();
      dc.refs.store(refs, std::memory_order_release);
    }
    for (uint64_t scanned = 0; reclaimed < over && scanned < 2 * coords;
         ++scanned) {
      const uint64_t c = dc.clock_hand;
      dc.clock_hand = (dc.clock_hand + 1) % coords;
      uint64_t* entry = slots[c].load(std::memory_order_relaxed);
      if (entry == nullptr) continue;
      if (refs[c].exchange(0, std::memory_order_relaxed) != 0) continue;
      if (!slots[c].compare_exchange_strong(entry, nullptr)) continue;
      retired_.push_back(entry);
      reclaimed += EntryBytes();
    }
  } else {
    for (uint32_t dropped = 0; reclaimed < over && dropped < kMapShards;
         ++dropped) {
      const uint32_t s = dc.next_shard;
      dc.next_shard = (dc.next_shard + 1) % kMapShards;
      std::lock_guard<std::mutex> shard_lock(dc.shard_mu[s]);
      for (auto& [coord, entry] : dc.shard_map[s]) {
        retired_.push_back(entry);
        reclaimed += EntryBytes();
      }
      dc.shard_map[s].clear();
    }
  }

  if (reclaimed > 0) {
    evicted_.fetch_add(reclaimed / EntryBytes(), std::memory_order_relaxed);
    bytes_.fetch_sub(reclaimed, std::memory_order_relaxed);
    g_sum_bytes.fetch_sub(reclaimed, std::memory_order_relaxed);
    if (pins_.load(std::memory_order_acquire) == 0) {
      for (uint64_t* entry : retired_) delete[] entry;
      retired_.clear();
    }
  }
}

void PointSumCache::TryDrainRetired() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  if (pins_.load(std::memory_order_acquire) != 0) return;
  for (uint64_t* entry : retired_) delete[] entry;
  retired_.clear();
}

const uint64_t* PointSumCache::CountsSparse(DimCache& dc, uint32_t dim,
                                            uint64_t coord) const {
  const uint32_t shard = static_cast<uint32_t>(coord) & (kMapShards - 1);
  {
    std::lock_guard<std::mutex> lock(dc.shard_mu[shard]);
    auto it = dc.shard_map[shard].find(coord);
    if (it != dc.shard_map[shard].end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  uint64_t* entry = BuildEntry(dc, dim, coord);  // off-lock; racers may dup
  {
    std::lock_guard<std::mutex> lock(dc.shard_mu[shard]);
    auto [it, inserted] = dc.shard_map[shard].emplace(coord, entry);
    if (!inserted) {
      delete[] entry;  // another thread published first
      return it->second;
    }
    entry = it->second;
  }
  AccountPublish(dc);
  return entry;
}

const uint64_t* PointSumCache::Counts(uint32_t dim, uint64_t coord) const {
  SKETCH_DCHECK(dim < dims_.size());
  DimCache& dc = *dims_[dim];
  SKETCH_DCHECK(coord < (uint64_t{1} << dc.spec.log2_size));
  if ((uint64_t{1} << dc.spec.log2_size) > kDenseSlotLimit) {
    return CountsSparse(dc, dim, coord);
  }
  std::atomic<uint64_t*>* slots = Slots(dc);
  std::atomic<uint64_t*>& slot = slots[coord];
  uint64_t* entry = slot.load(std::memory_order_acquire);
  if (entry != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    std::atomic<uint8_t>* refs = dc.refs.load(std::memory_order_acquire);
    if (refs != nullptr) refs[coord].store(1, std::memory_order_relaxed);
    return entry;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  entry = BuildEntry(dc, dim, coord);
  uint64_t* expected = nullptr;
  if (!slot.compare_exchange_strong(expected, entry,
                                    std::memory_order_release,
                                    std::memory_order_acquire)) {
    delete[] entry;  // another thread published first; adopt its entry
    return expected;
  }
  AccountPublish(dc);
  return entry;
}

}  // namespace spatialsketch
