#include "src/xi/point_sum_cache.h"

#include "src/common/macros.h"
#include "src/xi/kernels.h"

namespace spatialsketch {

PointSumCache::PointSumCache(const PackedSignCache* signs,
                             std::vector<DimSpec> dims)
    : signs_(signs) {
  SKETCH_CHECK(signs_ != nullptr);
  SKETCH_CHECK(!dims.empty());
  dims_.reserve(dims.size());
  for (const DimSpec& spec : dims) {
    SKETCH_CHECK(spec.cover_levels >= 1);
    // h + 1 members at most; the byte-packed counts must never wrap.
    SKETCH_CHECK(spec.cover_levels <= 255);
    auto dc = std::make_unique<DimCache>();
    dc->spec = spec;
    dims_.push_back(std::move(dc));
  }
}

PointSumCache::~PointSumCache() {
  for (auto& dc : dims_) {
    std::atomic<uint64_t*>* slots = dc->slots.load(std::memory_order_acquire);
    if (slots != nullptr) {
      const uint64_t coords = uint64_t{1} << dc->spec.log2_size;
      for (uint64_t c = 0; c < coords; ++c) {
        delete[] slots[c].load(std::memory_order_relaxed);
      }
      delete[] slots;
    }
    for (uint32_t s = 0; s < kMapShards; ++s) {
      for (auto& [coord, entry] : dc->shard_map[s]) delete[] entry;
    }
  }
}

std::atomic<uint64_t*>* PointSumCache::Slots(DimCache& dc) const {
  std::atomic<uint64_t*>* slots = dc.slots.load(std::memory_order_acquire);
  if (slots != nullptr) return slots;
  std::lock_guard<std::mutex> lock(dc.init_mu);
  slots = dc.slots.load(std::memory_order_relaxed);
  if (slots == nullptr) {
    // Value-initialized: every slot starts null.
    slots = new std::atomic<uint64_t*>[uint64_t{1} << dc.spec.log2_size]();
    dc.slots.store(slots, std::memory_order_release);
  }
  return slots;
}

uint64_t* PointSumCache::BuildEntry(const DimCache& dc, uint32_t dim,
                                    uint64_t coord) const {
  // The point cover of `coord`: the leaf id and its cover_levels - 1
  // ancestors (heap ids halve per level). Resolving the columns here warms
  // the sign cache too, so queries over the same coordinates stay hot.
  const uint32_t m = dc.spec.cover_levels;
  const uint64_t* cols[256];
  uint64_t id = (uint64_t{1} << dc.spec.log2_size) + coord;
  for (uint32_t level = 0; level < m; ++level) {
    cols[level] = signs_->Column(dim, id);
    id >>= 1;
  }
  const uint32_t blocks = signs_->num_blocks();
  uint64_t* packed = new uint64_t[static_cast<size_t>(blocks) * 8];
  std::vector<uint64_t> planes(static_cast<size_t>(blocks) * 6);
  // Counts are exact popcounts, so any kernel variant builds the same
  // entry the streaming path would have reduced on the fly.
  kernels::Ops().count_columns_packed(cols, m, blocks, packed,
                                      planes.data());
  return packed;
}

const uint64_t* PointSumCache::CountsSparse(DimCache& dc, uint32_t dim,
                                            uint64_t coord) const {
  const uint32_t shard = static_cast<uint32_t>(coord) & (kMapShards - 1);
  {
    std::lock_guard<std::mutex> lock(dc.shard_mu[shard]);
    auto it = dc.shard_map[shard].find(coord);
    if (it != dc.shard_map[shard].end()) return it->second;
  }
  uint64_t* entry = BuildEntry(dc, dim, coord);  // off-lock; racers may dup
  std::lock_guard<std::mutex> lock(dc.shard_mu[shard]);
  auto [it, inserted] = dc.shard_map[shard].emplace(coord, entry);
  if (!inserted) delete[] entry;  // another thread published first
  return it->second;
}

const uint64_t* PointSumCache::Counts(uint32_t dim, uint64_t coord) const {
  SKETCH_DCHECK(dim < dims_.size());
  DimCache& dc = *dims_[dim];
  SKETCH_DCHECK(coord < (uint64_t{1} << dc.spec.log2_size));
  if ((uint64_t{1} << dc.spec.log2_size) > kDenseSlotLimit) {
    return CountsSparse(dc, dim, coord);
  }
  std::atomic<uint64_t*>* slots = Slots(dc);
  std::atomic<uint64_t*>& slot = slots[coord];
  uint64_t* entry = slot.load(std::memory_order_acquire);
  if (entry != nullptr) return entry;
  entry = BuildEntry(dc, dim, coord);
  uint64_t* expected = nullptr;
  if (!slot.compare_exchange_strong(expected, entry,
                                    std::memory_order_release,
                                    std::memory_order_acquire)) {
    delete[] entry;  // another thread published first; adopt its entry
    return expected;
  }
  return entry;
}

}  // namespace spatialsketch
