// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Bit-sliced per-lane counting over packed sign words.
//
// A packed sign word carries one bit per boosting-instance lane (bit j =
// lane j; 1 means xi = -1). Summing m xi values per lane is then a
// per-lane popcount over m words: a carry-save adder network reduces 63
// words to 6 bit planes with 5 word ops per input word, and the planes
// are expanded into 8-bit per-lane counts with a byte-spread table. Both
// the bulk loader and the streaming/batched hot paths count this way; the
// word source differs (row-major sign tables vs. per-id cached columns),
// so the counters here are templated over a word accessor.
//
// These inline definitions are the portable reference implementation.
// The HOT paths no longer call them directly: they go through the
// src/xi/kernels.h dispatch table, whose scalar variant wraps these
// functions in its own TU (where the optimizer specializes them) and
// whose AVX2/AVX-512 variants replace the spread-table expansion with
// in-register byte spreads — all gated bit-identical to this code by
// tests/kernel_dispatch_test.cc.

#ifndef SPATIALSKETCH_XI_BITSLICE_H_
#define SPATIALSKETCH_XI_BITSLICE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace spatialsketch {
namespace bitslice {

// Spread the 8 bits of a byte into the 8 byte lanes of a word: bit b of
// `bits` becomes 0x01 in byte b. (Table-driven: the multiply-shift idioms
// either reverse the bit order or need per-byte normalization; lane order
// must be preserved exactly, since instance lanes pair sketch counters
// with per-instance seeds elsewhere.)
struct SpreadTable {
  uint64_t v[256];
  constexpr SpreadTable() : v() {
    for (int b = 0; b < 256; ++b) {
      uint64_t out = 0;
      for (int m = 0; m < 8; ++m) {
        if ((b >> m) & 1) out |= uint64_t{1} << (8 * m);
      }
      v[b] = out;
    }
  }
};
inline constexpr SpreadTable kSpreadTable;

inline uint64_t SpreadBitsToBytes(uint64_t bits) {
  return kSpreadTable.v[bits & 0xFF];
}

/// Per-lane counts of set bits across m <= 255 packed words, bit-sliced
/// then packed into 64 byte lanes: byte j of out8[j/8] counts the words
/// whose bit j is set. `get(i)` returns word i.
template <typename GetWord>
inline void CountOnesPacked(GetWord&& get, size_t m, uint64_t out8[8]) {
  for (int g = 0; g < 8; ++g) out8[g] = 0;
  size_t done = 0;
  while (done < m) {
    const size_t chunk = std::min<size_t>(63, m - done);
    uint64_t planes[6] = {0, 0, 0, 0, 0, 0};
    for (size_t i = 0; i < chunk; ++i) {
      uint64_t carry = get(done + i);
      for (uint32_t k = 0; carry != 0 && k < 6; ++k) {
        const uint64_t t = planes[k] & carry;
        planes[k] ^= carry;
        carry = t;
      }
    }
    for (uint32_t k = 0; k < 6; ++k) {
      if (planes[k] == 0) continue;
      const uint64_t plane = planes[k];
      for (int g = 0; g < 8; ++g) {
        out8[g] += SpreadBitsToBytes((plane >> (8 * g)) & 0xFF) << k;
      }
    }
    done += chunk;
  }
}

/// Per-lane set-bit counts for arbitrary m into 32-bit counters.
template <typename GetWord>
inline void CountOnesWide(GetWord&& get, size_t m, int32_t out[64]) {
  std::fill(out, out + 64, 0);
  uint64_t packed[8];
  size_t done = 0;
  while (done < m) {
    const size_t part = std::min<size_t>(252, m - done);
    CountOnesPacked([&](size_t i) { return get(done + i); }, part, packed);
    for (uint32_t j = 0; j < 64; ++j) {
      out[j] +=
          static_cast<int32_t>((packed[j >> 3] >> ((j & 7) * 8)) & 0xFF);
    }
    done += part;
  }
}

/// Byte lane j of a packed count array (the inverse of the packing above).
inline int32_t PackedLane(const uint64_t packed[8], uint32_t j) {
  return static_cast<int32_t>((packed[j >> 3] >> ((j & 7) * 8)) & 0xFF);
}

/// Per-lane minus counts of m <= 255 cached sign columns across EVERY
/// instance block in one pass: ids run in the outer loop so each column's
/// few cache lines are read sequentially exactly once, and the carry-save
/// planes of all blocks advance together. packed[blk * 8 + q] receives the
/// byte-packed counts (total <= m <= 255, so bytes cannot wrap); planes is
/// blocks * 6 words of caller scratch. Shared by the streaming update path
/// and the point-cover sum cache, which must produce bit-identical counts.
inline void CountColumnsPackedAllBlocks(const uint64_t* const* cols, size_t m,
                                        uint32_t blocks, uint64_t* packed,
                                        uint64_t* planes) {
  std::fill(packed, packed + static_cast<size_t>(blocks) * 8, 0);
  size_t done = 0;
  while (done < m) {
    const size_t chunk = std::min<size_t>(63, m - done);
    std::fill(planes, planes + static_cast<size_t>(blocks) * 6, 0);
    for (size_t i = 0; i < chunk; ++i) {
      const uint64_t* col = cols[done + i];
      for (uint32_t blk = 0; blk < blocks; ++blk) {
        uint64_t carry = col[blk];
        uint64_t* p = planes + static_cast<size_t>(blk) * 6;
        for (uint32_t k = 0; carry != 0 && k < 6; ++k) {
          const uint64_t t = p[k] & carry;
          p[k] ^= carry;
          carry = t;
        }
      }
    }
    for (uint32_t blk = 0; blk < blocks; ++blk) {
      uint64_t* out8 = packed + static_cast<size_t>(blk) * 8;
      const uint64_t* p = planes + static_cast<size_t>(blk) * 6;
      for (uint32_t k = 0; k < 6; ++k) {
        if (p[k] == 0) continue;
        for (int g = 0; g < 8; ++g) {
          out8[g] += SpreadBitsToBytes((p[k] >> (8 * g)) & 0xFF) << k;
        }
      }
    }
    done += chunk;
  }
}

// (The >255-id wide fallback — chunks of <= 252 through the packed
// counter, widened per block — lives in the kernel layer as
// count_columns_wide: point covers, the cold-path consumers of this
// header, never exceed h + 1 ids. The old internal-linkage copy of the
// packed counter in dataset_sketch.cc is gone: the kernel TUs make that
// specialization deliberate instead of an accident of linkage.)

}  // namespace bitslice
}  // namespace spatialsketch

#endif  // SPATIALSKETCH_XI_BITSLICE_H_
