#include "src/xi/poly_family.h"

namespace spatialsketch {

PolyXiFamily PolyXiFamily::Random(Rng* rng) {
  auto draw = [&] { return rng->Uniform(kPrime); };
  return PolyXiFamily(draw(), draw(), draw(), draw());
}

uint64_t PolyXiFamily::MulMod(uint64_t a, uint64_t b) {
  // 2^61 == 2 (mod p) lets us fold the 122-bit product cheaply.
  __uint128_t prod = static_cast<__uint128_t>(a) * b;
  uint64_t lo = static_cast<uint64_t>(prod & kPrime);
  uint64_t hi = static_cast<uint64_t>(prod >> 61);
  uint64_t r = lo + hi;
  if (r >= kPrime) r -= kPrime;
  return r;
}

uint64_t PolyXiFamily::AddMod(uint64_t a, uint64_t b) {
  uint64_t r = a + b;  // both < p < 2^61, no overflow
  if (r >= kPrime) r -= kPrime;
  return r;
}

uint64_t PolyXiFamily::Hash(uint64_t index) const {
  // Horner evaluation of a3 x^3 + a2 x^2 + a1 x + a0 at x = index mod p.
  uint64_t x = index % kPrime;
  uint64_t h = a3_;
  h = AddMod(MulMod(h, x), a2_);
  h = AddMod(MulMod(h, x), a1_);
  h = AddMod(MulMod(h, x), a0_);
  return h;
}

}  // namespace spatialsketch
