// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Seeds for four-wise independent xi-families. Following Section 2.2 of the
// paper, a family over a k-bit index domain is generated from a (2k+1)-bit
// seed; we store the three components in fixed-width words.

#ifndef SPATIALSKETCH_XI_SEED_H_
#define SPATIALSKETCH_XI_SEED_H_

#include <cstdint>

#include "src/common/rng.h"

namespace spatialsketch {

/// Seed of one BCH xi-family: xi_i = (-1)^{b XOR <s0,i> XOR <s1,i^3>}
/// where <.,.> is the GF(2) inner product of bit vectors and i^3 is
/// computed in GF(2^64).
struct XiSeed {
  uint64_t s0 = 0;
  uint64_t s1 = 0;
  uint32_t b = 0;  // 0 or 1

  /// Draw an independent seed from the given generator.
  static XiSeed Random(Rng* rng) {
    XiSeed s;
    s.s0 = rng->Next64();
    s.s1 = rng->Next64();
    s.b = static_cast<uint32_t>(rng->Next64() & 1);
    return s;
  }

  friend bool operator==(const XiSeed& a, const XiSeed& b2) {
    return a.s0 == b2.s0 && a.s1 == b2.s1 && a.b == b2.b;
  }
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_XI_SEED_H_
