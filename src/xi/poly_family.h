// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Alternative four-wise independent family: a random degree-3 polynomial
// over the Mersenne prime p = 2^61 - 1. h(i) is exactly 4-wise independent
// and uniform on [0, p); the sign is taken from the low bit, which carries
// a negligible 1/p bias (p is odd). Provided for ablation against the
// exact BCH family; the library default is BchXiFamily.

#ifndef SPATIALSKETCH_XI_POLY_FAMILY_H_
#define SPATIALSKETCH_XI_POLY_FAMILY_H_

#include <cstdint>

#include "src/common/rng.h"

namespace spatialsketch {

/// Degree-3 polynomial hash family over GF(2^61 - 1) mapped to {-1,+1}.
class PolyXiFamily {
 public:
  static constexpr uint64_t kPrime = (uint64_t{1} << 61) - 1;

  /// Draw random coefficients a0..a3 uniform in [0, p).
  static PolyXiFamily Random(Rng* rng);

  PolyXiFamily(uint64_t a0, uint64_t a1, uint64_t a2, uint64_t a3)
      : a0_(a0), a1_(a1), a2_(a2), a3_(a3) {}

  /// xi_index in {-1, +1}.
  int Sign(uint64_t index) const {
    return 1 - 2 * static_cast<int>(Hash(index) & 1);
  }

  /// The underlying 4-wise independent hash value in [0, p).
  uint64_t Hash(uint64_t index) const;

 private:
  static uint64_t MulMod(uint64_t a, uint64_t b);
  static uint64_t AddMod(uint64_t a, uint64_t b);

  uint64_t a0_, a1_, a2_, a3_;
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_XI_POLY_FAMILY_H_
