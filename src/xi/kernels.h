// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Runtime-dispatched SIMD kernels for the bit-sliced hot paths.
//
// Every per-core scan loop the serving paths live in — the carry-save
// bit-slice reduction over packed sign columns, the byte-lane widening
// into per-instance letter values, the streaming counter apply, and the
// per-instance estimator sum/dot walks — is reached through ONE dispatch
// table of explicit, non-inline kernels. Three variants exist:
//
//   scalar  portable uint64_t code (always available; the bit-identity
//           reference every other variant is differentially tested
//           against in tests/kernel_dispatch_test.cc)
//   avx2    256-bit integer/FP variants (4 blocks / 4 lanes per op)
//   avx512  512-bit variants (8 blocks / 8 lanes per op; requires the
//           F+BW+DQ+VL subset every AVX-512 server core since Skylake-X
//           ships together)
//
// The vector variants live in dedicated translation units compiled with
// per-file -mavx2 / -mavx512* flags (see CMakeLists.txt), so vector
// codegen is deliberate: the rest of the library keeps the baseline ISA
// and links fine on machines without the extensions. Selection happens
// once, on first use, from cpuid — overridable for A/B runs and tests
// with the SPATIALSKETCH_KERNELS=scalar|avx2|avx512 environment variable
// or ForceKernels().
//
// Bit-identity invariant: every kernel either computes exact integer
// results (counts, counter deltas — freely reassociable) or performs its
// floating-point operations in exactly the scalar variant's per-element
// order (estimator z-loops vectorize ACROSS instances, never across the
// in-instance accumulation, and the vector TUs compile with
// -ffp-contract=off so no FMA contraction can change rounding). Every
// variant therefore produces counters and estimates bit-identical to
// scalar; tests/kernel_dispatch_test.cc enforces this differentially.

#ifndef SPATIALSKETCH_XI_KERNELS_H_
#define SPATIALSKETCH_XI_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace spatialsketch {
namespace kernels {

/// Kernel variants in ascending capability order.
enum class Kind : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// The dispatch table. All pointers are always non-null in a published
/// table. Layout conventions shared by every entry:
///  * a packed count array holds 8 uint64_t per instance block — byte j%8
///    of word j/8 is the (<= 255) count of lane j of that block;
///  * `blocks` 64-lane instance blocks cover the schema's instances;
///  * counter rows are instance-major: instance i's `num_words` int64
///    words start at counters[i * num_words].
struct KernelOps {
  const char* name;

  /// Per-lane minus-counts of m <= 255 cached sign columns across every
  /// instance block in one id-ordered pass. cols[i] points at column i
  /// (blocks words each); packed receives blocks * 8 words; planes is
  /// blocks * 6 words of caller scratch (scalar CSA state — vector
  /// variants may ignore it).
  void (*count_columns_packed)(const uint64_t* const* cols, size_t m,
                               uint32_t blocks, uint64_t* packed,
                               uint64_t* planes);

  /// 32-bit fallback for covers longer than 255 ids: wide[blk * 64 + j]
  /// receives the full count; packed/planes are scratch as above.
  void (*count_columns_wide)(const uint64_t* const* cols, size_t m,
                             uint32_t blocks, int32_t* wide, uint64_t* packed,
                             uint64_t* planes);

  /// Row-major variant for the bulk loader: words come from one SignTable
  /// row, gathered through `ids` (word i = row[ids[i]]). m <= 255.
  void (*count_gather_packed)(const uint64_t* row, const uint64_t* ids,
                              size_t m, uint64_t out8[8]);

  /// Arbitrary-m row-major variant widening into 32-bit counts.
  void (*count_gather_wide)(const uint64_t* row, const uint64_t* ids,
                            size_t m, int32_t out[64]);

  /// Letter values of one block from byte-packed minus counts:
  /// out[j] = m - 2 * count_j.
  void (*lanes_from_packed)(const uint64_t packed8[8], int32_t m,
                            int32_t out[64]);

  /// Letter values of one block from 32-bit minus counts.
  void (*lanes_from_wide)(const int32_t wide[64], int32_t m, int32_t out[64]);

  /// out[j] = a[j] + b[j] over one block (letter E = L + U).
  void (*add_lanes)(const int32_t a[64], const int32_t b[64], int32_t out[64]);

  /// Leaf-letter values of one block from a packed sign word:
  /// out[j] = 1 - 2 * ((mask >> j) & 1).
  void (*signs_from_mask)(uint64_t mask, int32_t out[64]);

  /// Streaming counter apply for one instance block of a bitmask-tensor
  /// shape: for lane j < lanes and word w < 2^dims,
  ///   rows[j * 2^dims + w] += sign * prod_d lv[d][(w >> d) & 1][j].
  /// lv[d][side] are 64-lane letter-value arrays; sign is +1 or -1.
  /// Exact int64 arithmetic (wrap-free in practice, identical under any
  /// evaluation order), so variants are trivially bit-identical.
  void (*tensor_apply)(const int32_t* const (*lv)[2], uint32_t dims,
                       uint32_t lanes, int64_t sign, int64_t* rows);

  /// Range-estimator per-instance sums: factors holds dims * 2 arrays of
  /// `instances` int32 each (layout [(d * 2 + which) * instances + i],
  /// which 0 = interval cover, 1 = upper point cover);
  ///   z[i] = sum_w counters[i * 2^dims + w] *
  ///          prod_d factors[d][(w >> d) & 1 ? 0 : 1][i]
  /// with the products and the w-ascending accumulation performed in
  /// double exactly like the scalar estimator.
  void (*range_z)(const int64_t* counters, uint32_t instances, uint32_t dims,
                  const int32_t* factors, double* z);

  /// Join-estimator per-instance dot products over complementary words:
  ///   z[i] = (1 / 2^dims) * sum_w r[i][w] * s[i][w ^ (2^dims - 1)].
  void (*join_z)(const int64_t* r, const int64_t* s, uint32_t instances,
                 uint32_t dims, double* z);

  /// Self-join per-instance squares of one word column:
  ///   z[i] = ((double)counters[i * num_words + word])^2.
  void (*self_join_z)(const int64_t* counters, uint32_t instances,
                      uint32_t num_words, uint32_t word, double* z);
};

/// The active table. First call resolves the variant: the
/// SPATIALSKETCH_KERNELS env override if set and usable, else the best
/// CPU-supported compiled-in variant. Hot paths should hoist the returned
/// reference out of their loops (one atomic load + indirect call per
/// kernel invocation otherwise).
const KernelOps& Ops();

/// Currently active variant / its name ("scalar", "avx2", "avx512").
Kind Selected();
const char* SelectedName();

/// Best variant this binary AND this CPU support (what auto-selection
/// picks absent an override).
Kind Best();

/// True if `k` is compiled in and supported by this CPU.
bool Available(Kind k);

/// Table for a specific variant, or nullptr when unavailable. Intended
/// for differential tests that pin variants against each other.
const KernelOps* OpsFor(Kind k);

/// Force the active variant (benches / tests; call before hot work, not
/// concurrently with it). Fails with FailedPrecondition when `k` is not
/// compiled in or the CPU lacks it.
Status ForceKernels(Kind k);

/// Name-keyed override: "scalar", "avx2", "avx512" (the accepted values
/// of SPATIALSKETCH_KERNELS). Unknown names fail with InvalidArgument.
Status ForceKernels(const std::string& name);

/// Applies an override string exactly like the environment variable at
/// startup would: empty/unknown values and unavailable variants degrade
/// to auto-selection with a stderr warning instead of failing. Returns
/// the variant that ended up active. Exposed for the dispatch tests.
Kind ApplyOverride(const char* value);

/// Comma-separated CPU feature summary relevant to dispatch, e.g.
/// "avx2,avx512f,avx512bw,avx512dq,avx512vl" (empty when none).
std::string CpuFeatureString();

/// The portable iterated-partial-product ladder behind tensor_apply —
/// exact int64 math, defined once in kernels.cc with baseline codegen.
/// The scalar table points here, and the vector tables delegate the
/// dimensionalities they do not specialize, so the bit-identity-critical
/// ladder has exactly ONE definition (and the vector TUs emit no
/// vector-encoded copy of it).
void TensorApplyPortable(const int32_t* const (*lv)[2], uint32_t dims,
                         uint32_t lanes, int64_t sign, int64_t* rows);

}  // namespace kernels
}  // namespace spatialsketch

#endif  // SPATIALSKETCH_XI_KERNELS_H_
