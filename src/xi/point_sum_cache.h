// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// PointSumCache: lazily materialized per-coordinate POINT-COVER sum
// blocks, one per (dimension, coordinate), shared by every sketch under
// one schema.
//
// The dyadic point cover of a coordinate is fixed — exactly one interval
// per usable level (Lemma 3), ids leaf >> 0 .. leaf >> top — so the
// per-lane minus counts the streaming update path derives from it via the
// carry-save network depend only on (dimension, coordinate) and the
// schema's seeds. The bit-sliced Insert/Delete previously recomputed that
// CSA reduction for every endpoint of every update; this cache computes
// it once per touched coordinate and hands back the finished byte-packed
// counts. For RangeShape streams (groups I and U per dimension) that
// halves the per-update CSA work; JoinShape streams (group E = L + U)
// drop both endpoint reductions and keep only the range-dependent
// interval-cover one.
//
// The cached value is the exact output of the kernel layer's
// count_columns_packed over the cover's sign-cache columns (every kernel
// variant produces the same exact counts) — the update path consumes it
// through the same PackedLane
// reads, so counters stay bit-identical to the uncached computation (and
// therefore to UpdateReference). Point covers have at most h + 1 <= 41
// members, so the byte-packed representation always suffices (no wide
// fallback, unlike interval covers under deep level caps).
//
// Concurrency: Counts() mirrors PackedSignCache — lock-free on the hit
// path (one acquire load) with compare-exchange publication on miss for
// dense coordinate universes, sharded hash maps beyond kDenseSlotLimit.
// Entries are kept for the schema's lifetime; the working set is bounded
// by the touched coordinate universe, exactly like the sign columns the
// entries are derived from.

#ifndef SPATIALSKETCH_XI_POINT_SUM_CACHE_H_
#define SPATIALSKETCH_XI_POINT_SUM_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/xi/sign_cache.h"

namespace spatialsketch {

class PointSumCache {
 public:
  /// Per-dimension geometry of the point covers to cache.
  struct DimSpec {
    uint32_t log2_size = 0;     ///< coordinates live in [0, 2^log2_size)
    uint32_t cover_levels = 0;  ///< point-cover size (EffectiveMaxLevel + 1)
  };

  /// `signs` supplies the packed sign columns the sums are reduced from
  /// and must outlive the cache (both are schema-owned). One DimSpec per
  /// sign-cache dimension.
  PointSumCache(const PackedSignCache* signs, std::vector<DimSpec> dims);
  ~PointSumCache();

  /// Point-cover size of `dim` (constant across coordinates).
  uint32_t cover_size(uint32_t dim) const {
    return dims_[dim]->spec.cover_levels;
  }

  /// Byte-packed per-lane minus counts of the point cover of `coord` in
  /// `dim`: signs->num_blocks() * 8 words laid out exactly like the
  /// streaming scratch (words [blk * 8, blk * 8 + 8) hold block blk; read
  /// lanes with bitslice::PackedLane). Built on first touch, then served
  /// lock-free; the pointer stays valid for the cache's lifetime.
  const uint64_t* Counts(uint32_t dim, uint64_t coord) const;

  /// Largest coordinate universe served by the dense slot array; larger
  /// domains use the sharded maps (same policy as PackedSignCache).
  static constexpr uint64_t kDenseSlotLimit = PackedSignCache::kDenseSlotLimit;

 private:
  static constexpr uint32_t kMapShards = 16;

  struct DimCache {
    DimSpec spec;
    // Dense representation (2^log2_size <= kDenseSlotLimit).
    std::atomic<std::atomic<uint64_t*>*> slots{nullptr};
    std::mutex init_mu;
    // Sparse representation, sharded by low coordinate bits.
    std::mutex shard_mu[kMapShards];
    std::unordered_map<uint64_t, uint64_t*> shard_map[kMapShards];
  };

  std::atomic<uint64_t*>* Slots(DimCache& dc) const;
  const uint64_t* CountsSparse(DimCache& dc, uint32_t dim,
                               uint64_t coord) const;
  uint64_t* BuildEntry(const DimCache& dc, uint32_t dim,
                       uint64_t coord) const;

  const PackedSignCache* signs_;
  mutable std::vector<std::unique_ptr<DimCache>> dims_;
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_XI_POINT_SUM_CACHE_H_
