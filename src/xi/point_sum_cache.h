// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// PointSumCache: lazily materialized per-coordinate POINT-COVER sum
// blocks, one per (dimension, coordinate), shared by every sketch under
// one schema.
//
// The dyadic point cover of a coordinate is fixed — exactly one interval
// per usable level (Lemma 3), ids leaf >> 0 .. leaf >> top — so the
// per-lane minus counts the streaming update path derives from it via the
// carry-save network depend only on (dimension, coordinate) and the
// schema's seeds. The bit-sliced Insert/Delete previously recomputed that
// CSA reduction for every endpoint of every update; this cache computes
// it once per touched coordinate and hands back the finished byte-packed
// counts. For RangeShape streams (groups I and U per dimension) that
// halves the per-update CSA work; JoinShape streams (group E = L + U)
// drop both endpoint reductions and keep only the range-dependent
// interval-cover one.
//
// The cached value is the exact output of the kernel layer's
// count_columns_packed over the cover's sign-cache columns (every kernel
// variant produces the same exact counts) — the update path consumes it
// through the same PackedLane
// reads, so counters stay bit-identical to the uncached computation (and
// therefore to UpdateReference). Point covers have at most h + 1 <= 41
// members, so the byte-packed representation always suffices (no wide
// fallback, unlike interval covers under deep level caps).
//
// Concurrency: Counts() mirrors PackedSignCache — lock-free on the hit
// path (one acquire load) with compare-exchange publication on miss for
// dense coordinate universes, sharded hash maps beyond kDenseSlotLimit.
// Eviction mirrors PackedSignCache too: entries live for the schema's
// lifetime unless a process-wide budget (SetGlobalBudget) arms the
// clock-style sweep, in which case readers hold a Pin and evicted
// entries are retired until no pin remains (see sign_cache.h for the
// full retire/pin correctness argument).

#ifndef SPATIALSKETCH_XI_POINT_SUM_CACHE_H_
#define SPATIALSKETCH_XI_POINT_SUM_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/xi/sign_cache.h"

namespace spatialsketch {

class PointSumCache {
 public:
  /// Per-dimension geometry of the point covers to cache.
  struct DimSpec {
    uint32_t log2_size = 0;     ///< coordinates live in [0, 2^log2_size)
    uint32_t cover_levels = 0;  ///< point-cover size (EffectiveMaxLevel + 1)
  };

  /// `signs` supplies the packed sign columns the sums are reduced from
  /// and must outlive the cache (both are schema-owned). One DimSpec per
  /// sign-cache dimension.
  PointSumCache(const PackedSignCache* signs, std::vector<DimSpec> dims);
  ~PointSumCache();

  /// RAII read guard, the PackedSignCache::Pin twin: hold one across a
  /// read episode so entry pointers stay valid under budget eviction.
  class Pin {
   public:
    Pin() = default;
    explicit Pin(const PointSumCache* cache) : cache_(cache) {
      if (cache_ != nullptr) cache_->pins_.fetch_add(1);
    }
    ~Pin() { Release(); }
    Pin(Pin&& other) noexcept : cache_(other.cache_) {
      other.cache_ = nullptr;
    }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        Release();
        cache_ = other.cache_;
        other.cache_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

   private:
    void Release() {
      if (cache_ != nullptr && cache_->pins_.fetch_sub(1) == 1) {
        cache_->TryDrainRetired();
      }
      cache_ = nullptr;
    }
    const PointSumCache* cache_ = nullptr;
  };

  /// Point-cover size of `dim` (constant across coordinates).
  uint32_t cover_size(uint32_t dim) const {
    return dims_[dim]->spec.cover_levels;
  }

  /// Byte-packed per-lane minus counts of the point cover of `coord` in
  /// `dim`: signs->num_blocks() * 8 words laid out exactly like the
  /// streaming scratch (words [blk * 8, blk * 8 + 8) hold block blk; read
  /// lanes with bitslice::PackedLane). Built on first touch, then served
  /// lock-free. With no global budget the pointer stays valid for the
  /// cache's lifetime; under a budget it stays valid while the caller's
  /// Pin is held.
  const uint64_t* Counts(uint32_t dim, uint64_t coord) const;

  /// This cache's health counters (see XiCacheStats in sign_cache.h).
  XiCacheStats stats() const;

  /// Process-wide resident-byte budget across ALL PointSumCache
  /// instances; 0 (the default) disables eviction. Live-read on misses.
  static void SetGlobalBudget(uint64_t bytes);
  static uint64_t GlobalBudget();
  /// Resident bytes across all instances (the value the budget gates).
  static uint64_t GlobalBytes();

  /// Largest coordinate universe served by the dense slot array; larger
  /// domains use the sharded maps (same policy as PackedSignCache).
  static constexpr uint64_t kDenseSlotLimit = PackedSignCache::kDenseSlotLimit;

 private:
  static constexpr uint32_t kMapShards = 16;

  struct DimCache {
    DimSpec spec;
    // Dense representation (2^log2_size <= kDenseSlotLimit).
    std::atomic<std::atomic<uint64_t*>*> slots{nullptr};
    std::mutex init_mu;
    // Second-chance ref bytes + clock bookkeeping (see sign_cache.h).
    std::atomic<std::atomic<uint8_t>*> refs{nullptr};
    uint64_t clock_hand = 0;  ///< under retire_mu_
    uint32_t next_shard = 0;  ///< under retire_mu_
    // Sparse representation, sharded by low coordinate bits.
    std::mutex shard_mu[kMapShards];
    std::unordered_map<uint64_t, uint64_t*> shard_map[kMapShards];
  };

  std::atomic<uint64_t*>* Slots(DimCache& dc) const;
  const uint64_t* CountsSparse(DimCache& dc, uint32_t dim,
                               uint64_t coord) const;
  uint64_t* BuildEntry(const DimCache& dc, uint32_t dim,
                       uint64_t coord) const;
  /// Bytes of one entry allocation (blocks * 8 packed words).
  size_t EntryBytes() const;
  void AccountPublish(DimCache& dc) const;
  void TryDrainRetired() const;

  const PackedSignCache* signs_;
  mutable std::vector<std::unique_ptr<DimCache>> dims_;

  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> evicted_{0};
  mutable std::atomic<uint64_t> bytes_{0};
  mutable std::atomic<uint64_t> pins_{0};
  mutable std::mutex retire_mu_;
  mutable std::vector<uint64_t*> retired_;
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_XI_POINT_SUM_CACHE_H_
