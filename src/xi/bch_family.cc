// BchXiFamily is header-only; this translation unit anchors the header so
// missing-include errors surface in library builds.
#include "src/xi/bch_family.h"
