// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// AVX-512 kernel variants: 512-bit ops process 8 instance blocks per
// carry-save step, the plane-to-byte expansion is a single masked byte
// add per plane (the 64-bit plane word IS the __mmask64), and the
// estimator z-loops vectorize 8 instances wide with vcvtqq2pd doing the
// int64 -> double converts (per-instance FP op order preserved — see
// kernels.h). Compiled with -mavx512f -mavx512bw -mavx512dq -mavx512vl
// -ffp-contract=off via set_source_files_properties; dispatch only picks
// this table when cpuid reports all four subsets.

#include "src/xi/kernels.h"

#if defined(SPATIALSKETCH_COMPILE_AVX512)

// GCC's AVX-512 headers implement the "undefined pass-through" operand as
// `__m512i __Y = __Y;`, which GCC 12 itself flags at every inlined
// intrinsic (GCC PR 105593). The values are dead by construction; silence
// the false positive for this TU only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif

#include <immintrin.h>

#include <algorithm>
#include <cstring>

// NOTE: no shared project headers beyond kernels.h here — see the
// comdat rule at the set_source_files_properties block in CMakeLists.txt.

namespace spatialsketch {
namespace kernels {
namespace {

// Full-width gather through the masked form: the unmasked intrinsic's
// pass-through operand is intentionally undefined in GCC's headers, which
// trips -Wmaybe-uninitialized; an explicit zero source is free.
inline __m512i GatherI64(__m512i idx, const void* base) {
  return _mm512_mask_i64gather_epi64(_mm512_setzero_si512(),
                                     static_cast<__mmask8>(0xFF), idx, base,
                                     8);
}

// out8 (one block's 64 byte lanes, one zmm) += plane bits << k.
inline __m512i AccumulatePlane512(__m512i acc, uint64_t plane, uint32_t k) {
  const __m512i inc = _mm512_set1_epi8(static_cast<char>(1u << k));
  return _mm512_mask_add_epi8(acc, static_cast<__mmask64>(plane), acc, inc);
}

inline void ExpandPlanesInto512(const uint64_t plane[6], uint64_t* out8) {
  __m512i acc = _mm512_loadu_si512(out8);
  for (uint32_t k = 0; k < 6; ++k) {
    if (plane[k] == 0) continue;
    acc = AccumulatePlane512(acc, plane[k], k);
  }
  _mm512_storeu_si512(out8, acc);
}

void CountColumnsPackedAvx512(const uint64_t* const* cols, size_t m,
                              uint32_t blocks, uint64_t* packed,
                              uint64_t* planes) {
  (void)planes;
  std::fill(packed, packed + static_cast<size_t>(blocks) * 8, 0);
  const uint32_t blk8 = blocks & ~7u;
  size_t done = 0;
  while (done < m) {
    const size_t chunk = std::min<size_t>(63, m - done);
    for (uint32_t g = 0; g < blk8; g += 8) {
      __m512i p0 = _mm512_setzero_si512(), p1 = p0, p2 = p0, p3 = p0,
              p4 = p0, p5 = p0;
      for (size_t i = 0; i < chunk; ++i) {
        __m512i carry = _mm512_loadu_si512(cols[done + i] + g);
        __m512i t;
        t = _mm512_and_si512(p0, carry);
        p0 = _mm512_xor_si512(p0, carry);
        carry = t;
        t = _mm512_and_si512(p1, carry);
        p1 = _mm512_xor_si512(p1, carry);
        carry = t;
        t = _mm512_and_si512(p2, carry);
        p2 = _mm512_xor_si512(p2, carry);
        carry = t;
        t = _mm512_and_si512(p3, carry);
        p3 = _mm512_xor_si512(p3, carry);
        carry = t;
        t = _mm512_and_si512(p4, carry);
        p4 = _mm512_xor_si512(p4, carry);
        carry = t;
        p5 = _mm512_xor_si512(p5, carry);
      }
      alignas(64) uint64_t pl[6][8];
      _mm512_store_si512(pl[0], p0);
      _mm512_store_si512(pl[1], p1);
      _mm512_store_si512(pl[2], p2);
      _mm512_store_si512(pl[3], p3);
      _mm512_store_si512(pl[4], p4);
      _mm512_store_si512(pl[5], p5);
      for (uint32_t b = 0; b < 8; ++b) {
        const uint64_t plane[6] = {pl[0][b], pl[1][b], pl[2][b],
                                   pl[3][b], pl[4][b], pl[5][b]};
        ExpandPlanesInto512(plane, packed + static_cast<size_t>(g + b) * 8);
      }
    }
    for (uint32_t b = blk8; b < blocks; ++b) {
      uint64_t plane[6] = {0, 0, 0, 0, 0, 0};
      for (size_t i = 0; i < chunk; ++i) {
        uint64_t carry = cols[done + i][b];
        for (uint32_t k = 0; carry != 0 && k < 6; ++k) {
          const uint64_t t = plane[k] & carry;
          plane[k] ^= carry;
          carry = t;
        }
      }
      ExpandPlanesInto512(plane, packed + static_cast<size_t>(b) * 8);
    }
    done += chunk;
  }
}

// wide[j] += byte j of the packed counts, one block.
inline void WidenAddBytes512(const uint64_t* out8, int32_t* wide) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(out8);
  for (uint32_t g = 0; g < 4; ++g) {
    const __m512i b = _mm512_cvtepu8_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 16 * g)));
    __m512i acc = _mm512_loadu_si512(wide + 16 * g);
    _mm512_storeu_si512(wide + 16 * g, _mm512_add_epi32(acc, b));
  }
}

void CountColumnsWideAvx512(const uint64_t* const* cols, size_t m,
                            uint32_t blocks, int32_t* wide, uint64_t* packed,
                            uint64_t* planes) {
  std::fill(wide, wide + static_cast<size_t>(blocks) * 64, 0);
  size_t done = 0;
  while (done < m) {
    const size_t part = std::min<size_t>(252, m - done);
    CountColumnsPackedAvx512(cols + done, part, blocks, packed, planes);
    for (uint32_t blk = 0; blk < blocks; ++blk) {
      WidenAddBytes512(packed + static_cast<size_t>(blk) * 8,
                       wide + static_cast<size_t>(blk) * 64);
    }
    done += part;
  }
}

// Row-major gather counting: 8 interleaved CSA streams; see the AVX2
// variant for the stream-merge argument (counts are exact, so per-stream
// expansion sums to the same bytes as one serial CSA).
void CountGatherPackedAvx512(const uint64_t* row, const uint64_t* ids,
                             size_t m, uint64_t out8[8]) {
  __m512i acc = _mm512_setzero_si512();
  size_t done = 0;
  while (done < m) {
    const size_t left = m - done;
    const size_t rounds = std::min<size_t>(63, left / 8);
    if (rounds == 0) break;
    __m512i p0 = _mm512_setzero_si512(), p1 = p0, p2 = p0, p3 = p0, p4 = p0,
            p5 = p0;
    for (size_t i = 0; i < rounds; ++i) {
      const __m512i vidx = _mm512_loadu_si512(ids + done + i * 8);
      __m512i carry = GatherI64(vidx, row);
      __m512i t;
      t = _mm512_and_si512(p0, carry);
      p0 = _mm512_xor_si512(p0, carry);
      carry = t;
      t = _mm512_and_si512(p1, carry);
      p1 = _mm512_xor_si512(p1, carry);
      carry = t;
      t = _mm512_and_si512(p2, carry);
      p2 = _mm512_xor_si512(p2, carry);
      carry = t;
      t = _mm512_and_si512(p3, carry);
      p3 = _mm512_xor_si512(p3, carry);
      carry = t;
      t = _mm512_and_si512(p4, carry);
      p4 = _mm512_xor_si512(p4, carry);
      carry = t;
      p5 = _mm512_xor_si512(p5, carry);
    }
    alignas(64) uint64_t pl[6][8];
    _mm512_store_si512(pl[0], p0);
    _mm512_store_si512(pl[1], p1);
    _mm512_store_si512(pl[2], p2);
    _mm512_store_si512(pl[3], p3);
    _mm512_store_si512(pl[4], p4);
    _mm512_store_si512(pl[5], p5);
    for (uint32_t lane = 0; lane < 8; ++lane) {
      for (uint32_t k = 0; k < 6; ++k) {
        if (pl[k][lane] == 0) continue;
        acc = AccumulatePlane512(acc, pl[k][lane], k);
      }
    }
    done += rounds * 8;
  }
  while (done < m) {
    const size_t chunk = std::min<size_t>(63, m - done);
    uint64_t plane[6] = {0, 0, 0, 0, 0, 0};
    for (size_t i = 0; i < chunk; ++i) {
      uint64_t carry = row[ids[done + i]];
      for (uint32_t k = 0; carry != 0 && k < 6; ++k) {
        const uint64_t t = plane[k] & carry;
        plane[k] ^= carry;
        carry = t;
      }
    }
    for (uint32_t k = 0; k < 6; ++k) {
      if (plane[k] == 0) continue;
      acc = AccumulatePlane512(acc, plane[k], k);
    }
    done += chunk;
  }
  _mm512_storeu_si512(out8, acc);
}

void CountGatherWideAvx512(const uint64_t* row, const uint64_t* ids, size_t m,
                           int32_t out[64]) {
  std::memset(out, 0, 64 * sizeof(int32_t));
  uint64_t packed[8];
  size_t done = 0;
  while (done < m) {
    const size_t part = std::min<size_t>(252, m - done);
    CountGatherPackedAvx512(row, ids + done, part, packed);
    WidenAddBytes512(packed, out);
    done += part;
  }
}

void LanesFromPackedAvx512(const uint64_t packed8[8], int32_t m,
                           int32_t out[64]) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(packed8);
  const __m512i vm = _mm512_set1_epi32(m);
  for (uint32_t g = 0; g < 4; ++g) {
    __m512i x = _mm512_cvtepu8_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 16 * g)));
    x = _mm512_sub_epi32(vm, _mm512_add_epi32(x, x));
    _mm512_storeu_si512(out + 16 * g, x);
  }
}

void LanesFromWideAvx512(const int32_t wide[64], int32_t m, int32_t out[64]) {
  const __m512i vm = _mm512_set1_epi32(m);
  for (uint32_t g = 0; g < 4; ++g) {
    __m512i x = _mm512_loadu_si512(wide + 16 * g);
    x = _mm512_sub_epi32(vm, _mm512_add_epi32(x, x));
    _mm512_storeu_si512(out + 16 * g, x);
  }
}

void AddLanesAvx512(const int32_t a[64], const int32_t b[64],
                    int32_t out[64]) {
  for (uint32_t g = 0; g < 4; ++g) {
    const __m512i x = _mm512_loadu_si512(a + 16 * g);
    const __m512i y = _mm512_loadu_si512(b + 16 * g);
    _mm512_storeu_si512(out + 16 * g, _mm512_add_epi32(x, y));
  }
}

void SignsFromMaskAvx512(uint64_t mask, int32_t out[64]) {
  const __m512i ones = _mm512_set1_epi32(1);
  const __m512i minus = _mm512_set1_epi32(-1);
  for (uint32_t g = 0; g < 4; ++g) {
    const __mmask16 mk = static_cast<__mmask16>(mask >> (16 * g));
    _mm512_storeu_si512(out + 16 * g,
                        _mm512_mask_mov_epi32(ones, mk, minus));
  }
}

// ---------------------------------------------------------------------------
// Streaming counter apply (tensor shapes).
// ---------------------------------------------------------------------------

void TensorApply1Avx512(const int32_t* const (*lv)[2], uint32_t lanes,
                        int64_t sign, int64_t* rows) {
  const int32_t* a0 = lv[0][0];
  const int32_t* a1 = lv[0][1];
  const bool neg = sign < 0;
  uint32_t j = 0;
  for (; j + 8 <= lanes; j += 8) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a0 + j));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a1 + j));
    // Word order per lane: [a0[j], a1[j], a0[j+1], a1[j+1], ...]. The
    // 256-bit unpacks interleave per 128-bit half, so split the halves
    // explicitly to keep lane order global.
    const __m256i lo = _mm256_unpacklo_epi32(v0, v1);
    const __m256i hi = _mm256_unpackhi_epi32(v0, v1);
    const __m256i w0 = _mm256_permute2x128_si256(lo, hi, 0x20);
    const __m256i w1 = _mm256_permute2x128_si256(lo, hi, 0x31);
    const __m512i p0 = _mm512_cvtepi32_epi64(w0);
    const __m512i p1 = _mm512_cvtepi32_epi64(w1);
    int64_t* r = rows + static_cast<size_t>(j) * 2;
    __m512i r0 = _mm512_loadu_si512(r);
    __m512i r1 = _mm512_loadu_si512(r + 8);
    r0 = neg ? _mm512_sub_epi64(r0, p0) : _mm512_add_epi64(r0, p0);
    r1 = neg ? _mm512_sub_epi64(r1, p1) : _mm512_add_epi64(r1, p1);
    _mm512_storeu_si512(r, r0);
    _mm512_storeu_si512(r + 8, r1);
  }
  for (; j < lanes; ++j) {
    int64_t* r = rows + static_cast<size_t>(j) * 2;
    r[0] += sign * a0[j];
    r[1] += sign * a1[j];
  }
}

void TensorApply2Avx512(const int32_t* const (*lv)[2], uint32_t lanes,
                        int64_t sign, int64_t* rows) {
  const int32_t* a0 = lv[0][0];
  const int32_t* a1 = lv[0][1];
  const int32_t* b0 = lv[1][0];
  const int32_t* b1 = lv[1][1];
  const bool neg = sign < 0;
  // Two lanes per zmm: word w of lane L sits in i64 slot 4 * (L & 1) + w
  // and multiplies lv[0][w & 1] by lv[1][(w >> 1) & 1]. vpmuldq only
  // reads the LOW dword of each i64 slot, so one vpermd per operand
  // places the right 32-bit letter values (high dwords are don't-care;
  // the index vectors just repeat the low pick). Sources: za = a0[j..j+7]
  // in dwords 0-7, a1[j..j+7] in dwords 8-15 (zb likewise for b).
  __m512i x_idx[4], y_idx[4];
  for (int t = 0; t < 4; ++t) {
    const int e = 2 * t, o = 8 + 2 * t;  // even lane picks a0/b0 bank slots
    x_idx[t] = _mm512_setr_epi32(e, e, o, o, e, e, o, o,  //
                                 e + 1, e + 1, o + 1, o + 1,  //
                                 e + 1, e + 1, o + 1, o + 1);
    y_idx[t] = _mm512_setr_epi32(e, e, e, e, o, o, o, o,  //
                                 e + 1, e + 1, e + 1, e + 1,  //
                                 o + 1, o + 1, o + 1, o + 1);
  }
  uint32_t j = 0;
  for (; j + 8 <= lanes; j += 8) {
    const __m512i za = _mm512_inserti64x4(
        _mm512_castsi256_si512(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a0 + j))),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a1 + j)), 1);
    const __m512i zb = _mm512_inserti64x4(
        _mm512_castsi256_si512(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b0 + j))),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b1 + j)), 1);
    for (uint32_t t = 0; t < 4; ++t) {
      const __m512i x = _mm512_permutexvar_epi32(x_idx[t], za);
      const __m512i y = _mm512_permutexvar_epi32(y_idx[t], zb);
      const __m512i p = _mm512_mul_epi32(x, y);
      int64_t* r = rows + (static_cast<size_t>(j) + 2 * t) * 4;
      __m512i acc = _mm512_loadu_si512(r);
      acc = neg ? _mm512_sub_epi64(acc, p) : _mm512_add_epi64(acc, p);
      _mm512_storeu_si512(r, acc);
    }
  }
  for (; j < lanes; ++j) {
    const int64_t a[2] = {a0[j], a1[j]};
    const int64_t b[2] = {b0[j], b1[j]};
    int64_t* r = rows + static_cast<size_t>(j) * 4;
    for (uint32_t w = 0; w < 4; ++w) {
      r[w] += sign * a[w & 1] * b[(w >> 1) & 1];
    }
  }
}

void TensorApply3Avx512(const int32_t* const (*lv)[2], uint32_t lanes,
                        int64_t sign, int64_t* rows) {
  const int32_t* a0 = lv[0][0];
  const int32_t* a1 = lv[0][1];
  const int32_t* b0 = lv[1][0];
  const int32_t* b1 = lv[1][1];
  const int32_t* c0 = lv[2][0];
  const int32_t* c1 = lv[2][1];
  const bool neg = sign < 0;
  for (uint32_t j = 0; j < lanes; ++j) {
    // One lane's 8 words per zmm: ab via vpmuldq, then the third factor
    // via vpmullq (exact int64 products).
    const __m256i x32 = _mm256_setr_epi32(a0[j], a1[j], a0[j], a1[j],  //
                                          a0[j], a1[j], a0[j], a1[j]);
    const __m256i y32 = _mm256_setr_epi32(b0[j], b0[j], b1[j], b1[j],  //
                                          b0[j], b0[j], b1[j], b1[j]);
    const __m256i z32 = _mm256_setr_epi32(c0[j], c0[j], c0[j], c0[j],  //
                                          c1[j], c1[j], c1[j], c1[j]);
    const __m512i ab = _mm512_mul_epi32(_mm512_cvtepi32_epi64(x32),
                                        _mm512_cvtepi32_epi64(y32));
    const __m512i p = _mm512_mullo_epi64(ab, _mm512_cvtepi32_epi64(z32));
    int64_t* r = rows + static_cast<size_t>(j) * 8;
    __m512i acc = _mm512_loadu_si512(r);
    acc = neg ? _mm512_sub_epi64(acc, p) : _mm512_add_epi64(acc, p);
    _mm512_storeu_si512(r, acc);
  }
}

void TensorApplyAvx512(const int32_t* const (*lv)[2], uint32_t dims,
                       uint32_t lanes, int64_t sign, int64_t* rows) {
  switch (dims) {
    case 1:
      TensorApply1Avx512(lv, lanes, sign, rows);
      return;
    case 2:
      TensorApply2Avx512(lv, lanes, sign, rows);
      return;
    case 3:
      TensorApply3Avx512(lv, lanes, sign, rows);
      return;
    default:
      // 4-d tensor shapes are rare in serving: delegate to the ONE
      // portable ladder in kernels.cc (baseline codegen, bit-identical
      // by construction — no duplicated bit-identity-critical code).
      TensorApplyPortable(lv, dims, lanes, sign, rows);
      return;
  }
}

// ---------------------------------------------------------------------------
// Estimator z-loops: 8 instances per vector; the strided counter columns
// come in through 64-bit gathers and vcvtqq2pd, the w-loop stays serial
// so each instance's FP accumulation order matches scalar exactly.
// ---------------------------------------------------------------------------

inline __m512i StrideIndex(uint32_t num_words) {
  const int64_t n = num_words;
  return _mm512_setr_epi64(0, n, 2 * n, 3 * n, 4 * n, 5 * n, 6 * n, 7 * n);
}

// 8 contiguous 4-word counter rows -> 4 word-major double vectors
// (out[w] = [row0[w], ..., row7[w]]). Contiguous loads + two
// permutex2var + one 128-block shuffle per word beat four 8-lane
// gathers on every AVX-512 part so far.
inline void TransposeRows4(const int64_t* base, __m512d out[4]) {
  const __m512d d0 = _mm512_cvtepi64_pd(_mm512_loadu_si512(base));
  const __m512d d1 = _mm512_cvtepi64_pd(_mm512_loadu_si512(base + 8));
  const __m512d d2 = _mm512_cvtepi64_pd(_mm512_loadu_si512(base + 16));
  const __m512d d3 = _mm512_cvtepi64_pd(_mm512_loadu_si512(base + 24));
  for (uint32_t w = 0; w < 4; ++w) {
    // Lanes 0-3: [a[w], a[w+4], b[w], b[w+4]] — rows 2k, 2k+1 of each
    // register pair; upper lanes repeat (discarded by the block shuffle).
    const __m512i idx = _mm512_setr_epi64(w, w + 4, w + 8, w + 12,  //
                                          w, w + 4, w + 8, w + 12);
    const __m512d t01 = _mm512_permutex2var_pd(d0, idx, d1);
    const __m512d t23 = _mm512_permutex2var_pd(d2, idx, d3);
    out[w] = _mm512_shuffle_f64x2(t01, t23, 0x44);
  }
}

void RangeZAvx512(const int64_t* counters, uint32_t instances, uint32_t dims,
                  const int32_t* factors, double* z) {
  const uint32_t num_words = uint32_t{1} << dims;
  const __m512i stride = StrideIndex(num_words);
  uint32_t inst = 0;
  for (; inst + 8 <= instances; inst += 8) {
    __m512d q[4][2];
    for (uint32_t d = 0; d < dims; ++d) {
      for (uint32_t which = 0; which < 2; ++which) {
        q[d][which] = _mm512_cvtepi32_pd(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(
                factors + (static_cast<size_t>(d) * 2 + which) * instances +
                inst)));
      }
    }
    const int64_t* base = counters + static_cast<size_t>(inst) * num_words;
    __m512d acc = _mm512_setzero_pd();
    if (dims == 2) {
      // Serving's common shape: transpose the 8 rows once instead of
      // gathering per word.
      __m512d c[4];
      TransposeRows4(base, c);
      for (uint32_t w = 0; w < 4; ++w) {
        __m512d prod = _mm512_mul_pd(c[w], q[0][(w & 1) ? 0 : 1]);
        prod = _mm512_mul_pd(prod, q[1][((w >> 1) & 1) ? 0 : 1]);
        acc = _mm512_add_pd(acc, prod);
      }
    } else {
      for (uint32_t w = 0; w < num_words; ++w) {
        const __m512i c = GatherI64(stride, base + w);
        __m512d prod = _mm512_cvtepi64_pd(c);
        for (uint32_t d = 0; d < dims; ++d) {
          prod = _mm512_mul_pd(prod, q[d][((w >> d) & 1) ? 0 : 1]);
        }
        acc = _mm512_add_pd(acc, prod);
      }
    }
    _mm512_storeu_pd(z + inst, acc);
  }
  for (; inst < instances; ++inst) {
    double q_factor[4][2];
    for (uint32_t d = 0; d < dims; ++d) {
      q_factor[d][0] =
          factors[(static_cast<size_t>(d) * 2 + 0) * instances + inst];
      q_factor[d][1] =
          factors[(static_cast<size_t>(d) * 2 + 1) * instances + inst];
    }
    const int64_t* row = counters + static_cast<size_t>(inst) * num_words;
    double acc = 0.0;
    for (uint32_t w = 0; w < num_words; ++w) {
      double prod = static_cast<double>(row[w]);
      for (uint32_t d = 0; d < dims; ++d) {
        prod *= q_factor[d][((w >> d) & 1) ? 0 : 1];
      }
      acc += prod;
    }
    z[inst] = acc;
  }
}

void JoinZAvx512(const int64_t* r, const int64_t* s, uint32_t instances,
                 uint32_t dims, double* z) {
  const uint32_t num_words = uint32_t{1} << dims;
  const uint32_t cmask = num_words - 1;
  const double scale = 1.0 / static_cast<double>(uint64_t{1} << dims);
  const __m512d vscale = _mm512_set1_pd(scale);
  const __m512i stride = StrideIndex(num_words);
  uint32_t inst = 0;
  for (; inst + 8 <= instances; inst += 8) {
    const int64_t* rb = r + static_cast<size_t>(inst) * num_words;
    const int64_t* sb = s + static_cast<size_t>(inst) * num_words;
    __m512d acc = _mm512_setzero_pd();
    if (dims == 2) {
      // Transposed rows once per side; w ^ 3 just reverses the word
      // vectors, and the w-ascending adds keep the scalar FP order.
      __m512d rv[4], sv[4];
      TransposeRows4(rb, rv);
      TransposeRows4(sb, sv);
      for (uint32_t w = 0; w < 4; ++w) {
        acc = _mm512_add_pd(acc, _mm512_mul_pd(rv[w], sv[w ^ 3]));
      }
    } else {
      for (uint32_t w = 0; w < num_words; ++w) {
        const __m512d rv =
            _mm512_cvtepi64_pd(GatherI64(stride, rb + w));
        const __m512d sv = _mm512_cvtepi64_pd(
            GatherI64(stride, sb + (w ^ cmask)));
        acc = _mm512_add_pd(acc, _mm512_mul_pd(rv, sv));
      }
    }
    _mm512_storeu_pd(z + inst, _mm512_mul_pd(acc, vscale));
  }
  for (; inst < instances; ++inst) {
    const int64_t* rr = r + static_cast<size_t>(inst) * num_words;
    const int64_t* sr = s + static_cast<size_t>(inst) * num_words;
    double acc = 0.0;
    for (uint32_t w = 0; w < num_words; ++w) {
      acc += static_cast<double>(rr[w]) * static_cast<double>(sr[w ^ cmask]);
    }
    z[inst] = acc * scale;
  }
}

void SelfJoinZAvx512(const int64_t* counters, uint32_t instances,
                     uint32_t num_words, uint32_t word, double* z) {
  const __m512i stride = StrideIndex(num_words);
  uint32_t inst = 0;
  for (; inst + 8 <= instances; inst += 8) {
    const int64_t* base =
        counters + static_cast<size_t>(inst) * num_words + word;
    const __m512d x =
        _mm512_cvtepi64_pd(GatherI64(stride, base));
    _mm512_storeu_pd(z + inst, _mm512_mul_pd(x, x));
  }
  for (; inst < instances; ++inst) {
    const double x = static_cast<double>(
        counters[static_cast<size_t>(inst) * num_words + word]);
    z[inst] = x * x;
  }
}

constexpr KernelOps kAvx512Ops = {
    "avx512",
    &CountColumnsPackedAvx512,
    &CountColumnsWideAvx512,
    &CountGatherPackedAvx512,
    &CountGatherWideAvx512,
    &LanesFromPackedAvx512,
    &LanesFromWideAvx512,
    &AddLanesAvx512,
    &SignsFromMaskAvx512,
    &TensorApplyAvx512,
    &RangeZAvx512,
    &JoinZAvx512,
    &SelfJoinZAvx512,
};

}  // namespace

const KernelOps* GetAvx512KernelOps() { return &kAvx512Ops; }

}  // namespace kernels
}  // namespace spatialsketch

#else  // !SPATIALSKETCH_COMPILE_AVX512

namespace spatialsketch {
namespace kernels {

const KernelOps* GetAvx512KernelOps() { return nullptr; }

}  // namespace kernels
}  // namespace spatialsketch

#endif  // SPATIALSKETCH_COMPILE_AVX512
