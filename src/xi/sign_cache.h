// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// PackedSignCache: lazily materialized packed sign COLUMNS, one per
// (dimension, dyadic id), shared by every sketch under one schema.
//
// The bulk loader's SignTable packs signs row-major (per instance block, a
// contiguous row over all ids) and rebuilds it per load batch, which
// amortizes over thousands of objects. The streaming update and query hot
// paths see ONE object or query at a time, so they want the transpose: for
// each of the handful of dyadic ids in a cover, the packed signs of ALL
// instances (bit j of word b = sign bit of instance 64b + j). Those
// columns depend only on the schema's seeds, so the schema owns one cache
// and every dataset / query under it shares the work: the GF(2^64) cube
// and the per-instance sign bits of an id are computed exactly once,
// the first time any update or query touches that id.
//
// Concurrency: Column() is safe from any number of threads with no lock
// on the hit path (one acquire load per lookup). Misses build the column
// off to the side and publish it with a compare-exchange; a losing racer
// frees its copy. The per-dimension slot array is itself allocated lazily
// (first touch of that dimension) so schemas that only ever bulk-load
// never pay the O(num_ids) pointer array.
//
// Huge domains: the dense slot array is O(num_ids) pointers, which is
// fine for the serving-typical domains (2^19 ids ~ 4 MB) but not for the
// 40-bit domains the schema permits. Past kDenseSlotLimit ids the cache
// switches to sharded hash maps — a short shard lock per lookup instead
// of a lock-free load; rare-config correctness over peak speed. Either
// way, only TOUCHED ids ever get a column, and columns are kept for the
// schema's lifetime (no eviction: the id working set of a workload is
// bounded by its coordinate universe).

#ifndef SPATIALSKETCH_XI_SIGN_CACHE_H_
#define SPATIALSKETCH_XI_SIGN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/xi/seed.h"

namespace spatialsketch {

class PackedSignCache {
 public:
  /// One entry of seeds_per_dim per dimension, each holding that
  /// dimension's per-instance seeds in instance order; num_ids_per_dim is
  /// the (exclusive) dyadic-id bound of each dimension's domain. Every
  /// dimension must have the same number of instances.
  PackedSignCache(std::vector<std::vector<XiSeed>> seeds_per_dim,
                  std::vector<uint64_t> num_ids_per_dim);
  ~PackedSignCache();

  uint32_t num_instances() const { return num_instances_; }

  /// Packed words per column: ceil(num_instances / 64).
  uint32_t num_blocks() const { return num_blocks_; }

  /// Packed sign column of `id` in `dim`: num_blocks() words, bit j of
  /// word b set iff xi = -1 for instance 64b + j. Bits of lanes beyond
  /// num_instances() are zero. The pointer stays valid for the cache's
  /// lifetime (i.e. the schema's).
  const uint64_t* Column(uint32_t dim, uint64_t id) const;

  /// Largest id universe served by the dense slot array (32 MB of
  /// pointers per dimension); larger domains use the sharded maps.
  static constexpr uint64_t kDenseSlotLimit = uint64_t{1} << 22;

 private:
  static constexpr uint32_t kMapShards = 16;

  struct DimCache {
    std::vector<XiSeed> seeds;
    uint64_t num_ids = 0;
    // Dense representation (num_ids <= kDenseSlotLimit).
    std::atomic<std::atomic<uint64_t*>*> slots{nullptr};
    std::mutex init_mu;
    // Sparse representation, sharded by low id bits.
    std::mutex shard_mu[kMapShards];
    std::unordered_map<uint64_t, uint64_t*> shard_map[kMapShards];
  };

  std::atomic<uint64_t*>* Slots(DimCache& dc) const;
  const uint64_t* ColumnSparse(DimCache& dc, uint32_t dim,
                               uint64_t id) const;
  uint64_t* BuildColumn(const DimCache& dc, uint64_t id) const;

  uint32_t num_instances_;
  uint32_t num_blocks_;
  mutable std::vector<std::unique_ptr<DimCache>> dims_;
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_XI_SIGN_CACHE_H_
