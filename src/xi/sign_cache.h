// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// PackedSignCache: lazily materialized packed sign COLUMNS, one per
// (dimension, dyadic id), shared by every sketch under one schema.
//
// The bulk loader's SignTable packs signs row-major (per instance block, a
// contiguous row over all ids) and rebuilds it per load batch, which
// amortizes over thousands of objects. The streaming update and query hot
// paths see ONE object or query at a time, so they want the transpose: for
// each of the handful of dyadic ids in a cover, the packed signs of ALL
// instances (bit j of word b = sign bit of instance 64b + j). Those
// columns depend only on the schema's seeds, so the schema owns one cache
// and every dataset / query under it shares the work: the GF(2^64) cube
// and the per-instance sign bits of an id are computed exactly once,
// the first time any update or query touches that id.
//
// Concurrency: Column() is safe from any number of threads with no lock
// on the hit path (one acquire load per lookup). Misses build the column
// off to the side and publish it with a compare-exchange; a losing racer
// frees its copy. The per-dimension slot array is itself allocated lazily
// (first touch of that dimension) so schemas that only ever bulk-load
// never pay the O(num_ids) pointer array.
//
// Huge domains: the dense slot array is O(num_ids) pointers, which is
// fine for the serving-typical domains (2^19 ids ~ 4 MB) but not for the
// 40-bit domains the schema permits. Past kDenseSlotLimit ids the cache
// switches to sharded hash maps — a short shard lock per lookup instead
// of a lock-free load; rare-config correctness over peak speed. Either
// way, only TOUCHED ids ever get a column.
//
// Eviction: by default columns are kept for the schema's lifetime (the
// id working set of one workload is bounded by its coordinate universe).
// Under multi-tenant CHURN — thousands of schemas created and dropped,
// each touching fresh coordinates — the resident bytes grow without
// bound, so a process-wide budget (SetGlobalBudget) arms a cheap
// clock-style sweep: dense dimensions get a second-chance ref byte per
// slot and a clock hand, sparse dimensions drop whole shards round-robin.
// Because readers hold raw column pointers with no per-read lock, evicted
// columns are RETIRED, not freed: a reader takes a Pin before its first
// lookup, and retired columns are freed only at a moment when no pin is
// held. Any holder of a retired pointer pinned BEFORE the column was
// unpublished, so observing zero pins after retirement proves no holder
// remains. With no budget set (the default) nothing is ever evicted and
// pointers keep their historical cache-lifetime validity.

#ifndef SPATIALSKETCH_XI_SIGN_CACHE_H_
#define SPATIALSKETCH_XI_SIGN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/xi/seed.h"

namespace spatialsketch {

/// Health counters of one schema-owned cache (relaxed atomics snapshot;
/// approximate under concurrency, exact once quiescent).
struct XiCacheStats {
  uint64_t hits = 0;     ///< lookups served from a published entry
  uint64_t misses = 0;   ///< lookups that built (or raced to build)
  uint64_t evicted = 0;  ///< entries retired by the budget sweep
  uint64_t bytes = 0;    ///< resident entry bytes right now
};

class PackedSignCache {
 public:
  /// One entry of seeds_per_dim per dimension, each holding that
  /// dimension's per-instance seeds in instance order; num_ids_per_dim is
  /// the (exclusive) dyadic-id bound of each dimension's domain. Every
  /// dimension must have the same number of instances.
  PackedSignCache(std::vector<std::vector<XiSeed>> seeds_per_dim,
                  std::vector<uint64_t> num_ids_per_dim);
  ~PackedSignCache();

  /// RAII read guard: while any Pin is alive, no column pointer obtained
  /// from this cache is freed (eviction retires instead). Take one
  /// BEFORE the first Column() call of a read episode and hold it for as
  /// long as the returned pointers are dereferenced. Cheap (one atomic
  /// RMW each way); movable, not copyable.
  class Pin {
   public:
    Pin() = default;
    explicit Pin(const PackedSignCache* cache) : cache_(cache) {
      if (cache_ != nullptr) cache_->pins_.fetch_add(1);
    }
    ~Pin() { Release(); }
    Pin(Pin&& other) noexcept : cache_(other.cache_) {
      other.cache_ = nullptr;
    }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        Release();
        cache_ = other.cache_;
        other.cache_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

   private:
    void Release() {
      if (cache_ != nullptr && cache_->pins_.fetch_sub(1) == 1) {
        cache_->TryDrainRetired();
      }
      cache_ = nullptr;
    }
    const PackedSignCache* cache_ = nullptr;
  };

  uint32_t num_instances() const { return num_instances_; }

  /// Packed words per column: ceil(num_instances / 64).
  uint32_t num_blocks() const { return num_blocks_; }

  /// Packed sign column of `id` in `dim`: num_blocks() words, bit j of
  /// word b set iff xi = -1 for instance 64b + j. Bits of lanes beyond
  /// num_instances() are zero. With no global budget set the pointer
  /// stays valid for the cache's lifetime (i.e. the schema's); under a
  /// budget it stays valid while the caller's Pin is held.
  const uint64_t* Column(uint32_t dim, uint64_t id) const;

  /// This cache's health counters (see XiCacheStats).
  XiCacheStats stats() const;

  /// Process-wide resident-byte budget across ALL PackedSignCache
  /// instances; 0 (the default) disables eviction entirely. Read live on
  /// every miss, so it can be armed or resized at any time.
  static void SetGlobalBudget(uint64_t bytes);
  static uint64_t GlobalBudget();
  /// Resident bytes across all instances (the value the budget gates).
  static uint64_t GlobalBytes();

  /// Largest id universe served by the dense slot array (32 MB of
  /// pointers per dimension); larger domains use the sharded maps.
  static constexpr uint64_t kDenseSlotLimit = uint64_t{1} << 22;

 private:
  static constexpr uint32_t kMapShards = 16;

  struct DimCache {
    std::vector<XiSeed> seeds;
    uint64_t num_ids = 0;
    // Dense representation (num_ids <= kDenseSlotLimit).
    std::atomic<std::atomic<uint64_t*>*> slots{nullptr};
    std::mutex init_mu;
    // Second-chance ref bytes beside the dense slots, allocated lazily by
    // the first budget sweep; hits set them (relaxed) once present.
    std::atomic<std::atomic<uint8_t>*> refs{nullptr};
    uint64_t clock_hand = 0;  ///< dense sweep position (under retire_mu_)
    uint32_t next_shard = 0;  ///< sparse round-robin drop (under retire_mu_)
    // Sparse representation, sharded by low id bits.
    std::mutex shard_mu[kMapShards];
    std::unordered_map<uint64_t, uint64_t*> shard_map[kMapShards];
  };

  std::atomic<uint64_t*>* Slots(DimCache& dc) const;
  const uint64_t* ColumnSparse(DimCache& dc, uint32_t dim,
                               uint64_t id) const;
  uint64_t* BuildColumn(const DimCache& dc, uint64_t id) const;
  /// Bytes of one column allocation.
  size_t ColumnBytes() const { return size_t{8} * num_blocks_; }
  /// Account a newly published column and clock-sweep `dc` if the global
  /// budget is exceeded.
  void AccountPublish(DimCache& dc) const;
  /// Free retired columns iff no pin is held (see the file comment).
  void TryDrainRetired() const;

  uint32_t num_instances_;
  uint32_t num_blocks_;
  mutable std::vector<std::unique_ptr<DimCache>> dims_;

  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> evicted_{0};
  mutable std::atomic<uint64_t> bytes_{0};
  mutable std::atomic<uint64_t> pins_{0};
  /// Serializes sweeps and guards `retired_` + the clock bookkeeping.
  mutable std::mutex retire_mu_;
  mutable std::vector<uint64_t*> retired_;
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_XI_SIGN_CACHE_H_
