// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Scalar kernel variants and the runtime dispatch. The scalar kernels are
// the canonical bit-identity reference: they are plain portable code,
// deliberately compiled in this TU (baseline ISA, default flags) so their
// codegen is what every host gets when the vector units are absent or
// overridden off. The AVX2 / AVX-512 tables live in kernels_avx2.cc /
// kernels_avx512.cc, compiled with per-file vector flags.

#include "src/xi/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/xi/bitslice.h"

namespace spatialsketch {
namespace kernels {

// Defined in their own per-file-flagged TUs; return nullptr when that TU
// was compiled without vector support (non-x86 host or old compiler).
const KernelOps* GetAvx2KernelOps();
const KernelOps* GetAvx512KernelOps();

namespace {

// ---------------------------------------------------------------------------
// Scalar kernels. The counting primitives delegate to the inline
// bitslice.h definitions — inside this TU the optimizer inlines and
// specializes them into the kernel bodies, which is the codegen the old
// internal-linkage copy in dataset_sketch.cc existed to force.
// ---------------------------------------------------------------------------

void CountColumnsPackedScalar(const uint64_t* const* cols, size_t m,
                              uint32_t blocks, uint64_t* packed,
                              uint64_t* planes) {
  bitslice::CountColumnsPackedAllBlocks(cols, m, blocks, packed, planes);
}

void CountColumnsWideScalar(const uint64_t* const* cols, size_t m,
                            uint32_t blocks, int32_t* wide, uint64_t* packed,
                            uint64_t* planes) {
  std::fill(wide, wide + static_cast<size_t>(blocks) * 64, 0);
  size_t done = 0;
  while (done < m) {
    // <= 252 per pass keeps the byte-packed intermediate wrap-free.
    const size_t part = std::min<size_t>(252, m - done);
    bitslice::CountColumnsPackedAllBlocks(cols + done, part, blocks, packed,
                                          planes);
    for (uint32_t blk = 0; blk < blocks; ++blk) {
      const uint64_t* out8 = packed + static_cast<size_t>(blk) * 8;
      int32_t* w = wide + static_cast<size_t>(blk) * 64;
      for (uint32_t j = 0; j < 64; ++j) w[j] += bitslice::PackedLane(out8, j);
    }
    done += part;
  }
}

void CountGatherPackedScalar(const uint64_t* row, const uint64_t* ids,
                             size_t m, uint64_t out8[8]) {
  bitslice::CountOnesPacked([&](size_t i) { return row[ids[i]]; }, m, out8);
}

void CountGatherWideScalar(const uint64_t* row, const uint64_t* ids, size_t m,
                           int32_t out[64]) {
  bitslice::CountOnesWide([&](size_t i) { return row[ids[i]]; }, m, out);
}

void LanesFromPackedScalar(const uint64_t packed8[8], int32_t m,
                           int32_t out[64]) {
  for (uint32_t j = 0; j < 64; ++j) {
    out[j] = m - 2 * bitslice::PackedLane(packed8, j);
  }
}

void LanesFromWideScalar(const int32_t wide[64], int32_t m, int32_t out[64]) {
  for (uint32_t j = 0; j < 64; ++j) out[j] = m - 2 * wide[j];
}

void AddLanesScalar(const int32_t a[64], const int32_t b[64],
                    int32_t out[64]) {
  for (uint32_t j = 0; j < 64; ++j) out[j] = a[j] + b[j];
}

void SignsFromMaskScalar(uint64_t mask, int32_t out[64]) {
  for (uint32_t j = 0; j < 64; ++j) {
    out[j] = 1 - 2 * static_cast<int32_t>((mask >> j) & 1);
  }
}

// Iterated partial products, unrolled per dimensionality so the scalar
// path keeps the specialization the hot TU used to force by hand.
template <uint32_t kDims>
void TensorApplyScalarT(const int32_t* const (*lv)[2], uint32_t lanes,
                        int64_t sign, int64_t* rows) {
  constexpr uint32_t kWords = 1u << kDims;
  int64_t* row = rows;
  for (uint32_t j = 0; j < lanes; ++j, row += kWords) {
    int64_t part[kWords];
    part[0] = sign;
    uint32_t width = 1;
    for (uint32_t d = 0; d < kDims; ++d) {
      const int64_t a = lv[d][0][j];
      const int64_t b = lv[d][1][j];
      for (uint32_t t = width; t-- > 0;) {
        part[width + t] = part[t] * b;
        part[t] = part[t] * a;
      }
      width <<= 1;
    }
    for (uint32_t w = 0; w < kWords; ++w) row[w] += part[w];
  }
}

void RangeZScalar(const int64_t* counters, uint32_t instances, uint32_t dims,
                  const int32_t* factors, double* z) {
  const uint32_t num_words = uint32_t{1} << dims;
  for (uint32_t inst = 0; inst < instances; ++inst) {
    double q_factor[8][2];
    for (uint32_t d = 0; d < dims; ++d) {
      q_factor[d][0] = factors[(static_cast<size_t>(d) * 2 + 0) * instances +
                               inst];
      q_factor[d][1] = factors[(static_cast<size_t>(d) * 2 + 1) * instances +
                               inst];
    }
    double acc = 0.0;
    const int64_t* row = counters + static_cast<size_t>(inst) * num_words;
    for (uint32_t w = 0; w < num_words; ++w) {
      double prod = static_cast<double>(row[w]);
      for (uint32_t d = 0; d < dims; ++d) {
        prod *= q_factor[d][((w >> d) & 1) ? 0 : 1];
      }
      acc += prod;
    }
    z[inst] = acc;
  }
}

void JoinZScalar(const int64_t* r, const int64_t* s, uint32_t instances,
                 uint32_t dims, double* z) {
  const uint32_t num_words = uint32_t{1} << dims;
  const uint32_t cmask = num_words - 1;
  const double scale = 1.0 / static_cast<double>(uint64_t{1} << dims);
  for (uint32_t inst = 0; inst < instances; ++inst) {
    const int64_t* rr = r + static_cast<size_t>(inst) * num_words;
    const int64_t* sr = s + static_cast<size_t>(inst) * num_words;
    double acc = 0.0;
    for (uint32_t w = 0; w < num_words; ++w) {
      acc += static_cast<double>(rr[w]) * static_cast<double>(sr[w ^ cmask]);
    }
    z[inst] = acc * scale;
  }
}

void SelfJoinZScalar(const int64_t* counters, uint32_t instances,
                     uint32_t num_words, uint32_t word, double* z) {
  for (uint32_t inst = 0; inst < instances; ++inst) {
    const double x = static_cast<double>(
        counters[static_cast<size_t>(inst) * num_words + word]);
    z[inst] = x * x;
  }
}

constexpr KernelOps kScalarOps = {
    "scalar",
    &CountColumnsPackedScalar,
    &CountColumnsWideScalar,
    &CountGatherPackedScalar,
    &CountGatherWideScalar,
    &LanesFromPackedScalar,
    &LanesFromWideScalar,
    &AddLanesScalar,
    &SignsFromMaskScalar,
    &TensorApplyPortable,
    &RangeZScalar,
    &JoinZScalar,
    &SelfJoinZScalar,
};

// ---------------------------------------------------------------------------
// Dispatch: cpuid feature tests + one-time selection.
// ---------------------------------------------------------------------------

bool CpuHasAvx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  // The 512-bit kernels use BW byte ops, DQ 64-bit multiplies /
  // int64->double converts, and VL 256-bit forms; every AVX-512 server
  // part since Skylake-X ships all four together.
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0;
#else
  return false;
#endif
}

std::atomic<const KernelOps*> g_active{nullptr};

const char* KindName(Kind k) {
  switch (k) {
    case Kind::kScalar:
      return "scalar";
    case Kind::kAvx2:
      return "avx2";
    case Kind::kAvx512:
      return "avx512";
  }
  return "scalar";
}

Kind ApplyOverrideInner(const char* value);

const KernelOps* ResolveAuto() {
  if (const KernelOps* ops = OpsFor(Kind::kAvx512)) return ops;
  if (const KernelOps* ops = OpsFor(Kind::kAvx2)) return ops;
  return &kScalarOps;
}

const KernelOps* ResolveStartup() {
  const char* env = std::getenv("SPATIALSKETCH_KERNELS");
  if (env != nullptr && env[0] != '\0') {
    Kind picked = ApplyOverrideInner(env);
    return OpsFor(picked);
  }
  return ResolveAuto();
}

Kind KindOf(const KernelOps* ops) {
  if (ops != nullptr && ops == GetAvx512KernelOps()) return Kind::kAvx512;
  if (ops != nullptr && ops == GetAvx2KernelOps()) return Kind::kAvx2;
  return Kind::kScalar;
}

}  // namespace

void TensorApplyPortable(const int32_t* const (*lv)[2], uint32_t dims,
                         uint32_t lanes, int64_t sign, int64_t* rows) {
  switch (dims) {
    case 1:
      TensorApplyScalarT<1>(lv, lanes, sign, rows);
      return;
    case 2:
      TensorApplyScalarT<2>(lv, lanes, sign, rows);
      return;
    case 3:
      TensorApplyScalarT<3>(lv, lanes, sign, rows);
      return;
    default:
      TensorApplyScalarT<4>(lv, lanes, sign, rows);
      return;
  }
}

const KernelOps* OpsFor(Kind k) {
  switch (k) {
    case Kind::kScalar:
      return &kScalarOps;
    case Kind::kAvx2:
      return CpuHasAvx2() ? GetAvx2KernelOps() : nullptr;
    case Kind::kAvx512:
      return CpuHasAvx512() ? GetAvx512KernelOps() : nullptr;
  }
  return nullptr;
}

bool Available(Kind k) { return OpsFor(k) != nullptr; }

Kind Best() { return KindOf(ResolveAuto()); }

const KernelOps& Ops() {
  const KernelOps* active = g_active.load(std::memory_order_acquire);
  if (active == nullptr) {
    const KernelOps* resolved = ResolveStartup();
    // Racers resolve identically (env + cpuid are stable); first store
    // wins and the rest agree.
    g_active.store(resolved, std::memory_order_release);
    active = resolved;
  }
  return *active;
}

Kind Selected() { return KindOf(&Ops()); }

const char* SelectedName() { return Ops().name; }

Status ForceKernels(Kind k) {
  const KernelOps* ops = OpsFor(k);
  if (ops == nullptr) {
    return Status::FailedPrecondition(
        std::string("kernel variant unavailable on this host: ") +
        KindName(k));
  }
  g_active.store(ops, std::memory_order_release);
  return Status::OK();
}

Status ForceKernels(const std::string& name) {
  if (name == "scalar") return ForceKernels(Kind::kScalar);
  if (name == "avx2") return ForceKernels(Kind::kAvx2);
  if (name == "avx512") return ForceKernels(Kind::kAvx512);
  return Status::InvalidArgument(
      "unknown kernel variant '" + name +
      "' (expected scalar, avx2, or avx512)");
}

namespace {

Kind ApplyOverrideInner(const char* value) {
  Kind want;
  if (std::strcmp(value, "scalar") == 0) {
    want = Kind::kScalar;
  } else if (std::strcmp(value, "avx2") == 0) {
    want = Kind::kAvx2;
  } else if (std::strcmp(value, "avx512") == 0) {
    want = Kind::kAvx512;
  } else {
    std::fprintf(stderr,
                 "spatialsketch: ignoring unknown SPATIALSKETCH_KERNELS "
                 "value '%s' (expected scalar|avx2|avx512)\n",
                 value);
    return KindOf(ResolveAuto());
  }
  const KernelOps* ops = OpsFor(want);
  if (ops == nullptr) {
    const KernelOps* fallback = ResolveAuto();
    std::fprintf(stderr,
                 "spatialsketch: SPATIALSKETCH_KERNELS=%s unavailable on "
                 "this host; using %s\n",
                 value, fallback->name);
    return KindOf(fallback);
  }
  return want;
}

}  // namespace

Kind ApplyOverride(const char* value) {
  const Kind picked = (value == nullptr || value[0] == '\0')
                          ? KindOf(ResolveAuto())
                          : ApplyOverrideInner(value);
  g_active.store(OpsFor(picked), std::memory_order_release);
  return picked;
}

std::string CpuFeatureString() {
  std::string out;
  auto add = [&](const char* name, bool have) {
    if (!have) return;
    if (!out.empty()) out += ',';
    out += name;
  };
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  add("avx2", __builtin_cpu_supports("avx2") != 0);
  add("avx512f", __builtin_cpu_supports("avx512f") != 0);
  add("avx512bw", __builtin_cpu_supports("avx512bw") != 0);
  add("avx512dq", __builtin_cpu_supports("avx512dq") != 0);
  add("avx512vl", __builtin_cpu_supports("avx512vl") != 0);
#endif
  return out;
}

}  // namespace kernels
}  // namespace spatialsketch
