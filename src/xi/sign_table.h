// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Packed sign tables: for a batch of xi-family instances over the same
// index domain, precompute every sign once and store them bit-packed,
// 64 instances per word. Bulk sketch loading then replaces per-instance
// GF(2^64) evaluations by table lookups: the dyadic-id universe (2n - 1
// ids) is tiny compared to instances x objects.
//
// Layout is block-major: block b (instances 64b .. 64b+63) owns a
// contiguous row of `num_ids` words, so the per-object inner loop walks a
// single row with good locality.

#ifndef SPATIALSKETCH_XI_SIGN_TABLE_H_
#define SPATIALSKETCH_XI_SIGN_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/xi/bch_family.h"
#include "src/xi/seed.h"

namespace spatialsketch {

/// Bit-packed signs for a span of instances over ids [0, num_ids).
/// Bit j of Row(block)[id] is 0 for xi=+1 and 1 for xi=-1 of instance
/// 64*block + j.
class SignTable {
 public:
  /// Build the table for `seeds.size()` instances. Cost is
  /// O(num_ids * seeds.size()) with one GF(2^64) cube per id (shared
  /// across instances).
  SignTable(const std::vector<XiSeed>& seeds, uint64_t num_ids);

  uint64_t num_ids() const { return num_ids_; }
  uint32_t num_instances() const { return num_instances_; }
  uint32_t num_blocks() const { return num_blocks_; }

  /// Row of packed sign words for one block; indexed by id.
  const uint64_t* Row(uint32_t block) const {
    return bits_.data() + static_cast<size_t>(block) * num_ids_;
  }

  /// Scalar access (tests / slow paths): sign of `instance` at `id`.
  int Sign(uint32_t instance, uint64_t id) const {
    const uint64_t word = Row(instance / 64)[id];
    return 1 - 2 * static_cast<int>((word >> (instance % 64)) & 1);
  }

 private:
  uint64_t num_ids_;
  uint32_t num_instances_;
  uint32_t num_blocks_;
  std::vector<uint64_t> bits_;
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_XI_SIGN_TABLE_H_
