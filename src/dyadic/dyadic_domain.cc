#include "src/dyadic/dyadic_domain.h"

namespace spatialsketch {

DyadicDomain::DyadicDomain(uint32_t log2_size, uint32_t max_level)
    : h_(log2_size), max_level_(max_level) {
  SKETCH_CHECK(log2_size >= 1 && log2_size <= 40);
}

std::vector<uint64_t> DyadicDomain::IntervalCover(Coord a, Coord b) const {
  std::vector<uint64_t> out;
  ForEachCoverId(a, b, [&](uint64_t id) { out.push_back(id); });
  return out;
}

std::vector<uint64_t> DyadicDomain::PointCover(Coord a) const {
  std::vector<uint64_t> out;
  ForEachPointCoverId(a, [&](uint64_t id) { out.push_back(id); });
  return out;
}

uint64_t DyadicDomain::CoverSize(Coord a, Coord b) const {
  uint64_t n = 0;
  ForEachCoverId(a, b, [&](uint64_t) { ++n; });
  return n;
}

void DyadicDomain::IdRange(uint64_t id, Coord* lo, Coord* hi) const {
  SKETCH_DCHECK(id >= 1 && id < num_ids());
  const uint32_t level = LevelOf(id);
  const uint64_t first_at_level = uint64_t{1} << (h_ - level);
  const uint64_t pos = id - first_at_level;
  *lo = pos << level;
  *hi = *lo + (Coord{1} << level) - 1;
}

}  // namespace spatialsketch
