#include "src/dyadic/quantizer.h"

#include <cmath>

namespace spatialsketch {

Result<Quantizer> Quantizer::Create(double lo, double hi, uint32_t bits) {
  if (!(lo < hi)) {
    return Status::InvalidArgument("quantizer range must satisfy lo < hi");
  }
  if (bits < 1 || bits > 40) {
    return Status::InvalidArgument("quantizer bits must be in [1, 40]");
  }
  return Quantizer(lo, hi, bits);
}

Quantizer::Quantizer(double lo, double hi, uint32_t bits)
    : lo_(lo), hi_(hi), bits_(bits) {
  const double cells = std::ldexp(1.0, static_cast<int>(bits));
  scale_ = cells / (hi - lo);
}

Coord Quantizer::ToGrid(double x) const {
  if (x <= lo_) return 0;
  const Coord max_cell = (Coord{1} << bits_) - 1;
  if (x >= hi_) return max_cell;
  const double cell = std::floor((x - lo_) * scale_);
  const Coord c = static_cast<Coord>(cell);
  return c > max_cell ? max_cell : c;
}

double Quantizer::ToReal(Coord g) const {
  return lo_ + static_cast<double>(g) / scale_;
}

Box Quantizer::ToGridBox(const double* lo, const double* hi,
                         uint32_t dims) const {
  Box b;
  for (uint32_t i = 0; i < dims; ++i) {
    b.lo[i] = ToGrid(lo[i]);
    b.hi[i] = ToGrid(hi[i]);
  }
  return b;
}

}  // namespace spatialsketch
