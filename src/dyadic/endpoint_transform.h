// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Endpoint transformation of Section 5.2: Assumption 1 (no interval of R
// shares an endpoint coordinate with any interval of S) is enforced for
// arbitrary inputs by embedding the domain N = {0..n-1} into
// M = {0..3n-1}: coordinate x maps to 3x+1, and every S-interval is shrunk
// "a little": [c, d] becomes [3c+2, 3d] (i.e. [c+, d-]). The spatial-join
// result is unchanged (overlap(r,s) <=> overlap(r', s') for the strict
// Definition-1 semantics) while no transformed R endpoint can equal a
// transformed S endpoint (R endpoints are 1 mod 3, S endpoints are 2 or 0
// mod 3). Domain size grows by at most a factor 3 (two extra dyadic
// levels).

#ifndef SPATIALSKETCH_DYADIC_ENDPOINT_TRANSFORM_H_
#define SPATIALSKETCH_DYADIC_ENDPOINT_TRANSFORM_H_

#include <cstdint>

#include "src/dyadic/dyadic_domain.h"
#include "src/geom/box.h"

namespace spatialsketch {

/// Stateless mapping helpers for the Section 5.2 transformation.
class EndpointTransform {
 public:
  /// Transformed image of an original coordinate ("x itself").
  static Coord MapPoint(Coord x) { return 3 * x + 1; }

  /// "x+": the value immediately above x in the augmented domain.
  static Coord MapPointPlus(Coord x) { return 3 * x + 2; }

  /// "x-": the value immediately below x in the augmented domain.
  /// Requires x >= 1... not enforced: 3x is the '-' of x for any x >= 0
  /// (for x=0 there is nothing below it to collide with).
  static Coord MapPointMinus(Coord x) { return 3 * x; }

  /// log2 size of the transformed domain for an original h-bit domain:
  /// 3 * 2^h <= 2^{h+2}.
  static uint32_t TransformedLog2(uint32_t log2_size) {
    return log2_size + 2;
  }

  /// Transformed R-side box: endpoints map through MapPoint.
  static Box MapR(const Box& b, uint32_t dims);

  /// Transformed-and-shrunk S-side box: [c, d] -> [c+, d-]. The box must
  /// be non-degenerate in every dimension (degenerate objects cannot
  /// contribute to a strict spatial join; callers drop them).
  static Box ShrinkS(const Box& b, uint32_t dims);
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_DYADIC_ENDPOINT_TRANSFORM_H_
