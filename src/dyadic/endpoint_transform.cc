#include "src/dyadic/endpoint_transform.h"

namespace spatialsketch {

Box EndpointTransform::MapR(const Box& b, uint32_t dims) {
  Box out;
  for (uint32_t i = 0; i < dims; ++i) {
    out.lo[i] = MapPoint(b.lo[i]);
    out.hi[i] = MapPoint(b.hi[i]);
  }
  return out;
}

Box EndpointTransform::ShrinkS(const Box& b, uint32_t dims) {
  Box out;
  for (uint32_t i = 0; i < dims; ++i) {
    SKETCH_DCHECK(b.lo[i] < b.hi[i]);  // non-degenerate
    out.lo[i] = MapPointPlus(b.lo[i]);
    out.hi[i] = MapPointMinus(b.hi[i]);
  }
  return out;
}

}  // namespace spatialsketch
