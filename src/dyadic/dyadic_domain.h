// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Dyadic-interval machinery (Section 3.1 of the paper).
//
// The coordinate domain N = [0, 2^h) is organized into dyadic intervals:
// level i holds the 2^{h-i} aligned intervals of size 2^i. We number the
// 2^{h+1} - 1 dyadic intervals with the classic heap scheme: the root
// (level h, the whole domain) is id 1, the children of id v are 2v and
// 2v+1, and the leaf for coordinate x is id 2^h + x. The id is what the
// xi-families are indexed by.
//
// Key facts used by the sketches:
//  * Lemma 2: the dyadic cover of [a,b] (minimal partition into dyadic
//    intervals) has at most 2h members;
//  * Lemma 3: the dyadic point cover of a coordinate (all dyadic intervals
//    containing it) has exactly h+1 members, one per level;
//  * Lemma 4: c in [a,b] iff the two covers share exactly one interval.
//
// Section 6.5 ("taking data properties into account") caps the usable
// levels at max_level: covers may only use intervals of size <= 2^max_level.
// A cap of 0 degenerates dyadic sketches into the standard sketches of
// Equation (1). All three facts above continue to hold under a cap (the
// capped interval cover is still a partition, and the capped point cover
// still contains every capped dyadic interval containing the point).

#ifndef SPATIALSKETCH_DYADIC_DYADIC_DOMAIN_H_
#define SPATIALSKETCH_DYADIC_DYADIC_DOMAIN_H_

#include <cstdint>
#include <vector>

#include "src/common/bits.h"
#include "src/common/macros.h"

namespace spatialsketch {

/// Coordinate type for the discrete data space.
using Coord = uint64_t;

/// One dimension's dyadic structure. Cheap value type.
class DyadicDomain {
 public:
  /// Domain [0, 2^log2_size); covers use levels 0..max_level only.
  /// max_level defaults to log2_size (no cap). log2_size <= 40 keeps the
  /// id universe within table-friendly bounds.
  explicit DyadicDomain(uint32_t log2_size, uint32_t max_level = kNoCap);

  static constexpr uint32_t kNoCap = 0xFFFFFFFFu;

  uint32_t log2_size() const { return h_; }
  uint32_t max_level() const { return max_level_; }
  Coord size() const { return Coord{1} << h_; }

  /// Number of distinct ids (exclusive upper bound on any emitted id):
  /// ids live in [1, 2^{h+1}).
  uint64_t num_ids() const { return uint64_t{2} << h_; }

  /// Heap id of the level-0 (leaf) interval of coordinate x.
  uint64_t LeafId(Coord x) const {
    SKETCH_DCHECK(x < size());
    return (uint64_t{1} << h_) + x;
  }

  /// Level of a dyadic id (leaf = 0, root = h).
  uint32_t LevelOf(uint64_t id) const { return h_ - FloorLog2(id); }

  /// Visit the ids of the (capped) dyadic cover of [a, b] (inclusive).
  /// The visited intervals partition [a, b]. fn(uint64_t id).
  template <typename Fn>
  void ForEachCoverId(Coord a, Coord b, Fn&& fn) const {
    SKETCH_DCHECK(a <= b);
    SKETCH_DCHECK(b < size());
    uint64_t l = a + (uint64_t{1} << h_);
    uint64_t r = b + (uint64_t{1} << h_) + 1;  // exclusive
    while (l < r) {
      if (l & 1) EmitCapped(l++, fn);
      if (r & 1) EmitCapped(--r, fn);
      l >>= 1;
      r >>= 1;
    }
  }

  /// Visit the ids of the (capped) dyadic point cover of coordinate a:
  /// all dyadic intervals of level <= max_level containing a, lowest level
  /// first. fn(uint64_t id).
  template <typename Fn>
  void ForEachPointCoverId(Coord a, Fn&& fn) const {
    SKETCH_DCHECK(a < size());
    uint64_t id = LeafId(a);
    const uint32_t top = EffectiveMaxLevel();
    for (uint32_t level = 0; level <= top; ++level) {
      fn(id);
      id >>= 1;
    }
  }

  /// Convenience: materialized covers (tests and query-side code).
  std::vector<uint64_t> IntervalCover(Coord a, Coord b) const;
  std::vector<uint64_t> PointCover(Coord a) const;

  /// Number of ids in the capped interval cover of [a, b].
  uint64_t CoverSize(Coord a, Coord b) const;

  /// Coordinate range [lo, hi] covered by a dyadic id.
  void IdRange(uint64_t id, Coord* lo, Coord* hi) const;

  /// Effective cap: min(max_level, h).
  uint32_t EffectiveMaxLevel() const {
    return max_level_ < h_ ? max_level_ : h_;
  }

  friend bool operator==(const DyadicDomain& a, const DyadicDomain& b) {
    return a.h_ == b.h_ && a.max_level_ == b.max_level_;
  }

 private:
  // Emit id if its level respects the cap; otherwise emit its level-cap
  // descendants (which partition the same range).
  template <typename Fn>
  void EmitCapped(uint64_t id, Fn&& fn) const {
    const uint32_t level = LevelOf(id);
    const uint32_t top = EffectiveMaxLevel();
    if (level <= top) {
      fn(id);
      return;
    }
    const uint32_t down = level - top;
    const uint64_t first = id << down;
    const uint64_t count = uint64_t{1} << down;
    for (uint64_t k = 0; k < count; ++k) fn(first + k);
  }

  uint32_t h_;
  uint32_t max_level_;
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_DYADIC_DYADIC_DOMAIN_H_
