// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Real-valued domains (Section 5.1): spatial applications store
// coordinates with bounded precision, so a real interval [lo, hi] can be
// gridded onto the finite domain [0, 2^bits) that the sketches require.
// Sketch storage is logarithmic in the grid size, so generous bit budgets
// are cheap — this is the scaling advantage Section 5.1 highlights over
// histogram bucketing.

#ifndef SPATIALSKETCH_DYADIC_QUANTIZER_H_
#define SPATIALSKETCH_DYADIC_QUANTIZER_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/dyadic/dyadic_domain.h"
#include "src/geom/box.h"

namespace spatialsketch {

/// Uniform quantizer from [lo, hi] (real) onto [0, 2^bits) (grid).
class Quantizer {
 public:
  /// Validates lo < hi and 1 <= bits <= 40.
  static Result<Quantizer> Create(double lo, double hi, uint32_t bits);

  /// Grid cell of a real coordinate (clamped to the domain).
  Coord ToGrid(double x) const;

  /// Representative real value (cell lower edge) of a grid coordinate.
  double ToReal(Coord g) const;

  /// Quantize a real box given per-dimension real ranges equal to this
  /// quantizer's range (convenience for isotropic spaces).
  Box ToGridBox(const double* lo, const double* hi, uint32_t dims) const;

  uint32_t bits() const { return bits_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  Quantizer(double lo, double hi, uint32_t bits);

  double lo_;
  double hi_;
  uint32_t bits_;
  double scale_;  // cells per unit
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_DYADIC_QUANTIZER_H_
