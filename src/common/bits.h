// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Bit-manipulation helpers shared by the GF(2) and xi modules.

#ifndef SPATIALSKETCH_COMMON_BITS_H_
#define SPATIALSKETCH_COMMON_BITS_H_

#include <bit>
#include <cstdint>

namespace spatialsketch {

/// Parity (XOR of all bits) of x: 0 or 1.
inline uint32_t Parity64(uint64_t x) {
  return static_cast<uint32_t>(std::popcount(x) & 1);
}

/// True iff x is a power of two (x > 0).
inline bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x (x >= 1). Precondition: x <= 2^63.
inline uint64_t NextPowerOfTwo(uint64_t x) { return std::bit_ceil(x); }

/// floor(log2(x)) for x >= 1.
inline uint32_t FloorLog2(uint64_t x) {
  return 63u - static_cast<uint32_t>(std::countl_zero(x));
}

/// ceil(log2(x)) for x >= 1.
inline uint32_t CeilLog2(uint64_t x) {
  return x <= 1 ? 0 : FloorLog2(x - 1) + 1;
}

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_COMMON_BITS_H_
