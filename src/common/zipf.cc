#include "src/common/zipf.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"

namespace spatialsketch {

ZipfSampler::ZipfSampler(uint64_t n, double z) : n_(n), z_(z) {
  SKETCH_CHECK(n > 0);
  SKETCH_CHECK(z >= 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    acc += (z == 0.0) ? 1.0 : std::pow(static_cast<double>(i + 1), -z);
    cdf_[i] = acc;
  }
  const double total = acc;
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace spatialsketch
