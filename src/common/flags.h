// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Tiny command-line flag parser used by the benchmark and example binaries.
// Syntax: --name=value or --name value; bare --flag sets a boolean true.
// Unknown flags are reported via Status so binaries can fail fast.

#ifndef SPATIALSKETCH_COMMON_FLAGS_H_
#define SPATIALSKETCH_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace spatialsketch {

/// Parsed command line: a map from flag name (without leading dashes) to
/// its raw string value, plus positional arguments.
class Flags {
 public:
  /// Parse argv. Returns InvalidArgument on malformed flags.
  static Result<Flags> Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  /// Typed getters with defaults. Malformed numeric values fall back to the
  /// default (benchmarks prefer robustness over strictness here).
  std::string GetString(const std::string& name,
                        const std::string& def = "") const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_COMMON_FLAGS_H_
