// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Deterministic pseudo-random generators used throughout the library.
// We avoid <random> engines for reproducibility across standard-library
// implementations: all experiments must be bit-reproducible from a seed.

#ifndef SPATIALSKETCH_COMMON_RNG_H_
#define SPATIALSKETCH_COMMON_RNG_H_

#include <cstdint>

namespace spatialsketch {

/// SplitMix64: tiny 64-bit generator; used for seeding and for cheap
/// stateless hashing of seeds into streams.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256++: the library's general-purpose PRNG. Deterministic, fast,
/// and high quality; state is seeded via SplitMix64 so any 64-bit seed is
/// acceptable (including 0).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit word.
  uint64_t Next64();

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// nearly-divisionless method (bias is rejected away).
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformInRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double NextGaussian();

  /// Derive an independent child generator; useful for giving each sketch
  /// instance / worker its own stream.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_COMMON_RNG_H_
