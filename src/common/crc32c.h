// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum the durability layer frames every write-ahead-log record and
// checkpoint file with, and the store snapshot format (SST4) embeds so a
// bit-flipped blob is rejected instead of silently restored. Table-driven
// software implementation (slice-by-4): portable, no ISA requirements,
// and fast enough that framing is never the bottleneck next to the I/O
// it protects.

#ifndef SPATIALSKETCH_COMMON_CRC32C_H_
#define SPATIALSKETCH_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace spatialsketch {

/// CRC32C of `n` bytes at `data`, seeded with `init` (pass a previous
/// result to checksum data in pieces). The returned value is the raw
/// (final-XOR applied) checksum; Crc32c(a + b) == Crc32cExtend(Crc32c(a),
/// b) holds for any split.
uint32_t Crc32cExtend(uint32_t init, const void* data, size_t n);

/// CRC32C of a whole buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

/// CRC32C of a string's bytes.
inline uint32_t Crc32c(const std::string& s) {
  return Crc32c(s.data(), s.size());
}

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_COMMON_CRC32C_H_
