// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Zipfian sampler over {0, ..., n-1}: P(i) proportional to 1/(i+1)^z.
// Used by the Section 7.1 synthetic workloads ("intervals along each
// dimension generated independently according to a Zipfian distribution
// with Zipf parameter z").

#ifndef SPATIALSKETCH_COMMON_ZIPF_H_
#define SPATIALSKETCH_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace spatialsketch {

/// Inverse-CDF Zipf sampler. Construction is O(n) (builds the CDF once);
/// sampling is O(log n). z = 0 degenerates to the uniform distribution.
class ZipfSampler {
 public:
  /// \param n    domain size (must be > 0)
  /// \param z    skew parameter (>= 0); z=0 is uniform
  ZipfSampler(uint64_t n, double z);

  /// Draw a value in [0, n).
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double z() const { return z_; }

 private:
  uint64_t n_;
  double z_;
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i); cdf_.back() == 1.0
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_COMMON_ZIPF_H_
