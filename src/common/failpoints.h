// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Named fault-injection sites for the durability layer. A failpoint is a
// string-named hook compiled into the WAL / checkpoint / restore / fold
// paths; tests (or the environment) arm a site to make it fire, which the
// call site turns into a simulated crash, torn write, or I/O error.
//
// Cost model: in builds where failpoints are compiled out (Release without
// -DSPATIALSKETCH_FAILPOINTS=ON), SKETCH_FAILPOINT(name) is the literal
// constant `false` — zero instructions on the hot path. In enabled builds
// the fast path is a single relaxed atomic load of the global armed-site
// count (one predictable branch when nothing is armed).
//
// Arming:
//   - programmatic: failpoints::Arm("wal-append", /*skip=*/2, /*count=*/1)
//     fires on the 3rd hit, once.
//   - environment:  SPATIALSKETCH_FAILPOINTS="fsync=2:1,wal-append-torn"
//     (comma-separated name[=skip[:count]]; omitted skip/count default to
//     0/unlimited). Parsed once at first use.
//
// The catalog of sites lives in docs/DURABILITY.md.

#ifndef SPATIALSKETCH_COMMON_FAILPOINTS_H_
#define SPATIALSKETCH_COMMON_FAILPOINTS_H_

#include <cstdint>
#include <string>
#include <vector>

// Failpoints are compiled in for Debug builds always, and for Release
// builds only when the SPATIALSKETCH_FAILPOINTS CMake option defines the
// macro. Everything else sees a constant-false macro.
#if !defined(NDEBUG) || defined(SPATIALSKETCH_FAILPOINTS)
#define SPATIALSKETCH_FAILPOINTS_ENABLED 1
#else
#define SPATIALSKETCH_FAILPOINTS_ENABLED 0
#endif

namespace spatialsketch {
namespace failpoints {

#if SPATIALSKETCH_FAILPOINTS_ENABLED

/// True iff any site is currently armed (relaxed load; the fast path of
/// SKETCH_FAILPOINT). Exposed for the macro, not for direct use.
bool AnyArmed();

/// Full check: returns true (and consumes one firing) iff `name` is armed
/// and its skip count has been exhausted. Thread-safe.
bool Hit(const char* name);

#endif  // SPATIALSKETCH_FAILPOINTS_ENABLED

/// Arm a site: the first `skip` hits pass through, the next `count` hits
/// fire (count 0 = unlimited firings). Re-arming replaces the previous
/// configuration for that name. No-op when failpoints are compiled out.
void Arm(const std::string& name, uint64_t skip = 0, uint64_t count = 0);

/// Disarm one site (no-op if it was not armed or failpoints are compiled
/// out).
void Disarm(const std::string& name);

/// Disarm every site and reset hit counters. Tests call this in teardown.
void DisarmAll();

/// Number of times `name` fired (0 when compiled out). Lets tests assert
/// the injected fault was actually reached.
uint64_t FireCount(const std::string& name);

/// Names of currently armed sites (empty when compiled out). Diagnostic.
std::vector<std::string> ArmedSites();

}  // namespace failpoints
}  // namespace spatialsketch

#if SPATIALSKETCH_FAILPOINTS_ENABLED
/// Evaluates to true when the named site is armed and fires on this hit.
/// Usage: `if (SKETCH_FAILPOINT("fsync")) return Status::IOError(...);`
#define SKETCH_FAILPOINT(name)               \
  (::spatialsketch::failpoints::AnyArmed() && \
   ::spatialsketch::failpoints::Hit(name))
#else
#define SKETCH_FAILPOINT(name) (false)
#endif

#endif  // SPATIALSKETCH_COMMON_FAILPOINTS_H_
