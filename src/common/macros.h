// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Assertion and utility macros shared across the library.

#ifndef SPATIALSKETCH_COMMON_MACROS_H_
#define SPATIALSKETCH_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// SKETCH_CHECK(cond): always-on invariant check. Used on cold paths
/// (construction, configuration). Aborts with a message when violated.
#define SKETCH_CHECK(cond)                                                    \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "SKETCH_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

/// SKETCH_DCHECK(cond): debug-only invariant check; compiled out in NDEBUG
/// builds so it is safe on hot paths (per-update code).
#ifdef NDEBUG
#define SKETCH_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define SKETCH_DCHECK(cond) SKETCH_CHECK(cond)
#endif

/// Disallow copy and assign; place in the private section of a class.
#define SKETCH_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;             \
  TypeName& operator=(const TypeName&) = delete

#endif  // SPATIALSKETCH_COMMON_MACROS_H_
