// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Assertion and utility macros shared across the library.

#ifndef SPATIALSKETCH_COMMON_MACROS_H_
#define SPATIALSKETCH_COMMON_MACROS_H_

// The library relies on C++20 (<bit> intrinsics such as std::popcount and
// std::bit_ceil in src/common/bits.h). Under older standards those uses
// fail with a wall of unrelated template errors; fail here with one clear
// diagnostic instead. MSVC keeps __cplusplus at 199711L unless
// /Zc:__cplusplus is passed, so its real language level is _MSVC_LANG.
#if defined(_MSVC_LANG)
#if _MSVC_LANG < 202002L
#error "spatialsketch requires C++20: compile with /std:c++20 or newer"
#endif
#elif __cplusplus < 202002L
#error "spatialsketch requires C++20: compile with -std=c++20 or newer"
#endif

#include <cstdio>
#include <cstdlib>

/// SKETCH_CHECK(cond): always-on invariant check. Used on cold paths
/// (construction, configuration). Aborts with a message when violated.
#define SKETCH_CHECK(cond)                                                    \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "SKETCH_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

/// SKETCH_DCHECK(cond): debug-only invariant check; compiled out in NDEBUG
/// builds so it is safe on hot paths (per-update code).
#ifdef NDEBUG
#define SKETCH_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define SKETCH_DCHECK(cond) SKETCH_CHECK(cond)
#endif

/// Disallow copy and assign; place in the private section of a class.
#define SKETCH_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;             \
  TypeName& operator=(const TypeName&) = delete

#endif  // SPATIALSKETCH_COMMON_MACROS_H_
