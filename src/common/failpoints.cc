#include "src/common/failpoints.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

namespace spatialsketch {
namespace failpoints {

namespace {

struct Site {
  uint64_t skip = 0;       // hits to pass through before firing
  uint64_t count = 0;      // firings remaining; 0 = unlimited
  bool unlimited = false;
  uint64_t hits = 0;       // total hits while armed
  uint64_t fires = 0;      // total firings (survives disarm via fire_log)
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Site> sites;          // armed sites
  std::map<std::string, uint64_t> fire_log;   // cumulative firings by name
};

Registry& GetRegistry() {
  static Registry* r = new Registry();
  return *r;
}

// Count of armed sites; the SKETCH_FAILPOINT fast path reads this with a
// relaxed load so un-armed runs pay one predictable branch.
std::atomic<uint64_t> g_armed_count{0};

// Parse SPATIALSKETCH_FAILPOINTS="name[=skip[:count]],..." once.
void ArmFromEnvLocked(Registry& r) {
  const char* env = std::getenv("SPATIALSKETCH_FAILPOINTS");
  if (env == nullptr) return;
  std::string spec(env);
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    Site site;
    std::string name = entry;
    size_t eq = entry.find('=');
    if (eq != std::string::npos) {
      name = entry.substr(0, eq);
      std::string rest = entry.substr(eq + 1);
      size_t colon = rest.find(':');
      site.skip = std::strtoull(rest.substr(0, colon).c_str(), nullptr, 10);
      if (colon != std::string::npos) {
        site.count = std::strtoull(rest.substr(colon + 1).c_str(), nullptr, 10);
      }
    }
    site.unlimited = (site.count == 0);
    if (!name.empty() && r.sites.find(name) == r.sites.end()) {
      r.sites[name] = site;
      g_armed_count.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::once_flag g_env_once;

void EnsureEnvParsed(Registry& r) {
  std::call_once(g_env_once, [&r] {
    std::lock_guard<std::mutex> lock(r.mu);
    ArmFromEnvLocked(r);
  });
}

}  // namespace

#if SPATIALSKETCH_FAILPOINTS_ENABLED

bool AnyArmed() {
  // Env-armed sites must be visible before the first fast-path check
  // can short-circuit them.
  EnsureEnvParsed(GetRegistry());
  return g_armed_count.load(std::memory_order_relaxed) != 0;
}

bool Hit(const char* name) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(name);
  if (it == r.sites.end()) return false;
  Site& s = it->second;
  ++s.hits;
  if (s.hits <= s.skip) return false;
  if (!s.unlimited && s.fires >= s.count) return false;
  ++s.fires;
  ++r.fire_log[name];
  return true;
}

#endif  // SPATIALSKETCH_FAILPOINTS_ENABLED

void Arm(const std::string& name, uint64_t skip, uint64_t count) {
#if SPATIALSKETCH_FAILPOINTS_ENABLED
  if (name.empty()) return;
  Registry& r = GetRegistry();
  EnsureEnvParsed(r);
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.sites.find(name) == r.sites.end()) {
    g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  Site site;
  site.skip = skip;
  site.count = count;
  site.unlimited = (count == 0);
  r.sites[name] = site;
#else
  (void)name;
  (void)skip;
  (void)count;
#endif
}

void Disarm(const std::string& name) {
#if SPATIALSKETCH_FAILPOINTS_ENABLED
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.sites.erase(name) != 0) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
#else
  (void)name;
#endif
}

void DisarmAll() {
#if SPATIALSKETCH_FAILPOINTS_ENABLED
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  g_armed_count.fetch_sub(r.sites.size(), std::memory_order_relaxed);
  r.sites.clear();
  r.fire_log.clear();
#endif
}

uint64_t FireCount(const std::string& name) {
#if SPATIALSKETCH_FAILPOINTS_ENABLED
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.fire_log.find(name);
  return it == r.fire_log.end() ? 0 : it->second;
#else
  (void)name;
  return 0;
#endif
}

std::vector<std::string> ArmedSites() {
  std::vector<std::string> out;
#if SPATIALSKETCH_FAILPOINTS_ENABLED
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  out.reserve(r.sites.size());
  for (const auto& kv : r.sites) out.push_back(kv.first);
#endif
  return out;
}

}  // namespace failpoints
}  // namespace spatialsketch
