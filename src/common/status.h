// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Minimal Status / Result<T> error model in the style used by database
// engines (RocksDB, Arrow): configuration and validation APIs return a
// Status instead of throwing; hot paths never produce errors.

#ifndef SPATIALSKETCH_COMMON_STATUS_H_
#define SPATIALSKETCH_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "src/common/macros.h"

namespace spatialsketch {

/// Coarse error categories; mirrors the subset of codes the library needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kUnimplemented = 4,
  kInternal = 5,
  kIOError = 6,
};

/// Value-semantic status object. `Status::OK()` is cheap (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: k1 must be positive".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result<T> carries either a value or an error Status. Access to the value
/// of an error result is a checked failure (mirrors StatusOr).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : value_(std::move(status)) {    // NOLINT(runtime/explicit)
    SKETCH_CHECK(!std::get<Status>(value_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(value_);
  }

  const T& value() const& {
    SKETCH_CHECK(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    SKETCH_CHECK(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    SKETCH_CHECK(ok());
    return std::get<T>(std::move(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

/// Propagate a non-OK status to the caller.
#define SKETCH_RETURN_NOT_OK(expr)     \
  do {                                 \
    ::spatialsketch::Status _s = (expr); \
    if (!_s.ok()) return _s;           \
  } while (0)

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_COMMON_STATUS_H_
