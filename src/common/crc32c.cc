#include "src/common/crc32c.h"

#include <array>

namespace spatialsketch {

namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

struct Tables {
  // t[k][b]: CRC of byte b followed by k zero bytes — the slice-by-4
  // decomposition.
  std::array<std::array<uint32_t, 256>, 4> t;
};

constexpr Tables BuildTables() {
  Tables tables{};
  for (uint32_t b = 0; b < 256; ++b) {
    uint32_t crc = b;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tables.t[0][b] = crc;
  }
  for (uint32_t b = 0; b < 256; ++b) {
    for (int k = 1; k < 4; ++k) {
      tables.t[k][b] =
          (tables.t[k - 1][b] >> 8) ^ tables.t[0][tables.t[k - 1][b] & 0xFF];
    }
  }
  return tables;
}

constexpr Tables kTables = BuildTables();

}  // namespace

uint32_t Crc32cExtend(uint32_t init, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~init;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = kTables.t[3][crc & 0xFF] ^ kTables.t[2][(crc >> 8) & 0xFF] ^
          kTables.t[1][(crc >> 16) & 0xFF] ^ kTables.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p) & 0xFF];
    ++p;
    --n;
  }
  return ~crc;
}

}  // namespace spatialsketch
