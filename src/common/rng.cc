#include "src/common/rng.h"

#include <cmath>

#include "src/common/macros.h"

namespace spatialsketch {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  SKETCH_DCHECK(bound > 0);
  // Lemire's method with rejection to remove modulo bias.
  while (true) {
    uint64_t x = Next64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low >= bound || low >= (-bound) % bound) {
      return static_cast<uint64_t>(m >> 64);
    }
  }
}

uint64_t Rng::UniformInRange(uint64_t lo, uint64_t hi) {
  SKETCH_DCHECK(lo <= hi);
  return lo + Uniform(hi - lo + 1);
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  // Box-Muller; avoids log(0) by nudging u1 away from zero.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

Rng Rng::Fork() { return Rng(Next64()); }

}  // namespace spatialsketch
