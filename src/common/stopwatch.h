// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Wall-clock stopwatch for the benchmark harnesses.

#ifndef SPATIALSKETCH_COMMON_STOPWATCH_H_
#define SPATIALSKETCH_COMMON_STOPWATCH_H_

#include <chrono>

namespace spatialsketch {

/// Monotonic stopwatch; starts at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/Restart.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_COMMON_STOPWATCH_H_
