#include "src/estimators/extended_join_estimator.h"

#include "src/dyadic/endpoint_transform.h"
#include "src/estimators/adaptive.h"
#include "src/estimators/combine.h"

namespace spatialsketch {

Result<double> EstimateExtendedJoinCardinality(const DatasetSketch& r,
                                               const DatasetSketch& s) {
  if (r.schema() != s.schema()) {
    return Status::FailedPrecondition(
        "extended join requires both sketches to share one schema");
  }
  const uint32_t dims = r.schema()->dims();
  const Shape expected = Shape::ExtendedJoinShape(dims);
  if (!(r.shape() == expected) || !(s.shape() == expected)) {
    return Status::FailedPrecondition(
        "extended join requires the {I,E,l,u}^d shape on both sides");
  }
  const uint32_t instances = r.schema()->instances();
  const uint32_t num_words = expected.size();

  // Precompute per word: complement index and 2^{-c(w)} weight.
  std::vector<uint32_t> comp(num_words);
  std::vector<double> weight(num_words);
  for (uint32_t w = 0; w < num_words; ++w) {
    const Word& word = expected.word(w);
    const Word cw = ComplementWord(word, dims);
    const int ci = expected.IndexOf(cw);
    SKETCH_CHECK(ci >= 0);
    comp[w] = static_cast<uint32_t>(ci);
    weight[w] =
        1.0 / static_cast<double>(uint64_t{1}
                                  << CountIntervalEndpointLetters(word, dims));
  }

  std::vector<double> z(instances);
  for (uint32_t inst = 0; inst < instances; ++inst) {
    double acc = 0.0;
    for (uint32_t w = 0; w < num_words; ++w) {
      acc += weight[w] * static_cast<double>(r.Counter(inst, w)) *
             static_cast<double>(s.Counter(inst, comp[w]));
    }
    z[inst] = acc;
  }
  return MedianOfMeans(z, r.schema()->k1(), r.schema()->k2());
}

Result<JoinPipelineResult> SketchExtendedSpatialJoin(
    const std::vector<Box>& r, const std::vector<Box>& s,
    const JoinPipelineOptions& opt) {
  const Shape shape = Shape::ExtendedJoinShape(opt.dims);
  JoinPipelineResult out;

  std::vector<Box> r_main;
  r_main.reserve(r.size());
  for (const Box& b : r) {
    if (IsDegenerate(b, opt.dims)) {
      ++out.dropped_r;
      continue;
    }
    r_main.push_back(EndpointTransform::MapR(b, opt.dims));
  }
  // S side: interval/endpoint letters read the shrunk geometry, leaf
  // letters read the unshrunk mapped endpoints so coincidences with R
  // endpoints remain detectable.
  std::vector<Box> s_main;
  std::vector<Box> s_leaf;
  s_main.reserve(s.size());
  s_leaf.reserve(s.size());
  for (const Box& b : s) {
    if (IsDegenerate(b, opt.dims)) {
      ++out.dropped_s;
      continue;
    }
    s_main.push_back(EndpointTransform::ShrinkS(b, opt.dims));
    s_leaf.push_back(EndpointTransform::MapR(b, opt.dims));
  }

  for (uint32_t d = 0; d < opt.dims; ++d) out.max_levels[d] = opt.max_level;
  if (opt.auto_max_level) {
    const auto caps = SelectMaxLevelPerDim(
        r_main, s_main, opt.dims,
        EndpointTransform::TransformedLog2(opt.log2_domain));
    for (uint32_t d = 0; d < opt.dims; ++d) out.max_levels[d] = caps[d];
  }
  auto schema = MakeTransformedJoinSchema(opt, out.max_levels.data());
  if (!schema.ok()) return schema.status();

  DatasetSketch rx(*schema, shape);
  DatasetSketch sy(*schema, shape);
  BulkLoader loader(*schema);
  loader.Add(&rx, &r_main);
  loader.Add(&sy, &s_main, &s_leaf);
  loader.Run();

  auto est = EstimateExtendedJoinCardinality(rx, sy);
  if (!est.ok()) return est.status();
  out.estimate = *est;
  out.words_per_dataset = rx.MemoryWords();
  return out;
}

}  // namespace spatialsketch
