// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Spatial-join cardinality estimation (Section 4 / Theorems 1-3).
//
// Per boosting instance the estimator is
//     Z = 2^{-d} * sum over w in {I,E}^d of  X_w * Y_wbar
// which is unbiased for |R join_o S| under Assumption 1 (no common
// endpoint coordinates); the pipeline enforces the assumption for
// arbitrary data with the Section-5.2 endpoint transformation. Instances
// are combined with median-of-means.

#ifndef SPATIALSKETCH_ESTIMATORS_JOIN_ESTIMATOR_H_
#define SPATIALSKETCH_ESTIMATORS_JOIN_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/geom/box.h"
#include "src/sketch/dataset_sketch.h"
#include "src/sketch/schema.h"

namespace spatialsketch {

/// Combined (median-of-means) join-size estimate from two sketches built
/// under the same schema with JoinShape(dims). Errors if the sketches are
/// incompatible.
///
/// Thread-safety: takes no locks; a pure read of both counter arrays.
/// Safe from any number of threads provided the caller keeps BOTH
/// sketches' counters unchanged for the duration (SketchStore holds the
/// two datasets' shared FairSharedMutexes, acquired in address order).
Result<double> EstimateJoinCardinality(const DatasetSketch& r,
                                       const DatasetSketch& s);

/// Per-instance raw estimates Z_i (for analysis / tests / custom
/// combining): Z_i = 2^{-d} sum_w X_w(i) Y_wbar(i). Read-only; same
/// locking contract as EstimateJoinCardinality.
Result<std::vector<double>> JoinEstimatesPerInstance(const DatasetSketch& r,
                                                     const DatasetSketch& s);

/// Batched join estimates of one R sketch against many S sketches. The R
/// counter row of each boosting instance is loaded once and paired with
/// every S in turn, so the R side of the synopsis walk is amortized
/// across the batch. Returns exactly the values of per-pair
/// EstimateJoinCardinality calls, in s_list order. Errors on an empty
/// batch, a null entry, or any incompatible pair. Read-only over every
/// involved sketch; the caller pins all their counters (the store locks
/// each distinct dataset once, in address order, for the whole batch).
Result<std::vector<double>> EstimateJoinCardinalityBatch(
    const DatasetSketch& r, const std::vector<const DatasetSketch*>& s_list);

/// End-to-end pipeline configuration. Coordinates of the input boxes must
/// lie in [0, 2^log2_domain) per dimension; the pipeline applies the
/// endpoint transformation internally (domain grows by 2 bits).
struct JoinPipelineOptions {
  uint32_t dims = 2;          ///< dimensionality (1..kMaxDims)
  uint32_t log2_domain = 14;  ///< original (untransformed) domain bits
  uint32_t max_level = DyadicDomain::kNoCap;  ///< cap on TRANSFORMED domain
  /// Section 6.5 adaptive sketches: choose per-dimension level caps that
  /// minimize the marginal self-join sizes of the (transformed) inputs,
  /// overriding max_level. Strongly recommended for short-object
  /// workloads, whose dyadic endpoint sketches otherwise concentrate
  /// O(N^2) self-join mass in the top levels.
  bool auto_max_level = false;
  uint32_t k1 = 64;   ///< estimators averaged per group (accuracy)
  uint32_t k2 = 9;    ///< groups medianed (confidence)
  uint64_t seed = 1;  ///< master seed (equal options => identical schema)
};

/// Output of the one-call SketchSpatialJoin pipeline.
struct JoinPipelineResult {
  double estimate = 0.0;           ///< median-of-means join-size estimate
  uint64_t words_per_dataset = 0;  ///< paper-accounted space
  uint64_t dropped_r = 0;  ///< degenerate objects removed from R
  uint64_t dropped_s = 0;  ///< degenerate objects removed from S
  /// Level caps actually used per dimension (filled by auto_max_level).
  std::array<uint32_t, kMaxDims> max_levels{
      DyadicDomain::kNoCap, DyadicDomain::kNoCap, DyadicDomain::kNoCap,
      DyadicDomain::kNoCap};
};

/// Schema over the TRANSFORMED domain implied by the options. Both join
/// sides must be sketched under this single schema. The returned schema
/// is immutable and fully thread-safe (its sign/point-sum caches
/// synchronize internally).
Result<SchemaPtr> MakeTransformedJoinSchema(const JoinPipelineOptions& opt);

/// Variant with explicit per-dimension level caps (overriding
/// opt.max_level); max_levels may be nullptr.
Result<SchemaPtr> MakeTransformedJoinSchema(const JoinPipelineOptions& opt,
                                            const uint32_t* max_levels);

/// Sketch the R side (endpoints mapped with x -> 3x+1); drops degenerate
/// boxes and reports how many were dropped. Builds a fresh sketch (bulk
/// load parallelizes internally across instance batches); the shared
/// schema's caches are thread-safe, so two sides may be sketched from
/// different threads concurrently.
DatasetSketch SketchJoinSideR(const SchemaPtr& schema,
                              const std::vector<Box>& r, uint64_t* dropped);

/// Sketch the S side (shrunk: [l, u] -> [3l+2, 3u]); same threading
/// contract as SketchJoinSideR.
DatasetSketch SketchJoinSideS(const SchemaPtr& schema,
                              const std::vector<Box>& s, uint64_t* dropped);

/// One-call spatial-join estimate: transform, sketch both sides, combine.
/// Self-contained (builds its own schema and sketches); safe to run
/// concurrently with anything, as it shares no mutable state.
Result<JoinPipelineResult> SketchSpatialJoin(const std::vector<Box>& r,
                                             const std::vector<Box>& s,
                                             const JoinPipelineOptions& opt);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_ESTIMATORS_JOIN_ESTIMATOR_H_
