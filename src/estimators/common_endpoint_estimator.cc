#include "src/estimators/common_endpoint_estimator.h"

#include "src/estimators/combine.h"

namespace spatialsketch {

Result<double> EstimateJoinWithCommonEndpoints1D(const DatasetSketch& r,
                                                 const DatasetSketch& s) {
  if (r.schema() != s.schema()) {
    return Status::FailedPrecondition(
        "common-endpoint join requires a shared schema");
  }
  if (r.schema()->dims() != 1) {
    return Status::InvalidArgument(
        "the Appendix-C estimator is one-dimensional; use the endpoint "
        "transformation pipeline for d > 1");
  }
  const Shape expected = Shape::ExtendedJoinShape(1);  // words I, E, l, u
  if (!(r.shape() == expected) || !(s.shape() == expected)) {
    return Status::FailedPrecondition(
        "common-endpoint join requires the {I,E,l,u} shape on both sides");
  }
  // Word indices in ExtendedJoinShape(1) digit order.
  constexpr uint32_t kI = 0, kE = 1, kLeafL = 2, kLeafU = 3;

  const uint32_t instances = r.schema()->instances();
  std::vector<double> z(instances);
  for (uint32_t inst = 0; inst < instances; ++inst) {
    const double xi = static_cast<double>(r.Counter(inst, kI));
    const double xe = static_cast<double>(r.Counter(inst, kE));
    const double xl = static_cast<double>(r.Counter(inst, kLeafL));
    const double xu = static_cast<double>(r.Counter(inst, kLeafU));
    const double yi = static_cast<double>(s.Counter(inst, kI));
    const double ye = static_cast<double>(s.Counter(inst, kE));
    const double yl = static_cast<double>(s.Counter(inst, kLeafL));
    const double yu = static_cast<double>(s.Counter(inst, kLeafU));
    z[inst] =
        (xi * ye + xe * yi - 2.0 * xl * yu - 2.0 * xu * yl - xl * yl -
         xu * yu) /
        2.0;
  }
  return MedianOfMeans(z, r.schema()->k1(), r.schema()->k2());
}

Result<CommonEndpointResult> SketchJoinCommonEndpoints1D(
    const std::vector<Box>& r, const std::vector<Box>& s,
    const CommonEndpointOptions& opt) {
  SchemaOptions so;
  so.dims = 1;
  so.domains[0].log2_size = opt.log2_domain;
  so.domains[0].max_level = opt.max_level;
  so.k1 = opt.k1;
  so.k2 = opt.k2;
  so.seed = opt.seed;
  auto schema = SketchSchema::Create(so);
  if (!schema.ok()) return schema.status();

  const Shape shape = Shape::ExtendedJoinShape(1);
  CommonEndpointResult out;
  auto load = [&](const std::vector<Box>& v, uint64_t* dropped) {
    DatasetSketch sk(*schema, shape);
    std::vector<Box> kept;
    kept.reserve(v.size());
    for (const Box& b : v) {
      if (IsDegenerate(b, 1)) {
        ++*dropped;
        continue;
      }
      kept.push_back(b);
    }
    SKETCH_CHECK(sk.BulkLoad(kept).ok());
    return sk;
  };
  DatasetSketch rx = load(r, &out.dropped_r);
  DatasetSketch sy = load(s, &out.dropped_s);

  auto est = EstimateJoinWithCommonEndpoints1D(rx, sy);
  if (!est.ok()) return est.status();
  out.estimate = *est;
  out.words_per_dataset = rx.MemoryWords();
  return out;
}

}  // namespace spatialsketch
