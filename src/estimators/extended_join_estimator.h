// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Extended-overlap join estimation (Appendix B.1): join pairs whose closed
// boxes intersect, i.e. boundary-touching counts (Definition 4). The
// estimator augments the transformed standard sketches with leaf-level
// endpoint sketches on the UNSHRUNK coordinates, which track exact
// endpoint coincidences:
//     Z = sum over w in {I,E,l,u}^d of  X_w * Y_wbar / 2^{c(w)},
// where c(w) counts the I/E letters and wbar swaps I<->E and l<->u.
// Every dimension tracked by I/E contributes a count of 2 per joining
// pair, every leaf-tracked dimension a count of 1, hence the 2^{c(w)}
// divisors.

#ifndef SPATIALSKETCH_ESTIMATORS_EXTENDED_JOIN_ESTIMATOR_H_
#define SPATIALSKETCH_ESTIMATORS_EXTENDED_JOIN_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/estimators/join_estimator.h"
#include "src/geom/box.h"
#include "src/sketch/dataset_sketch.h"

namespace spatialsketch {

/// Combined estimate of |R join+_o S| from two ExtendedJoinShape sketches
/// under one schema.
Result<double> EstimateExtendedJoinCardinality(const DatasetSketch& r,
                                               const DatasetSketch& s);

/// One-call pipeline: transform (R mapped, S shrunk with unshrunk leaf
/// coordinates), sketch, combine. Degenerate boxes are dropped (the
/// estimator, like the paper's construction, assumes non-degenerate
/// objects).
Result<JoinPipelineResult> SketchExtendedSpatialJoin(
    const std::vector<Box>& r, const std::vector<Box>& s,
    const JoinPipelineOptions& opt);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_ESTIMATORS_EXTENDED_JOIN_ESTIMATOR_H_
