#include "src/estimators/containment_estimator.h"

#include "src/estimators/adaptive.h"
#include "src/estimators/eps_join_estimator.h"
#include "src/sketch/dataset_sketch.h"

namespace spatialsketch {

Box LiftInnerToPoint(const Box& r, uint32_t dims) {
  // r in s  <=>  per dim i: s.lo <= r.lo and r.hi <= s.hi
  //          <=>  the 2d-point (r.lo_i, r.hi_i)_i lies in the 2d-box
  //               ([s.lo_i, s.hi_i], [s.lo_i, s.hi_i])_i,
  // using r.lo_i <= r.hi_i to discharge the two redundant inequalities.
  Box p;
  for (uint32_t i = 0; i < dims; ++i) {
    p.lo[2 * i] = r.lo[i];
    p.hi[2 * i] = r.lo[i];
    p.lo[2 * i + 1] = r.hi[i];
    p.hi[2 * i + 1] = r.hi[i];
  }
  return p;
}

Box LiftOuterToBox(const Box& s, uint32_t dims) {
  Box b;
  for (uint32_t i = 0; i < dims; ++i) {
    b.lo[2 * i] = s.lo[i];
    b.hi[2 * i] = s.hi[i];
    b.lo[2 * i + 1] = s.lo[i];
    b.hi[2 * i + 1] = s.hi[i];
  }
  return b;
}

Result<ContainmentPipelineResult> SketchContainmentJoin(
    const std::vector<Box>& r, const std::vector<Box>& s,
    const ContainmentPipelineOptions& opt) {
  if (opt.dims < 1 || 2 * opt.dims > kMaxDims) {
    return Status::InvalidArgument(
        "containment join supports 1 or 2 original dimensions");
  }
  const uint32_t lifted = 2 * opt.dims;
  std::vector<Box> pts;
  pts.reserve(r.size());
  for (const Box& b : r) pts.push_back(LiftInnerToPoint(b, opt.dims));
  std::vector<Box> boxes;
  boxes.reserve(s.size());
  for (const Box& b : s) boxes.push_back(LiftOuterToBox(b, opt.dims));

  std::vector<uint32_t> caps(lifted, opt.max_level);
  if (opt.auto_max_level && !pts.empty() && !boxes.empty()) {
    caps = SelectMaxLevelPerDim(pts, boxes, lifted, opt.log2_domain);
  }
  SchemaOptions so;
  so.dims = lifted;
  for (uint32_t i = 0; i < lifted; ++i) {
    so.domains[i].log2_size = opt.log2_domain;
    so.domains[i].max_level = caps[i];
  }
  so.k1 = opt.k1;
  so.k2 = opt.k2;
  so.seed = opt.seed;
  auto schema = SketchSchema::Create(so);
  if (!schema.ok()) return schema.status();

  DatasetSketch inner(*schema, Shape::PointShape(lifted));
  DatasetSketch outer(*schema, Shape::BoxCoverShape(lifted));
  BulkLoader loader(*schema);
  loader.Add(&inner, &pts);
  loader.Add(&outer, &boxes);
  loader.Run();

  auto est = EstimateContainmentCardinality(inner, outer);
  if (!est.ok()) return est.status();
  ContainmentPipelineResult out;
  out.estimate = *est;
  out.words_per_dataset = inner.MemoryWords();
  return out;
}

}  // namespace spatialsketch
