#include "src/estimators/combine.h"

#include <algorithm>

#include "src/common/macros.h"

namespace spatialsketch {

double MedianOfMeans(const std::vector<double>& per_instance, uint32_t k1,
                     uint32_t k2) {
  SKETCH_CHECK(k1 >= 1 && k2 >= 1);
  SKETCH_CHECK(per_instance.size() == static_cast<size_t>(k1) * k2);
  std::vector<double> means;
  means.reserve(k2);
  for (uint32_t g = 0; g < k2; ++g) {
    double sum = 0.0;
    for (uint32_t i = 0; i < k1; ++i) {
      sum += per_instance[static_cast<size_t>(g) * k1 + i];
    }
    means.push_back(sum / k1);
  }
  std::sort(means.begin(), means.end());
  const uint32_t mid = k2 / 2;
  if (k2 % 2 == 1) return means[mid];
  return 0.5 * (means[mid - 1] + means[mid]);
}

}  // namespace spatialsketch
