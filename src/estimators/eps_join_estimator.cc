#include "src/estimators/eps_join_estimator.h"

#include "src/estimators/adaptive.h"
#include "src/estimators/combine.h"
#include "src/exact/eps_join.h"

namespace spatialsketch {

Result<std::vector<double>> ContainmentEstimatesPerInstance(
    const DatasetSketch& points, const DatasetSketch& boxes) {
  if (points.schema() != boxes.schema()) {
    return Status::FailedPrecondition(
        "eps-join requires both sketches to share one schema");
  }
  const uint32_t dims = points.schema()->dims();
  if (!(points.shape() == Shape::PointShape(dims)) ||
      !(boxes.shape() == Shape::BoxCoverShape(dims))) {
    return Status::FailedPrecondition(
        "eps-join requires PointShape x BoxCoverShape sketches");
  }
  const uint32_t instances = points.schema()->instances();
  std::vector<double> z(instances);
  for (uint32_t inst = 0; inst < instances; ++inst) {
    z[inst] = static_cast<double>(points.Counter(inst, 0)) *
              static_cast<double>(boxes.Counter(inst, 0));
  }
  return z;
}

Result<double> EstimateContainmentCardinality(const DatasetSketch& points,
                                              const DatasetSketch& boxes) {
  auto z = ContainmentEstimatesPerInstance(points, boxes);
  if (!z.ok()) return z.status();
  return MedianOfMeans(*z, points.schema()->k1(), points.schema()->k2());
}

Result<EpsJoinPipelineResult> SketchEpsJoin(
    const std::vector<Box>& a, const std::vector<Box>& b,
    const EpsJoinPipelineOptions& opt) {
  const auto squares = ExpandEpsSquares(b, opt.dims, opt.eps,
                                        opt.log2_domain);
  std::vector<uint32_t> caps(opt.dims, opt.max_level);
  if (opt.auto_max_level) {
    caps = SelectMaxLevelPerDim(a, squares, opt.dims, opt.log2_domain);
  }
  SchemaOptions so;
  so.dims = opt.dims;
  for (uint32_t i = 0; i < opt.dims; ++i) {
    so.domains[i].log2_size = opt.log2_domain;
    so.domains[i].max_level = caps[i];
  }
  so.k1 = opt.k1;
  so.k2 = opt.k2;
  so.seed = opt.seed;
  auto schema = SketchSchema::Create(so);
  if (!schema.ok()) return schema.status();

  DatasetSketch pa(*schema, Shape::PointShape(opt.dims));
  DatasetSketch sb(*schema, Shape::BoxCoverShape(opt.dims));
  BulkLoader loader(*schema);
  loader.Add(&pa, &a);
  loader.Add(&sb, &squares);
  loader.Run();

  auto est = EstimateContainmentCardinality(pa, sb);
  if (!est.ok()) return est.status();
  EpsJoinPipelineResult out;
  out.estimate = *est;
  out.words_per_dataset = pa.MemoryWords();
  return out;
}

}  // namespace spatialsketch
