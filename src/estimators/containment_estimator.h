// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Containment-join estimation (Appendix B.2): "how many intervals
// [a, b] of R are contained in intervals [c, d] of S" translates into
// 2-dimensional space — count squares [c, d] x [c, d] containing the point
// (a, b) — and is then estimated exactly like the eps-join (point sketch x
// box-cover sketch). Generally a d-dimensional containment join lifts to a
// 2d-dimensional point-in-box problem; with kMaxDims = 4 the library
// supports d in {1, 2}. Containment is a closed predicate, so no endpoint
// transformation is needed (dyadic point-in-interval counting is exact
// under coordinate collisions).

#ifndef SPATIALSKETCH_ESTIMATORS_CONTAINMENT_ESTIMATOR_H_
#define SPATIALSKETCH_ESTIMATORS_CONTAINMENT_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/geom/box.h"
#include "src/sketch/schema.h"

namespace spatialsketch {

struct ContainmentPipelineOptions {
  uint32_t dims = 1;          ///< original dimensionality (1 or 2)
  uint32_t log2_domain = 16;  ///< original domain bits per dimension
  uint32_t max_level = DyadicDomain::kNoCap;
  /// Section 6.5 adaptive per-dimension caps on the lifted problem.
  bool auto_max_level = false;
  uint32_t k1 = 64;
  uint32_t k2 = 9;
  uint64_t seed = 1;
};

struct ContainmentPipelineResult {
  double estimate = 0.0;
  uint64_t words_per_dataset = 0;
};

/// Estimate |{(r, s) : r contained in s}| for box sets of dimensionality
/// opt.dims (lifted internally to 2*dims sketch dimensions).
Result<ContainmentPipelineResult> SketchContainmentJoin(
    const std::vector<Box>& r, const std::vector<Box>& s,
    const ContainmentPipelineOptions& opt);

/// The lift used by the pipeline, exposed for tests: r-boxes become
/// 2*dims-dimensional points (lo_1, hi_1, ..., lo_d, hi_d) and s-boxes
/// become 2*dims-dimensional boxes ([lo_i, hi_i] twice per dimension).
Box LiftInnerToPoint(const Box& r, uint32_t dims);
Box LiftOuterToBox(const Box& s, uint32_t dims);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_ESTIMATORS_CONTAINMENT_ESTIMATOR_H_
