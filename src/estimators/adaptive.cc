#include "src/estimators/adaptive.h"

#include "src/sketch/self_join.h"

namespace spatialsketch {

MaxLevelChoice SelectMaxLevel1D(const std::vector<Box>& r,
                                const std::vector<Box>& s,
                                uint32_t log2_size, uint32_t min_level) {
  MaxLevelChoice best;
  double best_cost = -1.0;
  if (min_level > log2_size) min_level = log2_size;
  for (uint32_t cap = min_level; cap <= log2_size; ++cap) {
    const DyadicDomain dom(log2_size, cap);
    const double sj_r = ExactTotalSelfJoin1D(r, dom);
    const double sj_s = ExactTotalSelfJoin1D(s, dom);
    const double cost = sj_r + sj_s;
    if (best_cost < 0.0 || cost < best_cost) {
      best_cost = cost;
      best.max_level = cap;
      best.sj_r = sj_r;
      best.sj_s = sj_s;
    }
  }
  return best;
}

std::vector<uint32_t> SelectMaxLevelPerDim(const std::vector<Box>& r,
                                           const std::vector<Box>& s,
                                           uint32_t dims, uint32_t log2_size,
                                           uint32_t min_level) {
  std::vector<uint32_t> caps(dims, DyadicDomain::kNoCap);
  std::vector<Box> rp(r.size());
  std::vector<Box> sp(s.size());
  for (uint32_t d = 0; d < dims; ++d) {
    for (size_t i = 0; i < r.size(); ++i) {
      rp[i] = MakeInterval(r[i].lo[d], r[i].hi[d]);
    }
    for (size_t i = 0; i < s.size(); ++i) {
      sp[i] = MakeInterval(s[i].lo[d], s[i].hi[d]);
    }
    caps[d] = SelectMaxLevel1D(rp, sp, log2_size, min_level).max_level;
  }
  return caps;
}

}  // namespace spatialsketch
