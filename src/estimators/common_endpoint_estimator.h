// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Common-endpoint join estimation (Appendix C / Lemma 13): the alternative
// to the Section-5.2 endpoint transformation. The sketches are built on
// the ORIGINAL (untripled) domain; four extra leaf-level endpoint sketches
// explicitly subtract the over-counts of the spatial relationships that
// share endpoint coordinates (cases 2, 5, 6 of Figure 3):
//     Z = (X_I Y_E + X_E Y_I - 2 X_l Y_u - 2 X_u Y_l - X_l Y_l - X_u Y_u)/2.

#ifndef SPATIALSKETCH_ESTIMATORS_COMMON_ENDPOINT_ESTIMATOR_H_
#define SPATIALSKETCH_ESTIMATORS_COMMON_ENDPOINT_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/geom/box.h"
#include "src/sketch/dataset_sketch.h"
#include "src/sketch/schema.h"

namespace spatialsketch {

struct CommonEndpointOptions {
  uint32_t log2_domain = 16;  ///< domain bits (NOT transformed)
  uint32_t max_level = DyadicDomain::kNoCap;
  uint32_t k1 = 64;
  uint32_t k2 = 9;
  uint64_t seed = 1;
};

struct CommonEndpointResult {
  double estimate = 0.0;
  uint64_t words_per_dataset = 0;
  uint64_t dropped_r = 0;
  uint64_t dropped_s = 0;
};

/// Combined 1-d join estimate from two ExtendedJoinShape(1) sketches built
/// on untransformed coordinates under one schema.
Result<double> EstimateJoinWithCommonEndpoints1D(const DatasetSketch& r,
                                                 const DatasetSketch& s);

/// One-call pipeline for 1-d interval sets with arbitrary shared
/// endpoints; degenerate intervals are dropped.
Result<CommonEndpointResult> SketchJoinCommonEndpoints1D(
    const std::vector<Box>& r, const std::vector<Box>& s,
    const CommonEndpointOptions& opt);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_ESTIMATORS_COMMON_ENDPOINT_ESTIMATOR_H_
