// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Accuracy boosting (Section 2.3 / Figure 1): given one estimate per
// boosting instance, average within each of the k2 groups of k1 instances
// and return the median of the group averages. Lemma 1 turns this into
// the (epsilon, phi) guarantee.

#ifndef SPATIALSKETCH_ESTIMATORS_COMBINE_H_
#define SPATIALSKETCH_ESTIMATORS_COMBINE_H_

#include <cstdint>
#include <vector>

namespace spatialsketch {

/// Median of k2 means of k1 values each. per_instance must hold k1*k2
/// values, instance index = group * k1 + position.
double MedianOfMeans(const std::vector<double>& per_instance, uint32_t k1,
                     uint32_t k2);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_ESTIMATORS_COMBINE_H_
