#include "src/estimators/join_estimator.h"

#include "src/dyadic/endpoint_transform.h"
#include "src/estimators/adaptive.h"
#include "src/estimators/combine.h"
#include "src/xi/kernels.h"

namespace spatialsketch {

namespace {

Status CheckJoinable(const DatasetSketch& r, const DatasetSketch& s) {
  if (r.schema() != s.schema()) {
    return Status::FailedPrecondition(
        "join requires both sketches to share one schema");
  }
  const Shape expected = Shape::JoinShape(r.schema()->dims());
  if (!(r.shape() == expected) || !(s.shape() == expected)) {
    return Status::FailedPrecondition(
        "join requires the {I,E}^d JoinShape on both sides");
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<double>> JoinEstimatesPerInstance(const DatasetSketch& r,
                                                     const DatasetSketch& s) {
  SKETCH_RETURN_NOT_OK(CheckJoinable(r, s));
  const uint32_t dims = r.schema()->dims();
  const uint32_t instances = r.schema()->instances();

  // JoinShape is bitmask-ordered (bit i set => E in dim i), so the
  // complement word wbar is simply the inverted mask; the kernel walks
  // the counter rows with the per-instance FP accumulation in scalar
  // order, so every variant returns bit-identical estimates (the counter
  // store routes non-flat layouts through an order-identical walk).
  std::vector<double> z(instances);
  CounterStore::JoinZ(r.counter_store(), s.counter_store(), dims, z.data());
  return z;
}

Result<double> EstimateJoinCardinality(const DatasetSketch& r,
                                       const DatasetSketch& s) {
  auto z = JoinEstimatesPerInstance(r, s);
  if (!z.ok()) return z.status();
  return MedianOfMeans(*z, r.schema()->k1(), r.schema()->k2());
}

Result<std::vector<double>> EstimateJoinCardinalityBatch(
    const DatasetSketch& r, const std::vector<const DatasetSketch*>& s_list) {
  if (s_list.empty()) {
    return Status::InvalidArgument("join batch must be non-empty");
  }
  for (const DatasetSketch* s : s_list) {
    if (s == nullptr) {
      return Status::InvalidArgument("join batch contains a null sketch");
    }
    SKETCH_RETURN_NOT_OK(CheckJoinable(r, *s));
  }
  const uint32_t dims = r.schema()->dims();
  const uint32_t instances = r.schema()->instances();

  // One kernel walk per (r, s) pair — the exact code path the sequential
  // estimate takes, so each batch entry is trivially bit-identical to its
  // sequential counterpart. The r rows stay cache-hot across the panel
  // (a serving-size dataset is a few tens of KB of counters).
  std::vector<std::vector<double>> z(s_list.size(),
                                     std::vector<double>(instances));
  for (size_t si = 0; si < s_list.size(); ++si) {
    CounterStore::JoinZ(r.counter_store(), s_list[si]->counter_store(),
                        dims, z[si].data());
  }
  std::vector<double> out(s_list.size());
  for (size_t si = 0; si < s_list.size(); ++si) {
    out[si] = MedianOfMeans(z[si], r.schema()->k1(), r.schema()->k2());
  }
  return out;
}

Result<SchemaPtr> MakeTransformedJoinSchema(const JoinPipelineOptions& opt) {
  return MakeTransformedJoinSchema(opt, nullptr);
}

Result<SchemaPtr> MakeTransformedJoinSchema(const JoinPipelineOptions& opt,
                                            const uint32_t* max_levels) {
  return MakeTransformedSchema(opt.dims, opt.log2_domain, opt.max_level,
                               max_levels, opt.k1, opt.k2, opt.seed);
}

namespace {

DatasetSketch SketchSide(const SchemaPtr& schema, const std::vector<Box>& v,
                         bool shrink, uint64_t* dropped) {
  const uint32_t dims = schema->dims();
  DatasetSketch sketch(schema, Shape::JoinShape(dims));
  std::vector<Box> transformed;
  transformed.reserve(v.size());
  uint64_t skipped = 0;
  for (const Box& b : v) {
    if (IsDegenerate(b, dims)) {
      ++skipped;
      continue;
    }
    transformed.push_back(shrink ? EndpointTransform::ShrinkS(b, dims)
                                 : EndpointTransform::MapR(b, dims));
  }
  SKETCH_CHECK(sketch.BulkLoad(transformed).ok());
  if (dropped != nullptr) *dropped = skipped;
  return sketch;
}

}  // namespace

DatasetSketch SketchJoinSideR(const SchemaPtr& schema,
                              const std::vector<Box>& r, uint64_t* dropped) {
  return SketchSide(schema, r, /*shrink=*/false, dropped);
}

DatasetSketch SketchJoinSideS(const SchemaPtr& schema,
                              const std::vector<Box>& s, uint64_t* dropped) {
  return SketchSide(schema, s, /*shrink=*/true, dropped);
}

Result<JoinPipelineResult> SketchSpatialJoin(const std::vector<Box>& r,
                                             const std::vector<Box>& s,
                                             const JoinPipelineOptions& opt) {
  const uint32_t dims = opt.dims;

  JoinPipelineResult out;
  std::vector<Box> rt, st;
  rt.reserve(r.size());
  st.reserve(s.size());
  for (const Box& b : r) {
    if (IsDegenerate(b, dims)) {
      ++out.dropped_r;
      continue;
    }
    rt.push_back(EndpointTransform::MapR(b, dims));
  }
  for (const Box& b : s) {
    if (IsDegenerate(b, dims)) {
      ++out.dropped_s;
      continue;
    }
    st.push_back(EndpointTransform::ShrinkS(b, dims));
  }

  // Section 6.5 adaptive level caps, chosen on the transformed data.
  for (uint32_t d = 0; d < dims; ++d) out.max_levels[d] = opt.max_level;
  if (opt.auto_max_level) {
    const auto caps = SelectMaxLevelPerDim(
        rt, st, dims, EndpointTransform::TransformedLog2(opt.log2_domain));
    for (uint32_t d = 0; d < dims; ++d) out.max_levels[d] = caps[d];
  }
  auto schema = MakeTransformedJoinSchema(opt, out.max_levels.data());
  if (!schema.ok()) return schema.status();

  // Load both sides in one pass so the packed sign tables are shared.
  DatasetSketch rx(*schema, Shape::JoinShape(dims));
  DatasetSketch sy(*schema, Shape::JoinShape(dims));
  BulkLoader loader(*schema);
  loader.Add(&rx, &rt);
  loader.Add(&sy, &st);
  loader.Run();

  auto est = EstimateJoinCardinality(rx, sy);
  if (!est.ok()) return est.status();
  out.estimate = *est;
  out.words_per_dataset = rx.MemoryWords();
  return out;
}

}  // namespace spatialsketch
