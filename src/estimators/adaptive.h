// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Adaptive maxLevel selection (Section 6.5): the dyadic endpoint sketches
// add the top-level dyadic intervals (up to the whole-domain root) for
// every object, so for short-interval workloads SJ(X_E) approaches
// 2*(2N)^2 and the Lemma-1 sizing explodes. Capping covers at maxLevel
// trades that endpoint mass against longer interval covers; "based on
// statistics about the interval length distribution, the algorithm
// determines the maximum level". Here the statistic is the exact (or
// sampled) total self-join size itself: pick the cap minimizing
// SJ(R) + SJ(S), the quantity the variance bound is built from.

#ifndef SPATIALSKETCH_ESTIMATORS_ADAPTIVE_H_
#define SPATIALSKETCH_ESTIMATORS_ADAPTIVE_H_

#include <cstdint>
#include <vector>

#include "src/dyadic/dyadic_domain.h"
#include "src/geom/box.h"

namespace spatialsketch {

struct MaxLevelChoice {
  uint32_t max_level = DyadicDomain::kNoCap;
  double sj_r = 0.0;  ///< SJ(R) = SJ(X_I) + SJ(X_E) under the chosen cap
  double sj_s = 0.0;
};

/// Choose the cap for a 1-d join of (already transformed) interval sets by
/// exact SJ minimization over caps {min_level, ..., log2_size}. Runs in
/// O(levels * (N log n + n)).
MaxLevelChoice SelectMaxLevel1D(const std::vector<Box>& r,
                                const std::vector<Box>& s,
                                uint32_t log2_size, uint32_t min_level = 2);

/// Per-dimension caps for a d-dimensional join of (already transformed)
/// box sets, chosen by minimizing the 1-d marginal self-join size of each
/// dimension's interval projections. The d-dimensional self-join masses
/// are (sums of) products of per-dimension incidence vectors, so shrinking
/// each marginal shrinks every product term; this is the practical reading
/// of Section 6.5's "statistics about the interval length distribution".
std::vector<uint32_t> SelectMaxLevelPerDim(const std::vector<Box>& r,
                                           const std::vector<Box>& s,
                                           uint32_t dims, uint32_t log2_size,
                                           uint32_t min_level = 2);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_ESTIMATORS_ADAPTIVE_H_
