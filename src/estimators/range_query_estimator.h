// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Range-query selectivity estimation (Section 6.4 / Lemma 9).
//
// A 1-d interval [a, b] overlaps query [u, v] iff its upper endpoint lies
// in [u, v] or v lies in [a, b] — mutually exclusive and exhaustive under
// Assumption 1. The sketch therefore only needs the interval covers (I)
// and upper-endpoint covers (U) of the data; the query contributes its own
// cover sums at estimation time:
//     Z = xi_bar[u,v] * X_U + xi_bar[v] * X_I,
// generalized in d dimensions to Z = sum over w in {I,U}^d of
// X_w * prod_i q_{wbar[i]}. Assumption 1 is enforced with the endpoint
// transformation, shrinking the QUERY (the "S side" of this degenerate
// join) rather than the data.

#ifndef SPATIALSKETCH_ESTIMATORS_RANGE_QUERY_ESTIMATOR_H_
#define SPATIALSKETCH_ESTIMATORS_RANGE_QUERY_ESTIMATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/geom/box.h"
#include "src/sketch/dataset_sketch.h"
#include "src/sketch/schema.h"

namespace spatialsketch {

/// Configuration of a standalone range-query estimator pipeline.
struct RangeEstimatorOptions {
  uint32_t dims = 1;          ///< dimensionality (1..kMaxDims)
  uint32_t log2_domain = 16;  ///< original domain bits
  uint32_t max_level = DyadicDomain::kNoCap;  ///< Section 6.5 level cap
  /// Section 6.5: choose per-dimension caps minimizing the data's
  /// marginal self-join sizes (queries are unknown at build time, so the
  /// statistic is data-only).
  bool auto_max_level = false;
  uint32_t k1 = 64;   ///< estimators averaged per group (accuracy)
  uint32_t k2 = 9;    ///< groups medianed (confidence)
  uint64_t seed = 1;  ///< master seed (equal options => identical schema)
};

/// Range-count estimate against an externally owned RangeShape sketch whose
/// schema lives over the TRANSFORMED domain (data ingested through
/// EndpointTransform::MapR). `query` is in ORIGINAL coordinates and must be
/// non-degenerate in every dimension. This is the serving-layer entry
/// point: SketchStore runs it against store-resident sketches, and
/// RangeQueryEstimator::EstimateCount delegates here.
///
/// Thread-safety: takes no locks; a pure read of the sketch's counters
/// plus lock-free schema-cache lookups. Safe from any number of threads
/// PROVIDED the caller keeps the counters unchanged for the duration
/// (SketchStore holds the dataset's shared FairSharedMutex around it;
/// unsynchronized concurrent writes to the same sketch are a data race).
double EstimateRangeCount(const DatasetSketch& sketch, const Box& query);

/// A batch of range queries precomputed against one sketch: the endpoint
/// transforms, dyadic decompositions, and packed sign columns of every
/// query are resolved once at construction, and EstimateOne() only walks
/// counters (in contiguous instance-major order) — so it is safe to call
/// concurrently from any number of threads while the caller holds the
/// sketch's counters stable (SketchStore fans a batch across its query
/// pool under ONE shared lock this way). EstimateOne(i) returns exactly
/// the value EstimateRangeCount(sketch, queries[i]) would.
class RangeQueryBatch {
 public:
  /// Queries in ORIGINAL coordinates, non-degenerate per dimension; the
  /// sketch must carry RangeShape. Both are checked. `sketch` and
  /// `queries` must outlive the batch.
  RangeQueryBatch(const DatasetSketch* sketch, const Box* queries,
                  size_t count);

  /// Number of queries in the batch. Thread-safe (const, no locks).
  size_t size() const { return queries_.size(); }
  /// Estimate of queries[i]; only walks counters, so any number of
  /// threads may call it concurrently while the caller keeps the
  /// sketch's counters stable (see the class comment).
  double EstimateOne(size_t i) const;
  /// All estimates in query order; same locking contract as EstimateOne.
  std::vector<double> EstimateAll() const;

 private:
  struct QueryIds {
    // Packed sign columns (schema cache) of the interval cover of the
    // shrunk query's range and the point cover of its upper endpoint.
    std::vector<const uint64_t*> cover_cols[kMaxDims];
    std::vector<const uint64_t*> upper_cols[kMaxDims];
  };
  // Declared first so it outlives the column pointers in queries_: the
  // pin keeps the schema sign cache from freeing them under a global
  // budget for the batch's whole lifetime (see PackedSignCache::Pin).
  PackedSignCache::Pin sign_pin_;
  const DatasetSketch* sketch_;
  std::vector<QueryIds> queries_;
};

/// Convenience wrapper: batched range-count estimates, exactly equal to
/// calling EstimateRangeCount once per query. Same thread-safety
/// contract as EstimateRangeCount (caller pins the counters).
std::vector<double> EstimateRangeCountBatch(const DatasetSketch& sketch,
                                            const std::vector<Box>& queries);

/// Maintains a RangeShape sketch of one dataset and answers range-count
/// estimates for arbitrary query boxes. Supports incremental updates.
///
/// Thread-safety: NONE is provided here — this is the single-threaded
/// pipeline object (external synchronization required to mix updates
/// and estimates). For concurrent serving use SketchStore, which wraps
/// the same sketch machinery in per-dataset fair reader/writer locks.
class RangeQueryEstimator {
 public:
  /// Builds the estimator and bulk-loads `boxes` (degenerate boxes are
  /// dropped: they cannot satisfy strict overlap).
  static Result<RangeQueryEstimator> Build(const std::vector<Box>& boxes,
                                           const RangeEstimatorOptions& opt);

  /// Streaming maintenance (boxes in ORIGINAL coordinates). Mutates the
  /// sketch; not thread-safe (see class comment).
  void Insert(const Box& box);
  /// Streaming removal; same contract as Insert.
  void Delete(const Box& box);

  /// Estimated |Q(query, R)| for a query box in ORIGINAL coordinates; the
  /// query must be non-degenerate in every dimension. Read-only; safe
  /// concurrently with other reads but not with Insert/Delete.
  double EstimateCount(const Box& query) const;

  /// Estimated selectivity (count / |R|); 0 for an empty dataset.
  /// Read-only, same contract as EstimateCount.
  double EstimateSelectivity(const Box& query) const;

  /// Net objects summarized (inserts minus deletes). Read-only.
  int64_t num_objects() const { return sketch_->num_objects(); }
  /// Paper-accounted size in words. Read-only.
  uint64_t MemoryWords() const { return sketch_->MemoryWords(); }
  /// The transformed-domain schema (shareable with other sketches).
  const SchemaPtr& schema() const { return schema_; }

 private:
  RangeQueryEstimator(SchemaPtr schema, std::unique_ptr<DatasetSketch> sketch,
                      uint32_t dims)
      : schema_(std::move(schema)), sketch_(std::move(sketch)), dims_(dims) {}

  SchemaPtr schema_;
  std::unique_ptr<DatasetSketch> sketch_;
  uint32_t dims_;
};

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_ESTIMATORS_RANGE_QUERY_ESTIMATOR_H_
