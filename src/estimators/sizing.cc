#include "src/estimators/sizing.h"

#include <cmath>

namespace spatialsketch {

Result<SizingResult> SizeForGuarantee(double epsilon, double phi,
                                      double variance_bound,
                                      double expected_value) {
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (!(phi > 0.0 && phi < 1.0)) {
    return Status::InvalidArgument("phi must be in (0, 1)");
  }
  if (!(variance_bound >= 0.0)) {
    return Status::InvalidArgument("variance bound must be non-negative");
  }
  if (!(expected_value > 0.0)) {
    return Status::InvalidArgument("expected value must be positive");
  }
  SizingResult out;
  const double k1 =
      std::ceil(8.0 * variance_bound /
                (epsilon * epsilon * expected_value * expected_value));
  out.k1 = static_cast<uint32_t>(std::max(1.0, k1));
  uint32_t k2 = static_cast<uint32_t>(std::ceil(2.0 * std::log2(1.0 / phi)));
  if (k2 < 1) k2 = 1;
  if (k2 % 2 == 0) ++k2;  // odd medians are strictly order statistics
  out.k2 = k2;
  out.instances = static_cast<uint64_t>(out.k1) * out.k2;
  return out;
}

double JoinVarianceBound(double sj_r, double sj_s, uint32_t dims) {
  const double num = std::pow(3.0, dims) - 1.0;
  const double den = std::pow(4.0, dims);
  return num / den * sj_r * sj_s;
}

double EpsJoinVarianceBound(double sj_points, double sj_boxes,
                            uint32_t dims) {
  return (std::pow(3.0, dims) - 1.0) * sj_points * sj_boxes;
}

double RangeQueryVarianceBound(double sj_r, uint32_t log2_domain) {
  return 2.0 * (3.0 * log2_domain + 1.0) * sj_r;
}

}  // namespace spatialsketch
