#include "src/estimators/range_query_estimator.h"

#include "src/dyadic/endpoint_transform.h"
#include "src/estimators/adaptive.h"
#include "src/estimators/combine.h"
#include "src/gf2/gf2_64.h"
#include "src/xi/bch_family.h"

namespace spatialsketch {

Result<RangeQueryEstimator> RangeQueryEstimator::Build(
    const std::vector<Box>& boxes, const RangeEstimatorOptions& opt) {
  std::vector<Box> transformed;
  transformed.reserve(boxes.size());
  for (const Box& b : boxes) {
    if (IsDegenerate(b, opt.dims)) continue;
    transformed.push_back(EndpointTransform::MapR(b, opt.dims));
  }

  std::vector<uint32_t> caps;
  if (opt.auto_max_level) {
    const uint32_t tlog2 =
        EndpointTransform::TransformedLog2(opt.log2_domain);
    caps = SelectMaxLevelPerDim(transformed, transformed, opt.dims, tlog2);
  }
  auto schema = MakeTransformedSchema(opt.dims, opt.log2_domain,
                                      opt.max_level,
                                      caps.empty() ? nullptr : caps.data(),
                                      opt.k1, opt.k2, opt.seed);
  if (!schema.ok()) return schema.status();

  auto sketch = std::make_unique<DatasetSketch>(*schema,
                                                Shape::RangeShape(opt.dims));
  sketch->BulkLoad(transformed);
  return RangeQueryEstimator(*schema, std::move(sketch), opt.dims);
}

void RangeQueryEstimator::Insert(const Box& box) {
  if (IsDegenerate(box, dims_)) return;
  sketch_->Insert(EndpointTransform::MapR(box, dims_));
}

void RangeQueryEstimator::Delete(const Box& box) {
  if (IsDegenerate(box, dims_)) return;
  sketch_->Delete(EndpointTransform::MapR(box, dims_));
}

double EstimateRangeCount(const DatasetSketch& sketch, const Box& query) {
  const SchemaPtr& schema = sketch.schema();
  const uint32_t dims = schema->dims();
  SKETCH_CHECK(sketch.shape() == Shape::RangeShape(dims));
  SKETCH_CHECK(!IsDegenerate(query, dims));
  const Box q = EndpointTransform::ShrinkS(query, dims);
  const uint32_t instances = schema->instances();
  const uint32_t num_words = uint32_t{1} << dims;

  // Per-dimension query id lists with precomputed cubes (shared across
  // instances): the interval cover of q's range and the point cover of
  // q's upper endpoint.
  struct QueryIds {
    std::vector<uint64_t> cover_ids, cover_cubes;
    std::vector<uint64_t> upper_ids, upper_cubes;
  };
  std::vector<QueryIds> qids(dims);
  for (uint32_t d = 0; d < dims; ++d) {
    const DyadicDomain& dom = schema->domain(d);
    dom.ForEachCoverId(q.lo[d], q.hi[d], [&](uint64_t id) {
      qids[d].cover_ids.push_back(id);
      qids[d].cover_cubes.push_back(gf2::Cube(id));
    });
    dom.ForEachPointCoverId(q.hi[d], [&](uint64_t id) {
      qids[d].upper_ids.push_back(id);
      qids[d].upper_cubes.push_back(gf2::Cube(id));
    });
  }

  std::vector<double> z(instances);
  for (uint32_t inst = 0; inst < instances; ++inst) {
    // Per-dim factors: q_I (cover sum) pairs with data letter U; q_U
    // (upper point-cover sum) pairs with data letter I.
    double q_factor[kMaxDims][2];  // [dim][0]=q_I, [dim][1]=q_U
    for (uint32_t d = 0; d < dims; ++d) {
      const BchXiFamily fam(schema->seed(inst, d));
      int32_t s_cover = 0;
      for (size_t i = 0; i < qids[d].cover_ids.size(); ++i) {
        s_cover += fam.SignWithCube(qids[d].cover_ids[i],
                                    qids[d].cover_cubes[i]);
      }
      int32_t s_upper = 0;
      for (size_t i = 0; i < qids[d].upper_ids.size(); ++i) {
        s_upper += fam.SignWithCube(qids[d].upper_ids[i],
                                    qids[d].upper_cubes[i]);
      }
      q_factor[d][0] = s_cover;
      q_factor[d][1] = s_upper;
    }
    double acc = 0.0;
    for (uint32_t w = 0; w < num_words; ++w) {
      // RangeShape is bitmask-ordered (bit d set => data letter U in dim
      // d). Complementary pairing per dimension: data letter U pairs with
      // the query's interval-cover factor q_I (index 0), data letter I
      // pairs with the query's upper-point factor q_U (index 1).
      double prod = static_cast<double>(sketch.Counter(inst, w));
      for (uint32_t d = 0; d < dims; ++d) {
        prod *= q_factor[d][((w >> d) & 1) ? 0 : 1];
      }
      acc += prod;
    }
    z[inst] = acc;
  }
  return MedianOfMeans(z, schema->k1(), schema->k2());
}

double RangeQueryEstimator::EstimateCount(const Box& query) const {
  return EstimateRangeCount(*sketch_, query);
}

double RangeQueryEstimator::EstimateSelectivity(const Box& query) const {
  const int64_t n = sketch_->num_objects();
  if (n <= 0) return 0.0;
  return EstimateCount(query) / static_cast<double>(n);
}

}  // namespace spatialsketch
