#include "src/estimators/range_query_estimator.h"

#include <algorithm>

#include "src/dyadic/endpoint_transform.h"
#include "src/estimators/adaptive.h"
#include "src/estimators/combine.h"
#include "src/xi/kernels.h"

namespace spatialsketch {

Result<RangeQueryEstimator> RangeQueryEstimator::Build(
    const std::vector<Box>& boxes, const RangeEstimatorOptions& opt) {
  std::vector<Box> transformed;
  transformed.reserve(boxes.size());
  for (const Box& b : boxes) {
    if (IsDegenerate(b, opt.dims)) continue;
    transformed.push_back(EndpointTransform::MapR(b, opt.dims));
  }

  std::vector<uint32_t> caps;
  if (opt.auto_max_level) {
    const uint32_t tlog2 =
        EndpointTransform::TransformedLog2(opt.log2_domain);
    caps = SelectMaxLevelPerDim(transformed, transformed, opt.dims, tlog2);
  }
  auto schema = MakeTransformedSchema(opt.dims, opt.log2_domain,
                                      opt.max_level,
                                      caps.empty() ? nullptr : caps.data(),
                                      opt.k1, opt.k2, opt.seed);
  if (!schema.ok()) return schema.status();

  auto sketch = std::make_unique<DatasetSketch>(*schema,
                                                Shape::RangeShape(opt.dims));
  SKETCH_RETURN_NOT_OK(sketch->BulkLoad(transformed));
  return RangeQueryEstimator(*schema, std::move(sketch), opt.dims);
}

void RangeQueryEstimator::Insert(const Box& box) {
  if (IsDegenerate(box, dims_)) return;
  sketch_->Insert(EndpointTransform::MapR(box, dims_));
}

void RangeQueryEstimator::Delete(const Box& box) {
  if (IsDegenerate(box, dims_)) return;
  sketch_->Delete(EndpointTransform::MapR(box, dims_));
}

RangeQueryBatch::RangeQueryBatch(const DatasetSketch* sketch,
                                 const Box* queries, size_t count)
    : sketch_(sketch) {
  SKETCH_CHECK(sketch != nullptr && (queries != nullptr || count == 0));
  const SchemaPtr& schema = sketch->schema();
  const uint32_t dims = schema->dims();
  SKETCH_CHECK(sketch->shape() == Shape::RangeShape(dims));
  const PackedSignCache& cache = schema->sign_cache();
  // The raw column pointers stored below are read by EstimateOne for the
  // batch's whole lifetime; pin the cache so budget eviction retires
  // instead of freeing them (no-op without a global budget).
  sign_pin_ = PackedSignCache::Pin(&cache);

  queries_.resize(count);
  for (size_t qi = 0; qi < count; ++qi) {
    SKETCH_CHECK(!IsDegenerate(queries[qi], dims));
    const Box q = EndpointTransform::ShrinkS(queries[qi], dims);
    QueryIds& ids = queries_[qi];
    for (uint32_t d = 0; d < dims; ++d) {
      const DyadicDomain& dom = schema->domain(d);
      dom.ForEachCoverId(q.lo[d], q.hi[d], [&](uint64_t id) {
        ids.cover_cols[d].push_back(cache.Column(d, id));
      });
      dom.ForEachPointCoverId(q.hi[d], [&](uint64_t id) {
        ids.upper_cols[d].push_back(cache.Column(d, id));
      });
    }
  }
}

double RangeQueryBatch::EstimateOne(size_t i) const {
  SKETCH_CHECK(i < queries_.size());
  const DatasetSketch& sketch = *sketch_;
  const SchemaPtr& schema = sketch.schema();
  const uint32_t dims = schema->dims();
  const uint32_t instances = schema->instances();
  const uint32_t blocks = schema->sign_cache().num_blocks();
  const QueryIds& ids = queries_[i];

  // Stage 1 — bit-sliced per-instance query factors through the kernel
  // dispatch: for each dim the xi-sum over the cover (index 0, pairs with
  // data letter U) and over the upper endpoint's point cover (index 1,
  // pairs with data letter I). The CSA reduction runs over ALL instance
  // blocks in one id-ordered pass so each column's cache lines are read
  // sequentially exactly once; counts are exact, so every kernel variant
  // produces the same factors.
  const kernels::KernelOps& kops = kernels::Ops();
  // Per-thread scratch reused across queries: the store's query pool
  // calls EstimateOne concurrently on ONE shared batch, so the scratch
  // cannot live on the batch object; thread-locals make the per-query
  // resizes no-ops after each thread's first query of a given schema
  // size instead of allocator round-trips on the hottest query path.
  thread_local std::vector<int32_t> factors;
  thread_local std::vector<uint64_t> packed;
  thread_local std::vector<uint64_t> planes;
  thread_local std::vector<int32_t> wide;  // sized only for >255-id covers
  factors.resize(static_cast<size_t>(dims) * 2 * instances);
  packed.resize(static_cast<size_t>(blocks) * 8);
  planes.resize(static_cast<size_t>(blocks) * 6);
  auto factor = [&](uint32_t d, uint32_t which) {
    return factors.data() + (static_cast<size_t>(d) * 2 + which) * instances;
  };
  int32_t lane_buf[64];
  for (uint32_t d = 0; d < dims; ++d) {
    for (uint32_t which = 0; which < 2; ++which) {
      const auto& cols = which == 0 ? ids.cover_cols[d] : ids.upper_cols[d];
      const size_t m = cols.size();
      int32_t* out = factor(d, which);
      if (m == 0) {
        std::fill(out, out + instances, 0);
        continue;
      }
      if (m > 255) {
        wide.resize(static_cast<size_t>(blocks) * 64);
        kops.count_columns_wide(cols.data(), m, blocks, wide.data(),
                                packed.data(), planes.data());
      } else {
        kops.count_columns_packed(cols.data(), m, blocks, packed.data(),
                                  planes.data());
      }
      for (uint32_t blk = 0; blk < blocks; ++blk) {
        const uint32_t lanes = std::min(64u, instances - blk * 64);
        if (m > 255) {
          kops.lanes_from_wide(wide.data() + static_cast<size_t>(blk) * 64,
                               static_cast<int32_t>(m), lane_buf);
        } else {
          kops.lanes_from_packed(packed.data() + static_cast<size_t>(blk) * 8,
                                 static_cast<int32_t>(m), lane_buf);
        }
        std::copy(lane_buf, lane_buf + lanes, out + blk * 64);
      }
    }
  }

  // Stage 2 — the z-walk over the counters through the counter store's
  // layout descriptor (kernel dispatch for flat int64, an order-identical
  // generic walk otherwise). RangeShape is bitmask-ordered (bit d set =>
  // data letter U in dim d) with complementary pairing per dimension:
  // data letter U pairs with the query's interval-cover factor q_I
  // (index 0), data letter I pairs with the query's upper-point factor
  // q_U (index 1). Every kernel variant performs the per-instance FP
  // accumulation in the scalar order, so batch results stay bit-identical
  // to per-query EstimateRangeCount calls under any variant.
  thread_local std::vector<double> z;
  z.resize(instances);
  sketch.counter_store().RangeZ(dims, factors.data(), z.data());
  return MedianOfMeans(z, schema->k1(), schema->k2());
}

std::vector<double> RangeQueryBatch::EstimateAll() const {
  std::vector<double> out(queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) out[i] = EstimateOne(i);
  return out;
}

std::vector<double> EstimateRangeCountBatch(const DatasetSketch& sketch,
                                            const std::vector<Box>& queries) {
  return RangeQueryBatch(&sketch, queries.data(), queries.size())
      .EstimateAll();
}

double EstimateRangeCount(const DatasetSketch& sketch, const Box& query) {
  return RangeQueryBatch(&sketch, &query, 1).EstimateOne(0);
}

double RangeQueryEstimator::EstimateCount(const Box& query) const {
  return EstimateRangeCount(*sketch_, query);
}

double RangeQueryEstimator::EstimateSelectivity(const Box& query) const {
  const int64_t n = sketch_->num_objects();
  if (n <= 0) return 0.0;
  return EstimateCount(query) / static_cast<double>(n);
}

}  // namespace spatialsketch
