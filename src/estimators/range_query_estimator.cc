#include "src/estimators/range_query_estimator.h"

#include <algorithm>

#include "src/dyadic/endpoint_transform.h"
#include "src/estimators/adaptive.h"
#include "src/estimators/combine.h"
#include "src/xi/bitslice.h"

namespace spatialsketch {

Result<RangeQueryEstimator> RangeQueryEstimator::Build(
    const std::vector<Box>& boxes, const RangeEstimatorOptions& opt) {
  std::vector<Box> transformed;
  transformed.reserve(boxes.size());
  for (const Box& b : boxes) {
    if (IsDegenerate(b, opt.dims)) continue;
    transformed.push_back(EndpointTransform::MapR(b, opt.dims));
  }

  std::vector<uint32_t> caps;
  if (opt.auto_max_level) {
    const uint32_t tlog2 =
        EndpointTransform::TransformedLog2(opt.log2_domain);
    caps = SelectMaxLevelPerDim(transformed, transformed, opt.dims, tlog2);
  }
  auto schema = MakeTransformedSchema(opt.dims, opt.log2_domain,
                                      opt.max_level,
                                      caps.empty() ? nullptr : caps.data(),
                                      opt.k1, opt.k2, opt.seed);
  if (!schema.ok()) return schema.status();

  auto sketch = std::make_unique<DatasetSketch>(*schema,
                                                Shape::RangeShape(opt.dims));
  SKETCH_RETURN_NOT_OK(sketch->BulkLoad(transformed));
  return RangeQueryEstimator(*schema, std::move(sketch), opt.dims);
}

void RangeQueryEstimator::Insert(const Box& box) {
  if (IsDegenerate(box, dims_)) return;
  sketch_->Insert(EndpointTransform::MapR(box, dims_));
}

void RangeQueryEstimator::Delete(const Box& box) {
  if (IsDegenerate(box, dims_)) return;
  sketch_->Delete(EndpointTransform::MapR(box, dims_));
}

RangeQueryBatch::RangeQueryBatch(const DatasetSketch* sketch,
                                 const Box* queries, size_t count)
    : sketch_(sketch) {
  SKETCH_CHECK(sketch != nullptr && (queries != nullptr || count == 0));
  const SchemaPtr& schema = sketch->schema();
  const uint32_t dims = schema->dims();
  SKETCH_CHECK(sketch->shape() == Shape::RangeShape(dims));
  const PackedSignCache& cache = schema->sign_cache();

  queries_.resize(count);
  for (size_t qi = 0; qi < count; ++qi) {
    SKETCH_CHECK(!IsDegenerate(queries[qi], dims));
    const Box q = EndpointTransform::ShrinkS(queries[qi], dims);
    QueryIds& ids = queries_[qi];
    for (uint32_t d = 0; d < dims; ++d) {
      const DyadicDomain& dom = schema->domain(d);
      dom.ForEachCoverId(q.lo[d], q.hi[d], [&](uint64_t id) {
        ids.cover_cols[d].push_back(cache.Column(d, id));
      });
      dom.ForEachPointCoverId(q.hi[d], [&](uint64_t id) {
        ids.upper_cols[d].push_back(cache.Column(d, id));
      });
    }
  }
}

double RangeQueryBatch::EstimateOne(size_t i) const {
  SKETCH_CHECK(i < queries_.size());
  const DatasetSketch& sketch = *sketch_;
  const SchemaPtr& schema = sketch.schema();
  const uint32_t dims = schema->dims();
  const uint32_t instances = schema->instances();
  const uint32_t blocks = schema->sign_cache().num_blocks();
  const uint32_t num_words = uint32_t{1} << dims;
  const QueryIds& ids = queries_[i];

  // Stage 1 — bit-sliced per-instance query factors: for each dim the
  // xi-sum over the cover (index 0, pairs with data letter U) and over
  // the upper endpoint's point cover (index 1, pairs with data letter I),
  // 64 instance lanes per column word.
  int32_t sums[kMaxDims][2][64];  // [dim][cover/upper][lane], one block
  std::vector<int32_t> factors(static_cast<size_t>(dims) * 2 * instances);
  auto factor = [&](uint32_t d, uint32_t which) {
    return factors.data() + (static_cast<size_t>(d) * 2 + which) * instances;
  };
  for (uint32_t blk = 0; blk < blocks; ++blk) {
    const uint32_t lanes = std::min(64u, instances - blk * 64);
    for (uint32_t d = 0; d < dims; ++d) {
      for (uint32_t which = 0; which < 2; ++which) {
        const auto& cols = which == 0 ? ids.cover_cols[d] : ids.upper_cols[d];
        const size_t m = cols.size();
        int32_t* lane_sums = sums[d][which];
        if (m == 0) {
          std::fill(lane_sums, lane_sums + 64, 0);
        } else if (m > 255) {
          bitslice::CountOnesWide([&](size_t k) { return cols[k][blk]; }, m,
                                  lane_sums);
          for (uint32_t j = 0; j < 64; ++j) {
            lane_sums[j] = static_cast<int32_t>(m) - 2 * lane_sums[j];
          }
        } else {
          uint64_t packed[8];
          bitslice::CountOnesPacked([&](size_t k) { return cols[k][blk]; },
                                    m, packed);
          for (uint32_t j = 0; j < 64; ++j) {
            lane_sums[j] = static_cast<int32_t>(m) -
                           2 * bitslice::PackedLane(packed, j);
          }
        }
        int32_t* out = factor(d, which) + blk * 64;
        std::copy(lane_sums, lane_sums + lanes, out);
      }
    }
  }

  // Stage 2 — walk the counters in contiguous instance-major order. The
  // arithmetic (value types, loop order) mirrors the original scalar
  // estimator exactly, so batch results are bit-identical to per-query
  // EstimateRangeCount calls.
  std::vector<double> z(instances);
  for (uint32_t inst = 0; inst < instances; ++inst) {
    double q_factor[kMaxDims][2];  // [dim][0]=q_I, [dim][1]=q_U
    for (uint32_t d = 0; d < dims; ++d) {
      q_factor[d][0] = factor(d, 0)[inst];
      q_factor[d][1] = factor(d, 1)[inst];
    }
    double acc = 0.0;
    for (uint32_t w = 0; w < num_words; ++w) {
      // RangeShape is bitmask-ordered (bit d set => data letter U in dim
      // d). Complementary pairing per dimension: data letter U pairs with
      // the query's interval-cover factor q_I (index 0), data letter I
      // pairs with the query's upper-point factor q_U (index 1).
      double prod = static_cast<double>(sketch.Counter(inst, w));
      for (uint32_t d = 0; d < dims; ++d) {
        prod *= q_factor[d][((w >> d) & 1) ? 0 : 1];
      }
      acc += prod;
    }
    z[inst] = acc;
  }
  return MedianOfMeans(z, schema->k1(), schema->k2());
}

std::vector<double> RangeQueryBatch::EstimateAll() const {
  std::vector<double> out(queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) out[i] = EstimateOne(i);
  return out;
}

std::vector<double> EstimateRangeCountBatch(const DatasetSketch& sketch,
                                            const std::vector<Box>& queries) {
  return RangeQueryBatch(&sketch, queries.data(), queries.size())
      .EstimateAll();
}

double EstimateRangeCount(const DatasetSketch& sketch, const Box& query) {
  return RangeQueryBatch(&sketch, &query, 1).EstimateOne(0);
}

double RangeQueryEstimator::EstimateCount(const Box& query) const {
  return EstimateRangeCount(*sketch_, query);
}

double RangeQueryEstimator::EstimateSelectivity(const Box& query) const {
  const int64_t n = sketch_->num_objects();
  if (n <= 0) return 0.0;
  return EstimateCount(query) / static_cast<double>(n);
}

}  // namespace spatialsketch
