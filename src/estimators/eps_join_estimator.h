// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// eps-join estimation for point sets (Section 6.3): points of B are
// replaced by closed L-infinity squares of side 2*eps; the join count is
// the number of (point of A, square of B') containments, estimated per
// instance by Z = X_{L^d} * Y_{I^d}. Containment counting with dyadic
// covers is exact under coordinate collisions, so no endpoint
// transformation is needed.

#ifndef SPATIALSKETCH_ESTIMATORS_EPS_JOIN_ESTIMATOR_H_
#define SPATIALSKETCH_ESTIMATORS_EPS_JOIN_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/geom/box.h"
#include "src/sketch/dataset_sketch.h"
#include "src/sketch/schema.h"

namespace spatialsketch {

/// Combined estimate from a point sketch (PointShape) and a box-cover
/// sketch (BoxCoverShape) under one schema.
Result<double> EstimateContainmentCardinality(const DatasetSketch& points,
                                              const DatasetSketch& boxes);

/// Per-instance raw estimates Z_i = X_{L^d}(i) * Y_{I^d}(i).
Result<std::vector<double>> ContainmentEstimatesPerInstance(
    const DatasetSketch& points, const DatasetSketch& boxes);

struct EpsJoinPipelineOptions {
  uint32_t dims = 2;
  uint32_t log2_domain = 14;
  Coord eps = 16;
  uint32_t max_level = DyadicDomain::kNoCap;
  /// Section 6.5: choose per-dimension caps minimizing the marginal
  /// self-join sizes of the point set and the expanded squares.
  bool auto_max_level = false;
  uint32_t k1 = 64;
  uint32_t k2 = 9;
  uint64_t seed = 1;
};

struct EpsJoinPipelineResult {
  double estimate = 0.0;
  uint64_t words_per_dataset = 0;
};

/// One-call eps-join estimate of two point sets (degenerate boxes).
Result<EpsJoinPipelineResult> SketchEpsJoin(const std::vector<Box>& a,
                                            const std::vector<Box>& b,
                                            const EpsJoinPipelineOptions& opt);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_ESTIMATORS_EPS_JOIN_ESTIMATOR_H_
