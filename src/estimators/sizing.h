// Copyright (c) spatialsketch authors. Licensed under the MIT license.
//
// Space sizing from quality guarantees (Lemma 1 / Theorems 1-3): with
// Var[Z] <= V and E[Z] = Q, using k1 = 8 V / (eps^2 Q^2) instances per
// group and k2 = 2 lg(1/phi) groups, the median-of-means estimate is
// within relative error eps of Q with probability >= 1 - phi.
//
// The variance bounds plugged in per estimator:
//   spatial join, d dims:   V = (3^d - 1)/4^d * SJ(R) * SJ(S)
//                           (d=1 and d=2 give the paper's 1/2 SJ SJ)
//   eps-join, d dims:       V = (3^d - 1) * SJ(X_E) * SJ(Y_I)
//   range query, 1-d:       V = 2 (3 log2 n + 1) * SJ(R)
//
// Like every guarantee-driven sizing (Section 2.3 discussion), these need
// (an estimate or sanity bound of) the unknown E[Z]; callers supply it
// from pilot sketches, historical answers, or lower bounds.

#ifndef SPATIALSKETCH_ESTIMATORS_SIZING_H_
#define SPATIALSKETCH_ESTIMATORS_SIZING_H_

#include <cstdint>

#include "src/common/status.h"

namespace spatialsketch {

struct SizingResult {
  uint32_t k1 = 1;
  uint32_t k2 = 1;
  uint64_t instances = 1;  ///< k1 * k2

  /// Paper-accounted words per dataset for a shape with `shape_words`
  /// counters (one amortized seed word per instance).
  uint64_t WordsPerDataset(uint32_t shape_words) const {
    return instances * (shape_words + 1);
  }
};

/// Generic Lemma-1 sizing: k1 = ceil(8 V / (eps^2 Q^2)), k2 = the smallest
/// odd integer >= 2*lg(1/phi). Requires eps, phi in (0, 1), V >= 0, Q > 0.
Result<SizingResult> SizeForGuarantee(double epsilon, double phi,
                                      double variance_bound,
                                      double expected_value);

/// Variance bound of the d-dimensional spatial-join estimator
/// (Theorem 3): (3^d - 1)/4^d * sj_r * sj_s.
double JoinVarianceBound(double sj_r, double sj_s, uint32_t dims);

/// Variance bound of the d-dimensional eps-join estimator (Lemma 8).
double EpsJoinVarianceBound(double sj_points, double sj_boxes, uint32_t dims);

/// Variance bound of the 1-d range-query estimator (Lemma 9);
/// log2_domain is log2 of the (transformed) domain size.
double RangeQueryVarianceBound(double sj_r, uint32_t log2_domain);

}  // namespace spatialsketch

#endif  // SPATIALSKETCH_ESTIMATORS_SIZING_H_
