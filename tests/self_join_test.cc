// Tests for self-join sizes: the exact 1-d array route, the exact
// d-dimensional hashed route, their mutual agreement, and the sketched
// estimate E[X_w^2] = SJ(X_w).

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/geom/box.h"
#include "src/sketch/dataset_sketch.h"
#include "src/sketch/schema.h"
#include "src/sketch/self_join.h"

namespace spatialsketch {
namespace {

std::vector<Box> RandomBoxes(Rng* rng, size_t n, Coord domain,
                             uint32_t dims) {
  std::vector<Box> out;
  for (size_t i = 0; i < n; ++i) {
    Box b;
    for (uint32_t d = 0; d < dims; ++d) {
      const Coord lo = rng->Uniform(domain - 1);
      b.lo[d] = lo;
      b.hi[d] = lo + 1 + rng->Uniform(domain - lo - 1);
    }
    out.push_back(b);
  }
  return out;
}

TEST(SelfJoin, SingleIntervalByHand) {
  // One interval [2, 5] over h=3: its cover is {[2,3], [4,5]} (2 ids of
  // frequency 1 -> SJ(X_I) = 2); endpoints 2 and 5 each have point covers
  // of size 4, sharing only the root (frequency 2) and the level-2
  // interval [0,3]? No: 2 lies in [0,3], 5 in [4,7] at level 2; they share
  // only the root. f has 6 ids of frequency 1 and the root at frequency 2:
  // SJ(X_E) = 6 + 4 = 10.
  const DyadicDomain dom(3);
  const std::vector<Box> boxes = {MakeInterval(2, 5)};
  const auto sj = ExactSelfJoinSizes1D(boxes, dom, Shape::JoinShape(1));
  ASSERT_EQ(sj.size(), 2u);
  EXPECT_DOUBLE_EQ(sj[0], 2.0);
  EXPECT_DOUBLE_EQ(sj[1], 10.0);
  EXPECT_DOUBLE_EQ(ExactTotalSelfJoin1D(boxes, dom), 12.0);
}

TEST(SelfJoin, ArrayAndHashedRoutesAgree1D) {
  Rng rng(1);
  const DyadicDomain dom(7);
  const auto boxes = RandomBoxes(&rng, 60, 128, 1);
  const Shape shape = Shape::JoinShape(1);
  const auto arr = ExactSelfJoinSizes1D(boxes, dom, shape);
  const std::vector<DyadicDomain> doms = {dom};
  for (uint32_t w = 0; w < shape.size(); ++w) {
    EXPECT_DOUBLE_EQ(arr[w],
                     ExactSelfJoinSizeND(boxes, doms, shape.word(w), 1));
  }
}

TEST(SelfJoin, HashedRouteHandles2D) {
  Rng rng(2);
  const std::vector<DyadicDomain> doms = {DyadicDomain(5), DyadicDomain(5)};
  const auto boxes = RandomBoxes(&rng, 30, 32, 2);
  const Shape shape = Shape::JoinShape(2);
  // SJ must be positive and at least |R| (each object contributes at
  // least one tuple of frequency >= 1... the sum of f^2 >= sum of f^2's
  // lower bound via Cauchy-Schwarz: >= (total incidences)^2 / #tuples).
  for (uint32_t w = 0; w < shape.size(); ++w) {
    const double sj = ExactSelfJoinSizeND(boxes, doms, shape.word(w), 2);
    EXPECT_GE(sj, static_cast<double>(boxes.size()));
  }
}

TEST(SelfJoin, ScalesQuadraticallyForDuplicates) {
  // m copies of one interval: every frequency scales by m, SJ by m^2.
  const DyadicDomain dom(6);
  const Box b = MakeInterval(11, 45);
  std::vector<Box> one = {b};
  std::vector<Box> five(5, b);
  const auto sj1 = ExactSelfJoinSizes1D(one, dom, Shape::JoinShape(1));
  const auto sj5 = ExactSelfJoinSizes1D(five, dom, Shape::JoinShape(1));
  EXPECT_DOUBLE_EQ(sj5[0], 25.0 * sj1[0]);
  EXPECT_DOUBLE_EQ(sj5[1], 25.0 * sj1[1]);
}

TEST(SelfJoin, CapZeroMatchesStandardSketchSelfJoin) {
  // With maxLevel = 0 the interval sketch is the standard sketch V_I: f
  // counts per-coordinate incidences.
  const DyadicDomain dom(4, 0);
  const std::vector<Box> boxes = {MakeInterval(0, 3), MakeInterval(2, 5)};
  const auto sj = ExactSelfJoinSizes1D(boxes, dom, Shape::JoinShape(1));
  // Coordinates 0,1 freq 1; 2,3 freq 2; 4,5 freq 1 -> SJ = 2+8+2 = 12.
  EXPECT_DOUBLE_EQ(sj[0], 12.0);
}

TEST(SelfJoin, SketchedEstimateTracksExact1D) {
  Rng rng(3);
  const uint32_t h = 8;
  const auto boxes = RandomBoxes(&rng, 150, 256, 1);

  SchemaOptions so;
  so.dims = 1;
  so.domains[0].log2_size = h;
  so.k1 = 256;
  so.k2 = 9;
  so.seed = 99;
  auto schema = SketchSchema::Create(so);
  ASSERT_TRUE(schema.ok());
  DatasetSketch sketch(*schema, Shape::JoinShape(1));
  sketch.BulkLoad(boxes);

  const auto exact =
      ExactSelfJoinSizes1D(boxes, (*schema)->domain(0), Shape::JoinShape(1));
  for (uint32_t w = 0; w < 2; ++w) {
    const double est = EstimateSelfJoinSize(sketch, w);
    EXPECT_NEAR(est, exact[w], 0.35 * exact[w])
        << "word " << w << " exact " << exact[w] << " est " << est;
  }
  const double total = EstimateTotalSelfJoin(sketch);
  EXPECT_NEAR(total, exact[0] + exact[1], 0.35 * (exact[0] + exact[1]));
}

TEST(SelfJoin, EmptyDatasetHasZeroSelfJoin) {
  const DyadicDomain dom(5);
  const auto sj = ExactSelfJoinSizes1D({}, dom, Shape::JoinShape(1));
  EXPECT_DOUBLE_EQ(sj[0], 0.0);
  EXPECT_DOUBLE_EQ(sj[1], 0.0);
}

}  // namespace
}  // namespace spatialsketch
