// The event-driven serving core's contracts (src/net/server.cc,
// IoMode::kEvented), beyond what the engine-agnostic round-trip suite
// in net_server_test.cc already pins:
//
//  - Request pipelining: a burst of M frames written in ONE send must
//    come back as M responses, in request order, byte-identical to the
//    same frames served one at a time by the legacy threaded engine —
//    while the wire-level counters prove the burst really was read and
//    answered in far fewer syscalls than frames.
//  - Reassembly: a sender may splinter its frames across hundreds of
//    1-byte writes (worst-case short writes on a real socket); the
//    buffered reader must reassemble them exactly, on both engines.
//  - Poisoned tail: valid frames buffered ahead of a corrupt one are
//    served in order before the error frame and the close.
//  - Connection cap: the accept over the cap gets one clean
//    kMsgTypeOverCapacity error frame and a close — never a hang —
//    and capacity frees when a live connection leaves.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/api/query_wire.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/store/sketch_store.h"
#include "src/workload/zipf_boxes.h"

namespace spatialsketch {
namespace {

using net::IoMode;
using net::MsgType;
using net::SketchServer;
using net::SketchServerOptions;
using net::WireReader;

int DialOrDie(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

void SendRaw(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }
}

std::string Envelope(MsgType type, const std::string& tenant,
                     const std::string& body) {
  std::string payload;
  net::PutU8(&payload, net::kProtocolVersion);
  net::PutU8(&payload, static_cast<uint8_t>(type));
  net::PutString(&payload, tenant);
  payload.append(body);
  return payload;
}

/// Parse just the status code out of a response envelope.
uint8_t ResponseCode(const std::string& payload, uint8_t* type = nullptr) {
  WireReader r(payload);
  uint8_t version = 0;
  uint8_t t = 0;
  uint8_t code = 0;
  EXPECT_TRUE(r.GetU8(&version).ok());
  EXPECT_TRUE(r.GetU8(&t).ok());
  EXPECT_TRUE(r.GetU8(&code).ok());
  if (type != nullptr) *type = t;
  return code;
}

/// Populate `store` deterministically (same bytes every call, so two
/// stores built this way serve bit-identical estimates).
void BuildStore(SketchStore* store) {
  StoreSchemaOptions sopt;
  sopt.dims = 2;
  sopt.log2_domain = 9;
  sopt.k1 = 5;
  sopt.k2 = 3;
  sopt.seed = 42;
  ASSERT_TRUE(store->RegisterSchema("s", sopt).ok());
  ASSERT_TRUE(store->CreateDataset("range", "s", DatasetKind::kRange).ok());
  SyntheticBoxOptions gen;
  gen.dims = 2;
  gen.log2_domain = 9;
  gen.count = 200;
  gen.seed = 7;
  ASSERT_TRUE(store->BulkLoad("range", GenerateSyntheticBoxes(gen)).ok());
}

/// The pipelined workload: interleaved queries, updates, pings, and
/// NumObjects probes. The updates make ORDER observable — any engine
/// that reordered or dropped a request would change the bytes of a
/// later query's estimate.
std::vector<std::string> BurstRequests(size_t count) {
  std::vector<std::string> reqs;
  reqs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    switch (i % 4) {
      case 0: {  // range query whose rectangle walks with i
        Box q;
        q.lo = {10 + (i % 32), 10, 0, 0};
        q.hi = {400 + (i % 64), 450, 0, 0};
        QueryBatch batch;
        batch.specs.push_back(QuerySpec::RangeCount("range", q));
        std::string body;
        AppendQueryBatch(&body, batch);
        reqs.push_back(Envelope(MsgType::kRun, "", body));
        break;
      }
      case 1: {  // insert that the NEXT queries must observe
        std::string body;
        net::PutString(&body, "range");
        net::PutU32(&body, 1);
        net::PutU8(&body, 0);
        Box box;
        box.lo = {i % 300, (3 * i) % 300, 0, 0};
        box.hi = {i % 300 + 40, (3 * i) % 300 + 40, 0, 0};
        net::PutBox(&body, box);
        reqs.push_back(Envelope(MsgType::kUpdate, "", body));
        break;
      }
      case 2:
        reqs.push_back(Envelope(MsgType::kPing, "", ""));
        break;
      default: {
        std::string body;
        net::PutString(&body, "range");
        reqs.push_back(Envelope(MsgType::kNumObjects, "", body));
        break;
      }
    }
  }
  return reqs;
}

// ---- Pipelining ------------------------------------------------------------

TEST(NetPipelining, BurstInOneSegmentAnswersInOrderBitIdenticalToThreaded) {
  constexpr size_t kBurst = 64;

  // Two identically built stores: the evented server gets the whole
  // burst in one send; the threaded server gets the same frames one
  // round trip at a time. Every response must match byte for byte.
  SketchStore evented_store;
  SketchStore threaded_store;
  BuildStore(&evented_store);
  BuildStore(&threaded_store);

  SketchServerOptions eopt;
  eopt.io_mode = IoMode::kEvented;
  auto evented = SketchServer::Start(&evented_store, eopt);
  ASSERT_TRUE(evented.ok()) << evented.status().ToString();
  SketchServerOptions topt;
  topt.io_mode = IoMode::kThreaded;
  auto threaded = SketchServer::Start(&threaded_store, topt);
  ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();

  const std::vector<std::string> requests = BurstRequests(kBurst);

  // Reference: strict request/response lockstep against the legacy
  // engine.
  std::vector<std::string> expected;
  {
    const int fd = DialOrDie((*threaded)->port());
    for (const std::string& req : requests) {
      SendRaw(fd, net::EncodeFrame(req));
      std::string reply;
      ASSERT_TRUE(
          net::ReadFrame(fd, &reply, net::kDefaultMaxFrameBytes).ok());
      expected.push_back(reply);
    }
    ::close(fd);
  }

  // Pipelined: every frame in ONE send, then read all the replies.
  const net::IoStats before = (*evented)->io_stats();
  {
    std::string burst;
    for (const std::string& req : requests) {
      net::AppendFrame(&burst, req.data(), req.size());
    }
    const int fd = DialOrDie((*evented)->port());
    SendRaw(fd, burst);
    for (size_t i = 0; i < requests.size(); ++i) {
      std::string reply;
      ASSERT_TRUE(net::ReadFrame(fd, &reply, net::kDefaultMaxFrameBytes).ok())
          << "response " << i << " never arrived";
      EXPECT_EQ(reply, expected[i]) << "response " << i << " diverged";
    }
    ::close(fd);
  }
  const net::IoStats after = (*evented)->io_stats();

  // The engine really pipelined: all frames arrived, in far fewer
  // syscalls than one per RPC on each side of the wire.
  EXPECT_EQ(after.frames_in - before.frames_in, kBurst);
  EXPECT_EQ(after.frames_out - before.frames_out, kBurst);
  EXPECT_LT(after.recv_calls - before.recv_calls, kBurst / 2);
  EXPECT_LT(after.send_calls - before.send_calls, kBurst / 2);

  (*evented)->Stop();
  (*threaded)->Stop();
}

// ---- Engine-parameterized contracts ----------------------------------------

class NetEventedTest : public ::testing::TestWithParam<IoMode> {
 protected:
  void SetUp() override {
    BuildStore(&store_);
    SketchServerOptions opt;
    opt.io_mode = GetParam();
    opt.max_connections = 2;
    auto server = SketchServer::Start(&store_, opt);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  SketchStore store_;
  std::unique_ptr<SketchServer> server_;
};

TEST_P(NetEventedTest, FramesSplinteredIntoOneByteWritesReassemble) {
  // Worst-case sender fragmentation: every frame byte is its own
  // send(2) call (TCP_NODELAY, so most become their own segment). The
  // receiving engine must reassemble the byte stream into the same
  // three requests and answer each correctly.
  const std::vector<std::string> requests = BurstRequests(3);
  const int fd = DialOrDie(server_->port());
  for (const std::string& req : requests) {
    const std::string frame = net::EncodeFrame(req);
    for (char byte : frame) {
      SendRaw(fd, std::string(1, byte));
    }
    std::string reply;
    ASSERT_TRUE(net::ReadFrame(fd, &reply, net::kDefaultMaxFrameBytes).ok());
    EXPECT_EQ(ResponseCode(reply), 0u);
  }
  ::close(fd);
}

TEST_P(NetEventedTest, PoisonedTailServesBufferedPrefixThenCloses) {
  // Three valid frames and a CRC-corrupted fourth, all in one send:
  // the three buffered requests are answered in order first, then the
  // poisoned-stream error frame, then the close.
  const std::vector<std::string> requests = BurstRequests(3);
  std::string burst;
  for (const std::string& req : requests) {
    net::AppendFrame(&burst, req.data(), req.size());
  }
  std::string bad = net::EncodeFrame(Envelope(MsgType::kPing, "", ""));
  bad.back() = static_cast<char>(bad.back() ^ 0x01);  // break the CRC
  burst.append(bad);

  const int fd = DialOrDie(server_->port());
  SendRaw(fd, burst);
  for (size_t i = 0; i < requests.size(); ++i) {
    std::string reply;
    ASSERT_TRUE(net::ReadFrame(fd, &reply, net::kDefaultMaxFrameBytes).ok())
        << "buffered request " << i << " was not served";
    EXPECT_EQ(ResponseCode(reply), 0u);
  }
  std::string reply;
  if (net::ReadFrame(fd, &reply, net::kDefaultMaxFrameBytes).ok()) {
    uint8_t type = 0;
    EXPECT_NE(ResponseCode(reply, &type), 0u);
    EXPECT_EQ(type, net::kMsgTypeUnparseable);
  }
  // The stream must now be closed.
  EXPECT_FALSE(net::ReadFrame(fd, &reply, net::kDefaultMaxFrameBytes).ok());
  ::close(fd);
}

TEST_P(NetEventedTest, ConnectionCapRejectsCleanlyAndFreesOnClose) {
  // Fill the cap (2) with real clients.
  net::SketchClientOptions copt;
  copt.port = server_->port();
  auto c1 = net::SketchClient::Connect(copt);
  ASSERT_TRUE(c1.ok()) << c1.status().ToString();
  auto c2 = net::SketchClient::Connect(copt);
  ASSERT_TRUE(c2.ok()) << c2.status().ToString();

  // The connection over the cap gets one kMsgTypeOverCapacity error
  // frame and a close — a raw passive reader sees exactly that.
  {
    const int fd = DialOrDie(server_->port());
    std::string reply;
    ASSERT_TRUE(net::ReadFrame(fd, &reply, net::kDefaultMaxFrameBytes).ok())
        << "over-cap connection saw no rejection frame";
    uint8_t type = 0;
    const uint8_t code = ResponseCode(reply, &type);
    EXPECT_EQ(type, net::kMsgTypeOverCapacity);
    EXPECT_EQ(code, static_cast<uint8_t>(StatusCode::kFailedPrecondition));
    EXPECT_FALSE(
        net::ReadFrame(fd, &reply, net::kDefaultMaxFrameBytes).ok());
    ::close(fd);
  }

  // A full client sees a prompt clean failure, never a hang.
  {
    auto c3 = net::SketchClient::Connect(copt);
    EXPECT_FALSE(c3.ok());
  }

  // Closing one live connection frees capacity (the server reaps
  // asynchronously, so poll briefly).
  (*c1).reset();
  bool reconnected = false;
  for (int attempt = 0; attempt < 200 && !reconnected; ++attempt) {
    auto again = net::SketchClient::Connect(copt);
    if (again.ok()) {
      auto count = (*again)->NumObjects("range");
      ASSERT_TRUE(count.ok());
      reconnected = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(reconnected) << "capacity never freed after a disconnect";
}

INSTANTIATE_TEST_SUITE_P(
    IoModes, NetEventedTest,
    ::testing::Values(IoMode::kEvented, IoMode::kThreaded),
    [](const ::testing::TestParamInfo<IoMode>& info) {
      return std::string(net::IoModeName(info.param));
    });

}  // namespace
}  // namespace spatialsketch
