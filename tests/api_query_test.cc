// The typed query surface (src/api/): SketchStore::Run must serve every
// QuerySpec kind with values EXACTLY equal to the direct paths (legacy
// store entry points, handle twins, and the standalone estimator
// pipelines under equal options/seed), isolate failures per query, and
// DatasetHandles must skip the registry while staying bit-identical —
// and fail fast once their dataset is dropped.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/dyadic/endpoint_transform.h"
#include "src/estimators/containment_estimator.h"
#include "src/estimators/eps_join_estimator.h"
#include "src/sketch/self_join.h"
#include "src/store/sketch_store.h"

namespace spatialsketch {
namespace {

std::vector<Box> MakeBoxes(uint32_t dims, uint32_t h, size_t count,
                           uint64_t seed) {
  Rng rng(seed);
  const Coord domain = Coord{1} << h;
  std::vector<Box> boxes(count);
  for (Box& b : boxes) {
    for (uint32_t d = 0; d < dims; ++d) {
      const Coord side = 1 + rng.Uniform(domain / 2);
      const Coord lo = rng.Uniform(domain - side);
      b.lo[d] = lo;
      b.hi[d] = lo + side;
    }
  }
  return boxes;
}

std::vector<Box> MakePoints(uint32_t dims, uint32_t h, size_t count,
                            uint64_t seed) {
  Rng rng(seed);
  const Coord domain = Coord{1} << h;
  std::vector<Box> points(count);
  for (Box& p : points) {
    for (uint32_t d = 0; d < dims; ++d) {
      const Coord c = rng.Uniform(domain);
      p.lo[d] = c;
      p.hi[d] = c;
    }
  }
  return points;
}

StoreSchemaOptions SmallSchema(uint32_t dims, uint32_t h) {
  StoreSchemaOptions opt;
  opt.dims = dims;
  opt.log2_domain = h;
  opt.k1 = 8;
  opt.k2 = 3;
  opt.seed = 5;
  return opt;
}

// A store hosting one dataset of every kind: range/join (dims=2 schema
// "s2"), eps pair (dims=2, eps=12), containment pair (dims=1 schema "s1",
// lifted to 2 sketch dimensions).
class ApiQueryTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kH = 9;
  static constexpr Coord kEps = 12;

  void SetUp() override {
    ASSERT_TRUE(store_.RegisterSchema("s2", SmallSchema(2, kH)).ok());
    ASSERT_TRUE(store_.RegisterSchema("s1", SmallSchema(1, kH)).ok());
    ASSERT_TRUE(store_.CreateDataset("range", "s2", DatasetKind::kRange).ok());
    ASSERT_TRUE(store_.CreateDataset("r", "s2", DatasetKind::kJoinR).ok());
    ASSERT_TRUE(store_.CreateDataset("sA", "s2", DatasetKind::kJoinS).ok());
    ASSERT_TRUE(store_.CreateDataset("sB", "s2", DatasetKind::kJoinS).ok());
    ASSERT_TRUE(
        store_.CreateDataset("pts", "s2", DatasetKind::kEpsPoints).ok());
    DatasetOptions eps_opt;
    eps_opt.eps = kEps;
    ASSERT_TRUE(
        store_.CreateDataset("eps", "s2", DatasetKind::kEpsBoxes, eps_opt)
            .ok());
    ASSERT_TRUE(
        store_.CreateDataset("inner", "s1", DatasetKind::kContainInner).ok());
    ASSERT_TRUE(
        store_.CreateDataset("outer", "s1", DatasetKind::kContainOuter).ok());

    range_boxes_ = MakeBoxes(2, kH, 400, 11);
    r_boxes_ = MakeBoxes(2, kH, 300, 12);
    sa_boxes_ = MakeBoxes(2, kH, 200, 13);
    sb_boxes_ = MakeBoxes(2, kH, 200, 14);
    a_points_ = MakePoints(2, kH, 250, 15);
    b_points_ = MakePoints(2, kH, 250, 16);
    inner_boxes_ = MakeBoxes(1, kH, 300, 17);
    outer_boxes_ = MakeBoxes(1, kH, 300, 18);

    ASSERT_TRUE(store_.BulkLoad("range", range_boxes_).ok());
    ASSERT_TRUE(store_.BulkLoad("r", r_boxes_).ok());
    ASSERT_TRUE(store_.BulkLoad("sA", sa_boxes_).ok());
    ASSERT_TRUE(store_.BulkLoad("sB", sb_boxes_).ok());
    ASSERT_TRUE(store_.BulkLoad("pts", a_points_).ok());
    ASSERT_TRUE(store_.BulkLoad("eps", b_points_).ok());
    ASSERT_TRUE(store_.BulkLoad("inner", inner_boxes_).ok());
    ASSERT_TRUE(store_.BulkLoad("outer", outer_boxes_).ok());
  }

  SketchStore store_;
  std::vector<Box> range_boxes_, r_boxes_, sa_boxes_, sb_boxes_;
  std::vector<Box> a_points_, b_points_, inner_boxes_, outer_boxes_;
};

TEST_F(ApiQueryTest, MixedBatchMatchesEveryDirectPathExactly) {
  const Box window = MakeRect(30, 400, 64, 333);

  QueryBatch batch;
  batch.Add(QuerySpec::RangeCount("range", window));
  batch.Add(QuerySpec::RangeSelectivity("range", window));
  batch.Add(QuerySpec::SelfJoinSize("r"));
  batch.Add(QuerySpec::JoinCardinality("r", "sA"));
  batch.Add(QuerySpec::JoinCardinality("r", "sB"));
  batch.Add(QuerySpec::EpsJoin("pts", "eps", kEps));
  batch.Add(QuerySpec::ContainmentJoin("inner", "outer"));
  auto run = store_.Run(batch);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->size(), batch.size());
  for (size_t i = 0; i < run->size(); ++i) {
    ASSERT_TRUE((*run)[i].ok()) << "spec " << i << ": "
                                << (*run)[i].status.ToString();
    EXPECT_EQ((*run)[i].estimator.k1, 8u);
    EXPECT_EQ((*run)[i].estimator.k2, 3u);
    EXPECT_EQ((*run)[i].estimator.instances, 24u);
  }

  // Range kinds: the legacy string path (itself a shim over Run, but
  // exercised as the caller-facing contract).
  auto count = store_.EstimateRangeCount("range", window);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ((*run)[0].value, *count);
  auto sel = store_.EstimateRangeSelectivity("range", window);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ((*run)[1].value, *sel);

  // Self-join size: a standalone sketch under the SAME schema instance,
  // ingested through the same MapR transform, must agree exactly.
  auto schema = store_.GetSchema("s2");
  ASSERT_TRUE(schema.ok());
  DatasetSketch standalone(*schema, Shape::JoinShape(2));
  for (const Box& b : r_boxes_) {
    standalone.Insert(EndpointTransform::MapR(b, 2));
  }
  EXPECT_EQ((*run)[2].value, EstimateTotalSelfJoin(standalone));

  // Spatial joins: the legacy pairwise path.
  auto join_a = store_.EstimateJoin("r", "sA");
  ASSERT_TRUE(join_a.ok());
  EXPECT_EQ((*run)[3].value, *join_a);
  auto join_b = store_.EstimateJoin("r", "sB");
  ASSERT_TRUE(join_b.ok());
  EXPECT_EQ((*run)[4].value, *join_b);

  // Eps join: the standalone pipeline under equal options and seed
  // builds a bit-identical schema and sketches, so the estimate is
  // EXACTLY equal.
  EpsJoinPipelineOptions eps_opt;
  eps_opt.dims = 2;
  eps_opt.log2_domain = kH;
  eps_opt.eps = kEps;
  eps_opt.k1 = 8;
  eps_opt.k2 = 3;
  eps_opt.seed = 5;
  auto eps_pipeline = SketchEpsJoin(a_points_, b_points_, eps_opt);
  ASSERT_TRUE(eps_pipeline.ok());
  EXPECT_EQ((*run)[5].value, eps_pipeline->estimate);

  // Containment join: same exact-equality argument vs its pipeline.
  ContainmentPipelineOptions con_opt;
  con_opt.dims = 1;
  con_opt.log2_domain = kH;
  con_opt.k1 = 8;
  con_opt.k2 = 3;
  con_opt.seed = 5;
  auto con_pipeline =
      SketchContainmentJoin(inner_boxes_, outer_boxes_, con_opt);
  ASSERT_TRUE(con_pipeline.ok());
  EXPECT_EQ((*run)[6].value, con_pipeline->estimate);

  const StoreStats stats = store_.stats();
  EXPECT_GE(stats.range_estimates, 2u);
  EXPECT_GE(stats.join_estimates, 2u);
  EXPECT_EQ(stats.self_join_estimates, 1u);
  EXPECT_EQ(stats.eps_join_estimates, 1u);
  EXPECT_EQ(stats.containment_estimates, 1u);
  EXPECT_GE(stats.query_batches, 1u);
}

TEST_F(ApiQueryTest, HandleSpecsAndHandleTwinsMatchStringPaths) {
  auto range = store_.OpenDataset("range");
  ASSERT_TRUE(range.ok());
  auto r = store_.OpenDataset("r");
  ASSERT_TRUE(r.ok());
  auto sa = store_.OpenDataset("sA");
  ASSERT_TRUE(sa.ok());
  EXPECT_TRUE(range->live());
  EXPECT_EQ(range->name(), "range");
  EXPECT_EQ(range->kind(), DatasetKind::kRange);

  const Box window = MakeRect(10, 200, 5, 480);

  // Handle twins of the single-query paths are bit-identical.
  auto by_name = store_.EstimateRangeCount("range", window);
  auto by_handle = range->EstimateRangeCount(window);
  ASSERT_TRUE(by_name.ok());
  ASSERT_TRUE(by_handle.ok());
  EXPECT_EQ(*by_name, *by_handle);
  auto sel_name = store_.EstimateRangeSelectivity("range", window);
  auto sel_handle = range->EstimateRangeSelectivity(window);
  ASSERT_TRUE(sel_name.ok() && sel_handle.ok());
  EXPECT_EQ(*sel_name, *sel_handle);
  auto n_name = store_.NumObjects("range");
  auto n_handle = range->NumObjects();
  ASSERT_TRUE(n_name.ok() && n_handle.ok());
  EXPECT_EQ(*n_name, *n_handle);

  // Handle-bearing specs resolve without the registry and match
  // name-bearing specs exactly.
  QueryBatch batch;
  batch.Add(QuerySpec::RangeCount(*range, window));
  batch.Add(QuerySpec::JoinCardinality(*r, *sa));
  batch.Add(QuerySpec::SelfJoinSize(*r));
  auto run = store_.Run(batch);
  ASSERT_TRUE(run.ok());
  QueryBatch by_names;
  by_names.Add(QuerySpec::RangeCount("range", window));
  by_names.Add(QuerySpec::JoinCardinality("r", "sA"));
  by_names.Add(QuerySpec::SelfJoinSize("r"));
  auto run_names = store_.Run(by_names);
  ASSERT_TRUE(run_names.ok());
  for (size_t i = 0; i < run->size(); ++i) {
    ASSERT_TRUE((*run)[i].ok());
    ASSERT_TRUE((*run_names)[i].ok());
    EXPECT_EQ((*run)[i].value, (*run_names)[i].value) << "spec " << i;
  }

  // Writes through the handle land in the same counters the string path
  // serves (and vice versa).
  const Box extra = MakeRect(1, 6, 2, 9);
  ASSERT_TRUE(range->Insert(extra).ok());
  auto after_insert = store_.EstimateRangeCount("range", window);
  ASSERT_TRUE(after_insert.ok());
  ASSERT_TRUE(range->Delete(extra).ok());
  auto after_delete = range->EstimateRangeCount(window);
  ASSERT_TRUE(after_delete.ok());
  EXPECT_EQ(*after_delete, *by_handle);  // net-zero round trip

  EXPECT_EQ(store_.stats().handles_opened, 3u);
}

TEST_F(ApiQueryTest, PerQueryFailureIsolation) {
  const Box window = MakeRect(30, 400, 64, 333);
  const Box degenerate = MakeRect(7, 7, 3, 9);

  QueryBatch batch;
  batch.Add(QuerySpec::RangeCount("range", window));          // 0: ok
  batch.Add(QuerySpec::RangeCount("no_such", window));        // 1: unknown
  batch.Add(QuerySpec::RangeCount("r", window));              // 2: kind
  batch.Add(QuerySpec::RangeCount("range", degenerate));      // 3: bad box
  batch.Add(QuerySpec::EpsJoin("pts", "eps", kEps + 1));      // 4: eps
  batch.Add(QuerySpec::JoinCardinality("r", "sA"));           // 5: ok
  batch.Add(QuerySpec::ContainmentJoin("outer", "inner"));    // 6: swapped
  batch.Add(QuerySpec::EpsJoin("pts", "eps", kEps));          // 7: ok
  auto run = store_.Run(batch);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->size(), 8u);

  EXPECT_TRUE((*run)[0].ok());
  EXPECT_EQ((*run)[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ((*run)[2].status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*run)[3].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ((*run)[4].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE((*run)[5].ok());
  EXPECT_EQ((*run)[6].status.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE((*run)[7].ok());

  // The served slots carry exactly the values an all-good batch returns.
  auto count = store_.EstimateRangeCount("range", window);
  auto join = store_.EstimateJoin("r", "sA");
  ASSERT_TRUE(count.ok() && join.ok());
  EXPECT_EQ((*run)[0].value, *count);
  EXPECT_EQ((*run)[5].value, *join);

  // A batch of ONLY failing specs still succeeds as a call.
  QueryBatch all_bad;
  all_bad.Add(QuerySpec::SelfJoinSize("nope"));
  all_bad.Add(QuerySpec::JoinCardinality("sA", "r"));  // roles swapped
  auto bad_run = store_.Run(all_bad);
  ASSERT_TRUE(bad_run.ok());
  EXPECT_FALSE((*bad_run)[0].ok());
  EXPECT_FALSE((*bad_run)[1].ok());

  // Only the empty batch rejects the whole call.
  EXPECT_FALSE(store_.Run(QueryBatch{}).ok());
}

TEST_F(ApiQueryTest, DropInvalidatesHandlesAndRecreationIsANewGeneration) {
  auto handle = store_.OpenDataset("range");
  ASSERT_TRUE(handle.ok());
  const uint64_t old_generation = handle->generation();
  ASSERT_TRUE(handle->EstimateRangeCount(MakeRect(1, 50, 1, 50)).ok());

  ASSERT_TRUE(store_.DropDataset("range").ok());
  EXPECT_TRUE(handle->valid());
  EXPECT_FALSE(handle->live());
  EXPECT_EQ(handle->Insert(MakeRect(1, 5, 1, 5)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(handle->EstimateRangeCount(MakeRect(1, 50, 1, 50)).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(handle->NumObjects().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(handle->Fence().code(), StatusCode::kFailedPrecondition);

  // A stale handle inside a batch fails ONLY its own spec.
  QueryBatch batch;
  batch.Add(QuerySpec::RangeCount(*handle, MakeRect(1, 50, 1, 50)));
  batch.Add(QuerySpec::JoinCardinality("r", "sA"));
  auto run = store_.Run(batch);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ((*run)[0].status.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE((*run)[1].ok());

  // Re-creating the name yields a NEW generation; the stale handle keeps
  // failing while a fresh handle serves the new dataset.
  ASSERT_TRUE(store_.CreateDataset("range", "s2", DatasetKind::kRange).ok());
  EXPECT_FALSE(handle->live());
  EXPECT_FALSE(handle->EstimateRangeCount(MakeRect(1, 50, 1, 50)).ok());
  auto fresh = store_.OpenDataset("range");
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh->generation(), old_generation);
  auto empty = fresh->EstimateRangeCount(MakeRect(1, 50, 1, 50));
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, 0.0);  // the new dataset starts empty

  // Default-constructed handles fail every operation.
  DatasetHandle unbound;
  EXPECT_FALSE(unbound.valid());
  EXPECT_EQ(unbound.Insert(MakeRect(1, 5, 1, 5)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(unbound.NumObjects().ok());
}

TEST_F(ApiQueryTest, RunMatchesDirectPathsUnderLiveShardedWriters) {
  ShardedWriterOptions shard_opt;
  shard_opt.writers = 2;
  shard_opt.epoch_updates = 64;
  ASSERT_TRUE(store_.ConfigureShardedWriters("range", shard_opt).ok());
  auto handle = store_.OpenDataset("range");
  ASSERT_TRUE(handle.ok());

  const std::vector<Box> uniq = MakeBoxes(2, kH, 8, 21);
  QueryBatch doubled;
  for (const Box& q : uniq) {
    doubled.Add(QuerySpec::RangeCount("range", q));
    doubled.Add(QuerySpec::RangeCount(*handle, q));
  }
  doubled.Add(QuerySpec::EpsJoin("pts", "eps", kEps));
  doubled.Add(QuerySpec::ContainmentJoin("inner", "outer"));

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      const auto stream = MakeBoxes(2, kH, 128, 100 + w);
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ASSERT_TRUE(handle->Insert(stream[i % stream.size()]).ok());
        ASSERT_TRUE(handle->Delete(stream[i % stream.size()]).ok());
        ++i;
      }
    });
  }
  // While writers stream: a batch reads one consistent counter state, so
  // the name-spec and handle-spec duplicates of each query MUST agree
  // exactly within a batch.
  for (int round = 0; round < 30; ++round) {
    auto run = store_.Run(doubled);
    ASSERT_TRUE(run.ok());
    for (size_t i = 0; i < uniq.size(); ++i) {
      ASSERT_TRUE((*run)[2 * i].ok());
      ASSERT_TRUE((*run)[2 * i + 1].ok());
      ASSERT_EQ((*run)[2 * i].value, (*run)[2 * i + 1].value)
          << "round " << round << " query " << i
          << ": duplicates diverged within one batch";
    }
    ASSERT_TRUE((*run)[2 * uniq.size()].ok());
    ASSERT_TRUE((*run)[2 * uniq.size() + 1].ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();

  // After the stream drains (net zero, fenced), Run == the legacy
  // per-call paths exactly, for every kind in the batch.
  ASSERT_TRUE(store_.Fence("range").ok());
  auto run = store_.Run(doubled);
  ASSERT_TRUE(run.ok());
  for (size_t i = 0; i < uniq.size(); ++i) {
    auto single = store_.EstimateRangeCount("range", uniq[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*run)[2 * i].value, *single);
    EXPECT_EQ((*run)[2 * i + 1].value, *single);
  }
  EpsJoinPipelineOptions eps_opt;
  eps_opt.dims = 2;
  eps_opt.log2_domain = kH;
  eps_opt.eps = kEps;
  eps_opt.k1 = 8;
  eps_opt.k2 = 3;
  eps_opt.seed = 5;
  auto eps_pipeline = SketchEpsJoin(a_points_, b_points_, eps_opt);
  ASSERT_TRUE(eps_pipeline.ok());
  EXPECT_EQ((*run)[2 * uniq.size()].value, eps_pipeline->estimate);
}

TEST_F(ApiQueryTest, IngestValidationPerKind) {
  // Point kinds require lo == hi; boxes are rejected, not silently
  // dropped.
  EXPECT_EQ(store_.Insert("pts", MakeRect(1, 2, 3, 4)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store_.Insert("eps", MakeRect(1, 2, 3, 4)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(store_.Insert("pts", MakePoint({9, 9})).ok());
  EXPECT_TRUE(store_.Delete("pts", MakePoint({9, 9})).ok());

  // Range/join kinds drop degenerate boxes (pre-redesign contract).
  const uint64_t dropped_before = store_.stats().dropped;
  EXPECT_TRUE(store_.Insert("range", MakeRect(7, 7, 3, 9)).ok());
  EXPECT_EQ(store_.stats().dropped, dropped_before + 1);

  // Containment kinds accept any valid box, including degenerate ones
  // ([a, a] is contained in [c, d] whenever c <= a <= d).
  EXPECT_TRUE(store_.Insert("inner", MakeInterval(5, 5)).ok());
  EXPECT_TRUE(store_.Delete("inner", MakeInterval(5, 5)).ok());

  // eps on a non-kEpsBoxes dataset is rejected at creation.
  DatasetOptions eps_opt;
  eps_opt.eps = 3;
  EXPECT_EQ(
      store_.CreateDataset("bad", "s2", DatasetKind::kRange, eps_opt).code(),
      StatusCode::kInvalidArgument);

  // Containment kinds need 2 * dims <= kMaxDims.
  ASSERT_TRUE(store_.RegisterSchema("s3", SmallSchema(3, kH)).ok());
  EXPECT_EQ(
      store_.CreateDataset("c3", "s3", DatasetKind::kContainInner).code(),
      StatusCode::kInvalidArgument);
  // ... but 2 original dimensions (lifting to 4) are fine.
  EXPECT_TRUE(
      store_.CreateDataset("c2", "s2", DatasetKind::kContainInner).ok());
}

TEST_F(ApiQueryTest, LegacyBatchShimsValidateBeforeAnyWork) {
  // Pre-Run contract: one bad query rejects the whole legacy batch
  // BEFORE any estimation work — so the served-estimate stats must not
  // move on the error path.
  std::vector<Box> queries = MakeBoxes(2, kH, 8, 41);
  queries.push_back(MakeRect(7, 7, 3, 9));  // degenerate
  const uint64_t range_before = store_.stats().range_estimates;
  auto bad = store_.EstimateRangeBatch("range", queries);
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store_.stats().range_estimates, range_before);

  const uint64_t join_before = store_.stats().join_estimates;
  auto bad_join = store_.EstimateJoinBatch("r", {"sA", "range"});
  EXPECT_EQ(bad_join.status().code(), StatusCode::kFailedPrecondition);
  auto unknown_join = store_.EstimateJoinBatch("r", {"sA", "no_such"});
  EXPECT_EQ(unknown_join.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store_.stats().join_estimates, join_before);

  // The all-good batches still serve (and count) normally.
  queries.pop_back();
  auto good = store_.EstimateRangeBatch("range", queries);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(store_.stats().range_estimates, range_before + queries.size());
}

TEST(DatasetHandleLifetime, HandleOutlivingItsStoreFailsFast) {
  DatasetHandle handle;
  {
    SketchStore store;
    ASSERT_TRUE(store.RegisterSchema("s", SmallSchema(2, 9)).ok());
    ASSERT_TRUE(store.CreateDataset("d", "s", DatasetKind::kRange).ok());
    auto opened = store.OpenDataset("d");
    ASSERT_TRUE(opened.ok());
    handle = *opened;
    ASSERT_TRUE(handle.Insert(MakeRect(1, 5, 2, 6)).ok());
  }
  // The store is gone; the handle still pins the dataset STATE, and the
  // destructor marked it dropped, so every operation fails cleanly
  // instead of dereferencing the destroyed store.
  EXPECT_TRUE(handle.valid());
  EXPECT_FALSE(handle.live());
  EXPECT_EQ(handle.Insert(MakeRect(1, 5, 2, 6)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(handle.EstimateRangeCount(MakeRect(1, 5, 2, 6)).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(handle.Fence().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ApiQueryTest, SnapshotCarriesKindAndEpsTags) {
  auto blob = store_.Snapshot("eps");
  ASSERT_TRUE(blob.ok());

  // Same kind, same eps: restores and serves identical estimates.
  DatasetOptions same;
  same.eps = kEps;
  ASSERT_TRUE(
      store_.CreateDataset("eps_replica", "s2", DatasetKind::kEpsBoxes, same)
          .ok());
  ASSERT_TRUE(store_.Restore("eps_replica", *blob).ok());
  auto original = store_.Run({QuerySpec::EpsJoin("pts", "eps", kEps)});
  auto replica = store_.Run({QuerySpec::EpsJoin("pts", "eps_replica", kEps)});
  ASSERT_TRUE(original.ok() && replica.ok());
  ASSERT_TRUE((*original)[0].ok());
  ASSERT_TRUE((*replica)[0].ok());
  EXPECT_EQ((*original)[0].value, (*replica)[0].value);

  // Different eps: the counters would be incomparable; the tag refuses.
  DatasetOptions other;
  other.eps = kEps + 1;
  ASSERT_TRUE(
      store_.CreateDataset("eps_other", "s2", DatasetKind::kEpsBoxes, other)
          .ok());
  EXPECT_EQ(store_.Restore("eps_other", *blob).code(),
            StatusCode::kFailedPrecondition);

  // Different kind: refused (kEpsPoints shares the schema variant but
  // not the shape/kind).
  EXPECT_EQ(store_.Restore("pts", *blob).code(),
            StatusCode::kFailedPrecondition);

  // Pre-eps SST1 blobs (magic "SST1", no eps field — implicitly eps 0)
  // still restore: rewrite a fresh snapshot (SST4: magic + kind + eps +
  // layout + width + payload CRC = 19-byte header) into the old format.
  auto range_blob = store_.Snapshot("range");
  ASSERT_TRUE(range_blob.ok());
  std::string v1_blob = "SST1";
  v1_blob.push_back((*range_blob)[4]);  // the kind byte
  v1_blob += range_blob->substr(4 + 1 + 8 + 2 + 4);  // payload minus tags/CRC
  ASSERT_TRUE(
      store_.CreateDataset("range_v1", "s2", DatasetKind::kRange).ok());
  ASSERT_TRUE(store_.Restore("range_v1", v1_blob).ok());
  const Box window = MakeRect(30, 400, 64, 333);
  auto from_v1 = store_.EstimateRangeCount("range_v1", window);
  auto from_live = store_.EstimateRangeCount("range", window);
  ASSERT_TRUE(from_v1.ok() && from_live.ok());
  EXPECT_EQ(*from_v1, *from_live);

  // Garbage is still rejected as not-a-blob.
  EXPECT_EQ(store_.Restore("range_v1", "XYZW garbage").code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace spatialsketch
