// Tests for the dyadic-interval machinery: Lemmas 2-4 (cover sizes, point
// covers, the unique-common-interval property), maxLevel capping
// (Section 6.5), the endpoint transformation (Section 5.2) and the
// real-value quantizer (Section 5.1).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/dyadic/dyadic_domain.h"
#include "src/dyadic/endpoint_transform.h"
#include "src/dyadic/quantizer.h"
#include "src/geom/box.h"

namespace spatialsketch {
namespace {

// ---------------------------------------------------------------------
// DyadicDomain, uncapped.

class DyadicDomainParamTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DyadicDomainParamTest, CoverPartitionsTheInterval) {
  const uint32_t h = GetParam();
  const DyadicDomain dom(h);
  const Coord n = dom.size();
  // Every interval over a small domain; sampled intervals otherwise.
  for (Coord a = 0; a < std::min<Coord>(n, 20); ++a) {
    for (Coord b = a; b < std::min<Coord>(n, 20); ++b) {
      std::set<Coord> covered;
      dom.ForEachCoverId(a, b, [&](uint64_t id) {
        Coord lo, hi;
        dom.IdRange(id, &lo, &hi);
        for (Coord x = lo; x <= hi; ++x) {
          EXPECT_TRUE(covered.insert(x).second) << "overlap at " << x;
        }
      });
      EXPECT_EQ(covered.size(), b - a + 1);
      EXPECT_EQ(*covered.begin(), a);
      EXPECT_EQ(*covered.rbegin(), b);
    }
  }
}

TEST_P(DyadicDomainParamTest, CoverSizeWithinLemma2Bound) {
  const uint32_t h = GetParam();
  const DyadicDomain dom(h);
  const Coord n = dom.size();
  for (Coord a = 0; a < n; a += std::max<Coord>(1, n / 37)) {
    for (Coord b = a; b < n; b += std::max<Coord>(1, n / 41)) {
      EXPECT_LE(dom.CoverSize(a, b), 2ull * h + 1);
    }
  }
}

TEST_P(DyadicDomainParamTest, PointCoverHasOnePerLevel) {
  const uint32_t h = GetParam();
  const DyadicDomain dom(h);
  const Coord n = dom.size();
  for (Coord a = 0; a < n; a += std::max<Coord>(1, n / 53)) {
    const auto cover = dom.PointCover(a);
    ASSERT_EQ(cover.size(), h + 1);  // Lemma 3
    std::set<uint32_t> levels;
    for (uint64_t id : cover) {
      Coord lo, hi;
      dom.IdRange(id, &lo, &hi);
      EXPECT_LE(lo, a);
      EXPECT_GE(hi, a);
      levels.insert(dom.LevelOf(id));
    }
    EXPECT_EQ(levels.size(), h + 1);
  }
}

TEST_P(DyadicDomainParamTest, Lemma4UniqueCommonInterval) {
  const uint32_t h = GetParam();
  const DyadicDomain dom(h);
  const Coord n = std::min<Coord>(dom.size(), 32);
  for (Coord a = 0; a < n; ++a) {
    for (Coord b = a; b < n; ++b) {
      const auto cover = dom.IntervalCover(a, b);
      const std::set<uint64_t> cover_set(cover.begin(), cover.end());
      for (Coord c = 0; c < n; ++c) {
        int common = 0;
        dom.ForEachPointCoverId(c, [&](uint64_t id) {
          common += cover_set.count(id);
        });
        EXPECT_EQ(common, (a <= c && c <= b) ? 1 : 0)
            << "a=" << a << " b=" << b << " c=" << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Domains, DyadicDomainParamTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 12u, 20u));

TEST(DyadicDomain, IdUniverseAndLeaves) {
  const DyadicDomain dom(4);
  EXPECT_EQ(dom.size(), 16u);
  EXPECT_EQ(dom.num_ids(), 32u);
  EXPECT_EQ(dom.LeafId(0), 16u);
  EXPECT_EQ(dom.LeafId(15), 31u);
  EXPECT_EQ(dom.LevelOf(1), 4u);     // root
  EXPECT_EQ(dom.LevelOf(16), 0u);    // leaf
  Coord lo, hi;
  dom.IdRange(1, &lo, &hi);
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 15u);
  dom.IdRange(3, &lo, &hi);  // right child of root
  EXPECT_EQ(lo, 8u);
  EXPECT_EQ(hi, 15u);
}

TEST(DyadicDomain, WholeDomainCoverIsRoot) {
  const DyadicDomain dom(6);
  const auto cover = dom.IntervalCover(0, dom.size() - 1);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], 1u);
}

// ---------------------------------------------------------------------
// maxLevel capping (Section 6.5).

class CappedDomainTest
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {};

TEST_P(CappedDomainTest, CapRestrictsLevelsButStillPartitions) {
  const auto [h, cap] = GetParam();
  const DyadicDomain dom(h, cap);
  const Coord n = dom.size();
  for (Coord a = 0; a < n; a += std::max<Coord>(1, n / 13)) {
    for (Coord b = a; b < n; b += std::max<Coord>(1, n / 17)) {
      Coord covered = 0;
      dom.ForEachCoverId(a, b, [&](uint64_t id) {
        EXPECT_LE(dom.LevelOf(id), cap);
        Coord lo, hi;
        dom.IdRange(id, &lo, &hi);
        EXPECT_GE(lo, a);
        EXPECT_LE(hi, b);
        covered += hi - lo + 1;
      });
      EXPECT_EQ(covered, b - a + 1);
    }
  }
}

TEST_P(CappedDomainTest, PointCoverHasCapPlusOneLevels) {
  const auto [h, cap] = GetParam();
  const DyadicDomain dom(h, cap);
  const auto cover = dom.PointCover(dom.size() / 2);
  EXPECT_EQ(cover.size(), std::min(cap, h) + 1);
}

TEST_P(CappedDomainTest, Lemma4HoldsUnderCap) {
  const auto [h, cap] = GetParam();
  const DyadicDomain dom(h, cap);
  const Coord n = std::min<Coord>(dom.size(), 24);
  for (Coord a = 0; a < n; a += 2) {
    for (Coord b = a; b < n; b += 3) {
      const auto cover = dom.IntervalCover(a, b);
      const std::set<uint64_t> cover_set(cover.begin(), cover.end());
      for (Coord c = 0; c < n; ++c) {
        int common = 0;
        dom.ForEachPointCoverId(c, [&](uint64_t id) {
          common += cover_set.count(id);
        });
        EXPECT_EQ(common, (a <= c && c <= b) ? 1 : 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Caps, CappedDomainTest,
    ::testing::Values(std::make_pair(6u, 0u), std::make_pair(6u, 2u),
                      std::make_pair(6u, 5u), std::make_pair(8u, 3u),
                      std::make_pair(5u, 5u)));

TEST(CappedDomain, CapZeroDegeneratesToStandardSketch) {
  // maxLevel = 0 must cover [a, b] by exactly its b-a+1 leaves.
  const DyadicDomain dom(5, 0);
  const auto cover = dom.IntervalCover(3, 9);
  EXPECT_EQ(cover.size(), 7u);
  for (uint64_t id : cover) EXPECT_EQ(dom.LevelOf(id), 0u);
  EXPECT_EQ(dom.PointCover(7).size(), 1u);
}

// ---------------------------------------------------------------------
// Endpoint transformation (Section 5.2).

TEST(EndpointTransform, OrderingOfAugmentedValues) {
  // x- < x < x+ < (x+1)- for every x.
  for (Coord x = 0; x < 100; ++x) {
    EXPECT_LT(EndpointTransform::MapPointMinus(x),
              EndpointTransform::MapPoint(x));
    EXPECT_LT(EndpointTransform::MapPoint(x),
              EndpointTransform::MapPointPlus(x));
    EXPECT_LT(EndpointTransform::MapPointPlus(x),
              EndpointTransform::MapPointMinus(x + 1));
  }
}

TEST(EndpointTransform, PreservesStrictOverlapExhaustively1D) {
  // All interval pairs over a small domain: overlap(r, s) must equal
  // overlap(MapR(r), ShrinkS(s)).
  const Coord n = 12;
  for (Coord a = 0; a < n; ++a) {
    for (Coord b = a + 1; b < n; ++b) {
      for (Coord c = 0; c < n; ++c) {
        for (Coord d = c + 1; d < n; ++d) {
          const Box r = MakeInterval(a, b);
          const Box s = MakeInterval(c, d);
          const Box rt = EndpointTransform::MapR(r, 1);
          const Box st = EndpointTransform::ShrinkS(s, 1);
          EXPECT_EQ(Overlaps(r, s, 1), Overlaps(rt, st, 1))
              << "r=[" << a << "," << b << "] s=[" << c << "," << d << "]";
        }
      }
    }
  }
}

TEST(EndpointTransform, NoSharedEndpointCoordinatesAfterTransform) {
  // R endpoints are 1 mod 3; S endpoints are 2 or 0 mod 3.
  for (Coord x = 0; x < 50; ++x) {
    EXPECT_EQ(EndpointTransform::MapPoint(x) % 3, 1u);
    EXPECT_EQ(EndpointTransform::MapPointPlus(x) % 3, 2u);
    EXPECT_EQ(EndpointTransform::MapPointMinus(x) % 3, 0u);
  }
}

TEST(EndpointTransform, TransformedDomainFitsTwoExtraBits) {
  for (uint32_t h = 1; h <= 30; ++h) {
    const Coord n = Coord{1} << h;
    const Coord max_transformed = EndpointTransform::MapPointPlus(n - 1);
    EXPECT_LT(max_transformed,
              Coord{1} << EndpointTransform::TransformedLog2(h));
  }
}

TEST(EndpointTransform, MapsBoxesPerDimension) {
  const Box b = MakeRect(1, 4, 2, 6);
  const Box r = EndpointTransform::MapR(b, 2);
  EXPECT_EQ(r.lo[0], 4u);
  EXPECT_EQ(r.hi[0], 13u);
  EXPECT_EQ(r.lo[1], 7u);
  EXPECT_EQ(r.hi[1], 19u);
  const Box s = EndpointTransform::ShrinkS(b, 2);
  EXPECT_EQ(s.lo[0], 5u);
  EXPECT_EQ(s.hi[0], 12u);
  EXPECT_EQ(s.lo[1], 8u);
  EXPECT_EQ(s.hi[1], 18u);
}

// ---------------------------------------------------------------------
// Quantizer (Section 5.1).

TEST(Quantizer, RejectsBadRanges) {
  EXPECT_FALSE(Quantizer::Create(1.0, 1.0, 8).ok());
  EXPECT_FALSE(Quantizer::Create(2.0, 1.0, 8).ok());
  EXPECT_FALSE(Quantizer::Create(0.0, 1.0, 0).ok());
  EXPECT_FALSE(Quantizer::Create(0.0, 1.0, 41).ok());
  EXPECT_TRUE(Quantizer::Create(0.0, 1.0, 16).ok());
}

TEST(Quantizer, MapsEndpointsAndClamps) {
  auto q = Quantizer::Create(0.0, 100.0, 10);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->ToGrid(-5.0), 0u);
  EXPECT_EQ(q->ToGrid(0.0), 0u);
  EXPECT_EQ(q->ToGrid(100.0), 1023u);
  EXPECT_EQ(q->ToGrid(1000.0), 1023u);
  EXPECT_EQ(q->ToGrid(50.0), 512u);
}

TEST(Quantizer, MonotoneAndInvertibleUpToCell) {
  auto q = Quantizer::Create(-10.0, 10.0, 12);
  ASSERT_TRUE(q.ok());
  Coord prev = 0;
  for (double x = -10.0; x <= 10.0; x += 0.37) {
    const Coord g = q->ToGrid(x);
    EXPECT_GE(g, prev);
    prev = g;
    // Representative value within one cell width of x.
    EXPECT_NEAR(q->ToReal(g), x, 20.0 / 4096 + 1e-9);
  }
}

TEST(Quantizer, GridBoxQuantization) {
  auto q = Quantizer::Create(0.0, 1.0, 8);
  ASSERT_TRUE(q.ok());
  const double lo[2] = {0.25, 0.5};
  const double hi[2] = {0.75, 1.0};
  const Box b = q->ToGridBox(lo, hi, 2);
  EXPECT_EQ(b.lo[0], 64u);
  EXPECT_EQ(b.hi[0], 192u);
  EXPECT_EQ(b.lo[1], 128u);
  EXPECT_EQ(b.hi[1], 255u);
}

}  // namespace
}  // namespace spatialsketch
