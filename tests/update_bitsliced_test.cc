// Differential tests for the bit-sliced streaming update path: under every
// shape, dimensionality, instance-count alignment, and mixed insert/delete
// stream we can produce, the fast path's counters must be BIT-IDENTICAL to
// the retained per-instance scalar reference (UpdateReference). The
// synopsis is a linear projection, so any divergence — even by one — is a
// correctness bug, not noise.

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/dyadic/endpoint_transform.h"
#include "src/sketch/dataset_sketch.h"
#include "src/sketch/schema.h"

namespace spatialsketch {
namespace {

SchemaPtr MakeSchema(uint32_t dims, uint32_t h, uint32_t k1, uint32_t k2,
                     uint32_t max_level = DyadicDomain::kNoCap,
                     uint64_t seed = 42) {
  SchemaOptions opt;
  opt.dims = dims;
  for (uint32_t i = 0; i < dims; ++i) {
    opt.domains[i].log2_size = h;
    opt.domains[i].max_level = max_level;
  }
  opt.k1 = k1;
  opt.k2 = k2;
  opt.seed = seed;
  auto schema = SketchSchema::Create(opt);
  EXPECT_TRUE(schema.ok());
  return *schema;
}

Box RandomBox(Rng* rng, uint32_t dims, uint32_t h) {
  const Coord domain = Coord{1} << h;
  Box b;
  for (uint32_t d = 0; d < dims; ++d) {
    const Coord a = rng->Uniform(domain);
    const Coord c = rng->Uniform(domain);
    b.lo[d] = std::min(a, c);
    b.hi[d] = std::max(a, c);
  }
  return b;
}

// Applies an identical randomized insert/delete stream through the fast
// path and the reference path and compares counters exactly.
void RunDifferential(const SchemaPtr& schema, const Shape& shape,
                     uint32_t num_ops, uint64_t stream_seed) {
  const uint32_t dims = schema->dims();
  const uint32_t h = schema->domain(0).log2_size();
  DatasetSketch fast(schema, shape);
  DatasetSketch ref(schema, shape);
  Rng rng(stream_seed);
  std::vector<Box> inserted;
  for (uint32_t i = 0; i < num_ops; ++i) {
    // ~1/3 deletes once something is present: exercises sign interleaving
    // rather than delete-at-the-end patterns only.
    if (!inserted.empty() && rng.Uniform(3) == 0) {
      const size_t pick = rng.Uniform(inserted.size());
      const Box b = inserted[pick];
      inserted.erase(inserted.begin() + pick);
      fast.Delete(b);
      ref.UpdateReference(b, -1);
    } else {
      const Box b = RandomBox(&rng, dims, h);
      inserted.push_back(b);
      fast.Insert(b);
      ref.UpdateReference(b, +1);
    }
    if (i % 64 == 0) {
      ASSERT_EQ(fast.counters(), ref.counters()) << "diverged at op " << i;
    }
  }
  EXPECT_EQ(fast.counters(), ref.counters());
  EXPECT_EQ(fast.num_objects(), ref.num_objects());
}

TEST(BitSlicedUpdate, RangeShapeMatchesReferenceAcrossDims) {
  for (uint32_t dims = 1; dims <= 3; ++dims) {
    RunDifferential(MakeSchema(dims, 8, 16, 3), Shape::RangeShape(dims), 200,
                    7 + dims);
  }
}

TEST(BitSlicedUpdate, JoinShapeMatchesReferenceAcrossDims) {
  for (uint32_t dims = 1; dims <= 3; ++dims) {
    RunDifferential(MakeSchema(dims, 7, 12, 5), Shape::JoinShape(dims), 200,
                    70 + dims);
  }
}

TEST(BitSlicedUpdate, InstanceCountsOffTheBlockBoundary) {
  // 64 lanes per packed word: exercise instances % 64 == 0, 1, 63 and a
  // single-block schema so the tail-lane masking is covered.
  for (const auto& [k1, k2] : std::vector<std::pair<uint32_t, uint32_t>>{
           {64, 2}, {13, 5}, {21, 3}, {1, 1}, {127, 1}}) {
    RunDifferential(MakeSchema(2, 6, k1, k2), Shape::RangeShape(2), 120,
                    900 + k1);
  }
}

TEST(BitSlicedUpdate, NonTensorShapesMatchReference) {
  // PointShape/BoxCoverShape are single-word (non-tensor) shapes and take
  // the generic expansion path.
  RunDifferential(MakeSchema(2, 7, 10, 3), Shape::PointShape(2), 150, 31);
  RunDifferential(MakeSchema(2, 7, 10, 3), Shape::BoxCoverShape(2), 150, 32);
}

TEST(BitSlicedUpdate, ExtendedJoinShapeWithLeafBoxes) {
  // Appendix-B.1 extended join: interval/endpoint letters read the shrunk
  // geometry while leaf letters read the unshrunk endpoints — the
  // InsertWithLeafBox/DeleteWithLeafBox variant.
  const uint32_t dims = 1, h = 8;
  auto schema = MakeSchema(dims, h, 20, 3);
  const Shape shape = Shape::ExtendedJoinShape(dims);
  DatasetSketch fast(schema, shape);
  DatasetSketch ref(schema, shape);
  Rng rng(55);
  std::vector<std::pair<Box, Box>> live;
  for (uint32_t i = 0; i < 250; ++i) {
    if (!live.empty() && rng.Uniform(3) == 0) {
      const size_t pick = rng.Uniform(live.size());
      const auto [main, leaf] = live[pick];
      live.erase(live.begin() + pick);
      fast.DeleteWithLeafBox(main, leaf);
      ref.UpdateReference(main, leaf, -1);
    } else {
      // Original boxes in the pre-transform domain; the shrunk main box
      // and the mapped leaf box land in the h-bit domain by construction
      // (h-2 original bits).
      Box orig = RandomBox(&rng, dims, h - 2);
      while (IsDegenerate(orig, dims)) orig = RandomBox(&rng, dims, h - 2);
      const Box main = EndpointTransform::ShrinkS(orig, dims);
      const Box leaf = EndpointTransform::MapR(orig, dims);
      live.emplace_back(main, leaf);
      fast.InsertWithLeafBox(main, leaf);
      ref.UpdateReference(main, leaf, +1);
    }
  }
  EXPECT_EQ(fast.counters(), ref.counters());
}

TEST(BitSlicedUpdate, CappedDomainWideCoversMatchReference) {
  // max_level = 0 degenerates covers into per-leaf enumerations, so a wide
  // range produces covers far beyond 255 ids — the 32-bit counting
  // fallback. Use a big box explicitly to force it.
  auto schema = MakeSchema(1, 10, 10, 3, /*max_level=*/0);
  DatasetSketch fast(schema, Shape::RangeShape(1));
  DatasetSketch ref(schema, Shape::RangeShape(1));
  Rng rng(77);
  for (uint32_t i = 0; i < 12; ++i) {
    Box b;
    b.lo[0] = rng.Uniform(100);
    b.hi[0] = 600 + rng.Uniform(300);  // cover length > 500 ids
    const int sign = i % 3 == 2 ? -1 : +1;
    if (sign > 0) {
      fast.Insert(b);
    } else {
      fast.Delete(b);
    }
    ref.UpdateReference(b, sign);
    ASSERT_EQ(fast.counters(), ref.counters()) << "diverged at op " << i;
  }
}

TEST(BitSlicedUpdate, MixedSignStreamCancelsToZero) {
  // Insert-then-delete of the same multiset must return the counters to
  // all-zero through the fast path alone (linearity).
  auto schema = MakeSchema(2, 7, 16, 3);
  DatasetSketch sketch(schema, Shape::JoinShape(2));
  Rng rng(91);
  std::vector<Box> boxes;
  for (uint32_t i = 0; i < 100; ++i) boxes.push_back(RandomBox(&rng, 2, 7));
  for (const Box& b : boxes) sketch.Insert(b);
  for (const Box& b : boxes) sketch.Delete(b);
  EXPECT_EQ(sketch.num_objects(), 0);
  for (int64_t c : sketch.counters()) EXPECT_EQ(c, 0);
}

TEST(BitSlicedUpdate, StreamingMatchesBulkLoad) {
  // Fast streaming path vs the (independently implemented) bulk loader.
  auto schema = MakeSchema(2, 8, 24, 3);
  DatasetSketch streamed(schema, Shape::RangeShape(2));
  DatasetSketch bulk(schema, Shape::RangeShape(2));
  Rng rng(13);
  std::vector<Box> boxes;
  for (uint32_t i = 0; i < 300; ++i) boxes.push_back(RandomBox(&rng, 2, 8));
  for (const Box& b : boxes) streamed.Insert(b);
  ASSERT_TRUE(bulk.BulkLoad(boxes).ok());
  EXPECT_EQ(streamed.counters(), bulk.counters());
}

TEST(BitSlicedUpdate, BulkLoadRejectsBadSign) {
  auto schema = MakeSchema(1, 6, 4, 1);
  DatasetSketch sketch(schema, Shape::RangeShape(1));
  const std::vector<Box> boxes = {MakeInterval(1, 5)};
  EXPECT_FALSE(sketch.BulkLoad(boxes, 0).ok());
  EXPECT_FALSE(sketch.BulkLoad(boxes, 2).ok());
  EXPECT_FALSE(sketch.BulkLoad(boxes.data(), boxes.size(), -3).ok());
  EXPECT_TRUE(sketch.BulkLoad(boxes, -1).ok());  // delete is legal
  EXPECT_FALSE(
      sketch.BulkLoadWithLeafBoxes(boxes, /*leaf_boxes=*/{}, +1).ok());
}

}  // namespace
}  // namespace spatialsketch
