// Dispatch and differential tests for the SIMD kernel layer
// (src/xi/kernels.h). Two obligations:
//
//  1. Selection: the SPATIALSKETCH_KERNELS-style override and the cpuid
//     fallback must land on the expected variant, unknown/unavailable
//     requests must degrade to auto-selection, and ForceKernels must
//     reject variants this host cannot run.
//
//  2. Bit-identity: EVERY available variant must produce results
//     bit-identical to scalar — exact packed/wide counts and counter
//     deltas (integer kernels) and exactly-equal doubles (estimator
//     kernels, whose per-instance FP order is part of the contract) —
//     across randomized inputs covering off-64 instance counts, > 255-id
//     covers, mixed-sign streams, and all tensor shapes.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/estimators/join_estimator.h"
#include "src/estimators/range_query_estimator.h"
#include "src/sketch/dataset_sketch.h"
#include "src/sketch/schema.h"
#include "src/sketch/self_join.h"
#include "src/xi/kernels.h"

namespace spatialsketch {
namespace {

using kernels::Kind;
using kernels::KernelOps;

const Kind kAllKinds[] = {Kind::kScalar, Kind::kAvx2, Kind::kAvx512};

std::vector<Kind> AvailableKinds() {
  std::vector<Kind> out;
  for (Kind k : kAllKinds) {
    if (kernels::Available(k)) out.push_back(k);
  }
  return out;
}

// Restores auto-selection when a test that forces variants exits.
struct KernelGuard {
  ~KernelGuard() { EXPECT_TRUE(kernels::ForceKernels(kernels::Best()).ok()); }
};

SchemaPtr MakeSchema(uint32_t dims, uint32_t h, uint32_t k1, uint32_t k2,
                     uint32_t max_level = DyadicDomain::kNoCap,
                     uint64_t seed = 42) {
  SchemaOptions opt;
  opt.dims = dims;
  for (uint32_t i = 0; i < dims; ++i) {
    opt.domains[i].log2_size = h;
    opt.domains[i].max_level = max_level;
  }
  opt.k1 = k1;
  opt.k2 = k2;
  opt.seed = seed;
  auto schema = SketchSchema::Create(opt);
  EXPECT_TRUE(schema.ok());
  return *schema;
}

Box RandomBox(Rng* rng, uint32_t dims, uint32_t h) {
  const Coord domain = Coord{1} << h;
  Box b;
  for (uint32_t d = 0; d < dims; ++d) {
    const Coord a = rng->Uniform(domain);
    const Coord c = rng->Uniform(domain);
    b.lo[d] = std::min(a, c);
    b.hi[d] = std::max(a, c);
  }
  return b;
}

// ---------------------------------------------------------------------------
// Selection.
// ---------------------------------------------------------------------------

TEST(KernelDispatch, ScalarIsAlwaysAvailable) {
  EXPECT_TRUE(kernels::Available(Kind::kScalar));
  const KernelOps* ops = kernels::OpsFor(Kind::kScalar);
  ASSERT_NE(ops, nullptr);
  EXPECT_STREQ(ops->name, "scalar");
}

TEST(KernelDispatch, BestIsTheHighestAvailableVariant) {
  Kind expected = Kind::kScalar;
  for (Kind k : kAllKinds) {
    if (kernels::Available(k)) expected = k;
  }
  EXPECT_EQ(kernels::Best(), expected);
}

TEST(KernelDispatch, ForceSelectsEachAvailableVariant) {
  KernelGuard guard;
  for (Kind k : AvailableKinds()) {
    ASSERT_TRUE(kernels::ForceKernels(k).ok());
    EXPECT_EQ(kernels::Selected(), k);
    EXPECT_STREQ(kernels::SelectedName(), kernels::OpsFor(k)->name);
  }
}

TEST(KernelDispatch, ForceRejectsUnavailableVariantsAndUnknownNames) {
  KernelGuard guard;
  for (Kind k : kAllKinds) {
    if (kernels::Available(k)) continue;
    const Status st = kernels::ForceKernels(k);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  }
  const Status st = kernels::ForceKernels(std::string("sse9"));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(KernelDispatch, OverrideBehavesLikeTheEnvironmentVariable) {
  KernelGuard guard;
  // Valid + available name: selected verbatim.
  EXPECT_EQ(kernels::ApplyOverride("scalar"), Kind::kScalar);
  EXPECT_EQ(kernels::Selected(), Kind::kScalar);
  // Unknown value degrades to auto-selection (with a stderr warning).
  EXPECT_EQ(kernels::ApplyOverride("bogus"), kernels::Best());
  // Unset/empty behaves like no override.
  EXPECT_EQ(kernels::ApplyOverride(nullptr), kernels::Best());
  EXPECT_EQ(kernels::ApplyOverride(""), kernels::Best());
  // Valid names resolve to the variant when available, auto otherwise.
  for (const char* name : {"avx2", "avx512"}) {
    const Kind want = std::string(name) == "avx2" ? Kind::kAvx2
                                                  : Kind::kAvx512;
    const Kind got = kernels::ApplyOverride(name);
    if (kernels::Available(want)) {
      EXPECT_EQ(got, want) << name;
    } else {
      EXPECT_EQ(got, kernels::Best()) << name;
    }
    EXPECT_EQ(kernels::Selected(), got);
  }
}

// ---------------------------------------------------------------------------
// Kernel-level differential fuzz: each primitive, every variant vs
// scalar, randomized shapes and values.
// ---------------------------------------------------------------------------

TEST(KernelDifferential, CountColumnsPackedMatchesScalar) {
  const KernelOps& scalar = *kernels::OpsFor(Kind::kScalar);
  Rng rng(101);
  for (uint32_t blocks : {1u, 2u, 3u, 7u, 8u, 9u, 16u, 21u}) {
    for (size_t m : {size_t{1}, size_t{5}, size_t{63}, size_t{64},
                     size_t{127}, size_t{255}}) {
      std::vector<std::vector<uint64_t>> cols(m,
                                              std::vector<uint64_t>(blocks));
      std::vector<const uint64_t*> col_ptrs(m);
      for (size_t i = 0; i < m; ++i) {
        for (uint32_t b = 0; b < blocks; ++b) cols[i][b] = rng.Next64();
        col_ptrs[i] = cols[i].data();
      }
      std::vector<uint64_t> planes(static_cast<size_t>(blocks) * 6);
      std::vector<uint64_t> want(static_cast<size_t>(blocks) * 8);
      scalar.count_columns_packed(col_ptrs.data(), m, blocks, want.data(),
                                  planes.data());
      for (Kind k : AvailableKinds()) {
        std::vector<uint64_t> got(static_cast<size_t>(blocks) * 8, ~0ull);
        kernels::OpsFor(k)->count_columns_packed(col_ptrs.data(), m, blocks,
                                                 got.data(), planes.data());
        ASSERT_EQ(got, want) << "kind=" << static_cast<int>(k)
                             << " blocks=" << blocks << " m=" << m;
      }
    }
  }
}

TEST(KernelDifferential, CountColumnsWideMatchesScalar) {
  const KernelOps& scalar = *kernels::OpsFor(Kind::kScalar);
  Rng rng(102);
  for (uint32_t blocks : {1u, 4u, 9u}) {
    for (size_t m : {size_t{256}, size_t{300}, size_t{505}, size_t{1000}}) {
      std::vector<std::vector<uint64_t>> cols(m,
                                              std::vector<uint64_t>(blocks));
      std::vector<const uint64_t*> col_ptrs(m);
      for (size_t i = 0; i < m; ++i) {
        for (uint32_t b = 0; b < blocks; ++b) cols[i][b] = rng.Next64();
        col_ptrs[i] = cols[i].data();
      }
      std::vector<uint64_t> planes(static_cast<size_t>(blocks) * 6);
      std::vector<uint64_t> packed(static_cast<size_t>(blocks) * 8);
      std::vector<int32_t> want(static_cast<size_t>(blocks) * 64);
      scalar.count_columns_wide(col_ptrs.data(), m, blocks, want.data(),
                                packed.data(), planes.data());
      for (Kind k : AvailableKinds()) {
        std::vector<int32_t> got(static_cast<size_t>(blocks) * 64, -1);
        kernels::OpsFor(k)->count_columns_wide(col_ptrs.data(), m, blocks,
                                               got.data(), packed.data(),
                                               planes.data());
        ASSERT_EQ(got, want) << "kind=" << static_cast<int>(k)
                             << " blocks=" << blocks << " m=" << m;
      }
    }
  }
}

TEST(KernelDifferential, CountGatherMatchesScalar) {
  const KernelOps& scalar = *kernels::OpsFor(Kind::kScalar);
  Rng rng(103);
  const size_t num_ids = 512;
  std::vector<uint64_t> row(num_ids);
  for (auto& w : row) w = rng.Next64();
  for (size_t m : {size_t{1}, size_t{3}, size_t{8}, size_t{63}, size_t{64},
                   size_t{100}, size_t{255}}) {
    std::vector<uint64_t> ids(m);
    for (auto& id : ids) id = rng.Uniform(num_ids);
    uint64_t want[8];
    scalar.count_gather_packed(row.data(), ids.data(), m, want);
    for (Kind k : AvailableKinds()) {
      uint64_t got[8] = {~0ull, 0, 0, 0, 0, 0, 0, 0};
      kernels::OpsFor(k)->count_gather_packed(row.data(), ids.data(), m, got);
      ASSERT_EQ(std::memcmp(got, want, sizeof(want)), 0)
          << "kind=" << static_cast<int>(k) << " m=" << m;
    }
  }
  for (size_t m : {size_t{256}, size_t{400}, size_t{1023}}) {
    std::vector<uint64_t> ids(m);
    for (auto& id : ids) id = rng.Uniform(num_ids);
    int32_t want[64];
    scalar.count_gather_wide(row.data(), ids.data(), m, want);
    for (Kind k : AvailableKinds()) {
      int32_t got[64];
      kernels::OpsFor(k)->count_gather_wide(row.data(), ids.data(), m, got);
      ASSERT_EQ(std::memcmp(got, want, sizeof(want)), 0)
          << "kind=" << static_cast<int>(k) << " m=" << m;
    }
  }
}

TEST(KernelDifferential, LaneHelpersMatchScalar) {
  const KernelOps& scalar = *kernels::OpsFor(Kind::kScalar);
  Rng rng(104);
  uint64_t packed[8];
  int32_t wide[64], a[64], b[64];
  for (int round = 0; round < 32; ++round) {
    for (auto& w : packed) w = rng.Next64();
    for (auto& v : wide) v = static_cast<int32_t>(rng.Uniform(1 << 20));
    for (auto& v : a) v = static_cast<int32_t>(rng.Uniform(1 << 16)) - 32768;
    for (auto& v : b) v = static_cast<int32_t>(rng.Uniform(1 << 16)) - 32768;
    const int32_t m = static_cast<int32_t>(rng.Uniform(256));
    const uint64_t mask = rng.Next64();
    int32_t want_lp[64], want_lw[64], want_add[64], want_sg[64];
    scalar.lanes_from_packed(packed, m, want_lp);
    scalar.lanes_from_wide(wide, m, want_lw);
    scalar.add_lanes(a, b, want_add);
    scalar.signs_from_mask(mask, want_sg);
    for (Kind k : AvailableKinds()) {
      const KernelOps& ops = *kernels::OpsFor(k);
      int32_t got[64];
      ops.lanes_from_packed(packed, m, got);
      ASSERT_EQ(std::memcmp(got, want_lp, sizeof(got)), 0);
      ops.lanes_from_wide(wide, m, got);
      ASSERT_EQ(std::memcmp(got, want_lw, sizeof(got)), 0);
      ops.add_lanes(a, b, got);
      ASSERT_EQ(std::memcmp(got, want_add, sizeof(got)), 0);
      ops.signs_from_mask(mask, got);
      ASSERT_EQ(std::memcmp(got, want_sg, sizeof(got)), 0);
    }
  }
}

TEST(KernelDifferential, TensorApplyMatchesScalar) {
  const KernelOps& scalar = *kernels::OpsFor(Kind::kScalar);
  Rng rng(105);
  for (uint32_t dims = 1; dims <= 4; ++dims) {
    const uint32_t num_words = 1u << dims;
    for (uint32_t lanes : {1u, 2u, 7u, 15u, 64u}) {
      int32_t lv_store[4][2][64];
      const int32_t* lv[4][2];
      for (uint32_t d = 0; d < dims; ++d) {
        for (uint32_t s = 0; s < 2; ++s) {
          for (uint32_t j = 0; j < 64; ++j) {
            lv_store[d][s][j] =
                static_cast<int32_t>(rng.Uniform(2048)) - 1024;
          }
          lv[d][s] = lv_store[d][s];
        }
      }
      for (int64_t sign : {int64_t{1}, int64_t{-1}}) {
        std::vector<int64_t> base(static_cast<size_t>(lanes) * num_words);
        for (auto& c : base) {
          c = static_cast<int64_t>(rng.Next64() >> 20) - (1ll << 43);
        }
        std::vector<int64_t> want = base;
        scalar.tensor_apply(lv, dims, lanes, sign, want.data());
        for (Kind k : AvailableKinds()) {
          std::vector<int64_t> got = base;
          kernels::OpsFor(k)->tensor_apply(lv, dims, lanes, sign,
                                           got.data());
          ASSERT_EQ(got, want) << "kind=" << static_cast<int>(k)
                               << " dims=" << dims << " lanes=" << lanes
                               << " sign=" << sign;
        }
      }
    }
  }
}

TEST(KernelDifferential, EstimatorKernelsMatchScalarExactly) {
  const KernelOps& scalar = *kernels::OpsFor(Kind::kScalar);
  Rng rng(106);
  for (uint32_t dims = 1; dims <= 3; ++dims) {
    const uint32_t num_words = 1u << dims;
    for (uint32_t instances : {1u, 7u, 8u, 9u, 60u, 64u, 65u, 80u}) {
      std::vector<int64_t> r(static_cast<size_t>(instances) * num_words);
      std::vector<int64_t> s(r.size());
      for (auto& c : r) {
        c = static_cast<int64_t>(rng.Next64() >> 18) - (1ll << 45);
      }
      for (auto& c : s) {
        c = static_cast<int64_t>(rng.Next64() >> 18) - (1ll << 45);
      }
      std::vector<int32_t> factors(static_cast<size_t>(dims) * 2 *
                                   instances);
      for (auto& f : factors) {
        f = static_cast<int32_t>(rng.Uniform(512)) - 256;
      }
      std::vector<double> want_r(instances), want_j(instances),
          want_s(instances);
      scalar.range_z(r.data(), instances, dims, factors.data(),
                     want_r.data());
      scalar.join_z(r.data(), s.data(), instances, dims, want_j.data());
      scalar.self_join_z(r.data(), instances, num_words,
                         num_words / 2, want_s.data());
      for (Kind k : AvailableKinds()) {
        const KernelOps& ops = *kernels::OpsFor(k);
        std::vector<double> got(instances);
        ops.range_z(r.data(), instances, dims, factors.data(), got.data());
        ASSERT_EQ(std::memcmp(got.data(), want_r.data(),
                              instances * sizeof(double)),
                  0)
            << "range_z kind=" << static_cast<int>(k) << " dims=" << dims
            << " instances=" << instances;
        ops.join_z(r.data(), s.data(), instances, dims, got.data());
        ASSERT_EQ(std::memcmp(got.data(), want_j.data(),
                              instances * sizeof(double)),
                  0)
            << "join_z kind=" << static_cast<int>(k) << " dims=" << dims
            << " instances=" << instances;
        ops.self_join_z(r.data(), instances, num_words, num_words / 2,
                        got.data());
        ASSERT_EQ(std::memcmp(got.data(), want_s.data(),
                              instances * sizeof(double)),
                  0)
            << "self_join_z kind=" << static_cast<int>(k)
            << " dims=" << dims << " instances=" << instances;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end differential: full sketches and estimates under every
// variant vs the scalar variant (and the per-instance reference).
// ---------------------------------------------------------------------------

// Streams a mixed-sign workload under the given kernel kind; returns the
// final counters.
std::vector<int64_t> StreamCounters(Kind k, const SchemaPtr& schema,
                                    const Shape& shape, uint32_t num_ops,
                                    uint64_t stream_seed) {
  EXPECT_TRUE(kernels::ForceKernels(k).ok());
  DatasetSketch sketch(schema, shape);
  Rng rng(stream_seed);
  std::vector<Box> inserted;
  const uint32_t dims = schema->dims();
  const uint32_t h = schema->domain(0).log2_size();
  for (uint32_t i = 0; i < num_ops; ++i) {
    if (!inserted.empty() && rng.Uniform(3) == 0) {
      const size_t pick = rng.Uniform(inserted.size());
      const Box b = inserted[pick];
      inserted.erase(inserted.begin() + pick);
      sketch.Delete(b);
    } else {
      const Box b = RandomBox(&rng, dims, h);
      inserted.push_back(b);
      sketch.Insert(b);
    }
  }
  return sketch.counters();
}

TEST(KernelEndToEnd, StreamingCountersIdenticalAcrossVariants) {
  KernelGuard guard;
  struct Case {
    uint32_t dims, h, k1, k2, max_level;
    Shape shape;
  };
  const std::vector<Case> cases = {
      // Off-64 instance counts, both tensor shapes, 1-3 dims.
      {1, 8, 16, 3, DyadicDomain::kNoCap, Shape::RangeShape(1)},
      {2, 8, 13, 5, DyadicDomain::kNoCap, Shape::RangeShape(2)},
      {2, 7, 12, 5, DyadicDomain::kNoCap, Shape::JoinShape(2)},
      {3, 6, 21, 3, DyadicDomain::kNoCap, Shape::JoinShape(3)},
      // Generic (non-tensor) expansion path.
      {2, 7, 10, 3, DyadicDomain::kNoCap, Shape::PointShape(2)},
      // max_level = 0 degenerates interval covers into per-leaf
      // enumerations: > 255-id covers exercise the wide fallback.
      {1, 10, 10, 3, 0, Shape::RangeShape(1)},
  };
  for (size_t ci = 0; ci < cases.size(); ++ci) {
    const Case& c = cases[ci];
    // A fresh schema per kind: sign/point-sum caches are built under THAT
    // kind, so cache construction is differentially covered too.
    std::vector<int64_t> want;
    for (Kind k : AvailableKinds()) {
      auto schema = MakeSchema(c.dims, c.h, c.k1, c.k2, c.max_level);
      auto got = StreamCounters(k, schema, c.shape, 200, 1000 + ci);
      if (k == Kind::kScalar) {
        want = got;
      } else {
        ASSERT_EQ(got, want) << "case " << ci << " kind "
                             << static_cast<int>(k);
      }
    }
  }
}

TEST(KernelEndToEnd, EstimatesExactlyEqualAcrossVariants) {
  KernelGuard guard;
  const uint32_t dims = 2, h = 8;
  const Coord domain = Coord{1} << h;
  Rng rng(77);
  std::vector<Box> r_boxes, s_boxes, queries;
  for (int i = 0; i < 120; ++i) {
    r_boxes.push_back(RandomBox(&rng, dims, h));
    s_boxes.push_back(RandomBox(&rng, dims, h));
  }
  for (int i = 0; i < 24; ++i) {
    // Strictly non-degenerate range queries (hi > lo in every dim).
    Box q;
    for (uint32_t d = 0; d < dims; ++d) {
      const Coord side = 1 + rng.Uniform(domain / 2);
      const Coord lo = rng.Uniform(domain - side);
      q.lo[d] = lo;
      q.hi[d] = lo + side;
    }
    queries.push_back(q);
  }

  std::vector<double> want_range, want_joins;
  double want_self = 0.0;
  for (Kind k : AvailableKinds()) {
    ASSERT_TRUE(kernels::ForceKernels(k).ok());
    // The range estimator owns the endpoint transform; built fresh per
    // kind so its schema caches are constructed under THAT kind too.
    RangeEstimatorOptions opt;
    opt.dims = dims;
    opt.log2_domain = h;
    opt.k1 = 16;
    opt.k2 = 5;
    opt.seed = 9;
    auto est = RangeQueryEstimator::Build({}, opt);
    ASSERT_TRUE(est.ok());
    for (const Box& b : r_boxes) est->Insert(b);

    auto schema = MakeSchema(dims, h, 16, 5);
    DatasetSketch rj(schema, Shape::JoinShape(dims));
    DatasetSketch sj(schema, Shape::JoinShape(dims));
    for (const Box& b : r_boxes) rj.Insert(b);
    for (const Box& b : s_boxes) sj.Insert(b);

    std::vector<double> got_range;
    for (const Box& q : queries) {
      got_range.push_back(est->EstimateCount(q));
    }
    auto joins = JoinEstimatesPerInstance(rj, sj);
    ASSERT_TRUE(joins.ok());
    const double self = EstimateTotalSelfJoin(rj);

    if (k == Kind::kScalar) {
      want_range = got_range;
      want_joins = *joins;
      want_self = self;
    } else {
      ASSERT_EQ(got_range.size(), want_range.size());
      for (size_t i = 0; i < want_range.size(); ++i) {
        ASSERT_EQ(got_range[i], want_range[i])
            << "range estimate " << i << " kind " << static_cast<int>(k);
      }
      ASSERT_EQ(*joins, want_joins) << "kind " << static_cast<int>(k);
      ASSERT_EQ(self, want_self) << "kind " << static_cast<int>(k);
    }
  }
}

}  // namespace
}  // namespace spatialsketch
