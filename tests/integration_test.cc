// End-to-end integration tests: the full Figure-5-style comparison at
// reduced scale, streaming replay equivalence (insert/delete streams end
// in exactly the state of a fresh build), real-world-like joins, and the
// quantizer-fronted real-valued pipeline.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/dyadic/endpoint_transform.h"
#include "src/dyadic/quantizer.h"
#include "src/estimators/join_estimator.h"
#include "src/exact/brute.h"
#include "src/exact/rect_join.h"
#include "src/geom/box.h"
#include "src/histogram/euler_histogram.h"
#include "src/histogram/geometric_histogram.h"
#include "src/sketch/dataset_sketch.h"
#include "src/workload/real_world.h"
#include "src/workload/update_stream.h"
#include "src/workload/zipf_boxes.h"

namespace spatialsketch {
namespace {

TEST(Integration, SketchVsHistogramsOnUniformData) {
  // A miniature Figure 5 point: all three techniques at comparable space
  // on uniform rectangles; every estimate within a sane band.
  SyntheticBoxOptions gen;
  gen.dims = 2;
  gen.log2_domain = 10;
  gen.count = 5000;
  gen.seed = 1;
  const auto r = GenerateSyntheticBoxes(gen);
  gen.seed = 2;
  const auto s = GenerateSyntheticBoxes(gen);
  const double exact = static_cast<double>(ExactRectJoinCount(r, s));
  ASSERT_GT(exact, 0.0);

  // ~4.6K words for each technique.
  JoinPipelineOptions opt;
  opt.dims = 2;
  opt.log2_domain = 10;
  opt.auto_max_level = true;
  opt.k1 = 103;
  opt.k2 = 9;
  opt.seed = 3;
  auto sketch = SketchSpatialJoin(r, s, opt);
  ASSERT_TRUE(sketch.ok());

  GeometricHistogram ghr(1024.0, 34), ghs(1024.0, 34);  // 4*34^2 = 4624
  for (const Box& b : r) ghr.Add(b);
  for (const Box& b : s) ghs.Add(b);
  const double gh = GeometricHistogram::EstimateJoin(ghr, ghs);

  EulerHistogram ehr(1024.0, 22), ehs(1024.0, 22);  // (3*22-1)^2 = 4225
  for (const Box& b : r) ehr.Add(b);
  for (const Box& b : s) ehs.Add(b);
  const double eh = EulerHistogram::EstimateJoin(ehr, ehs);

  EXPECT_NEAR(sketch->estimate, exact, 0.35 * exact);
  EXPECT_NEAR(gh, exact, 0.35 * exact);
  // EH's per-bucket model errors accumulate; the paper's own Figure 5
  // shows EH at ~0.4-0.5 relative error on uniform data.
  EXPECT_NEAR(eh, exact, 1.0 * exact);
}

TEST(Integration, StreamingReplayEqualsFreshBuildBitExactly) {
  // The sketch after an insert/delete stream must equal (counter by
  // counter) a fresh bulk build of the surviving dataset.
  SyntheticBoxOptions gen;
  gen.dims = 2;
  gen.log2_domain = 8;
  gen.count = 120;
  gen.seed = 11;
  const auto final_boxes = GenerateSyntheticBoxes(gen);
  gen.seed = 12;
  gen.count = 80;
  const auto transient = GenerateSyntheticBoxes(gen);
  const auto stream =
      MakeUpdateStream(final_boxes, transient, UpdateStreamOptions{0.5, 13});

  SchemaOptions so;
  so.dims = 2;
  so.domains[0].log2_size = 8;
  so.domains[1].log2_size = 8;
  so.k1 = 16;
  so.k2 = 3;
  so.seed = 14;
  auto schema = SketchSchema::Create(so);
  ASSERT_TRUE(schema.ok());

  DatasetSketch streamed(*schema, Shape::JoinShape(2));
  for (const auto& u : stream) {
    if (u.op == Update::Op::kInsert) {
      streamed.Insert(u.box);
    } else {
      streamed.Delete(u.box);
    }
  }
  DatasetSketch fresh(*schema, Shape::JoinShape(2));
  fresh.BulkLoad(final_boxes);

  ASSERT_EQ(streamed.num_objects(), fresh.num_objects());
  for (uint32_t inst = 0; inst < (*schema)->instances(); ++inst) {
    for (uint32_t w = 0; w < 4; ++w) {
      ASSERT_EQ(streamed.Counter(inst, w), fresh.Counter(inst, w));
    }
  }
}

TEST(Integration, RealWorldLikeJoinEstimates) {
  // LANDC join LANDO at moderate space; sanity band (the full-precision
  // version of this comparison lives in bench/fig09..11).
  auto landc = GenerateRealWorldLayer(RealWorldLayer::kLandc);
  auto lando = GenerateRealWorldLayer(RealWorldLayer::kLando);
  // Subsample for test speed (keep every 4th object).
  auto thin = [](std::vector<Box> v) {
    std::vector<Box> out;
    for (size_t i = 0; i < v.size(); i += 4) out.push_back(v[i]);
    return out;
  };
  const auto r = thin(std::move(landc));
  const auto s = thin(std::move(lando));
  const double exact = static_cast<double>(ExactRectJoinCount(r, s));
  ASSERT_GT(exact, 0.0);

  JoinPipelineOptions opt;
  opt.dims = 2;
  opt.log2_domain = kRealWorldLog2Domain;
  opt.auto_max_level = true;
  opt.k1 = 450;  // ~20K words
  opt.k2 = 9;
  opt.seed = 15;
  auto result = SketchSpatialJoin(r, s, opt);
  ASSERT_TRUE(result.ok());
  // Clustered, highly selective joins are the hard regime (the paper's
  // Figures 9-11 report 10-50% SKETCH errors across 5-40K words); demand
  // the right magnitude at ~20K words.
  EXPECT_NEAR(result->estimate, exact, 0.50 * exact);
}

TEST(Integration, RealValuedPipelineThroughQuantizer) {
  // Section 5.1: real-valued boxes quantized onto the grid, then joined.
  auto q = Quantizer::Create(-1.0, 1.0, 8);
  ASSERT_TRUE(q.ok());
  Rng rng(16);
  auto gen_real = [&](size_t n) {
    std::vector<Box> out;
    for (size_t i = 0; i < n; ++i) {
      const double cx = rng.NextDouble() * 1.8 - 0.9;
      const double cy = rng.NextDouble() * 1.8 - 0.9;
      const double w = 0.02 + rng.NextDouble() * 0.2;
      const double h = 0.02 + rng.NextDouble() * 0.2;
      const double lo[2] = {cx - w, cy - h};
      const double hi[2] = {cx + w, cy + h};
      Box b = q->ToGridBox(lo, hi, 2);
      if (!IsDegenerate(b, 2)) out.push_back(b);
    }
    return out;
  };
  const auto r = gen_real(600);
  const auto s = gen_real(600);
  const double exact = static_cast<double>(ExactRectJoinCount(r, s));
  ASSERT_GT(exact, 0.0);

  JoinPipelineOptions opt;
  opt.dims = 2;
  opt.log2_domain = 8;
  opt.k1 = 400;
  opt.k2 = 7;
  opt.seed = 17;
  auto result = SketchSpatialJoin(r, s, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, exact, 0.30 * exact);
}

TEST(Integration, MaxLevelCapKeepsEstimatorUnbiased) {
  // Section 6.5 adaptive sketches: capping levels changes variance, not
  // expectation.
  SyntheticBoxOptions gen;
  gen.dims = 1;
  gen.log2_domain = 8;
  gen.count = 500;
  gen.seed = 21;
  const auto r = GenerateSyntheticBoxes(gen);
  gen.seed = 22;
  const auto s = GenerateSyntheticBoxes(gen);
  std::vector<Box> rs, ss;
  for (const Box& b : r) rs.push_back(EndpointTransform::MapR(b, 1));
  for (const Box& b : s) ss.push_back(EndpointTransform::ShrinkS(b, 1));
  const double exact = static_cast<double>(BruteJoinCount(r, s, 1));

  for (uint32_t cap : {3u, 6u, DyadicDomain::kNoCap}) {
    JoinPipelineOptions opt;
    opt.dims = 1;
    opt.log2_domain = 8;
    opt.max_level = cap;
    opt.k1 = 3000;
    opt.k2 = 5;
    opt.seed = 23;
    auto result = SketchSpatialJoin(r, s, opt);
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(result->estimate, exact, 0.30 * exact) << "cap=" << cap;
  }
}

}  // namespace
}  // namespace spatialsketch
