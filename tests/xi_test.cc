// Tests for the four-wise independent xi-families.
//
// The centerpiece verifies the BCH construction EXHAUSTIVELY on a small
// field: over GF(2^8) the full seed space (2^17 seeds) is enumerated and
// every sign pattern of up to four distinct indices must occur with
// exactly uniform frequency — that is the definition of four-wise
// independence, checked with zero statistical slack.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "src/common/bits.h"
#include "src/common/rng.h"
#include "src/gf2/gf2_small.h"
#include "src/xi/bch_family.h"
#include "src/xi/poly_family.h"
#include "src/xi/sign_table.h"

namespace spatialsketch {
namespace {

// BCH sign bit over GF(2^8) — the same construction as BchXiFamily with
// the small field substituted.
uint32_t SmallBit(uint32_t s0, uint32_t s1, uint32_t b, uint32_t index) {
  const uint64_t cube = gf2::Gf256::Cube(index);
  return Parity64((s0 & index) ^ (s1 & cube)) ^ b;
}

void CheckExactlyKWiseUniform(const std::vector<uint32_t>& indices) {
  // Count each sign-pattern over the whole seed space.
  const uint32_t k = static_cast<uint32_t>(indices.size());
  std::vector<uint64_t> pattern_counts(uint64_t{1} << k, 0);
  for (uint32_t s0 = 0; s0 < 256; ++s0) {
    for (uint32_t s1 = 0; s1 < 256; ++s1) {
      for (uint32_t b = 0; b < 2; ++b) {
        uint32_t pattern = 0;
        for (uint32_t j = 0; j < k; ++j) {
          pattern |= SmallBit(s0, s1, b, indices[j]) << j;
        }
        ++pattern_counts[pattern];
      }
    }
  }
  const uint64_t expected = (uint64_t{256} * 256 * 2) >> k;
  for (uint64_t c : pattern_counts) EXPECT_EQ(c, expected);
}

TEST(BchFourWise, ExhaustiveOneWise) {
  CheckExactlyKWiseUniform({0});
  CheckExactlyKWiseUniform({1});
  CheckExactlyKWiseUniform({200});
}

TEST(BchFourWise, ExhaustiveTwoWise) {
  CheckExactlyKWiseUniform({0, 1});
  CheckExactlyKWiseUniform({3, 250});
  CheckExactlyKWiseUniform({17, 18});
}

TEST(BchFourWise, ExhaustiveThreeWise) {
  CheckExactlyKWiseUniform({0, 1, 2});
  CheckExactlyKWiseUniform({5, 100, 200});
}

TEST(BchFourWise, ExhaustiveFourWise) {
  CheckExactlyKWiseUniform({0, 1, 2, 3});
  CheckExactlyKWiseUniform({7, 21, 98, 250});
  CheckExactlyKWiseUniform({1, 2, 4, 8});
  CheckExactlyKWiseUniform({10, 11, 12, 13});
}

TEST(BchFamily, SignsAreUnit) {
  Rng rng(1);
  const BchXiFamily fam(XiSeed::Random(&rng));
  for (uint64_t i = 0; i < 1000; ++i) {
    const int s = fam.Sign(i);
    EXPECT_TRUE(s == 1 || s == -1);
  }
}

TEST(BchFamily, DeterministicInSeed) {
  Rng rng(2);
  const XiSeed seed = XiSeed::Random(&rng);
  const BchXiFamily a(seed), b(seed);
  for (uint64_t i = 0; i < 500; ++i) EXPECT_EQ(a.Sign(i), b.Sign(i));
}

TEST(BchFamily, SignWithCubeMatchesSign) {
  Rng rng(3);
  const BchXiFamily fam(XiSeed::Random(&rng));
  for (uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(fam.SignWithCube(i, gf2::Cube(i)), fam.Sign(i));
  }
}

TEST(BchFamily, EmpiricalPairwiseOrthogonality) {
  // Statistical sanity on the production 64-bit family: over many seeds,
  // E[xi_i * xi_j] must be near 0 for i != j and exactly 1 for i == j.
  Rng rng(4);
  const int kSeeds = 4000;
  int64_t cross = 0, self = 0;
  for (int t = 0; t < kSeeds; ++t) {
    const BchXiFamily fam(XiSeed::Random(&rng));
    cross += fam.Sign(12345) * fam.Sign(99999);
    self += fam.Sign(777) * fam.Sign(777);
  }
  EXPECT_EQ(self, kSeeds);
  EXPECT_NEAR(static_cast<double>(cross) / kSeeds, 0.0,
              5.0 / std::sqrt(kSeeds));
}

TEST(BchFamily, EmpiricalFourWiseProductZero) {
  Rng rng(5);
  const int kSeeds = 4000;
  int64_t prod = 0;
  for (int t = 0; t < kSeeds; ++t) {
    const BchXiFamily fam(XiSeed::Random(&rng));
    prod += fam.Sign(1) * fam.Sign(2) * fam.Sign(3) * fam.Sign(4);
  }
  EXPECT_NEAR(static_cast<double>(prod) / kSeeds, 0.0,
              5.0 / std::sqrt(kSeeds));
}

TEST(PolyFamily, SignsAreUnitAndDeterministic) {
  Rng rng(6);
  const PolyXiFamily fam = PolyXiFamily::Random(&rng);
  for (uint64_t i = 0; i < 500; ++i) {
    const int s = fam.Sign(i);
    EXPECT_TRUE(s == 1 || s == -1);
    EXPECT_EQ(s, fam.Sign(i));
  }
}

TEST(PolyFamily, HashIsBelowPrime) {
  Rng rng(7);
  const PolyXiFamily fam = PolyXiFamily::Random(&rng);
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_LT(fam.Hash(i), PolyXiFamily::kPrime);
  }
}

TEST(PolyFamily, EmpiricalPairwiseOrthogonality) {
  Rng rng(8);
  const int kSeeds = 4000;
  int64_t cross = 0;
  for (int t = 0; t < kSeeds; ++t) {
    const PolyXiFamily fam = PolyXiFamily::Random(&rng);
    cross += fam.Sign(31337) * fam.Sign(4242);
  }
  EXPECT_NEAR(static_cast<double>(cross) / kSeeds, 0.0,
              5.0 / std::sqrt(kSeeds));
}

TEST(SignTable, MatchesFamilyEverywhere) {
  Rng rng(9);
  std::vector<XiSeed> seeds;
  for (int i = 0; i < 130; ++i) seeds.push_back(XiSeed::Random(&rng));
  const uint64_t kIds = 512;
  const SignTable table(seeds, kIds);
  EXPECT_EQ(table.num_blocks(), 3u);
  EXPECT_EQ(table.num_instances(), 130u);
  for (uint32_t j = 0; j < seeds.size(); ++j) {
    const BchXiFamily fam(seeds[j]);
    for (uint64_t id = 0; id < kIds; ++id) {
      EXPECT_EQ(table.Sign(j, id), fam.Sign(id));
    }
  }
}

TEST(SignTable, RowBitsMatchScalarAccess) {
  Rng rng(10);
  std::vector<XiSeed> seeds;
  for (int i = 0; i < 64; ++i) seeds.push_back(XiSeed::Random(&rng));
  const SignTable table(seeds, 64);
  const uint64_t* row = table.Row(0);
  for (uint64_t id = 0; id < 64; ++id) {
    for (uint32_t j = 0; j < 64; ++j) {
      const int sign = 1 - 2 * static_cast<int>((row[id] >> j) & 1);
      EXPECT_EQ(sign, table.Sign(j, id));
    }
  }
}

}  // namespace
}  // namespace spatialsketch
