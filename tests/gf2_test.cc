// Tests for GF(2^64) arithmetic: ring axioms on random elements, known
// small products, a Frobenius-based irreducibility check of the reduction
// polynomial, and the small test fields.

#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"
#include "src/gf2/gf2_64.h"
#include "src/gf2/gf2_small.h"

namespace spatialsketch {
namespace gf2 {
namespace {

TEST(Clmul, SmallKnownProducts) {
  // (x+1)(x+1) = x^2 + 1 carry-less.
  auto p = Clmul64(0b11, 0b11);
  EXPECT_EQ(p.lo, 0b101u);
  EXPECT_EQ(p.hi, 0u);
  // x^63 * x = x^64.
  p = Clmul64(uint64_t{1} << 63, 2);
  EXPECT_EQ(p.lo, 0u);
  EXPECT_EQ(p.hi, 1u);
}

TEST(Clmul, MatchesSchoolbookOnRandomInputs) {
  Rng rng(1);
  for (int t = 0; t < 200; ++t) {
    const uint64_t a = rng.Next64();
    const uint64_t b = rng.Next64();
    // Schoolbook reference.
    uint64_t lo = 0, hi = 0;
    for (int i = 0; i < 64; ++i) {
      if ((b >> i) & 1) {
        lo ^= a << i;
        hi ^= i == 0 ? 0 : a >> (64 - i);
      }
    }
    const auto p = Clmul64(a, b);
    EXPECT_EQ(p.lo, lo);
    EXPECT_EQ(p.hi, hi);
  }
}

TEST(Gf64, MultiplicationIsCommutative) {
  Rng rng(2);
  for (int t = 0; t < 200; ++t) {
    const uint64_t a = rng.Next64(), b = rng.Next64();
    EXPECT_EQ(Mul(a, b), Mul(b, a));
  }
}

TEST(Gf64, MultiplicationIsAssociative) {
  Rng rng(3);
  for (int t = 0; t < 200; ++t) {
    const uint64_t a = rng.Next64(), b = rng.Next64(), c = rng.Next64();
    EXPECT_EQ(Mul(Mul(a, b), c), Mul(a, Mul(b, c)));
  }
}

TEST(Gf64, MultiplicationDistributesOverXor) {
  Rng rng(4);
  for (int t = 0; t < 200; ++t) {
    const uint64_t a = rng.Next64(), b = rng.Next64(), c = rng.Next64();
    EXPECT_EQ(Mul(a, b ^ c), Mul(a, b) ^ Mul(a, c));
  }
}

TEST(Gf64, OneIsIdentityZeroAnnihilates) {
  Rng rng(5);
  for (int t = 0; t < 100; ++t) {
    const uint64_t a = rng.Next64();
    EXPECT_EQ(Mul(a, 1), a);
    EXPECT_EQ(Mul(a, 0), 0u);
  }
}

TEST(Gf64, SquareMatchesMul) {
  Rng rng(6);
  for (int t = 0; t < 200; ++t) {
    const uint64_t a = rng.Next64();
    EXPECT_EQ(Square(a), Mul(a, a));
    EXPECT_EQ(Cube(a), Mul(Mul(a, a), a));
  }
}

TEST(Gf64, FrobeniusLinearity) {
  // Squaring is GF(2)-linear: (a+b)^2 = a^2 + b^2.
  Rng rng(7);
  for (int t = 0; t < 200; ++t) {
    const uint64_t a = rng.Next64(), b = rng.Next64();
    EXPECT_EQ(Square(a ^ b), Square(a) ^ Square(b));
  }
}

TEST(Gf64, ReductionPolynomialIsIrreducible) {
  // alpha = x satisfies alpha^(2^64) == alpha for any factor pattern with
  // degrees dividing 64, and alpha^(2^32) != alpha rules out every proper
  // divisor: together they certify a degree-64 irreducible factor, i.e.
  // irreducibility of the degree-64 modulus itself.
  const uint64_t alpha = 2;  // the class of x
  EXPECT_EQ(FrobeniusPower(alpha, 64), alpha);
  EXPECT_NE(FrobeniusPower(alpha, 32), alpha);
}

TEST(Gf64, FermatForRandomElements) {
  Rng rng(8);
  for (int t = 0; t < 50; ++t) {
    const uint64_t a = rng.Next64();
    EXPECT_EQ(FrobeniusPower(a, 64), a);
  }
}

TEST(SmallField, Gf256MatchesAesFieldFacts) {
  // In the AES field, {02} * {87} = {15} (known vector: xtime with
  // reduction).
  EXPECT_EQ(Gf256::Mul(0x02, 0x87), 0x15u);
  // {53} * {CA} = {01} (known multiplicative inverse pair).
  EXPECT_EQ(Gf256::Mul(0x53, 0xCA), 0x01u);
}

TEST(SmallField, RingAxiomsExhaustiveOnSubsets) {
  for (uint64_t a = 0; a < 64; ++a) {
    for (uint64_t b = 0; b < 64; ++b) {
      EXPECT_EQ(Gf256::Mul(a, b), Gf256::Mul(b, a));
    }
  }
  for (uint64_t a = 1; a < 32; ++a) {
    for (uint64_t b = 1; b < 32; ++b) {
      for (uint64_t c = 1; c < 8; ++c) {
        EXPECT_EQ(Gf256::Mul(Gf256::Mul(a, b), c),
                  Gf256::Mul(a, Gf256::Mul(b, c)));
      }
    }
  }
}

TEST(SmallField, CubeInjectivityOnNonzeroGf256) {
  // gcd(3, 255) = 3, so cubing is 3-to-1 on nonzero elements; verify the
  // image size. (This documents that BCH four-wise independence does not
  // rely on cube injectivity.)
  std::set<uint64_t> image;
  for (uint64_t a = 1; a < 256; ++a) image.insert(Gf256::Cube(a));
  EXPECT_EQ(image.size(), 85u);
}

}  // namespace
}  // namespace gf2
}  // namespace spatialsketch
