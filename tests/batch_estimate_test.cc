// Batched-estimation equivalence: EstimateRangeBatch / EstimateJoinBatch
// must return EXACTLY the values of the equivalent sequence of
// single-query calls — at the estimator layer (RangeQueryBatch,
// EstimateJoinCardinalityBatch) and through SketchStore (one lock
// acquisition per dataset, fanned across the query pool), including while
// writers mutate the dataset concurrently.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/estimators/join_estimator.h"
#include "src/estimators/range_query_estimator.h"
#include "src/store/query_pool.h"
#include "src/store/sketch_store.h"

namespace spatialsketch {
namespace {

std::vector<Box> MakeBoxes(uint32_t dims, uint32_t h, size_t count,
                           uint64_t seed) {
  Rng rng(seed);
  const Coord domain = Coord{1} << h;
  std::vector<Box> boxes(count);
  for (Box& b : boxes) {
    for (uint32_t d = 0; d < dims; ++d) {
      const Coord side = 1 + rng.Uniform(domain / 2);
      const Coord lo = rng.Uniform(domain - side);
      b.lo[d] = lo;
      b.hi[d] = lo + side;
    }
  }
  return boxes;
}

StoreSchemaOptions SmallSchema(uint32_t dims, uint32_t h) {
  StoreSchemaOptions opt;
  opt.dims = dims;
  opt.log2_domain = h;
  opt.k1 = 8;
  opt.k2 = 3;
  opt.seed = 5;
  return opt;
}

TEST(QueryPool, RunsEveryIndexExactlyOnce) {
  QueryPool pool(3);
  for (size_t n : {0ul, 1ul, 7ul, 64ul, 1000ul}) {
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, [&](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(QueryPool, ConcurrentSubmittersAllComplete) {
  QueryPool pool(2);
  constexpr int kSubmitters = 6;
  std::atomic<int64_t> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        pool.ParallelFor(50, [&](size_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(total.load(), int64_t{kSubmitters} * 20 * 50);
}

TEST(RangeBatch, EstimatorBatchEqualsSequentialExactly) {
  const uint32_t dims = 2, h = 9;
  RangeEstimatorOptions opt;
  opt.dims = dims;
  opt.log2_domain = h;
  opt.k1 = 16;
  opt.k2 = 5;
  auto est = RangeQueryEstimator::Build(MakeBoxes(dims, h, 500, 1), opt);
  ASSERT_TRUE(est.ok());
  const std::vector<Box> queries = MakeBoxes(dims, h, 64, 2);

  std::vector<double> sequential;
  for (const Box& q : queries) sequential.push_back(est->EstimateCount(q));
  // (The estimator's sketch is private; go through the free functions the
  // store uses, on a fresh equivalent sketch.)
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(sequential[i], est->EstimateCount(queries[i]));
  }
}

TEST(RangeBatch, StoreBatchEqualsSequentialOnQuiescentStore) {
  const uint32_t dims = 2, h = 9;
  SketchStore store;
  ASSERT_TRUE(store.RegisterSchema("s", SmallSchema(dims, h)).ok());
  ASSERT_TRUE(store.CreateDataset("d", "s", DatasetKind::kRange).ok());
  ASSERT_TRUE(store.BulkLoad("d", MakeBoxes(dims, h, 800, 3)).ok());

  const std::vector<Box> queries = MakeBoxes(dims, h, 100, 4);
  auto batched = store.EstimateRangeBatch("d", queries);
  ASSERT_TRUE(batched.ok());
  ASSERT_EQ(batched->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto single = store.EstimateRangeCount("d", queries[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(*single, (*batched)[i]) << "query " << i;
  }
}

TEST(RangeBatch, BatchIsInternallyConsistentUnderConcurrentWriters) {
  // While writers stream inserts/deletes, a batch holds the dataset's
  // shared lock once, so duplicated queries inside one batch MUST agree
  // exactly even though the dataset changes between batches. After the
  // writers drain, batch == sequential exactly.
  const uint32_t dims = 1, h = 9;
  SketchStore store;
  ASSERT_TRUE(store.RegisterSchema("s", SmallSchema(dims, h)).ok());
  ASSERT_TRUE(store.CreateDataset("d", "s", DatasetKind::kRange).ok());
  ASSERT_TRUE(store.BulkLoad("d", MakeBoxes(dims, h, 300, 5)).ok());

  const std::vector<Box> uniq = MakeBoxes(dims, h, 16, 6);
  std::vector<Box> doubled;
  for (const Box& q : uniq) {
    doubled.push_back(q);
    doubled.push_back(q);
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    const auto stream = MakeBoxes(dims, h, 256, 7);
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(store.Insert("d", stream[i % stream.size()]).ok());
      ASSERT_TRUE(store.Delete("d", stream[i % stream.size()]).ok());
      ++i;
    }
  });
  for (int round = 0; round < 50; ++round) {
    auto batched = store.EstimateRangeBatch("d", doubled);
    ASSERT_TRUE(batched.ok());
    for (size_t i = 0; i < uniq.size(); ++i) {
      ASSERT_EQ((*batched)[2 * i], (*batched)[2 * i + 1])
          << "batch round " << round << " query " << i
          << ": duplicates diverged within one batch";
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  auto batched = store.EstimateRangeBatch("d", doubled);
  ASSERT_TRUE(batched.ok());
  for (size_t i = 0; i < doubled.size(); ++i) {
    auto single = store.EstimateRangeCount("d", doubled[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(*single, (*batched)[i]);
  }
}

TEST(JoinBatch, EstimatorBatchEqualsSequentialExactly) {
  const uint32_t dims = 2;
  JoinPipelineOptions opt;
  opt.dims = dims;
  opt.log2_domain = 8;
  opt.k1 = 12;
  opt.k2 = 3;
  auto schema = MakeTransformedJoinSchema(opt);
  ASSERT_TRUE(schema.ok());
  uint64_t dropped = 0;
  DatasetSketch r =
      SketchJoinSideR(*schema, MakeBoxes(dims, 8, 300, 11), &dropped);
  std::vector<DatasetSketch> s_sketches;
  std::vector<const DatasetSketch*> s_ptrs;
  for (uint64_t i = 0; i < 5; ++i) {
    s_sketches.push_back(SketchJoinSideS(
        *schema, MakeBoxes(dims, 8, 200, 20 + i), &dropped));
  }
  for (const auto& s : s_sketches) s_ptrs.push_back(&s);

  auto batched = EstimateJoinCardinalityBatch(r, s_ptrs);
  ASSERT_TRUE(batched.ok());
  for (size_t i = 0; i < s_ptrs.size(); ++i) {
    auto single = EstimateJoinCardinality(r, *s_ptrs[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(*single, (*batched)[i]) << "pair " << i;
  }
}

TEST(JoinBatch, StoreBatchEqualsSequentialAndLocksOnce) {
  const uint32_t dims = 2, h = 8;
  SketchStore store;
  ASSERT_TRUE(store.RegisterSchema("s", SmallSchema(dims, h)).ok());
  ASSERT_TRUE(store.CreateDataset("r", "s", DatasetKind::kJoinR).ok());
  std::vector<std::string> s_names;
  for (int i = 0; i < 4; ++i) {
    s_names.push_back("s" + std::to_string(i));
    ASSERT_TRUE(
        store.CreateDataset(s_names.back(), "s", DatasetKind::kJoinS).ok());
    ASSERT_TRUE(
        store.BulkLoad(s_names.back(), MakeBoxes(dims, h, 150, 40 + i)).ok());
  }
  ASSERT_TRUE(store.BulkLoad("r", MakeBoxes(dims, h, 200, 39)).ok());

  // Duplicate an S name: the store must lock each distinct dataset once
  // and still answer per batch entry.
  std::vector<std::string> request = s_names;
  request.push_back(s_names[0]);
  auto batched = store.EstimateJoinBatch("r", request);
  ASSERT_TRUE(batched.ok());
  ASSERT_EQ(batched->size(), request.size());
  for (size_t i = 0; i < request.size(); ++i) {
    auto single = store.EstimateJoin("r", request[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(*single, (*batched)[i]) << "pair " << i;
  }
  EXPECT_EQ((*batched)[0], (*batched)[4]);
}

TEST(BatchValidation, EmptyAndMalformedBatchesAreRejected) {
  const uint32_t dims = 1, h = 8;
  SketchStore store;
  ASSERT_TRUE(store.RegisterSchema("s", SmallSchema(dims, h)).ok());
  ASSERT_TRUE(store.CreateDataset("d", "s", DatasetKind::kRange).ok());
  ASSERT_TRUE(store.CreateDataset("r", "s", DatasetKind::kJoinR).ok());
  ASSERT_TRUE(store.CreateDataset("q", "s", DatasetKind::kJoinS).ok());

  EXPECT_FALSE(store.EstimateRangeBatch("d", {}).ok());
  EXPECT_FALSE(store.EstimateJoinBatch("r", {}).ok());
  EXPECT_FALSE(store.EstimateRangeBatch("missing", {MakeInterval(0, 4)}).ok());
  EXPECT_FALSE(store.EstimateJoinBatch("r", {"missing"}).ok());
  // Wrong kinds.
  EXPECT_FALSE(store.EstimateRangeBatch("r", {MakeInterval(0, 4)}).ok());
  EXPECT_FALSE(store.EstimateJoinBatch("d", {"q"}).ok());
  EXPECT_FALSE(store.EstimateJoinBatch("r", {"d"}).ok());
  // One bad query rejects the whole batch (no partial serving).
  Box degenerate = MakeInterval(3, 3);
  EXPECT_FALSE(
      store.EstimateRangeBatch("d", {MakeInterval(0, 4), degenerate}).ok());
  Box huge = MakeInterval(0, Coord{1} << 20);
  EXPECT_FALSE(
      store.EstimateRangeBatch("d", {MakeInterval(0, 4), huge}).ok());
  // Bad bulk-load signs surface as Status errors, not UB/aborts.
  EXPECT_FALSE(store.BulkLoad("d", MakeBoxes(dims, h, 3, 1), 0).ok());
  EXPECT_FALSE(store.BulkLoad("d", MakeBoxes(dims, h, 3, 1), 7).ok());
  // Estimator-layer empty join batch.
  auto schema = store.GetSchema("s");
  ASSERT_TRUE(schema.ok());
  DatasetSketch r(*schema, Shape::JoinShape(dims));
  EXPECT_FALSE(EstimateJoinCardinalityBatch(r, {}).ok());
}

}  // namespace
}  // namespace spatialsketch
