// Tests for the common substrate: RNG, Zipf sampling, flags, status, bits.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "src/common/bits.h"
#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/zipf.h"

namespace spatialsketch {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next64() == b.Next64());
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.Uniform(bound), bound);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(11);
  const int kBuckets = 8;
  const int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Uniform(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 5 * std::sqrt(kDraws / kBuckets));
  }
}

TEST(RngTest, UniformInRangeInclusive) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInRange(5, 7));
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_TRUE(seen.count(5) && seen.count(7));
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  const int kDraws = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.03);
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(77);
  Rng b = a.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next64() == b.Next64());
  EXPECT_LT(equal, 2);
}

TEST(ZipfTest, UniformWhenZZero) {
  ZipfSampler zipf(16, 0.0);
  Rng rng(1);
  std::vector<int> counts(16, 0);
  const int kDraws = 64000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 16, 5 * std::sqrt(kDraws / 16.0));
  }
}

TEST(ZipfTest, SkewPrefersSmallValues) {
  ZipfSampler zipf(1024, 1.0);
  Rng rng(2);
  int low = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) low += (zipf.Sample(&rng) < 32);
  // Under z=1 the first 32 of 1024 values carry far more than 3% of mass.
  EXPECT_GT(low, kDraws / 4);
}

TEST(ZipfTest, SampleWithinDomain) {
  ZipfSampler zipf(100, 2.0);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(&rng), 100u);
}

TEST(FlagsTest, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "4.5", "pos1",
                        "--gamma"};
  auto flags = Flags::Parse(6, argv);
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(flags->GetDouble("beta", 0.0), 4.5);
  // A trailing bare flag is boolean true.
  EXPECT_TRUE(flags->GetBool("gamma"));
  ASSERT_EQ(flags->positional().size(), 1u);
  EXPECT_EQ(flags->positional()[0], "pos1");
}

TEST(FlagsTest, SpaceFormConsumesNextNonFlagToken) {
  // "--name value" binds the value; flags cannot be values.
  const char* argv[] = {"prog", "--name", "--other", "x"};
  auto flags = Flags::Parse(4, argv);
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->GetBool("name"));
  EXPECT_EQ(flags->GetString("other"), "x");
}

TEST(FlagsTest, DefaultsApplyWhenAbsentOrMalformed) {
  const char* argv[] = {"prog", "--n=notanumber"};
  auto flags = Flags::Parse(2, argv);
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("n", 42), 42);
  EXPECT_EQ(flags->GetInt("missing", 7), 7);
  EXPECT_EQ(flags->GetString("missing", "x"), "x");
}

TEST(FlagsTest, RejectsBareDashes) {
  const char* argv[] = {"prog", "--"};
  auto flags = Flags::Parse(2, argv);
  EXPECT_FALSE(flags.ok());
}

TEST(StatusTest, OkAndErrorRendering) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  const Status s = Status::InvalidArgument("bad k1");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k1");
}

// GCC 12's -Wmaybe-uninitialized reports the disengaged std::variant
// alternative's string as "maybe used uninitialized" at -O2 (GCC
// PR105562); the Status alternative is never read while the int
// alternative is engaged.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 5);
  Result<int> bad(Status::OutOfRange("x"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}
#pragma GCC diagnostic pop

TEST(BitsTest, ParityAndLogHelpers) {
  EXPECT_EQ(Parity64(0), 0u);
  EXPECT_EQ(Parity64(1), 1u);
  EXPECT_EQ(Parity64(0b1011), 1u);
  EXPECT_EQ(Parity64(~0ull), 0u);
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(65));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_EQ(NextPowerOfTwo(5), 8u);
  EXPECT_EQ(NextPowerOfTwo(8), 8u);
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(9), 3u);
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(9), 4u);
}

}  // namespace
}  // namespace spatialsketch
