// Durability tests: the WAL/checkpoint/recovery layer behind
// SketchStore::OpenDurable. The core assertion throughout is EXACT
// equality — the synopsis is linear, so a store recovered from
// checkpoint + WAL replay must hold counters (and therefore estimates)
// bit-identical to a reference store that applied exactly the accepted
// operation prefix. The kill-point matrix arms every failpoint site in
// the durability layer in turn, runs a scripted workload until the
// injected fault fires, "crashes" (destroys the store), reopens the
// directory, and asserts that exact equality; it runs under both the
// scalar and the best available SIMD kernels.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "src/common/failpoints.h"
#include "src/common/status.h"
#include "src/store/durability/fs.h"
#include "src/store/sketch_store.h"
#include "src/store/writer_shards.h"
#include "src/workload/zipf_boxes.h"
#include "src/xi/kernels.h"

namespace spatialsketch {
namespace {

StoreSchemaOptions SmallSchema(uint32_t dims, uint32_t log2_domain = 8,
                               uint32_t k1 = 5, uint32_t k2 = 3,
                               uint64_t seed = 42) {
  StoreSchemaOptions opt;
  opt.dims = dims;
  opt.log2_domain = log2_domain;
  opt.k1 = k1;
  opt.k2 = k2;
  opt.seed = seed;
  return opt;
}

std::vector<Box> MakeBoxes(uint32_t dims, uint32_t log2_domain,
                           uint64_t count, uint64_t seed) {
  SyntheticBoxOptions gen;
  gen.dims = dims;
  gen.log2_domain = log2_domain;
  gen.count = count;
  gen.seed = seed;
  return GenerateSyntheticBoxes(gen);
}

// A fresh per-test directory under the gtest temp root. Leftovers from a
// previous run of the same test are removed so recovery never sees stale
// state the test did not write.
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "spatialsketch_" + name +
                          "_" + std::to_string(::getpid());
  auto files = durability::ListDir(dir);
  if (files.ok()) {
    for (const auto& f : *files) (void)durability::RemoveFile(dir + "/" + f);
  }
  EXPECT_TRUE(durability::EnsureDir(dir).ok());
  return dir;
}

// RAII: a failing assertion must not leave a site armed for later tests.
struct FailpointGuard {
  ~FailpointGuard() { failpoints::DisarmAll(); }
};

// ---- Failpoint framework unit tests ------------------------------------

TEST(Failpoints, ArmSkipCountAndDisarm) {
  FailpointGuard guard;
  failpoints::DisarmAll();
#if SPATIALSKETCH_FAILPOINTS_ENABLED
  // skip=2, count=2: hits 1-2 pass, 3-4 fire, 5+ pass.
  failpoints::Arm("unit-test-site", /*skip=*/2, /*count=*/2);
  EXPECT_FALSE(SKETCH_FAILPOINT("unit-test-site"));
  EXPECT_FALSE(SKETCH_FAILPOINT("unit-test-site"));
  EXPECT_TRUE(SKETCH_FAILPOINT("unit-test-site"));
  EXPECT_TRUE(SKETCH_FAILPOINT("unit-test-site"));
  EXPECT_FALSE(SKETCH_FAILPOINT("unit-test-site"));
  EXPECT_EQ(failpoints::FireCount("unit-test-site"), 2u);
  // Unarmed sites never fire; armed sites show up in the diagnostic list.
  EXPECT_FALSE(SKETCH_FAILPOINT("never-armed"));
  EXPECT_EQ(failpoints::ArmedSites().size(), 1u);
  // count=0 = unlimited firings until disarmed.
  failpoints::Arm("unit-test-site");
  EXPECT_TRUE(SKETCH_FAILPOINT("unit-test-site"));
  EXPECT_TRUE(SKETCH_FAILPOINT("unit-test-site"));
  failpoints::Disarm("unit-test-site");
  EXPECT_FALSE(SKETCH_FAILPOINT("unit-test-site"));
  failpoints::DisarmAll();
  EXPECT_TRUE(failpoints::ArmedSites().empty());
#else
  // Compiled out: the macro is the literal constant false.
  failpoints::Arm("unit-test-site");
  EXPECT_FALSE(SKETCH_FAILPOINT("unit-test-site"));
  EXPECT_EQ(failpoints::FireCount("unit-test-site"), 0u);
#endif
}

// ---- Basic durable lifecycle -------------------------------------------

TEST(Durability, RoundTripReplaysAndRecoveryCheckpointTruncates) {
  const std::string dir = FreshDir("roundtrip");
  const auto boxes = MakeBoxes(2, 8, 40, 7);

  std::vector<int64_t> expect_counters;
  double expect_estimate = 0;
  {
    auto store = SketchStore::OpenDurable(dir);
    ASSERT_TRUE(store.ok());
    EXPECT_TRUE((*store)->durable());
    ASSERT_TRUE((*store)->RegisterSchema("s", SmallSchema(2)).ok());
    ASSERT_TRUE((*store)->CreateDataset("d", "s", DatasetKind::kRange).ok());
    for (const auto& b : boxes) ASSERT_TRUE((*store)->Insert("d", b).ok());
    ASSERT_TRUE((*store)->Delete("d", boxes[0]).ok());
    auto counters = (*store)->CounterSnapshot("d");
    ASSERT_TRUE(counters.ok());
    expect_counters = *counters;
    auto est = (*store)->EstimateRangeCount("d", boxes[1]);
    ASSERT_TRUE(est.ok());
    expect_estimate = *est;
    const StoreStats s = (*store)->stats();
    EXPECT_GT(s.wal_records, 0u);
    EXPECT_GT(s.wal_bytes, 0u);
    EXPECT_GE(s.checkpoints, 1u);  // the recovery-as-checkpoint at open
    ASSERT_TRUE((*store)->SyncWal().ok());
  }  // "crash": destroy without a clean shutdown protocol

  {
    auto store = SketchStore::OpenDurable(dir);
    ASSERT_TRUE(store.ok());
    // The mutations after the open-time checkpoint replay from the WAL.
    EXPECT_GT((*store)->stats().wal_replayed, 0u);
    auto counters = (*store)->CounterSnapshot("d");
    ASSERT_TRUE(counters.ok());
    EXPECT_EQ(*counters, expect_counters);
    auto est = (*store)->EstimateRangeCount("d", boxes[1]);
    ASSERT_TRUE(est.ok());
    EXPECT_EQ(*est, expect_estimate);
  }

  {
    // Recovery itself checkpointed, so a third open replays nothing.
    auto store = SketchStore::OpenDurable(dir);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ((*store)->stats().wal_replayed, 0u);
    auto counters = (*store)->CounterSnapshot("d");
    ASSERT_TRUE(counters.ok());
    EXPECT_EQ(*counters, expect_counters);
  }
}

TEST(Durability, ExplicitCheckpointTruncatesTheLog) {
  const std::string dir = FreshDir("checkpoint");
  const auto boxes = MakeBoxes(1, 8, 30, 11);
  std::vector<int64_t> expect_counters;
  {
    auto store = SketchStore::OpenDurable(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->RegisterSchema("s", SmallSchema(1)).ok());
    ASSERT_TRUE((*store)->CreateDataset("d", "s", DatasetKind::kRange).ok());
    for (const auto& b : boxes) ASSERT_TRUE((*store)->Insert("d", b).ok());
    ASSERT_TRUE((*store)->Checkpoint().ok());
    EXPECT_GE((*store)->stats().checkpoints, 2u);
    auto counters = (*store)->CounterSnapshot("d");
    ASSERT_TRUE(counters.ok());
    expect_counters = *counters;
  }
  {
    auto store = SketchStore::OpenDurable(dir);
    ASSERT_TRUE(store.ok());
    // Everything sits in the checkpoint image: nothing to replay.
    EXPECT_EQ((*store)->stats().wal_replayed, 0u);
    auto counters = (*store)->CounterSnapshot("d");
    ASSERT_TRUE(counters.ok());
    EXPECT_EQ(*counters, expect_counters);
  }
}

TEST(Durability, AutoCheckpointTriggersOnWalGrowth) {
  const std::string dir = FreshDir("autockpt");
  DurabilityOptions opt;
  opt.checkpoint_every_bytes = 2048;
  auto store = SketchStore::OpenDurable(dir, opt);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->RegisterSchema("s", SmallSchema(1)).ok());
  ASSERT_TRUE((*store)->CreateDataset("d", "s", DatasetKind::kRange).ok());
  const auto boxes = MakeBoxes(1, 8, 200, 13);
  for (const auto& b : boxes) ASSERT_TRUE((*store)->Insert("d", b).ok());
  // 200 updates log far more than 2 KiB, so auto-checkpoints fired beyond
  // the recovery one.
  EXPECT_GT((*store)->stats().checkpoints, 1u);
}

TEST(Durability, DropAndRecreateReplayExactly) {
  const std::string dir = FreshDir("droprec");
  const auto boxes = MakeBoxes(1, 8, 25, 17);
  std::vector<int64_t> expect_counters;
  {
    auto store = SketchStore::OpenDurable(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->RegisterSchema("s", SmallSchema(1)).ok());
    ASSERT_TRUE((*store)->CreateDataset("d", "s", DatasetKind::kRange).ok());
    for (const auto& b : boxes) ASSERT_TRUE((*store)->Insert("d", b).ok());
    ASSERT_TRUE((*store)->DropDataset("d").ok());
    // Re-created under the same name with different contents: replay must
    // honor the drop, not merge the generations.
    ASSERT_TRUE((*store)->CreateDataset("d", "s", DatasetKind::kRange).ok());
    for (size_t i = 0; i < 5; ++i) {
      ASSERT_TRUE((*store)->Insert("d", boxes[i]).ok());
    }
    auto counters = (*store)->CounterSnapshot("d");
    ASSERT_TRUE(counters.ok());
    expect_counters = *counters;
  }
  auto store = SketchStore::OpenDurable(dir);
  ASSERT_TRUE(store.ok());
  auto counters = (*store)->CounterSnapshot("d");
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(*counters, expect_counters);
}

TEST(Durability, NonDurableStoreRejectsCheckpointAndAllowsSync) {
  SketchStore store;
  EXPECT_FALSE(store.durable());
  EXPECT_EQ(store.Checkpoint().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(store.SyncWal().ok());  // explicit no-op
  const StoreStats s = store.stats();
  EXPECT_EQ(s.wal_records, 0u);
  EXPECT_EQ(s.checkpoints, 0u);
}

#if SPATIALSKETCH_FAILPOINTS_ENABLED

TEST(Durability, BrokenWalFailsFastUntilReopen) {
  FailpointGuard guard;
  const std::string dir = FreshDir("broken");
  const auto boxes = MakeBoxes(1, 8, 10, 19);
  std::vector<int64_t> expect_counters;
  {
    auto store = SketchStore::OpenDurable(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->RegisterSchema("s", SmallSchema(1)).ok());
    ASSERT_TRUE((*store)->CreateDataset("d", "s", DatasetKind::kRange).ok());
    for (const auto& b : boxes) ASSERT_TRUE((*store)->Insert("d", b).ok());
    auto counters = (*store)->CounterSnapshot("d");
    ASSERT_TRUE(counters.ok());
    expect_counters = *counters;

    failpoints::Arm("wal-append", /*skip=*/0, /*count=*/1);
    // The injected failure: IOError, operation NOT applied.
    EXPECT_EQ((*store)->Insert("d", boxes[0]).code(), StatusCode::kIOError);
    // Every durable mutation thereafter fails fast on the poisoned WAL.
    EXPECT_EQ((*store)->Insert("d", boxes[1]).code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ((*store)->DropDataset("d").code(),
              StatusCode::kFailedPrecondition);
    // Reads keep serving the accepted in-memory state.
    auto counters2 = (*store)->CounterSnapshot("d");
    ASSERT_TRUE(counters2.ok());
    EXPECT_EQ(*counters2, expect_counters);
    failpoints::DisarmAll();
  }
  // Reopen recovers exactly the accepted prefix.
  auto store = SketchStore::OpenDurable(dir);
  ASSERT_TRUE(store.ok());
  auto counters = (*store)->CounterSnapshot("d");
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(*counters, expect_counters);
}

TEST(Durability, ShardedDurabilityIsFoldGranular) {
  FailpointGuard guard;
  const std::string dir = FreshDir("sharded");
  const auto boxes = MakeBoxes(1, 8, 20, 23);
  std::vector<int64_t> fenced_counters;
  {
    auto store = SketchStore::OpenDurable(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->RegisterSchema("s", SmallSchema(1)).ok());
    ASSERT_TRUE((*store)->CreateDataset("d", "s", DatasetKind::kRange).ok());
    ShardedWriterOptions sw;
    sw.writers = 2;
    sw.epoch_updates = 64;  // nothing folds until the fence
    ASSERT_TRUE((*store)->ConfigureShardedWriters("d", sw).ok());
    for (size_t i = 0; i < 10; ++i) {
      ASSERT_TRUE((*store)->Insert("d", boxes[i]).ok());
    }
    // The fence folds the shard deltas and logs them as one compact delta
    // record per shard — the group-granular durability point.
    ASSERT_TRUE((*store)->Fence("d").ok());
    {
      SketchStore ref;
      ASSERT_TRUE(ref.RegisterSchema("s", SmallSchema(1)).ok());
      ASSERT_TRUE(ref.CreateDataset("d", "s", DatasetKind::kRange).ok());
      for (size_t i = 0; i < 10; ++i) ASSERT_TRUE(ref.Insert("d", boxes[i]).ok());
      auto counters = ref.CounterSnapshot("d");
      ASSERT_TRUE(counters.ok());
      fenced_counters = *counters;
    }
    // Five more updates stay un-folded in the shards: accepted in memory,
    // lost by design at a crash (they never reached the master either).
    for (size_t i = 10; i < 15; ++i) {
      ASSERT_TRUE((*store)->Insert("d", boxes[i]).ok());
    }
  }  // crash with pending shard deltas
  auto store = SketchStore::OpenDurable(dir);
  ASSERT_TRUE(store.ok());
  auto counters = (*store)->CounterSnapshot("d");
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(*counters, fenced_counters);
}

// ---- The kill-point matrix ---------------------------------------------
//
// A scripted, deterministic workload runs against a durable store with one
// failpoint site armed. Each operation is also recorded so reference
// stores can replay exactly the ACCEPTED prefix. After the "crash"
// (store destruction) the directory is reopened and the recovered state
// must exactly equal one of two references:
//
//  - the accepted prefix (torn/failed appends: the record never became
//    durable), or
//  - the accepted prefix plus the single injected-failure operation (a
//    failed WAL fsync leaves the record fully framed on disk, and a
//    failed fold leaves the update pending in its shard where the next
//    successful fold carries it — in both cases the op was reported
//    failed but its effect legitimately survives; at-least-once on
//    failure, never corruption).
//
// Only ONE operation can be ambiguous this way: each site is armed with
// count=1, and a poisoned WAL rejects everything after it up front.

struct ScriptedOp {
  bool mutates;  // replayed onto reference stores (Checkpoint/Sync are not)
  std::function<Status(SketchStore&)> run;
};

// The workload touches every record type: schema registration, dataset
// creation, streaming updates (plain and sharded), deletes, a bulk-load
// delta, drop + re-create, snapshot/restore, fence, checkpoint, sync.
std::vector<ScriptedOp> BuildWorkload(const std::vector<Box>& boxes) {
  std::vector<ScriptedOp> ops;
  auto add = [&ops](bool mutates, std::function<Status(SketchStore&)> fn) {
    ops.push_back({mutates, std::move(fn)});
  };
  add(true, [](SketchStore& s) {
    return s.RegisterSchema("s", SmallSchema(2));
  });
  add(true, [](SketchStore& s) {
    return s.CreateDataset("a", "s", DatasetKind::kRange);
  });
  add(true, [](SketchStore& s) {
    DatasetOptions dopt;
    dopt.layout = CounterLayout::kBlocked;
    dopt.counter_width = CounterWidth::kI32;
    return s.CreateDataset("b", "s", DatasetKind::kRange, dopt);
  });
  // epoch_updates=1: every sharded update folds (and logs) immediately,
  // so accepted == durable and the exact-equality check stays exact.
  add(true, [](SketchStore& s) {
    ShardedWriterOptions sw;
    sw.writers = 1;
    sw.epoch_updates = 1;
    return s.ConfigureShardedWriters("b", sw);
  });
  for (size_t i = 0; i < 12; ++i) {
    add(true, [&boxes, i](SketchStore& s) { return s.Insert("a", boxes[i]); });
  }
  for (size_t i = 12; i < 20; ++i) {
    add(true, [&boxes, i](SketchStore& s) { return s.Insert("b", boxes[i]); });
  }
  add(true, [&boxes](SketchStore& s) { return s.Delete("a", boxes[0]); });
  add(true, [&boxes](SketchStore& s) { return s.Delete("a", boxes[1]); });
  add(false, [](SketchStore& s) { return s.Checkpoint(); });
  add(true, [&boxes](SketchStore& s) {
    return s.BulkLoad("b", {boxes.begin() + 20, boxes.begin() + 30});
  });
  for (size_t i = 30; i < 36; ++i) {
    add(true, [&boxes, i](SketchStore& s) { return s.Insert("a", boxes[i]); });
  }
  add(true, [](SketchStore& s) {
    return s.CreateDataset("c", "s", DatasetKind::kRange);
  });
  add(true, [&boxes](SketchStore& s) { return s.Insert("c", boxes[36]); });
  add(true, [](SketchStore& s) { return s.DropDataset("c"); });
  add(true, [](SketchStore& s) {
    return s.CreateDataset("d", "s", DatasetKind::kRange);
  });
  add(true, [](SketchStore& s) {
    auto blob = s.Snapshot("a");
    if (!blob.ok()) return blob.status();
    return s.Restore("d", *blob);
  });
  add(true, [](SketchStore& s) { return s.Fence("b"); });
  add(false, [](SketchStore& s) { return s.SyncWal(); });
  for (size_t i = 37; i < 42; ++i) {
    add(true, [&boxes, i](SketchStore& s) { return s.Insert("a", boxes[i]); });
  }
  add(false, [](SketchStore& s) { return s.Checkpoint(); });
  return ops;
}

// Everything observable about the datasets the workload touches: presence
// (status codes), exact counters, exact estimates.
struct Fingerprint {
  std::vector<StatusCode> codes;
  std::vector<std::vector<int64_t>> counters;
  std::vector<double> estimates;

  bool operator==(const Fingerprint& o) const {
    return codes == o.codes && counters == o.counters &&
           estimates == o.estimates;
  }
};

Fingerprint FingerprintStore(SketchStore& store, const Box& query) {
  Fingerprint fp;
  for (const char* name : {"a", "b", "c", "d"}) {
    auto counters = store.CounterSnapshot(name);
    fp.codes.push_back(counters.status().code());
    if (counters.ok()) {
      fp.counters.push_back(*counters);
      auto est = store.EstimateRangeCount(name, query);
      EXPECT_TRUE(est.ok());
      fp.estimates.push_back(est.ok() ? *est : 0.0);
    }
  }
  return fp;
}

// One matrix cell: open durable, arm `site` (skipping its first `skip`
// hits), run the workload, crash, reopen, compare against the accepted
// prefix (and against accepted + the injected op where that op's effect
// can legitimately survive — see the block comment above).
void RunKillPoint(const std::string& site, uint64_t skip,
                  const std::string& dir_tag) {
  SCOPED_TRACE(site + " skip=" + std::to_string(skip));
  const std::string dir = FreshDir(dir_tag);
  const auto boxes = MakeBoxes(2, 8, 42, 31);
  const auto ops = BuildWorkload(boxes);

  std::vector<bool> accepted(ops.size(), false);
  int first_failed_mutation = -1;
  {
    auto store = SketchStore::OpenDurable(dir);
    ASSERT_TRUE(store.ok());
    failpoints::Arm(site, skip, /*count=*/1);
    for (size_t i = 0; i < ops.size(); ++i) {
      const Status st = ops[i].run(**store);
      accepted[i] = st.ok();
      if (!st.ok() && ops[i].mutates && first_failed_mutation < 0) {
        first_failed_mutation = static_cast<int>(i);
      }
    }
    failpoints::DisarmAll();
  }  // crash

  auto recovered = SketchStore::OpenDurable(dir);
  ASSERT_TRUE(recovered.ok());
  const Fingerprint got = FingerprintStore(**recovered, boxes[2]);

  // Reference 1: exactly the accepted prefix.
  SketchStore ref_accepted;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (accepted[i] && ops[i].mutates) (void)ops[i].run(ref_accepted);
  }
  if (got == FingerprintStore(ref_accepted, boxes[2])) return;

  // Reference 2: accepted prefix + the one injected-failure op.
  ASSERT_GE(first_failed_mutation, 0)
      << "recovered state differs from the accepted prefix but no "
         "mutation failed";
  SketchStore ref_plus;
  for (size_t i = 0; i < ops.size(); ++i) {
    if ((accepted[i] || static_cast<int>(i) == first_failed_mutation) &&
        ops[i].mutates) {
      (void)ops[i].run(ref_plus);
    }
  }
  EXPECT_EQ(got, FingerprintStore(ref_plus, boxes[2]))
      << "recovered state matches neither the accepted prefix nor "
         "accepted + the injected op";
}

TEST(DurabilityKillPoints, MatrixUnderScalarAndBestKernels) {
  FailpointGuard guard;
  const char* kSites[] = {
      "wal-append",       "wal-append-torn",  "wal-fold",
      "fsync",            "checkpoint-tmp",   "checkpoint-rename",
      "checkpoint-current", "checkpoint-rotate", "snapshot-alloc",
  };
  // Two arming positions per site: an early hit (the first mutations) and
  // a later one (mid-stream, after the explicit checkpoint for the
  // checkpoint-path sites). Sites a position never reaches simply do not
  // fire — the cell then asserts clean recovery of the full workload.
  const uint64_t kSkips[] = {0, 2};
  for (kernels::Kind k : {kernels::Kind::kScalar, kernels::Best()}) {
    ASSERT_TRUE(kernels::ForceKernels(k).ok());
    SCOPED_TRACE(std::string("kernel=") + kernels::SelectedName());
    int cell = 0;
    for (const char* site : kSites) {
      for (uint64_t skip : kSkips) {
        RunKillPoint(site, skip, "kill_" + std::to_string(cell++));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
    if (k == kernels::Best()) break;  // scalar may BE the best variant
  }
  ASSERT_TRUE(kernels::ForceKernels(kernels::Best()).ok());
}

#endif  // SPATIALSKETCH_FAILPOINTS_ENABLED

}  // namespace
}  // namespace spatialsketch
