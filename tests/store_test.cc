// SketchStore tests: registry lifecycle, agreement with the
// single-threaded estimator pipelines, multi-threaded correctness
// (concurrent estimates during streaming ingest leave counters
// bit-identical to a sequential reference — the synopsis is linear, so
// this is checkable exactly), sharded parallel loads, and
// Snapshot()/Restore() round trips over the serialize corpus of kinds,
// dimensionalities, and update histories.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/estimators/join_estimator.h"
#include "src/estimators/range_query_estimator.h"
#include "src/store/parallel_ingest.h"
#include "src/store/sketch_store.h"
#include "src/workload/zipf_boxes.h"

namespace spatialsketch {
namespace {

StoreSchemaOptions SmallSchema(uint32_t dims, uint32_t log2_domain = 8,
                               uint32_t k1 = 6, uint32_t k2 = 3,
                               uint64_t seed = 42) {
  StoreSchemaOptions opt;
  opt.dims = dims;
  opt.log2_domain = log2_domain;
  opt.k1 = k1;
  opt.k2 = k2;
  opt.seed = seed;
  return opt;
}

std::vector<Box> MakeBoxes(uint32_t dims, uint32_t log2_domain, uint64_t count,
                           uint64_t seed, double zipf = 0.0) {
  SyntheticBoxOptions gen;
  gen.dims = dims;
  gen.log2_domain = log2_domain;
  gen.count = count;
  gen.seed = seed;
  gen.zipf_z = zipf;
  return gen.count == 0 ? std::vector<Box>{} : GenerateSyntheticBoxes(gen);
}

TEST(SketchStoreRegistry, SchemaAndDatasetLifecycle) {
  SketchStore store;
  EXPECT_TRUE(store.RegisterSchema("s", SmallSchema(1)).ok());
  EXPECT_FALSE(store.RegisterSchema("s", SmallSchema(1)).ok());  // duplicate

  StoreSchemaOptions bad = SmallSchema(1);
  bad.k1 = 0;  // invalid boosting grid
  EXPECT_FALSE(store.RegisterSchema("bad", bad).ok());

  // Oversized domains are rejected before the +2 transform can wrap (a
  // wrapped value would pass validation and feed UB shifts later).
  StoreSchemaOptions huge = SmallSchema(1);
  huge.log2_domain = 39;
  EXPECT_FALSE(store.RegisterSchema("huge", huge).ok());
  huge.log2_domain = 0xFFFFFFFFu;
  EXPECT_FALSE(store.RegisterSchema("huge", huge).ok());

  EXPECT_TRUE(store.CreateDataset("a", "s", DatasetKind::kRange).ok());
  EXPECT_FALSE(store.CreateDataset("a", "s", DatasetKind::kRange).ok());
  EXPECT_FALSE(store.CreateDataset("b", "missing", DatasetKind::kRange).ok());
  EXPECT_TRUE(store.CreateDataset("b", "s", DatasetKind::kJoinR).ok());

  const auto names = store.ListDatasets();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");

  EXPECT_TRUE(store.DropDataset("b").ok());
  EXPECT_FALSE(store.DropDataset("b").ok());
  EXPECT_FALSE(store.Insert("b", MakeInterval(1, 5)).ok());
  EXPECT_FALSE(store.EstimateRangeCount("missing", MakeInterval(1, 5)).ok());
  EXPECT_TRUE(store.GetSchema("s").ok());
  EXPECT_FALSE(store.GetSchema("missing").ok());
}

TEST(SketchStoreRegistry, ListDatasetsIsAConsistentSortedSnapshotUnderChurn) {
  // Regression for the old header comment's "concurrent creates may
  // race" caveat: the listing is copied out under the registry's shared
  // lock and must therefore be a consistent snapshot — sorted, duplicate
  // free, always containing the stable datasets, and never containing a
  // name that was not registered at some point — while creator and
  // dropper threads churn the registry.
  SketchStore store;
  ASSERT_TRUE(store.RegisterSchema("s", SmallSchema(1)).ok());
  const std::vector<std::string> stable = {"stable_a", "stable_b",
                                           "stable_c"};
  for (const auto& name : stable) {
    ASSERT_TRUE(store.CreateDataset(name, "s", DatasetKind::kRange).ok());
  }

  constexpr uint32_t kChurners = 2;
  constexpr uint32_t kRounds = 120;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kChurners; ++t) {
    threads.emplace_back([&, t] {
      for (uint32_t i = 0; i < kRounds; ++i) {
        const std::string name =
            "churn_" + std::to_string(t) + "_" + std::to_string(i);
        ASSERT_TRUE(store.CreateDataset(name, "s", DatasetKind::kRange).ok());
        if (i % 2 == 0) {
          ASSERT_TRUE(store.DropDataset(name).ok());
        }
      }
    });
  }
  threads.emplace_back([&] {
    uint64_t listings = 0;
    while ((!done.load(std::memory_order_acquire) || listings == 0) &&
           listings < 50000) {
      const auto names = store.ListDatasets();
      ASSERT_TRUE(std::is_sorted(names.begin(), names.end()));
      ASSERT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
      for (const auto& name : stable) {
        ASSERT_TRUE(std::binary_search(names.begin(), names.end(), name));
      }
      for (const auto& name : names) {
        ASSERT_TRUE(name.rfind("stable_", 0) == 0 ||
                    name.rfind("churn_", 0) == 0)
            << "listed a name that was never registered: " << name;
      }
      ++listings;
    }
  });
  for (uint32_t t = 0; t < kChurners; ++t) threads[t].join();
  done.store(true, std::memory_order_release);
  threads.back().join();

  // Quiesced: exactly the stable datasets plus the odd-round churn names.
  const auto names = store.ListDatasets();
  EXPECT_EQ(names.size(), stable.size() + kChurners * kRounds / 2);
}

TEST(SketchStoreRegistry, ValidatesBoxesAndKinds) {
  SketchStore store;
  ASSERT_TRUE(store.RegisterSchema("s", SmallSchema(1, 8)).ok());
  ASSERT_TRUE(store.CreateDataset("d", "s", DatasetKind::kRange).ok());
  ASSERT_TRUE(store.CreateDataset("r", "s", DatasetKind::kJoinR).ok());
  ASSERT_TRUE(store.CreateDataset("q", "s", DatasetKind::kJoinS).ok());

  // Out of domain / inverted boxes are rejected; degenerate ones are
  // silently dropped (they cannot contribute to a strict overlap).
  EXPECT_FALSE(store.Insert("d", MakeInterval(0, 256)).ok());
  EXPECT_FALSE(store.Insert("d", MakeInterval(9, 3)).ok());
  EXPECT_TRUE(store.Insert("d", MakeInterval(7, 7)).ok());
  EXPECT_EQ(*store.NumObjects("d"), 0);
  EXPECT_EQ(store.stats().dropped, 1u);

  // Kind mismatches.
  EXPECT_FALSE(store.EstimateRangeCount("r", MakeInterval(1, 5)).ok());
  EXPECT_FALSE(store.EstimateJoin("d", "q").ok());  // d is not kJoinR
  EXPECT_FALSE(store.EstimateJoin("q", "r").ok());  // roles swapped
  // Degenerate queries.
  EXPECT_FALSE(store.EstimateRangeCount("d", MakeInterval(5, 5)).ok());
}

TEST(SketchStoreServing, MatchesRangeEstimatorPipeline) {
  // Same options => same schema seeds => the store-served estimate is
  // bit-identical to the standalone estimator's.
  const uint32_t dims = 2, h = 8;
  const auto boxes = MakeBoxes(dims, h, 400, 5);

  SketchStore store;
  ASSERT_TRUE(store.RegisterSchema("s", SmallSchema(dims, h, 8, 3, 9)).ok());
  ASSERT_TRUE(store.CreateDataset("d", "s", DatasetKind::kRange).ok());
  ASSERT_TRUE(store.BulkLoad("d", boxes).ok());

  RangeEstimatorOptions opt;
  opt.dims = dims;
  opt.log2_domain = h;
  opt.k1 = 8;
  opt.k2 = 3;
  opt.seed = 9;
  auto reference = RangeQueryEstimator::Build(boxes, opt);
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(*store.NumObjects("d"), reference->num_objects());

  Rng rng(77);
  for (int q = 0; q < 25; ++q) {
    const Coord side = 1 + rng.Uniform(200);
    Box query;
    for (uint32_t d = 0; d < dims; ++d) {
      const Coord lo = rng.Uniform(256 - side);
      query.lo[d] = lo;
      query.hi[d] = lo + side;
    }
    auto got = store.EstimateRangeCount("d", query);
    ASSERT_TRUE(got.ok());
    EXPECT_DOUBLE_EQ(*got, reference->EstimateCount(query));
    auto sel = store.EstimateRangeSelectivity("d", query);
    ASSERT_TRUE(sel.ok());
    EXPECT_DOUBLE_EQ(*sel, reference->EstimateSelectivity(query));
  }
}

TEST(SketchStoreServing, MatchesJoinPipeline) {
  const uint32_t dims = 2, h = 7;
  const auto r_boxes = MakeBoxes(dims, h, 300, 21);
  const auto s_boxes = MakeBoxes(dims, h, 250, 22, 0.5);

  SketchStore store;
  ASSERT_TRUE(store.RegisterSchema("s", SmallSchema(dims, h, 10, 3, 4)).ok());
  ASSERT_TRUE(store.CreateDataset("r", "s", DatasetKind::kJoinR).ok());
  ASSERT_TRUE(store.CreateDataset("q", "s", DatasetKind::kJoinS).ok());
  ASSERT_TRUE(store.ParallelBulkLoad("r", r_boxes, 3).ok());
  ASSERT_TRUE(store.BulkLoad("q", s_boxes).ok());

  JoinPipelineOptions opt;
  opt.dims = dims;
  opt.log2_domain = h;
  opt.k1 = 10;
  opt.k2 = 3;
  opt.seed = 4;
  auto reference = SketchSpatialJoin(r_boxes, s_boxes, opt);
  ASSERT_TRUE(reference.ok());

  auto got = store.EstimateJoin("r", "q");
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(*got, reference->estimate);
}

TEST(SketchStoreConcurrency, EstimatesDuringIngestAreBitIdenticalToSequential) {
  // Writers stream disjoint slices concurrently while readers estimate;
  // when the dust settles the counters must equal a sequential BulkLoad
  // of the same boxes — exactly, not approximately.
  const uint32_t dims = 2, h = 8;
  const uint32_t kWriters = 4, kReaders = 4;
  const auto boxes = MakeBoxes(dims, h, 2000, 31);

  SketchStore store;
  ASSERT_TRUE(store.RegisterSchema("s", SmallSchema(dims, h, 4, 3)).ok());
  ASSERT_TRUE(store.CreateDataset("live", "s", DatasetKind::kRange).ok());
  ASSERT_TRUE(store.CreateDataset("reference", "s", DatasetKind::kRange).ok());

  std::atomic<bool> writers_done{false};
  std::vector<std::thread> threads;
  for (uint32_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (size_t i = w; i < boxes.size(); i += kWriters) {
        ASSERT_TRUE(store.Insert("live", boxes[i]).ok());
      }
    });
  }
  std::vector<uint64_t> served(kReaders, 0);
  for (uint32_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(600 + r);
      // The iteration cap is a safety valve: with the fair per-dataset
      // lock the writers always finish; if lock fairness ever regresses
      // this fails instead of hanging the suite. The served[r] == 0 arm
      // guarantees every reader estimates at least once even when the
      // bit-sliced writers drain the whole stream before this thread is
      // first scheduled.
      while ((!writers_done.load(std::memory_order_acquire) ||
              served[r] == 0) &&
             served[r] < 50000) {
        Box q;
        for (uint32_t d = 0; d < dims; ++d) {
          const Coord side = 1 + rng.Uniform(128);
          const Coord lo = rng.Uniform(256 - side);
          q.lo[d] = lo;
          q.hi[d] = lo + side;
        }
        auto est = store.EstimateRangeCount("live", q);
        ASSERT_TRUE(est.ok());
        ASSERT_TRUE(std::isfinite(*est));
        ++served[r];
      }
    });
  }
  for (uint32_t w = 0; w < kWriters; ++w) threads[w].join();
  writers_done.store(true, std::memory_order_release);
  for (uint32_t r = 0; r < kReaders; ++r) threads[kWriters + r].join();

  ASSERT_TRUE(store.BulkLoad("reference", boxes).ok());
  EXPECT_EQ(*store.NumObjects("live"), *store.NumObjects("reference"));
  EXPECT_EQ(*store.CounterSnapshot("live"), *store.CounterSnapshot("reference"));
  for (uint32_t r = 0; r < kReaders; ++r) {
    EXPECT_GT(served[r], 0u) << "reader " << r << " never got a turn";
  }
}

TEST(SketchStoreConcurrency, MixedInsertDeleteConvergesToSurvivorSet) {
  // Each writer inserts its slice and deletes all but every 5th box; the
  // final counters must equal a sequential load of just the survivors.
  const uint32_t dims = 1, h = 9;
  const uint32_t kWriters = 4;
  const auto boxes = MakeBoxes(dims, h, 1500, 57);

  SketchStore store;
  ASSERT_TRUE(store.RegisterSchema("s", SmallSchema(dims, h)).ok());
  ASSERT_TRUE(store.CreateDataset("live", "s", DatasetKind::kRange).ok());
  ASSERT_TRUE(store.CreateDataset("reference", "s", DatasetKind::kRange).ok());

  std::vector<std::thread> writers;
  for (uint32_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (size_t i = w; i < boxes.size(); i += kWriters) {
        ASSERT_TRUE(store.Insert("live", boxes[i]).ok());
        if (i % 5 != 0) {
          ASSERT_TRUE(store.Delete("live", boxes[i]).ok());
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();

  std::vector<Box> survivors;
  for (size_t i = 0; i < boxes.size(); i += 5) survivors.push_back(boxes[i]);
  ASSERT_TRUE(store.BulkLoad("reference", survivors).ok());
  EXPECT_EQ(*store.NumObjects("live"),
            static_cast<int64_t>(survivors.size()));
  EXPECT_EQ(*store.CounterSnapshot("live"), *store.CounterSnapshot("reference"));
}

TEST(SketchStoreConcurrency, JoinEstimatesDuringDualSidedIngest) {
  const uint32_t dims = 2, h = 7;
  const auto r_boxes = MakeBoxes(dims, h, 800, 61);
  const auto s_boxes = MakeBoxes(dims, h, 800, 62, 0.5);

  SketchStore store;
  ASSERT_TRUE(store.RegisterSchema("s", SmallSchema(dims, h, 4, 3)).ok());
  ASSERT_TRUE(store.CreateDataset("r", "s", DatasetKind::kJoinR).ok());
  ASSERT_TRUE(store.CreateDataset("q", "s", DatasetKind::kJoinS).ok());
  ASSERT_TRUE(store.CreateDataset("r_ref", "s", DatasetKind::kJoinR).ok());
  ASSERT_TRUE(store.CreateDataset("q_ref", "s", DatasetKind::kJoinS).ok());

  std::atomic<bool> done{false};
  std::thread r_writer([&] {
    for (const Box& b : r_boxes) ASSERT_TRUE(store.Insert("r", b).ok());
  });
  std::thread s_writer([&] {
    for (const Box& b : s_boxes) ASSERT_TRUE(store.Insert("q", b).ok());
  });
  std::thread reader([&] {
    uint64_t served = 0;
    while (!done.load(std::memory_order_acquire) && served < 50000) {
      auto est = store.EstimateJoin("r", "q");
      ASSERT_TRUE(est.ok());
      ASSERT_TRUE(std::isfinite(*est));
      ++served;
    }
  });
  r_writer.join();
  s_writer.join();
  done.store(true, std::memory_order_release);
  reader.join();

  ASSERT_TRUE(store.ParallelBulkLoad("r_ref", r_boxes, 4).ok());
  ASSERT_TRUE(store.ParallelBulkLoad("q_ref", s_boxes, 4).ok());
  EXPECT_EQ(*store.CounterSnapshot("r"), *store.CounterSnapshot("r_ref"));
  EXPECT_EQ(*store.CounterSnapshot("q"), *store.CounterSnapshot("q_ref"));
  auto live = store.EstimateJoin("r", "q");
  auto ref = store.EstimateJoin("r_ref", "q_ref");
  ASSERT_TRUE(live.ok() && ref.ok());
  EXPECT_DOUBLE_EQ(*live, *ref);
}

TEST(ShardedBulkLoad, BitIdenticalToSequentialAcrossShardCounts) {
  SchemaOptions so;
  so.dims = 2;
  so.domains[0].log2_size = 8;
  so.domains[1].log2_size = 8;
  so.k1 = 5;
  so.k2 = 3;
  so.seed = 13;
  auto schema = SketchSchema::Create(so);
  ASSERT_TRUE(schema.ok());
  const auto boxes = MakeBoxes(2, 8, 777, 71);

  DatasetSketch sequential(*schema, Shape::JoinShape(2));
  sequential.BulkLoad(boxes);

  for (uint32_t threads : {1u, 2u, 3u, 8u}) {
    DatasetSketch sharded(*schema, Shape::JoinShape(2));
    ShardedLoadOptions opt;
    opt.num_threads = threads;
    opt.min_boxes_per_shard = 64;
    ShardedBulkLoad(&sharded, boxes, +1, opt);
    EXPECT_EQ(sharded.counters(), sequential.counters()) << threads;
    EXPECT_EQ(sharded.num_objects(), sequential.num_objects());
  }

  // Sharded removal cancels a sharded load exactly.
  DatasetSketch cancel(*schema, Shape::JoinShape(2));
  ShardedBulkLoad(&cancel, boxes, +1, {});
  ShardedBulkLoad(&cancel, boxes, -1, {});
  for (int64_t c : cancel.counters()) EXPECT_EQ(c, 0);
  EXPECT_EQ(cancel.num_objects(), 0);

  // Wide schemas: the loader parallelizes internally across instance
  // batches, so the shard count is the thread budget divided by the
  // batch count. 768 instances = 2 batches; num_threads=2 degenerates to
  // a single plain BulkLoad (pure delegation), num_threads=4 box-shards
  // 2x on top. Both must stay bit-identical.
  SchemaOptions wide = so;
  wide.k1 = BulkLoader::kInstancesPerBatch / 2;
  wide.k2 = 3;  // 1.5 batches worth of instances
  auto wide_schema = SketchSchema::Create(wide);
  ASSERT_TRUE(wide_schema.ok());
  DatasetSketch wide_seq(*wide_schema, Shape::JoinShape(2));
  wide_seq.BulkLoad(boxes);
  for (uint32_t threads : {2u, 4u}) {
    DatasetSketch wide_sharded(*wide_schema, Shape::JoinShape(2));
    ShardedLoadOptions wopt;
    wopt.num_threads = threads;
    wopt.min_boxes_per_shard = 64;
    ShardedBulkLoad(&wide_sharded, boxes, +1, wopt);
    EXPECT_EQ(wide_sharded.counters(), wide_seq.counters()) << threads;
    EXPECT_EQ(wide_sharded.num_objects(), wide_seq.num_objects());
  }
}

TEST(SketchStoreSnapshot, RoundTripsEveryKindDimsAndUpdateHistory) {
  // Snapshot -> Restore must reproduce bit-identical counters and
  // estimates for every dataset kind and dimensionality, including after
  // deletes (the corpus mirrors serialize_test's round-trip discipline).
  for (const DatasetKind kind :
       {DatasetKind::kRange, DatasetKind::kJoinR, DatasetKind::kJoinS}) {
    for (uint32_t dims = 1; dims <= 3; ++dims) {
      SCOPED_TRACE(static_cast<int>(kind) * 10 + static_cast<int>(dims));
      const uint32_t h = 6;
      SketchStore store;
      ASSERT_TRUE(
          store.RegisterSchema("s", SmallSchema(dims, h, 4, 3)).ok());
      ASSERT_TRUE(store.CreateDataset("d", "s", kind).ok());
      ASSERT_TRUE(store.CreateDataset("copy", "s", kind).ok());

      const auto boxes = MakeBoxes(dims, h, 120, 80 + dims);
      ASSERT_TRUE(store.BulkLoad("d", boxes).ok());
      for (size_t i = 0; i < boxes.size(); i += 3) {
        ASSERT_TRUE(store.Delete("d", boxes[i]).ok());
      }

      auto blob = store.Snapshot("d");
      ASSERT_TRUE(blob.ok());
      ASSERT_TRUE(store.Restore("copy", *blob).ok());
      EXPECT_EQ(*store.CounterSnapshot("copy"), *store.CounterSnapshot("d"));
      EXPECT_EQ(*store.NumObjects("copy"), *store.NumObjects("d"));

      if (kind == DatasetKind::kRange) {
        Box q;
        for (uint32_t d = 0; d < dims; ++d) {
          q.lo[d] = 3;
          q.hi[d] = 41;
        }
        auto a = store.EstimateRangeCount("d", q);
        auto b = store.EstimateRangeCount("copy", q);
        ASSERT_TRUE(a.ok() && b.ok());
        EXPECT_DOUBLE_EQ(*a, *b);
      }

      // A restored dataset keeps accepting updates in lockstep with the
      // original (the schema instance is shared, not deserialized).
      const Box extra = boxes.back();
      ASSERT_TRUE(store.Insert("d", extra).ok());
      ASSERT_TRUE(store.Insert("copy", extra).ok());
      EXPECT_EQ(*store.CounterSnapshot("copy"), *store.CounterSnapshot("d"));
    }
  }
}

TEST(SketchStoreSnapshot, RestoredJoinSideStaysJoinable) {
  const uint32_t dims = 2, h = 6;
  SketchStore store;
  ASSERT_TRUE(store.RegisterSchema("s", SmallSchema(dims, h, 4, 3)).ok());
  ASSERT_TRUE(store.CreateDataset("r", "s", DatasetKind::kJoinR).ok());
  ASSERT_TRUE(store.CreateDataset("q", "s", DatasetKind::kJoinS).ok());
  ASSERT_TRUE(store.CreateDataset("r2", "s", DatasetKind::kJoinR).ok());
  ASSERT_TRUE(store.BulkLoad("r", MakeBoxes(dims, h, 200, 91)).ok());
  ASSERT_TRUE(store.BulkLoad("q", MakeBoxes(dims, h, 200, 92)).ok());

  auto blob = store.Snapshot("r");
  ASSERT_TRUE(blob.ok());
  ASSERT_TRUE(store.Restore("r2", *blob).ok());
  auto original = store.EstimateJoin("r", "q");
  auto restored = store.EstimateJoin("r2", "q");
  ASSERT_TRUE(original.ok() && restored.ok());
  EXPECT_DOUBLE_EQ(*restored, *original);
}

TEST(SketchStoreSnapshot, RejectsIncompatibleAndCorruptBlobs) {
  SketchStore store;
  ASSERT_TRUE(store.RegisterSchema("a", SmallSchema(1, 6, 4, 3, 1)).ok());
  ASSERT_TRUE(store.RegisterSchema("b", SmallSchema(2, 6, 4, 3, 1)).ok());
  ASSERT_TRUE(store.RegisterSchema("c", SmallSchema(1, 6, 4, 3, 2)).ok());
  ASSERT_TRUE(store.CreateDataset("da", "a", DatasetKind::kRange).ok());
  ASSERT_TRUE(store.CreateDataset("db", "b", DatasetKind::kRange).ok());
  ASSERT_TRUE(store.CreateDataset("dc", "c", DatasetKind::kRange).ok());
  ASSERT_TRUE(store.CreateDataset("dj", "a", DatasetKind::kJoinR).ok());
  ASSERT_TRUE(store.Insert("da", MakeInterval(3, 9)).ok());

  auto blob = store.Snapshot("da");
  ASSERT_TRUE(blob.ok());
  // Wrong dims, wrong master seed, wrong shape: all rejected; the target
  // keeps its previous contents.
  EXPECT_FALSE(store.Restore("db", *blob).ok());
  EXPECT_FALSE(store.Restore("dc", *blob).ok());
  EXPECT_FALSE(store.Restore("dj", *blob).ok());
  // Corrupt bytes are rejected by the deserializer, not by a crash.
  EXPECT_FALSE(store.Restore("da", blob->substr(0, blob->size() / 2)).ok());
  EXPECT_FALSE(store.Restore("da", "garbage").ok());
  EXPECT_EQ(*store.NumObjects("da"), 1);

  // Kind confusion between the join sides: kJoinR and kJoinS share shape
  // and schema configuration but ingest through DIFFERENT coordinate
  // mappings, so restoring one side's snapshot into the other must fail
  // (it would silently serve wrong joins otherwise).
  ASSERT_TRUE(store.CreateDataset("ds", "a", DatasetKind::kJoinS).ok());
  ASSERT_TRUE(store.Insert("ds", MakeInterval(3, 9)).ok());
  auto s_blob = store.Snapshot("ds");
  ASSERT_TRUE(s_blob.ok());
  EXPECT_FALSE(store.Restore("dj", *s_blob).ok());
  EXPECT_TRUE(store.Restore("ds", *s_blob).ok());
}

TEST(SketchStoreStats, CountsOperations) {
  SketchStore store;
  ASSERT_TRUE(store.RegisterSchema("s", SmallSchema(1, 8)).ok());
  ASSERT_TRUE(store.CreateDataset("d", "s", DatasetKind::kRange).ok());
  ASSERT_TRUE(store.Insert("d", MakeInterval(1, 9)).ok());
  ASSERT_TRUE(store.Delete("d", MakeInterval(1, 9)).ok());
  ASSERT_TRUE(store.BulkLoad("d", MakeBoxes(1, 8, 50, 3)).ok());
  ASSERT_TRUE(store.EstimateRangeCount("d", MakeInterval(2, 60)).ok());
  auto blob = store.Snapshot("d");
  ASSERT_TRUE(blob.ok());
  ASSERT_TRUE(store.Restore("d", *blob).ok());

  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.deletes, 1u);
  EXPECT_EQ(stats.bulk_boxes, 50u);
  EXPECT_EQ(stats.range_estimates, 1u);
  EXPECT_EQ(stats.snapshots, 1u);
  EXPECT_EQ(stats.restores, 1u);
}

}  // namespace
}  // namespace spatialsketch
