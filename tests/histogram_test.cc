// Tests for the Geometric- and Euler-histogram baselines: storage
// accounting against the paper's formulas, single-cell exactness of the
// 4-event identity, reasonable accuracy on uniform data, and
// insert/delete maintainability.

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"

#include "src/exact/rect_join.h"
#include "src/geom/box.h"
#include "src/histogram/euler_histogram.h"
#include "src/histogram/geometric_histogram.h"
#include "src/histogram/grid.h"
#include "src/workload/zipf_boxes.h"

namespace spatialsketch {
namespace {

TEST(Grid2D, CellMathAndClamping) {
  const Grid2D g(64.0, 64.0, 8, 8);
  EXPECT_DOUBLE_EQ(g.cell_width(), 8.0);
  EXPECT_EQ(g.CellX(0.0), 0u);
  EXPECT_EQ(g.CellX(7.99), 0u);
  EXPECT_EQ(g.CellX(8.0), 1u);
  EXPECT_EQ(g.CellX(63.99), 7u);
  EXPECT_EQ(g.CellX(64.0), 7u);  // clamp
  EXPECT_EQ(g.CellX(1000.0), 7u);
  // End-cells: boundary coordinates belong to the lower cell.
  EXPECT_EQ(g.CellXEnd(8.0), 0u);
  EXPECT_EQ(g.CellXEnd(8.01), 1u);
  EXPECT_EQ(g.CellXEnd(64.0), 7u);
  EXPECT_EQ(g.CellIndex(3, 2), 19u);
}

TEST(GeometricHistogram, MemoryFormula) {
  EXPECT_EQ(GeometricHistogram(1024.0, 8).MemoryWords(), 4u * 64);
  EXPECT_EQ(GeometricHistogram(1024.0, 95).MemoryWords(), 4u * 95 * 95);
}

TEST(EulerHistogram, MemoryFormulaMatchesPaper) {
  // Level L grid (g = 2^L): 9*2^{2L} - 6*2^L + 1 words.
  for (uint32_t level : {1u, 2u, 4u, 6u}) {
    const uint32_t g = 1u << level;
    const uint64_t expect =
        9ull * (1ull << (2 * level)) - 6ull * (1ull << level) + 1;
    EXPECT_EQ(EulerHistogram(1024.0, g).MemoryWords(), expect);
  }
}

TEST(GeometricHistogram, SingleCellUniformModelIsAccurate) {
  // The GH model's home turf: many small rectangles uniformly placed in
  // ONE cell. The 4-event identity with uniform-placement probabilities
  // must land near the exact join size.
  Rng rng(77);
  auto gen = [&](uint64_t seed) {
    Rng local(seed);
    std::vector<Box> v;
    for (int i = 0; i < 400; ++i) {
      const Coord lx = local.Uniform(56);
      const Coord ly = local.Uniform(56);
      v.push_back(MakeRect(lx, lx + 1 + local.Uniform(7), ly,
                           ly + 1 + local.Uniform(7)));
    }
    return v;
  };
  const auto rv = gen(1);
  const auto sv = gen(2);
  GeometricHistogram r(64.0, 1), s(64.0, 1);
  for (const Box& b : rv) r.Add(b);
  for (const Box& b : sv) s.Add(b);
  const double exact = static_cast<double>(ExactRectJoinCount(rv, sv));
  EXPECT_NEAR(GeometricHistogram::EstimateJoin(r, s), exact, 0.25 * exact);
}

TEST(GeometricHistogram, DisjointFarApartEstimatesNearZero) {
  GeometricHistogram r(64.0, 8), s(64.0, 8);
  r.Add(MakeRect(0, 4, 0, 4));
  s.Add(MakeRect(50, 60, 50, 60));
  EXPECT_NEAR(GeometricHistogram::EstimateJoin(r, s), 0.0, 1e-9);
}

TEST(GeometricHistogram, ReasonableOnUniformData) {
  SyntheticBoxOptions gen;
  gen.dims = 2;
  gen.log2_domain = 10;
  gen.count = 3000;
  gen.seed = 1;
  const auto r = GenerateSyntheticBoxes(gen);
  gen.seed = 2;
  const auto s = GenerateSyntheticBoxes(gen);
  const double exact = static_cast<double>(ExactRectJoinCount(r, s));
  ASSERT_GT(exact, 0.0);

  GeometricHistogram hr(1024.0, 16), hs(1024.0, 16);
  for (const Box& b : r) hr.Add(b);
  for (const Box& b : s) hs.Add(b);
  const double est = GeometricHistogram::EstimateJoin(hr, hs);
  // Uniform data is GH's best case; the estimate should land within 30%.
  EXPECT_NEAR(est, exact, 0.30 * exact);
}

TEST(EulerHistogram, ReasonableOnUniformData) {
  SyntheticBoxOptions gen;
  gen.dims = 2;
  gen.log2_domain = 10;
  gen.count = 3000;
  gen.seed = 3;
  const auto r = GenerateSyntheticBoxes(gen);
  gen.seed = 4;
  const auto s = GenerateSyntheticBoxes(gen);
  const double exact = static_cast<double>(ExactRectJoinCount(r, s));
  ASSERT_GT(exact, 0.0);

  EulerHistogram hr(1024.0, 16), hs(1024.0, 16);
  for (const Box& b : r) hr.Add(b);
  for (const Box& b : s) hs.Add(b);
  const double est = EulerHistogram::EstimateJoin(hr, hs);
  // EH's per-bucket model errors accumulate (the effect the paper's
  // Figures 5/9-11 highlight); demand only the right order of magnitude.
  EXPECT_NEAR(est, exact, 0.80 * exact);
}

TEST(EulerHistogram, VertexCorrectionKicksInForSpanningObjects) {
  // Two identical large rectangles spanning a 2x2 block of cells: the
  // Euler-signed sum must count the pair once-ish, not four times.
  EulerHistogram r(64.0, 2), s(64.0, 2);
  r.Add(MakeRect(8, 56, 8, 56));
  s.Add(MakeRect(8, 56, 8, 56));
  const double est = EulerHistogram::EstimateJoin(r, s);
  EXPECT_NEAR(est, 1.0, 0.35);
}

TEST(EulerHistogram, SupportsDeletionByNegativeWeight) {
  EulerHistogram a(64.0, 4), b(64.0, 4);
  const Box box = MakeRect(5, 20, 9, 30);
  a.Add(box);
  a.Add(MakeRect(30, 50, 30, 50));
  a.Add(MakeRect(30, 50, 30, 50), -1.0);
  b.Add(box);
  EXPECT_NEAR(EulerHistogram::EstimateJoin(a, b),
              EulerHistogram::EstimateJoin(b, b), 1e-9);
}

TEST(GeometricHistogram, SupportsDeletionByNegativeWeight) {
  GeometricHistogram a(64.0, 4), b(64.0, 4);
  const Box box = MakeRect(5, 20, 9, 30);
  a.Add(box);
  a.Add(MakeRect(40, 60, 2, 12));
  a.Add(MakeRect(40, 60, 2, 12), -1.0);
  b.Add(box);
  EXPECT_NEAR(GeometricHistogram::EstimateJoin(a, b),
              GeometricHistogram::EstimateJoin(b, b), 1e-9);
}

}  // namespace
}  // namespace spatialsketch
