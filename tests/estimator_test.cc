// Statistical correctness of the spatial-join estimators.
//
// The estimators are randomized, so the tests are statistical but
// deterministic: with a fixed schema seed the estimate is reproducible,
// and tolerances are derived from the paper's variance bounds
// (Var[Z] <= (3^d-1)/4^d SJ(R) SJ(S), Lemma 6 / Theorem 3) at five
// standard errors of the k1-instance mean.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/dyadic/endpoint_transform.h"
#include "src/estimators/adaptive.h"
#include "src/estimators/combine.h"
#include "src/estimators/join_estimator.h"
#include "src/estimators/sizing.h"
#include "src/exact/brute.h"
#include "src/exact/interval_join.h"
#include "src/exact/rect_join.h"
#include "src/geom/box.h"
#include "src/sketch/dataset_sketch.h"
#include "src/sketch/self_join.h"
#include "src/workload/zipf_boxes.h"

namespace spatialsketch {
namespace {

SchemaPtr MakeSchema(uint32_t dims, uint32_t h, uint32_t k1, uint32_t k2,
                     uint64_t seed) {
  SchemaOptions opt;
  opt.dims = dims;
  for (uint32_t i = 0; i < dims; ++i) opt.domains[i].log2_size = h;
  opt.k1 = k1;
  opt.k2 = k2;
  opt.seed = seed;
  auto schema = SketchSchema::Create(opt);
  EXPECT_TRUE(schema.ok());
  return *schema;
}

double MeanEstimate(const std::vector<Box>& r, const std::vector<Box>& s,
                    uint32_t dims, uint32_t h, uint32_t instances,
                    uint64_t seed) {
  // Direct sketches WITHOUT transformation: callers guarantee
  // Assumption 1 themselves.
  auto schema = MakeSchema(dims, h, instances, 1, seed);
  DatasetSketch rx(schema, Shape::JoinShape(dims));
  rx.BulkLoad(r);
  DatasetSketch sy(schema, Shape::JoinShape(dims));
  sy.BulkLoad(s);
  auto z = JoinEstimatesPerInstance(rx, sy);
  EXPECT_TRUE(z.ok());
  double sum = 0.0;
  for (double v : *z) sum += v;
  return sum / instances;
}

TEST(MedianOfMeans, BasicCombinatorics) {
  // k1=2, k2=3: means are 1.5, 3.5, 100 -> median 3.5.
  EXPECT_DOUBLE_EQ(MedianOfMeans({1, 2, 3, 4, 0, 200}, 2, 3), 3.5);
  // Even k2 averages the middle two.
  EXPECT_DOUBLE_EQ(MedianOfMeans({1, 3, 5, 100}, 1, 4), 4.0);
  // Single instance is the identity.
  EXPECT_DOUBLE_EQ(MedianOfMeans({7.25}, 1, 1), 7.25);
}

TEST(MedianOfMeans, RobustToOutlierGroups) {
  std::vector<double> z(3 * 5, 10.0);
  for (int i = 0; i < 3; ++i) z[i] = 1e9;  // one poisoned group
  EXPECT_DOUBLE_EQ(MedianOfMeans(z, 3, 5), 10.0);
}

TEST(JoinEstimator, Figure2ExampleIsUnbiased) {
  // The paper's running example (Figure 2): r = [0, 2], s = [1, 3] over
  // the 4-value domain, |R join S| = 1. Mean of many instances must
  // converge to 1 well within five standard errors.
  const std::vector<Box> r = {MakeInterval(0, 2)};
  const std::vector<Box> s = {MakeInterval(1, 3)};
  ASSERT_EQ(ExactIntervalJoinCount(r, s), 1u);

  const uint32_t k1 = 50000;
  const double mean = MeanEstimate(r, s, 1, 2, k1, 4242);
  // SJ(R) = SJ(S) = 10 (2 cover ids + endpoint covers sharing the root).
  const double sigma = std::sqrt(0.5 * 10.0 * 10.0 / k1);
  EXPECT_NEAR(mean, 1.0, 5.0 * sigma);
}

TEST(JoinEstimator, DisjointSetsEstimateNearZero) {
  const std::vector<Box> r = {MakeInterval(1, 10), MakeInterval(3, 12)};
  const std::vector<Box> s = {MakeInterval(40, 50), MakeInterval(45, 60)};
  const uint32_t k1 = 30000;
  const double mean = MeanEstimate(r, s, 1, 6, k1, 7);
  const DyadicDomain dom(6);
  const double sj_r = ExactTotalSelfJoin1D(r, dom);
  const double sj_s = ExactTotalSelfJoin1D(s, dom);
  const double sigma = std::sqrt(0.5 * sj_r * sj_s / k1);
  EXPECT_NEAR(mean, 0.0, 5.0 * sigma);
}

class UnbiasednessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnbiasednessTest, Interval1D) {
  Rng rng(GetParam());
  // Odd endpoints for R, even for S: Assumption 1 by construction.
  std::vector<Box> r, s;
  for (int i = 0; i < 10; ++i) {
    const Coord a = 1 + 2 * rng.Uniform(14);
    r.push_back(MakeInterval(a, a + 2 * (1 + rng.Uniform(8))));
    const Coord c = 2 * rng.Uniform(15);
    s.push_back(MakeInterval(c, c + 2 * (1 + rng.Uniform(8)) + 2));
  }
  const double exact = static_cast<double>(BruteJoinCount(r, s, 1));
  const uint32_t k1 = 40000;
  const double mean = MeanEstimate(r, s, 1, 6, k1, GetParam() * 31 + 1);

  const DyadicDomain dom(6);
  const double var =
      JoinVarianceBound(ExactTotalSelfJoin1D(r, dom),
                        ExactTotalSelfJoin1D(s, dom), 1);
  EXPECT_NEAR(mean, exact, 5.0 * std::sqrt(var / k1) + 1e-9);
}

TEST_P(UnbiasednessTest, Rect2D) {
  Rng rng(GetParam() + 100);
  std::vector<Box> r, s;
  for (int i = 0; i < 6; ++i) {
    Box rb, sb;
    for (uint32_t d = 0; d < 2; ++d) {
      const Coord a = 1 + 2 * rng.Uniform(10);
      rb.lo[d] = a;
      rb.hi[d] = a + 2 * (1 + rng.Uniform(6));
      const Coord c = 2 * rng.Uniform(9);
      sb.lo[d] = c;
      sb.hi[d] = c + 2 * (1 + rng.Uniform(5)) + 2;
    }
    r.push_back(rb);
    s.push_back(sb);
  }
  const double exact = static_cast<double>(BruteJoinCount(r, s, 2));
  const uint32_t k1 = 30000;
  const double mean = MeanEstimate(r, s, 2, 5, k1, GetParam() * 17 + 3);

  const std::vector<DyadicDomain> doms = {DyadicDomain(5), DyadicDomain(5)};
  double sj_r = 0, sj_s = 0;
  const Shape shape = Shape::JoinShape(2);
  for (uint32_t w = 0; w < shape.size(); ++w) {
    sj_r += ExactSelfJoinSizeND(r, doms, shape.word(w), 2);
    sj_s += ExactSelfJoinSizeND(s, doms, shape.word(w), 2);
  }
  const double var = JoinVarianceBound(sj_r, sj_s, 2);
  EXPECT_NEAR(mean, exact, 5.0 * std::sqrt(var / k1) + 1e-9);
}

TEST_P(UnbiasednessTest, Box3D) {
  Rng rng(GetParam() + 200);
  std::vector<Box> r, s;
  for (int i = 0; i < 4; ++i) {
    Box rb, sb;
    for (uint32_t d = 0; d < 3; ++d) {
      const Coord a = 1 + 2 * rng.Uniform(5);
      rb.lo[d] = a;
      rb.hi[d] = a + 2 * (1 + rng.Uniform(3));
      const Coord c = 2 * rng.Uniform(4);
      sb.lo[d] = c;
      sb.hi[d] = c + 2 * (1 + rng.Uniform(2)) + 2;
    }
    r.push_back(rb);
    s.push_back(sb);
  }
  const double exact = static_cast<double>(BruteJoinCount(r, s, 3));
  const uint32_t k1 = 25000;
  const double mean = MeanEstimate(r, s, 3, 4, k1, GetParam() * 13 + 5);

  const std::vector<DyadicDomain> doms(3, DyadicDomain(4));
  double sj_r = 0, sj_s = 0;
  const Shape shape = Shape::JoinShape(3);
  for (uint32_t w = 0; w < shape.size(); ++w) {
    sj_r += ExactSelfJoinSizeND(r, doms, shape.word(w), 3);
    sj_s += ExactSelfJoinSizeND(s, doms, shape.word(w), 3);
  }
  const double var = JoinVarianceBound(sj_r, sj_s, 3);
  EXPECT_NEAR(mean, exact, 5.0 * std::sqrt(var / k1) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnbiasednessTest,
                         ::testing::Values(1, 2, 3));

TEST(JoinEstimator, PipelineHandlesSharedEndpoints) {
  // Grid-aligned data violates Assumption 1 massively; the pipeline's
  // endpoint transformation must keep the estimator unbiased.
  Rng rng(4);
  std::vector<Box> r, s;
  for (int i = 0; i < 12; ++i) {
    const Coord a = 4 * rng.Uniform(8);
    r.push_back(MakeInterval(a, a + 4 * (1 + rng.Uniform(3))));
    const Coord c = 4 * rng.Uniform(8);
    s.push_back(MakeInterval(c, c + 4 * (1 + rng.Uniform(3))));
  }
  const double exact = static_cast<double>(BruteJoinCount(r, s, 1));

  JoinPipelineOptions opt;
  opt.dims = 1;
  opt.log2_domain = 6;
  opt.k1 = 40000;
  opt.k2 = 1;
  opt.seed = 11;
  auto result = SketchSpatialJoin(r, s, opt);
  ASSERT_TRUE(result.ok());
  // With k2 = 1 the combined estimate is the plain mean.
  const DyadicDomain dom(8);  // transformed domain
  std::vector<Box> rt, st;
  for (const Box& b : r) rt.push_back(EndpointTransform::MapR(b, 1));
  for (const Box& b : s) st.push_back(EndpointTransform::ShrinkS(b, 1));
  const double var = JoinVarianceBound(ExactTotalSelfJoin1D(rt, dom),
                                       ExactTotalSelfJoin1D(st, dom), 1);
  EXPECT_NEAR(result->estimate, exact,
              5.0 * std::sqrt(var / opt.k1) + 1e-9);
}

TEST(JoinEstimator, PipelineMatchesExactOnModerateData) {
  // End-to-end: moderately sized synthetic rectangles, median-of-means
  // combined; demand a sane relative error.
  SyntheticBoxOptions gen;
  gen.dims = 2;
  gen.log2_domain = 8;
  gen.count = 800;
  gen.seed = 21;
  const auto r = GenerateSyntheticBoxes(gen);
  gen.seed = 22;
  const auto s = GenerateSyntheticBoxes(gen);
  const double exact = static_cast<double>(ExactRectJoinCount(r, s));
  ASSERT_GT(exact, 0.0);

  JoinPipelineOptions opt;
  opt.dims = 2;
  opt.log2_domain = 8;
  opt.auto_max_level = true;  // Section 6.5: essential for short objects
  opt.k1 = 600;
  opt.k2 = 5;
  opt.seed = 31;
  auto result = SketchSpatialJoin(r, s, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, exact, 0.30 * exact);
  // The adaptive selection must actually have capped the levels.
  EXPECT_LT(result->max_levels[0], 10u);  // transformed domain has h = 10
}

TEST(JoinEstimator, GuaranteeSizedSketchMeetsEpsilon) {
  // Size a sketch from the Lemma-1 formula with exact SJ values and a
  // pilot-exact E[Z]; the resulting estimate must respect the requested
  // relative error (fixed seed; failure probability phi = 5%).
  SyntheticBoxOptions gen;
  gen.dims = 1;
  gen.log2_domain = 10;
  gen.count = 2000;
  gen.seed = 51;
  const auto r = GenerateSyntheticBoxes(gen);
  gen.seed = 52;
  const auto s = GenerateSyntheticBoxes(gen);
  const double exact = static_cast<double>(ExactIntervalJoinCount(r, s));
  ASSERT_GT(exact, 0.0);

  std::vector<Box> rt, st;
  for (const Box& b : r) rt.push_back(EndpointTransform::MapR(b, 1));
  for (const Box& b : s) st.push_back(EndpointTransform::ShrinkS(b, 1));
  // Section 6.5 cap selection keeps the self-join masses (and hence the
  // Lemma-1 instance count) practical.
  const auto cap = SelectMaxLevel1D(rt, st, 12);
  const double var = JoinVarianceBound(cap.sj_r, cap.sj_s, 1);
  const double epsilon = 0.25;
  auto sizing = SizeForGuarantee(epsilon, 0.05, var, exact);
  ASSERT_TRUE(sizing.ok());
  ASSERT_LT(sizing->instances, 200000u)
      << "capped sizing should stay practical";

  JoinPipelineOptions opt;
  opt.dims = 1;
  opt.log2_domain = 10;
  opt.max_level = cap.max_level;
  opt.k1 = sizing->k1;
  opt.k2 = sizing->k2;
  opt.seed = 61;
  auto result = SketchSpatialJoin(r, s, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(std::abs(result->estimate - exact), epsilon * exact);
}

TEST(JoinEstimator, RejectsMismatchedSchemas) {
  auto sa = MakeSchema(1, 6, 4, 2, 1);
  auto sb = MakeSchema(1, 6, 4, 2, 1);
  DatasetSketch a(sa, Shape::JoinShape(1));
  DatasetSketch b(sb, Shape::JoinShape(1));
  EXPECT_FALSE(EstimateJoinCardinality(a, b).ok());
}

TEST(JoinEstimator, RejectsWrongShape) {
  auto schema = MakeSchema(1, 6, 4, 2, 1);
  DatasetSketch a(schema, Shape::JoinShape(1));
  DatasetSketch b(schema, Shape::RangeShape(1));
  EXPECT_FALSE(EstimateJoinCardinality(a, b).ok());
}

TEST(JoinEstimator, EstimateScalesWithDuplicatedInput) {
  // Linearity sanity: duplicating every S object doubles the estimate
  // deterministically (counters are linear).
  const std::vector<Box> r = {MakeInterval(1, 9), MakeInterval(3, 13)};
  const std::vector<Box> s = {MakeInterval(4, 8), MakeInterval(6, 12)};
  auto schema = MakeSchema(1, 5, 500, 1, 77);
  DatasetSketch rx(schema, Shape::JoinShape(1));
  rx.BulkLoad(r);
  DatasetSketch sy(schema, Shape::JoinShape(1));
  sy.BulkLoad(s);
  DatasetSketch sy2(schema, Shape::JoinShape(1));
  sy2.BulkLoad(s);
  sy2.BulkLoad(s);
  auto e1 = EstimateJoinCardinality(rx, sy);
  auto e2 = EstimateJoinCardinality(rx, sy2);
  ASSERT_TRUE(e1.ok() && e2.ok());
  EXPECT_DOUBLE_EQ(*e2, 2.0 * *e1);
}

}  // namespace
}  // namespace spatialsketch
